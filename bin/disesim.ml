(* disesim: command-line driver for the DISE reproduction.

   Subcommands:
     list                     available benchmarks, schemes, figure panels
     run                      simulate one workload/ACF/machine configuration
     compress                 compress one workload under one scheme
     synthesize               profile-guided dictionary search
     figures                  regenerate evaluation panels and ablations
     serve                    batch JSONL simulation service (stdin or socket)
     fuzz                     differential fuzzing + fault injection
     cache                    inspect or clear the on-disk result cache
     exec                     assemble and run a user program (+productions)
     safety                   inspect a production-set file
     disasm                   dump a generated workload
     validate                 check a JSON file against a JSON-Schema file

   Exit codes follow Dise_isa.Diag: 2 malformed input, 3 simulation
   failure, 4 result-cache I/O failure, 5 deadline exceeded, 6
   overloaded / resource busy, 7 internal fault. *)

open Cmdliner
module Machine = Dise_machine.Machine
module Config = Dise_uarch.Config
module Stats = Dise_uarch.Stats
module Controller = Dise_core.Controller
module Diag = Dise_isa.Diag
module W = Dise_workload
module A = Dise_acf
module S = Dise_service
module H = Dise_harness
module T = Dise_telemetry
module Fz = Dise_fuzz
module Sy = Dise_synthesize

let die d =
  Format.eprintf "disesim: %a@." Diag.pp d;
  exit (Diag.exit_code d)

(* Classify stray exceptions from the simulation stack onto the
   shared exit-code policy. *)
let guarded f =
  try f () with
  | S.Cache.Diag_error d -> die d
  | Dise_isa.Encode.Error msg -> die (Diag.Parse { source = "encode"; line = 0; msg })
  | Machine.Runtime_error msg | Failure msg -> die (Diag.Runtime msg)
  | Dise_core.Engine.Expansion_error msg -> die (Diag.Expansion msg)
  | Invalid_argument msg -> die (Diag.Invalid msg)

let entry_of name dyn =
  match W.Profile.find name with
  | Some p -> W.Suite.get ~dyn_target:dyn p
  | None ->
    Format.eprintf "unknown benchmark %s (try: disesim list)@." name;
    exit 2

(* --- result cache wiring ------------------------------------------------ *)

let default_cache_dir () =
  match Sys.getenv_opt "DISESIM_CACHE" with
  | Some d when d <> "" -> d
  | _ -> ".disesim-cache"

let cache_dir_arg =
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
         ~doc:"Result-cache directory (default: \\$DISESIM_CACHE or \
               .disesim-cache). Simulation results are content-addressed \
               by request, so warm reruns skip simulation entirely.")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ]
         ~doc:"Disable the on-disk result cache for this invocation.")

let setup_cache dir no_cache =
  if no_cache then S.Request.set_disk_cache None
  else
    let dir = match dir with Some d -> d | None -> default_cache_dir () in
    match S.Cache.create ~dir with
    | c -> S.Request.set_disk_cache (Some c)
    | exception S.Cache.Diag_error d -> die d

(* --- superblock-JIT knobs (see doc/jit.md) ----------------------------- *)

let no_jit_arg =
  Arg.(value & flag & info [ "no-jit" ]
         ~doc:"Disable the functional machine's trace/superblock JIT.                Purely a performance knob: statistics and figure CSVs are                identical either way (the differential fuzzer proves it),                but JIT-on and JIT-off runs cache under distinct keys.")

let jit_threshold_arg =
  Arg.(value & opt int Machine.default_jit_threshold
       & info [ "jit-threshold" ] ~docv:"K"
           ~doc:"Compile a trace after its PC has been dispatched $(docv)                  times (default 8). Lower compiles sooner; 1 compiles on                  first sight.")

let setup_jit no_jit threshold =
  if threshold < 1 then begin
    Format.eprintf "--jit-threshold must be >= 1@.";
    exit 2
  end;
  S.Request.set_default_jit ~enabled:(not no_jit) ~threshold

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* --- list ------------------------------------------------------------- *)

let list_cmd =
  let doc = "List benchmarks, compression schemes, and figure panels." in
  let run () =
    Format.printf "benchmarks:@.";
    List.iter
      (fun p -> Format.printf "  %a@." W.Profile.pp p)
      W.Profile.spec2000;
    Format.printf "@.compression schemes:@.";
    List.iter
      (fun s -> Format.printf "  %s@." s.A.Compress.name)
      A.Compress.fig7_schemes;
    Format.printf "@.figure panels:@.";
    List.iter (fun (id, _) -> Format.printf "  %s@." id) H.Figures.all;
    Format.printf "@.ablations:@.";
    List.iter (fun (id, _) -> Format.printf "  %s@." id) H.Ablate.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- shared options ---------------------------------------------------- *)

let bench_arg =
  Arg.(value & opt string "gzip" & info [ "b"; "bench" ] ~docv:"NAME"
         ~doc:"Workload profile name.")

let dyn_arg =
  Arg.(value & opt int 300_000 & info [ "dyn" ] ~docv:"N"
         ~doc:"Approximate dynamic instructions per run.")

let icache_arg =
  Arg.(value & opt (some int) (Some 32) & info [ "icache" ] ~docv:"KB"
         ~doc:"I-cache size in KB; 0 means perfect.")

let width_arg =
  Arg.(value & opt int 4 & info [ "width" ] ~docv:"N" ~doc:"Machine width.")

let rt_arg =
  Arg.(value & opt (some int) None & info [ "rt" ] ~docv:"ENTRIES"
         ~doc:"Model a finite RT with this many entries (default: perfect).")

let rt_assoc_arg =
  Arg.(value & opt int 2 & info [ "rt-assoc" ] ~docv:"N"
         ~doc:"RT associativity.")

let machine_of icache width =
  Config.default
  |> Config.with_width width
  |> Config.with_icache_kb (match icache with Some 0 -> None | x -> x)

let spec_of dyn icache width rt rt_assoc composing =
  let controller =
    match rt with
    | None -> None
    | Some entries ->
      Some
        { Controller.default_config with
          rt_entries = entries;
          rt_assoc;
          composing }
  in
  { H.Experiment.dyn_target = dyn; machine = machine_of icache width;
    controller }

(* --- run --------------------------------------------------------------- *)

let acf_arg =
  let acfs =
    [ ("none", `None); ("mfi-dise3", `Dise3); ("mfi-dise4", `Dise4);
      ("mfi-rewrite", `Rewrite); ("decompress", `Decompress);
      ("composed", `Composed) ]
  in
  Arg.(value & opt (enum acfs) `None & info [ "acf" ] ~docv:"ACF"
         ~doc:"Customization function: $(docv) is one of none, mfi-dise3, \
               mfi-dise4, mfi-rewrite, decompress, composed.")

let acf_name = function
  | `None -> "none"
  | `Dise3 -> "mfi-dise3"
  | `Dise4 -> "mfi-dise4"
  | `Rewrite -> "mfi-rewrite"
  | `Decompress -> "decompress"
  | `Composed -> "composed"

let stats_json_arg =
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
         ~doc:"Write run statistics (counters, CPI stack, per-production \
               profile) as JSON to $(docv); see doc/schema/stats.schema.json.")

let trace_out_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome trace_event pipeline timeline to $(docv). Load \
               it in Perfetto or chrome://tracing; the microsecond fields \
               hold simulated cycles.")

let cpi_stack_arg =
  Arg.(value & flag & info [ "cpi-stack" ]
         ~doc:"Print the CPI-stack cycle attribution and the per-production \
               expansion profile after the run.")

let run_cmd =
  let doc = "Simulate one workload under one ACF and machine configuration." in
  let run bench dyn icache width acf rt rt_assoc stats_json trace_path cpi
      cache_dir no_cache no_jit jit_threshold =
    setup_cache cache_dir no_cache;
    setup_jit no_jit jit_threshold;
    let entry = entry_of bench dyn in
    let spec = spec_of dyn icache width rt rt_assoc (acf = `Composed) in
    let trace_chan = Option.map open_out trace_path in
    let trace = Option.map (fun c -> T.Trace.to_channel c) trace_chan in
    let profile =
      if stats_json <> None || cpi then Some (T.Profile.create ()) else None
    in
    let stats =
      guarded (fun () ->
          match acf with
          | `None -> H.Experiment.baseline ?trace ?profile spec entry
          | `Dise3 ->
            H.Experiment.mfi_dise ~variant:A.Mfi.Dise3 ?trace ?profile spec
              entry
          | `Dise4 ->
            H.Experiment.mfi_dise ~variant:A.Mfi.Dise4 ?trace ?profile spec
              entry
          | `Rewrite -> H.Experiment.mfi_rewrite ?trace ?profile spec entry
          | `Decompress ->
            H.Experiment.decompress_run ~scheme:A.Compress.full_dise ?trace
              ?profile spec entry
          | `Composed ->
            H.Experiment.decompress_run ~scheme:A.Compress.full_dise
              ~mfi:`Composed ?trace ?profile spec entry)
    in
    (match trace_chan with
    | Some c ->
      close_out c;
      let tr = Option.get trace in
      if T.Trace.truncated tr then
        Format.printf "(trace written to %s; %d events, %d dropped at the cap)@."
          (Option.get trace_path) (T.Trace.emitted tr) (T.Trace.dropped tr)
      else Format.printf "(trace written to %s)@." (Option.get trace_path)
    | None -> ());
    Format.printf "machine: %a@." Config.pp spec.H.Experiment.machine;
    Format.printf "%a@." Stats.pp stats;
    let base = guarded (fun () -> H.Experiment.baseline spec entry) in
    if acf <> `None then
      Format.printf "relative to ACF-free: %.3f@."
        (H.Experiment.relative stats ~baseline:base);
    if cpi then begin
      Format.printf "@.%a@." T.Cpi_stack.pp stats.Stats.cpi;
      match profile with
      | Some p when T.Profile.total_expansions p > 0 ->
        Format.printf "@.%a@." T.Profile.pp p
      | _ -> ()
    end;
    match stats_json with
    | None -> ()
    | Some path ->
      let doc =
        T.Json.Obj
          [
            ("benchmark", T.Json.String bench);
            ("acf", T.Json.String (acf_name acf));
            ("dyn_target", T.Json.Int dyn);
            ( "machine",
              T.Json.Obj
                [
                  ("width", T.Json.Int width);
                  ( "icache_kb",
                    match icache with
                    | Some 0 | None -> T.Json.Null
                    | Some kb -> T.Json.Int kb );
                ] );
            ("stats", Stats.to_json stats);
            ( "profile",
              match profile with
              | Some p -> T.Profile.to_json p
              | None -> T.Json.Null );
            ( "trace",
              match trace with
              | Some tr ->
                T.Json.Obj
                  [
                    ("emitted", T.Json.Int (T.Trace.emitted tr));
                    ("dropped", T.Json.Int (T.Trace.dropped tr));
                    ("truncated", T.Json.Bool (T.Trace.truncated tr));
                  ]
              | None -> T.Json.Null );
          ]
      in
      write_file path (T.Json.to_string ~indent:true doc);
      Format.printf "(stats written to %s)@." path
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ bench_arg $ dyn_arg $ icache_arg $ width_arg $ acf_arg
          $ rt_arg $ rt_assoc_arg $ stats_json_arg $ trace_out_arg
          $ cpi_stack_arg $ cache_dir_arg $ no_cache_arg $ no_jit_arg
          $ jit_threshold_arg)

(* --- compress ---------------------------------------------------------- *)

let scheme_arg =
  let conv_name s =
    match
      List.find_opt (fun c -> c.A.Compress.name = s) A.Compress.fig7_schemes
    with
    | Some c -> Ok c
    | None -> Error (`Msg ("unknown scheme " ^ s))
  in
  let printer ppf s = Format.pp_print_string ppf s.A.Compress.name in
  Arg.(value & opt (conv (conv_name, printer)) A.Compress.full_dise
       & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Compression scheme name.")

let compress_cmd =
  let doc = "Compress one workload and report sizes." in
  let show_arg =
    Arg.(value & opt int 0 & info [ "show-dictionary" ] ~docv:"N"
           ~doc:"Print the $(docv) most-used dictionary entries.")
  in
  let run bench dyn scheme show stats_json cache_dir no_cache no_jit
      jit_threshold =
    setup_cache cache_dir no_cache;
    setup_jit no_jit jit_threshold;
    let entry = entry_of bench dyn in
    (* A sizes-only invocation goes through the disk-cacheable summary
       (warm reruns skip the compressor); dumping dictionary entries
       needs the full in-memory result. *)
    let s, full =
      guarded (fun () ->
          if show > 0 then
            let r = H.Experiment.compress_result ~scheme entry in
            ( {
                S.Request.orig_text_bytes = r.A.Compress.orig_text_bytes;
                text_bytes = r.A.Compress.text_bytes;
                dict_bytes = r.A.Compress.dict_bytes;
                dict_entries = List.length r.A.Compress.entries;
                codewords = r.A.Compress.codewords;
              },
              Some r )
          else (S.Request.compress_summary ~scheme entry, None))
    in
    (match stats_json with
    | None -> ()
    | Some path ->
      let doc =
        T.Json.Obj
          [
            ("benchmark", T.Json.String bench);
            ("scheme", T.Json.String scheme.A.Compress.name);
            ("orig_text_bytes", T.Json.Int s.S.Request.orig_text_bytes);
            ("text_bytes", T.Json.Int s.S.Request.text_bytes);
            ("dict_bytes", T.Json.Int s.S.Request.dict_bytes);
            ("dict_entries", T.Json.Int s.S.Request.dict_entries);
            ("codewords", T.Json.Int s.S.Request.codewords);
            ( "text_ratio",
              T.Json.Float (S.Request.summary_compression_ratio s) );
            ("total_ratio", T.Json.Float (S.Request.summary_total_ratio s));
          ]
      in
      write_file path (T.Json.to_string ~indent:true doc);
      Format.printf "(stats written to %s)@." path);
    Format.printf "scheme %s on %s:@." scheme.A.Compress.name bench;
    Format.printf "  original text:   %7d bytes@." s.S.Request.orig_text_bytes;
    Format.printf "  compressed text: %7d bytes (%.1f%%)@."
      s.S.Request.text_bytes
      (100. *. S.Request.summary_compression_ratio s);
    Format.printf "  dictionary:      %7d bytes (%d entries)@."
      s.S.Request.dict_bytes s.S.Request.dict_entries;
    Format.printf "  total:           %.1f%% of original@."
      (100. *. S.Request.summary_total_ratio s);
    Format.printf "  codewords planted: %d@." s.S.Request.codewords;
    match full with
    | Some r when show > 0 ->
      let by_use =
        List.sort
          (fun a b -> compare b.A.Compress.uses a.A.Compress.uses)
          r.A.Compress.entries
      in
      List.iteri
        (fun i e ->
          if i < show then begin
            Format.printf "@.  tag %d: %d codewords, %d params@."
              e.A.Compress.tag e.A.Compress.uses e.A.Compress.param_fields;
            Array.iter
              (fun ri ->
                Format.printf "    %a@." Dise_core.Replacement.pp_rinsn ri)
              e.A.Compress.spec
          end)
        by_use
    | _ -> ()
  in
  Cmd.v (Cmd.info "compress" ~doc)
    Term.(const run $ bench_arg $ dyn_arg $ scheme_arg $ show_arg
          $ stats_json_arg $ cache_dir_arg $ no_cache_arg $ no_jit_arg
          $ jit_threshold_arg)

(* --- synthesize: profile-guided dictionary search ----------------------- *)

let synthesize_cmd =
  let doc =
    "Synthesize a decompression dictionary from a workload's dynamic \
     profile: collect the baseline fetch histogram, mine the recurring \
     compressible windows, and hill-climb over candidate dictionaries, \
     scoring each on the timing model through the result cache (locally \
     on the domain pool, or against a running serve tier with \
     $(b,--serve)). Capacity is a hard constraint: candidates that \
     overflow the controller's PT or RT are rejected unsimulated. The \
     search is deterministic for a given $(b,--seed), and the journal in \
     $(b,--out) makes an interrupted run resumable. See doc/synthesize.md."
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Deterministic search seed (default 1): same seed, same \
                 dictionary, byte for byte.")
  in
  let budget_arg =
    Arg.(value & opt int 192 & info [ "budget" ] ~docv:"N"
           ~doc:"Maximum candidate evaluations (default 192).")
  in
  let jobs_arg =
    Arg.(value & opt int (S.Pool.default_jobs ())
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains for local scoring (default: available \
                   cores); ignored with $(b,--serve).")
  in
  let serve_arg =
    Arg.(value & opt (some string) None & info [ "serve" ] ~docv:"PATH"
           ~doc:"Score timing runs against the serve tier listening on the \
                 Unix-domain socket at $(docv) ($(b,disesim serve --socket)) \
                 instead of simulating in-process.")
  in
  let out_arg =
    Arg.(value & opt string "synth-out" & info [ "out" ] ~docv:"DIR"
           ~doc:"Output directory (default synth-out): dictionary.json plus \
                 the journal.jsonl resume memo.")
  in
  let run bench dyn scheme seed budget jobs serve out cache_dir no_cache
      no_jit jit_threshold =
    setup_cache cache_dir no_cache;
    setup_jit no_jit jit_threshold;
    (try Unix.mkdir out 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let backend =
      match serve with
      | Some path -> Sy.Score.Serve { path }
      | None -> Sy.Score.Local { jobs }
    in
    let cfg =
      Sy.Search.v ~dyn_target:dyn ~scheme ~rng_seed:seed ~budget ~backend
        ~journal:(Filename.concat out "journal.jsonl")
        ~progress:(fun m -> Format.eprintf "disesim synthesize: %s@." m)
        bench
    in
    let r = guarded (fun () -> Sy.Search.run cfg) in
    let dict_path = Filename.concat out "dictionary.json" in
    Sy.Search.write_dictionary ~path:dict_path cfg r;
    Format.printf "synthesized %d-entry dictionary (%d seeds) for %s (%s):@."
      (List.length r.Sy.Search.compress.A.Compress.entries)
      (List.length r.Sy.Search.seeds) bench scheme.A.Compress.name;
    Format.printf "  total ratio:   %.3f (text %.3f)@."
      r.Sy.Search.outcome.Sy.Score.ratio
      (A.Compress.compression_ratio r.Sy.Search.compress);
    Format.printf "  relative time: %.3f@." r.Sy.Search.outcome.Sy.Score.rel;
    Format.printf "  fitness:       %.4f after %d evaluations (%d candidate \
                   groups)@."
      r.Sy.Search.outcome.Sy.Score.fitness r.Sy.Search.evaluations
      r.Sy.Search.candidates;
    Format.printf "  footprint:     %d PT patterns, %d RT entries (fits: %b)@."
      r.Sy.Search.footprint.Dise_core.Prodset.pt_patterns
      r.Sy.Search.footprint.Dise_core.Prodset.rt_entries
      r.Sy.Search.outcome.Sy.Score.fits;
    Format.printf "(dictionary written to %s)@." dict_path
  in
  Cmd.v (Cmd.info "synthesize" ~doc)
    Term.(const run $ bench_arg $ dyn_arg $ scheme_arg $ seed_arg $ budget_arg
          $ jobs_arg $ serve_arg $ out_arg $ cache_dir_arg $ no_cache_arg
          $ no_jit_arg $ jit_threshold_arg)

(* --- figures ------------------------------------------------------------ *)

let figures_cmd =
  let doc = "Regenerate evaluation figure panels." in
  let ids_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"PANEL"
           ~doc:"Panel ids (default: all).")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Four benchmarks at reduced dynamic length.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR"
           ~doc:"Also write one CSV per panel into $(docv).")
  in
  let jobs_arg =
    Arg.(value & opt int (H.Pool.default_jobs ())
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains per panel (default: available cores). \
                   Results are identical for every $(docv); 1 is serial.")
  in
  let manifest_arg =
    Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE"
           ~doc:"Append one JSONL record per evaluated cell (series, \
                 benchmark, worker domain, wall-clock) plus per-panel \
                 pool-utilization summaries to $(docv).")
  in
  let run ids quick dyn csv jobs manifest_path cpi cache_dir no_cache no_jit
      jit_threshold =
    setup_cache cache_dir no_cache;
    setup_jit no_jit jit_threshold;
    let opts =
      if quick then H.Figures.quick_opts
      else { H.Figures.default_opts with H.Figures.dyn_target = dyn }
    in
    let manifest_chan = Option.map open_out manifest_path in
    let manifest = Option.map T.Manifest.to_channel manifest_chan in
    let opts =
      { opts with
        H.Figures.jobs;
        progress = (fun msg -> Format.eprintf "  [%s]@." msg);
        manifest }
    in
    let lookup id =
      match H.Figures.by_id id with
      | Some f -> (id, f)
      | None -> (
        match H.Ablate.by_id id with
        | Some f -> (id, f)
        | None ->
          Format.eprintf "unknown panel %s@." id;
          exit 2)
    in
    let panels =
      match ids with
      | [] -> H.Figures.all @ H.Ablate.all
      | ids -> List.map lookup ids
    in
    (match manifest with
    | Some m ->
      T.Manifest.emit m
        [
          ("kind", T.Json.String "meta");
          ("dyn_target", T.Json.Int opts.H.Figures.dyn_target);
          ("jobs", T.Json.Int jobs);
          ( "benchmarks",
            T.Json.List
              (List.map (fun b -> T.Json.String b) opts.H.Figures.benchmarks)
          );
          ( "panels",
            T.Json.List (List.map (fun (id, _) -> T.Json.String id) panels) );
        ]
    | None -> ());
    List.iter
      (fun (id, f) ->
        let fig = guarded (fun () -> f opts) in
        Format.printf "@.%a@." (H.Report.render ~cpi_stacks:cpi) fig;
        match csv with
        | Some dir ->
          let path = Filename.concat dir (id ^ ".csv") in
          write_file path (H.Report.to_csv fig);
          Format.printf "(csv written to %s)@." path;
          if fig.H.Figures.stacks <> [] then begin
            let cpi_path = Filename.concat dir (id ^ "-cpi.csv") in
            write_file cpi_path (H.Report.cpi_to_csv fig);
            Format.printf "(cpi csv written to %s)@." cpi_path
          end
        | None -> ())
      panels;
    match manifest, manifest_chan with
    | Some m, Some c ->
      T.Manifest.close m;
      close_out c;
      Format.printf "(manifest written to %s)@." (Option.get manifest_path)
    | _ -> ()
  in
  Cmd.v (Cmd.info "figures" ~doc)
    Term.(const run $ ids_arg $ quick_arg $ dyn_arg $ csv_arg $ jobs_arg
          $ manifest_arg $ cpi_stack_arg $ cache_dir_arg $ no_cache_arg
          $ no_jit_arg $ jit_threshold_arg)

(* --- serve: batch JSONL simulation service ------------------------------ *)

let serve_cmd =
  let doc =
    "Serve simulation requests in batch: JSONL requests in, JSONL \
     responses out (in input order). Reads stdin by default, or accepts \
     connections on a Unix-domain socket. With --workers N, shards the \
     tier across N worker processes behind an async front end. See \
     doc/service.md and doc/serve-tier.md for the request and response \
     schemas and the wire envelope."
  in
  let config_arg =
    Arg.(value & opt (some string) None & info [ "config" ] ~docv:"FILE"
           ~doc:"Load the serve configuration from a JSON file \
                 (doc/schema/serve_config.schema.json). Explicit flags \
                 override members of the file; unknown members are \
                 rejected.")
  in
  let workers_arg =
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N"
           ~doc:"Shard the serve tier across $(docv) worker processes, \
                 routing each job by its content-addressed result key \
                 (consistent hashing), and multiplex clients on an async \
                 front end. A crashed worker is respawned on its shard and \
                 its journal shard replayed. 0 (default) serves in-process.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ]
           ~docv:"N" ~doc:"Worker domains per process (default: available \
                           cores).")
  in
  let queue_arg =
    Arg.(value & opt (some int) None & info [ "queue" ] ~docv:"N"
           ~doc:"Max jobs in flight; further input is not read until the \
                 current batch's responses have been flushed (default: \
                 4*jobs).")
  in
  let socket_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on a Unix-domain socket at $(docv) instead of \
                 serving stdin; connections are served sequentially, each \
                 as one JSONL stream. If a live server already answers on \
                 $(docv), refuse to start (exit 6); a stale socket left by \
                 a crash is reclaimed.")
  in
  let deadline_arg =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Per-job wall-clock budget. An overrunning job is answered \
                 with an in-order error of kind 'timeout' (exit-code class \
                 5); its batch-mates are unaffected. Default: unbounded.")
  in
  let shed_arg =
    Arg.(value & opt (some int) None & info [ "shed-above" ] ~docv:"WORK"
           ~doc:"Admission high-water mark per in-flight window, in \
                 dynamic-instruction (dyn_target) units: jobs beyond it are \
                 answered with kind 'overloaded' instead of queueing. The \
                 first job of a window is always admitted. Default: never \
                 shed.")
  in
  let tenant_quota_arg =
    Arg.(value & opt (some int) None & info [ "tenant-quota" ] ~docv:"N"
           ~doc:"Max in-flight jobs per tenant (the request envelope's \
                 'tenant' member; requests without one share the anonymous \
                 tenant). Excess jobs are answered with kind 'overloaded' \
                 in input order. Default: no quota.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR"
           ~doc:"Crash-safe job journal: append every admitted job to \
                 $(docv)/journal.jsonl before it executes and mark it done \
                 once answered. On startup, jobs a previous crash \
                 interrupted are replayed into the result cache. With \
                 --workers, each worker keeps its shard's journal in \
                 $(docv)/worker-<shard>. See doc/resilience.md.")
  in
  let serve_manifest_arg =
    Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"FILE"
           ~doc:"Write one JSONL 'serve_summary' telemetry record per \
                 served stream (served/error/timeout/shed/isolated counts, \
                 resilience counters, breaker state) to $(docv).")
  in
  let breaker_arg =
    Arg.(value & opt (some int) None & info [ "breaker" ] ~docv:"N"
           ~doc:"Trip the result-cache circuit breaker after $(docv) \
                 consecutive store failures and serve cache-less (degraded) \
                 until a half-open probe succeeds. 0 disables the breaker \
                 (default: 8).")
  in
  let breaker_cooldown_arg =
    Arg.(value & opt (some int) None & info [ "breaker-cooldown-ms" ]
           ~docv:"MS"
           ~doc:"How long the breaker stays open before admitting a \
                 half-open probe (default: 5000).")
  in
  let chaos_schedule_arg =
    Arg.(value & opt (some string) None & info [ "chaos-schedule" ]
           ~docv:"FILE"
           ~doc:"Replay a deterministic chaos schedule against the sharded \
                 tier (requires --workers): a JSON file of seeded fault \
                 events (kill/stall/torn/drop_ping/suspect/\
                 truncate_journal) fired as the submitted-request count \
                 passes each event's 'after' \
                 (doc/schema/chaos_schedule.schema.json). The same file \
                 replays identically on every run. See doc/resilience.md.")
  in
  let run config workers jobs queue socket deadline_ms shed_above
      tenant_quota journal manifest_path breaker breaker_cooldown_ms
      chaos_schedule cache_dir no_cache no_jit jit_threshold =
    (* The default applies to every request that leaves the jit member
       out; requests spelling it out still win. *)
    setup_jit no_jit jit_threshold;
    (* Precedence, lowest to highest: defaults, --config file, flags. *)
    let base =
      match config with
      | None -> S.Serve_config.default ()
      | Some file -> (
        match S.Serve_config.of_file file with
        | Ok c -> c
        | Error d -> die d)
    in
    let cfg =
      S.Serve_config.override base ?workers ?jobs ?queue ?deadline_ms
        ?shed_above ?tenant_quota ?journal ?manifest:manifest_path ?breaker
        ?breaker_cooldown_ms ()
    in
    let manifest_chan = Option.map open_out cfg.S.Serve_config.manifest in
    let manifest_t = Option.map T.Manifest.to_channel manifest_chan in
    let close_manifest () =
      match (manifest_t, manifest_chan) with
      | Some m, Some c ->
        T.Manifest.close m;
        close_out c
      | _ -> ()
    in
    let stop = S.Server.Stop.create () in
    (* Graceful drain: finish the in-flight work, flush its responses,
       stop reading. *)
    let on_signal _ = S.Server.Stop.signal stop in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    if cfg.S.Serve_config.workers > 0 then begin
      (* Sharded tier: the coordinator never simulates, so the cache,
         breaker, JIT, and journal shards are configured inside each
         worker process from the spawn spec. *)
      let cache_dir =
        if no_cache then None
        else Some (match cache_dir with Some d -> d | None -> default_cache_dir ())
      in
      let jit = (not no_jit, jit_threshold) in
      let chaos =
        match chaos_schedule with
        | None -> None
        | Some file -> (
          match Fz.Chaos_sched.of_file file with
          | Error d -> die d
          | Ok sched ->
            (* Startup faults (torn journal tails) land before the tier
               boots, so recovery replays through the live ring. *)
            (match cfg.S.Serve_config.journal with
            | Some root ->
              let n = Fz.Chaos_sched.truncate_journals sched ~root in
              if n > 0 then
                Format.eprintf
                  "disesim serve: chaos schedule truncated %d journal \
                   tail%s@."
                  n
                  (if n = 1 then "" else "s")
            | None -> ());
            Some (Fz.Chaos_sched.hook sched))
      in
      Fun.protect ~finally:close_manifest (fun () ->
          match socket with
          | None ->
            let s =
              S.Coordinator.run_channel ~stop ?manifest:manifest_t ?chaos
                ?cache_dir ~jit cfg stdin stdout
            in
            Format.eprintf "disesim serve: %a@." S.Server.pp_summary s
          | Some path -> (
            Format.eprintf "disesim serve: listening on %s (%d workers)@."
              path cfg.S.Serve_config.workers;
            try
              let s =
                S.Coordinator.run_socket ~stop ?manifest:manifest_t ?chaos
                  ?cache_dir ~jit cfg ~path ()
              in
              Format.eprintf "disesim serve: %a@." S.Server.pp_summary s
            with S.Cache.Diag_error d -> die d))
    end
    else begin
      setup_cache cache_dir no_cache;
      if cfg.S.Serve_config.breaker > 0 then
        S.Request.set_cache_breaker
          (Some
             (S.Resilience.Breaker.create ~threshold:cfg.S.Serve_config.breaker
                ~cooldown_s:
                  (float_of_int cfg.S.Serve_config.breaker_cooldown_ms /. 1000.)
                ()));
      (* Replay whatever a previous crash left begun-but-unfinished,
         then start this run's journal from a clean file (everything
         recorded is now either cached or just re-executed). *)
      let journal_t =
        match cfg.S.Serve_config.journal with
        | None -> None
        | Some dir ->
          let replayed =
            guarded (fun () ->
                S.Server.replay_journal ~jobs:cfg.S.Serve_config.jobs ~dir ())
          in
          if replayed > 0 then
            Format.eprintf
              "disesim serve: replayed %d interrupted job%s from %s@."
              replayed
              (if replayed = 1 then "" else "s")
              (S.Resilience.Journal.file ~dir);
          S.Resilience.Journal.clear ~dir;
          Some (guarded (fun () -> S.Resilience.Journal.open_ ~dir))
      in
      let session =
        S.Server.session ~stop ?journal:journal_t ?manifest:manifest_t cfg
      in
      let finish () =
        (match journal_t with
        | Some j -> S.Resilience.Journal.close j
        | None -> ());
        close_manifest ()
      in
      Fun.protect ~finally:finish (fun () ->
          match socket with
          | None ->
            let s = S.Server.serve_channel session stdin stdout in
            Format.eprintf "disesim serve: %a@." S.Server.pp_summary s
          | Some path -> (
            Format.eprintf "disesim serve: listening on %s@." path;
            try S.Server.serve_socket session ~path ()
            with S.Cache.Diag_error d -> die d))
    end
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ config_arg $ workers_arg $ jobs_arg $ queue_arg
          $ socket_arg $ deadline_arg $ shed_arg $ tenant_quota_arg
          $ journal_arg $ serve_manifest_arg $ breaker_arg
          $ breaker_cooldown_arg $ chaos_schedule_arg $ cache_dir_arg
          $ no_cache_arg $ no_jit_arg $ jit_threshold_arg)

(* --- cache: inspect / clear the result cache ---------------------------- *)

let cache_cmd =
  let open_cache dir =
    let dir = match dir with Some d -> d | None -> default_cache_dir () in
    match S.Cache.create ~dir with
    | c -> c
    | exception S.Cache.Diag_error d -> die d
  in
  let clear_cmd =
    let doc = "Delete every cached result (keeps the directory)." in
    let run dir =
      let c = open_cache dir in
      match S.Cache.clear c with
      | n -> Format.printf "removed %d entries from %s@." n (S.Cache.dir c)
      | exception S.Cache.Diag_error d -> die d
    in
    Cmd.v (Cmd.info "clear" ~doc) Term.(const run $ cache_dir_arg)
  in
  let info_cmd =
    let doc = "Show the cache location, entry count, and version salt." in
    let run dir =
      let c = open_cache dir in
      Format.printf "dir:     %s@." (S.Cache.dir c);
      Format.printf "entries: %d@." (S.Cache.entries c);
      Format.printf "salt:    %s@." S.Cache.salt
    in
    Cmd.v (Cmd.info "info" ~doc) Term.(const run $ cache_dir_arg)
  in
  let doc = "Inspect or clear the on-disk result cache." in
  Cmd.group (Cmd.info "cache" ~doc) [ clear_cmd; info_cmd ]

(* --- exec: assemble and run user programs -------------------------------- *)

let exec_cmd =
  let doc =
    "Assemble a program, optionally activate a production-set file, and \
     run it (functionally, with a timing summary)."
  in
  let asm_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM.S"
           ~doc:"Assembly source (see lib/isa/asm.mli for the syntax).")
  in
  let prods_arg =
    Arg.(value & opt (some file) None & info [ "p"; "productions" ]
           ~docv:"FILE.DISE"
           ~doc:"Production-set source (the DSL of lib/core/lang.mli). \
                 Labels resolve against the program's symbols.")
  in
  let dr_arg =
    Arg.(value & opt_all (pair ~sep:'=' int int) []
         & info [ "dr" ] ~docv:"N=V"
             ~doc:"Initialize dedicated register \\$drN to V (repeatable).")
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Print every executed instruction.")
  in
  let run asm_path prods_path drs trace =
    let program =
      match Dise_isa.Asm.parse_result ~source:asm_path (read_file asm_path) with
      | Ok p -> p
      | Error d -> die d
    in
    let img = Dise_isa.Program.layout program in
    let expander =
      match prods_path with
      | None -> None
      | Some path -> (
        match Dise_core.Lang.parse_result ~source:path (read_file path) with
        | Ok set ->
          let set =
            Dise_core.Prodset.resolve_labels
              (Dise_isa.Program.Image.symbol img) set
          in
          List.iter
            (fun f ->
              Format.eprintf "%s: %a@." path Dise_core.Safety.pp_finding f)
            (Dise_core.Safety.check set);
          Some (Dise_core.Engine.expander (Dise_core.Engine.create set))
        | Error d -> die d)
    in
    let m = Machine.create ?expander img in
    List.iter (fun (n, v) -> Machine.set_dise_reg m n v) drs;
    let pipeline = Dise_uarch.Pipeline.create Config.default in
    (try
       ignore
         (Machine.run_events ~max_steps:50_000_000 m (fun ev ->
              Dise_uarch.Pipeline.consume pipeline ev;
              if trace then
                Format.printf "%08x%s %s@." ev.Machine.Event.pc
                  (match ev.Machine.Event.origin with
                  | Machine.Event.App -> "   "
                  | Machine.Event.Rep { offset; _ } ->
                    Printf.sprintf ":%-2d" offset)
                  (Dise_isa.Insn.to_string ev.Machine.Event.insn)))
     with Machine.Runtime_error msg -> die (Diag.Runtime msg));
    let stats = Dise_uarch.Pipeline.finish pipeline in
    Format.printf "exit code: %d@." (Machine.exit_code m);
    Format.printf "%a@." Stats.pp stats
  in
  Cmd.v (Cmd.info "exec" ~doc)
    Term.(const run $ asm_arg $ prods_arg $ dr_arg $ trace_arg)

(* --- safety: inspect a production-set file -------------------------------- *)

let safety_cmd =
  let doc =
    "Run the kernel's inspection (static safety analysis) on a \
     production-set file."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.DISE")
  in
  let reserved_arg =
    Arg.(value & opt_all int [ 2; 3 ] & info [ "reserved" ] ~docv:"N"
           ~doc:"Dedicated registers the kernel reserves (repeatable; \
                 default \\$dr2 and \\$dr3).")
  in
  let run path reserved =
    let ic = open_in_bin path in
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Dise_core.Lang.parse_result ~source:path src with
    | Ok set -> (
      (* Bind any symbolic targets to a placeholder: inspection is
         structural, not about concrete addresses. *)
      let set = Dise_core.Prodset.resolve_labels (fun _ -> Some 0) set in
      match Dise_core.Safety.check ~reserved_dedicated:reserved set with
      | [] ->
        Format.printf "%s: approved (%d productions, %d sequences)@." path
          (Dise_core.Prodset.num_productions set)
          (Dise_core.Prodset.num_sequences set)
      | findings ->
        List.iter
          (fun f -> Format.printf "%a@." Dise_core.Safety.pp_finding f)
          findings;
        if Dise_core.Safety.errors findings <> [] then exit 1)
    | Error d -> die d
  in
  Cmd.v (Cmd.info "safety" ~doc) Term.(const run $ file_arg $ reserved_arg)

(* --- validate: JSON-Schema checking of telemetry output ------------------- *)

let validate_cmd =
  let doc =
    "Validate a JSON file against a JSON-Schema file (the subset of \
     keywords used by doc/schema/, see lib/telemetry/json_schema.mli). \
     Exits 1 on parse or validation failure."
  in
  let schema_arg =
    Arg.(required & opt (some file) None & info [ "schema" ] ~docv:"SCHEMA"
           ~doc:"JSON-Schema file.")
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"JSON document to check.")
  in
  let parse_or_die what path =
    match T.Json.parse (read_file path) with
    | doc -> doc
    | exception T.Json.Parse_error msg ->
      Format.eprintf "%s %s: %s@." what path msg;
      exit 1
  in
  let run schema_path path =
    let schema = parse_or_die "schema" schema_path in
    let doc = parse_or_die "document" path in
    match T.Json_schema.validate ~schema doc with
    | [] -> Format.printf "%s: conforms to %s@." path schema_path
    | errors ->
      List.iter
        (fun e -> Format.eprintf "%s: %a@." path T.Json_schema.pp_error e)
        errors;
      exit 1
  in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const run $ schema_arg $ file_arg)

(* --- disasm -------------------------------------------------------------- *)

let disasm_cmd =
  let doc = "Disassemble a generated workload (first N instructions)." in
  let count_arg =
    Arg.(value & opt int 60 & info [ "n" ] ~docv:"N" ~doc:"Instructions.")
  in
  let run bench dyn n =
    let entry = entry_of bench dyn in
    let img = entry.W.Suite.image in
    Dise_isa.Disasm.pp_range Format.std_formatter img ~lo:0
      ~hi:(min n (Dise_isa.Program.Image.length img));
    Format.printf "... (%d instructions total)@."
      (Dise_isa.Program.Image.length img)
  in
  Cmd.v (Cmd.info "disasm" ~doc)
    Term.(const run $ bench_arg $ dyn_arg $ count_arg)

(* --- fuzz: differential fuzzing + fault injection ----------------------- *)

let fuzz_cmd =
  let doc =
    "Differential fuzzing and fault injection. Random programs and \
     production sets are executed in lockstep by a naive reference \
     expander, both engine memoization strategies, and the full \
     pipeline; any divergence in architectural state, kept-stream \
     events, or stats invariants is shrunk to a minimal case and \
     written as a replayable artifact. See doc/fuzzing.md."
  in
  let iterations_arg =
    Arg.(value & opt int 500 & info [ "iterations" ] ~docv:"N"
           ~doc:"Random cases to run (default 500).")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Deterministic case-stream seed (default 1).")
  in
  let out_arg =
    Arg.(value & opt string "fuzz-out" & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory for the repro artifact of a found failure \
                 (default fuzz-out).")
  in
  let self_test_arg =
    Arg.(value & flag & info [ "self-test" ]
           ~doc:"Inject a known-bad engine mutation and assert the fuzzer \
                 detects it within $(b,50) iterations; exits non-zero if \
                 the mutation escapes.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"PATH"
           ~doc:"Re-execute a repro artifact (directory or case.json) and \
                 report whether the recorded verdict reproduces.")
  in
  let faults_arg =
    Arg.(value & flag & info [ "faults" ]
           ~doc:"Run the fault-injection matrix instead of differential \
                 fuzzing: corrupt cache entries (including a multi-domain \
                 hammer), malformed/oversized/partial JSONL serve lines, \
                 and a mid-batch SIGINT drain.")
  in
  let chaos_arg =
    Arg.(value & flag & info [ "chaos" ]
           ~doc:"Run the scheduled-chaos checks instead of differential \
                 fuzzing: a fixed fault schedule (heartbeat loss, \
                 gray-failure stall, torn frame, permanent shard kill) \
                 against a live 3-worker tier, asserting exactly-once \
                 in-order responses and a deterministic replay. See \
                 doc/resilience.md.")
  in
  let log msg = Format.eprintf "disesim fuzz: %s@." msg in
  let module F = Dise_fuzz in
  let run iterations seed out self_test replay faults chaos =
    guarded @@ fun () ->
    match replay with
    | Some path -> (
      match F.Driver.replay ~log path with
      | Error d -> die d
      | Ok true -> Format.printf "replay: verdict reproduced@."
      | Ok false ->
        Format.printf "replay: verdict did NOT reproduce@.";
        exit 1)
    | None ->
      if chaos then begin
        let report = F.Faults.chaos_faults ~seed in
        Format.printf "%a@." F.Faults.pp_report report;
        if report.F.Faults.failures <> [] then exit 1
      end
      else if faults then begin
        let report = F.Faults.run_all ~seed in
        Format.printf "%a@." F.Faults.pp_report report;
        if report.F.Faults.failures <> [] then exit 1
      end
      else if self_test then begin
        match F.Driver.self_test ~out ~log ~seed () with
        | Ok f ->
          Format.printf
            "self-test: mutation detected at iteration %d ([%s] %s)@."
            f.F.Driver.iteration f.F.Driver.failure.F.Oracle.check
            f.F.Driver.failure.F.Oracle.detail
        | Error msg ->
          Format.eprintf "%s@." msg;
          exit 1
      end
      else begin
        match F.Driver.fuzz ~out ~log ~iterations ~seed () with
        | F.Driver.Clean { iterations } ->
          Format.printf "fuzz: %d iterations, no divergence@." iterations
        | F.Driver.Found f ->
          Format.printf "fuzz: FAILURE at iteration %d: [%s] %s@."
            f.F.Driver.iteration f.F.Driver.failure.F.Oracle.check
            f.F.Driver.failure.F.Oracle.detail;
          (match f.F.Driver.artifact with
          | Some dir -> Format.printf "fuzz: repro artifact in %s@." dir
          | None -> ());
          exit 1
      end
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const run $ iterations_arg $ seed_arg $ out_arg $ self_test_arg
          $ replay_arg $ faults_arg $ chaos_arg)

(* --- conformance: the versioned architectural suite ---------------------- *)

let conformance_cmd =
  let doc =
    "Run the checked-in architectural conformance vectors (test/arch/) on \
     all four expander backends (naive reference, dense-memo, \
     hashtable-memo, superblock JIT), write a per-cell CSV + HTML report, \
     and optionally append a per-commit trajectory record to \
     RESULTS_TRACKING.md/.jsonl. Exits non-zero on any signature mismatch \
     (and, with $(b,--check-regression), on a wall-clock or pass-rate \
     regression against the previous record). See doc/observability.md."
  in
  let dir_arg =
    Arg.(value & opt dir Fz.Conformance.default_dir
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Suite directory holding manifest.json and the vector \
                   sources (default test/arch).")
  in
  let out_arg =
    Arg.(value & opt string "_conformance" & info [ "out" ] ~docv:"DIR"
           ~doc:"Directory for report.csv and report.html (default \
                 _conformance).")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Run only the checked-in vectors (the default; overrides \
                 $(b,--fuzz)).")
  in
  let fuzz_arg =
    Arg.(value & opt int 0 & info [ "fuzz" ] ~docv:"N"
           ~doc:"Additionally run N fixed-seed differential-fuzz oracle \
                 iterations (the \"full\" suite; default 0).")
  in
  let update_arg =
    Arg.(value & flag & info [ "update" ]
           ~doc:"Recompute every vector's signature from a fresh naive \
                 reference run and rewrite manifest.json (the authoring \
                 path for new vectors), instead of checking.")
  in
  let track_arg =
    Arg.(value & flag & info [ "track" ]
           ~doc:"Append this run's trajectory record to the tracking files.")
  in
  let jsonl_arg =
    Arg.(value & opt string "RESULTS_TRACKING.jsonl"
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:"JSONL trajectory file (default RESULTS_TRACKING.jsonl).")
  in
  let md_arg =
    Arg.(value & opt string "RESULTS_TRACKING.md" & info [ "md" ] ~docv:"FILE"
           ~doc:"Markdown trajectory table (default RESULTS_TRACKING.md).")
  in
  let check_reg_arg =
    Arg.(value & flag & info [ "check-regression" ]
           ~doc:"Compare against the previous trajectory record for the \
                 same suite and fail on a >20% wall-clock regression or a \
                 pass-rate drop.")
  in
  let mkdir_p d =
    let rec go d =
      if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
        go (Filename.dirname d);
        try Unix.mkdir d 0o755
        with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      end
    in
    go d
  in
  let write_file path s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  let run suite_dir out quick fuzz update track jsonl md check_reg =
    let vectors =
      match Fz.Conformance.load_suite ~dir:suite_dir with
      | Ok vs -> vs
      | Error d -> die d
    in
    if update then begin
      match Fz.Conformance.update_signatures ~dir:suite_dir vectors with
      | Error d -> die d
      | Ok vs ->
        Fz.Conformance.save_manifest ~dir:suite_dir vs;
        List.iter
          (fun v ->
            Format.printf "%-16s %s@." v.Fz.Conformance.name
              v.Fz.Conformance.signature)
          vs;
        Format.printf "conformance: recorded %d signatures in %s@."
          (List.length vs)
          (Filename.concat suite_dir "manifest.json")
    end
    else begin
      let fuzz = if quick then 0 else fuzz in
      let report = Fz.Conformance.run_suite ~fuzz ~dir:suite_dir vectors in
      mkdir_p out;
      write_file (Filename.concat out "report.csv")
        (Fz.Conformance.csv_of_report report);
      write_file (Filename.concat out "report.html")
        (Fz.Conformance.html_of_report report);
      let total = List.length report.Fz.Conformance.cells in
      List.iter
        (fun c ->
          if not c.Fz.Conformance.pass then
            Format.eprintf "conformance: FAIL %s/%s: %s@."
              c.Fz.Conformance.vector c.Fz.Conformance.backend
              (match c.Fz.Conformance.error with
              | Some e -> e
              | None ->
                Printf.sprintf "signature %s, expected %s"
                  c.Fz.Conformance.signature c.Fz.Conformance.expected))
        report.Fz.Conformance.cells;
      Format.printf
        "conformance: %s suite: %d/%d cells passed (%d vectors x %d \
         backends) in %.3fs; p50 %dns p95 %dns p99 %dns; report in %s@."
        report.Fz.Conformance.suite report.Fz.Conformance.passed total
        report.Fz.Conformance.vectors
        (List.length Fz.Conformance.backends)
        report.Fz.Conformance.wall_s report.Fz.Conformance.p50_ns
        report.Fz.Conformance.p95_ns report.Fz.Conformance.p99_ns out;
      if report.Fz.Conformance.fuzz_cases > 0 then
        Format.printf "conformance: fuzz: %d cases, %d failures@."
          report.Fz.Conformance.fuzz_cases report.Fz.Conformance.fuzz_failures;
      let record =
        Fz.Conformance.trajectory_record
          ~ts:(int_of_float (Unix.time ()))
          report
      in
      let regression =
        if not check_reg then Ok ()
        else
          match
            T.Trajectory.last ~jsonl ~tool:"conformance"
              ~suite:report.Fz.Conformance.suite
          with
          | None -> Ok ()
          | Some prev -> T.Trajectory.check_regression ~prev record
      in
      if track then T.Trajectory.append ~md ~jsonl record;
      (match regression with
      | Ok () -> ()
      | Error msg ->
        Format.eprintf "conformance: REGRESSION: %s@." msg;
        exit 1);
      if
        report.Fz.Conformance.passed <> total
        || report.Fz.Conformance.fuzz_failures > 0
      then exit 1
    end
  in
  Cmd.v (Cmd.info "conformance" ~doc)
    Term.(const run $ dir_arg $ out_arg $ quick_arg $ fuzz_arg $ update_arg
          $ track_arg $ jsonl_arg $ md_arg $ check_reg_arg)

let () =
  (* Re-exec dispatch hooks: a no-op unless the matching environment
     variable is set. Serve-tier workers (Dise_service.Coordinator)
     and the fault matrix's SIGKILL victim (Dise_fuzz.Faults) both
     take over the process here, before any CLI parsing. *)
  S.Coordinator.worker_child_main ();
  Dise_fuzz.Faults.journal_child_main ();
  let doc = "DISE: programmable macro engine reproduction (ISCA 2003)" in
  let info = Cmd.info "disesim" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; compress_cmd; synthesize_cmd; figures_cmd;
            serve_cmd; fuzz_cmd;
            cache_cmd; exec_cmd; safety_cmd; disasm_cmd; validate_cmd;
            conformance_cmd ]))
