(* Benchmark harness.

   Regenerates every evaluation panel of the paper (Figures 6, 7, 8)
   over the synthetic SPEC2000-named suite, printing one table per
   panel, then runs Bechamel microbenchmarks of the engine primitives.

   Usage:
     dune exec bench/main.exe                 # everything, full suite
     dune exec bench/main.exe -- --quick      # 4 benchmarks, shorter runs
     dune exec bench/main.exe -- fig6-top fig7-ratio
     dune exec bench/main.exe -- --no-micro   # skip Bechamel section
     dune exec bench/main.exe -- --jobs 4     # 4 worker domains per panel
     dune exec bench/main.exe -- --json out.json  # machine-readable results
     dune exec bench/main.exe -- --manifest run.jsonl  # per-cell telemetry
     dune exec bench/main.exe -- --trajectory RESULTS_TRACKING.jsonl
                                              # append a per-commit record
     dune exec bench/main.exe -- --cpi-stack  # CPI-stack table per panel
     dune exec bench/main.exe -- --cache DIR  # on-disk result cache
     dune exec bench/main.exe -- --no-cache   # disable the result cache
     dune exec bench/main.exe -- --no-jit     # interpret every fetch
     dune exec bench/main.exe -- --jit-threshold K  # compile after K (def 8) *)

module H = Dise_harness
module W = Dise_workload
module A = Dise_acf
module Core = Dise_core
module T = Dise_telemetry
module I = Dise_isa.Insn

let usage () =
  prerr_endline
    "usage: main.exe [--quick] [--no-micro] [--dyn N] [--jobs N] [--json \
     FILE] [--manifest FILE] [--trajectory FILE] [--cpi-stack] [--cache \
     DIR] [--no-cache] [--no-jit] [--jit-threshold K] [panel-id ...]";
  exit 2

let parse_args () =
  let quick = ref false in
  let micro = ref true in
  let dyn = ref 300_000 in
  let jobs = ref (H.Pool.default_jobs ()) in
  let json = ref None in
  let manifest = ref None in
  let trajectory = ref None in
  let cpi = ref false in
  let cache = ref None in
  let no_cache = ref false in
  let no_jit = ref false in
  let jit_threshold = ref Dise_machine.Machine.default_jit_threshold in
  let panels = ref [] in
  let int_arg name n =
    match int_of_string_opt n with
    | Some v -> v
    | None ->
      Format.eprintf "%s expects an integer, got %S@." name n;
      usage ()
  in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      go rest
    | "--no-micro" :: rest ->
      micro := false;
      go rest
    | "--cpi-stack" :: rest ->
      cpi := true;
      go rest
    | "--dyn" :: n :: rest ->
      dyn := int_arg "--dyn" n;
      go rest
    | "--jobs" :: n :: rest ->
      jobs := int_arg "--jobs" n;
      go rest
    | "--json" :: file :: rest ->
      json := Some file;
      go rest
    | "--manifest" :: file :: rest ->
      manifest := Some file;
      go rest
    | "--trajectory" :: file :: rest ->
      trajectory := Some file;
      go rest
    | "--cache" :: dir :: rest ->
      cache := Some dir;
      go rest
    | "--no-cache" :: rest ->
      no_cache := true;
      go rest
    | "--no-jit" :: rest ->
      no_jit := true;
      go rest
    | "--jit-threshold" :: n :: rest ->
      jit_threshold := max 1 (int_arg "--jit-threshold" n);
      go rest
    | ("--dyn" | "--jobs" | "--json" | "--manifest" | "--trajectory"
      | "--cache" | "--jit-threshold") :: [] ->
      usage ()
    | id :: rest ->
      panels := id :: !panels;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  ( !quick, !micro, !dyn, !jobs, !json, (!manifest, !trajectory), !cpi,
    (!cache, !no_cache), (!no_jit, !jit_threshold), List.rev !panels )

(* --- JSON output (BENCH_*.json trajectory format) ---------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_results ~quick ~dyn ~jobs ~total results =
  let b = Buffer.create 4096 in
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"suite\": %s,\n" (str (if quick then "quick" else "full")));
  Buffer.add_string b
    (Printf.sprintf "  \"dyn_target\": %d,\n" (if quick then 120_000 else dyn));
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string b
    (Printf.sprintf "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string b (Printf.sprintf "  \"total_elapsed_s\": %.3f,\n" total);
  Buffer.add_string b "  \"panels\": [\n";
  List.iteri
    (fun i (id, elapsed, (fig : H.Figures.figure)) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (Printf.sprintf "    { \"id\": %s,\n" (str id));
      Buffer.add_string b
        (Printf.sprintf "      \"elapsed_s\": %.3f,\n" elapsed);
      Buffer.add_string b
        (Printf.sprintf "      \"title\": %s,\n" (str fig.H.Figures.title));
      Buffer.add_string b "      \"series\": [\n";
      List.iteri
        (fun j (s : H.Figures.series) ->
          if j > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b
            (Printf.sprintf "        { \"label\": %s, \"values\": {"
               (str s.H.Figures.label));
          List.iteri
            (fun k (bench, v) ->
              if k > 0 then Buffer.add_string b ", ";
              Buffer.add_string b
                (Printf.sprintf "%s: %.17g" (str bench) v))
            s.H.Figures.values;
          Buffer.add_string b "} }")
        fig.H.Figures.series;
      Buffer.add_string b "\n      ] }")
    results;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let run_panels ~quick ~dyn ~jobs ~manifest ~cpi ids =
  let opts =
    if quick then { H.Figures.quick_opts with H.Figures.jobs; manifest }
    else
      { H.Figures.default_opts with H.Figures.dyn_target = dyn; jobs;
        manifest }
  in
  let lookup id =
    match H.Figures.by_id id with
    | Some f -> (id, f)
    | None -> (
      match H.Ablate.by_id id with
      | Some f -> (id, f)
      | None ->
        Format.eprintf "unknown panel %s@." id;
        exit 2)
  in
  let panels =
    match ids with
    | [] -> H.Figures.all @ H.Ablate.all
    | ids -> List.map lookup ids
  in
  List.map
    (fun (id, f) ->
      let t0 = Unix.gettimeofday () in
      Format.eprintf "running %s...@." id;
      let fig = f opts in
      let elapsed = Unix.gettimeofday () -. t0 in
      Format.printf "@.%a" (H.Report.render ~cpi_stacks:cpi) fig;
      Format.printf "(elapsed %.1fs)@." elapsed;
      (id, elapsed, fig))
    panels

(* --- Bechamel microbenchmarks of the engine primitives ----------------- *)

let microbenches () =
  let open Bechamel in
  let mfi_set =
    Core.Prodset.resolve_labels
      (fun _ -> Some 0x9000)
      (Core.Lang.parse
         {|
         P1: T.OPCLASS == store -> R1
         P2: T.OPCLASS == load -> R1
         R1: srl T.RS, #26, $dr1
             xor $dr1, $dr2, $dr1
             bne $dr1, __error
             T.INSN
         |})
  in
  let engine = Core.Engine.create mfi_set in
  let store = I.Mem (Dise_isa.Opcode.Stq, Dise_isa.Reg.r 1, 8, Dise_isa.Reg.r 2) in
  let alu = I.Rop (Dise_isa.Opcode.Add, Dise_isa.Reg.r 1, Dise_isa.Reg.r 2, Dise_isa.Reg.r 3) in
  let pc = ref 0x100000 in
  let bench_expand_hit =
    Test.make ~name:"engine.expand (memoized)"
      (Staged.stage (fun () -> Core.Engine.expand engine ~pc:0x100000 store))
  in
  let bench_expand_cold =
    Test.make ~name:"engine.expand (new pc)"
      (Staged.stage (fun () ->
           pc := !pc + 4;
           Core.Engine.expand engine ~pc:!pc store))
  in
  let bench_nomatch =
    Test.make ~name:"engine.expand (no match)"
      (Staged.stage (fun () -> Core.Engine.expand engine ~pc:0x100000 alu))
  in
  (* Same expansion path against a dense image, exercising the flat
     per-index memo instead of the hashtable. *)
  let dense_entry = W.Suite.get ~dyn_target:20_000 W.Profile.tiny in
  let dense_engine =
    Core.Engine.create ~image:dense_entry.W.Suite.image mfi_set
  in
  let dense_img = dense_entry.W.Suite.image in
  let dense_base = Dise_isa.Program.Image.base dense_img in
  let bench_expand_dense =
    Test.make ~name:"engine.expand (dense memo)"
      (Staged.stage (fun () ->
           Core.Engine.expand dense_engine ~pc:dense_base store))
  in
  let bench_pattern =
    let p = Core.Pattern.stores in
    Test.make ~name:"pattern.matches"
      (Staged.stage (fun () -> Core.Pattern.matches p store))
  in
  let rt = Core.Rt.create ~entries:2048 ~assoc:2 () in
  let rsid = ref 0 in
  let bench_rt =
    Test.make ~name:"rt.access"
      (Staged.stage (fun () ->
           rsid := (!rsid + 1) land 1023;
           Core.Rt.access rt ~rsid:!rsid ~len:4))
  in
  let cache = Dise_uarch.Cache.create ~size_bytes:32768 ~assoc:2 ~line_bytes:64 in
  let addr = ref 0 in
  let bench_cache =
    Test.make ~name:"icache.access"
      (Staged.stage (fun () ->
           addr := (!addr + 64) land 0xFFFFF;
           Dise_uarch.Cache.access cache !addr))
  in
  let entry = W.Suite.get ~dyn_target:20_000 W.Profile.tiny in
  let bench_emulate =
    Test.make ~name:"machine.run 20K-insn workload"
      (Staged.stage (fun () ->
           let m = Dise_machine.Machine.create entry.W.Suite.image in
           Dise_machine.Machine.run ~max_steps:2_000_000 m))
  in
  (* Steady-state JIT: the superblock state persists across
     iterations ([adopt_jit]) the same way an engine carries it across
     serve requests, so after the first iteration every fetch of the
     hot loop is served from the compiled arena and the row measures
     pure trace execution plus machine setup — the steady state the
     acceptance criterion targets. *)
  let bench_emulate_jit =
    let js = ref None in
    Test.make ~name:"machine.run 20K insns (jit)"
      (Staged.stage (fun () ->
           let m = Dise_machine.Machine.create entry.W.Suite.image in
           (match !js with
           | Some s when Dise_machine.Machine.adopt_jit m s -> ()
           | _ ->
             Dise_machine.Machine.enable_jit ~threshold:2 m;
             js := Dise_machine.Machine.jit_state m);
           Dise_machine.Machine.run ~max_steps:2_000_000 m))
  in
  let bench_compress =
    Test.make ~name:"compress tiny (full DISE)"
      (Staged.stage (fun () ->
           A.Compress.compress ~scheme:A.Compress.full_dise
             entry.W.Suite.gen.W.Codegen.program))
  in
  let tests =
    Test.make_grouped ~name:"dise"
      [ bench_expand_hit; bench_expand_cold; bench_expand_dense;
        bench_nomatch; bench_pattern; bench_rt; bench_cache; bench_emulate;
        bench_emulate_jit; bench_compress ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Format.printf "@.microbenchmarks (ns/op):@.";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Format.printf "  %-36s %12.1f@." name est
      | _ -> Format.printf "  %-36s (no estimate)@." name)
    results

let () =
  let quick, micro, dyn, jobs, json, (manifest_path, trajectory_path), cpi,
      (cache, no_cache), (no_jit, jit_threshold), panels =
    parse_args ()
  in
  Dise_service.Request.set_default_jit ~enabled:(not no_jit)
    ~threshold:jit_threshold;
  (* Same default as disesim: $DISESIM_CACHE or .disesim-cache, on
     unless --no-cache. *)
  (if not no_cache then
     let dir =
       match cache, Sys.getenv_opt "DISESIM_CACHE" with
       | Some d, _ -> d
       | None, Some d when d <> "" -> d
       | None, _ -> ".disesim-cache"
     in
     Dise_service.Request.set_disk_cache (Some (Dise_service.Cache.create ~dir)));
  Format.printf
    "DISE evaluation harness (%s suite, %d dynamic instructions, %d jobs)@."
    (if quick then "quick" else "full")
    (if quick then 120_000 else dyn)
    jobs;
  let manifest_chan = Option.map open_out manifest_path in
  let manifest = Option.map T.Manifest.to_channel manifest_chan in
  (match manifest with
  | Some m ->
    T.Manifest.emit m
      [
        ("kind", T.Json.String "meta");
        ("suite", T.Json.String (if quick then "quick" else "full"));
        ("dyn_target", T.Json.Int (if quick then 120_000 else dyn));
        ("jobs", T.Json.Int jobs);
        ( "host_cores", T.Json.Int (Domain.recommended_domain_count ()) );
      ]
  | None -> ());
  let t0 = Unix.gettimeofday () in
  let results = run_panels ~quick ~dyn ~jobs ~manifest ~cpi panels in
  let total = Unix.gettimeofday () -. t0 in
  (match manifest, manifest_chan with
  | Some m, Some c ->
    T.Manifest.emit m
      [
        ("kind", T.Json.String "summary");
        ("panels", T.Json.Int (List.length results));
        ("total_wall_s", T.Json.Float total);
      ];
    T.Manifest.close m;
    close_out c;
    Format.eprintf "wrote %s@." (Option.get manifest_path)
  | _ -> ());
  (match json with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc (json_of_results ~quick ~dyn ~jobs ~total results);
    close_out oc;
    Format.eprintf "wrote %s@." file);
  (* One per-commit record in the same trajectory format the
     conformance monitor appends, so bench wall-clock and per-panel
     latency quantiles sit in the same RESULTS_TRACKING.jsonl stream
     (doc/schema/trajectory.schema.json). *)
  (match trajectory_path with
  | None -> ()
  | Some file ->
    let h = T.Metrics.Histogram.make "bench_panel_ns" in
    let since = T.Metrics.Histogram.snapshot h in
    List.iter
      (fun (_, elapsed, _) -> T.Metrics.Histogram.observe_s h elapsed)
      results;
    let d = T.Metrics.Histogram.delta ~since (T.Metrics.Histogram.snapshot h) in
    let record =
      {
        T.Trajectory.tool = "bench";
        suite = (if quick then "quick" else "full");
        ts = int_of_float (Unix.time ());
        commit = T.Trajectory.commit_id ();
        cells = List.length results;
        passed = List.length results;
        wall_s = total;
        p50_ns = T.Metrics.Histogram.quantile d 0.50;
        p95_ns = T.Metrics.Histogram.quantile d 0.95;
        p99_ns = T.Metrics.Histogram.quantile d 0.99;
        extra =
          [
            ("dyn_target", T.Json.Int (if quick then 120_000 else dyn));
            ("jobs", T.Json.Int jobs);
          ];
      }
    in
    T.Trajectory.append ~jsonl:file record;
    Format.eprintf "appended trajectory record to %s@." file);
  if micro then microbenches ();
  Format.printf "@.done.@."
