(* Load generator for the serve tier.

   Opens N concurrent connections to a running [disesim serve --socket]
   endpoint (single-process or sharded, the wire is identical), drives
   each with a windowed pipeline of JSONL jobs, and reports client-side
   end-to-end latency quantiles plus throughput. Server-side quantiles
   (queue wait, execute, end to end) land in the server's merged
   serve_summary manifest record — run the server with --manifest and
   read the two reports side by side.

   Usage:
     dune exec bench/loadgen.exe -- --socket /tmp/dise.sock \
       --conns 4 --requests 200 --window 16 --warm-frac 0.5 \
       --json loadgen.json

   Each connection is one OCaml domain. Jobs mix warm requests (drawn
   from a small set of dyn_targets, cache hits after first touch) and
   cold ones (distinct dyn_targets, each a fresh simulation) in the
   proportion --warm-frac sets. *)

module Json = Dise_telemetry.Json

let socket_path = ref ""
let conns = ref 4
let requests = ref 100
let window = ref 16
let warm_frac = ref 0.5
let dyn = ref 20_000
let json_out = ref ""
let v1 = ref false
let error_breakdown = ref false

let args =
  [
    ("--socket", Arg.Set_string socket_path, "PATH serve socket (required)");
    ("--conns", Arg.Set_int conns, "N concurrent connections (default 4)");
    ( "--requests",
      Arg.Set_int requests,
      "N jobs per connection (default 100)" );
    ( "--window",
      Arg.Set_int window,
      "N outstanding jobs per connection (default 16)" );
    ( "--warm-frac",
      Arg.Set_float warm_frac,
      "F fraction of cache-warm jobs, 0..1 (default 0.5)" );
    ( "--dyn",
      Arg.Set_int dyn,
      "N base dynamic instruction target (default 20000)" );
    ("--json", Arg.Set_string json_out, "FILE write the report as JSON");
    ("--v1", Arg.Set v1, "send explicit v:1 envelopes (default: v0 lines)");
    ( "--error-breakdown",
      Arg.Set error_breakdown,
      " report per-error-kind counts (timeout/overloaded/internal/parse/...) \
       so chaos and failover runs quantify their degradation" );
  ]

let usage = "usage: loadgen.exe --socket PATH [options]"

(* The warm set: a handful of dyn_targets every connection shares, so
   after first touch they are tier-wide cache hits. Cold jobs get a
   dyn_target unique to (connection, index). *)
let warm_set_size = 8

let job_line ~conn ~index =
  let warm =
    !warm_frac >= 1.0
    || (!warm_frac > 0.0
       && float_of_int (index mod 100) < (!warm_frac *. 100.0))
  in
  let dyn_target =
    if warm then !dyn + (index mod warm_set_size)
    else !dyn + 1_000 + (conn * !requests) + index
  in
  let v = if !v1 then {|"v":1,|} else "" in
  Printf.sprintf {|{%s"id":%d,"bench":"tiny","dyn_target":%d}|} v
    ((conn * !requests) + index)
    dyn_target

type conn_result = {
  sent : int;
  ok : int;
  errors : int;
  cache_hits : int;
  latencies_s : float array;
  kinds : (string, int) Hashtbl.t;
      (* error kind ("timeout", "internal", ...) -> count; unparseable
         response lines count under "unparseable", error responses
         without a kind under "unknown" *)
}

(* One connection: keep [window] jobs outstanding, match responses to
   requests by order (the server answers each stream in input order). *)
let drive_conn conn =
  let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect s (Unix.ADDR_UNIX !socket_path);
  let ic = Unix.in_channel_of_descr s in
  let send_times = Queue.create () in
  let latencies = Array.make !requests 0.0 in
  let ok = ref 0 and errors = ref 0 and hits = ref 0 and got = ref 0 in
  let kinds = Hashtbl.create 7 in
  let count_kind k =
    Hashtbl.replace kinds k (1 + Option.value (Hashtbl.find_opt kinds k) ~default:0)
  in
  let send index =
    let line = job_line ~conn ~index ^ "\n" in
    let b = Bytes.of_string line in
    let rec put off =
      if off < Bytes.length b then
        put (off + Unix.write s b off (Bytes.length b - off))
    in
    put 0;
    Queue.push (Unix.gettimeofday ()) send_times
  in
  let recv () =
    let line = input_line ic in
    let t0 = Queue.pop send_times in
    latencies.(!got) <- Unix.gettimeofday () -. t0;
    incr got;
    match Json.parse line with
    | exception Json.Parse_error _ ->
      incr errors;
      count_kind "unparseable"
    | r -> (
      (match Json.member "ok" r with
      | Some (Json.Bool true) -> incr ok
      | _ ->
        incr errors;
        count_kind
          (match Option.bind (Json.member "error" r) (Json.member "kind") with
          | Some (Json.String k) -> k
          | _ -> "unknown"));
      match Json.member "cache_hit" r with
      | Some (Json.Bool true) -> incr hits
      | _ -> ())
  in
  let sent = ref 0 in
  (try
     while !got < !requests do
       while !sent < !requests && !sent - !got < !window do
         send !sent;
         incr sent
       done;
       recv ()
     done
   with End_of_file -> ());
  Unix.shutdown s Unix.SHUTDOWN_SEND;
  (try Unix.close s with Unix.Unix_error _ -> ());
  {
    sent = !sent;
    ok = !ok;
    errors = !errors;
    cache_hits = !hits;
    latencies_s = Array.sub latencies 0 !got;
    kinds;
  }

let quantile sorted q =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
    let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let () =
  Arg.parse args
    (fun a ->
      Format.eprintf "unexpected argument %S@." a;
      Arg.usage args usage;
      exit 2)
    usage;
  if !socket_path = "" then begin
    Arg.usage args usage;
    exit 2
  end;
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init !conns (fun c -> Domain.spawn (fun () -> drive_conn c))
  in
  let results = List.map Domain.join domains in
  let wall_s = Unix.gettimeofday () -. t0 in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let sent = total (fun r -> r.sent)
  and ok = total (fun r -> r.ok)
  and errors = total (fun r -> r.errors)
  and hits = total (fun r -> r.cache_hits) in
  let latencies = Array.concat (List.map (fun r -> r.latencies_s) results) in
  Array.sort compare latencies;
  let jobs_per_s =
    if wall_s > 0.0 then float_of_int sent /. wall_s else 0.0
  in
  let breakdown =
    if not !error_breakdown then []
    else begin
      let merged = Hashtbl.create 7 in
      List.iter
        (fun r ->
          Hashtbl.iter
            (fun k n ->
              Hashtbl.replace merged k
                (n + Option.value (Hashtbl.find_opt merged k) ~default:0))
            r.kinds)
        results;
      let pairs =
        Hashtbl.fold (fun k n acc -> (k, Json.Int n) :: acc) merged []
        |> List.sort compare
      in
      [ ("error_breakdown", Json.Obj pairs) ]
    end
  in
  let report =
    Json.Obj
      ([
        ("record", Json.String "loadgen");
        ("socket", Json.String !socket_path);
        ("conns", Json.Int !conns);
        ("requests_per_conn", Json.Int !requests);
        ("window", Json.Int !window);
        ("warm_frac", Json.Float !warm_frac);
        ("sent", Json.Int sent);
        ("ok", Json.Int ok);
        ("errors", Json.Int errors);
        ("cache_hits", Json.Int hits);
        ("wall_s", Json.Float wall_s);
        ("jobs_per_s", Json.Float jobs_per_s);
        ( "latency_s",
          Json.Obj
            [
              ("p50", Json.Float (quantile latencies 0.50));
              ("p95", Json.Float (quantile latencies 0.95));
              ("p99", Json.Float (quantile latencies 0.99));
              ("max", Json.Float (quantile latencies 1.0));
            ] );
      ]
      @ breakdown)
  in
  let text = Json.to_string report in
  print_endline text;
  if !json_out <> "" then begin
    let oc = open_out !json_out in
    output_string oc (text ^ "\n");
    close_out oc
  end;
  if ok < sent then exit 1
