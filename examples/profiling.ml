(* Branch profiling as a transparent ACF: productions on conditional
   branches record T.PC into a buffer; an offline pass aggregates the
   records into an execution profile — the structure of the paper's
   "bit tracing" path profiler at branch granularity.

   Run with: dune exec examples/profiling.exe *)

open Dise_isa
module Machine = Dise_machine.Machine
module W = Dise_workload
module A = Dise_acf

let () =
  let entry = W.Suite.get ~dyn_target:80_000 (Option.get (W.Profile.find "twolf")) in
  let img = entry.W.Suite.image in
  let set = A.Profiling.productions () in
  let engine = Dise_core.Engine.create set in
  let m = Machine.create ~expander:(Dise_core.Engine.expander engine) img in
  let buffer = 0x06000000 in
  A.Profiling.install m ~buffer;
  ignore (Machine.run ~max_steps:10_000_000 m);
  Format.printf "twolf-like workload profiled: exit %d, %d dynamic instructions@."
    (Machine.exit_code m) (Machine.executed m);
  let counts = A.Profiling.counts m ~buffer in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
  Format.printf "%d static branches executed %d times@." (List.length counts) total;
  Format.printf "@.hottest branches:@.";
  List.iter
    (fun (pc, n) ->
      Format.printf "  %08x  %7d  (%4.1f%%)  %s@." pc n
        (100. *. float_of_int n /. float_of_int total)
        (Disasm.insn_at img pc))
    (A.Profiling.hottest m ~buffer ~n:8);
  (* Profiling is an observation-only ACF: the run's architectural
     effect is unchanged. *)
  let m0 = Machine.create img in
  ignore (Machine.run ~max_steps:10_000_000 m0);
  let digest mm =
    Dise_machine.Memory.checksum_range (Machine.memory mm) ~lo:0x04000000
      ~hi:0x05F00000
  in
  Format.printf "@.application data unchanged by profiling: %b@."
    (digest m0 = digest m)
