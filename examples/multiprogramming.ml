(* OS-level virtualization of DISE (Section 2.3).

   Two processes run round-robin on one DISE-capable core:

   - the kernel installs memory fault isolation system-wide (an
     inspected-and-approved transparent ACF);
   - process A additionally runs a user store-counting ACF in its own
     data space — active only while A runs;
   - an "evil" process submits a user ACF that writes the kernel's
     reserved segment register; inspection rejects it.

   Dedicated registers are saved/restored across switches, so A's
   counter survives interleaving with B; the PT/RT are demand-reloaded
   after each switch (the controller charges the misses).

   Run with: dune exec examples/multiprogramming.exe *)

open Dise_isa
module Core = Dise_core
module Machine = Dise_machine.Machine
module Regfile = Dise_machine.Regfile
module W = Dise_workload

let kernel_mfi =
  {|
  ; kernel ACF: memory fault isolation (reserved registers $dr2/$dr3)
  P1: T.OPCLASS == store -> R4096
  P2: T.OPCLASS == load -> R4096
  R4096: srl T.RS, #26, $dr1
         xor $dr1, $dr2, $dr1
         bne $dr1, __error
         T.INSN
  |}

let user_counter =
  {|
  ; user ACF: count my conditional branches in $dr5 (disjoint from the
  ; kernel MFI's patterns; overlapping patterns would call for explicit
  ; composition, see examples/composition.ml)
  P1: T.OPCLASS == branch -> R100
  R100: lda $dr5, 1($dr5)
        T.INSN
  |}

let evil_acf =
  {|
  ; tries to overwrite the kernel's segment register
  P1: T.OPCLASS == store -> R101
  R101: lda $dr2, 0($dr2)
        T.INSN
  |}

let () =
  let entry_a = W.Suite.get ~dyn_target:40_000 W.Profile.tiny in
  let entry_b =
    W.Suite.get ~dyn_target:40_000
      { W.Profile.tiny with W.Profile.name = "tiny-b"; seed = 4242 }
  in
  let os =
    Core.Osvirt.create ~controller_cfg:Core.Controller.default_config ()
  in
  let a =
    Core.Osvirt.spawn os ~name:"proc-a"
      ~acf:(Core.Lang.parse user_counter)
      entry_a.W.Suite.image
  in
  let b = Core.Osvirt.spawn os ~name:"proc-b" entry_b.W.Suite.image in
  (* Kernel ACF: resolve the handler per-image is not possible for a
     shared set, so use each image's __error — both generated workloads
     place it identically. *)
  let mfi =
    Core.Prodset.resolve_labels
      (Program.Image.symbol entry_a.W.Suite.image)
      (Core.Lang.parse kernel_mfi)
  in
  Core.Osvirt.install_kernel_acf os ~name:"mfi"
    ~regs:[ (2, W.Codegen.data_segment_id) ]
    mfi;

  (* Inspection rejects the evil ACF. *)
  (match
     Core.Osvirt.spawn os ~name:"evil" ~acf:(Core.Lang.parse evil_acf)
       entry_b.W.Suite.image
   with
  | exception Core.Osvirt.Rejected findings ->
    Format.printf "evil ACF rejected by kernel inspection:@.";
    List.iter
      (fun f -> Format.printf "  %a@." Core.Safety.pp_finding f)
      findings
  | _ -> Format.printf "BUG: evil ACF accepted@.");

  Core.Osvirt.round_robin ~slice:5_000 os;
  let dr5 p = Regfile.get (Machine.regs (Core.Osvirt.machine os p)) (Reg.d 5) in
  Format.printf "@.both processes ran to completion under kernel MFI:@.";
  Format.printf "  proc-a: exit %d, %d branches counted by its user ACF@."
    (Machine.exit_code (Core.Osvirt.machine os a))
    (dr5 a);
  Format.printf "  proc-b: exit %d, $dr5 = %d (no user ACF: untouched)@."
    (Machine.exit_code (Core.Osvirt.machine os b))
    (dr5 b);
  Format.printf "  context switches: %d@." (Core.Osvirt.switches os);
  let cs = Core.Controller.stats (Core.Osvirt.controller os) in
  Format.printf "  RT reload misses charged by the controller: %d (%d stall cycles)@."
    cs.Core.Controller.rt_misses cs.Core.Controller.stall_cycles
