(* Code assertions via DISE (Section 3.1): a full-speed memory
   watchpoint. Every store is expanded with an address check; hitting
   the watched address transfers control to a handler before the store
   executes. Unlike a debugger, nothing single-steps: the checks run
   inline, interleaved with the application in the superscalar core.

   Run with: dune exec examples/watchpoint.exe *)

open Dise_isa
module Machine = Dise_machine.Machine
module Config = Dise_uarch.Config
module Pipeline = Dise_uarch.Pipeline
module Stats = Dise_uarch.Stats
module W = Dise_workload
module A = Dise_acf

let () =
  let entry = W.Suite.get ~dyn_target:80_000 W.Profile.tiny in
  let img = entry.W.Suite.image in
  let set = A.Watchpoint.productions_for img in
  let engine = Dise_core.Engine.create set in

  (* First, find an address the program actually writes. *)
  let first_store = ref None in
  let m0 = Machine.create img in
  ignore
    (Machine.run_events ~max_steps:5_000_000 m0 (fun ev ->
         if
           !first_store = None
           && Insn.writes_memory ev.Dise_machine.Machine.Event.insn
         then first_store := ev.Dise_machine.Machine.Event.mem_addr));
  let watched = Option.value ~default:0x04000000 !first_store in

  (* Armed: the watch fires. *)
  let m = Machine.create ~expander:(Dise_core.Engine.expander engine) img in
  A.Watchpoint.install m ~addr:watched;
  ignore (Machine.run ~max_steps:5_000_000 m);
  Format.printf "watch on 0x%08x: exit %d after %d instructions (77 = assertion hit)@."
    watched (Machine.exit_code m) (Machine.executed m);

  (* Disarmed: full run, and the timing model shows the cost of the
     (inactive but still expanded) checks. *)
  let run ~expanded =
    let m =
      if expanded then begin
        let engine = Dise_core.Engine.create set in
        let m = Machine.create ~expander:(Dise_core.Engine.expander engine) img in
        A.Watchpoint.disarm m;
        m
      end
      else Machine.create img
    in
    Pipeline.run Config.default m
  in
  let plain = run ~expanded:false in
  let checked = run ~expanded:true in
  Format.printf "plain run:        %8d cycles@." plain.Stats.cycles;
  Format.printf "checked run:      %8d cycles (%.3fx with every store asserted)@."
    checked.Stats.cycles
    (float_of_int checked.Stats.cycles /. float_of_int plain.Stats.cycles);
  Format.printf
    "removing the production restores the plain cost exactly: inactive@ \
     assertions have zero overhead once unloaded.@."
