(* Dynamic code decompression (Figure 4): compress a program with the
   parameterized DISE scheme, inspect a dictionary entry and its
   codewords, and verify the decompressed execution matches.

   Run with: dune exec examples/decompression.exe *)

open Dise_isa
module Machine = Dise_machine.Machine
module Compress = Dise_acf.Compress
module W = Dise_workload
module R = Dise_core.Replacement

let () =
  let entry = W.Suite.get ~dyn_target:80_000 (Option.get (W.Profile.find "parser")) in
  let prog = entry.W.Suite.gen.W.Codegen.program in
  let r = Compress.compress ~scheme:Compress.full_dise prog in
  Format.printf "parser-like workload: %d instructions (%d bytes of text)@."
    (Program.size prog) r.Compress.orig_text_bytes;
  Format.printf "compressed text: %d bytes (%.1f%%), dictionary %d bytes, %d codewords@."
    r.Compress.text_bytes
    (100. *. Compress.compression_ratio r)
    r.Compress.dict_bytes r.Compress.codewords;

  (* Show the most-used parameterized dictionary entry. *)
  let best =
    List.fold_left
      (fun acc e ->
        match acc with
        | Some b when b.Compress.uses >= e.Compress.uses -> acc
        | _ -> if e.Compress.param_fields > 0 then Some e else acc)
      None r.Compress.entries
  in
  (match best with
  | Some e ->
    Format.printf "@.hottest parameterized entry (tag %d, %d codewords):@."
      e.Compress.tag e.Compress.uses;
    Array.iter
      (fun ri -> Format.printf "    %a@." R.pp_rinsn ri)
      e.Compress.spec;
    (* Find a codeword instance of it in the compressed image. *)
    let shown = ref false in
    Program.Image.iter
      (fun ~addr insn ->
        match insn with
        | Insn.Codeword { tag; _ } when tag = e.Compress.tag && not !shown ->
          shown := true;
          Format.printf "  a codeword for it:    %08x:  %s@." addr
            (Insn.to_string insn)
        | _ -> ())
      r.Compress.image
  | None -> Format.printf "(no parameterized entries chosen)@.");

  (* Prove losslessness: run both versions, compare data effects. *)
  let data_digest m =
    Dise_machine.Memory.checksum_range (Machine.memory m) ~lo:0x04000000
      ~hi:0x07F00000
  in
  let m0 = Machine.create entry.W.Suite.image in
  ignore (Machine.run ~max_steps:5_000_000 m0);
  let engine = Dise_core.Engine.create r.Compress.prodset in
  let m1 =
    Machine.create ~expander:(Dise_core.Engine.expander engine) r.Compress.image
  in
  ignore (Machine.run ~max_steps:5_000_000 m1);
  Format.printf "@.original:     exit %d, data digest %08x@."
    (Machine.exit_code m0) (data_digest m0 land 0xFFFFFFFF);
  Format.printf "decompressed: exit %d, data digest %08x  -> %s@."
    (Machine.exit_code m1)
    (data_digest m1 land 0xFFFFFFFF)
    (if data_digest m0 = data_digest m1 && Machine.exit_code m0 = Machine.exit_code m1
     then "identical" else "MISMATCH");
  Format.printf "expansions at runtime: %d@." (Machine.expansions m1)
