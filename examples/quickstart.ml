(* Quickstart: define a production in the DSL, expand a fetched
   instruction, and run a program under the engine.

   This reproduces Figure 1 of the paper: the memory fault isolation
   production expanding a store.

   Run with: dune exec examples/quickstart.exe *)

open Dise_isa
module Machine = Dise_machine.Machine
module Core = Dise_core

let productions =
  {|
  ; memory fault isolation (Figure 1): expand loads and stores into a
  ; segment check followed by the original instruction
  P1: T.OPCLASS == store -> R1
  P2: T.OPCLASS == load -> R1
  R1: srl T.RS, #26, $dr1
      xor $dr1, $dr2, $dr1
      bne $dr1, __error
      T.INSN
  |}

let () =
  (* 1. Parse the production set. *)
  let set = Core.Lang.parse productions in
  Format.printf "Production set:@.%s@." (Core.Lang.to_string set);

  (* 2. Expand one fetched instruction, exactly as the engine would
     (binding the handler label to a placeholder address). *)
  let engine =
    Core.Engine.create
      (Core.Prodset.resolve_labels (fun _ -> Some 0x9000) set)
  in
  let store = Asm.parse_insn "stq r2, 16(r7)" in
  Format.printf "Fetch stream:       %s@." (Insn.to_string store);
  (match Core.Engine.expand engine ~pc:0x100 store with
  | Some { Machine.seq; _ } ->
    Format.printf "Execution stream:@.";
    Array.iter (fun i -> Format.printf "  %s@." (Insn.to_string i)) seq
  | None -> Format.printf "  (no expansion)@.");

  (* 3. Run a whole program under the engine: the out-of-segment store
     is caught before it executes. *)
  let img =
    Program.layout
      (Asm.parse
         {|
         main:
           lui #1024, r1      ; 0x04000000: segment 1 (legal data)
           lui #3072, r9      ; 0x0C000000: segment 3 (illegal)
           add zero, #42, r2
           stq r2, 0(r1)      ; fine
           stq r2, 0(r9)      ; trapped by the check
           halt
         __error:
           add zero, #77, r2
           halt
         |})
  in
  let set = Core.Prodset.resolve_labels (Program.Image.symbol img) set in
  let engine = Core.Engine.create set in
  let m = Machine.create ~expander:(Core.Engine.expander engine) img in
  Machine.set_dise_reg m 2 1 (* $dr2 := legal data segment id *);
  ignore (Machine.run m);
  Format.printf "@.Program exit code: %d (77 = fault handler)@."
    (Machine.exit_code m);
  Format.printf "Dynamic instructions: %d (of which %d app-level)@."
    (Machine.executed m) (Machine.app_fetched m);
  Format.printf "Expansions performed: %d@." (Machine.expansions m)
