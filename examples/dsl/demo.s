; Demo program for `disesim exec`: one legal store, one out-of-segment
; store. Run with:
;   dune exec bin/disesim.exe -- exec examples/dsl/demo.s \
;       -p examples/dsl/mfi.dise --dr 2=1 --trace
main:
  lui #1024, r1        ; 0x04000000, segment 1 (legal data)
  lui #3072, r9        ; 0x0C000000, segment 3 (illegal)
  add zero, #5, r2
  stq r2, 0(r1)        ; passes the check
  stq r2, 0(r9)        ; trapped before it executes
  halt
__error:
  add zero, #77, r2
  halt
