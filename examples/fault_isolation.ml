(* Memory fault isolation on a realistic workload: compare the DISE3,
   DISE4, and binary-rewriting implementations functionally and through
   the timing model (a miniature Figure 6).

   Run with: dune exec examples/fault_isolation.exe *)

module Machine = Dise_machine.Machine
module Config = Dise_uarch.Config
module Stats = Dise_uarch.Stats
module W = Dise_workload
module H = Dise_harness
module Mfi = Dise_acf.Mfi

let () =
  let entry = W.Suite.get ~dyn_target:150_000 (Option.get (W.Profile.find "gzip")) in
  Format.printf "workload: gzip-like, %d static instructions (%d hot)@."
    entry.W.Suite.gen.W.Codegen.total_insns entry.W.Suite.gen.W.Codegen.hot_insns;

  let spec = { H.Experiment.default_spec with H.Experiment.dyn_target = 150_000 } in
  let base = H.Experiment.baseline spec entry in
  Format.printf "baseline:        %8d cycles (IPC %.2f)@." base.Stats.cycles
    (Stats.ipc base);

  let show name stats =
    Format.printf "%-16s %8d cycles  (%.3fx, +%d checked ops, %d extra insns)@."
      name stats.Stats.cycles
      (H.Experiment.relative stats ~baseline:base)
      stats.Stats.expansions stats.Stats.rep_instrs
  in
  show "DISE3:" (H.Experiment.mfi_dise ~variant:Mfi.Dise3 spec entry);
  show "DISE4:" (H.Experiment.mfi_dise ~variant:Mfi.Dise4 spec entry);
  show "rewriting:" (H.Experiment.mfi_rewrite spec entry);

  (* The protection is real: corrupt a pointer and watch it trap. *)
  let img = entry.W.Suite.image in
  let set = Mfi.productions_for img in
  let engine = Dise_core.Engine.create set in
  let m = Machine.create ~expander:(Dise_core.Engine.expander engine) img in
  (* Install a WRONG segment id so every access faults immediately. *)
  Mfi.install m ~data_seg:3 ~code_seg:0;
  ignore (Machine.run ~max_steps:5_000_000 m);
  Format.printf "@.with a corrupted segment register, exit code = %d (77 = fault)@."
    (Machine.exit_code m)
