(* Fine-grain distributed shared memory via DISE (Section 3.1).

   Shasta-style software DSM instruments every memory operation with a
   state-table check; DISE inlines the check at decode, making the
   machine look like hardware-supported fine-grain DSM. This example
   shares a buffer between a "local" program and a host-side stand-in
   for the remote node: the program streams through the buffer; when it
   reaches a block the protocol has invalidated, the check fires and the
   handler runs before the access — at 64-byte granularity, far finer
   than a page.

   Run with: dune exec examples/dsm.exe *)

open Dise_isa
module Machine = Dise_machine.Machine
module A = Dise_acf

let data_base = 0x04000000
let shadow_base = 0x06000000

let program =
  Asm.parse
    {|
    main:
      lui #1024, r1        ; shared buffer base
      add zero, #64, r4    ; 64 words = 4 blocks of 64 bytes
    loop:
      ldq r3, 0(r1)        ; checked load
      add r3, #1, r3
      stq r3, 0(r1)        ; checked store
      lda r1, 4(r1)
      add r4, #-1, r4
      bgt r4, loop
      add zero, #0, r2
      halt
    __error:
      add zero, #77, r2    ; "DSM miss handler"
      halt
    |}

let run ~absent_block =
  let img = Program.layout program in
  let set = A.Dsm.productions_for img in
  let engine = Dise_core.Engine.create set in
  let m = Machine.create ~expander:(Dise_core.Engine.expander engine) img in
  A.Dsm.install m ~shadow_base ~data_base;
  (* The "coherence protocol": all four blocks present, then one pulled
     back by the remote node. *)
  A.Dsm.mark_present m ~shadow_base ~data_base ~addr:data_base ~len:256;
  (match absent_block with
  | Some b ->
    A.Dsm.mark_absent m ~shadow_base ~data_base
      ~addr:(data_base + (b * A.Dsm.block_bytes))
      ~len:A.Dsm.block_bytes
  | None -> ());
  ignore (Machine.run ~max_steps:100_000 m);
  m

let () =
  let ok = run ~absent_block:None in
  Format.printf "all blocks present:   exit %d after %d instructions (%d checks inlined)@."
    (Machine.exit_code ok) (Machine.executed ok) (Machine.expansions ok);
  List.iter
    (fun b ->
      let m = run ~absent_block:(Some b) in
      let touched =
        (* how many words were updated before the miss *)
        let mem = Machine.memory m in
        let rec count i =
          if i >= 64 then i
          else if Dise_machine.Memory.read_u32 mem (data_base + (4 * i)) = 1
          then count (i + 1)
          else i
        in
        count 0
      in
      Format.printf
        "block %d invalidated:  exit %d — miss handler fired at word %d \
         (block boundary %d)@."
        b (Machine.exit_code m) touched
        (b * A.Dsm.block_bytes / 4))
    [ 1; 3 ]
