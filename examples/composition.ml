(* ACF composition (Figure 5 and Section 3.3).

   Part 1 reproduces Figure 5: nested and non-nested composition of
   memory fault isolation with store-address tracing, shown at the
   production level.

   Part 2 composes fault isolation with decompression the way the
   paper's client/server story requires: the server ships a compressed,
   unmodified binary; the client inlines its transparent MFI
   productions into the decompression dictionary.

   Run with: dune exec examples/composition.exe *)


module Machine = Dise_machine.Machine
module Core = Dise_core
module A = Dise_acf
module W = Dise_workload

let mfi_src =
  {|
  P1: T.OPCLASS == store -> R1
  P2: T.OPCLASS == load -> R1
  R1: srl T.RS, #26, $dr1
      xor $dr1, $dr2, $dr1
      bne $dr1, __error
      T.INSN
  |}

let tracing_src =
  {|
  P3: T.OPCLASS == store -> R13
  R13: lda $dr4, #T.IMM(T.RS)
       stq $dr4, 0($dr5)
       lda $dr5, 4($dr5)
       T.INSN
  |}

let () =
  let mfi = Core.Prodset.resolve_labels (fun _ -> Some 0x9000) (Core.Lang.parse mfi_src) in
  let tracing = Core.Lang.parse tracing_src in

  Format.printf "=== Figure 5: nested composition (trace, then isolate) ===@.";
  let nested = Core.Compose.nest ~outer:mfi ~inner:tracing in
  Format.printf "%s@." (Core.Lang.to_string nested);

  Format.printf "=== Figure 5: non-nested merge (R4) ===@.";
  let r13 = Option.get (Core.Prodset.sequence tracing 13) in
  let r1 = Option.get (Core.Prodset.sequence mfi 1) in
  let merged = Core.Compose.merge_sequences r13 r1 in
  Format.printf "R4:@.%a@.@." Core.Replacement.pp merged;

  Format.printf "=== fault isolation over a compressed binary ===@.";
  let entry = W.Suite.get ~dyn_target:60_000 W.Profile.tiny in
  let r = A.Compress.compress ~scheme:A.Compress.full_dise entry.W.Suite.gen.W.Codegen.program in
  let composed = A.Acf_compose.for_compressed r in
  Format.printf "decompression entries: %d; after inlining MFI the RT working set grows %.2fx@."
    (List.length r.A.Compress.entries)
    (A.Acf_compose.rt_entry_growth ~plain:r.A.Compress.prodset ~composed);
  let engine = Core.Engine.create composed in
  let m = Machine.create ~expander:(Core.Engine.expander engine) r.A.Compress.image in
  A.Mfi.install m ~data_seg:W.Codegen.data_segment_id
    ~code_seg:W.Codegen.code_segment_id;
  ignore (Machine.run ~max_steps:5_000_000 m);
  Format.printf "composed run: exit %d, %d dynamic instructions, %d expansions@."
    (Machine.exit_code m) (Machine.executed m) (Machine.expansions m);

  (* Show one composed dictionary entry: decompression + inlined checks. *)
  let with_check =
    List.find_opt
      (fun (_, seq) ->
        Array.exists
          (function Core.Replacement.Br _ -> true | _ -> false)
          seq
        && Core.Replacement.length seq > 4)
      (Core.Prodset.sequences composed)
  in
  match with_check with
  | Some (tag, seq) ->
    Format.printf "@.composed dictionary entry R%d (decompression with inlined checks):@.%a@."
      tag Core.Replacement.pp seq
  | None -> ()
