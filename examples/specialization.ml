(* Dynamic code specialization via DISE (Section 3.2).

   A loop multiplies by a loop-invariant operand known only at run
   time. The multiply site is a DISE codeword; just before the loop is
   entered, the runtime examines the operand and installs the matching
   replacement sequence:

   - power of two            -> a single shift
   - sum of two powers of two -> two shifts and an add (the case the
     paper highlights: a software specializer would have to grow the
     code, retarget branches, and scavenge a register — with DISE it is
     exactly as easy as the first case)
   - anything else            -> the generic multiply

   The codeword carries the source and destination registers as
   parameters, so one dictionary entry serves any register assignment.

   Run with: dune exec examples/specialization.exe *)

open Dise_isa
module Machine = Dise_machine.Machine
module Core = Dise_core
module Config = Dise_uarch.Config
module Pipeline = Dise_uarch.Pipeline
module Stats = Dise_uarch.Stats

let r = Reg.r

(* cw1 p1=src, p2=dst, tag 0: "dst := src * y" for the runtime y. *)
let program =
  [
    Program.Label "main";
    Program.Ins (Insn.Lui (1024, r 1));
    Program.Ins (Insn.Mem (Opcode.Ldq, r 1, 0, r 9));  (* y, seeded by host *)
    Program.Label "loop_setup";                         (* specialization point *)
    Program.Ins (Insn.Ropi (Opcode.Add, Reg.zero, 20_000, r 4));
    Program.Ins (Insn.Ropi (Opcode.Add, Reg.zero, 0, r 5));
    Program.Ins (Insn.Ropi (Opcode.Add, Reg.zero, 1, r 2));
    Program.Label "loop";
    (* The multiply is loop-carried (x := x*y + 1), so its latency sits
       on the critical path and the specialization is visible. *)
    Program.Ins (Insn.codeword ~op:1 ~p1:2 ~p2:3 ~p3:0 ~tag:0); (* r3 := r2*y *)
    Program.Ins (Insn.Ropi (Opcode.Add, r 3, 1, r 2));
    Program.Ins (Insn.Rop (Opcode.Xor, r 5, r 3, r 5)); (* digest *)
    Program.Ins (Insn.Ropi (Opcode.Add, r 4, -1, r 4));
    Program.Ins (Insn.Br (Opcode.Bgt, r 4, Insn.Lab "loop"));
    Program.Ins (Insn.Ropi (Opcode.Add, r 5, 0, r 2));
    Program.Ins Insn.Halt;
  ]

let log2_exact v =
  let rec go k = if 1 lsl k = v then Some k else if 1 lsl k > v then None else go (k + 1) in
  if v <= 0 then None else go 0

let two_powers v =
  let rec split j =
    if 1 lsl j >= v then None
    else
      match log2_exact (v - (1 lsl j)) with
      | Some k -> Some (j, k)
      | None -> split (j + 1)
  in
  split 0

(* The "static component": define the replacement for the observed y. *)
let specialize y =
  let open Core.Replacement in
  let src = Rparam 1 and dst = Rparam 2 in
  let scratch = Rlit (Reg.d 4) and scratch2 = Rlit (Reg.d 5) in
  let seq, kind =
    match log2_exact y with
    | Some k -> ([| Ropi (Opcode.Sll, src, Ilit k, dst) |],
                 Printf.sprintf "single shift (y = 2^%d)" k)
    | None -> (
      match two_powers y with
      | Some (j, k) ->
        ([|
           Ropi (Opcode.Sll, src, Ilit j, scratch);
           Ropi (Opcode.Sll, src, Ilit k, scratch2);
           Rop (Opcode.Add, scratch, scratch2, dst);
         |],
         Printf.sprintf "two shifts and an add (y = 2^%d + 2^%d)" j k)
      | None ->
        ([|
           Ropi (Opcode.Add, Rlit Reg.zero, Ilit y, scratch);
           Rop (Opcode.Mul, src, scratch, dst);
         |],
         "generic multiply (no specialization)"))
  in
  let set =
    Core.Prodset.add_production
      (Core.Prodset.define_sequence Core.Prodset.empty 0 seq)
      (Core.Production.make ~name:"specialized" (Core.Pattern.codewords 1)
         Core.Production.From_tag)
  in
  (set, kind)

let run y =
  let img = Program.layout program in
  (* A mutable production set behind the expander: empty until the
     specialization point is reached. *)
  let engine = ref (Core.Engine.create Core.Prodset.empty) in
  let expander ~pc insn = Core.Engine.expand !engine ~pc insn in
  let m = Machine.create ~expander img in
  Dise_machine.Memory.write_u32 (Machine.memory m) 0x04000000 y;
  let setup_pc = Option.get (Program.Image.symbol img "loop_setup") in
  let pipeline = Pipeline.create Config.default in
  let kind = ref "" in
  ignore
    (Machine.run_events ~max_steps:2_000_000 m (fun ev ->
         Pipeline.consume pipeline ev;
         (* The moment the operand load has executed, specialize. *)
         if ev.Machine.Event.pc + 4 = setup_pc && !kind = "" then begin
           let observed =
             Dise_machine.Regfile.get (Machine.regs m) (r 9)
           in
           let set, k = specialize observed in
           engine := Core.Engine.create set;
           kind := k
         end));
  let stats = Pipeline.finish pipeline in
  (Machine.exit_code m, stats, !kind)

let () =
  let reference y =
    (* x := x*y + 1 chained 20000 times, digesting each product *)
    let x = ref 1 and acc = ref 0 in
    for _ = 1 to 20_000 do
      let p = Opcode.signed32 (!x * y) in
      acc := Opcode.signed32 (!acc lxor p);
      x := Opcode.signed32 (p + 1)
    done;
    !acc
  in
  List.iter
    (fun y ->
      let result, stats, kind = run y in
      Format.printf "y = %-4d -> %-42s %8d cycles  result %s@." y kind
        stats.Stats.cycles
        (if result = reference y then "correct" else "WRONG");
      ignore stats)
    [ 8; 96; 2; 10; 7; 1536 ]
