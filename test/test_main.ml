(* Test runner: one alcotest suite per library area. *)

(* Re-exec dispatch for the fault matrix's SIGKILL victim: must run
   before anything else so the child never enters alcotest. *)
let () = Dise_fuzz.Faults.journal_child_main ()

let () =
  Alcotest.run "dise"
    [
      ("isa", Test_isa.suite);
      ("machine", Test_machine.suite);
      ("core", Test_core_dise.suite);
      ("uarch", Test_uarch.suite);
      ("workload", Test_workload.suite);
      ("acf", Test_acf.suite);
      ("harness", Test_harness.suite);
      ("os", Test_os.suite);
      ("props", Test_props.suite);
      ("telemetry", Test_telemetry.suite);
      ("metrics", Test_metrics.suite);
      ("service", Test_service.suite);
      ("resilience", Test_resilience.suite);
      ("fuzz", Test_fuzz.suite);
    ]
