(* Test runner: one alcotest suite per library area. *)

(* Re-exec dispatch: serve-tier workers and the fault matrix's SIGKILL
   victim re-execute this binary, so both hooks must run before
   anything else — the child never enters alcotest. *)
let () = Dise_service.Coordinator.worker_child_main ()
let () = Dise_fuzz.Faults.journal_child_main ()

let () =
  Alcotest.run "dise"
    [
      ("isa", Test_isa.suite);
      ("machine", Test_machine.suite);
      ("core", Test_core_dise.suite);
      ("uarch", Test_uarch.suite);
      ("workload", Test_workload.suite);
      ("acf", Test_acf.suite);
      ("harness", Test_harness.suite);
      ("os", Test_os.suite);
      ("props", Test_props.suite);
      ("telemetry", Test_telemetry.suite);
      ("metrics", Test_metrics.suite);
      ("service", Test_service.suite);
      ("synthesize", Test_synthesize.suite);
      ("resilience", Test_resilience.suite);
      ("coordinator", Test_coordinator.suite);
      ("fuzz", Test_fuzz.suite);
    ]
