(* Tests for the DISE core: pattern matching and specificity, the
   production DSL, instantiation, the engine on the paper's Figure 1
   example, PT/RT models, the controller, and composition (Figure 5). *)

open Dise_isa
open Dise_core
module Machine = Dise_machine.Machine
module Regfile = Dise_machine.Regfile
module Memory = Dise_machine.Memory

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let r1 = Reg.r 1
let r2 = Reg.r 2
let r3 = Reg.r 3

(* --- patterns ------------------------------------------------------- *)

let test_pattern_class_match () =
  let p = Pattern.loads in
  check bool_ "matches ldq" true
    (Pattern.matches p (Insn.Mem (Opcode.Ldq, r1, 0, r2)));
  check bool_ "matches ldbu" true
    (Pattern.matches p (Insn.Mem (Opcode.Ldbu, r1, 0, r2)));
  check bool_ "rejects store" false
    (Pattern.matches p (Insn.Mem (Opcode.Stq, r1, 0, r2)));
  check bool_ "rejects alu" false
    (Pattern.matches p (Insn.Rop (Opcode.Add, r1, r2, r3)))

let test_pattern_field_match () =
  (* "loads that use the stack pointer as their address register" *)
  let p = Pattern.with_rs Reg.sp Pattern.loads in
  check bool_ "sp load matches" true
    (Pattern.matches p (Insn.Mem (Opcode.Ldq, Reg.sp, 8, r2)));
  check bool_ "other load rejected" false
    (Pattern.matches p (Insn.Mem (Opcode.Ldq, r1, 8, r2)))

let test_pattern_imm_match () =
  (* "conditional branches with negative offsets" — on immediate-bearing
     forms; here an ALU immediate. *)
  let p = Pattern.with_imm Pattern.Imm_neg (Pattern.of_class Opcode.C_alu) in
  check bool_ "negative imm matches" true
    (Pattern.matches p (Insn.Ropi (Opcode.Add, r1, -4, r2)));
  check bool_ "nonnegative rejected" false
    (Pattern.matches p (Insn.Ropi (Opcode.Add, r1, 4, r2)));
  check bool_ "no-imm form rejected" false
    (Pattern.matches p (Insn.Rop (Opcode.Add, r1, r2, r3)))

let test_pattern_specificity () =
  let general = Pattern.loads in
  let specific = Pattern.with_rs Reg.sp Pattern.loads in
  check bool_ "field constraint is more specific" true
    (Pattern.specificity specific > Pattern.specificity general);
  let opc = Pattern.of_opcode (Insn.Mem (Opcode.Ldq, r1, 0, r2)) in
  check bool_ "opcode more specific than class" true
    (Pattern.specificity opc > Pattern.specificity general)

let test_pattern_codeword () =
  let p = Pattern.codewords 0 in
  check bool_ "matches own reserved opcode" true
    (Pattern.matches p (Insn.codeword ~op:0 ~p1:1 ~p2:2 ~p3:3 ~tag:44));
  check bool_ "other reserved opcode rejected" false
    (Pattern.matches p (Insn.codeword ~op:1 ~p1:1 ~p2:2 ~p3:3 ~tag:44))

let test_dispatch_keys () =
  let p = Pattern.loads in
  check int_ "loads cover 2 keys" 2 (List.length (Pattern.dispatch_keys p));
  let q = Pattern.any in
  check int_ "any covers all keys" Insn.num_keys
    (List.length (Pattern.dispatch_keys q))

(* --- instantiation -------------------------------------------------- *)

let test_instantiate_mfi_sequence () =
  (* Figure 1's R1 over a store trigger. *)
  let seq =
    [|
      Replacement.Ropi (Opcode.Srl, Replacement.Rrs, Replacement.Ilit 26,
                        Replacement.Rlit (Reg.d 1));
      Replacement.Rop (Opcode.Xor, Replacement.Rlit (Reg.d 1),
                       Replacement.Rlit (Reg.d 2), Replacement.Rlit (Reg.d 1));
      Replacement.Br (Opcode.Bne, Replacement.Rlit (Reg.d 1),
                      Replacement.Tabs 0x9000);
      Replacement.Trigger;
    |]
  in
  let trigger = Insn.Mem (Opcode.Stq, r3, 16, r2) in
  let out = Replacement.instantiate seq ~trigger ~pc:0x100 in
  check int_ "length" 4 (Array.length out);
  (match out.(0) with
  | Insn.Ropi (Opcode.Srl, rs, 26, Reg.D 1) ->
    check bool_ "T.RS instantiated to store base" true (Reg.equal rs r3)
  | i -> Alcotest.failf "bad instantiation: %s" (Insn.to_string i));
  check bool_ "T.INSN is the trigger" true (Insn.equal out.(3) trigger)

let test_instantiate_params () =
  let seq =
    [|
      Replacement.Lda (Replacement.Rparam 1, Replacement.Iparam 2,
                       Replacement.Rparam 1);
    |]
  in
  let trigger = Insn.codeword ~op:0 ~p1:9 ~p2:24 ~p3:0 ~tag:7 in
  let out = Replacement.instantiate seq ~trigger ~pc:0 in
  (match out.(0) with
  | Insn.Lda (base, imm, dst) ->
    check bool_ "param reg" true (Reg.equal base (Reg.r 9));
    check bool_ "same reg dest" true (Reg.equal dst (Reg.r 9));
    check int_ "param imm sign-extended (24 -> -8)" (-8) imm
  | i -> Alcotest.failf "bad instantiation: %s" (Insn.to_string i));
  (* Parameters on a non-codeword trigger must fail. *)
  match
    Replacement.instantiate seq ~trigger:(Insn.Mem (Opcode.Ldq, r1, 0, r2))
      ~pc:0
  with
  | exception Replacement.Instantiation_error _ -> ()
  | _ -> Alcotest.fail "expected instantiation error"

let test_instantiate_branch_param_offset () =
  let seq =
    [| Replacement.Br (Opcode.Bne, Replacement.Rparam 1, Replacement.Trel_param2 2) |]
  in
  let hi, lo = Replacement.to_fields10 (-25) in
  let trigger = Insn.codeword ~op:0 ~p1:5 ~p2:hi ~p3:lo ~tag:0 in
  let out = Replacement.instantiate seq ~trigger ~pc:0x1000 in
  match out.(0) with
  | Insn.Br (Opcode.Bne, r, Insn.Abs target) ->
    check bool_ "reg param" true (Reg.equal r (Reg.r 5));
    check int_ "pc-relative scaled target" (0x1000 - 100) target
  | i -> Alcotest.failf "bad instantiation: %s" (Insn.to_string i)

let test_field_codecs () =
  for v = -16 to 15 do
    check int_ "signed5 round-trip" v
      (Replacement.signed5 (Replacement.to_field5 v))
  done;
  for v = -512 to 511 do
    let hi, lo = Replacement.to_fields10 v in
    check int_ "signed10 round-trip" v (Replacement.signed10 hi lo)
  done;
  (match Replacement.to_field5 16 with
  | exception Replacement.Instantiation_error _ -> ()
  | _ -> Alcotest.fail "5-bit overflow not caught");
  match Replacement.to_fields10 600 with
  | exception Replacement.Instantiation_error _ -> ()
  | _ -> Alcotest.fail "10-bit overflow not caught"

(* --- the DSL and Figure 1 end to end -------------------------------- *)

let mfi_source =
  {|
  ; memory fault isolation, Figure 1 (DISE3 formulation)
  P1: T.OPCLASS == store -> R1
  P2: T.OPCLASS == load -> R1
  R1: srl T.RS, #26, $dr1
      xor $dr1, $dr2, $dr1
      bne $dr1, error
      T.INSN
  |}

let test_lang_parse_mfi () =
  let set = Lang.parse mfi_source in
  check int_ "two productions" 2 (Prodset.num_productions set);
  check int_ "one sequence" 1 (Prodset.num_sequences set);
  let st = Insn.Mem (Opcode.Stq, r1, 0, r2) in
  (match Prodset.lookup set st with
  | Some (_, 1) -> ()
  | Some (_, id) -> Alcotest.failf "wrong rsid %d" id
  | None -> Alcotest.fail "store should match");
  check bool_ "alu does not match" true
    (Prodset.lookup set (Insn.Rop (Opcode.Add, r1, r2, r3)) = None)

let test_lang_parse_aware () =
  let set =
    Lang.parse
      {|
      P1: T.OP == cw0 -> TAG
      R5: lda T.P1, #T.P2(T.P1)
          ldq r4, 0(T.P1)
      |}
  in
  let cw = Insn.codeword ~op:0 ~p1:9 ~p2:8 ~p3:0 ~tag:5 in
  (match Prodset.lookup set cw with
  | Some (_, 5) -> ()
  | Some (_, id) -> Alcotest.failf "tag should give rsid 5, got %d" id
  | None -> Alcotest.fail "codeword should match");
  match Prodset.sequence set 5 with
  | Some seq -> check int_ "sequence parsed" 2 (Replacement.length seq)
  | None -> Alcotest.fail "sequence missing"

let test_remove_production () =
  let set = Lang.parse mfi_source in
  let st = Insn.Mem (Opcode.Stq, r1, 0, r2) in
  let ld = Insn.Mem (Opcode.Ldq, r1, 0, r2) in
  check bool_ "store matched before" true (Prodset.lookup set st <> None);
  let set' = Prodset.remove_production set "P1" in
  check bool_ "store unmatched after removal" true
    (Prodset.lookup set' st = None);
  check bool_ "load production untouched" true (Prodset.lookup set' ld <> None);
  check bool_ "sequence stays bound for reactivation" true
    (Prodset.sequence set' 1 <> None);
  (* Reactivate. *)
  let set'' =
    Prodset.add_production set'
      (Production.make ~name:"P1" Pattern.stores (Production.Direct 1))
  in
  check bool_ "reactivated" true (Prodset.lookup set'' st <> None)

let test_lang_field_conditions () =
  (* The full condition menu: opcode, register fields, immediate
     equality and sign. *)
  let set =
    Lang.parse
      {|
      P1: T.OP == ldq && T.RS == sp -> R1
      P2: T.OPCLASS == alu && T.IMM < 0 -> R2
      P3: T.OPCLASS == alu && T.IMM >= 0 && T.RD == r7 -> R3
      P4: T.IMM == 42 -> R4
      R1: T.INSN
      R2: T.INSN
      R3: T.INSN
      R4: T.INSN
      |}
  in
  let rsid i =
    match Prodset.lookup set i with Some (_, id) -> id | None -> -1
  in
  check int_ "sp load" 1 (rsid (Insn.Mem (Opcode.Ldq, Reg.sp, 0, r2)));
  check int_ "other load unmatched" (-1) (rsid (Insn.Mem (Opcode.Ldq, r1, 0, r2)));
  check int_ "negative-imm alu" 2 (rsid (Insn.Ropi (Opcode.Add, r1, -5, r2)));
  check int_ "nonneg imm to r7" 3 (rsid (Insn.Ropi (Opcode.Add, r1, 5, Reg.r 7)));
  check int_ "imm equality wins by specificity" 4
    (rsid (Insn.Ropi (Opcode.Add, r1, 42, Reg.r 7)))

let test_lang_errors () =
  let bad s =
    match Lang.parse s with
    | exception Lang.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "P1: T.FROB == 3 -> R1";
  bad "P1: T.OPCLASS == store -> X1";
  bad "R1: frobnicate r1";
  bad "srl r1, #2, r2"  (* instruction outside a block *)

let resolve_error_at addr set =
  Prodset.resolve_labels (fun _ -> Some addr) set

let test_lang_roundtrip () =
  let set = resolve_error_at 0x9000 (Lang.parse mfi_source) in
  let printed = Lang.to_string set in
  let set2 = Lang.parse printed in
  check int_ "productions preserved" (Prodset.num_productions set)
    (Prodset.num_productions set2);
  let st = Insn.Mem (Opcode.Stq, r1, 4, r2) in
  let e1 = Engine.create set and e2 = Engine.create set2 in
  let x1 = Engine.expand e1 ~pc:0x100 st and x2 = Engine.expand e2 ~pc:0x100 st in
  match x1, x2 with
  | Some a, Some b ->
    check bool_ "same expansion" true (a.Machine.seq = b.Machine.seq)
  | _ -> Alcotest.fail "both should expand"

(* Build the Figure 1 machine: a program with a legal and an illegal
   store, MFI productions active. *)
let mfi_machine ~legal =
  let img =
    Program.layout
      (Asm.parse
         {|
         main:
           lui #1024, r1      ; data segment (segment 1)
           lui #3072, r9      ; segment 3: illegal
           add zero, #7, r2
           stq r2, 0(r1)
           stq r2, 0(r9)      ; out-of-segment store
           add zero, #1, r8
           halt
         error:
           add zero, #77, r2
           halt
         |})
  in
  let set =
    Prodset.resolve_labels (Program.Image.symbol img) (Lang.parse mfi_source)
  in
  let engine = Engine.create set in
  let m = Machine.create ~expander:(Engine.expander engine) img in
  Machine.set_dise_reg m 2 (if legal then 3 else 1);
  (m, engine)

let test_lang_opcode_pattern_roundtrip () =
  (* Every opcode mnemonic printed by Pattern.pp must re-parse to the
     same dispatch key. *)
  for k = 0 to Insn.num_keys - 1 do
    let set =
      Prodset.add Prodset.empty
        (Production.make ~name:"P1"
           (Pattern.of_opcode (Insn.example_of_key k))
           (Production.Direct 1))
        Replacement.identity
    in
    let printed = Lang.to_string set in
    match Lang.parse printed with
    | set2 -> (
      match (Prodset.productions set2 : Production.t list) with
      | [ p ] ->
        if p.Production.pattern.Pattern.opcode_key <> Some k then
          Alcotest.failf "key %d (%s) did not round-trip" k
            (Insn.mnemonic_of_key k)
      | _ -> Alcotest.failf "key %d: wrong production count" k)
    | exception Lang.Parse_error (_, msg) ->
      Alcotest.failf "key %d (%s) failed to re-parse: %s" k
        (Insn.mnemonic_of_key k) msg
  done

let test_mfi_catches_bad_store () =
  let m, engine = mfi_machine ~legal:false in
  (* $dr2 = 1: the r1 store is legal, the r9 store is not. *)
  ignore (Machine.run m);
  check int_ "error handler exit code" 77 (Machine.exit_code m);
  check int_ "legal store went through" 7
    (Memory.read_u32 (Machine.memory m) 0x04000000);
  check int_ "illegal store suppressed" 0
    (Memory.read_u32 (Machine.memory m) 0x0C000000);
  check int_ "r8 never set (we trapped first)" 0
    (Regfile.get (Machine.regs m) (Reg.r 8));
  check bool_ "expansions happened" true (Engine.expansions_performed engine >= 2)

let test_mfi_passes_when_legal () =
  (* With $dr2 = 3 the *first* store traps instead. *)
  let m, _ = mfi_machine ~legal:true in
  ignore (Machine.run m);
  check int_ "trapped on first store" 77 (Machine.exit_code m);
  check int_ "first store suppressed" 0
    (Memory.read_u32 (Machine.memory m) 0x04000000)

let test_engine_most_specific_wins () =
  (* "all loads that don't use the stack pointer": identity for sp
     loads, counting expansion for others. *)
  let sp_loads = Pattern.with_rs Reg.sp Pattern.loads in
  let set =
    Prodset.empty
    |> (fun s ->
         Prodset.add s (Production.make ~name:"ident" sp_loads (Production.Direct 1))
           Replacement.identity)
    |> fun s ->
    Prodset.add s (Production.make ~name:"count" Pattern.loads (Production.Direct 2))
      [| Replacement.Ropi (Opcode.Add, Replacement.Rlit (Reg.d 0),
                           Replacement.Ilit 1, Replacement.Rlit (Reg.d 0));
         Replacement.Trigger |]
  in
  let engine = Engine.create set in
  let sp_load = Insn.Mem (Opcode.Ldq, Reg.sp, 0, r2) in
  let other_load = Insn.Mem (Opcode.Ldq, r1, 0, r2) in
  (match Engine.expand engine ~pc:0x100 sp_load with
  | Some { Machine.rsid = 1; seq } ->
    check int_ "identity expansion" 1 (Array.length seq);
    check bool_ "identity is the trigger" true (Insn.equal seq.(0) sp_load)
  | Some { Machine.rsid; _ } -> Alcotest.failf "wrong production %d" rsid
  | None -> Alcotest.fail "sp load should match identity");
  match Engine.expand engine ~pc:0x104 other_load with
  | Some { Machine.rsid = 2; seq } -> check int_ "counting expansion" 2 (Array.length seq)
  | _ -> Alcotest.fail "other load should match counting production"

let test_engine_memoizes_by_pc () =
  let set = resolve_error_at 0x9000 (Lang.parse mfi_source) in
  let engine = Engine.create set in
  let st = Insn.Mem (Opcode.Stq, r1, 0, r2) in
  let a = Engine.expand engine ~pc:0x100 st in
  let b = Engine.expand engine ~pc:0x100 st in
  check bool_ "same expansion object" true (a == b);
  check int_ "distinct triggers counted once" 1 (Engine.distinct_triggers engine)

let test_engine_cache_keyed_by_insn () =
  (* Regression: the sparse memo once keyed by PC alone, so a second
     instruction at the same PC (re-laid-out codeword image, or a
     hand-driven probe) got the first instruction's expansion. *)
  let sp_loads = Pattern.with_rs Reg.sp Pattern.loads in
  let set =
    Prodset.empty
    |> (fun s ->
         Prodset.add s
           (Production.make ~name:"ident" sp_loads (Production.Direct 1))
           Replacement.identity)
    |> fun s ->
    Prodset.add s
      (Production.make ~name:"count" Pattern.loads (Production.Direct 2))
      [| Replacement.Ropi (Opcode.Add, Replacement.Rlit (Reg.d 0),
                           Replacement.Ilit 1, Replacement.Rlit (Reg.d 0));
         Replacement.Trigger |]
  in
  let engine = Engine.create set in
  let sp_load = Insn.Mem (Opcode.Ldq, Reg.sp, 0, r2) in
  let other_load = Insn.Mem (Opcode.Ldq, r1, 0, r2) in
  let pc = 0x100 in
  (match Engine.expand engine ~pc sp_load with
  | Some { Machine.rsid = 1; _ } -> ()
  | _ -> Alcotest.fail "sp load should hit the identity production");
  (* Same PC, different instruction: must not reuse the memo entry. *)
  (match Engine.expand engine ~pc other_load with
  | Some { Machine.rsid = 2; seq } ->
    check int_ "counting expansion, not stale identity" 2 (Array.length seq)
  | Some { Machine.rsid; _ } ->
    Alcotest.failf "stale expansion (rsid %d) returned for new insn" rsid
  | None -> Alcotest.fail "other load should match counting production");
  (* And the original pairing still hits its own entry. *)
  match Engine.expand engine ~pc sp_load with
  | Some { Machine.rsid = 1; seq } -> check int_ "identity intact" 1 (Array.length seq)
  | _ -> Alcotest.fail "identity expansion lost"

let test_engine_unbound_sequence () =
  let set =
    Prodset.add_production Prodset.empty
      (Production.make Pattern.loads (Production.Direct 9))
  in
  let engine = Engine.create set in
  match Engine.expand engine ~pc:0 (Insn.Mem (Opcode.Ldq, r1, 0, r2)) with
  | exception Engine.Expansion_error _ -> ()
  | _ -> Alcotest.fail "unbound sequence should error"

(* --- PT / RT / controller ------------------------------------------- *)

let test_pt_hits_and_misses () =
  let set = Lang.parse mfi_source in
  let pt = Pt.create ~capacity:32 set in
  let load_key = Insn.key (Insn.Mem (Opcode.Ldq, r1, 0, r2)) in
  let alu_key = Insn.key (Insn.Rop (Opcode.Add, r1, r2, r3)) in
  (* First touch of an opcode with active patterns misses... *)
  (match Pt.access pt ~key:load_key with
  | `Miss n -> check int_ "one pattern filled" 1 n
  | `Hit -> Alcotest.fail "first access should miss");
  (* ...then hits. *)
  check bool_ "second access hits" true (Pt.access pt ~key:load_key = `Hit);
  (* Opcodes with no active patterns never miss. *)
  check bool_ "patternless opcode hits" true (Pt.access pt ~key:alu_key = `Hit);
  check int_ "misses counted" 1 (Pt.misses pt)

let test_pt_capacity_eviction () =
  (* A 1-entry PT with patterns on two opcodes must thrash. *)
  let set =
    Prodset.empty
    |> (fun s ->
         Prodset.add s
           (Production.make (Pattern.of_opcode (Insn.Mem (Opcode.Ldq, r1, 0, r2)))
              (Production.Direct 1))
           Replacement.identity)
    |> fun s ->
    Prodset.add s
      (Production.make (Pattern.of_opcode (Insn.Mem (Opcode.Stq, r1, 0, r2)))
         (Production.Direct 1))
      Replacement.identity
  in
  let pt = Pt.create ~capacity:1 set in
  let ld = Insn.key (Insn.Mem (Opcode.Ldq, r1, 0, r2)) in
  let st = Insn.key (Insn.Mem (Opcode.Stq, r1, 0, r2)) in
  ignore (Pt.access pt ~key:ld);
  ignore (Pt.access pt ~key:st);
  (match Pt.access pt ~key:ld with
  | `Miss _ -> ()
  | `Hit -> Alcotest.fail "1-entry PT should thrash between two opcodes");
  check bool_ "occupancy bounded" true (Pt.resident_patterns pt <= 1)

let test_rt_basic () =
  let rt = Rt.create ~entries:8 ~assoc:2 () in
  check bool_ "cold miss" true (Rt.access rt ~rsid:1 ~len:3 = `Miss);
  check bool_ "warm hit" true (Rt.access rt ~rsid:1 ~len:3 = `Hit);
  check bool_ "different sequence misses" true (Rt.access rt ~rsid:2 ~len:3 = `Miss);
  check int_ "two misses" 2 (Rt.misses rt);
  check int_ "three accesses" 3 (Rt.accesses rt)

let test_rt_capacity () =
  let rt = Rt.create ~entries:4 ~assoc:1 () in
  (* Fill with more distinct sequences than capacity, then re-touch the
     first: it should have been evicted. *)
  for rsid = 1 to 8 do
    ignore (Rt.access rt ~rsid ~len:1)
  done;
  let misses_before = Rt.misses rt in
  (match Rt.access rt ~rsid:1 ~len:1 with
  | `Miss -> ()
  | `Hit ->
    (* With hashing, rsid 1 may have survived; at least occupancy must
       be bounded by capacity. *)
    ());
  ignore misses_before;
  check bool_ "occupancy bounded by capacity" true (Rt.occupancy rt <= 4)

let test_rt_perfect () =
  let rt = Rt.perfect () in
  for rsid = 0 to 10_000 do
    if Rt.access rt ~rsid ~len:5 <> `Hit then
      Alcotest.fail "perfect RT must always hit"
  done;
  check int_ "no misses" 0 (Rt.misses rt)

let test_rt_long_sequence_blocks () =
  (* One long sequence occupying more than one block still hits after
     a single fill. *)
  let rt = Rt.create ~entries:64 ~assoc:2 ~entries_per_block:4 () in
  check bool_ "miss fills all blocks" true (Rt.access rt ~rsid:3 ~len:10 = `Miss);
  check bool_ "whole sequence hits" true (Rt.access rt ~rsid:3 ~len:10 = `Hit)

let test_controller_costs () =
  let set = Lang.parse mfi_source in
  let cfg =
    { Controller.default_config with rt_entries = 16; rt_assoc = 1 }
  in
  let c = Controller.create cfg set in
  let stall1 = Controller.on_expansion c ~rsid:1 ~len:4 in
  check int_ "cold RT miss costs 30" 30 stall1;
  let stall2 = Controller.on_expansion c ~rsid:1 ~len:4 in
  check int_ "warm expansion is free" 0 stall2;
  let c2 = Controller.create { cfg with composing = true } set in
  check int_ "composing miss costs 150" 150
    (Controller.on_expansion c2 ~rsid:1 ~len:4);
  let stats = Controller.stats c in
  check int_ "stall cycles accumulated" 30 stats.Controller.stall_cycles

let test_controller_context_switch () =
  let set = Lang.parse mfi_source in
  let c = Controller.create Controller.default_config set in
  ignore (Controller.on_expansion c ~rsid:1 ~len:4);
  check int_ "warm" 0 (Controller.on_expansion c ~rsid:1 ~len:4);
  Controller.context_switch c;
  check int_ "cold again after context switch" 30
    (Controller.on_expansion c ~rsid:1 ~len:4)

(* --- composition (Figure 5) ----------------------------------------- *)

let tracing_source =
  {|
  ; store address tracing: write the store's effective address into a
  ; buffer pointed to by $dr5
  P3: T.OPCLASS == store -> R3
  R3: lda $dr4, #T.IMM(T.RS)
      stq $dr4, 0($dr5)
      lda $dr5, 4($dr5)
      T.INSN
  |}

let test_nested_composition_structure () =
  (* Nest tracing (inner, applied first) within MFI (outer):
     MFI(tracing(app)). The tracing sequence contains two stores (the
     literal trace store and the trigger); both must get MFI checks. *)
  let mfi = Lang.parse mfi_source in
  let tracing = Compose.shift_direct_rsids 10 (Lang.parse tracing_source) in
  let composed = Compose.nest ~outer:mfi ~inner:tracing in
  let st = Insn.Mem (Opcode.Stq, r1, 8, r2) in
  match Prodset.lookup composed st with
  | None -> Alcotest.fail "composed set should match stores"
  | Some (p, rsid) ->
    check bool_ "tracing production wins (higher priority)" true
      (p.Production.priority > 0);
    let seq =
      match Prodset.sequence composed rsid with
      | Some s -> s
      | None -> Alcotest.fail "sequence missing"
    in
    (* R3 is 4 instructions; MFI expands its two stores (+3 each). *)
    check int_ "inlined length" 10 (Replacement.length seq);
    (* The composite still ends with the trigger. *)
    check bool_ "ends with trigger" true
      (seq.(Replacement.length seq - 1) = Replacement.Trigger)

let test_nested_composition_runs () =
  (* Execute the composed ACF: trace buffer filled AND illegal stores
     caught. *)
  let img =
    Program.layout
      (Asm.parse
         {|
         main:
           lui #1024, r1
           add zero, #7, r2
           stq r2, 16(r1)
           stq r2, 32(r1)
           add zero, #1, r8
           halt
         error:
           add zero, #77, r2
           halt
         |})
  in
  let mfi =
    Prodset.resolve_labels (Program.Image.symbol img) (Lang.parse mfi_source)
  in
  let tracing = Compose.shift_direct_rsids 10 (Lang.parse tracing_source) in
  let composed = Compose.nest ~outer:mfi ~inner:tracing in
  let engine = Engine.create composed in
  let m = Machine.create ~expander:(Engine.expander engine) img in
  Machine.set_dise_reg m 2 1;            (* legal data segment *)
  Machine.set_dise_reg m 5 0x04100000;   (* trace buffer, in-segment *)
  ignore (Machine.run m);
  check int_ "program completed" 1 (Regfile.get (Machine.regs m) (Reg.r 8));
  let mem = Machine.memory m in
  check int_ "stores performed" 7 (Memory.read_u32 mem 0x04000010);
  check int_ "trace entry 0 is first store address" 0x04000010
    (Memory.read_u32 mem 0x04100000);
  check int_ "trace entry 1 is second store address" 0x04000020
    (Memory.read_u32 mem 0x04100004);
  check int_ "trace pointer advanced" (0x04100000 + 8)
    (Regfile.get (Machine.regs m) (Reg.d 5))

let test_nested_composition_traps_tracing_store () =
  (* Nested means the tracing stores are themselves fault-isolated: a
     trace buffer outside the legal segment must trap. *)
  let img =
    Program.layout
      (Asm.parse
         {|
         main:
           lui #1024, r1
           add zero, #7, r2
           stq r2, 16(r1)
           halt
         error:
           add zero, #77, r2
           halt
         |})
  in
  let mfi =
    Prodset.resolve_labels (Program.Image.symbol img) (Lang.parse mfi_source)
  in
  let tracing = Compose.shift_direct_rsids 10 (Lang.parse tracing_source) in
  let composed = Compose.nest ~outer:mfi ~inner:tracing in
  let engine = Engine.create composed in
  let m = Machine.create ~expander:(Engine.expander engine) img in
  Machine.set_dise_reg m 2 1;
  Machine.set_dise_reg m 5 0x0C100000;  (* trace buffer in segment 3! *)
  ignore (Machine.run m);
  check int_ "tracing store trapped" 77 (Machine.exit_code m);
  check int_ "application store suppressed too" 0
    (Memory.read_u32 (Machine.memory m) 0x04000010)

let test_merge_sequences () =
  (* Figure 5's non-nested composition: trace and fault-isolate
     application stores without fault-isolating the tracing stores. *)
  let mfi = Lang.parse mfi_source in
  let tracing = Lang.parse tracing_source in
  let r3 = match Prodset.sequence tracing 3 with Some s -> s | None -> [||] in
  let r1_ = match Prodset.sequence mfi 1 with Some s -> s | None -> [||] in
  let merged = Compose.merge_sequences r3 r1_ in
  check int_ "R4 length (3 + 4)" 7 (Replacement.length merged);
  check bool_ "single trigger" true
    (Array.to_list merged
     |> List.filter (fun x -> x = Replacement.Trigger)
     |> List.length = 1);
  (* The merged sequence must end with: srl/xor/bne/T.INSN. *)
  check bool_ "MFI check precedes trigger" true
    (match merged.(Replacement.length merged - 2) with
    | Replacement.Br (Opcode.Bne, _, _) -> true
    | _ -> false)

let test_merge_errors () =
  let no_trigger = [| Replacement.Nop |] in
  let with_trigger = [| Replacement.Nop; Replacement.Trigger |] in
  (match Compose.merge_sequences no_trigger with_trigger with
  | exception Compose.Composition_error _ -> ()
  | _ -> Alcotest.fail "first sequence must end with trigger");
  match Compose.merge_sequences with_trigger no_trigger with
  | exception Compose.Composition_error _ -> ()
  | _ -> Alcotest.fail "second sequence must contain a trigger"

let test_compose_rsid_collision () =
  let mfi = Lang.parse mfi_source in
  let tracing = Lang.parse tracing_source in
  (* Both bind low sequence ids (1 vs 3) — fine. Force a collision: *)
  let clash = Compose.shift_direct_rsids (-2) tracing in
  match Compose.nest ~outer:mfi ~inner:clash with
  | exception Compose.Composition_error _ -> ()
  | _ -> Alcotest.fail "rsid collision should be rejected"

let test_compose_dedicated_renaming () =
  (* Inner uses $dr1 (conflicting with MFI's scratch); nest must rename
     the inner register so both ACFs keep working. *)
  let inner =
    Lang.parse
      {|
      P9: T.OPCLASS == load -> R20
      R20: lda $dr1, 1($dr1)
           T.INSN
      |}
  in
  let mfi = Lang.parse mfi_source in
  let composed = Compose.nest ~outer:mfi ~inner in
  let seq =
    match Prodset.sequence composed 20 with Some s -> s | None -> [||]
  in
  (* The inner lda must now use a register other than $dr1 (which the
     inlined MFI check still legitimately uses further down). *)
  match seq.(0) with
  | Replacement.Lda (Replacement.Rlit (Reg.D n), _, Replacement.Rlit (Reg.D n'))
    ->
    check int_ "same register on both sides" n n';
    check bool_ "renamed away from $dr1" true (n <> 1)
  | _ -> Alcotest.fail "expected the renamed inner lda first"

let test_inline_ambiguity_detected () =
  (* An outer pattern constraining a register field cannot be decided
     against a parameterized template. *)
  let outer =
    Prodset.add Prodset.empty
      (Production.make (Pattern.with_rs Reg.sp Pattern.stores) (Production.Direct 1))
      [| Replacement.Nop; Replacement.Trigger |]
  in
  let template =
    [| Replacement.Mem (Opcode.Stq, Replacement.Rparam 1, Replacement.Ilit 0,
                        Replacement.Rparam 2) |]
  in
  match Compose.inline_seq ~outer template with
  | exception Compose.Composition_error _ -> ()
  | _ -> Alcotest.fail "ambiguous match should be an error"

let suite =
  [
    ("pattern class match", `Quick, test_pattern_class_match);
    ("pattern field match", `Quick, test_pattern_field_match);
    ("pattern imm match", `Quick, test_pattern_imm_match);
    ("pattern specificity", `Quick, test_pattern_specificity);
    ("pattern codeword", `Quick, test_pattern_codeword);
    ("dispatch keys", `Quick, test_dispatch_keys);
    ("instantiate MFI sequence", `Quick, test_instantiate_mfi_sequence);
    ("instantiate params", `Quick, test_instantiate_params);
    ("instantiate branch param offset", `Quick,
     test_instantiate_branch_param_offset);
    ("field codecs", `Quick, test_field_codecs);
    ("lang parse MFI", `Quick, test_lang_parse_mfi);
    ("lang parse aware", `Quick, test_lang_parse_aware);
    ("remove production", `Quick, test_remove_production);
    ("lang field conditions", `Quick, test_lang_field_conditions);
    ("lang errors", `Quick, test_lang_errors);
    ("lang roundtrip", `Quick, test_lang_roundtrip);
    ("lang opcode pattern roundtrip", `Quick, test_lang_opcode_pattern_roundtrip);
    ("MFI catches bad store", `Quick, test_mfi_catches_bad_store);
    ("MFI traps when segment mismatched", `Quick, test_mfi_passes_when_legal);
    ("most specific pattern wins", `Quick, test_engine_most_specific_wins);
    ("engine memoizes by pc", `Quick, test_engine_memoizes_by_pc);
    ("engine cache keyed by (pc, insn)", `Quick,
     test_engine_cache_keyed_by_insn);
    ("engine unbound sequence", `Quick, test_engine_unbound_sequence);
    ("PT hits and misses", `Quick, test_pt_hits_and_misses);
    ("PT capacity eviction", `Quick, test_pt_capacity_eviction);
    ("RT basic", `Quick, test_rt_basic);
    ("RT capacity", `Quick, test_rt_capacity);
    ("RT perfect", `Quick, test_rt_perfect);
    ("RT long sequence blocks", `Quick, test_rt_long_sequence_blocks);
    ("controller costs", `Quick, test_controller_costs);
    ("controller context switch", `Quick, test_controller_context_switch);
    ("nested composition structure", `Quick, test_nested_composition_structure);
    ("nested composition runs", `Quick, test_nested_composition_runs);
    ("nested composition traps tracing store", `Quick,
     test_nested_composition_traps_tracing_store);
    ("merge sequences", `Quick, test_merge_sequences);
    ("merge errors", `Quick, test_merge_errors);
    ("compose rsid collision", `Quick, test_compose_rsid_collision);
    ("compose dedicated renaming", `Quick, test_compose_dedicated_renaming);
    ("inline ambiguity detected", `Quick, test_inline_ambiguity_detected);
  ]
