(* Tests for the ACF layer: fault isolation (DISE and rewriting),
   compression (losslessness, scheme feature effects), the auxiliary
   transparent ACFs, and MFI/decompression composition. *)

open Dise_isa
open Dise_acf
module Machine = Dise_machine.Machine
module Memory = Dise_machine.Memory
module Regfile = Dise_machine.Regfile
module Engine = Dise_core.Engine
module Prodset = Dise_core.Prodset
module W = Dise_workload

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let data_lo = 0x04000000
let data_hi = 0x07F00000 (* excludes the stack (holds code addresses) *)

let data_checksum m =
  Memory.checksum_range (Machine.memory m) ~lo:data_lo ~hi:data_hi

(* A program with one deliberate out-of-segment store, guarded by a
   flag in r10: harmless when r10=0. *)
let victim_src =
  {|
  main:
    lui #1024, r1       ; legal data pointer
    lui #3072, r9       ; segment-3 pointer: illegal
    add zero, #5, r2
    stq r2, 0(r1)
    beq r10, skip
    stq r2, 0(r9)       ; the bad store
  skip:
    ldq r3, 0(r1)
    add zero, #0, r2
    halt
  __error:
    add zero, #77, r2
    halt
  |}

let victim_image () = Program.layout ~base:0x100000 (Asm.parse victim_src)

(* --- MFI (DISE) ------------------------------------------------------ *)

let run_mfi ?variant ~bad () =
  let img = victim_image () in
  let set = Mfi.productions_for ?variant img in
  let m = Machine.create ~expander:(Engine.expander (Engine.create set)) img in
  Mfi.install m ~data_seg:1 ~code_seg:0;
  if bad then Machine.set_reg m (Reg.r 10) 1;
  ignore (Machine.run m);
  m

let test_mfi_passes_legal () =
  let m = run_mfi ~bad:false () in
  check int_ "clean exit" 0 (Machine.exit_code m);
  check int_ "legal store done" 5 (Memory.read_u32 (Machine.memory m) data_lo)

let test_mfi_catches_illegal () =
  let m = run_mfi ~bad:true () in
  check int_ "trapped" 77 (Machine.exit_code m);
  check int_ "bad store suppressed" 0
    (Memory.read_u32 (Machine.memory m) 0x0C000000)

let test_mfi_dise4_equivalent () =
  let m = run_mfi ~variant:Mfi.Dise4 ~bad:true () in
  check int_ "DISE4 also traps" 77 (Machine.exit_code m);
  let m2 = run_mfi ~variant:Mfi.Dise4 ~bad:false () in
  check int_ "DISE4 passes legal" 0 (Machine.exit_code m2)

let test_mfi_check_lengths () =
  check int_ "DISE3 adds 3" 3 (Mfi.check_length Mfi.Dise3);
  check int_ "DISE4 adds 4" 4 (Mfi.check_length Mfi.Dise4);
  let img = victim_image () in
  let set3 = Mfi.productions_for ~variant:Mfi.Dise3 img in
  let st = Insn.Mem (Opcode.Stq, Reg.r 1, 0, Reg.r 2) in
  match Engine.expand (Engine.create set3) ~pc:0x100000 st with
  | Some e -> check int_ "DISE3 sequence = 4 insns incl. trigger" 4
                (Array.length e.Machine.seq)
  | None -> Alcotest.fail "store should expand"

let test_mfi_jump_checks () =
  let img = victim_image () in
  let set = Mfi.productions_for ~check_jumps:true img in
  let jr = Insn.Jr Reg.ra in
  check bool_ "jr expands under check_jumps" true
    (Engine.expand (Engine.create set) ~pc:0x100000 jr <> None);
  let set' = Mfi.productions_for img in
  check bool_ "jr not expanded by default" true
    (Engine.expand (Engine.create set') ~pc:0x100000 jr = None)

let test_mfi_dise_sandboxing () =
  (* The DISE sandboxing flavour: the bad store is silently redirected
     into the legal segment; nothing traps. *)
  let img = victim_image () in
  let set = Mfi.sandbox_productions () in
  let m = Machine.create ~expander:(Engine.expander (Engine.create set)) img in
  Mfi.install_sandbox m ~data_seg:1;
  Machine.set_reg m (Reg.r 10) 1 (* enable the bad store *);
  ignore (Machine.run m);
  check int_ "no trap" 0 (Machine.exit_code m);
  check int_ "store redirected into legal segment" 5
    (Memory.read_u32 (Machine.memory m) data_lo);
  check int_ "illegal segment untouched" 0
    (Memory.read_u32 (Machine.memory m) 0x0C000000);
  (* Loads are rebuilt too: r3 must still read back the legal value. *)
  check int_ "rebuilt load works" 5 (Regfile.get (Machine.regs m) (Reg.r 3))

(* --- MFI (binary rewriting) ------------------------------------------ *)

let run_rewritten ?variant ~bad () =
  let prog = Asm.parse victim_src in
  let rw = Rewrite.rewrite ?variant ~data_seg:1 ~code_seg:0 prog in
  let img = Program.layout ~base:0x100000 rw in
  let m = Machine.create img in
  if bad then Machine.set_reg m (Reg.r 10) 1;
  ignore (Machine.run m);
  (m, prog, rw)

let test_rewrite_passes_legal () =
  let m, _, _ = run_rewritten ~bad:false () in
  check int_ "clean exit" 0 (Machine.exit_code m);
  check int_ "store done" 5 (Memory.read_u32 (Machine.memory m) data_lo)

let test_rewrite_catches_illegal () =
  let m, _, _ = run_rewritten ~bad:true () in
  check int_ "trapped" 77 (Machine.exit_code m);
  check int_ "bad store suppressed" 0
    (Memory.read_u32 (Machine.memory m) 0x0C000000)

let test_rewrite_static_growth () =
  let _, prog, rw = run_rewritten ~bad:false () in
  (* 3 memory ops -> +12 instructions, plus 2 init instructions. *)
  check int_ "inserted instructions" (Program.size prog + 14) (Program.size rw);
  check bool_ "growth ratio computed" true
    (Rewrite.static_growth prog rw > 1.5)

let test_sandboxing_redirects () =
  (* Sandboxing forces the bad store into the legal segment instead of
     trapping. *)
  let m, _, _ = run_rewritten ~variant:Rewrite.Sandboxing ~bad:true () in
  check int_ "no trap" 0 (Machine.exit_code m);
  check int_ "store redirected into legal segment" 5
    (Memory.read_u32 (Machine.memory m) data_lo);
  check int_ "illegal segment untouched" 0
    (Memory.read_u32 (Machine.memory m) 0x0C000000)

let test_rewrite_on_workload () =
  let e = W.Suite.get ~dyn_target:30_000 W.Profile.tiny in
  let rw =
    Rewrite.rewrite ~data_seg:W.Codegen.data_segment_id
      ~code_seg:W.Codegen.code_segment_id e.W.Suite.gen.W.Codegen.program
  in
  let img = Program.layout ~base:W.Codegen.code_base rw in
  let m = Machine.create img in
  ignore (Machine.run ~max_steps:5_000_000 m);
  check int_ "rewritten workload runs clean" 0 (Machine.exit_code m);
  (* Same data-segment effects as the original. *)
  let m0 = Machine.create e.W.Suite.image in
  ignore (Machine.run ~max_steps:5_000_000 m0);
  check int_ "identical data effects" (data_checksum m0) (data_checksum m)

(* --- compression ------------------------------------------------------ *)

let reference_run (e : W.Suite.entry) =
  let m = Machine.create e.W.Suite.image in
  ignore (Machine.run ~max_steps:5_000_000 m);
  (Machine.exit_code m, data_checksum m)

let compressed_run (r : Compress.result) =
  let m =
    Machine.create
      ~expander:(Engine.expander (Engine.create r.Compress.prodset))
      r.Compress.image
  in
  ignore (Machine.run ~max_steps:5_000_000 m);
  (Machine.exit_code m, data_checksum m)

let tiny_entry () = W.Suite.get ~dyn_target:30_000 W.Profile.tiny

let test_compression_lossless_all_schemes () =
  let e = tiny_entry () in
  let refr = reference_run e in
  List.iter
    (fun scheme ->
      let r = Compress.compress ~scheme e.W.Suite.gen.W.Codegen.program in
      let got = compressed_run r in
      if got <> refr then
        Alcotest.failf "scheme %s is not lossless" scheme.Compress.name)
    Compress.fig7_schemes

let test_compression_shrinks () =
  let e = tiny_entry () in
  List.iter
    (fun scheme ->
      let r = Compress.compress ~scheme e.W.Suite.gen.W.Codegen.program in
      let ratio = Compress.compression_ratio r in
      if not (ratio > 0.15 && ratio < 1.0) then
        Alcotest.failf "scheme %s ratio implausible: %.3f"
          scheme.Compress.name ratio;
      check bool_ "dict accounted" true (r.Compress.dict_bytes > 0))
    Compress.fig7_schemes

let test_scheme_feature_ordering () =
  let e = tiny_entry () in
  let total scheme =
    Compress.total_ratio (Compress.compress ~scheme e.W.Suite.gen.W.Codegen.program)
  in
  let ded = total Compress.dedicated in
  let m1 = total Compress.minus_1insn in
  let m2 = total Compress.minus_2byte_cw in
  let de8 = total Compress.plus_8byte_de in
  let par = total Compress.plus_3param in
  let dise = total Compress.full_dise in
  check bool_ "removing 1-insn entries hurts" true (m1 > ded);
  check bool_ "removing 2-byte codewords hurts" true (m2 > m1);
  check bool_ "8-byte entries hurt" true (de8 >= m2);
  check bool_ "parameterization recovers" true (par < de8);
  check bool_ "branch compression helps further" true (dise < par)

let test_dedicated_single_insn_entries () =
  let e = tiny_entry () in
  let r = Compress.compress ~scheme:Compress.dedicated e.W.Suite.gen.W.Codegen.program in
  check bool_ "has single-instruction entries" true
    (List.exists (fun en -> en.Compress.len = 1) r.Compress.entries);
  let r2 =
    Compress.compress ~scheme:Compress.minus_1insn e.W.Suite.gen.W.Codegen.program
  in
  check bool_ "min_len respected" true
    (List.for_all (fun en -> en.Compress.len >= 2) r2.Compress.entries)

let test_entry_invariants () =
  let e = tiny_entry () in
  List.iter
    (fun scheme ->
      let r = Compress.compress ~scheme e.W.Suite.gen.W.Codegen.program in
      List.iter
        (fun en ->
          if en.Compress.tag < 0 || en.Compress.tag > 2047 then
            Alcotest.failf "tag out of range: %d" en.Compress.tag;
          if en.Compress.param_fields > scheme.Compress.max_params then
            Alcotest.failf "too many params in %s" scheme.Compress.name;
          if en.Compress.len > scheme.Compress.max_len then
            Alcotest.failf "entry too long";
          if en.Compress.uses <= 0 then
            Alcotest.failf "dead entry retained")
        r.Compress.entries)
    [ Compress.dedicated; Compress.plus_3param; Compress.full_dise ]

let test_unparameterized_entries_are_static () =
  let e = tiny_entry () in
  let r =
    Compress.compress ~scheme:Compress.minus_2byte_cw
      e.W.Suite.gen.W.Codegen.program
  in
  List.iter
    (fun en ->
      check int_ "no params" 0 en.Compress.param_fields;
      check bool_ "spec is static" true
        (Dise_core.Replacement.is_static en.Compress.spec))
    r.Compress.entries

let test_dedicated_codewords_halfword () =
  let e = tiny_entry () in
  let r = Compress.compress ~scheme:Compress.dedicated e.W.Suite.gen.W.Codegen.program in
  (* Compressed image must contain 2-byte-aligned codewords. *)
  let img = r.Compress.image in
  let found = ref false in
  Program.Image.iter
    (fun ~addr insn ->
      match insn with
      | Insn.Codeword _ ->
        found := true;
        if addr land 1 <> 0 then Alcotest.fail "codeword misaligned"
      | _ -> ())
    img;
  check bool_ "codewords planted" true !found;
  check bool_ "text smaller than 4*insns" true
    (Program.Image.text_bytes img < 4 * Program.Image.length img)

let test_branch_compression_only_full_dise () =
  let e = tiny_entry () in
  let has_branch_entry r =
    List.exists
      (fun en ->
        Array.exists
          (function Dise_core.Replacement.Br _ -> true | _ -> false)
          en.Compress.spec)
      r.Compress.entries
  in
  let r_par =
    Compress.compress ~scheme:Compress.plus_3param e.W.Suite.gen.W.Codegen.program
  in
  let r_dise =
    Compress.compress ~scheme:Compress.full_dise e.W.Suite.gen.W.Codegen.program
  in
  check bool_ "+3param has no branch entries" false (has_branch_entry r_par);
  check bool_ "DISE compresses branches" true (has_branch_entry r_dise)

let test_incompressible_program () =
  (* A program with no repeated sequences: compression must degrade
     gracefully to (near) identity and still run. *)
  let b = Buffer.create 512 in
  Buffer.add_string b "main:\n";
  for i = 1 to 40 do
    Buffer.add_string b
      (Printf.sprintf "  add r%d, #%d, r%d\n" (1 + (i mod 7)) (i * 37)
         (1 + ((i + 3) mod 7)))
  done;
  Buffer.add_string b "  add zero, #0, r2\n  halt\n";
  let prog = Asm.parse (Buffer.contents b) in
  let r = Compress.compress ~scheme:Compress.full_dise prog in
  check bool_ "ratio near 1" true (Compress.compression_ratio r > 0.85);
  let m =
    Machine.create
      ~expander:(Engine.expander (Engine.create r.Compress.prodset))
      r.Compress.image
  in
  ignore (Machine.run m);
  check int_ "still runs" 0 (Machine.exit_code m)

(* --- tracing / profiling / watchpoints -------------------------------- *)

let test_tracing () =
  let img = victim_image () in
  let set = Tracing.productions () in
  let m = Machine.create ~expander:(Engine.expander (Engine.create set)) img in
  Tracing.install m ~buffer:0x04100000;
  ignore (Machine.run m);
  check int_ "clean run" 0 (Machine.exit_code m);
  (match Tracing.trace m ~buffer:0x04100000 with
  | [ a ] -> check int_ "store address traced" data_lo a
  | l -> Alcotest.failf "expected one trace entry, got %d" (List.length l))

let test_profiling () =
  let e = W.Suite.get ~dyn_target:20_000 W.Profile.tiny in
  let set = Profiling.productions () in
  let m =
    Machine.create ~expander:(Engine.expander (Engine.create set))
      e.W.Suite.image
  in
  Profiling.install m ~buffer:0x06000000;
  ignore (Machine.run ~max_steps:5_000_000 m);
  check int_ "clean run" 0 (Machine.exit_code m);
  let counts = Profiling.counts m ~buffer:0x06000000 in
  check bool_ "branches profiled" true (List.length counts > 5);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
  check bool_ "counts match executed branches" true (total > 500);
  match Profiling.hottest m ~buffer:0x06000000 ~n:3 with
  | (_, hot) :: _ -> check bool_ "hottest is hot" true (hot * 10 >= total / 10)
  | [] -> Alcotest.fail "no hot branches"

let test_path_profiling () =
  (* A function with a deterministic 4-iteration loop: the branch
     outcome sequence is TTNTTTNN (alternating data branch interleaved
     with the loop bound), recorded at the return. *)
  let img =
    Program.layout
      (Asm.parse
         {|
         main:
           jal work
           add zero, #0, r2
           halt
         work:
           add zero, #4, r4
         loop:
           and r4, #1, r5
           beq r5, even
           add r6, #1, r6
         even:
           add r4, #-1, r4
           bgt r4, loop
           jr ra
         |})
  in
  let set = Path_profiling.productions () in
  let m = Machine.create ~expander:(Engine.expander (Engine.create set)) img in
  Path_profiling.install m ~buffer:0x06000000;
  ignore (Machine.run ~max_steps:100_000 m);
  check int_ "clean run" 0 (Machine.exit_code m);
  match Path_profiling.paths m ~buffer:0x06000000 with
  | [ p ] ->
    check int_ "one distinct path" 1 p.Path_profiling.count;
    check int_ "eight outcomes" 8 p.Path_profiling.length;
    let rendered = Format.asprintf "%a" Path_profiling.pp_path p in
    let contains hay needle =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    check bool_ "outcome bits TTNTTTNN" true (contains rendered "TTNTTTNN")
  | l -> Alcotest.failf "expected one path, got %d" (List.length l)

let test_path_profiling_truncation () =
  (* A long loop overflows the history; the tag restarts instead of
     corrupting (lossy, as the paper permits). *)
  let img =
    Program.layout
      (Asm.parse
         {|
         main:
           jal work
           add zero, #0, r2
           halt
         work:
           add zero, #100, r4
         loop:
           add r4, #-1, r4
           bgt r4, loop
           jr ra
         |})
  in
  let set = Path_profiling.productions () in
  let m = Machine.create ~expander:(Engine.expander (Engine.create set)) img in
  Path_profiling.install m ~buffer:0x06000000;
  ignore (Machine.run ~max_steps:100_000 m);
  check int_ "clean run" 0 (Machine.exit_code m);
  match Path_profiling.paths m ~buffer:0x06000000 with
  | [ p ] ->
    check bool_ "length capped" true
      (p.Path_profiling.length <= Path_profiling.history_bits)
  | l -> Alcotest.failf "expected one path, got %d" (List.length l)

let test_watchpoint () =
  let img = victim_image () in
  let set = Watchpoint.productions_for img in
  let run addr =
    let m = Machine.create ~expander:(Engine.expander (Engine.create set)) img in
    Watchpoint.install m ~addr;
    ignore (Machine.run m);
    m
  in
  let hit = run data_lo in
  check int_ "watched store traps" 77 (Machine.exit_code hit);
  let miss = run 0x04000100 in
  check int_ "other stores pass" 0 (Machine.exit_code miss);
  let m = Machine.create ~expander:(Engine.expander (Engine.create set)) img in
  Watchpoint.disarm m;
  ignore (Machine.run m);
  check int_ "disarmed watch never fires" 0 (Machine.exit_code m)

(* --- fine-grain DSM ---------------------------------------------------- *)

let test_dsm_access_control () =
  let img = victim_image () in
  let set = Dsm.productions_for img in
  let shadow = 0x06000000 in
  let run ~present =
    let m = Machine.create ~expander:(Engine.expander (Engine.create set)) img in
    Dsm.install m ~shadow_base:shadow ~data_base:data_lo;
    (* Mark the whole data region present, then optionally pull the
       first block. *)
    Dsm.mark_present m ~shadow_base:shadow ~data_base:data_lo ~addr:data_lo
      ~len:4096;
    (* The shadow table itself is accessed by replacement loads; those
       loads are themselves expanded (no recursion: the expansion
       happens on application instructions only). Mark it too so the
       region check in this test stays simple. *)
    if not present then
      Dsm.mark_absent m ~shadow_base:shadow ~data_base:data_lo ~addr:data_lo
        ~len:Dsm.block_bytes;
    ignore (Machine.run m);
    m
  in
  let ok = run ~present:true in
  check int_ "present blocks pass" 0 (Machine.exit_code ok);
  check int_ "store performed" 5 (Memory.read_u32 (Machine.memory ok) data_lo);
  let miss = run ~present:false in
  check int_ "absent block traps" 77 (Machine.exit_code miss);
  check int_ "store suppressed" 0
    (Memory.read_u32 (Machine.memory miss) data_lo)

let test_dsm_block_granularity () =
  let img = victim_image () in
  let set = Dsm.productions_for img in
  let shadow = 0x06000000 in
  let m = Machine.create ~expander:(Engine.expander (Engine.create set)) img in
  Dsm.install m ~shadow_base:shadow ~data_base:data_lo;
  (* Present everywhere except one block 256 bytes in; the victim only
     touches offset 0, so it must run clean. *)
  Dsm.mark_present m ~shadow_base:shadow ~data_base:data_lo ~addr:data_lo
    ~len:4096;
  Dsm.mark_absent m ~shadow_base:shadow ~data_base:data_lo
    ~addr:(data_lo + 256) ~len:1;
  ignore (Machine.run m);
  check int_ "untouched absent block is harmless" 0 (Machine.exit_code m)

(* --- composition ------------------------------------------------------- *)

let test_composed_decompression_runs () =
  let e = tiny_entry () in
  let refr = reference_run e in
  let r = Compress.compress ~scheme:Compress.full_dise e.W.Suite.gen.W.Codegen.program in
  let composed = Acf_compose.for_compressed r in
  let m =
    Machine.create ~expander:(Engine.expander (Engine.create composed))
      r.Compress.image
  in
  Mfi.install m ~data_seg:W.Codegen.data_segment_id
    ~code_seg:W.Codegen.code_segment_id;
  ignore (Machine.run ~max_steps:8_000_000 m);
  check int_ "composed run clean" 0 (Machine.exit_code m);
  check int_ "same data effects as original"
    (snd refr) (data_checksum m)

let test_composed_catches_bad_store () =
  (* Compress the victim program, compose MFI over it, and check the
     decompressed bad store still traps. *)
  let prog = Asm.parse victim_src in
  let r = Compress.compress ~scheme:Compress.full_dise prog in
  let composed = Acf_compose.for_compressed r in
  let m =
    Machine.create ~expander:(Engine.expander (Engine.create composed))
      r.Compress.image
  in
  Mfi.install m ~data_seg:1 ~code_seg:0;
  Machine.set_reg m (Reg.r 10) 1;
  ignore (Machine.run m);
  check int_ "bad store trapped through composition" 77 (Machine.exit_code m)

let test_composition_grows_rt_working_set () =
  let e = tiny_entry () in
  let r = Compress.compress ~scheme:Compress.full_dise e.W.Suite.gen.W.Codegen.program in
  let composed = Acf_compose.for_compressed r in
  let growth =
    Acf_compose.rt_entry_growth ~plain:r.Compress.prodset ~composed
  in
  check bool_ "composition inflates sequences" true (growth > 1.05)

let suite =
  [
    ("MFI passes legal", `Quick, test_mfi_passes_legal);
    ("MFI catches illegal", `Quick, test_mfi_catches_illegal);
    ("MFI DISE4 equivalent", `Quick, test_mfi_dise4_equivalent);
    ("MFI check lengths", `Quick, test_mfi_check_lengths);
    ("MFI jump checks", `Quick, test_mfi_jump_checks);
    ("MFI DISE sandboxing", `Quick, test_mfi_dise_sandboxing);
    ("rewrite passes legal", `Quick, test_rewrite_passes_legal);
    ("rewrite catches illegal", `Quick, test_rewrite_catches_illegal);
    ("rewrite static growth", `Quick, test_rewrite_static_growth);
    ("sandboxing redirects", `Quick, test_sandboxing_redirects);
    ("rewrite on workload", `Quick, test_rewrite_on_workload);
    ("compression lossless (all schemes)", `Quick,
     test_compression_lossless_all_schemes);
    ("compression shrinks", `Quick, test_compression_shrinks);
    ("scheme feature ordering", `Quick, test_scheme_feature_ordering);
    ("dedicated single-insn entries", `Quick, test_dedicated_single_insn_entries);
    ("entry invariants", `Quick, test_entry_invariants);
    ("unparameterized entries static", `Quick,
     test_unparameterized_entries_are_static);
    ("dedicated codewords halfword", `Quick, test_dedicated_codewords_halfword);
    ("branch compression only in full DISE", `Quick,
     test_branch_compression_only_full_dise);
    ("dsm access control", `Quick, test_dsm_access_control);
    ("dsm block granularity", `Quick, test_dsm_block_granularity);
    ("incompressible program", `Quick, test_incompressible_program);
    ("tracing", `Quick, test_tracing);
    ("profiling", `Quick, test_profiling);
    ("path profiling", `Quick, test_path_profiling);
    ("path profiling truncation", `Quick, test_path_profiling_truncation);
    ("watchpoint", `Quick, test_watchpoint);
    ("composed decompression runs", `Quick, test_composed_decompression_runs);
    ("composed catches bad store", `Quick, test_composed_catches_bad_store);
    ("composition grows RT working set", `Quick,
     test_composition_grows_rt_working_set);
  ]
