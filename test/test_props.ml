(* Property-based tests over the core data structures and invariants. *)

open Dise_isa
open Dise_core
module Machine = Dise_machine.Machine
module Regfile = Dise_machine.Regfile
module W = Dise_workload

let t = QCheck_alcotest.to_alcotest

(* --- patterns --------------------------------------------------------- *)

let prop_of_opcode_matches =
  QCheck.Test.make ~name:"of_opcode matches its example" ~count:300
    (Gens.arbitrary_insn ~pc:0x100000) (fun i ->
      Pattern.matches (Pattern.of_opcode i) i)

let prop_class_pattern_matches =
  QCheck.Test.make ~name:"class pattern matches class members" ~count:300
    (Gens.arbitrary_insn ~pc:0x100000) (fun i ->
      Pattern.matches (Pattern.of_class (Insn.cls i)) i)

let prop_constraint_narrows =
  QCheck.Test.make ~name:"field constraint only narrows the match set"
    ~count:300
    (QCheck.pair (Gens.arbitrary_insn ~pc:0x100000)
       (QCheck.make (QCheck.Gen.int_bound 31)))
    (fun (i, rn) ->
      let r = Reg.r rn in
      let base = Pattern.of_class (Insn.cls i) in
      let narrowed = Pattern.with_rs r base in
      (* If the narrowed pattern matches, the base must too; and
         specificity strictly grows. *)
      (not (Pattern.matches narrowed i) || Pattern.matches base i)
      && Pattern.specificity narrowed > Pattern.specificity base)

let prop_dispatch_keys_sound =
  QCheck.Test.make ~name:"matching instructions are in dispatch_keys"
    ~count:300 (Gens.arbitrary_insn ~pc:0x100000) (fun i ->
      let patterns =
        [ Pattern.any; Pattern.of_class (Insn.cls i); Pattern.of_opcode i ]
      in
      List.for_all
        (fun p ->
          (not (Pattern.matches p i))
          || List.mem (Insn.key i) (Pattern.dispatch_keys p))
        patterns)

(* --- replacement instantiation ----------------------------------------- *)

let prop_literal_sequences_trigger_independent =
  QCheck.Test.make ~name:"literal sequences instantiate independently of trigger"
    ~count:200
    (QCheck.pair Gens.arbitrary_alu_program (Gens.arbitrary_insn ~pc:0x400))
    (fun (prog, trigger) ->
      let spec = Replacement.of_insns prog in
      match Insn.cls trigger with
      | Opcode.C_codeword -> QCheck.assume_fail ()
      | _ ->
        let out = Replacement.instantiate spec ~trigger ~pc:0x400 in
        Array.to_list out = prog)

let prop_field5_roundtrip =
  QCheck.Test.make ~name:"5-bit parameter field round-trip" ~count:200
    (QCheck.make (QCheck.Gen.int_range (-16) 15)) (fun v ->
      Replacement.signed5 (Replacement.to_field5 v) = v)

let prop_field10_roundtrip =
  QCheck.Test.make ~name:"10-bit parameter pair round-trip" ~count:200
    (QCheck.make (QCheck.Gen.int_range (-512) 511)) (fun v ->
      let hi, lo = Replacement.to_fields10 v in
      Replacement.signed10 hi lo = v
      && hi >= 0 && hi < 32 && lo >= 0 && lo < 32)

(* --- prodset ------------------------------------------------------------ *)

let prop_union_lookup_agrees =
  QCheck.Test.make ~name:"union lookup agrees with side lookups" ~count:200
    (Gens.arbitrary_insn ~pc:0x100000) (fun i ->
      let a =
        Prodset.add Prodset.empty
          (Production.make ~name:"a" Pattern.loads (Production.Direct 1))
          Replacement.identity
      in
      let b =
        Prodset.add Prodset.empty
          (Production.make ~name:"b" Pattern.stores (Production.Direct 2))
          Replacement.identity
      in
      let u = Prodset.union a b in
      match Prodset.lookup u i with
      | Some (_, 1) -> Prodset.lookup a i <> None
      | Some (_, 2) -> Prodset.lookup b i <> None
      | Some _ -> false
      | None -> Prodset.lookup a i = None && Prodset.lookup b i = None)

let prop_engine_agrees_with_prodset =
  QCheck.Test.make ~name:"engine dispatch agrees with reference lookup"
    ~count:300 (Gens.arbitrary_insn ~pc:0x100000) (fun i ->
      (* A set with overlapping patterns across priorities and
         specificities: the compiled dispatch table must agree with the
         simple list-scan lookup. *)
      let set =
        Prodset.empty
        |> (fun s ->
             Prodset.add s
               (Production.make ~name:"a" Pattern.loads (Production.Direct 1))
               Replacement.identity)
        |> (fun s ->
             Prodset.add s
               (Production.make ~name:"b"
                  (Pattern.with_rs Dise_isa.Reg.sp Pattern.loads)
                  (Production.Direct 2))
               Replacement.identity)
        |> (fun s ->
             Prodset.add s
               (Production.make ~name:"c" ~priority:1 Pattern.stores
                  (Production.Direct 3))
               Replacement.identity)
        |> fun s ->
        Prodset.add s
          (Production.make ~name:"d" (Pattern.of_class Opcode.C_branch)
             (Production.Direct 4))
          Replacement.identity
      in
      let engine = Engine.create set in
      let via_engine =
        match Engine.expand engine ~pc:0x100000 i with
        | Some e -> Some e.Dise_machine.Machine.rsid
        | None -> None
      in
      let via_lookup =
        match Prodset.lookup set i with
        | Some (_, rsid) -> Some rsid
        | None -> None
      in
      via_engine = via_lookup)

(* --- RT and caches -------------------------------------------------------- *)

let rt_trace_gen =
  QCheck.Gen.(list_size (int_range 1 300) (pair (int_bound 200) (int_range 1 8)))

let prop_rt_bounded_and_rehit =
  QCheck.Test.make ~name:"RT occupancy bounded; immediate re-access hits"
    ~count:100
    (QCheck.make rt_trace_gen)
    (fun trace ->
      let rt = Rt.create ~entries:64 ~assoc:2 () in
      List.for_all
        (fun (rsid, len) ->
          ignore (Rt.access rt ~rsid ~len);
          (* A sequence that fits entirely must hit right after its
             fill. *)
          (len > 64 || Rt.access rt ~rsid ~len = `Hit)
          && Rt.occupancy rt <= Rt.capacity_blocks rt)
        trace)

let prop_cache_rehit =
  QCheck.Test.make ~name:"cache immediate re-access hits" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 200) (int_bound 0xFFFFF)))
    (fun addrs ->
      let c = Dise_uarch.Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
      List.for_all
        (fun a ->
          ignore (Dise_uarch.Cache.access c a);
          Dise_uarch.Cache.access c a = `Hit)
        addrs)

(* --- machine vs. reference ALU semantics ----------------------------------- *)

(* A direct evaluator over an int array, the specification the machine
   must agree with on straight-line ALU code. *)
let eval_reference prog =
  let regs = Array.make 32 0 in
  let get r = match r with Reg.R 0 -> 0 | Reg.R n -> regs.(n) | _ -> 0 in
  let set r v =
    match r with Reg.R 0 -> () | Reg.R n -> regs.(n) <- Opcode.signed32 v | _ -> ()
  in
  List.iter
    (fun i ->
      match i with
      | Insn.Rop (op, a, b, c) -> set c (Opcode.eval_rop op (get a) (get b))
      | Insn.Ropi (op, a, v, c) -> set c (Opcode.eval_rop op (get a) v)
      | Insn.Lui (v, c) -> set c (v lsl 16)
      | _ -> assert false)
    prog;
  regs

let prop_machine_matches_reference =
  QCheck.Test.make ~name:"machine agrees with reference ALU evaluator"
    ~count:200 Gens.arbitrary_alu_program (fun prog ->
      let items =
        (Dise_isa.Program.Label "main"
         :: List.map (fun i -> Dise_isa.Program.Ins i) prog)
        @ [ Dise_isa.Program.Ins Insn.Halt ]
      in
      let img = Dise_isa.Program.layout items in
      let m = Machine.create img in
      ignore (Machine.run m);
      let expected = eval_reference prog in
      let ok = ref true in
      for n = 1 to 7 do
        if Regfile.get (Machine.regs m) (Reg.r n) <> expected.(n) then
          ok := false
      done;
      !ok)

let prop_machine_deterministic =
  QCheck.Test.make ~name:"machine runs are deterministic" ~count:20
    (QCheck.make (QCheck.Gen.int_bound 1000)) (fun seed ->
      let profile = { W.Profile.tiny with W.Profile.seed = 7000 + seed } in
      let gen = W.Codegen.generate ~dyn_target:5_000 profile in
      let img = W.Codegen.layout gen in
      let run () =
        let m = Machine.create img in
        ignore (Machine.run ~max_steps:1_000_000 m);
        (Machine.executed m, Regfile.checksum_arch (Machine.regs m))
      in
      run () = run ())

(* --- pipeline stats are jit-invariant --------------------------------------- *)

(* Store/load-checking productions (the paper's MFI shape): every
   memory access expands, so the superblock JIT has real work on any
   generated workload. *)
let mfi_like_set =
  Prodset.resolve_labels
    (fun _ -> Some 0x9000)
    (Lang.parse
       {|
       P1: T.OPCLASS == store -> R1
       P2: T.OPCLASS == load -> R1
       R1: srl T.RS, #26, $dr1
           xor $dr1, $dr1, $dr1
           bne $dr1, __error
           T.INSN
       |})

(* The JIT is a fetch-path optimization: with it on or off, the
   pipeline must see the identical event stream, so every simulated
   statistic — cycles, cache traffic, redirects, the whole CPI stack —
   must be bit-identical. Only the jit_* telemetry counters may
   differ, so they are masked before comparing. *)
let prop_pipeline_stats_jit_invariant =
  QCheck.Test.make ~name:"pipeline stats identical with jit on and off"
    ~count:10
    (QCheck.make (QCheck.Gen.int_bound 1000))
    (fun seed ->
      let profile = { W.Profile.tiny with W.Profile.seed = 9000 + seed } in
      let gen = W.Codegen.generate ~dyn_target:5_000 profile in
      let img = W.Codegen.layout gen in
      let stats ~jit =
        let eng = Engine.create ~image:img mfi_like_set in
        let m = Machine.create ~expander:(Engine.expander eng) img in
        if jit then Engine.attach_jit ~threshold:2 eng m;
        let s =
          Dise_uarch.Pipeline.run ~max_steps:1_000_000
            Dise_uarch.Config.default m
        in
        s.Dise_uarch.Stats.jit_compiles <- 0;
        s.Dise_uarch.Stats.jit_hits <- 0;
        s.Dise_uarch.Stats.jit_invalidations <- 0;
        Dise_uarch.Stats.to_json s
      in
      stats ~jit:false = stats ~jit:true)

(* --- compression losslessness over random programs -------------------------- *)

let data_digest m =
  Dise_machine.Memory.checksum_range (Machine.memory m) ~lo:0x04000000
    ~hi:0x07F00000

let prop_compression_lossless_random_seeds =
  QCheck.Test.make ~name:"compression lossless across generator seeds"
    ~count:6
    (QCheck.make (QCheck.Gen.int_bound 1000))
    (fun seed ->
      let profile = { W.Profile.tiny with W.Profile.seed = 8000 + seed } in
      let gen = W.Codegen.generate ~dyn_target:8_000 profile in
      let img = W.Codegen.layout gen in
      let m0 = Machine.create img in
      ignore (Machine.run ~max_steps:2_000_000 m0);
      List.for_all
        (fun scheme ->
          let r = Dise_acf.Compress.compress ~scheme gen.W.Codegen.program in
          let engine = Engine.create r.Dise_acf.Compress.prodset in
          let m =
            Machine.create ~expander:(Engine.expander engine)
              r.Dise_acf.Compress.image
          in
          ignore (Machine.run ~max_steps:2_000_000 m);
          Machine.exit_code m = Machine.exit_code m0
          && data_digest m = data_digest m0)
        [ Dise_acf.Compress.dedicated; Dise_acf.Compress.full_dise ])

(* --- composition --------------------------------------------------------- *)

let prop_merge_length =
  QCheck.Test.make ~name:"merged sequence length = |A| + |B| - 1" ~count:100
    (QCheck.pair Gens.arbitrary_alu_program Gens.arbitrary_alu_program)
    (fun (a, b) ->
      let mk prog = Array.append (Replacement.of_insns prog) [| Replacement.Trigger |] in
      let sa = mk a and sb = mk b in
      let merged = Compose.merge_sequences sa sb in
      Array.length merged = Array.length sa + Array.length sb - 1)

let prop_safety_accepts_literal_sequences =
  QCheck.Test.make ~name:"safety accepts literal store expansions" ~count:60
    Gens.arbitrary_alu_program (fun prog ->
      let seq =
        Array.append (Replacement.of_insns prog) [| Replacement.Trigger |]
      in
      let set =
        Prodset.add Prodset.empty
          (Production.make ~name:"p" Pattern.stores (Production.Direct 1))
          seq
      in
      Safety.errors (Safety.check set) = [])

let suite =
  [
    t prop_of_opcode_matches;
    t prop_class_pattern_matches;
    t prop_constraint_narrows;
    t prop_dispatch_keys_sound;
    t prop_literal_sequences_trigger_independent;
    t prop_field5_roundtrip;
    t prop_field10_roundtrip;
    t prop_union_lookup_agrees;
    t prop_engine_agrees_with_prodset;
    t prop_rt_bounded_and_rehit;
    t prop_cache_rehit;
    t prop_machine_matches_reference;
    t prop_machine_deterministic;
    t prop_pipeline_stats_jit_invariant;
    t prop_compression_lossless_random_seeds;
    t prop_merge_length;
    t prop_safety_accepts_literal_sequences;
  ]
