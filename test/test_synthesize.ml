(* Tests for profile-guided production synthesis: the seeded
   compression API, PT/RT capacity accounting, the fetch-histogram
   mining path, the Synth request variant (round-trip + distinct cache
   keys), the run journal, and end-to-end search determinism. *)

module Compress = Dise_acf.Compress
module Prodset = Dise_core.Prodset
module Controller = Dise_core.Controller
module Request = Dise_service.Request
module Stats = Dise_uarch.Stats
module Json = Dise_telemetry.Json
module TProfile = Dise_telemetry.Profile
module W = Dise_workload
module Sy = Dise_synthesize

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let tiny_entry = lazy (W.Suite.get ~dyn_target:4_000 W.Profile.tiny)

let tiny_corpus =
  lazy
    (let e = Lazy.force tiny_entry in
     Compress.corpus ~scheme:Compress.full_dise e.W.Suite.gen.W.Codegen.program)

(* --- seeded compression ------------------------------------------------ *)

let test_windows_cover_corpus () =
  let ws = Compress.windows (Lazy.force tiny_corpus) in
  check bool_ "has candidate windows" true (ws <> []);
  List.iter
    (fun (w : Compress.window) ->
      check bool_ "count matches sites" true
        (w.Compress.w_count = List.length w.Compress.w_sites);
      let b, s, _ = List.hd w.Compress.w_sites in
      check int_ "seed names the first site" w.Compress.w_seed.Compress.s_blk b;
      check int_ "seed start" w.Compress.w_seed.Compress.s_start s)
    ws

let test_seeded_matches_shape () =
  let c = Lazy.force tiny_corpus in
  let ws = Compress.windows c in
  let seed = (List.hd ws).Compress.w_seed in
  let r = Compress.compress_seeded c ~seeds:[ seed ] in
  check int_ "one dictionary entry" 1 (List.length r.Compress.entries);
  check bool_ "text shrank or held" true
    (r.Compress.text_bytes <= r.Compress.orig_text_bytes);
  check bool_ "codewords planted" true (r.Compress.codewords > 0)

let test_seeded_deterministic () =
  let c = Lazy.force tiny_corpus in
  let seeds =
    List.filteri (fun i _ -> i < 4) (Compress.windows c)
    |> List.map (fun w -> w.Compress.w_seed)
  in
  let a = Compress.compress_seeded c ~seeds in
  let b = Compress.compress_seeded c ~seeds in
  check int_ "text bytes" a.Compress.text_bytes b.Compress.text_bytes;
  check int_ "dict bytes" a.Compress.dict_bytes b.Compress.dict_bytes;
  check int_ "codewords" a.Compress.codewords b.Compress.codewords

let test_stale_seeds_skipped () =
  let c = Lazy.force tiny_corpus in
  let bogus =
    [
      { Compress.s_blk = 100_000; s_start = 0; s_len = 2 };
      { Compress.s_blk = 0; s_start = 500; s_len = 2 };
      { Compress.s_blk = 0; s_start = 0; s_len = 0 };
    ]
  in
  let r = Compress.compress_seeded c ~seeds:bogus in
  check int_ "no entries from bogus seeds" 0 (List.length r.Compress.entries);
  check int_ "text untouched" r.Compress.orig_text_bytes r.Compress.text_bytes

(* A seeded result must stay runnable: simulate it and compare
   app-level behaviour against the baseline instruction count. *)
let test_seeded_runnable () =
  let e = Lazy.force tiny_entry in
  let c = Lazy.force tiny_corpus in
  let seeds = [ (List.hd (Compress.windows c)).Compress.w_seed ] in
  let req =
    Request.v ~dyn_target:4_000 ~controller:Controller.default_config
      ~acf:(Request.Synth { scheme = Compress.full_dise; seeds })
      "tiny"
  in
  match Request.run_ext ~entry:e req with
  | Error d -> Alcotest.failf "synth run failed: %s" (Dise_isa.Diag.to_string d)
  | Ok (stats, _) ->
    let base =
      match Request.run_ext ~entry:e (Request.v ~dyn_target:4_000 "tiny") with
      | Ok (st, _) -> st
      | Error d -> Alcotest.failf "baseline: %s" (Dise_isa.Diag.to_string d)
    in
    (* Decompression preserves the application instruction stream
       (architectural equivalence is asserted inside the run); the
       fetch counter may differ by one at the final halt window. *)
    check bool_ "app instrs preserved" true
      (abs (base.Stats.app_instrs - stats.Stats.app_instrs) <= 1)

(* --- capacity accounting ----------------------------------------------- *)

let test_footprint_and_fits () =
  let c = Lazy.force tiny_corpus in
  let seeds =
    List.filteri (fun i _ -> i < 3) (Compress.windows c)
    |> List.map (fun w -> w.Compress.w_seed)
  in
  let r = Compress.compress_seeded c ~seeds in
  let set = r.Compress.prodset in
  let f = Prodset.footprint set in
  check int_ "one PT pattern per production" (Prodset.num_productions set)
    f.Prodset.pt_patterns;
  let total_rinsns =
    List.fold_left
      (fun acc (_, seq) -> acc + Array.length seq)
      0 (Prodset.sequences set)
  in
  check int_ "epb=1: one block per rinsn" total_rinsns f.Prodset.rt_blocks;
  check bool_ "fits the default geometry" true
    (Prodset.fits
       ~pt_entries:Controller.default_config.Controller.pt_entries
       ~rt_entries:Controller.default_config.Controller.rt_entries set);
  check bool_ "cannot fit a 1-entry RT" false
    (Prodset.fits ~pt_entries:32 ~rt_entries:1 set);
  (* Coalescing: blocks shrink, entries are blocks * epb. *)
  let f4 = Prodset.footprint ~entries_per_block:4 set in
  check bool_ "coalescing reduces blocks" true
    (f4.Prodset.rt_blocks <= f.Prodset.rt_blocks);
  check int_ "entries = blocks * epb" (f4.Prodset.rt_blocks * 4)
    f4.Prodset.rt_entries

(* --- fetch histogram + miner ------------------------------------------- *)

let test_miner_heat () =
  let e = Lazy.force tiny_entry in
  let prof = TProfile.create () in
  ignore (Request.run ~entry:e ~profile:prof (Request.v ~dyn_target:4_000 "tiny"));
  check bool_ "profile saw fetches" true (TProfile.total_fetches prof > 0);
  let c = Lazy.force tiny_corpus in
  let cands =
    Sy.Miner.mine ~scheme:Compress.full_dise ~corpus:c ~image:e.W.Suite.image
      ~profile:prof
  in
  check bool_ "mined candidates" true (Array.length cands > 0);
  Array.iter
    (fun (cand : Sy.Miner.candidate) ->
      check bool_ "positive static gain" true (cand.Sy.Miner.static_gain > 0))
    cands;
  let sorted = ref true in
  Array.iteri
    (fun i c ->
      if i > 0 && c.Sy.Miner.weight > cands.(i - 1).Sy.Miner.weight then
        sorted := false)
    cands;
  check bool_ "sorted by descending weight" true !sorted

(* --- Synth request variant --------------------------------------------- *)

let test_synth_json_roundtrip () =
  let seeds =
    [
      { Compress.s_blk = 3; s_start = 1; s_len = 4 };
      { Compress.s_blk = 0; s_start = 0; s_len = 2 };
    ]
  in
  let req =
    Request.v ~dyn_target:9_000
      ~acf:(Request.Synth { scheme = Compress.full_dise; seeds })
      "gzip"
  in
  (match Request.of_json (Request.to_json req) with
  | Ok req' ->
    check bool_ "round-trips" true (Request.canonical req = Request.canonical req')
  | Error d -> Alcotest.failf "decode failed: %s" (Dise_isa.Diag.to_string d));
  (* Distinct seed lists, distinct keys; and synth never collides with
     the greedy decompress request. *)
  let req2 =
    Request.v ~dyn_target:9_000
      ~acf:
        (Request.Synth { scheme = Compress.full_dise; seeds = List.tl seeds })
      "gzip"
  in
  let greedy =
    Request.v ~dyn_target:9_000
      ~acf:
        (Request.Decompress
           { scheme = Compress.full_dise; mfi = `None; rewritten = false })
      "gzip"
  in
  check bool_ "seed list is part of the key" false
    (Request.key req = Request.key req2);
  check bool_ "distinct from decompress" false
    (Request.key req = Request.key greedy)

let test_synth_json_malformed () =
  let bad =
    Json.Obj
      [
        ("bench", Json.String "gzip");
        ( "acf",
          Json.Obj
            [
              ("kind", Json.String "synth");
              ("scheme", Json.String "DISE");
              ("seeds", Json.List [ Json.List [ Json.Int 1; Json.Int 2 ] ]);
            ] );
      ]
  in
  match Request.of_json bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "2-int seed should be rejected"

(* --- journal ----------------------------------------------------------- *)

let test_journal_roundtrip () =
  let path = Filename.temp_file "synth-journal" ".jsonl" in
  let j = Sy.Journal.load ~path () in
  Sy.Journal.record j ~key:"[[1,2,3]]"
    { Sy.Journal.m_fits = true; m_ratio = 0.875; m_rel = 1.01 };
  Sy.Journal.record j ~key:"[[4,5,6]]"
    { Sy.Journal.m_fits = false; m_ratio = 0.5; m_rel = Float.nan };
  Sy.Journal.close j;
  (* A truncated crash tail must not poison the reload. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"seeds\":\"[[7";
  close_out oc;
  let j2 = Sy.Journal.load ~path () in
  check int_ "two entries survive" 2 (Sy.Journal.size j2);
  (match Sy.Journal.find j2 ~key:"[[1,2,3]]" with
  | Some m ->
    check bool_ "fits" true m.Sy.Journal.m_fits;
    check (Alcotest.float 1e-9) "ratio" 0.875 m.Sy.Journal.m_ratio;
    check (Alcotest.float 1e-9) "rel" 1.01 m.Sy.Journal.m_rel
  | None -> Alcotest.fail "entry lost");
  (match Sy.Journal.find j2 ~key:"[[4,5,6]]" with
  | Some m -> check bool_ "unfit persists" false m.Sy.Journal.m_fits
  | None -> Alcotest.fail "unfit entry lost");
  Sy.Journal.close j2;
  Sys.remove path

(* --- end-to-end search ------------------------------------------------- *)

let search_cfg ?journal () =
  Sy.Search.v ~dyn_target:4_000 ~rng_seed:7 ~budget:12 ~batch:4 ~patience:2
    ~backend:(Sy.Score.Local { jobs = 1 }) ?journal "tiny"

let test_search_deterministic () =
  let doc cfg = Json.to_string (Sy.Search.dictionary_json cfg (Sy.Search.run cfg)) in
  let a = doc (search_cfg ()) in
  let b = doc (search_cfg ()) in
  check bool_ "identical dictionaries" true (a = b);
  let j = Json.parse a in
  (match Json.member "fits" j with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "result must fit the PT/RT");
  match Json.member "footprint" j with
  | Some f -> (
    match (Json.member "pt_patterns" f, Json.member "rt_entries" f) with
    | Some (Json.Int pt), Some (Json.Int rt) ->
      check bool_ "within PT" true
        (pt <= Controller.default_config.Controller.pt_entries);
      check bool_ "within RT" true
        (rt <= Controller.default_config.Controller.rt_entries)
    | _ -> Alcotest.fail "footprint members missing")
  | None -> Alcotest.fail "footprint missing"

let test_search_resumes_via_journal () =
  let path = Filename.temp_file "synth-resume" ".jsonl" in
  Sys.remove path;
  let r1 = Sy.Search.run (search_cfg ~journal:path ()) in
  let inherited_first = r1.Sy.Search.inherited in
  let r2 = Sy.Search.run (search_cfg ~journal:path ()) in
  check int_ "fresh run inherits nothing" 0 inherited_first;
  check bool_ "rerun replays from the journal" true
    (r2.Sy.Search.inherited > 0);
  check bool_ "same dictionary either way" true
    (Sy.Score.seeds_key r1.Sy.Search.seeds
    = Sy.Score.seeds_key r2.Sy.Search.seeds);
  check int_ "same evaluation count" r1.Sy.Search.evaluations
    r2.Sy.Search.evaluations;
  Sys.remove path

let suite =
  [
    Alcotest.test_case "windows cover corpus" `Quick test_windows_cover_corpus;
    Alcotest.test_case "seeded compress shape" `Quick test_seeded_matches_shape;
    Alcotest.test_case "seeded deterministic" `Quick test_seeded_deterministic;
    Alcotest.test_case "stale seeds skipped" `Quick test_stale_seeds_skipped;
    Alcotest.test_case "seeded result runnable" `Quick test_seeded_runnable;
    Alcotest.test_case "footprint and fits" `Quick test_footprint_and_fits;
    Alcotest.test_case "miner heat" `Quick test_miner_heat;
    Alcotest.test_case "synth json round-trip" `Quick test_synth_json_roundtrip;
    Alcotest.test_case "synth json malformed" `Quick test_synth_json_malformed;
    Alcotest.test_case "journal round-trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "search deterministic" `Quick test_search_deterministic;
    Alcotest.test_case "search resumes via journal" `Quick
      test_search_resumes_via_journal;
  ]
