(* Tests for the timing model: cache behaviour, branch prediction, and
   directional sanity of the pipeline (more work or more misses must
   never make execution faster, wider machines must not be slower,
   etc.). *)

open Dise_isa
open Dise_uarch
module Machine = Dise_machine.Machine
module Controller = Dise_core.Controller
module Workload = Dise_workload

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* --- cache ---------------------------------------------------------- *)

let test_cache_basic () =
  let c = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  check bool_ "cold miss" true (Cache.access c 0x1000 = `Miss);
  check bool_ "same line hits" true (Cache.access c 0x1004 = `Hit);
  check bool_ "same line, different word hits" true
    (Cache.access c 0x103C = `Hit);
  check bool_ "next line misses" true (Cache.access c 0x1040 = `Miss);
  check int_ "misses" 2 (Cache.misses c)

let test_cache_capacity () =
  let c = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  (* Touch 3 lines mapping to the same set in a 2-way cache: thrash. *)
  let set_stride = 1024 / 2 in
  ignore (Cache.access c 0);
  ignore (Cache.access c set_stride);
  ignore (Cache.access c (2 * set_stride));
  check bool_ "first way evicted" true (Cache.access c 0 = `Miss)

let test_cache_lru () =
  let c = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  let set_stride = 1024 / 2 in
  ignore (Cache.access c 0);
  ignore (Cache.access c set_stride);
  ignore (Cache.access c 0);  (* refresh way 0 *)
  ignore (Cache.access c (2 * set_stride));  (* evicts set_stride *)
  check bool_ "LRU victim chosen" true (Cache.access c 0 = `Hit);
  check bool_ "evicted line misses" true (Cache.access c set_stride = `Miss)

let test_cache_probe () =
  let c = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  check bool_ "probe does not allocate" false (Cache.probe c 0x40);
  ignore (Cache.access c 0x40);
  check bool_ "probe sees line" true (Cache.probe c 0x40)

let test_cache_validation () =
  (match Cache.create ~size_bytes:100 ~assoc:2 ~line_bytes:64 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad geometry accepted");
  match Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:60 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-power-of-two line accepted"

(* --- branch predictor ------------------------------------------------ *)

let test_predictor_learns_bias () =
  let bp = Branch_pred.create () in
  let mis = ref 0 in
  for _ = 1 to 200 do
    match
      Branch_pred.on_branch bp ~pc:0x1000 ~kind:Branch_pred.Cond ~taken:true
        ~target:0x2000 ~fallthrough:0x1004
    with
    | `Mispredict -> incr mis
    | `Correct -> ()
  done;
  check bool_ "always-taken branch learned quickly" true (!mis < 10)

let test_predictor_alternating_with_history () =
  (* gshare should learn a strict alternation via global history. *)
  let bp = Branch_pred.create () in
  let mis = ref 0 in
  for i = 1 to 400 do
    match
      Branch_pred.on_branch bp ~pc:0x1000 ~kind:Branch_pred.Cond
        ~taken:(i land 1 = 0) ~target:0x2000 ~fallthrough:0x1004
    with
    | `Mispredict -> if i > 100 then incr mis
    | `Correct -> ()
  done;
  check bool_ "alternation learned" true (!mis < 30)

let test_predictor_ras () =
  let bp = Branch_pred.create () in
  (* call then matching return: predicted. *)
  ignore
    (Branch_pred.on_call bp ~pc:0x1000 ~target:0x4000 ~fallthrough:0x1004
       ~indirect:false);
  (match
     Branch_pred.on_branch bp ~pc:0x4050 ~kind:Branch_pred.Return ~taken:true
       ~target:0x1004 ~fallthrough:0x4054
   with
  | `Correct -> ()
  | `Mispredict -> Alcotest.fail "matched return should predict");
  (* return with empty RAS mispredicts *)
  match
    Branch_pred.on_branch bp ~pc:0x4050 ~kind:Branch_pred.Return ~taken:true
      ~target:0x1004 ~fallthrough:0x4054
  with
  | `Mispredict -> ()
  | `Correct -> Alcotest.fail "empty RAS should mispredict"

let test_predictor_btb () =
  let bp = Branch_pred.create () in
  (* first indirect jump to a target mispredicts, repeat predicts *)
  (match
     Branch_pred.on_branch bp ~pc:0x3000 ~kind:Branch_pred.Indirect ~taken:true
       ~target:0x7000 ~fallthrough:0x3004
   with
  | `Mispredict -> ()
  | `Correct -> Alcotest.fail "cold BTB should mispredict");
  match
    Branch_pred.on_branch bp ~pc:0x3000 ~kind:Branch_pred.Indirect ~taken:true
      ~target:0x7000 ~fallthrough:0x3004
  with
  | `Correct -> ()
  | `Mispredict -> Alcotest.fail "warm BTB should predict"

let test_predictor_perfect () =
  let bp = Branch_pred.perfect () in
  for i = 0 to 100 do
    match
      Branch_pred.on_branch bp ~pc:0x1000 ~kind:Branch_pred.Cond
        ~taken:(i land 3 = 0) ~target:0x2000 ~fallthrough:0x1004
    with
    | `Mispredict -> Alcotest.fail "perfect predictor mispredicted"
    | `Correct -> ()
  done

(* --- pipeline ------------------------------------------------------- *)

let run_with cfg src =
  let img = Program.layout (Asm.parse src) in
  let m = Machine.create img in
  Pipeline.run cfg m

let straightline n =
  let b = Buffer.create 256 in
  Buffer.add_string b "main:\n";
  for i = 1 to n do
    Buffer.add_string b (Printf.sprintf "  add r1, #%d, r2\n" (i land 7))
  done;
  Buffer.add_string b "  halt\n";
  Buffer.contents b

let test_pipeline_width_scales_independent_code () =
  (* Independent instructions: a 4-wide machine should approach 4 IPC
     and beat a 1-wide machine by ~4x. *)
  let src =
    let b = Buffer.create 256 in
    Buffer.add_string b "main:\n";
    for i = 1 to 400 do
      Buffer.add_string b
        (Printf.sprintf "  add zero, #%d, r%d\n" (i land 7) (1 + (i mod 8)))
    done;
    Buffer.add_string b "  halt\n";
    Buffer.contents b
  in
  (* Perfect I-cache: a 400-instruction program is dominated by cold
     I-cache misses otherwise, hiding the width effect. *)
  let cfg = Config.with_icache_kb None Config.default in
  let wide = run_with cfg src in
  let narrow = run_with (Config.with_width 1 cfg) src in
  check bool_ "wide is faster" true
    (wide.Stats.cycles * 3 < narrow.Stats.cycles);
  check bool_ "wide IPC over 2" true (Stats.ipc wide > 2.0)

let test_pipeline_dependence_serializes () =
  (* A dependent chain cannot exceed 1 IPC regardless of width. *)
  let stats = run_with Config.default (straightline 400) in
  check bool_ "chained IPC at most ~1" true (Stats.ipc stats <= 1.1)

let test_pipeline_icache_miss_costs () =
  (* The same program with a perfect I-cache must not be slower. *)
  let src = straightline 4000 in
  let real = run_with Config.default src in
  let perfect = run_with (Config.with_icache_kb None Config.default) src in
  check bool_ "perfect icache at least as fast" true
    (perfect.Stats.cycles <= real.Stats.cycles);
  check bool_ "icache misses counted" true (real.Stats.icache_misses > 0)

let test_pipeline_mispredict_penalty () =
  (* A data-dependent 50/50 branch pattern must run slower than a
     heavily biased one of identical instruction count. We emulate
     data dependence with an LCG in registers. *)
  let body bias =
    Printf.sprintf
      {|
      main:
        lui #16838, r10
        add r10, #20077, r10
        add zero, #4000, r4
        add zero, #12345, r5
      loop:
        mul r5, r10, r5
        add r5, #12345, r5
        srl r5, #13, r6
        and r6, #%d, r6
        beq r6, skip
        add r7, #1, r7
      skip:
        add r4, #-1, r4
        bgt r4, loop
        halt
      |}
      bias
  in
  let unpredictable = run_with Config.default (body 1) in
  let predictable = run_with Config.default (body 0) in
  (* bias=0: r6 always 0, branch always taken -> learned. *)
  check bool_ "unpredictable has more mispredicts" true
    (unpredictable.Stats.mispredicts > predictable.Stats.mispredicts + 500);
  check bool_ "mispredicts cost cycles" true
    (unpredictable.Stats.cycles > predictable.Stats.cycles)

let test_pipeline_dcache_miss_costs () =
  (* Loads striding far apart miss; loads at one address hit. *)
  let body stride =
    Printf.sprintf
      {|
      main:
        lui #1024, r1
        add zero, #2000, r4
      loop:
        ldq r3, 0(r1)
        add r3, r3, r3
        lda r1, %d(r1)
        add r4, #-1, r4
        bgt r4, loop
        halt
      |}
      stride
  in
  let misses = run_with Config.default (body 4096) in
  let hits = run_with Config.default (body 0) in
  check bool_ "striding misses more" true
    (misses.Stats.dcache_misses > hits.Stats.dcache_misses + 1000);
  check bool_ "misses cost cycles" true
    (misses.Stats.cycles > hits.Stats.cycles * 2)

let test_pipeline_dise_stall_mode () =
  (* With an expanding production set, stall mode must cost cycles over
     free mode, and extra-stage must cost only on mispredicts. *)
  let entry = Workload.Suite.get ~dyn_target:30_000 Workload.Profile.tiny in
  let set =
    Dise_core.Prodset.resolve_labels
      (Program.Image.symbol entry.Workload.Suite.image)
      (Dise_core.Lang.parse
         {|
         P1: T.OPCLASS == store -> R1
         P2: T.OPCLASS == load -> R1
         R1: srl T.RS, #26, $dr1
             xor $dr1, $dr2, $dr1
             bne $dr1, __error
             T.INSN
         |})
  in
  let run mode =
    let engine = Dise_core.Engine.create set in
    let m =
      Machine.create ~expander:(Dise_core.Engine.expander engine)
        entry.Workload.Suite.image
    in
    Machine.set_dise_reg m 2 1;
    Pipeline.run (Config.with_dise_decode mode Config.default) m
  in
  let free = run Config.Free in
  let stall = run Config.Stall_per_expansion in
  let pipe = run Config.Extra_stage in
  check bool_ "expansions happened" true (free.Stats.expansions > 1000);
  (* The one-cycle bubble per expansion is partially absorbed when the
     backend is the bottleneck, so require a clear but modest gap. *)
  check bool_ "stall mode slower than free" true
    (stall.Stats.cycles > free.Stats.cycles + (free.Stats.expansions / 10));
  check bool_ "extra stage slower than free" true
    (pipe.Stats.cycles >= free.Stats.cycles);
  check bool_ "extra stage cheaper than stall here" true
    (pipe.Stats.cycles < stall.Stats.cycles)

let test_pipeline_stall_proportional () =
  (* The decode-stall option serializes: its cost is exactly one cycle
     per expansion, the paper's "proportional to the total number of
     expansions". *)
  let entry = Workload.Suite.get ~dyn_target:30_000 Workload.Profile.tiny in
  let set =
    Dise_core.Prodset.resolve_labels
      (Program.Image.symbol entry.Workload.Suite.image)
      (Dise_core.Lang.parse
         "P1: T.OPCLASS == store -> R1\nR1: lda $dr1, 0(T.RS)\n    T.INSN\n")
  in
  let run mode =
    let engine = Dise_core.Engine.create set in
    let m =
      Machine.create ~expander:(Dise_core.Engine.expander engine)
        entry.Workload.Suite.image
    in
    Pipeline.run (Config.with_dise_decode mode Config.default) m
  in
  let free = run Config.Free in
  let stall = run Config.Stall_per_expansion in
  check int_ "stall = free + expansions"
    (free.Stats.cycles + free.Stats.expansions)
    stall.Stats.cycles

let test_pipeline_controller_rt_misses_cost () =
  (* A tiny RT forces misses; execution must be slower than with a
     perfect RT. *)
  let entry = Workload.Suite.get ~dyn_target:30_000 Workload.Profile.tiny in
  let set =
    Dise_core.Prodset.resolve_labels
      (Program.Image.symbol entry.Workload.Suite.image)
      (Dise_core.Lang.parse
         {|
         P1: T.OPCLASS == store -> R1
         P2: T.OPCLASS == load -> R2
         R1: srl T.RS, #26, $dr1
             T.INSN
         R2: srl T.RS, #25, $dr1
             T.INSN
         |})
  in
  let run rt_perfect =
    let engine = Dise_core.Engine.create set in
    let m =
      Machine.create ~expander:(Dise_core.Engine.expander engine)
        entry.Workload.Suite.image
    in
    let controller =
      Controller.create
        (if rt_perfect then Controller.perfect_config
         else { Controller.default_config with rt_entries = 2; rt_assoc = 1 })
        set
    in
    Pipeline.run ~controller Config.default m
  in
  let perfect = run true in
  let tiny_rt = run false in
  check int_ "perfect RT never stalls" 0 perfect.Stats.rt_misses;
  check bool_ "tiny RT misses" true (tiny_rt.Stats.rt_misses > 0);
  check bool_ "RT misses cost cycles" true
    (tiny_rt.Stats.cycles > perfect.Stats.cycles)

let test_pipeline_workload_end_to_end () =
  let entry = Workload.Suite.get ~dyn_target:50_000 Workload.Profile.tiny in
  let m = Machine.create entry.Workload.Suite.image in
  let stats = Pipeline.run Config.default m in
  check bool_ "cycles positive" true (stats.Stats.cycles > 0);
  check bool_ "ipc sane" true (Stats.ipc stats > 0.2 && Stats.ipc stats < 4.0);
  check int_ "retired everything" stats.Stats.retired stats.Stats.app_instrs

let suite =
  [
    ("cache basic", `Quick, test_cache_basic);
    ("cache capacity", `Quick, test_cache_capacity);
    ("cache lru", `Quick, test_cache_lru);
    ("cache probe", `Quick, test_cache_probe);
    ("cache validation", `Quick, test_cache_validation);
    ("predictor learns bias", `Quick, test_predictor_learns_bias);
    ("predictor alternation", `Quick, test_predictor_alternating_with_history);
    ("predictor RAS", `Quick, test_predictor_ras);
    ("predictor BTB", `Quick, test_predictor_btb);
    ("predictor perfect", `Quick, test_predictor_perfect);
    ("pipeline width scaling", `Quick, test_pipeline_width_scales_independent_code);
    ("pipeline dependence", `Quick, test_pipeline_dependence_serializes);
    ("pipeline icache cost", `Quick, test_pipeline_icache_miss_costs);
    ("pipeline mispredict cost", `Quick, test_pipeline_mispredict_penalty);
    ("pipeline dcache cost", `Quick, test_pipeline_dcache_miss_costs);
    ("pipeline dise stall modes", `Quick, test_pipeline_dise_stall_mode);
    ("pipeline stall proportional", `Quick, test_pipeline_stall_proportional);
    ("pipeline RT miss cost", `Quick, test_pipeline_controller_rt_misses_cost);
    ("pipeline workload end-to-end", `Quick, test_pipeline_workload_end_to_end);
  ]
