(* Tests for the telemetry layer: JSON round-trips, the schema
   validator, CPI-stack attribution invariants, per-production
   profiles, and the trace/manifest sinks. *)

open Dise_telemetry
module I = Dise_isa.Insn
module Program = Dise_isa.Program
module Machine = Dise_machine.Machine
module Config = Dise_uarch.Config
module Pipeline = Dise_uarch.Pipeline
module Stats = Dise_uarch.Stats
module Controller = Dise_core.Controller
module W = Dise_workload
module A = Dise_acf
module H = Dise_harness

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* --- Json --------------------------------------------------------------- *)

let test_json_parse () =
  check bool_ "null" true (Json.parse "null" = Json.Null);
  check bool_ "bools" true
    (Json.parse " true " = Json.Bool true && Json.parse "false" = Json.Bool false);
  check bool_ "int" true (Json.parse "-42" = Json.Int (-42));
  check bool_ "float" true (Json.parse "2.5" = Json.Float 2.5);
  check bool_ "exponent is float" true (Json.parse "1e3" = Json.Float 1000.);
  check bool_ "string escapes" true
    (Json.parse {|"a\"b\\c\ndA"|} = Json.String "a\"b\\c\ndA");
  check bool_ "array" true
    (Json.parse "[1, 2, 3]" = Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
  check bool_ "object" true
    (Json.parse {|{"a": 1, "b": [true]}|}
     = Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true ]) ]);
  check bool_ "nested" true
    (Json.member "b" (Json.parse {|{"a": 1, "b": {"c": null}}|})
     = Some (Json.Obj [ ("c", Json.Null) ]))

let expect_parse_error s =
  match Json.parse s with
  | exception Json.Parse_error _ -> ()
  | v ->
    Alcotest.failf "expected parse error for %S, got %s" s (Json.to_string v)

let test_json_parse_errors () =
  List.iter expect_parse_error
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "[1] x";
      "{\"a\" 1}"; "nan" ]

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "quote \" backslash \\ newline \n tab \t \x01");
        ("i", Json.Int (-12345));
        ("f", Json.Float 0.125);
        ("big", Json.Float 1.23456789e300);
        ("l", Json.List [ Json.Null; Json.Bool false; Json.Obj [] ]);
        ("o", Json.Obj [ ("nested", Json.List [ Json.Int 0 ]) ]);
      ]
  in
  check bool_ "compact round-trip" true (Json.parse (Json.to_string doc) = doc);
  check bool_ "indented round-trip" true
    (Json.parse (Json.to_string ~indent:true doc) = doc);
  (* Non-finite floats degrade to null rather than emitting invalid JSON. *)
  check bool_ "nan prints as null" true
    (Json.parse (Json.to_string (Json.Float nan)) = Json.Null)

(* --- Json_schema -------------------------------------------------------- *)

let schema =
  Json.parse
    {|{
      "type": "object",
      "required": ["cycles", "name"],
      "additionalProperties": false,
      "properties": {
        "cycles": { "type": "integer", "minimum": 0 },
        "name": { "type": "string" },
        "kind": { "enum": ["a", "b"] },
        "values": { "type": "array", "items": { "type": "number" } }
      }
    }|}

let errors doc = Json_schema.validate ~schema (Json.parse doc)

let test_schema_accepts () =
  check int_ "conforming doc" 0
    (List.length
       (errors {|{"cycles": 3, "name": "x", "kind": "a", "values": [1, 2.5]}|}));
  check int_ "optional fields absent" 0
    (List.length (errors {|{"cycles": 0, "name": ""}|}))

let test_schema_rejects () =
  let expect_bad doc =
    if errors doc = [] then Alcotest.failf "expected rejection of %s" doc
  in
  expect_bad {|{"name": "x"}|};                       (* missing required *)
  expect_bad {|{"cycles": "3", "name": "x"}|};        (* wrong type *)
  expect_bad {|{"cycles": -1, "name": "x"}|};         (* minimum *)
  expect_bad {|{"cycles": 1, "name": "x", "kind": "c"}|};   (* enum *)
  expect_bad {|{"cycles": 1, "name": "x", "zzz": 0}|};      (* extra key *)
  expect_bad {|{"cycles": 1, "name": "x", "values": ["s"]}|} (* item type *)

(* --- CPI-stack attribution ---------------------------------------------- *)

let image_of_insns prog =
  Program.layout
    ((Program.Label "main" :: List.map (fun i -> Program.Ins i) prog)
    @ [ Program.Ins I.Halt ])

(* The structural invariant: every cycle of every run lands in exactly
   one bucket. [Pipeline.finish] itself raises on violation; the
   explicit re-check keeps the property visible in the test output. *)
let prop_cpi_sums_to_cycles =
  QCheck.Test.make ~name:"CPI buckets sum to cycles (random ALU programs)"
    ~count:300 Gens.arbitrary_alu_program (fun prog ->
      let m = Machine.create (image_of_insns prog) in
      let stats = Pipeline.run Config.default m in
      stats.Stats.cycles > 0
      && Cpi_stack.total stats.Stats.cpi = stats.Stats.cycles)

let prop_cpi_sums_narrow_machine =
  QCheck.Test.make
    ~name:"CPI buckets sum to cycles (1-wide, tiny ROB)" ~count:150
    Gens.arbitrary_alu_program (fun prog ->
      let cfg = { (Config.with_width 1 Config.default) with Config.rob_size = 4 } in
      let m = Machine.create (image_of_insns prog) in
      let stats = Pipeline.run cfg m in
      Cpi_stack.total stats.Stats.cpi = stats.Stats.cycles)

let tiny_spec =
  { H.Experiment.default_spec with H.Experiment.dyn_target = 25_000 }

let tiny_entry () = W.Suite.get ~dyn_target:25_000 W.Profile.tiny

(* Cells of the kind the quick suite runs: every driver must uphold the
   invariant, and the DISE-specific buckets must land where expected. *)
let test_cpi_cells () =
  let e = tiny_entry () in
  let total_ok name (stats : Stats.t) =
    check int_ (name ^ ": buckets sum to cycles") stats.Stats.cycles
      (Cpi_stack.total stats.Stats.cpi);
    stats
  in
  let base = total_ok "baseline" (H.Experiment.baseline tiny_spec e) in
  check bool_ "baseline spends cycles in base" true
    (base.Stats.cpi.Cpi_stack.base > 0);
  check int_ "baseline has no DISE decode cycles" 0
    base.Stats.cpi.Cpi_stack.dise_decode;
  ignore
    (total_ok "mfi_dise"
       (H.Experiment.mfi_dise ~variant:A.Mfi.Dise3 tiny_spec e));
  ignore (total_ok "mfi_rewrite" (H.Experiment.mfi_rewrite tiny_spec e));
  let stall_spec =
    { tiny_spec with
      H.Experiment.machine =
        Config.with_dise_decode Config.Stall_per_expansion Config.default }
  in
  let stalled =
    total_ok "decode-stall"
      (H.Experiment.mfi_dise ~variant:A.Mfi.Dise3 stall_spec e)
  in
  check bool_ "decode stalls attributed" true
    (stalled.Stats.cpi.Cpi_stack.dise_decode > 0);
  check int_ "decode bucket equals one cycle per expansion"
    stalled.Stats.expansions stalled.Stats.cpi.Cpi_stack.dise_decode;
  let rt_spec =
    { tiny_spec with
      H.Experiment.controller =
        Some { Controller.default_config with rt_entries = 4; rt_assoc = 1 } }
  in
  let missy =
    total_ok "tiny-RT decompress"
      (H.Experiment.decompress_run ~scheme:A.Compress.full_dise rt_spec e)
  in
  check bool_ "PT/RT miss cycles attributed" true
    (missy.Stats.cpi.Cpi_stack.ptrt_miss > 0);
  check int_ "PT/RT bucket equals controller stalls"
    missy.Stats.dise_stall_cycles missy.Stats.cpi.Cpi_stack.ptrt_miss

(* --- per-production profiles -------------------------------------------- *)

let test_profile_matches_stats () =
  let e = tiny_entry () in
  let profile = Profile.create () in
  let spec =
    { tiny_spec with
      H.Experiment.controller = Some Controller.default_config }
  in
  let stats = H.Experiment.mfi_dise ~variant:A.Mfi.Dise3 ~profile spec e in
  let prods = Profile.productions profile in
  check bool_ "some production profiled" true (prods <> []);
  let sum f = List.fold_left (fun acc (_, en) -> acc + f en) 0 prods in
  check int_ "per-production expansions sum to Stats.expansions"
    stats.Stats.expansions
    (sum (fun en -> en.Profile.expansions));
  check int_ "total_expansions agrees" stats.Stats.expansions
    (Profile.total_expansions profile);
  (* Every replacement event (trigger slot included) is an injected
     instruction: stats counts the trigger slot as an app fetch. *)
  check int_ "per-production rep instrs sum"
    (stats.Stats.rep_instrs + stats.Stats.expansions)
    (sum (fun en -> en.Profile.rep_instrs));
  check int_ "RT outcomes sum to RT accesses" stats.Stats.rt_accesses
    (sum (fun en -> en.Profile.rt_hits + en.Profile.rt_misses));
  check int_ "RT misses agree" stats.Stats.rt_misses
    (sum (fun en -> en.Profile.rt_misses));
  check bool_ "hot PCs recorded" true (Profile.top_pcs ~n:5 profile <> []);
  check bool_ "descending order" true
    (let counts = List.map snd (Profile.top_pcs ~n:5 profile) in
     List.sort (fun a b -> compare b a) counts = counts);
  (* The JSON form must parse back. *)
  let doc = Json.parse (Json.to_string (Profile.to_json profile)) in
  check bool_ "profile json has productions" true
    (match Json.member "productions" doc with
    | Some (Json.List (_ :: _)) -> true
    | _ -> false)

(* --- trace sink ---------------------------------------------------------- *)

let test_trace_parses () =
  let e = tiny_entry () in
  let buf = Buffer.create 4096 in
  let trace = Trace.to_buffer buf in
  let stats = H.Experiment.mfi_dise ~variant:A.Mfi.Dise3 ~trace tiny_spec e in
  (* Pipeline.finish closed the sink. *)
  match Json.parse (Buffer.contents buf) with
  | Json.List events ->
    check bool_ "many events" true (List.length events > 1000);
    check bool_ "all events are objects with ph" true
      (List.for_all
         (fun ev ->
           match Json.member "ph" ev with
           | Some (Json.String ("X" | "i" | "M")) -> true
           | _ -> false)
         events);
    let spans =
      List.filter
        (fun ev -> Json.member "ph" ev = Some (Json.String "X"))
        events
    in
    check bool_ "one span per retired instruction" true
      (List.length spans = stats.Stats.retired);
    check bool_ "spans carry ts/dur" true
      (List.for_all
         (fun ev ->
           match Json.member "ts" ev, Json.member "dur" ev with
           | Some (Json.Int ts), Some (Json.Int dur) -> ts >= 0 && dur >= 1
           | _ -> false)
         spans)
  | _ -> Alcotest.fail "trace is not a JSON array"

let test_trace_truncation () =
  let e = tiny_entry () in
  let buf = Buffer.create 4096 in
  let trace = Trace.to_buffer ~max_events:100 buf in
  ignore (H.Experiment.baseline ~trace tiny_spec e);
  check bool_ "cap hit" true (Trace.truncated trace);
  check int_ "emitted capped" 100 (Trace.emitted trace);
  match Json.parse (Buffer.contents buf) with
  | Json.List events ->
    check bool_ "truncation marker present" true
      (List.exists
         (fun ev ->
           match Json.member "name" ev with
           | Some (Json.String n) ->
             String.length n >= 15 && String.sub n 0 15 = "trace truncated"
             && Json.member "args" ev
                = Some
                    (Json.Obj [ ("dropped", Json.Int (Trace.dropped trace)) ])
           | _ -> false)
         events)
  | _ -> Alcotest.fail "truncated trace is not a JSON array"

(* --- manifest sink -------------------------------------------------------- *)

let test_manifest_jsonl () =
  let buf = Buffer.create 4096 in
  let manifest = Manifest.to_buffer buf in
  let opts =
    {
      H.Figures.dyn_target = 25_000;
      benchmarks = [ "bzip2"; "mcf" ];
      progress = ignore;
      jobs = 2;
      manifest = Some manifest;
    }
  in
  H.Experiment.clear_cache ();
  let fig = H.Figures.fig6_top opts in
  Manifest.close manifest;
  let cells = List.length fig.H.Figures.series * 2 in
  check int_ "one line per cell plus figure summary" (cells + 1)
    (Manifest.lines manifest);
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check int_ "line count matches" (Manifest.lines manifest)
    (List.length lines);
  let parsed = List.map Json.parse lines in
  let kind doc = Json.member "kind" doc in
  check int_ "cell records" cells
    (List.length
       (List.filter (fun d -> kind d = Some (Json.String "cell")) parsed));
  let summaries =
    List.filter (fun d -> kind d = Some (Json.String "figure")) parsed
  in
  check int_ "one figure summary" 1 (List.length summaries);
  let s = List.hd summaries in
  check bool_ "summary counts cells" true
    (Json.member "cells" s = Some (Json.Int cells));
  check bool_ "utilization in (0, 1]" true
    (match Json.member "utilization" s with
    | Some (Json.Float u) -> u > 0. && u <= 1.000001
    | _ -> false)

(* --- Stats.to_json against the checked-in schema -------------------------- *)

let stats_schema_src = {|{
  "type": "object",
  "required": ["cycles", "retired", "ipc", "cpi_stack"],
  "properties": {
    "cycles": { "type": "integer", "minimum": 0 },
    "retired": { "type": "integer", "minimum": 0 },
    "ipc": { "type": "number", "minimum": 0 },
    "cpi_stack": {
      "type": "object",
      "additionalProperties": false,
      "required": ["base", "icache", "dcache", "branch", "rob",
                   "dise_decode", "ptrt_miss", "rep_redirect"],
      "properties": {
        "base": { "type": "integer", "minimum": 0 },
        "icache": { "type": "integer", "minimum": 0 },
        "dcache": { "type": "integer", "minimum": 0 },
        "branch": { "type": "integer", "minimum": 0 },
        "rob": { "type": "integer", "minimum": 0 },
        "dise_decode": { "type": "integer", "minimum": 0 },
        "ptrt_miss": { "type": "integer", "minimum": 0 },
        "rep_redirect": { "type": "integer", "minimum": 0 }
      }
    }
  }
}|}

let test_stats_json_schema () =
  let e = tiny_entry () in
  let stats = H.Experiment.baseline tiny_spec e in
  let doc = Json.parse (Json.to_string ~indent:true (Stats.to_json stats)) in
  let schema = Json.parse stats_schema_src in
  match Json_schema.validate ~schema doc with
  | [] -> ()
  | errs ->
    Alcotest.failf "stats json does not conform: %s"
      (String.concat "; "
         (List.map (Format.asprintf "%a" Json_schema.pp_error) errs))

let suite =
  [
    ("json: parse", `Quick, test_json_parse);
    ("json: parse errors", `Quick, test_json_parse_errors);
    ("json: round-trip", `Quick, test_json_roundtrip);
    ("schema: accepts", `Quick, test_schema_accepts);
    ("schema: rejects", `Quick, test_schema_rejects);
    ("cpi: cells uphold invariant", `Quick, test_cpi_cells);
    ("profile: matches stats", `Quick, test_profile_matches_stats);
    ("trace: valid chrome json", `Quick, test_trace_parses);
    ("trace: truncation visible", `Quick, test_trace_truncation);
    ("manifest: valid jsonl", `Quick, test_manifest_jsonl);
    ("stats json: schema-valid", `Quick, test_stats_json_schema);
    QCheck_alcotest.to_alcotest prop_cpi_sums_to_cycles;
    QCheck_alcotest.to_alcotest prop_cpi_sums_narrow_machine;
  ]
