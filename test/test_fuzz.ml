(* Tests for the differential fuzzing + fault-injection subsystem, and
   regression tests for the latent bugs it was built to catch: branch
   and codeword encoding at the 16-bit boundaries, dense-memo
   staleness across re-laid-out images, cache corrupt-entry recovery
   under contention, and serve-stream resilience to bad lines. *)

open Dise_isa
module Engine = Dise_core.Engine
module Prodset = Dise_core.Prodset
module Production = Dise_core.Production
module Pattern = Dise_core.Pattern
module Replacement = Dise_core.Replacement
module Machine = Dise_machine.Machine
module Rng = Dise_workload.Rng
module F = Dise_fuzz

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* --- encode boundaries ----------------------------------------------- *)

let beq target = Insn.Br (Opcode.Beq, Reg.r 1, Insn.Abs target)

let test_branch_boundary_roundtrip () =
  let pc = 0x100000 in
  let round target =
    let i = beq target in
    check bool_
      (Printf.sprintf "branch to 0x%x round-trips" target)
      true
      (Insn.equal i (Encode.decode ~pc (Encode.encode ~pc i)))
  in
  round (pc + 4 + (2 * 32767));  (* offset +32767: last reachable forward *)
  round (pc + 4 - 65536);        (* offset -32768: the 0x8000 sign boundary *)
  round (pc + 4);                (* offset 0: branch to fall-through *)
  round (pc + 4 + 2)             (* halfword-aligned, not word-aligned *)

let expect_parse_error name result =
  match result with
  | Error d -> check int_ (name ^ " is exit-class parse") 2 (Diag.exit_code d)
  | Ok w -> Alcotest.failf "%s: silently encoded as 0x%x" name w

let test_branch_out_of_range () =
  let pc = 0x100000 in
  let enc target = Encode.encode_result ~pc (beq target) in
  expect_parse_error "one past forward reach" (enc (pc + 4 + 65536));
  expect_parse_error "one past backward reach" (enc (pc + 4 - 65538));
  expect_parse_error "odd target" (enc (pc + 7));
  match Encode.encode ~pc (beq (pc + 4 + 65536)) with
  | exception Encode.Error _ -> ()
  | w -> Alcotest.failf "expected Encode.Error, got 0x%x" w

let test_codeword_field_validation () =
  let cw ?(op = 0) ?(p1 = 0) ?(p2 = 0) ?(p3 = 0) ?(tag = 0) () =
    Insn.Codeword { op; p1; p2; p3; tag }
  in
  let enc i = Encode.encode_result ~pc:0 i in
  expect_parse_error "cw_op overflow" (enc (cw ~op:4 ()));
  expect_parse_error "p1 overflow" (enc (cw ~p1:32 ()));
  expect_parse_error "p2 overflow" (enc (cw ~p2:32 ()));
  expect_parse_error "p3 negative" (enc (cw ~p3:(-1) ()));
  expect_parse_error "tag overflow" (enc (cw ~tag:0x800 ()));
  let max = cw ~op:3 ~p1:31 ~p2:31 ~p3:31 ~tag:0x7FF () in
  check bool_ "max-field codeword round-trips" true
    (Insn.equal max (Encode.decode ~pc:0 (Encode.encode ~pc:0 max)))

(* --- dense-memo staleness over re-laid-out codeword images ------------ *)

(* One From_tag production over codewords, with a distinct sequence per
   tag: a dense memo that keys on pc alone (the fixed staleness bug)
   would serve tag 1's sequence when a re-laid-out image puts tag 2 at
   the same address. *)
let tagged_prodset tags =
  let dr0 = Replacement.Rlit (Reg.d 0) in
  let seq t = [| Replacement.Ropi (Opcode.Add, dr0, Replacement.Ilit t, dr0) |] in
  let ps =
    Prodset.add_production Prodset.empty
      (Production.make ~name:"cw" (Pattern.codewords 0) Production.From_tag)
  in
  List.fold_left (fun ps t -> Prodset.define_sequence ps t (seq t)) ps tags

let exp_eq a b =
  match (a, b) with
  | None, None -> true
  | Some (x : Machine.expansion), Some (y : Machine.expansion) ->
    x.Machine.rsid = y.Machine.rsid
    && Array.length x.Machine.seq = Array.length y.Machine.seq
    && Array.for_all2 Insn.equal x.Machine.seq y.Machine.seq
  | _ -> false

let test_dense_memo_relayout () =
  let tags = [ 1; 2; 3 ] in
  let ps = tagged_prodset tags in
  let slots = 8 in
  let image_of tag =
    Program.layout ~base:0x100000
      (List.init slots (fun _ ->
           Program.Ins (Insn.codeword ~op:0 ~p1:0 ~p2:0 ~p3:0 ~tag)))
  in
  let dense = Engine.expander (Engine.create ~image:(image_of 1) ps) in
  let hash = Engine.expander (Engine.create ps) in
  let naive = F.Naive.expander ps in
  let rng = Rng.create 77 in
  (* prime the dense memo on tag 1, then "re-lay-out": present other
     tags (and re-present tag 1) at the same addresses, in random
     order, and demand agreement with the unmemoized sides *)
  for round = 0 to 40 do
    let tag = if round = 0 then 1 else Rng.pick rng [| 1; 2; 3 |] in
    let ix = Rng.int rng slots in
    let pc = 0x100000 + (4 * ix) in
    let insn = Insn.codeword ~op:0 ~p1:0 ~p2:0 ~p3:0 ~tag in
    let d = dense ~pc insn and h = hash ~pc insn and n = naive ~pc insn in
    if not (exp_eq d n) then
      Alcotest.failf "round %d: dense memo stale for tag %d at 0x%x" round tag
        pc;
    if not (exp_eq h n) then
      Alcotest.failf "round %d: hashtable memo wrong for tag %d at 0x%x" round
        tag pc;
    (match n with
    | Some e -> check int_ "rsid is the tag" tag e.Machine.rsid
    | None -> Alcotest.fail "codeword production did not match")
  done

(* The sparse twin of the test above, aimed at the hashtable memo on
   its own (no image, so every probe takes the fallback path): it is
   keyed by bare PC with the trigger stored alongside, and a hit must
   notice a changed trigger — the same staleness discipline as the
   dense memo — while still sharing the memoized expansion on a true
   re-hit. *)
let test_sparse_memo_relayout () =
  let tags = [ 1; 2; 3 ] in
  let ps = tagged_prodset tags in
  let sparse = Engine.expander (Engine.create ps) in
  let naive = F.Naive.expander ps in
  let rng = Rng.create 99 in
  for round = 0 to 60 do
    let tag = if round = 0 then 1 else Rng.pick rng [| 1; 2; 3 |] in
    let pc = 0x100000 + (4 * Rng.int rng 8) in
    let insn = Insn.codeword ~op:0 ~p1:0 ~p2:0 ~p3:0 ~tag in
    let s = sparse ~pc insn and n = naive ~pc insn in
    if not (exp_eq s n) then
      Alcotest.failf "round %d: sparse memo stale for tag %d at 0x%x" round
        tag pc
  done;
  let insn = Insn.codeword ~op:0 ~p1:0 ~p2:0 ~p3:0 ~tag:2 in
  let a = sparse ~pc:0x100000 insn in
  let b = sparse ~pc:0x100000 insn in
  check bool_ "re-hit shares the memoized expansion" true (a == b)

(* --- fault-injection matrices ----------------------------------------- *)

let fail_on_failures (r : F.Faults.report) =
  match r.F.Faults.failures with
  | [] -> ()
  | (name, detail) :: _ -> Alcotest.failf "%s: %s" name detail

let test_cache_fault_matrix () =
  let r = F.Faults.cache_faults ~seed:11 in
  fail_on_failures r;
  check bool_ "cache checks ran" true (r.F.Faults.passed >= 3)

let test_serve_fault_matrix () =
  let r = F.Faults.serve_faults ~seed:11 in
  fail_on_failures r;
  check bool_ "serve checks ran" true (r.F.Faults.passed >= 5)

let test_resilience_fault_matrix () =
  let r = F.Faults.resilience_faults ~seed:11 in
  fail_on_failures r;
  check bool_ "resilience checks ran" true (r.F.Faults.passed >= 5)

(* --- the fuzzer itself ------------------------------------------------ *)

let test_case_json_roundtrip () =
  let rng = Rng.create 9 in
  for _ = 1 to 25 do
    let c = F.Case.generate rng in
    match F.Case.of_json (F.Case.to_json c) with
    | Ok c' -> check bool_ "case survives JSON" true (c = c')
    | Error d -> Alcotest.failf "case JSON round-trip: %s" (Diag.to_string d)
  done

let small_case =
  {
    F.Case.seed = 5;
    dyn_target = 2_000;
    hot_kb = 1;
    cold_kb = 0;
    data_kb = 1;
    idiom_pool = 2;
    boundary_imms = true;
    n_prods = 3;
    mode = F.Case.Plain;
  }

let test_oracle_passes_and_detects_mutation () =
  (match F.Oracle.check small_case with
  | F.Oracle.Pass { expansions; _ } ->
    check bool_ "case actually expands" true (expansions > 0)
  | F.Oracle.Fail f ->
    Alcotest.failf "clean case failed: [%s] %s" f.F.Oracle.check
      f.F.Oracle.detail);
  match F.Oracle.check ~mutation:(F.Oracle.Nop_trigger_every 2) small_case with
  | F.Oracle.Fail _ -> ()
  | F.Oracle.Pass _ -> Alcotest.fail "lost-trigger mutation went undetected"

let test_fuzz_clean () =
  match F.Driver.fuzz ~iterations:10 ~seed:42 () with
  | F.Driver.Clean { iterations } -> check int_ "ran every iteration" 10 iterations
  | F.Driver.Found f ->
    Alcotest.failf "unexpected divergence at iteration %d: [%s] %s"
      f.F.Driver.iteration f.F.Driver.failure.F.Oracle.check
      f.F.Driver.failure.F.Oracle.detail

let test_self_test_and_replay () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dise-fuzz-selftest-%d" (Unix.getpid ()))
  in
  let replay_ok () =
    match F.Driver.replay dir with
    | Ok reproduced -> reproduced
    | Error d -> Alcotest.failf "replay load failed: %s" (Diag.to_string d)
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () ->
      match F.Driver.self_test ~out:dir ~seed:1 () with
      | Error msg -> Alcotest.fail msg
      | Ok f ->
        check bool_ "detected within budget" true
          (f.F.Driver.iteration < F.Driver.self_test_iterations);
        (match f.F.Driver.artifact with
        | None -> Alcotest.fail "no artifact written"
        | Some _ -> ());
        check bool_ "replay reproduces" true (replay_ok ());
        (* deterministic: a second replay agrees with the first *)
        check bool_ "second replay agrees" true (replay_ok ()))

let suite =
  [
    ("branch boundary round-trips", `Quick, test_branch_boundary_roundtrip);
    ("branch out of range", `Quick, test_branch_out_of_range);
    ("codeword field validation", `Quick, test_codeword_field_validation);
    ("dense memo re-layout", `Quick, test_dense_memo_relayout);
    ("sparse memo re-layout", `Quick, test_sparse_memo_relayout);
    ("cache fault matrix", `Quick, test_cache_fault_matrix);
    ("serve fault matrix", `Quick, test_serve_fault_matrix);
    ("resilience fault matrix", `Quick, test_resilience_fault_matrix);
    ("case JSON round-trip", `Quick, test_case_json_roundtrip);
    ("oracle pass + mutation detection", `Quick,
     test_oracle_passes_and_detects_mutation);
    ("fuzz clean run", `Quick, test_fuzz_clean);
    ("self-test + replay", `Quick, test_self_test_and_replay);
  ]
