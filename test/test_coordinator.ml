(* Tests for the sharded serve tier and its redesigned API surface:
   the serializable Serve_config, the consistent-hash ring, the
   versioned wire envelope, tier-wide admission, and the coordinator
   end to end (including worker crash recovery). The coordinator
   spawns real worker processes — re-executions of this test binary,
   dispatched by the Coordinator.worker_child_main hook at the top of
   test_main.ml. *)

module Json = Dise_telemetry.Json
module Json_schema = Dise_telemetry.Json_schema
module Manifest = Dise_telemetry.Manifest
module Diag = Dise_isa.Diag
module Request = Dise_service.Request
module Server = Dise_service.Server
module Serve_config = Dise_service.Serve_config
module Shard = Dise_service.Shard
module Coordinator = Dise_service.Coordinator
module Resilience = Dise_service.Resilience
module Journal = Resilience.Journal
module Chaos = Resilience.Chaos

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let tmp_counter = ref 0

let with_temp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dise-coordinator-test-%d-%d" (Unix.getpid ())
         !tmp_counter)
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let with_chaos spec f =
  Unix.putenv Chaos.env_var spec;
  Fun.protect ~finally:(fun () -> Unix.putenv Chaos.env_var "") f

let load_schema name =
  let path = Filename.concat "../doc/schema" name in
  let ic = open_in path in
  Json.parse
    (Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () -> really_input_string ic (in_channel_length ic)))

let assert_valid ~schema v =
  match Json_schema.validate ~schema v with
  | [] -> ()
  | errs ->
    Alcotest.fail
      (Format.asprintf "document fails schema: %a"
         (Format.pp_print_list Json_schema.pp_error)
         errs)

let member name j = Option.get (Json.member name j)
let kind_of r = Json.member "kind" (member "error" r)

(* --- Serve_config -------------------------------------------------------- *)

let test_serve_config_roundtrip () =
  let cfg =
    Serve_config.of_flags ~workers:3 ~jobs:2 ~deadline_ms:500 ~shed_above:9_000
      ~tenant_quota:4 ~journal:"/tmp/j" ~breaker:5 ()
  in
  check int_ "jobs-only queue default is 4x" 8 cfg.Serve_config.queue;
  let j = Serve_config.to_json cfg in
  assert_valid ~schema:(load_schema "serve_config.schema.json") j;
  (match Serve_config.of_json j with
  | Ok cfg' -> check bool_ "canonical JSON round-trips" true (cfg = cfg')
  | Error d -> Alcotest.fail ("canonical form rejected: " ^ Diag.to_string d));
  (* defaults validate too, and an empty document means the defaults *)
  assert_valid
    ~schema:(load_schema "serve_config.schema.json")
    (Serve_config.to_json (Serve_config.default ()));
  (match Serve_config.of_json (Json.Obj []) with
  | Ok cfg' ->
    check bool_ "empty config is the default" true
      (cfg' = Serve_config.default ())
  | Error d -> Alcotest.fail ("empty config rejected: " ^ Diag.to_string d));
  (* flags override a file config; --jobs re-derives the queue *)
  let over = Serve_config.override cfg ~jobs:5 ~workers:0 () in
  check int_ "override jobs" 5 over.Serve_config.jobs;
  check int_ "override re-derives queue" 20 over.Serve_config.queue;
  check bool_ "untouched members survive override" true
    (over.Serve_config.deadline_ms = Some 500
    && over.Serve_config.tenant_quota = Some 4);
  (* defects are parse errors, not crashes *)
  (match Serve_config.of_json (Json.Obj [ ("worker", Json.Int 2) ]) with
  | Error (Diag.Parse _) -> ()
  | _ -> Alcotest.fail "unknown member accepted");
  match Serve_config.of_json (Json.Obj [ ("jobs", Json.String "2") ]) with
  | Error (Diag.Parse _) -> ()
  | _ -> Alcotest.fail "mistyped member accepted"

(* --- the consistent-hash ring -------------------------------------------- *)

let test_shard_routing () =
  let keys = List.init 1000 (fun i -> Printf.sprintf "key-%d" i) in
  let ring = Shard.ring ~workers:4 () in
  let ring' = Shard.ring ~workers:4 () in
  check int_ "ring knows its width" 4 (Shard.workers ring);
  (* determinism: routing is a pure function of (workers, key) *)
  List.iter
    (fun k ->
      check int_ (k ^ " routes identically on a rebuilt ring")
        (Shard.route ring k) (Shard.route ring' k))
    keys;
  (* coverage: every worker owns a live slice of the keyspace *)
  let counts = Array.make 4 0 in
  List.iter (fun k -> counts.(Shard.route ring k) <- counts.(Shard.route ring k) + 1) keys;
  Array.iteri
    (fun w c ->
      check bool_ (Printf.sprintf "worker %d owns a nonempty slice (%d)" w c)
        true (c > 0))
    counts;
  (* consistency: growing the tier only moves keys onto the new
     worker — nothing reshuffles between the survivors *)
  let grown = Shard.ring ~workers:5 () in
  let moved = ref 0 in
  List.iter
    (fun k ->
      let before = Shard.route ring k and after = Shard.route grown k in
      if before <> after then begin
        incr moved;
        check int_ (k ^ " may only move to the new worker") 4 after
      end)
    keys;
  check bool_
    (Printf.sprintf "a minority of keys moved (%d/1000)" !moved)
    true
    (!moved > 0 && !moved < 500)

(* --- the versioned wire envelope ----------------------------------------- *)

let test_envelope_versions () =
  let p =
    Server.parse_job ~lineno:1 {|{"id":1,"bench":"tiny","dyn_target":23000}|}
  in
  check int_ "unversioned line is dialect v0" 0 p.Server.version;
  check bool_ "v0 line decodes" true (Result.is_ok p.Server.req);
  let p =
    Server.parse_job ~lineno:1
      {|{"v":1,"id":1,"bench":"tiny","dyn_target":23000}|}
  in
  check int_ "v:1 line is dialect v1" 1 p.Server.version;
  check bool_ "v1 line decodes" true (Result.is_ok p.Server.req);
  check bool_ "tenant defaults to anonymous" true (p.Server.tenant = None);
  let p =
    Server.parse_job ~lineno:1
      {|{"v":1,"tenant":"acme","id":1,"bench":"tiny","dyn_target":23000}|}
  in
  check bool_ "tenant member decoded" true (p.Server.tenant = Some "acme");
  (* anything but an absent v or v:1 is a parse error, including an
     explicit v:0 — v0 clients are recognized by saying nothing *)
  List.iter
    (fun line ->
      match (Server.parse_job ~lineno:1 line).Server.req with
      | Error (Diag.Parse _) -> ()
      | _ -> Alcotest.fail ("accepted bad envelope: " ^ line))
    [
      {|{"v":2,"id":1,"bench":"tiny","dyn_target":23000}|};
      {|{"v":0,"id":1,"bench":"tiny","dyn_target":23000}|};
      {|{"v":"1","id":1,"bench":"tiny","dyn_target":23000}|};
      {|{"tenant":3,"id":1,"bench":"tiny","dyn_target":23000}|};
    ]

(* Serve a list of lines through a single-process session and return
   (summary, responses). *)
let serve ?cfg ?manifest lines =
  with_temp_dir (fun dir ->
      let inp = Filename.concat dir "in.jsonl" in
      let outp = Filename.concat dir "out.jsonl" in
      let oc = open_out_bin inp in
      output_string oc (String.concat "\n" lines ^ "\n");
      close_out oc;
      let ic = open_in inp in
      let oc = open_out outp in
      let summary =
        Fun.protect
          ~finally:(fun () ->
            close_in_noerr ic;
            close_out_noerr oc)
          (fun () ->
            let cfg = Option.value cfg ~default:(Serve_config.default ()) in
            Server.serve_channel (Server.session ?manifest cfg) ic oc)
      in
      let ic = open_in outp in
      let rec read acc =
        match input_line ic with
        | line -> read (Json.parse line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let responses =
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read [])
      in
      (summary, responses))

let job ?v ?tenant ?(dyn = 23_000) id =
  let v = match v with None -> "" | Some v -> Printf.sprintf {|"v":%d,|} v in
  let tenant =
    match tenant with
    | None -> ""
    | Some t -> Printf.sprintf {|"tenant":"%s",|} t
  in
  Printf.sprintf {|{%s%s"id":%d,"bench":"tiny","dyn_target":%d}|} v tenant id
    dyn

let test_v0_compat () =
  (* one legacy line and one v1 line in the same stream: both served,
     and every response speaks v1 *)
  let _, rs = serve [ job ~dyn:23_001 1; job ~v:1 ~dyn:23_002 2 ] in
  check int_ "both dialects served" 2 (List.length rs);
  let schema = load_schema "serve_response.schema.json" in
  List.iter
    (fun r ->
      check bool_ "response leads with v:1" true
        (Json.member "v" r = Some (Json.Int 1));
      check bool_ "response ok" true (member "ok" r = Json.Bool true);
      assert_valid ~schema r)
    rs

(* --- tenant quotas ------------------------------------------------------- *)

let test_tenant_quota_order () =
  let lines =
    [
      job ~tenant:"acme" ~dyn:23_011 1;
      job ~tenant:"acme" ~dyn:23_012 2;
      job ~tenant:"acme" ~dyn:23_013 3;
      job ~tenant:"globex" ~dyn:23_014 4;
      job ~dyn:23_015 5;
    ]
  in
  let summary, rs =
    serve
      ~cfg:(Serve_config.of_flags ~jobs:1 ~queue:8 ~tenant_quota:1 ())
      lines
  in
  check int_ "five responses" 5 (List.length rs);
  check int_ "two acme jobs over quota" 2 summary.Server.shed;
  match rs with
  | [ r1; r2; r3; r4; r5 ] ->
    (* input order is preserved even though 2 and 3 never ran *)
    List.iteri
      (fun i r ->
        check bool_
          (Printf.sprintf "response %d keeps its slot" (i + 1))
          true
          (member "id" r = Json.Int (i + 1)))
      [ r1; r2; r3; r4; r5 ];
    check bool_ "first acme job admitted" true (member "ok" r1 = Json.Bool true);
    List.iter
      (fun r ->
        check bool_ "over-quota job answered overloaded" true
          (member "ok" r = Json.Bool false
          && kind_of r = Some (Json.String "overloaded"));
        match Json.member "message" (member "error" r) with
        | Some (Json.String msg) ->
          let contains sub =
            let n = String.length sub in
            let rec find i =
              i + n <= String.length msg
              && (String.sub msg i n = sub || find (i + 1))
            in
            find 0
          in
          check bool_
            (Printf.sprintf "quota message names the policy (got %S)" msg)
            true
            (contains "tenant quota")
        | _ -> Alcotest.fail "no quota message")
      [ r2; r3 ];
    check bool_ "other tenant unaffected" true (member "ok" r4 = Json.Bool true);
    check bool_ "anonymous tenant unaffected" true
      (member "ok" r5 = Json.Bool true)
  | _ -> Alcotest.fail "wrong response count"

(* --- the coordinator, end to end ----------------------------------------- *)

(* Run [lines] through a real worker tier and return
   (summary, responses, manifest records). *)
let serve_sharded ?on_spawn ?journal ?chaos ?heartbeat_ms ~workers lines =
  with_temp_dir (fun dir ->
      let inp = Filename.concat dir "in.jsonl" in
      let outp = Filename.concat dir "out.jsonl" in
      let oc = open_out_bin inp in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      let mbuf = Buffer.create 4096 in
      let manifest = Manifest.to_buffer mbuf in
      let cfg =
        Serve_config.of_flags ~workers ~jobs:1 ~queue:16 ?journal
          ?heartbeat_ms ()
      in
      let ic = open_in inp in
      let oc = open_out outp in
      let summary =
        Fun.protect
          ~finally:(fun () ->
            close_in_noerr ic;
            close_out_noerr oc)
          (fun () ->
            Coordinator.run_channel ?on_spawn ?chaos ~manifest
              ~cache_dir:(Filename.concat dir "cache")
              cfg ic oc)
      in
      let ic = open_in outp in
      let rec read acc =
        match input_line ic with
        | line -> read (Json.parse line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let responses =
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read [])
      in
      let records =
        String.split_on_char '\n' (Buffer.contents mbuf)
        |> List.filter (fun l -> l <> "")
        |> List.map Json.parse
      in
      (summary, responses, records))

let merged_record records =
  match
    List.find_opt
      (fun r -> Json.member "record" r = Some (Json.String "serve_summary"))
      records
  with
  | Some r -> r
  | None -> Alcotest.fail "no serve_summary record in manifest"

let test_coordinator_end_to_end () =
  let lines = List.init 8 (fun i -> job ~dyn:(24_001 + i) (i + 1)) in
  let summary, rs, records = serve_sharded ~workers:2 lines in
  check int_ "all jobs served" 8 summary.Server.served;
  check int_ "no errors" 0 summary.Server.errors;
  check int_ "eight responses" 8 (List.length rs);
  let schema = load_schema "serve_response.schema.json" in
  List.iteri
    (fun i r ->
      check bool_
        (Printf.sprintf "response %d in input order" (i + 1))
        true
        (member "id" r = Json.Int (i + 1) && member "ok" r = Json.Bool true);
      assert_valid ~schema r)
    rs;
  let record = merged_record records in
  assert_valid ~schema:(load_schema "serve_summary.schema.json") record;
  check bool_ "merged record counts the stream" true
    (Json.member "served" record = Some (Json.Int 8));
  match Json.member "workers" record with
  | Some (Json.List ws) ->
    check int_ "one breakdown entry per worker" 2 (List.length ws);
    let served_by w =
      match Json.member "served" w with Some (Json.Int n) -> n | _ -> 0
    in
    check int_ "every job reached exactly one shard" 8
      (List.fold_left (fun acc w -> acc + served_by w) 0 ws);
    (* 8 distinct keys over 64 vnodes/worker: both shards should see
       work — the balance test above makes a pathological split
       vanishingly unlikely *)
    check bool_ "work spread across shards" true
      (List.for_all (fun w -> served_by w > 0) ws)
  | _ -> Alcotest.fail "merged record lacks a workers array"

let test_coordinator_crash_recovery () =
  (* Stall job 1 in its worker, then SIGKILL every initially-spawned
     worker mid-batch: the coordinator must respawn, the replacements
     must replay their journal shards, and every job must still get
     its answer in order. *)
  with_temp_dir (fun jdir ->
      with_chaos "sleep=1:1500" (fun () ->
          let initial = ref [] in
          let spawns = ref 0 in
          let m = Mutex.create () in
          let on_spawn ~shard:_ ~pid =
            Mutex.lock m;
            incr spawns;
            if !spawns <= 2 then initial := pid :: !initial;
            Mutex.unlock m
          in
          let killer =
            Domain.spawn (fun () ->
                Unix.sleepf 0.4;
                Mutex.lock m;
                let victims = !initial in
                Mutex.unlock m;
                List.iter
                  (fun pid ->
                    try Unix.kill pid Sys.sigkill
                    with Unix.Unix_error _ -> ())
                  victims)
          in
          let lines = List.init 6 (fun i -> job ~dyn:(24_101 + i) (i + 1)) in
          let summary, rs, records =
            serve_sharded ~on_spawn ~workers:2
              ~journal:(Filename.concat jdir "journal")
              lines
          in
          Domain.join killer;
          check int_ "all jobs answered despite the kill" 6
            summary.Server.served;
          check int_ "no errors surfaced" 0 summary.Server.errors;
          List.iteri
            (fun i r ->
              check bool_
                (Printf.sprintf "response %d ok and in order" (i + 1))
                true
                (member "id" r = Json.Int (i + 1)
                && member "ok" r = Json.Bool true))
            rs;
          let record = merged_record records in
          assert_valid ~schema:(load_schema "serve_summary.schema.json") record;
          match Json.member "workers" record with
          | Some (Json.List ws) ->
            let restarts =
              List.fold_left
                (fun acc w ->
                  match Json.member "restarts" w with
                  | Some (Json.Int n) -> acc + n
                  | _ -> acc)
                0 ws
            in
            check bool_
              (Printf.sprintf "the tier restarted workers (%d)" restarts)
              true (restarts >= 1)
          | _ -> Alcotest.fail "merged record lacks a workers array"))

let test_coordinator_journal_shard_replay () =
  (* Plant begun-but-not-done entries in one shard's journal — the
     leftovers of a crash — and start an empty-stream tier over the
     same root: the owning worker must replay exactly those jobs, and
     the count must surface in the merged counters. *)
  with_temp_dir (fun root ->
      let jroot = Filename.concat root "journal" in
      let shard_dir = Filename.concat jroot "worker-1" in
      let j = Journal.open_ ~dir:shard_dir in
      for i = 1 to 3 do
        ignore
          (Journal.append_begin j
             (Json.parse (job ~dyn:(24_201 + i) i)))
      done;
      Journal.sync j;
      Journal.close j;
      let summary, rs, records =
        serve_sharded ~workers:2 ~journal:jroot []
      in
      check int_ "empty stream serves nothing" 0 summary.Server.served;
      check int_ "no responses" 0 (List.length rs);
      let record = merged_record records in
      match Json.member "counters" record with
      | Some (Json.Obj counters) ->
        check bool_
          (Printf.sprintf "merged counters report the shard's replay (%s)"
             (Json.to_string (Json.Obj counters)))
          true
          (List.assoc_opt "journal_replayed" counters = Some (Json.Int 3))
      | _ -> Alcotest.fail "merged record lacks counters")

(* --- socket-mode harness ------------------------------------------------- *)

(* Run the socket front end on a background domain and hand the test
   body a connector; stop and join on the way out. *)
let with_socket_tier ?(cfg = Serve_config.of_flags ~workers:1 ~jobs:1 ())
    body =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "tier.sock" in
      let stop = Server.Stop.create () in
      let tier =
        Domain.spawn (fun () ->
            Coordinator.run_socket ~stop ~cache_dir:(Filename.concat dir "cache")
              cfg ~path ())
      in
      let rec wait_sock n =
        if n = 0 then Alcotest.fail "socket never appeared";
        if not (Sys.file_exists path) then begin
          Unix.sleepf 0.05;
          wait_sock (n - 1)
        end
      in
      let connect () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      in
      let send fd line = ignore (Unix.write_substring fd (line ^ "\n") 0 (String.length line + 1)) in
      let recv_line fd =
        let buf = Buffer.create 256 in
        let b = Bytes.create 1 in
        let rec go () =
          match Unix.read fd b 0 1 with
          | 0 -> None
          | _ ->
            if Bytes.get b 0 = '\n' then Some (Buffer.contents buf)
            else begin
              Buffer.add_char buf (Bytes.get b 0);
              go ()
            end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        in
        go ()
      in
      Fun.protect
        ~finally:(fun () ->
          Server.Stop.signal stop;
          ignore (Domain.join tier))
        (fun () ->
          wait_sock 100;
          body ~connect ~send ~recv_line))

(* A connection that dies {e hard} (write failure, not a polite EOF)
   while a slow job is in flight must not pin its tenant's quota for
   the rest of the job's lifetime. Job 7 stalls in its worker for
   seconds; planting a parse-error line just before closing makes the
   coordinator's response write fail, so the connection takes the
   [fail_conn] path with job 7 still holding acme's only quota slot.
   Pre-fix, client B's same-tenant job is answered [overloaded]. *)
let test_quota_released_on_conn_failure () =
  with_chaos "sleep=7:2500" (fun () ->
      with_socket_tier
        ~cfg:(Serve_config.of_flags ~workers:1 ~jobs:1 ~tenant_quota:1 ())
        (fun ~connect ~send ~recv_line ->
          let a = connect () in
          (* Shut the receive side down first, then pipeline a
             parse-error line ahead of the slow job. The parse error
             is answered immediately (it is slot 0, so the in-order
             emitter flushes it without waiting on a worker), the
             write raises EPIPE against the shut-down reader, and the
             connection takes the hard-failure path while job 7 still
             holds acme's quota inside its worker. *)
          Unix.shutdown a Unix.SHUTDOWN_RECEIVE;
          send a ("{\n" ^ job ~v:1 ~tenant:"acme" ~dyn:23_500 7);
          Unix.sleepf 0.5;
          Unix.close a;
          let b = connect () in
          send b (job ~v:1 ~tenant:"acme" ~dyn:23_501 8);
          (match recv_line b with
          | Some l ->
            let r = Json.parse l in
            check bool_
              (Printf.sprintf
                 "same-tenant job admitted after the hard disconnect (got %s)"
                 l)
              true
              (member "ok" r = Json.Bool true)
          | None -> Alcotest.fail "no response to job 8");
          Unix.close b))

(* --- write_all on a nonblocking descriptor -------------------------------- *)

(* The coordinator marks its pipe ends O_NONBLOCK, and status flags
   belong to the open file description — so [write_all] must survive a
   full pipe (EAGAIN mid-frame) without tearing or dropping bytes.
   1 MiB through a ~64 KiB pipe against a deliberately slow reader
   guarantees the writer sees EAGAIN many times; pre-fix the
   Unix_error escapes and the test fails. *)
let test_write_all_nonblocking_pipe () =
  let r, w = Unix.pipe () in
  Unix.set_nonblock w;
  let total = 1 lsl 20 in
  let payload = String.init total (fun i -> Char.chr (i land 0xff)) in
  let reader =
    Domain.spawn (fun () ->
        let buf = Bytes.create 4096 in
        let count = ref 0 in
        let ok = ref true in
        let continue = ref true in
        while !continue do
          (* throttle so the pipe stays full on the writer's side *)
          Unix.sleepf 0.001;
          match Unix.read r buf 0 (Bytes.length buf) with
          | 0 -> continue := false
          | n ->
            for i = 0 to n - 1 do
              if Bytes.get buf i <> Char.chr ((!count + i) land 0xff) then
                ok := false
            done;
            count := !count + n
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        (!count, !ok))
  in
  Coordinator.write_all w payload 0;
  Unix.close w;
  let count, ok = Domain.join reader in
  Unix.close r;
  check int_ "every byte arrived" total count;
  check bool_ "bytes arrived in order, untorn" true ok

(* --- journal replay across a worker-count change -------------------------- *)

let plant_journal ~jroot ~shard entries =
  let dir = Filename.concat jroot (Printf.sprintf "worker-%d" shard) in
  let j = Journal.open_ ~dir in
  List.iter (fun doc -> ignore (Journal.append_begin j doc)) entries;
  Journal.sync j;
  Journal.close j

(* A tier that crashed at --workers 3 left entries in worker-0/1/2;
   restarting at --workers 2 must replay {e all} of them — routed by
   the current ring — not just the two directories whose names happen
   to match a live shard. Pre-fix, worker-2's journal is orphaned and
   only 4 of the 6 jobs replay. *)
let test_coordinator_journal_reshard_replay () =
  with_temp_dir (fun root ->
      let jroot = Filename.concat root "journal" in
      List.iter
        (fun shard ->
          plant_journal ~jroot ~shard
            [
              Json.parse (job ~dyn:(24_301 + (2 * shard)) ((2 * shard) + 1));
              Json.parse (job ~dyn:(24_302 + (2 * shard)) ((2 * shard) + 2));
            ])
        [ 0; 1; 2 ];
      let summary, rs, records = serve_sharded ~workers:2 ~journal:jroot [] in
      check int_ "empty stream serves nothing" 0 summary.Server.served;
      check int_ "no responses" 0 (List.length rs);
      let record = merged_record records in
      match Json.member "counters" record with
      | Some (Json.Obj counters) ->
        check bool_
          (Printf.sprintf
             "all three crashed shards replay through the new ring (%s)"
             (Json.to_string (Json.Obj counters)))
          true
          (List.assoc_opt "journal_replayed" counters = Some (Json.Int 6))
      | _ -> Alcotest.fail "merged record lacks counters")

(* --- ring shrink: the failover movement property -------------------------- *)

let test_shard_shrink () =
  let keys = List.init 1000 (fun i -> Printf.sprintf "shrink-key-%d" i) in
  let ring = Shard.ring ~workers:4 () in
  check bool_ "fresh ring lists every worker" true
    (Shard.alive ring = [ 0; 1; 2; 3 ]);
  let dead = 2 in
  let shrunk = Shard.remove ring dead in
  check bool_ "survivors only" true (Shard.alive shrunk = [ 0; 1; 3 ]);
  let moved = ref 0 in
  List.iter
    (fun k ->
      let before = Shard.route ring k in
      let after = Shard.route shrunk k in
      if before = dead then begin
        incr moved;
        check bool_ (k ^ " moves off the dead worker") true (after <> dead);
        (* ...and lands exactly where [next ~avoid] predicted: the
           hedge target IS the failover inheritor *)
        check bool_ (k ^ " inherited by the hedge target") true
          (Shard.next ring k ~avoid:dead = Some after)
      end
      else
        check int_ (k ^ " stays put when its owner survives") before after)
    keys;
  check bool_
    (Printf.sprintf "only the dead worker's slice moved (%d/1000)" !moved)
    true
    (!moved > 0 && !moved < 500);
  (* removing an absent worker is the identity *)
  let again = Shard.remove shrunk dead in
  List.iter
    (fun k ->
      check int_ (k ^ " unchanged by removing an absent worker")
        (Shard.route shrunk k) (Shard.route again k))
    keys;
  (* the ring refuses to become empty *)
  let one = Shard.remove (Shard.remove shrunk 0) 1 in
  check bool_ "one survivor owns everything" true
    (List.for_all (fun k -> Shard.route one k = 3) keys);
  check bool_ "no hedge target on a ring of one" true
    (Shard.next one "anything" ~avoid:3 = None);
  match Shard.remove one 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "removing the last worker must raise"

(* --- gray failure: hedged requests are deduplicated ----------------------- *)

(* Both workers are forced Suspect every tick while one job is stalled
   by a chaos directive, so the supervision pass hedges the stalled
   request onto the sibling — and both legs eventually answer. The
   client contract: every job exactly one response, in order, both
   envelope dialects. *)
let test_hedge_dedup () =
  with_chaos "sleep=3:1200" (fun () ->
      let hedges0 = Resilience.Counters.get Resilience.Counters.hedges in
      let chaos ~requests:_ =
        [
          Coordinator.Chaos_suspect { shard = 0 };
          Coordinator.Chaos_suspect { shard = 1 };
        ]
      in
      let lines =
        [
          job ~dyn:25_001 1;
          job ~v:1 ~dyn:25_002 2;
          job ~dyn:25_003 3;
          (* the stalled one *)
          job ~v:1 ~dyn:25_004 4;
          job ~dyn:25_005 5;
        ]
      in
      let summary, rs, records =
        serve_sharded ~workers:2 ~heartbeat_ms:100 ~chaos lines
      in
      check int_ "five jobs served" 5 summary.Server.served;
      check int_ "no errors" 0 summary.Server.errors;
      check int_ "exactly one response per job" 5 (List.length rs);
      List.iteri
        (fun i r ->
          check bool_
            (Printf.sprintf "response %d ok, in order, v1" (i + 1))
            true
            (member "id" r = Json.Int (i + 1)
            && member "ok" r = Json.Bool true
            && Json.member "v" r = Some (Json.Int 1)))
        rs;
      let hedged = Resilience.Counters.get Resilience.Counters.hedges in
      check bool_
        (Printf.sprintf "the stalled request was hedged (%d)"
           (hedged - hedges0))
        true
        (hedged - hedges0 >= 1);
      assert_valid
        ~schema:(load_schema "serve_summary.schema.json")
        (merged_record records))

(* --- live failover: a permanent kill leaves a degraded tier --------------- *)

let test_failover_degraded () =
  with_temp_dir (fun jdir ->
      let failovers0 = Resilience.Counters.get Resilience.Counters.failovers in
      let killed = ref None in
      let m = Mutex.create () in
      (* kill shard 1 for good once the stream is flowing *)
      let chaos ~requests =
        Mutex.lock m;
        let acts =
          if requests >= 3 && !killed = None then begin
            killed := Some 1;
            [ Coordinator.Chaos_kill { shard = 1; permanent = true } ]
          end
          else []
        in
        Mutex.unlock m;
        acts
      in
      let lines = List.init 10 (fun i -> job ~dyn:(25_101 + i) (i + 1)) in
      let summary, rs, records =
        serve_sharded ~workers:3 ~heartbeat_ms:100 ~chaos
          ~journal:(Filename.concat jdir "journal")
          lines
      in
      check int_ "all jobs served degraded" 10 summary.Server.served;
      check int_ "no client-visible errors" 0 summary.Server.errors;
      List.iteri
        (fun i r ->
          check bool_
            (Printf.sprintf "response %d ok and in order" (i + 1))
            true
            (member "id" r = Json.Int (i + 1)
            && member "ok" r = Json.Bool true))
        rs;
      check bool_ "a failover was recorded" true
        (Resilience.Counters.get Resilience.Counters.failovers - failovers0
        >= 1);
      let record = merged_record records in
      assert_valid ~schema:(load_schema "serve_summary.schema.json") record;
      match Json.member "topology" record with
      | Some topo ->
        check bool_ "tier reports degraded" true
          (member "degraded" topo = Json.Bool true);
        check bool_ "shard 1 listed dead" true
          (match member "dead" topo with
          | Json.List l -> List.mem (Json.Int 1) l
          | _ -> false);
        check bool_ "shard 1 off the alive list" true
          (match member "alive" topo with
          | Json.List l -> not (List.mem (Json.Int 1) l)
          | _ -> false)
      | None -> Alcotest.fail "merged record lacks a topology member")

(* --- torn frames: discarded and resubmitted, never parsed ----------------- *)

let test_torn_frame_resubmit () =
  let torn0 = Resilience.Counters.get Resilience.Counters.torn_frames in
  let tore = ref false in
  let m = Mutex.create () in
  let chaos ~requests =
    Mutex.lock m;
    let acts =
      if requests >= 2 && not !tore then begin
        tore := true;
        (* cut = 2: the worker dies two bytes into a frame header *)
        [ Coordinator.Chaos_torn { shard = 0; cut = 2 } ]
      end
      else []
    in
    Mutex.unlock m;
    acts
  in
  let lines = List.init 6 (fun i -> job ~dyn:(25_201 + i) (i + 1)) in
  let summary, rs, _ = serve_sharded ~workers:2 ~chaos lines in
  check int_ "all jobs served across the tear" 6 summary.Server.served;
  check int_ "no errors from the torn stream" 0 summary.Server.errors;
  List.iteri
    (fun i r ->
      check bool_
        (Printf.sprintf "response %d ok and in order" (i + 1))
        true
        (member "id" r = Json.Int (i + 1) && member "ok" r = Json.Bool true))
    rs;
  check bool_ "the tear was counted" true
    (Resilience.Counters.get Resilience.Counters.torn_frames - torn0 >= 1)

(* --- scheduled chaos: exactly-once under kill+stall+torn, twice ----------- *)

(* The full deterministic chaos matrix lives in lib/fuzz (and runs as
   [disesim fuzz --chaos] in CI); this drives it from the tier-1 suite
   so a regression in exactly-once delivery or replay determinism
   fails the default test run. *)
let test_scheduled_chaos () =
  let report = Dise_fuzz.Faults.chaos_faults ~seed:5 in
  check bool_
    (Format.asprintf "%a" Dise_fuzz.Faults.pp_report report)
    true
    (report.Dise_fuzz.Faults.failures = [])

let suite =
  [
    Alcotest.test_case "serve_config round-trip" `Quick
      test_serve_config_roundtrip;
    Alcotest.test_case "shard routing" `Quick test_shard_routing;
    Alcotest.test_case "wire envelope versions" `Quick test_envelope_versions;
    Alcotest.test_case "v0 client compatibility" `Quick test_v0_compat;
    Alcotest.test_case "tenant quota preserves order" `Quick
      test_tenant_quota_order;
    Alcotest.test_case "sharded tier end to end" `Quick
      test_coordinator_end_to_end;
    Alcotest.test_case "worker crash recovery" `Quick
      test_coordinator_crash_recovery;
    Alcotest.test_case "journal shard replay" `Quick
      test_coordinator_journal_shard_replay;
    Alcotest.test_case "journal replay across resharding" `Quick
      test_coordinator_journal_reshard_replay;
    Alcotest.test_case "write_all vs nonblocking full pipe" `Quick
      test_write_all_nonblocking_pipe;
    Alcotest.test_case "quota released on connection failure" `Quick
      test_quota_released_on_conn_failure;
    Alcotest.test_case "ring shrink moves only the dead shard" `Quick
      test_shard_shrink;
    Alcotest.test_case "hedged requests deduplicated" `Quick test_hedge_dedup;
    Alcotest.test_case "live failover serves degraded" `Quick
      test_failover_degraded;
    Alcotest.test_case "torn frame discarded and resubmitted" `Quick
      test_torn_frame_resubmit;
    Alcotest.test_case "scheduled chaos exactly-once" `Quick
      test_scheduled_chaos;
  ]
