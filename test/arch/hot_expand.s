; Conformance vector: a hot store loop under mfi.dise ($dr2 = 1).
; 400 iterations expand the same guard at the same PC, far past the
; JIT compile threshold, so the engine-jit backend runs most of this
; program through compiled superblocks — and must still match the
; naive reference signature exactly.
main:
  lui #1024, r1
  add zero, #0, r2
  add zero, #0, r3
  add zero, #400, r4
loop:
  and r3, #63, r5
  sll r5, #2, r5
  add r1, r5, r5
  stq r3, 0(r5)
  ldq r6, 0(r5)
  add r2, r6, r2
  and r2, #65535, r2
  add r3, #1, r3
  sub r3, r4, r7
  blt r7, loop
  and r2, #255, r2
  halt
__error:
  add zero, #99, r2      ; never reached: every access stays in segment 1
  halt
