; Conformance vector: jal/jr call tree with a manual stack.
; fib(10) via explicit recursion; exercises jal, jr, jalr, and
; memory-resident activation records.
main:
  lui #1024, sp          ; stack in segment 1
  lda sp, 1024(sp)
  add zero, #10, r3      ; argument
  jal fib
  add r4, #0, r2         ; exit code = fib(10) = 55
  halt
fib:
  ; r3 = n, returns r4; clobbers r5
  add zero, #2, r5
  slt r3, r5, r5
  beq r5, fib_rec
  add r3, #0, r4         ; fib(0)=0, fib(1)=1
  jr ra
fib_rec:
  sub sp, #12, sp
  stq ra, 0(sp)
  stq r3, 4(sp)
  sub r3, #1, r3
  jal fib
  stq r4, 8(sp)
  ldq r3, 4(sp)
  sub r3, #2, r3
  jal fib
  ldq r5, 8(sp)
  add r4, r5, r4
  ldq ra, 0(sp)
  add sp, #12, sp
  jr ra
