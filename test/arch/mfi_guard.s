; Conformance vector: memory fault isolation productions (mfi.dise,
; run with $dr2 = 1). A loop of legal stores expands the guard many
; times, then one out-of-segment store must divert to __error.
main:
  lui #1024, r1          ; 0x04000000, segment 1 (legal)
  lui #3072, r9          ; 0x0C000000, segment 3 (illegal)
  add zero, #0, r3
  add zero, #8, r4
loop:
  sll r3, #2, r5
  add r1, r5, r5
  stq r3, 0(r5)
  ldq r6, 0(r5)          ; loads are guarded too (P2)
  add r3, #1, r3
  sub r3, r4, r7
  blt r7, loop
  stq r3, 0(r9)          ; trapped before it executes
  add zero, #1, r2       ; unreachable
  halt
__error:
  add zero, #77, r2
  halt
