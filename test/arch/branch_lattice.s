; Conformance vector: every branch condition, taken and not-taken.
; Each arm contributes a distinct weight so any mispredicted path
; changes the exit code.
main:
  add zero, #0, r2       ; accumulator
  add zero, #1, r3       ; positive
  sub zero, #1, r4       ; negative
  add zero, #0, r5       ; zero
  beq r5, a1
  add r2, #100, r2       ; skipped
a1:
  add r2, #1, r2
  beq r3, a2             ; not taken
  add r2, #2, r2
a2:
  bne r3, a3
  add r2, #100, r2
a3:
  add r2, #4, r2
  bne r5, a4             ; not taken
  add r2, #8, r2
a4:
  blt r4, a5
  add r2, #100, r2
a5:
  add r2, #16, r2
  blt r3, a6             ; not taken
  add r2, #32, r2
a6:
  bge r3, a7
  add r2, #100, r2
a7:
  add r2, #64, r2
  bge r4, a8             ; not taken
  add r2, #1, r2
a8:
  ble r5, a9
  add r2, #100, r2
a9:
  add r2, #2, r2
  ble r3, b1             ; not taken
  add r2, #4, r2
b1:
  bgt r3, b2
  add r2, #100, r2
b2:
  add r2, #8, r2
  bgt r4, done           ; not taken
  add r2, #16, r2
done:
  halt
