; Conformance vector: store-address tracing productions (tracing.dise,
; run with $dr5 = 0x04100000). Every store's effective address is
; appended to the trace buffer by the ACF; the program then folds the
; buffer into the exit code so the trace contents are part of the
; signature.
main:
  lui #1024, r1          ; data at 0x04000000
  lui #1040, r8          ; trace buffer base 0x04100000
  add zero, #0, r3
  add zero, #6, r4
loop:
  mul r3, #20, r5
  add r1, r5, r5
  stq r3, 8(r5)          ; traced
  add r3, #1, r3
  sub r3, r4, r7
  blt r7, loop
  ; sum the six recorded addresses (mod 2^16)
  add zero, #0, r2
  add zero, #0, r3
rdloop:
  sll r3, #2, r5
  add r8, r5, r5
  ldq r6, 0(r5)
  add r2, r6, r2
  add r3, #1, r3
  sub r3, r4, r7
  blt r7, rdloop
  and r2, #65535, r2
  halt
