; Conformance vector: memory watchpoint productions (watchpoint.dise,
; run with $dr7 = 0x04000028). Strided stores walk past the watched
; address; the ACF must trap exactly the store whose effective address
; matches and divert to __error with the loop index still in r3.
main:
  lui #1024, r1          ; 0x04000000
  add zero, #0, r3
  add zero, #32, r4
loop:
  sll r3, #3, r5         ; stride 8
  add r1, r5, r5
  stq r3, 0(r5)          ; index 5 stores to 0x04000028 -> trips
  add r3, #1, r3
  sub r3, r4, r7
  blt r7, loop
  add zero, #1, r2       ; unreachable if the watchpoint works
  halt
__error:
  add r3, #100, r2       ; 5 + 100 = 105
  halt
