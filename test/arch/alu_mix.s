; Conformance vector: ALU op mix over a counted loop.
; Exercises every register-register and register-immediate ALU form;
; the running accumulator in r2 becomes the exit code.
main:
  add zero, #0, r2       ; accumulator
  add zero, #1, r3       ; a
  add zero, #3, r4       ; b
  add zero, #40, r5      ; loop counter
loop:
  add r3, r4, r6
  sub r6, #1, r6
  mul r3, r4, r7
  xor r6, r7, r8
  and r8, #255, r8
  or  r8, r3, r8
  sll r8, #2, r9
  srl r9, #1, r9
  sra r9, #1, r9
  slt r3, r4, r10
  sltu r4, r3, r11
  cmpeq r10, r11, r12
  cmplt r3, r4, r13
  cmple r4, r4, r14
  add r8, r9, r8
  add r8, r10, r8
  add r8, r12, r8
  add r8, r13, r8
  add r8, r14, r8
  add r2, r8, r2
  and r2, #65535, r2
  add r3, #1, r3
  add r4, #2, r4
  sub r5, #1, r5
  bgt r5, loop
  and r2, #255, r2
  halt
