; Conformance vector: strided stores and loads in the data segment.
; Writes a word pattern and byte pattern, reads both back, and folds
; them into a checksum that the memory-image checksum must agree with.
main:
  lui #1024, r1          ; 0x04000000, segment 1 (data)
  add zero, #0, r2       ; checksum
  add zero, #0, r3       ; index
  add zero, #16, r4      ; word count
wstore:
  mul r3, #9, r5
  add r5, #7, r5
  sll r3, #2, r6
  add r1, r6, r6
  stq r5, 0(r6)
  add r3, #1, r3
  blt r3, wstore_chk
wstore_chk:
  sub r3, r4, r7
  blt r7, wstore
  add zero, #0, r3
wload:
  sll r3, #2, r6
  add r1, r6, r6
  ldq r8, 0(r6)
  add r2, r8, r2
  add r3, #1, r3
  sub r3, r4, r7
  blt r7, wload
  ; byte traffic on top of the words already there
  stb r2, 64(r1)
  stb r3, 65(r1)
  ldbu r9, 64(r1)
  ldbu r10, 65(r1)
  add r2, r9, r2
  add r2, r10, r2
  and r2, #255, r2
  halt
