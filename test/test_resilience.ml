(* Tests for the fault-tolerant serve layer: circuit breaker, retry,
   chaos directives, crash journal, per-job isolation, deadlines,
   admission shedding, and the supervised socket loop. The
   whole-system chaos matrix (SIGKILL replay, breaker trip under
   load) lives in lib/fuzz/faults.ml; these are the deterministic
   unit and protocol tests. *)

module Json = Dise_telemetry.Json
module Diag = Dise_isa.Diag
module Cache = Dise_service.Cache
module Request = Dise_service.Request
module Server = Dise_service.Server
module Serve_config = Dise_service.Serve_config
module Pool = Dise_service.Pool
module Resilience = Dise_service.Resilience
module Breaker = Resilience.Breaker
module Journal = Resilience.Journal
module Chaos = Resilience.Chaos

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let tmp_counter = ref 0

let with_temp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dise-resilience-test-%d-%d" (Unix.getpid ())
         !tmp_counter)
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let with_chaos spec f =
  Unix.putenv Chaos.env_var spec;
  Fun.protect ~finally:(fun () -> Unix.putenv Chaos.env_var "") f

(* --- breaker state machine (fake clock) ---------------------------------- *)

let test_breaker_states () =
  let clock = ref 0.0 in
  let b = Breaker.create ~threshold:3 ~cooldown_s:10.0 ~now:(fun () -> !clock) () in
  check bool_ "starts closed" true (Breaker.state b = Breaker.Closed);
  check bool_ "closed allows" true (Breaker.allow b);
  Breaker.failure b;
  Breaker.failure b;
  check bool_ "below threshold: still closed" true
    (Breaker.state b = Breaker.Closed);
  Breaker.success b;
  (* success resets the consecutive count *)
  Breaker.failure b;
  Breaker.failure b;
  check bool_ "reset count: still closed" true
    (Breaker.state b = Breaker.Closed);
  Breaker.failure b;
  check bool_ "third consecutive failure trips" true
    (Breaker.state b = Breaker.Open);
  check int_ "one trip recorded" 1 (Breaker.trips b);
  check bool_ "open blocks" false (Breaker.allow b);
  check bool_ "blocked reports open" true (Breaker.blocked b);
  clock := 9.0;
  check bool_ "still cooling down" false (Breaker.allow b);
  clock := 10.5;
  check bool_ "cooldown over: probe admitted" true (Breaker.allow b);
  check bool_ "half-open" true (Breaker.state b = Breaker.Half_open);
  check bool_ "single probe: second caller refused" false (Breaker.allow b);
  Breaker.failure b;
  check bool_ "failed probe re-opens" true (Breaker.state b = Breaker.Open);
  clock := 21.0;
  check bool_ "second probe admitted" true (Breaker.allow b);
  Breaker.success b;
  check bool_ "successful probe closes" true (Breaker.state b = Breaker.Closed);
  check bool_ "closed is not blocked" false (Breaker.blocked b);
  check int_ "still one trip" 1 (Breaker.trips b);
  match Breaker.to_json b with
  | Json.Obj fields ->
    check bool_ "to_json carries state" true
      (List.assoc_opt "state" fields = Some (Json.String "closed"))
  | _ -> Alcotest.fail "to_json not an object"

(* --- bounded retry ------------------------------------------------------- *)

exception Flaky

let test_retries () =
  let before = Resilience.Counters.get Resilience.Counters.retries in
  let calls = ref 0 in
  let v =
    Resilience.with_retries ~base_delay_s:0.0001 ~max_delay_s:0.001
      ~transient:(function Flaky -> true | _ -> false)
      (fun () ->
        incr calls;
        if !calls < 3 then raise Flaky else 42)
  in
  check int_ "third try succeeds" 42 v;
  check int_ "two retries performed" 3 !calls;
  check bool_ "retries counted" true
    (Resilience.Counters.get Resilience.Counters.retries >= before + 2);
  (* non-transient: no retry *)
  let calls = ref 0 in
  (try
     ignore
       (Resilience.with_retries
          ~transient:(function Flaky -> true | _ -> false)
          (fun () ->
            incr calls;
            failwith "hard"))
   with Failure _ -> ());
  check int_ "non-transient fails on first try" 1 !calls;
  (* exhaustion: last exception propagates *)
  let calls = ref 0 in
  (try
     ignore
       (Resilience.with_retries ~attempts:3 ~base_delay_s:0.0001
          ~max_delay_s:0.001
          ~transient:(function Flaky -> true | _ -> false)
          (fun () ->
            incr calls;
            raise Flaky))
   with Flaky -> ());
  check int_ "exhaustion after [attempts] tries" 3 !calls

(* --- chaos directives ---------------------------------------------------- *)

let test_chaos_parse () =
  let t = Chaos.parse "raise=2,sleep=3:50,bogus,raise=x,sleep=4,sleep=5:-1" in
  (* only raise=2 and sleep=3:50 are well-formed *)
  (try
     Chaos.apply t ~id:(Json.Int 2);
     Alcotest.fail "raise directive did not raise"
   with Chaos.Injected _ -> ());
  Chaos.apply t ~id:(Json.Int 1);
  Chaos.apply t ~id:(Json.Int 4);
  Chaos.apply t ~id:(Json.Int 5);
  Chaos.apply t ~id:(Json.String "2");
  (* sleep=3:50 stalls ~50ms *)
  let t0 = Unix.gettimeofday () in
  Chaos.apply t ~id:(Json.Int 3);
  check bool_ "sleep directive stalls" true (Unix.gettimeofday () -. t0 >= 0.04);
  let none = Chaos.parse "" in
  Chaos.apply none ~id:(Json.Int 2)

(* --- crash journal ------------------------------------------------------- *)

let doc i = Json.Obj [ ("bench", Json.String "tiny"); ("n", Json.Int i) ]

let test_journal_roundtrip () =
  with_temp_dir (fun dir ->
      let j = Journal.open_ ~dir in
      let s1 = Journal.append_begin j (doc 1) in
      let s2 = Journal.append_begin j (doc 2) in
      let s3 = Journal.append_begin j (doc 3) in
      check bool_ "sequence numbers are distinct and ordered" true
        (s1 < s2 && s2 < s3);
      Journal.sync j;
      Journal.mark_done j s2;
      Journal.close j;
      let pending = Journal.pending ~dir in
      check int_ "two jobs pending" 2 (List.length pending);
      check bool_ "pending in journal order, done job gone" true
        (List.map fst pending = [ s1; s3 ]);
      check bool_ "documents survive the round-trip" true
        (List.map snd pending = [ doc 1; doc 3 ]);
      (* a half-written trailing line (crash mid-append) is skipped *)
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 (Journal.file ~dir)
      in
      output_string oc "{\"op\":\"begin\",\"seq\":9,\"jo";
      close_out oc;
      let pending' = Journal.pending ~dir in
      check bool_ "partial trailing line is ignored" true
        (List.map fst pending' = [ s1; s3 ]);
      Journal.clear ~dir;
      check int_ "clear empties the journal" 0
        (List.length (Journal.pending ~dir)))

let test_journal_missing_dir () =
  with_temp_dir (fun dir ->
      let nested = Filename.concat dir "does/not/exist" in
      check int_ "no journal means nothing pending" 0
        (List.length (Journal.pending ~dir:nested));
      (* open_ creates the directory chain *)
      let j = Journal.open_ ~dir:nested in
      ignore (Journal.append_begin j (doc 1));
      Journal.close j;
      check int_ "journal usable in a created directory" 1
        (List.length (Journal.pending ~dir:nested)))

(* --- journal replay ------------------------------------------------------ *)

let test_replay_journal () =
  with_temp_dir (fun dir ->
      let jdir = Filename.concat dir "journal" in
      let cdir = Filename.concat dir "cache" in
      let j = Journal.open_ ~dir:jdir in
      let interrupted = Request.v ~dyn_target:21_011 "tiny" in
      let finished = Request.v ~dyn_target:21_012 "tiny" in
      ignore (Journal.append_begin j (Request.to_json interrupted));
      let s2 = Journal.append_begin j (Request.to_json finished) in
      Journal.mark_done j s2;
      Journal.close j;
      Request.set_disk_cache (Some (Cache.create ~dir:cdir));
      Fun.protect
        ~finally:(fun () ->
          Request.set_disk_cache None;
          Request.clear_memory ())
        (fun () ->
          let replayed = Server.replay_journal ~jobs:1 ~dir:jdir () in
          check int_ "only the interrupted job replays" 1 replayed;
          let c = Option.get (Request.disk_cache ()) in
          check bool_ "replayed job landed in the result cache" true
            (Cache.find c ~key:(Request.key interrupted) <> None);
          check bool_ "finished job was not re-run" true
            (Cache.find c ~key:(Request.key finished) = None);
          check int_ "replay with no journal is a no-op" 0
            (Server.replay_journal ~dir:(Filename.concat dir "none") ())))

(* --- per-task isolation in the pool -------------------------------------- *)

exception Poison of int

let test_pool_outcomes () =
  let tasks =
    Array.init 6 (fun i () -> if i = 2 then raise (Poison i) else i * 10)
  in
  let outcomes = Pool.run_outcomes ~jobs:3 tasks in
  check int_ "every task has an outcome" 6 (Array.length outcomes);
  Array.iteri
    (fun i o ->
      match o with
      | Ok v ->
        check bool_ "slot holds its own value" true (i <> 2 && v = i * 10)
      | Error (Poison 2, _) -> check int_ "poison confined to its slot" 2 i
      | Error (e, _) -> Alcotest.fail (Printexc.to_string e))
    outcomes;
  (* run (the raising variant) still re-raises the lowest failure *)
  match Pool.run ~jobs:3 tasks with
  | _ -> Alcotest.fail "run did not re-raise"
  | exception Poison 2 -> ()

(* --- serve protocol under faults ----------------------------------------- *)

let serve ?cfg ?manifest lines =
  with_temp_dir (fun dir ->
      let inp = Filename.concat dir "in.jsonl" in
      let outp = Filename.concat dir "out.jsonl" in
      let oc = open_out_bin inp in
      output_string oc (String.concat "\n" lines ^ "\n");
      close_out oc;
      let ic = open_in inp in
      let oc = open_out outp in
      let summary =
        Fun.protect
          ~finally:(fun () ->
            close_in_noerr ic;
            close_out_noerr oc)
          (fun () ->
            let cfg =
              Option.value cfg ~default:(Serve_config.default ())
            in
            Server.serve_channel (Server.session ?manifest cfg) ic oc)
      in
      let ic = open_in outp in
      let rec read acc =
        match input_line ic with
        | line -> read (Json.parse line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let responses =
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read [])
      in
      (summary, responses))

let member name j = Option.get (Json.member name j)
let kind_of r = Json.member "kind" (member "error" r)

let load_schema () =
  Json.parse
    (let ic = open_in "../doc/schema/serve_response.schema.json" in
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () -> really_input_string ic (in_channel_length ic)))

let job ?(dyn = 22_000) id =
  Printf.sprintf {|{"id":%d,"bench":"tiny","dyn_target":%d}|} id dyn

(* The acceptance chunk: one poisoned job, one oversized line, N good
   jobs -> exactly N+2 responses, in order, with kinds internal /
   parse / ok, every one schema-valid, and the server survives to
   serve the whole stream. *)
let test_serve_mixed_chunk () =
  with_chaos "raise=2" (fun () ->
      let big =
        {|{"id":3,"bench":"tiny","pad":"|}
        ^ String.make (Server.max_line_bytes + 32) 'x'
        ^ {|"}|}
      in
      let lines =
        [ job ~dyn:22_001 1; job ~dyn:22_002 2; big; job ~dyn:22_003 4;
          job ~dyn:22_004 5 ]
      in
      let summary, rs =
        serve ~cfg:(Serve_config.of_flags ~jobs:2 ~queue:8 ()) lines
      in
      check int_ "N+2 responses" 5 (List.length rs);
      check int_ "summary served" 5 summary.Server.served;
      check int_ "summary errors" 2 summary.Server.errors;
      check int_ "summary isolated" 1 summary.Server.isolated;
      (match rs with
      | [ r1; r2; r3; r4; r5 ] ->
        check bool_ "good jobs ok, in order" true
          (member "ok" r1 = Json.Bool true
          && member "id" r1 = Json.Int 1
          && member "ok" r4 = Json.Bool true
          && member "id" r4 = Json.Int 4
          && member "ok" r5 = Json.Bool true
          && member "id" r5 = Json.Int 5);
        check bool_ "poisoned job answered internal, id echoed" true
          (member "ok" r2 = Json.Bool false
          && member "id" r2 = Json.Int 2
          && kind_of r2 = Some (Json.String "internal"));
        check bool_ "oversized line answered parse" true
          (member "ok" r3 = Json.Bool false
          && kind_of r3 = Some (Json.String "parse"))
      | _ -> Alcotest.fail "wrong response count");
      let schema = load_schema () in
      List.iter
        (fun r ->
          match Dise_telemetry.Json_schema.validate ~schema r with
          | [] -> ()
          | errs ->
            Alcotest.fail
              (Format.asprintf "response fails schema: %a"
                 (Format.pp_print_list Dise_telemetry.Json_schema.pp_error)
                 errs))
        rs)

let test_serve_truncated_line_number () =
  let big =
    {|{"id":2,"pad":"|} ^ String.make (Server.max_line_bytes + 32) 'x' ^ {|"}|}
  in
  let _, rs =
    serve ~cfg:(Serve_config.of_flags ~jobs:1 ~queue:4 ()) [ job 1; big; job 3 ]
  in
  match rs with
  | [ _; r2; _ ] -> (
    match Json.member "message" (member "error" r2) with
    | Some (Json.String msg) ->
      check bool_
        (Printf.sprintf "truncation message names line 2 (got %S)" msg)
        true
        (let sub = "line 2 " in
         let rec find i =
           i + String.length sub <= String.length msg
           && (String.sub msg i (String.length sub) = sub || find (i + 1))
         in
         find 0)
    | _ -> Alcotest.fail "no error message")
  | _ -> Alcotest.fail "wrong response count"

let test_serve_deadline () =
  Request.clear_memory ();
  (* upfront expiry: already-spent budget fails fast as timeout *)
  (match
     Request.run_ext
       ~deadline:(Unix.gettimeofday () -. 1.0)
       (Request.v ~dyn_target:22_011 "tiny")
   with
  | Error (Diag.Timeout _) -> ()
  | Error d -> Alcotest.fail ("wrong diag: " ^ Diag.to_string d)
  | Ok _ -> Alcotest.fail "expired deadline did not time out");
  (* mid-simulation: the cooperative poll aborts a fresh run *)
  let req = Request.v ~dyn_target:400_000 "tiny" in
  (match Request.run_ext ~deadline:(Unix.gettimeofday () +. 0.0002) req with
  | Error (Diag.Timeout _) -> ()
  | Error d -> Alcotest.fail ("wrong diag: " ^ Diag.to_string d)
  | Ok _ -> Alcotest.fail "simulation finished inside 0.2ms");
  check int_ "timeout exit-code class is 5" 5
    (Diag.exit_code (Diag.Timeout "x"));
  (* the aborted run left no poisoned memo claim behind *)
  match Request.run_ext req with
  | Ok _ -> ()
  | Error d -> Alcotest.fail ("deadline-free rerun failed: " ^ Diag.to_string d)

let test_serve_shed_first_job_admitted () =
  (* a single job heavier than the high-water mark still runs: the
     mark bounds queued work, it must not starve legitimate jobs *)
  let summary, rs =
    serve
      ~cfg:(Serve_config.of_flags ~jobs:1 ~queue:4 ~shed_above:10_000 ())
      [ job ~dyn:22_021 1 ]
  in
  check int_ "nothing shed" 0 summary.Server.shed;
  match rs with
  | [ r ] -> check bool_ "heavy first job served" true (member "ok" r = Json.Bool true)
  | _ -> Alcotest.fail "wrong response count"

let test_serve_manifest_record () =
  let buf = Buffer.create 256 in
  let manifest = Dise_telemetry.Manifest.to_buffer buf in
  let _ =
    serve ~cfg:(Serve_config.of_flags ~jobs:1 ~queue:2 ()) ~manifest [ job 1 ]
  in
  let record = Json.parse (String.trim (Buffer.contents buf)) in
  check bool_ "record tagged serve_summary" true
    (Json.member "record" record = Some (Json.String "serve_summary"));
  check bool_ "served count present" true
    (Json.member "served" record = Some (Json.Int 1));
  match Json.member "counters" record with
  | Some (Json.Obj counters) ->
    check bool_ "resilience counters embedded" true
      (List.mem_assoc "isolated" counters
      && List.mem_assoc "breaker_trips" counters)
  | _ -> Alcotest.fail "no counters object"

(* --- the socket loop ----------------------------------------------------- *)

let connect_client path lines =
  let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect s (Unix.ADDR_UNIX path);
      (match lines with
      | [] -> ()
      | _ ->
        let msg = Bytes.of_string (String.concat "\n" lines ^ "\n") in
        let rec send off =
          if off < Bytes.length msg then
            send (off + Unix.write s msg off (Bytes.length msg - off))
        in
        send 0);
      Unix.shutdown s Unix.SHUTDOWN_SEND;
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let rec recv () =
        match Unix.read s chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          recv ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      recv ();
      Buffer.contents buf)

let wait_until_live path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect s (Unix.ADDR_UNIX path) with
    | () ->
      Unix.shutdown s Unix.SHUTDOWN_SEND;
      Unix.close s
    | exception Unix.Unix_error _ ->
      (try Unix.close s with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "socket server never came up"
      else begin
        Unix.sleepf 0.01;
        go ()
      end
  in
  go ()

let test_socket_supervision () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "serve.sock" in
      (* Plant a STALE socket: bound then closed without unlink — the
         server must reclaim it rather than refuse to start. *)
      let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind stale (Unix.ADDR_UNIX path);
      Unix.close stale;
      check bool_ "stale socket file exists" true (Sys.file_exists path);
      let stop = Server.Stop.create () in
      let sess =
        Server.session ~stop (Serve_config.of_flags ~jobs:1 ~queue:2 ())
      in
      let server = Domain.spawn (fun () -> Server.serve_socket sess ~path ()) in
      Fun.protect
        ~finally:(fun () -> Server.Stop.signal stop)
        (fun () ->
          wait_until_live path;
          (* Two concurrent connections: served sequentially, both
             must get their own correct responses. *)
          let c1 =
            Domain.spawn (fun () -> connect_client path [ job ~dyn:22_031 1 ])
          in
          let c2 =
            Domain.spawn (fun () -> connect_client path [ job ~dyn:22_032 2 ])
          in
          let r1 = Json.parse (String.trim (Domain.join c1)) in
          let r2 = Json.parse (String.trim (Domain.join c2)) in
          check bool_ "connection 1 answered its own job" true
            (member "ok" r1 = Json.Bool true && member "id" r1 = Json.Int 1);
          check bool_ "connection 2 answered its own job" true
            (member "ok" r2 = Json.Bool true && member "id" r2 = Json.Int 2);
          (* A second server on the same live socket must refuse with
             the busy diagnostic (exit-code class 6), not steal it. *)
          (match
             Server.serve_socket
               (Server.session (Serve_config.default ()))
               ~path ()
           with
          | () -> Alcotest.fail "second server started on a live socket"
          | exception Cache.Diag_error (Diag.Overloaded _ as d) ->
            check int_ "busy socket refusal is exit-code 6" 6
              (Diag.exit_code d)
          | exception e -> Alcotest.fail (Printexc.to_string e));
          (* Drain: stop flag + one wake-up connection. *)
          Server.Stop.signal stop;
          ignore (connect_client path []);
          Domain.join server;
          check bool_ "socket unlinked on shutdown" false
            (Sys.file_exists path)))

(* --- counters ------------------------------------------------------------ *)

(* --- heartbeat health state machine -------------------------------------- *)

(* Driven entirely by an injected clock: no sleeps, no real time. *)
let test_health_states () =
  let open Resilience.Health in
  let t = ref 0.0 in
  let h =
    create ~now:(fun () -> !t) ~interval_s:1.0 ~suspect_misses:2
      ~dead_misses:4 ()
  in
  check string_ "fresh worker healthy" "healthy" (state_name (state h));
  check bool_ "no reason while healthy" true (reason h = None);
  check bool_ "first ping due immediately" true (due h);
  ping_sent h;
  check bool_ "not due inside the interval" false (due h);
  t := 0.5;
  pong h;
  check int_ "answered ping clears misses" 0 (misses h);
  t := 1.6;
  check bool_ "due again after the interval" true (due h);
  (* unanswered pings: each due+ping_sent with the previous ping
     still outstanding counts a miss *)
  ping_sent h;
  t := 2.7;
  ping_sent h;
  check int_ "one miss" 1 (misses h);
  check string_ "one miss still healthy" "healthy" (state_name (state h));
  t := 3.8;
  ping_sent h;
  check int_ "two misses" 2 (misses h);
  check string_ "suspect_misses reached" "suspect" (state_name (state h));
  check bool_ "suspicion carries a reason" true (reason h <> None);
  (* a pong heals suspicion *)
  pong h;
  check string_ "pong heals suspect" "healthy" (state_name (state h));
  check bool_ "healed worker has no reason" true (reason h = None);
  (* explicit suspicion (latency) also heals *)
  suspect h ~reason:"slow";
  check string_ "latency suspicion" "suspect" (state_name (state h));
  check bool_ "latency reason kept" true (reason h = Some "slow");
  pong h;
  check string_ "pong heals latency suspicion" "healthy"
    (state_name (state h));
  (* ride the misses all the way to dead *)
  t := 10.0;
  for _ = 1 to 5 do
    if due h then ping_sent h;
    t := !t +. 1.1
  done;
  check string_ "dead_misses reached" "dead" (state_name (state h));
  check bool_ "dead is sticky: no more pings" false (due h);
  pong h;
  check string_ "dead ignores a late pong" "dead" (state_name (state h));
  (* force_dead is immediate regardless of history *)
  let h2 =
    create ~now:(fun () -> 0.0) ~interval_s:1.0 ~suspect_misses:2
      ~dead_misses:4 ()
  in
  force_dead h2 ~reason:"respawn cap";
  check string_ "force_dead immediate" "dead" (state_name (state h2));
  check bool_ "force_dead keeps its reason" true
    (reason h2 = Some "respawn cap")

let test_counters () =
  let snap = Resilience.Counters.snapshot () in
  check int_ "eighteen counters registered" 18 (List.length snap);
  List.iter
    (fun name ->
      check bool_ (name ^ " present") true (List.mem_assoc name snap))
    [
      "isolated"; "timeouts"; "shed"; "retries"; "store_drops";
      "breaker_trips"; "breaker_probes"; "breaker_closes"; "conn_failures";
      "journal_replayed"; "jit_compiles"; "jit_hits"; "jit_invalidations";
      "hedges"; "hedge_wins"; "heartbeat_misses"; "failovers"; "torn_frames";
    ];
  let before = Resilience.Counters.get Resilience.Counters.shed in
  Resilience.Counters.incr Resilience.Counters.shed;
  Resilience.Counters.add Resilience.Counters.shed 2;
  check int_ "incr/add" (before + 3)
    (Resilience.Counters.get Resilience.Counters.shed)

let suite =
  [
    Alcotest.test_case "breaker state machine" `Quick test_breaker_states;
    Alcotest.test_case "bounded retry with backoff" `Quick test_retries;
    Alcotest.test_case "chaos directive parsing" `Quick test_chaos_parse;
    Alcotest.test_case "journal round-trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal missing directory" `Quick
      test_journal_missing_dir;
    Alcotest.test_case "journal replay" `Quick test_replay_journal;
    Alcotest.test_case "pool outcome isolation" `Quick test_pool_outcomes;
    Alcotest.test_case "serve mixed fault chunk" `Quick test_serve_mixed_chunk;
    Alcotest.test_case "serve truncated line number" `Quick
      test_serve_truncated_line_number;
    Alcotest.test_case "deadlines" `Quick test_serve_deadline;
    Alcotest.test_case "shed admits first job" `Quick
      test_serve_shed_first_job_admitted;
    Alcotest.test_case "serve manifest record" `Quick
      test_serve_manifest_record;
    Alcotest.test_case "socket supervision" `Quick test_socket_supervision;
    Alcotest.test_case "heartbeat health states" `Quick test_health_states;
    Alcotest.test_case "resilience counters" `Quick test_counters;
  ]
