(* Tests for the ISA substrate: registers, opcode semantics, encoding
   round-trips, the assembler, and program layout. *)

open Dise_isa

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

(* --- registers ------------------------------------------------------ *)

let test_reg_basics () =
  check bool_ "r0 is arch" true (Reg.is_arch Reg.zero);
  check bool_ "dr0 is dedicated" true (Reg.is_dedicated (Reg.d 0));
  check int_ "arch index" 7 (Reg.index (Reg.r 7));
  check int_ "dedicated index" (32 + 3) (Reg.index (Reg.d 3));
  check bool_ "equal same" true (Reg.equal (Reg.r 5) (Reg.r 5));
  check bool_ "arch vs dedicated differ" false (Reg.equal (Reg.r 5) (Reg.d 5))

let test_reg_strings () =
  let round r = Reg.of_string (Reg.to_string r) in
  check bool_ "r13 round-trips" true (round (Reg.r 13) = Some (Reg.r 13));
  check bool_ "sp round-trips" true (round Reg.sp = Some Reg.sp);
  check bool_ "ra round-trips" true (round Reg.ra = Some Reg.ra);
  check bool_ "zero round-trips" true (round Reg.zero = Some Reg.zero);
  check bool_ "$dr2 round-trips" true (round (Reg.d 2) = Some (Reg.d 2));
  check bool_ "dr7 parses" true (Reg.of_string "dr7" = Some (Reg.d 7));
  check bool_ "r32 rejected" true (Reg.of_string "r32" = None);
  check bool_ "garbage rejected" true (Reg.of_string "x1" = None)

let test_reg_range_checks () =
  Alcotest.check_raises "r -1" (Invalid_argument "Reg.r: out of range")
    (fun () -> ignore (Reg.r (-1)));
  Alcotest.check_raises "d 16" (Invalid_argument "Reg.d: out of range")
    (fun () -> ignore (Reg.d 16))

(* --- opcode semantics ----------------------------------------------- *)

let test_alu_semantics () =
  check int_ "add" 7 (Opcode.eval_rop Opcode.Add 3 4);
  check int_ "add wraps to negative" (-2147483648)
    (Opcode.eval_rop Opcode.Add 2147483647 1);
  check int_ "sub" (-1) (Opcode.eval_rop Opcode.Sub 3 4);
  check int_ "mul" 12 (Opcode.eval_rop Opcode.Mul 3 4);
  check int_ "and" 4 (Opcode.eval_rop Opcode.And_ 6 12);
  check int_ "or" 14 (Opcode.eval_rop Opcode.Or_ 6 12);
  check int_ "xor" 10 (Opcode.eval_rop Opcode.Xor 6 12);
  check int_ "sll" 24 (Opcode.eval_rop Opcode.Sll 3 3);
  check int_ "srl of negative is logical" 0x3FFFFFFF
    (Opcode.eval_rop Opcode.Srl (-1) 2);
  check int_ "sra of negative is arithmetic" (-1)
    (Opcode.eval_rop Opcode.Sra (-1) 2);
  check int_ "slt signed" 1 (Opcode.eval_rop Opcode.Slt (-1) 0);
  check int_ "sltu unsigned" 0 (Opcode.eval_rop Opcode.Sltu (-1) 0);
  check int_ "cmpeq true" 1 (Opcode.eval_rop Opcode.Cmpeq 5 5);
  check int_ "cmpeq false" 0 (Opcode.eval_rop Opcode.Cmpeq 5 6);
  check int_ "cmplt" 1 (Opcode.eval_rop Opcode.Cmplt 4 5);
  check int_ "cmple equal" 1 (Opcode.eval_rop Opcode.Cmple 5 5);
  check int_ "shift amount mod 32" 2 (Opcode.eval_rop Opcode.Sll 1 33)

let test_branch_semantics () =
  check bool_ "beq 0" true (Opcode.eval_bop Opcode.Beq 0);
  check bool_ "beq 1" false (Opcode.eval_bop Opcode.Beq 1);
  check bool_ "bne -1" true (Opcode.eval_bop Opcode.Bne (-1));
  check bool_ "blt -1" true (Opcode.eval_bop Opcode.Blt (-1));
  check bool_ "blt 0" false (Opcode.eval_bop Opcode.Blt 0);
  check bool_ "bge 0" true (Opcode.eval_bop Opcode.Bge 0);
  check bool_ "ble 0" true (Opcode.eval_bop Opcode.Ble 0);
  check bool_ "bgt 1" true (Opcode.eval_bop Opcode.Bgt 1);
  check bool_ "bgt works on sign-extended" true
    (Opcode.eval_bop Opcode.Bgt (Opcode.signed32 5))

let test_word_helpers () =
  check int_ "mask32 of -1" 0xFFFFFFFF (Opcode.mask32 (-1));
  check int_ "signed32 of 0x80000000" (-2147483648)
    (Opcode.signed32 0x80000000);
  check int_ "signed32 of small" 42 (Opcode.signed32 42)

(* --- instruction structure ------------------------------------------ *)

let r1 = Reg.r 1
let r2 = Reg.r 2
let r3 = Reg.r 3

let test_insn_fields () =
  let add = Insn.Rop (Opcode.Add, r1, r2, r3) in
  check bool_ "add rs" true (Insn.rs add = Some r1);
  check bool_ "add rt" true (Insn.rt add = Some r2);
  check bool_ "add rd" true (Insn.rd add = Some r3);
  let ld = Insn.Mem (Opcode.Ldq, r1, 8, r2) in
  check bool_ "load rs is base" true (Insn.rs ld = Some r1);
  check bool_ "load rd is data" true (Insn.rd ld = Some r2);
  check bool_ "load imm" true (Insn.imm ld = Some 8);
  let st = Insn.Mem (Opcode.Stq, r1, -4, r2) in
  check bool_ "store has no rd" true (Insn.rd st = None);
  check bool_ "store rt is data" true (Insn.rt st = Some r2);
  check bool_ "jal defines ra" true (Insn.defs (Insn.Jal (Insn.Abs 0)) = [ Reg.ra ]);
  check bool_ "store uses base and data" true
    (Insn.uses st = [ r1; r2 ])

let test_insn_classes () =
  let cls i = Insn.cls i in
  check bool_ "load class" true (cls (Insn.Mem (Opcode.Ldq, r1, 0, r2)) = Opcode.C_load);
  check bool_ "store class" true (cls (Insn.Mem (Opcode.Stb, r1, 0, r2)) = Opcode.C_store);
  check bool_ "branch class" true
    (cls (Insn.Br (Opcode.Bne, r1, Insn.Abs 0)) = Opcode.C_branch);
  check bool_ "jr is indirect" true (cls (Insn.Jr r1) = Opcode.C_ijump);
  check bool_ "jal is jump" true (cls (Insn.Jal (Insn.Abs 0)) = Opcode.C_jump);
  check bool_ "codeword class" true
    (cls (Insn.codeword ~op:0 ~p1:0 ~p2:0 ~p3:0 ~tag:0) = Opcode.C_codeword);
  check bool_ "dbr class" true (cls (Insn.Dbr (Opcode.Beq, r1, 2)) = Opcode.C_dise)

let test_key_class_consistency () =
  (* Every key belongs to exactly one class, and cls_of_key agrees with
     keys_of_class. *)
  for k = 0 to Insn.num_keys - 1 do
    let c = Insn.cls_of_key k in
    if not (List.mem k (Insn.keys_of_class c)) then
      Alcotest.failf "key %d not in its own class %s" k (Opcode.cls_to_string c)
  done;
  let total =
    List.fold_left
      (fun acc c -> acc + List.length (Insn.keys_of_class c))
      0 Opcode.all_classes
  in
  check int_ "classes partition the key space" Insn.num_keys total

let test_codeword_validation () =
  Alcotest.check_raises "bad op"
    (Invalid_argument "Insn.codeword: reserved opcode out of range") (fun () ->
      ignore (Insn.codeword ~op:4 ~p1:0 ~p2:0 ~p3:0 ~tag:0));
  Alcotest.check_raises "bad tag"
    (Invalid_argument "Insn.codeword: tag out of 11-bit range") (fun () ->
      ignore (Insn.codeword ~op:0 ~p1:0 ~p2:0 ~p3:0 ~tag:2048));
  Alcotest.check_raises "bad param"
    (Invalid_argument "Insn.codeword: p2 out of 5-bit range") (fun () ->
      ignore (Insn.codeword ~op:0 ~p1:0 ~p2:32 ~p3:0 ~tag:0))

(* --- encoding ------------------------------------------------------- *)

let sample_insns pc =
  [
    Insn.Rop (Opcode.Add, r1, r2, r3);
    Insn.Rop (Opcode.Cmplt, Reg.r 30, Reg.r 31, Reg.r 0);
    Insn.Ropi (Opcode.Srl, r1, 26, r2);
    Insn.Ropi (Opcode.Add, r1, -32768, r2);
    Insn.Lda (r1, 32767, r2);
    Insn.Lui (4096, r3);
    Insn.Mem (Opcode.Ldq, r1, 8, r2);
    Insn.Mem (Opcode.Stq, Reg.sp, -64, r2);
    Insn.Mem (Opcode.Ldbu, r1, 255, r2);
    Insn.Mem (Opcode.Stb, r1, 0, r2);
    Insn.Br (Opcode.Bne, r1, Insn.Abs (pc + 4 + 40));
    Insn.Br (Opcode.Beq, r1, Insn.Abs (pc + 4 - 120));
    Insn.Jmp (Insn.Abs 0x200000);
    Insn.Jal (Insn.Abs 0x104);
    Insn.Jr Reg.ra;
    Insn.Jalr (r1, r2);
    Insn.Dbr (Opcode.Bne, r1, 3);
    Insn.Djmp 7;
    Insn.codeword ~op:0 ~p1:1 ~p2:2 ~p3:3 ~tag:2047;
    Insn.codeword ~op:3 ~p1:31 ~p2:0 ~p3:15 ~tag:0;
    Insn.Nop;
    Insn.Halt;
  ]

let test_encode_roundtrip () =
  let pc = 0x100200 in
  List.iter
    (fun i ->
      let w = Encode.encode ~pc i in
      check bool_ "word in 32 bits" true (w >= 0 && w <= 0xFFFFFFFF);
      let i' = Encode.decode ~pc w in
      if not (Insn.equal i i') then
        Alcotest.failf "round-trip failed: %s -> %08x -> %s"
          (Insn.to_string i) w (Insn.to_string i'))
    (sample_insns pc)

let test_encode_rejects_dedicated () =
  let i = Insn.Rop (Opcode.Add, Reg.d 1, r2, r3) in
  check bool_ "dedicated not encodable" false (Encode.encodable i);
  (match Encode.encode ~pc:0 i with
  | exception Encode.Error _ -> ()
  | _ -> Alcotest.fail "expected Encode.Error");
  let lab = Insn.Jmp (Insn.Lab "foo") in
  check bool_ "label not encodable" false (Encode.encodable lab)

let test_encode_range_errors () =
  (match Encode.encode ~pc:0 (Insn.Ropi (Opcode.Add, r1, 40000, r2)) with
  | exception Encode.Error _ -> ()
  | _ -> Alcotest.fail "imm16 overflow not caught");
  match Encode.encode ~pc:0 (Insn.Br (Opcode.Beq, r1, Insn.Abs 0x1000000)) with
  | exception Encode.Error _ -> ()
  | _ -> Alcotest.fail "branch range overflow not caught"

(* Property: random instructions round-trip through encode/decode. *)
let arbitrary_insn =
  let open QCheck in
  let reg = Gen.map Reg.r (Gen.int_bound 31) in
  let imm16 = Gen.int_range (-32768) 32767 in
  let pc = 0x100000 in
  let gen =
    Gen.oneof
      [
        Gen.map3
          (fun op a (b, c) -> Insn.Rop (op, a, b, c))
          (Gen.oneofl Opcode.all_rops) reg (Gen.pair reg reg);
        Gen.map3
          (fun op a (v, c) -> Insn.Ropi (op, a, v, c))
          (Gen.oneofl Opcode.all_rops) reg (Gen.pair imm16 reg);
        Gen.map3 (fun a v c -> Insn.Lda (a, v, c)) reg imm16 reg;
        Gen.map2 (fun v c -> Insn.Lui (v, c)) imm16 reg;
        Gen.map3
          (fun op a (v, c) -> Insn.Mem (op, a, v, c))
          (Gen.oneofl Opcode.all_mops) reg (Gen.pair imm16 reg);
        Gen.map3
          (fun op r off -> Insn.Br (op, r, Insn.Abs (pc + 4 + (off * 2))))
          (Gen.oneofl Opcode.all_bops) reg imm16;
        Gen.map (fun t -> Insn.Jmp (Insn.Abs (t * 4))) (Gen.int_bound 0xFFFF);
        Gen.map (fun t -> Insn.Jal (Insn.Abs (t * 4))) (Gen.int_bound 0xFFFF);
        Gen.map (fun r -> Insn.Jr r) reg;
        Gen.map2 (fun a b -> Insn.Jalr (a, b)) reg reg;
        Gen.map2 (fun (op, r) off -> Insn.Dbr (op, r, off))
          (Gen.pair (Gen.oneofl Opcode.all_bops) reg)
          (Gen.int_bound 100);
        Gen.map
          (fun (op, (p1, (p2, (p3, tag)))) ->
            Insn.codeword ~op ~p1 ~p2 ~p3 ~tag)
          (Gen.pair (Gen.int_bound 3)
             (Gen.pair (Gen.int_bound 31)
                (Gen.pair (Gen.int_bound 31)
                   (Gen.pair (Gen.int_bound 31) (Gen.int_bound 2047)))));
        Gen.return Insn.Nop;
        Gen.return Insn.Halt;
      ]
  in
  make ~print:Insn.to_string gen

let prop_encode_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trip" ~count:500 arbitrary_insn
    (fun i ->
      let pc = 0x100000 in
      Insn.equal i (Encode.decode ~pc (Encode.encode ~pc i)))

let prop_asm_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip" ~count:500 arbitrary_insn
    (fun i ->
      (* Codewords print with a tag= suffix the assembler accepts;
         everything else prints in plain assembly. *)
      let s = Insn.to_string i in
      match Asm.parse_insn s with
      | i' -> Insn.equal i i'
      | exception Asm.Parse_error (_, msg) ->
        QCheck.Test.fail_reportf "parse of %S failed: %s" s msg)

(* --- assembler ------------------------------------------------------ *)

let test_asm_basic () =
  let p =
    Asm.parse
      {|
      ; a tiny function
      main:
        lda r1, 8(r2)
        srl r1, #26, r4
        ldq r5, 0(r1)
        xor r4, r6, r4
        bne r4, error
        jal helper   // call
        jr ra
      error:
        halt
      |}
  in
  check int_ "eight instructions" 8 (Program.size p);
  match Program.insns p with
  | Insn.Lda (base, 8, dst) :: Insn.Ropi (Opcode.Srl, _, 26, _) :: _ ->
    check bool_ "lda base" true (Reg.equal base r2);
    check bool_ "lda dst" true (Reg.equal dst r1)
  | _ -> Alcotest.fail "unexpected parse"

let test_asm_errors () =
  let bad s =
    match Asm.parse s with
    | exception Asm.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "frobnicate r1, r2";
  bad "add r1, r2";
  bad "ldq r1, r2";
  bad "beq r99, foo";
  bad "lda r1, 8(r2";
  bad "1bad: nop"

let test_asm_line_numbers () =
  match Asm.parse "nop\nnop\nbogus r1\n" with
  | exception Asm.Parse_error (3, _) -> ()
  | exception Asm.Parse_error (n, _) ->
    Alcotest.failf "wrong line number %d" n
  | _ -> Alcotest.fail "expected parse error"

(* --- layout --------------------------------------------------------- *)

let test_layout_resolves_labels () =
  let p =
    Asm.parse
      {|
      main:
        beq r1, skip
        nop
      skip:
        jmp main
        halt
      |}
  in
  let img = Program.layout ~base:0x1000 p in
  check int_ "4 instructions" 4 (Program.Image.length img);
  check int_ "text bytes" 16 (Program.Image.text_bytes img);
  check bool_ "main at base" true (Program.Image.symbol img "main" = Some 0x1000);
  check bool_ "skip resolved" true (Program.Image.symbol img "skip" = Some 0x1008);
  (match Program.Image.get img 0 with
  | Insn.Br (_, _, Insn.Abs a) -> check int_ "branch target" 0x1008 a
  | i -> Alcotest.failf "expected branch, got %s" (Insn.to_string i));
  match Program.Image.get img 2 with
  | Insn.Jmp (Insn.Abs a) -> check int_ "jump target" 0x1000 a
  | i -> Alcotest.failf "expected jump, got %s" (Insn.to_string i)

let test_layout_variable_sizes () =
  let cw = Insn.codeword ~op:0 ~p1:0 ~p2:0 ~p3:0 ~tag:1 in
  let p = [ Program.Ins Insn.Nop; Program.Ins cw; Program.Ins Insn.Halt ] in
  let size_of i = match i with Insn.Codeword _ -> 2 | _ -> 4 in
  let img = Program.layout ~base:0 ~size_of p in
  check int_ "compressed text bytes" 10 (Program.Image.text_bytes img);
  check int_ "addr of halt" 6 (Program.Image.addr_of_index img 2);
  check bool_ "fetch at 4 is codeword" true
    (Program.Image.fetch img 4 = Some cw);
  check bool_ "no insn at 5" true (Program.Image.fetch img 5 = None)

let test_layout_errors () =
  (match Program.layout [ Program.Ins (Insn.Jmp (Insn.Lab "nowhere")) ] with
  | exception Program.Layout_error _ -> ()
  | _ -> Alcotest.fail "undefined label not caught");
  match
    Program.layout [ Program.Label "a"; Program.Label "a"; Program.Ins Insn.Nop ]
  with
  | exception Program.Layout_error _ -> ()
  | _ -> Alcotest.fail "duplicate label not caught"

let test_builder () =
  let b = Program.Builder.create () in
  Program.Builder.label b "f";
  Program.Builder.ins b Insn.Nop;
  let l1 = Program.Builder.fresh_label b "loop" in
  let l2 = Program.Builder.fresh_label b "loop" in
  check bool_ "fresh labels distinct" true (l1 <> l2);
  Program.Builder.label b l1;
  Program.Builder.ins b (Insn.Jmp (Insn.Lab l1));
  let p = Program.Builder.to_program b in
  check int_ "two instructions" 2 (Program.size p);
  ignore (Program.layout p)

let test_encode_whole_workload () =
  (* Encode and decode a full generated program: the binary form is
     total over everything the generator can emit. *)
  let gen = Dise_workload.Codegen.generate ~dyn_target:10_000 Dise_workload.Profile.tiny in
  let img = Dise_workload.Codegen.layout gen in
  let words = Encode.encode_image img in
  check int_ "one word per instruction" (Program.Image.length img)
    (Array.length words);
  let back = Encode.decode_image ~base:(Program.Image.base img) words in
  Array.iteri
    (fun i insn ->
      if not (Insn.equal insn (Program.Image.get img i)) then
        Alcotest.failf "image round-trip failed at %d: %s vs %s" i
          (Insn.to_string (Program.Image.get img i))
          (Insn.to_string insn))
    back

let test_encode_image_rejects_halfword () =
  let cw = Insn.codeword ~op:0 ~p1:0 ~p2:0 ~p3:0 ~tag:1 in
  let img =
    Program.layout
      ~size_of:(function Insn.Codeword _ -> 2 | _ -> 4)
      [ Program.Ins cw; Program.Ins Insn.Halt ]
  in
  match Encode.encode_image img with
  | exception Encode.Error _ -> ()
  | _ -> Alcotest.fail "halfword layout must not binary-encode"

let test_disasm () =
  let p = Asm.parse "main:\n  jal f\n  halt\nf:\n  jr ra\n" in
  let img = Program.layout ~base:0x400 p in
  let text = Format.asprintf "%a" Disasm.pp_image img in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check bool_ "labels rendered" true (contains text "main:");
  check bool_ "call target symbolic" true (contains text "jal f");
  check string_ "insn_at" "jal f" (Disasm.insn_at img 0x400)

let suite =
  [
    ("reg basics", `Quick, test_reg_basics);
    ("reg strings", `Quick, test_reg_strings);
    ("reg range checks", `Quick, test_reg_range_checks);
    ("alu semantics", `Quick, test_alu_semantics);
    ("branch semantics", `Quick, test_branch_semantics);
    ("word helpers", `Quick, test_word_helpers);
    ("insn fields", `Quick, test_insn_fields);
    ("insn classes", `Quick, test_insn_classes);
    ("key/class consistency", `Quick, test_key_class_consistency);
    ("codeword validation", `Quick, test_codeword_validation);
    ("encode round-trip", `Quick, test_encode_roundtrip);
    ("encode rejects dedicated", `Quick, test_encode_rejects_dedicated);
    ("encode range errors", `Quick, test_encode_range_errors);
    QCheck_alcotest.to_alcotest prop_encode_roundtrip;
    QCheck_alcotest.to_alcotest prop_asm_roundtrip;
    ("asm basic", `Quick, test_asm_basic);
    ("asm errors", `Quick, test_asm_errors);
    ("asm line numbers", `Quick, test_asm_line_numbers);
    ("layout resolves labels", `Quick, test_layout_resolves_labels);
    ("layout variable sizes", `Quick, test_layout_variable_sizes);
    ("layout errors", `Quick, test_layout_errors);
    ("builder", `Quick, test_builder);
    ("encode whole workload", `Quick, test_encode_whole_workload);
    ("encode image rejects halfword", `Quick, test_encode_image_rejects_halfword);
    ("disasm", `Quick, test_disasm);
  ]
