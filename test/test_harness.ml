(* Tests for the experiment harness: the drivers, normalization,
   figure assembly, and report rendering — on miniature workloads so
   the suite stays fast. *)

open Dise_harness
module W = Dise_workload
module A = Dise_acf
module Config = Dise_uarch.Config
module Controller = Dise_core.Controller
module Stats = Dise_uarch.Stats

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let tiny_spec =
  { Experiment.default_spec with Experiment.dyn_target = 25_000 }

let tiny_entry () = W.Suite.get ~dyn_target:25_000 W.Profile.tiny

let test_baseline_runs () =
  let stats = Experiment.baseline tiny_spec (tiny_entry ()) in
  check bool_ "cycles positive" true (stats.Stats.cycles > 0);
  check int_ "no expansions" 0 stats.Stats.expansions

let test_mfi_dise_costs () =
  let e = tiny_entry () in
  let base = Experiment.baseline tiny_spec e in
  let d3 = Experiment.mfi_dise ~variant:A.Mfi.Dise3 tiny_spec e in
  let d4 = Experiment.mfi_dise ~variant:A.Mfi.Dise4 tiny_spec e in
  check bool_ "MFI slower than baseline" true
    (d3.Stats.cycles > base.Stats.cycles);
  check bool_ "DISE4 at least DISE3" true (d4.Stats.cycles >= d3.Stats.cycles);
  check bool_ "expansions happened" true (d3.Stats.expansions > 500);
  check bool_ "relative > 1" true
    (Experiment.relative d3 ~baseline:base > 1.0)

let test_mfi_rewrite_costs () =
  let e = tiny_entry () in
  let base = Experiment.baseline tiny_spec e in
  let rw = Experiment.mfi_rewrite tiny_spec e in
  check bool_ "rewriting slower than baseline" true
    (rw.Stats.cycles > base.Stats.cycles);
  check int_ "no DISE expansions under rewriting" 0 rw.Stats.expansions;
  check bool_ "more instructions retired" true
    (rw.Stats.retired > base.Stats.retired)

let test_compress_cached () =
  Experiment.clear_cache ();
  let e = tiny_entry () in
  let a = Experiment.compress_result ~scheme:A.Compress.full_dise e in
  let b = Experiment.compress_result ~scheme:A.Compress.full_dise e in
  check bool_ "cache returns same result" true (a == b);
  let c = Experiment.compress_result ~scheme:A.Compress.dedicated e in
  check bool_ "different scheme recompresses" true (a != c)

let test_decompress_run_clean () =
  let e = tiny_entry () in
  let stats =
    Experiment.decompress_run ~scheme:A.Compress.full_dise tiny_spec e
  in
  check bool_ "expansions happened" true (stats.Stats.expansions > 100)

let test_decompress_composed () =
  let e = tiny_entry () in
  let plain =
    Experiment.decompress_run ~scheme:A.Compress.full_dise tiny_spec e
  in
  let composed =
    Experiment.decompress_run ~scheme:A.Compress.full_dise ~mfi:`Composed
      tiny_spec e
  in
  check bool_ "composition adds work" true
    (composed.Stats.retired > plain.Stats.retired);
  check bool_ "composition costs cycles" true
    (composed.Stats.cycles > plain.Stats.cycles)

let test_decompress_rewritten () =
  let e = tiny_entry () in
  let stats =
    Experiment.decompress_run ~scheme:A.Compress.full_dise ~rewritten:true
      tiny_spec e
  in
  (* The rewritten binary carries the SFI checks as ordinary (possibly
     compressed) instructions. *)
  check bool_ "runs clean with checks inside" true (stats.Stats.cycles > 0)

let test_controller_spec_wired () =
  let e = tiny_entry () in
  let controller =
    { Controller.default_config with rt_entries = 4; rt_assoc = 1 }
  in
  let spec = { tiny_spec with Experiment.controller = Some controller } in
  let stats = Experiment.decompress_run ~scheme:A.Compress.full_dise spec e in
  check bool_ "tiny RT misses show up" true (stats.Stats.rt_misses > 10);
  check bool_ "stalls accounted" true (stats.Stats.dise_stall_cycles > 0)

let micro_opts =
  {
    Figures.dyn_target = 25_000;
    benchmarks = [ "bzip2"; "mcf" ];
    progress = ignore;
    jobs = 1;
    manifest = None;
  }

let test_fig6_top_structure () =
  let fig = Figures.fig6_top micro_opts in
  check int_ "five series" 5 (List.length fig.Figures.series);
  List.iter
    (fun (s : Figures.series) ->
      check int_ "two benchmarks per series" 2 (List.length s.Figures.values);
      List.iter
        (fun (_, v) ->
          if not (v > 0.9 && v < 10.) then
            Alcotest.failf "implausible normalized time %.3f in %s" v
              s.Figures.label)
        s.Figures.values)
    fig.Figures.series;
  (* DISE3 should beat rewriting on the geomean. *)
  let geo label =
    match
      List.find_opt (fun s -> s.Figures.label = label) fig.Figures.series
    with
    | Some s -> Report.geomean s
    | None -> Alcotest.failf "missing series %s" label
  in
  check bool_ "DISE3 beats rewriting" true (geo "DISE3" < geo "rewrite");
  check bool_ "DISE3 beats DISE4" true (geo "DISE3" <= geo "DISE4")

let test_fig7_ratio_structure () =
  let fig = Figures.fig7_ratio micro_opts in
  check int_ "twelve series (6 schemes x 2)" 12 (List.length fig.Figures.series);
  List.iter
    (fun (s : Figures.series) ->
      List.iter
        (fun (_, v) ->
          if not (v > 0.1 && v < 1.05) then
            Alcotest.failf "implausible ratio %.3f in %s" v s.Figures.label)
        s.Figures.values)
    fig.Figures.series

let test_figures_registry () =
  check int_ "eight panels" 8 (List.length Figures.all);
  check bool_ "lookup works" true (Figures.by_id "fig8-rt" <> None);
  check bool_ "unknown id rejected" true (Figures.by_id "fig9" = None)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_report_render_and_csv () =
  let fig =
    {
      Figures.id = "t";
      title = "T";
      ylabel = "y";
      series =
        [
          { Figures.label = "a"; values = [ ("x", 1.0); ("y", 2.0) ] };
          { Figures.label = "b"; values = [ ("x", 4.0); ("y", 1.0) ] };
        ];
      stacks = [];
    }
  in
  let text = Format.asprintf "%a" (Report.render ?cpi_stacks:None) fig in
  check bool_ "header present" true (contains text "a");
  check bool_ "geomean row" true (contains text "geomean");
  let csv = Report.to_csv fig in
  check bool_ "csv header" true (contains csv "benchmark,a,b");
  check bool_ "csv row" true (contains csv "x,1.0000,4.0000");
  (* to_csv must end with the same geomean row render prints:
     geomean(1,2) = sqrt 2, geomean(4,1) = 2. *)
  check bool_ "csv geomean row" true (contains csv "geomean,1.4142,2.0000");
  check bool_ "geomean value" true
    (abs_float (Report.geomean (List.hd fig.Figures.series) -. sqrt 2.) < 1e-9)

(* Timing panels must surface their per-cell statistics (the CPI-stack
   report columns); the rendered stack table and CSV must agree with
   the figure. *)
let test_report_cpi_stacks () =
  Experiment.clear_cache ();
  let fig = Figures.fig6_top micro_opts in
  check bool_ "stacks populated" true (List.length fig.Figures.stacks > 0);
  check int_ "one stack per timing cell" (5 * 2)
    (List.length fig.Figures.stacks);
  let text = Format.asprintf "%a" (Report.render ~cpi_stacks:true) fig in
  check bool_ "stack table rendered" true (contains text "CPI stack");
  check bool_ "bucket column present" true (contains text "rep_redirect");
  let csv = Report.cpi_to_csv fig in
  check bool_ "cpi csv header" true
    (contains csv "series,benchmark,cycles,base,icache");
  (* fig7-ratio is a static panel: no timing cells, no stacks. *)
  Experiment.clear_cache ();
  let ratio = Figures.fig7_ratio micro_opts in
  check int_ "ratio panel has no stacks" 0 (List.length ratio.Figures.stacks)

(* --- worker pool -------------------------------------------------------- *)

let test_pool_order_preserved () =
  let tasks = Array.init 37 (fun i () -> i * i) in
  List.iter
    (fun jobs ->
      let r = Pool.run ~jobs tasks in
      check int_ "result count" 37 (Array.length r);
      Array.iteri
        (fun i v ->
          check int_ (Printf.sprintf "slot %d (jobs=%d)" i jobs) (i * i) v)
        r)
    [ 1; 2; 4; 64 ]

let test_pool_jobs_clamped () =
  (* jobs <= 0 behaves like serial rather than erroring. *)
  let r = Pool.run ~jobs:0 [| (fun () -> 7) |] in
  check int_ "ran" 7 r.(0);
  let r = Pool.run ~jobs:(-3) [| (fun () -> 8); (fun () -> 9) |] in
  check int_ "ran 0" 8 r.(0);
  check int_ "ran 1" 9 r.(1)

exception Boom of int

let test_pool_exception_propagates () =
  List.iter
    (fun jobs ->
      let tasks =
        Array.init 8 (fun i () -> if i >= 5 then raise (Boom i) else i)
      in
      match Pool.run ~jobs tasks with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
        (* Lowest-indexed failure wins, independent of scheduling. *)
        check int_ (Printf.sprintf "lowest failure (jobs=%d)" jobs) 5 i)
    [ 1; 3 ]

let test_pool_empty_and_map_list () =
  check int_ "empty task array" 0 (Array.length (Pool.run ~jobs:4 [||]));
  check bool_ "map_list" true
    (Pool.map_list ~jobs:3 (fun x -> x + 1) [ 1; 2; 3 ] = [ 2; 3; 4 ])

(* The tentpole guarantee: a figure built on 4 worker domains renders
   bit-identically to the serial build. *)
let test_parallel_figures_deterministic () =
  Experiment.clear_cache ();
  let serial = Figures.fig6_top { Figures.quick_opts with Figures.jobs = 1 } in
  Experiment.clear_cache ();
  let parallel = Figures.fig6_top { Figures.quick_opts with Figures.jobs = 4 } in
  let render f = Format.asprintf "%a" (Report.render ?cpi_stacks:None) f in
  check Alcotest.string "rendered figures identical" (render serial)
    (render parallel);
  check Alcotest.string "csv identical" (Report.to_csv serial)
    (Report.to_csv parallel)

(* --- differential execution -------------------------------------------- *)

let tiny_image (e : W.Suite.entry) = e.W.Suite.image

let test_diffexec_mfi_stream_equivalent () =
  let e = tiny_entry () in
  let img = tiny_image e in
  let set = A.Mfi.productions_for img in
  let engine = Dise_core.Engine.create set in
  let right =
    Diffexec.side
      ~expander:(Dise_core.Engine.expander engine)
      ~init:(fun m ->
        A.Mfi.install m ~data_seg:W.Codegen.data_segment_id
          ~code_seg:W.Codegen.code_segment_id)
      img
  in
  match Diffexec.run ~left:(Diffexec.side img) ~right () with
  | Diffexec.Equivalent { left_steps; right_steps } ->
    check bool_ "right executed more (the checks)" true
      (right_steps > left_steps)
  | Diffexec.Diverged d ->
    Alcotest.failf "unexpected divergence: %s" d.Diffexec.reason

let test_diffexec_decompression_equivalent () =
  let e = tiny_entry () in
  let r = Experiment.compress_result ~scheme:A.Compress.full_dise e in
  let engine = Dise_core.Engine.create r.A.Compress.prodset in
  let right =
    Diffexec.side ~expander:(Dise_core.Engine.expander engine)
      r.A.Compress.image
  in
  (* Decompression reconstructs the whole stream: keep everything. *)
  match
    Diffexec.run
      ~keep:(fun _ -> true)
      ~left:(Diffexec.side (tiny_image e))
      ~right ()
  with
  | Diffexec.Equivalent _ -> ()
  | Diffexec.Diverged d ->
    Alcotest.failf "decompression diverged: %s (%s / %s)" d.Diffexec.reason
      (Option.value ~default:"-" d.Diffexec.left)
      (Option.value ~default:"-" d.Diffexec.right)

let test_diffexec_detects_corruption () =
  (* A deliberately broken "transformation": drop one instruction. *)
  let src = "main:\n add zero, #1, r1\n add r1, #2, r2\n add r2, #3, r3\n halt\n" in
  let ok = Dise_isa.Program.layout (Dise_isa.Asm.parse src) in
  let broken =
    Dise_isa.Program.layout
      (Dise_isa.Asm.parse "main:\n add zero, #1, r1\n add r2, #3, r3\n halt\n")
  in
  match
    Diffexec.run ~left:(Diffexec.side ok) ~right:(Diffexec.side broken) ()
  with
  | Diffexec.Diverged d ->
    check int_ "diverges at the dropped instruction" 1 d.Diffexec.position
  | Diffexec.Equivalent _ -> Alcotest.fail "corruption not detected"

let suite =
  [
    ("baseline runs", `Quick, test_baseline_runs);
    ("diffexec: MFI stream-equivalent", `Quick,
     test_diffexec_mfi_stream_equivalent);
    ("diffexec: decompression equivalent", `Quick,
     test_diffexec_decompression_equivalent);
    ("diffexec: detects corruption", `Quick, test_diffexec_detects_corruption);
    ("MFI DISE costs", `Quick, test_mfi_dise_costs);
    ("MFI rewrite costs", `Quick, test_mfi_rewrite_costs);
    ("compress cached", `Quick, test_compress_cached);
    ("decompress run clean", `Quick, test_decompress_run_clean);
    ("decompress composed", `Quick, test_decompress_composed);
    ("decompress rewritten", `Quick, test_decompress_rewritten);
    ("controller spec wired", `Quick, test_controller_spec_wired);
    ("pool preserves order", `Quick, test_pool_order_preserved);
    ("pool clamps jobs", `Quick, test_pool_jobs_clamped);
    ("pool propagates exceptions", `Quick, test_pool_exception_propagates);
    ("pool empty and map_list", `Quick, test_pool_empty_and_map_list);
    ("parallel figures deterministic", `Slow,
     test_parallel_figures_deterministic);
    ("fig6-top structure", `Slow, test_fig6_top_structure);
    ("fig7-ratio structure", `Slow, test_fig7_ratio_structure);
    ("figures registry", `Quick, test_figures_registry);
    ("report render and csv", `Quick, test_report_render_and_csv);
    ("report cpi stacks", `Slow, test_report_cpi_stacks);
  ]
