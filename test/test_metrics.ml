(* Metrics core, trajectory records, trace drop accounting, and the
   conformance suite — the observability layer's own tests. *)

module Metrics = Dise_telemetry.Metrics
module Json = Dise_telemetry.Json
module Json_schema = Dise_telemetry.Json_schema
module Manifest = Dise_telemetry.Manifest
module Trace = Dise_telemetry.Trace
module Trajectory = Dise_telemetry.Trajectory
module Server = Dise_service.Server
module Conformance = Dise_fuzz.Conformance

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_schema name = Json.parse (read_file ("../doc/schema/" ^ name))

let assert_valid ~schema doc =
  match Json_schema.validate ~schema doc with
  | [] -> ()
  | errs ->
    Alcotest.failf "schema violation: %a"
      (Format.pp_print_list Json_schema.pp_error)
      errs

(* --- bucket layout ------------------------------------------------------- *)

let test_bucket_layout () =
  (* Every value lands in a bucket whose bounds contain it, and the
     bounds tile the line without gaps. *)
  List.iter
    (fun v ->
      let i = Metrics.Histogram.bucket_index v in
      let lo, hi = Metrics.Histogram.bucket_bounds i in
      if not (lo <= v && v < hi) then
        Alcotest.failf "value %d outside its bucket [%d, %d)" v lo hi)
    [ 0; 1; 7; 8; 9; 15; 16; 100; 1023; 1024; 999_983; max_int / 2 ];
  let rec tile i =
    if i < 479 then begin
      let _, hi = Metrics.Histogram.bucket_bounds i in
      let lo', _ = Metrics.Histogram.bucket_bounds (i + 1) in
      check int_ (Printf.sprintf "buckets %d/%d adjacent" i (i + 1)) hi lo';
      tile (i + 1)
    end
  in
  tile 0

(* --- quantile error bound (QCheck) --------------------------------------- *)

(* The estimator returns the inclusive upper bound of the bucket that
   holds the exact order statistic, so estimate and exact value share
   a bucket: the absolute error is below one bucket width, which the
   log-linear layout caps at a 12.5% relative error for values >= 8. *)
let quantile_prop samples =
  let h =
    Metrics.Histogram.make
      (Printf.sprintf "test_qprop_%d" (Hashtbl.hash samples))
  in
  let since = Metrics.Histogram.snapshot h in
  List.iter (Metrics.Histogram.observe h) samples;
  let s = Metrics.Histogram.delta ~since (Metrics.Histogram.snapshot h) in
  let sorted = Array.of_list (List.sort compare samples) in
  let n = Array.length sorted in
  List.for_all
    (fun q ->
      let rank =
        let r = int_of_float (ceil (q *. float_of_int n)) in
        max 1 (min n r)
      in
      let exact = sorted.(rank - 1) in
      let est = Metrics.Histogram.quantile s q in
      let bi = Metrics.Histogram.bucket_index exact in
      let lo, hi = Metrics.Histogram.bucket_bounds bi in
      Metrics.Histogram.bucket_index est = bi
      && est >= exact
      && est - exact < hi - lo
      && (exact < 8 || float_of_int (est - exact) <= 0.125 *. float_of_int exact))
    [ 0.50; 0.95; 0.99 ]

let quantile_qcheck =
  QCheck.Test.make ~name:"histogram quantiles within bucket resolution"
    ~count:200
    QCheck.(list_of_size Gen.(1 -- 400) (int_range 0 2_000_000))
    (fun samples -> samples = [] || quantile_prop samples)

(* --- exact-sum invariant ------------------------------------------------- *)

let invariant_qcheck =
  QCheck.Test.make ~name:"histogram exact-sum invariant" ~count:100
    QCheck.(list_of_size Gen.(0 -- 300) (int_range 0 10_000_000))
    (fun samples ->
      let h =
        Metrics.Histogram.make
          (Printf.sprintf "test_inv_%d" (Hashtbl.hash samples))
      in
      let since = Metrics.Histogram.snapshot h in
      List.iter (Metrics.Histogram.observe h) samples;
      let s = Metrics.Histogram.delta ~since (Metrics.Histogram.snapshot h) in
      Metrics.Histogram.invariant s = Ok ()
      && s.Metrics.Histogram.count = List.length samples
      && s.Metrics.Histogram.sum = List.fold_left ( + ) 0 samples)

(* --- registry ------------------------------------------------------------ *)

let test_registry () =
  let c1 = Metrics.Counter.make "test_reg_counter" in
  let c2 = Metrics.Counter.make "test_reg_counter" in
  Metrics.Counter.incr c1;
  check int_ "same name, same counter" 1 (Metrics.Counter.get c2);
  (match Metrics.Histogram.make "test_reg_counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash must raise");
  check bool_ "find_counter sees it" true
    (Metrics.find_counter "test_reg_counter" <> None);
  let snap = Metrics.snapshot () in
  check bool_ "registry snapshot carries it" true
    (List.mem_assoc "test_reg_counter" snap.Metrics.counters)

let test_disabled_gate () =
  let c = Metrics.Counter.make "test_gate_counter" in
  let h = Metrics.Histogram.make "test_gate_hist" in
  let v0 = Metrics.Counter.get c and n0 = Metrics.Histogram.count h in
  Metrics.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled true)
    (fun () ->
      Metrics.Counter.incr c;
      Metrics.Histogram.observe h 42;
      check int_ "counter frozen when disabled" v0 (Metrics.Counter.get c);
      check int_ "histogram frozen when disabled" n0
        (Metrics.Histogram.count h));
  Metrics.Counter.incr c;
  check int_ "counter live again" (v0 + 1) (Metrics.Counter.get c)

let test_delta () =
  let h = Metrics.Histogram.make "test_delta_hist" in
  List.iter (Metrics.Histogram.observe h) [ 5; 100; 1000 ];
  let since = Metrics.Histogram.snapshot h in
  List.iter (Metrics.Histogram.observe h) [ 5; 7_000_000 ];
  let d = Metrics.Histogram.delta ~since (Metrics.Histogram.snapshot h) in
  check int_ "delta count" 2 d.Metrics.Histogram.count;
  check int_ "delta sum" (5 + 7_000_000) d.Metrics.Histogram.sum;
  check bool_ "delta invariant" true
    (Metrics.Histogram.invariant d = Ok ())

(* Pin the histogram edge cases around emptiness and [reset_all]: a
   quantile of nothing is 0 (not a trap), a post-reset snapshot is
   empty again, and a delta taken {e across} a reset yields a
   negative count with no buckets — well-defined garbage the
   [invariant] checker flags, rather than an exception. The serve
   tier's monitor takes deltas on a timer, so a concurrent reset must
   never crash it. *)
let test_histogram_empty_and_reset_edges () =
  let h = Metrics.Histogram.make "test_edge_hist" in
  let empty =
    Metrics.Histogram.delta
      ~since:(Metrics.Histogram.snapshot h)
      (Metrics.Histogram.snapshot h)
  in
  check int_ "empty count" 0 empty.Metrics.Histogram.count;
  List.iter
    (fun q ->
      check int_
        (Printf.sprintf "quantile %.2f of an empty histogram is 0" q)
        0
        (Metrics.Histogram.quantile empty q))
    [ 0.5; 0.9; 0.99; 1.0 ];
  check bool_ "empty snapshot satisfies the invariant" true
    (Metrics.Histogram.invariant empty = Ok ());
  (* observe, snapshot, reset: the pre-reset snapshot keeps its data,
     a fresh snapshot is empty, and quantiles on it are 0 again *)
  List.iter (Metrics.Histogram.observe h) [ 10; 200; 3000 ];
  let before = Metrics.Histogram.snapshot h in
  check int_ "pre-reset snapshot sees the observations" 3
    before.Metrics.Histogram.count;
  Metrics.reset_all ();
  let after = Metrics.Histogram.snapshot h in
  check int_ "reset empties the histogram" 0 after.Metrics.Histogram.count;
  check int_ "quantile right after reset is 0" 0
    (Metrics.Histogram.quantile after 0.99);
  check bool_ "immutable pre-reset snapshot survives the reset" true
    (before.Metrics.Histogram.count = 3);
  (* a delta spanning the reset must not trap: count goes negative,
     no bucket survives the subtraction, and the invariant reports
     the inconsistency instead of raising *)
  let across = Metrics.Histogram.delta ~since:before after in
  check int_ "delta across a reset has a negative count" (-3)
    across.Metrics.Histogram.count;
  check int_ "no buckets survive the subtraction" 0
    (Array.length across.Metrics.Histogram.buckets);
  check int_ "quantile of a negative-count delta is 0" 0
    (Metrics.Histogram.quantile across 0.5);
  (match Metrics.Histogram.invariant across with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cross-reset delta passed the invariant")

let test_metrics_schema () =
  let schema = load_schema "metrics.schema.json" in
  let h = Metrics.Histogram.make "test_schema_hist" in
  List.iter (Metrics.Histogram.observe h) [ 3; 17; 90_000 ];
  ignore (Metrics.Counter.make "test_schema_counter");
  assert_valid ~schema (Metrics.to_json (Metrics.snapshot ()))

(* --- serve_summary carries quantiles ------------------------------------- *)

let test_serve_summary_metrics () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dise-metrics-test-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let inp = Filename.concat dir "in.jsonl" in
  let outp = Filename.concat dir "out.jsonl" in
  let oc = open_out inp in
  output_string oc
    "{\"id\":1,\"bench\":\"tiny\",\"dyn_target\":20000}\n\
     {\"id\":2,\"bench\":\"tiny\",\"dyn_target\":21000}\n";
  close_out oc;
  let mbuf = Buffer.create 4096 in
  let manifest = Manifest.to_buffer mbuf in
  let ic = open_in inp and oc = open_out outp in
  let _summary =
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        close_out_noerr oc)
      (fun () ->
        Server.serve_channel
          (Server.session ~manifest
             (Dise_service.Serve_config.of_flags ~jobs:2 ~queue:2 ()))
          ic oc)
  in
  Sys.remove inp;
  Sys.remove outp;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let records =
    String.split_on_char '\n' (Buffer.contents mbuf)
    |> List.filter (fun l -> l <> "")
    |> List.map Json.parse
  in
  let summary =
    match
      List.find_opt
        (fun r -> Json.member "record" r = Some (Json.String "serve_summary"))
        records
    with
    | Some r -> r
    | None -> Alcotest.fail "no serve_summary record in manifest"
  in
  let metrics =
    match Json.member "metrics" summary with
    | Some m -> m
    | None -> Alcotest.fail "serve_summary lacks a metrics member"
  in
  assert_valid ~schema:(load_schema "metrics.schema.json") metrics;
  match Json.member "histograms" metrics with
  | Some (Json.Obj hs) -> (
    match List.assoc_opt "serve_request_ns" hs with
    | Some h ->
      let geti k =
        match Json.member k h with Some (Json.Int i) -> i | _ -> -1
      in
      (* Per-session delta: exactly this stream's two requests. *)
      check int_ "request histogram counts this session" 2 (geti "count");
      check bool_ "p50 <= p95 <= p99" true
        (geti "p50" <= geti "p95" && geti "p95" <= geti "p99");
      check bool_ "p50 positive" true (geti "p50" > 0)
    | None -> Alcotest.fail "metrics lack serve_request_ns histogram")
  | _ -> Alcotest.fail "metrics lack histograms"

(* --- trace drop accounting ------------------------------------------------ *)

let test_trace_dropped () =
  let buf = Buffer.create 1024 in
  let tr = Trace.to_buffer ~max_events:3 buf in
  for i = 1 to 10 do
    Trace.instant tr ~name:"e" ~cat:"t" ~ts:i ~tid:0 ~args:[]
  done;
  check int_ "emitted capped" 3 (Trace.emitted tr);
  check int_ "dropped exact" 7 (Trace.dropped tr);
  check bool_ "truncated" true (Trace.truncated tr);
  Trace.close tr;
  (* The file stays parseable and the marker carries the count. *)
  match Json.parse (Buffer.contents buf) with
  | Json.List events ->
    let marker =
      List.find_opt
        (fun e ->
          match Json.member "args" e with
          | Some args -> Json.member "dropped" args = Some (Json.Int 7)
          | None -> false)
        events
    in
    check bool_ "truncation marker records the drop count" true
      (marker <> None)
  | _ -> Alcotest.fail "trace is not a JSON array"

(* --- trajectory records --------------------------------------------------- *)

let sample_record ts wall =
  {
    Trajectory.tool = "conformance";
    suite = "quick";
    ts;
    commit = "deadbeef";
    cells = 32;
    passed = 32;
    wall_s = wall;
    p50_ns = 1000;
    p95_ns = 5000;
    p99_ns = 9000;
    extra = [ ("vectors", Json.Int 8) ];
  }

let test_trajectory () =
  let schema = load_schema "trajectory.schema.json" in
  let r = sample_record 1_700_000_000 1.5 in
  let doc = Trajectory.to_json r in
  assert_valid ~schema doc;
  (match Trajectory.of_json doc with
  | Some r' ->
    check string_ "tool roundtrips" r.Trajectory.tool r'.Trajectory.tool;
    check int_ "cells roundtrip" r.Trajectory.cells r'.Trajectory.cells;
    check bool_ "extra survives" true
      (List.assoc_opt "vectors" r'.Trajectory.extra = Some (Json.Int 8))
  | None -> Alcotest.fail "of_json rejected its own to_json");
  let jsonl =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dise-traj-%d.jsonl" (Unix.getpid ()))
  in
  if Sys.file_exists jsonl then Sys.remove jsonl;
  Fun.protect
    ~finally:(fun () -> try Sys.remove jsonl with Sys_error _ -> ())
    (fun () ->
      Trajectory.append ~jsonl r;
      Trajectory.append ~jsonl (sample_record 1_700_000_100 2.0);
      match Trajectory.last ~jsonl ~tool:"conformance" ~suite:"quick" with
      | None -> Alcotest.fail "last found nothing"
      | Some prev ->
        check int_ "last record wins" 1_700_000_100 prev.Trajectory.ts;
        check bool_ "within budget passes" true
          (Trajectory.check_regression ~prev (sample_record 0 2.3) = Ok ());
        check bool_ ">20% wall regression fails" true
          (Trajectory.check_regression ~prev (sample_record 0 2.5) <> Ok ());
        let worse = { (sample_record 0 2.0) with Trajectory.passed = 31 } in
        check bool_ "pass-rate drop fails" true
          (Trajectory.check_regression ~prev worse <> Ok ()))

(* --- the conformance suite, in-process ------------------------------------ *)

let test_conformance_quick () =
  let vectors =
    match Conformance.load_suite ~dir:"arch" with
    | Ok vs -> vs
    | Error d -> Alcotest.failf "load_suite: %s" (Dise_isa.Diag.to_string d)
  in
  check bool_ "suite has vectors" true (List.length vectors >= 8);
  List.iter
    (fun v ->
      check bool_
        (Printf.sprintf "vector %s has a recorded signature"
           v.Conformance.name)
        true
        (v.Conformance.signature <> ""))
    vectors;
  let report = Conformance.run_suite ~dir:"arch" vectors in
  let total = List.length report.Conformance.cells in
  check int_ "4 backends per vector" (4 * List.length vectors) total;
  List.iter
    (fun c ->
      if not c.Conformance.pass then
        Alcotest.failf "cell %s/%s failed: signature %S, expected %S%s"
          c.Conformance.vector c.Conformance.backend c.Conformance.signature
          c.Conformance.expected
          (match c.Conformance.error with
          | Some e -> " (" ^ e ^ ")"
          | None -> ""))
    report.Conformance.cells;
  check int_ "all cells pass" total report.Conformance.passed;
  (* Rendering stays well-formed. *)
  let csv = Conformance.csv_of_report report in
  check bool_ "csv has header + rows" true
    (List.length (String.split_on_char '\n' csv) > total);
  let html = Conformance.html_of_report report in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  check bool_ "html mentions every backend" true
    (List.for_all (contains html) Conformance.backends)

let suite =
  [
    Alcotest.test_case "bucket layout" `Quick test_bucket_layout;
    QCheck_alcotest.to_alcotest quantile_qcheck;
    QCheck_alcotest.to_alcotest invariant_qcheck;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "disabled gate" `Quick test_disabled_gate;
    Alcotest.test_case "histogram delta" `Quick test_delta;
    Alcotest.test_case "empty/reset histogram edges" `Quick
      test_histogram_empty_and_reset_edges;
    Alcotest.test_case "metrics schema" `Quick test_metrics_schema;
    Alcotest.test_case "serve_summary metrics" `Quick
      test_serve_summary_metrics;
    Alcotest.test_case "trace dropped count" `Quick test_trace_dropped;
    Alcotest.test_case "trajectory records" `Quick test_trajectory;
    Alcotest.test_case "conformance quick suite" `Quick
      test_conformance_quick;
  ]
