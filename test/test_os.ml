(* Tests for the safety analyzer and the OS virtualization layer. *)

open Dise_isa
open Dise_core
module Machine = Dise_machine.Machine
module Regfile = Dise_machine.Regfile
module Memory = Dise_machine.Memory
module W = Dise_workload
module A = Dise_acf

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* --- safety ----------------------------------------------------------- *)

let parse s = Lang.parse s

let has_error fs = Safety.errors fs <> []
let has_warning fs =
  List.exists (fun f -> f.Safety.severity = Safety.Warning) fs

let test_safety_clean_mfi () =
  let set =
    Prodset.resolve_labels (fun _ -> Some 0x9000)
      (parse
         {|
         P1: T.OPCLASS == store -> R1
         R1: srl T.RS, #26, $dr1
             xor $dr1, $dr2, $dr1
             bne $dr1, __error
             T.INSN
         |})
  in
  check bool_ "MFI passes inspection" false (has_error (Safety.check set))

let test_safety_unbound_sequence () =
  let set =
    Prodset.add_production Prodset.empty
      (Production.make Pattern.loads (Production.Direct 7))
  in
  check bool_ "unbound sequence is an error" true
    (has_error (Safety.check set))

let test_safety_empty_sequence () =
  let set =
    Prodset.add Prodset.empty
      (Production.make Pattern.loads (Production.Direct 1))
      [||]
  in
  check bool_ "empty sequence is an error" true (has_error (Safety.check set))

let test_safety_params_on_transparent () =
  (* T.P1 under a loads pattern can never instantiate. *)
  let set =
    parse {|
    P1: T.OPCLASS == load -> R1
    R1: lda T.P1, 0(T.P1)
        T.INSN
    |}
  in
  check bool_ "params on non-codeword pattern rejected" true
    (has_error (Safety.check set))

let test_safety_params_on_codeword_ok () =
  let set =
    parse {|
    P1: T.OP == cw0 -> TAG
    R1: lda T.P1, #T.P2(T.P1)
    |}
  in
  check bool_ "params on codeword pattern fine" false
    (has_error (Safety.check set))

let test_safety_missing_field () =
  (* T.IMM under a pattern matching register-form ALU (no immediate). *)
  let set =
    parse {|
    P1: T.OP == add -> R1
    R1: lda $dr1, #T.IMM($dr2)
        T.INSN
    |}
  in
  check bool_ "T.IMM on imm-less opcode is an error" true
    (has_error (Safety.check set));
  (* Under a whole-class pattern it is only a warning (some ALU forms
     carry immediates). *)
  let set2 =
    parse {|
    P1: T.OPCLASS == alu -> R1
    R1: lda $dr1, #T.IMM($dr2)
        T.INSN
    |}
  in
  let fs = Safety.check set2 in
  check bool_ "not a hard error" false (has_error fs);
  check bool_ "but a warning" true (has_warning fs)

let test_safety_reserved_registers () =
  let set =
    parse {|
    P1: T.OPCLASS == store -> R1
    R1: lda $dr2, 0($dr2)
        T.INSN
    |}
  in
  check bool_ "writing $dr2 rejected when reserved" true
    (has_error (Safety.check ~reserved_dedicated:[ 2 ] set));
  check bool_ "fine when not reserved" false
    (has_error (Safety.check ~reserved_dedicated:[ 4 ] set))

let test_safety_internal_control_range () =
  let set =
    Prodset.add Prodset.empty
      (Production.make Pattern.loads (Production.Direct 1))
      [| Replacement.Djmp 5; Replacement.Trigger |]
  in
  check bool_ "DISE jump out of sequence rejected" true
    (has_error (Safety.check set))

let test_safety_halt_policy () =
  let set =
    parse {|
    P1: T.OPCLASS == store -> R1
    R1: halt
    |}
  in
  check bool_ "halt flagged by default" true (has_warning (Safety.check set));
  check bool_ "allowed when opted in" false
    (has_warning (Safety.check ~allow_halt:true set))

(* --- osvirt ------------------------------------------------------------ *)

let small_image label exit_code =
  Program.layout
    (Asm.parse
       (Printf.sprintf
          {|
          main:
            lui #1024, r1
            add zero, #200, r4
          loop_%s:
            mul r4, r4, r5
            stq r5, 0(r1)
            add r4, #-1, r4
            bgt r4, loop_%s
            add zero, #%d, r2
            halt
          |}
          label label exit_code))

let mfi_set img =
  Prodset.resolve_labels
    (fun l -> if l = "__error" then Some (Program.Image.end_addr img) else None)
    (parse
       {|
       P1: T.OPCLASS == store -> R4100
       R4100: srl T.RS, #26, $dr1
              xor $dr1, $dr2, $dr1
              bne $dr1, 0x9000
              T.INSN
       |})

let counting_acf rsid =
  Prodset.add Prodset.empty
    (Production.make ~name:"count" Pattern.stores (Production.Direct rsid))
    [| Replacement.Lda (Replacement.Rlit (Reg.d 5), Replacement.Ilit 1,
                        Replacement.Rlit (Reg.d 5));
       Replacement.Trigger |]

let test_osvirt_runs_two_processes () =
  let os = Osvirt.create () in
  let a = Osvirt.spawn os ~name:"a" (small_image "a" 11) in
  let b = Osvirt.spawn os ~name:"b" (small_image "b" 22) in
  Osvirt.round_robin ~slice:100 os;
  check int_ "a finished" 11 (Machine.exit_code (Osvirt.machine os a));
  check int_ "b finished" 22 (Machine.exit_code (Osvirt.machine os b));
  check bool_ "interleaved (several switches)" true (Osvirt.switches os > 4);
  check bool_ "no live processes" true (Osvirt.live os = [])

let test_osvirt_per_process_acfs_isolated () =
  (* Both processes store 200 times; only the one with the counting ACF
     sees its $dr5 grow, and their counters do not bleed into each
     other through the shared hardware registers. *)
  let os = Osvirt.create () in
  let a =
    Osvirt.spawn os ~name:"a" ~acf:(counting_acf 100) (small_image "a" 0)
  in
  let b = Osvirt.spawn os ~name:"b" (small_image "b" 0) in
  Osvirt.round_robin ~slice:37 os;
  let dr5 m = Regfile.get (Machine.regs m) (Reg.d 5) in
  check int_ "a counted its stores" 200 (dr5 (Osvirt.machine os a));
  check int_ "b unaffected" 0 (dr5 (Osvirt.machine os b))

let test_osvirt_kernel_acf_applies_to_all () =
  let img_a = small_image "a" 0 and img_b = small_image "b" 0 in
  let os = Osvirt.create () in
  let a = Osvirt.spawn os ~name:"a" img_a in
  Osvirt.install_kernel_acf os ~name:"mfi" ~regs:[ (2, 1) ] (mfi_set img_a);
  let b = Osvirt.spawn os ~name:"b" img_b in
  Osvirt.round_robin ~slice:50 os;
  (* Both ran cleanly under the kernel MFI (legal segment installed),
     and both machines performed expansions. *)
  check int_ "a clean" 0 (Machine.exit_code (Osvirt.machine os a));
  check int_ "b clean" 0 (Machine.exit_code (Osvirt.machine os b));
  check bool_ "a expanded" true (Machine.expansions (Osvirt.machine os a) > 100);
  check bool_ "b expanded" true (Machine.expansions (Osvirt.machine os b) > 100)

let test_osvirt_rejects_unsafe_user_acf () =
  let os = Osvirt.create () in
  let evil =
    parse {|
    P1: T.OPCLASS == store -> R9
    R9: lda $dr2, 7($dr2)
        T.INSN
    |}
  in
  match Osvirt.spawn os ~name:"evil" ~acf:evil (small_image "e" 0) with
  | exception Osvirt.Rejected fs ->
    check bool_ "findings reported" true (fs <> [])
  | _ -> Alcotest.fail "unsafe ACF must be rejected"

let test_osvirt_kernel_may_own_reserved () =
  let img = small_image "k" 0 in
  let os = Osvirt.create () in
  (* The kernel MFI writes nothing reserved, but even a kernel ACF
     updating $dr2 must be admitted. *)
  let updater =
    parse {|
    P1: T.OPCLASS == load -> R4101
    R4101: lda $dr2, 0($dr2)
           T.INSN
    |}
  in
  Osvirt.install_kernel_acf os ~name:"seg-updater" updater;
  ignore (Osvirt.spawn os ~name:"p" img)

let test_osvirt_switch_invalidates_rt () =
  let os =
    Osvirt.create ~controller_cfg:Controller.default_config ()
  in
  let a = Osvirt.spawn os ~name:"a" (small_image "a" 0) in
  let b = Osvirt.spawn os ~name:"b" (small_image "b" 0) in
  ignore (Osvirt.run_slice os a ~steps:50);
  ignore (Osvirt.run_slice os b ~steps:50);
  ignore (Osvirt.run_slice os a ~steps:50);
  check bool_ "switches recorded" true (Osvirt.switches os >= 3);
  ignore (Osvirt.controller os)

let test_osvirt_dregs_saved_restored () =
  (* Process a's ACF accumulates in $dr5; interleave with b whose ACF
     also uses $dr5 with a different count. Each must keep its own. *)
  let os = Osvirt.create () in
  let a =
    Osvirt.spawn os ~name:"a" ~acf:(counting_acf 100)
      ~dise_regs:[ (5, 1000) ] (small_image "a" 0)
  in
  let b =
    Osvirt.spawn os ~name:"b" ~acf:(counting_acf 101)
      ~dise_regs:[ (5, 5000) ] (small_image "b" 0)
  in
  Osvirt.round_robin ~slice:23 os;
  let dr5 p = Regfile.get (Machine.regs (Osvirt.machine os p)) (Reg.d 5) in
  check int_ "a's counter correct" 1200 (dr5 a);
  check int_ "b's counter correct" 5200 (dr5 b)

let test_osvirt_run_slice_halted () =
  let os = Osvirt.create () in
  let p = Osvirt.spawn os ~name:"p" (small_image "p" 9) in
  (match Osvirt.run_slice os p ~steps:1_000_000 with
  | `Halted -> ()
  | `Ran n -> Alcotest.failf "should have halted, ran %d" n);
  check bool_ "not live anymore" true (not (List.mem p (Osvirt.live os)));
  match Osvirt.run_slice os p ~steps:10 with
  | `Halted -> ()
  | `Ran _ -> Alcotest.fail "halted process must stay halted"

let suite =
  [
    ("safety: clean MFI", `Quick, test_safety_clean_mfi);
    ("osvirt: run_slice halts", `Quick, test_osvirt_run_slice_halted);
    ("safety: unbound sequence", `Quick, test_safety_unbound_sequence);
    ("safety: empty sequence", `Quick, test_safety_empty_sequence);
    ("safety: params on transparent", `Quick, test_safety_params_on_transparent);
    ("safety: params on codeword ok", `Quick, test_safety_params_on_codeword_ok);
    ("safety: missing field", `Quick, test_safety_missing_field);
    ("safety: reserved registers", `Quick, test_safety_reserved_registers);
    ("safety: internal control range", `Quick,
     test_safety_internal_control_range);
    ("safety: halt policy", `Quick, test_safety_halt_policy);
    ("osvirt: two processes", `Quick, test_osvirt_runs_two_processes);
    ("osvirt: per-process ACFs isolated", `Quick,
     test_osvirt_per_process_acfs_isolated);
    ("osvirt: kernel ACF applies to all", `Quick,
     test_osvirt_kernel_acf_applies_to_all);
    ("osvirt: rejects unsafe user ACF", `Quick,
     test_osvirt_rejects_unsafe_user_acf);
    ("osvirt: kernel may own reserved", `Quick,
     test_osvirt_kernel_may_own_reserved);
    ("osvirt: switch invalidates RT", `Quick, test_osvirt_switch_invalidates_rt);
    ("osvirt: dedicated registers saved/restored", `Quick,
     test_osvirt_dregs_saved_restored);
  ]
