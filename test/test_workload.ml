(* Tests for the synthetic workload generator: determinism, validity
   (programs assemble, run, and halt cleanly), memory safety (all
   accesses inside the data segment), and profile knobs having the
   intended large-scale effects. *)

open Dise_isa
open Dise_workload
module Machine = Dise_machine.Machine

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check int_ "same stream" (Rng.next a) (Rng.next b)
  done;
  let c = Rng.create 43 in
  check bool_ "different seed differs" true (Rng.next a <> Rng.next c)

let test_rng_ranges () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of range: %d" v;
    let w = Rng.range r (-5) 5 in
    if w < -5 || w > 5 then Alcotest.failf "range out of range: %d" w;
    let f = Rng.float r in
    if f < 0. || f >= 1. then Alcotest.failf "float out of range: %f" f
  done

let test_rng_weighted () =
  let r = Rng.create 11 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.weighted r [ (1.0, `A); (3.0, `B) ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let a = Option.value ~default:0 (Hashtbl.find_opt counts `A) in
  let b = Option.value ~default:0 (Hashtbl.find_opt counts `B) in
  check bool_ "weighting respected (roughly 1:3)" true
    (b > 2 * a && a > 1000)

let test_profiles_complete () =
  check int_ "twelve benchmarks" 12 (List.length Profile.spec2000);
  check bool_ "names unique" true
    (List.length (List.sort_uniq compare Profile.names) = 12);
  check bool_ "find works" true (Profile.find "mcf" <> None);
  check bool_ "find fails gracefully" true (Profile.find "nope" = None)

let test_generate_deterministic () =
  let a = Codegen.generate ~dyn_target:50_000 Profile.tiny in
  let b = Codegen.generate ~dyn_target:50_000 Profile.tiny in
  check bool_ "same program for same profile" true (a.Codegen.program = b.Codegen.program)

let test_generated_program_runs () =
  let g = Codegen.generate ~dyn_target:50_000 Profile.tiny in
  let img = Codegen.layout g in
  check bool_ "error label present" true
    (Program.Image.symbol img Codegen.error_label <> None);
  let m = Machine.create img in
  let steps = Machine.run ~max_steps:2_000_000 m in
  check bool_ "halted" true (Machine.halted m);
  check int_ "clean exit" 0 (Machine.exit_code m);
  (* Dynamic length should be in the ballpark of the target. *)
  check bool_ "dynamic length near target" true
    (steps > 25_000 && steps < 150_000)

let test_memory_safety () =
  (* Every load/store address must fall in the data segment. *)
  let g = Codegen.generate ~dyn_target:30_000 Profile.tiny in
  let img = Codegen.layout g in
  let m = Machine.create img in
  let bad = ref 0 in
  ignore
    (Machine.run_events ~max_steps:2_000_000 m (fun ev ->
         match ev.Machine.Event.mem_addr with
         | Some a ->
           if a lsr 26 <> Codegen.data_segment_id then incr bad
         | None -> ()));
  check int_ "no out-of-segment accesses" 0 !bad

let test_reserved_registers_untouched () =
  (* r23..r25 are reserved for rewriter scavenging; generated code must
     not define them. *)
  let g = Codegen.generate ~dyn_target:30_000 (List.nth Profile.spec2000 0) in
  List.iter
    (fun insn ->
      List.iter
        (fun r ->
          match r with
          | Reg.R n when n >= 23 && n <= 25 ->
            Alcotest.failf "reserved register r%d written by %s" n
              (Insn.to_string insn)
          | _ -> ())
        (Insn.defs insn))
    (Program.insns g.Codegen.program)

let test_static_sizes_track_profile () =
  let small = Codegen.generate ~dyn_target:20_000 Profile.tiny in
  let big =
    match Profile.find "crafty" with
    | Some p -> Codegen.generate ~dyn_target:20_000 p
    | None -> Alcotest.fail "crafty missing"
  in
  check bool_ "hot text tracks hot_kb" true
    (big.Codegen.hot_insns > 8 * small.Codegen.hot_insns);
  (* Hot size should be within 50% of the request. *)
  let requested = 48 * 256 in
  let got = big.Codegen.hot_insns in
  check bool_ "crafty hot size in range" true
    (got > requested / 2 && got < requested * 2)

let test_instruction_mix () =
  let g = Codegen.generate ~dyn_target:60_000 (Option.get (Profile.find "gzip")) in
  let img = Codegen.layout g in
  let m = Machine.create img in
  let loads = ref 0 and stores = ref 0 and total = ref 0 in
  ignore
    (Machine.run_events ~max_steps:2_000_000 m (fun ev ->
         incr total;
         if Insn.reads_memory ev.Machine.Event.insn then incr loads;
         if Insn.writes_memory ev.Machine.Event.insn then incr stores));
  let lf = float_of_int !loads /. float_of_int !total in
  let sf = float_of_int !stores /. float_of_int !total in
  (* The paper's fault isolation expands ~30% of instructions
     (loads+stores); the generator should land in a plausible band. *)
  check bool_ "load fraction plausible" true (lf > 0.08 && lf < 0.35);
  check bool_ "store fraction plausible" true (sf > 0.03 && sf < 0.20)

let test_suite_cache () =
  Suite.clear_cache ();
  let a = Suite.get ~dyn_target:20_000 Profile.tiny in
  let b = Suite.get ~dyn_target:20_000 Profile.tiny in
  check bool_ "cached entry reused" true (a == b);
  let c = Suite.get ~dyn_target:30_000 Profile.tiny in
  check bool_ "different target regenerates" true (a != c)

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng ranges", `Quick, test_rng_ranges);
    ("rng weighted", `Quick, test_rng_weighted);
    ("profiles complete", `Quick, test_profiles_complete);
    ("generate deterministic", `Quick, test_generate_deterministic);
    ("generated program runs", `Quick, test_generated_program_runs);
    ("memory safety", `Quick, test_memory_safety);
    ("reserved registers untouched", `Quick, test_reserved_registers_untouched);
    ("static sizes track profile", `Quick, test_static_sizes_track_profile);
    ("instruction mix", `Quick, test_instruction_mix);
    ("suite cache", `Quick, test_suite_cache);
  ]
