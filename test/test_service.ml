(* Tests for the service layer: serializable requests, the
   content-addressed disk cache, the single run path, and the JSONL
   batch server. *)

module W = Dise_workload
module A = Dise_acf
module Config = Dise_uarch.Config
module Controller = Dise_core.Controller
module Stats = Dise_uarch.Stats
module Json = Dise_telemetry.Json
module Diag = Dise_isa.Diag
module Cache = Dise_service.Cache
module Request = Dise_service.Request
module Server = Dise_service.Server
module Figures = Dise_harness.Figures
module Report = Dise_harness.Report

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

(* --- temp-dir scaffolding ----------------------------------------------- *)

let tmp_counter = ref 0

let with_temp_dir f =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dise-service-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

(* The disk cache is process-global state; leave it clean for the
   other suites whatever happens. *)
let with_disk_cache dir f =
  Request.clear_memory ();
  Request.set_disk_cache (Some (Cache.create ~dir));
  Fun.protect
    ~finally:(fun () ->
      Request.set_disk_cache None;
      Request.clear_memory ())
    f

let tiny_request = Request.v ~dyn_target:25_000 "tiny"

(* --- request <-> JSON round-trip ---------------------------------------- *)

let gen_request =
  let open QCheck.Gen in
  let bench = oneofl [ "tiny"; "gzip"; "mcf" ] in
  let machine =
    oneofl
      [
        Config.default;
        Config.with_width 2 Config.default;
        Config.with_icache_kb None Config.default;
        Config.with_icache_kb (Some 8) Config.default;
        Config.with_dise_decode Config.Stall_per_expansion Config.default;
        Config.with_dise_decode Config.Extra_stage Config.default;
      ]
  in
  let controller =
    oneof
      [
        return None;
        map
          (fun (e, assoc) ->
            Some
              { Controller.default_config with
                Controller.rt_entries = e;
                rt_assoc = assoc;
                composing = assoc = 1 })
          (pair (oneofl [ 512; 2048 ]) (oneofl [ 1; 2 ]));
      ]
  in
  let acf =
    oneof
      [
        return Request.Baseline;
        map (fun v -> Request.Mfi_dise v) (oneofl [ A.Mfi.Dise3; A.Mfi.Dise4 ]);
        map
          (fun v -> Request.Mfi_rewrite v)
          (oneofl [ A.Rewrite.Segment_matching; A.Rewrite.Sandboxing ]);
        map
          (fun (scheme, (mfi, rewritten)) ->
            Request.Decompress { scheme; mfi; rewritten })
          (pair
             (oneofl A.Compress.fig7_schemes)
             (pair (oneofl [ `None; `Composed ]) bool));
      ]
  in
  map
    (fun (bench, (dyn_target, (machine, (controller, (acf, (jit, jit_threshold)))))) ->
      { Request.bench; dyn_target; machine; controller; acf; jit; jit_threshold })
    (pair bench
       (pair (int_range 1_000 500_000)
          (pair machine
             (pair controller (pair acf (pair bool (int_range 1 32)))))))

let arbitrary_request =
  QCheck.make ~print:(fun r -> Request.canonical r) gen_request

let prop_roundtrip =
  QCheck.Test.make ~name:"request JSON round-trip is the identity" ~count:300
    arbitrary_request (fun r ->
      match Request.of_json (Request.to_json r) with
      | Ok r' -> r' = r
      | Error d -> QCheck.Test.fail_reportf "decode failed: %s" (Diag.to_string d))

let prop_roundtrip_via_text =
  QCheck.Test.make ~name:"request survives print + reparse" ~count:300
    arbitrary_request (fun r ->
      match Request.of_json (Json.parse (Request.canonical r)) with
      | Ok r' -> Request.canonical r' = Request.canonical r && r' = r
      | Error d -> QCheck.Test.fail_reportf "decode failed: %s" (Diag.to_string d))

let test_of_json_rejects () =
  let bad s =
    match Request.of_json (Json.parse s) with
    | Ok _ -> Alcotest.failf "accepted %s" s
    | Error d -> Diag.category d
  in
  check string_ "unknown bench is parse-class" "parse"
    (bad {|{"bench":"nope","dyn_target":1000}|});
  check string_ "missing dyn_target" "parse" (bad {|{"bench":"tiny"}|});
  check string_ "bad acf kind" "parse"
    (bad {|{"bench":"tiny","dyn_target":1000,"acf":{"kind":"wat"}}|});
  (* Unknown members (e.g. the serve protocol's "id") are ignored. *)
  match Request.of_json (Json.parse {|{"bench":"tiny","dyn_target":1000,"id":7}|}) with
  | Ok r -> check string_ "bench decoded" "tiny" r.Request.bench
  | Error d -> Alcotest.failf "rejected id-carrying request: %s" (Diag.to_string d)

(* --- cache-key stability -------------------------------------------------- *)

(* Golden: pins the canonical encoding AND the salted hash. If this
   test breaks, the on-disk format changed — bump Cache.version and
   re-pin. *)
let test_key_golden () =
  let r = Request.v ~dyn_target:20_000 "tiny" in
  check string_ "cache key is stable" "e911a59c4145b05613ec1a29fe491860"
    (Request.key r);
  check bool_ "canonical starts with bench member" true
    (String.length (Request.canonical r) > 16
    && String.sub (Request.canonical r) 0 16 = {|{"bench":"tiny",|});
  check string_ "salt embeds version" ("dise-result-cache-v" ^ Cache.version)
    Cache.salt

(* --- disk cache behaviour ------------------------------------------------- *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_store_find_corrupt () =
  with_temp_dir (fun dir ->
      let c = Cache.create ~dir in
      let k = Cache.key "probe" in
      check bool_ "miss before store" true (Cache.find c ~key:k = None);
      Cache.store c ~key:k ~request:(Json.String "probe")
        ~payload:(Json.Int 42);
      check bool_ "hit after store" true
        (Cache.find c ~key:k = Some (Json.Int 42));
      check int_ "one entry" 1 (Cache.entries c);
      (* Truncated JSON: detected, deleted, reported as a miss. *)
      write_file (Cache.path c ~key:k) "{\"salt\": \"dise";
      check bool_ "corrupt entry is a miss" true (Cache.find c ~key:k = None);
      check bool_ "corrupt entry was deleted" false
        (Sys.file_exists (Cache.path c ~key:k));
      (* Wrong salt (stale version): same treatment. *)
      Cache.store c ~key:k ~request:Json.Null ~payload:(Json.Int 1);
      write_file (Cache.path c ~key:k)
        {|{"salt":"dise-result-cache-v0","key":"x","payload":1}|};
      check bool_ "stale-salt entry is a miss" true (Cache.find c ~key:k = None);
      check int_ "clear reports removals" 0 (Cache.clear c))

let test_run_recovers_from_corruption () =
  with_temp_dir (fun dir ->
      with_disk_cache dir (fun () ->
          let r = tiny_request in
          let stats1, hit1 = Result.get_ok (Request.run_ext r) in
          check bool_ "cold run simulates" false hit1;
          Request.clear_memory ();
          let stats2, hit2 = Result.get_ok (Request.run_ext r) in
          check bool_ "warm run served from disk" true hit2;
          check bool_ "disk stats identical" true
            (Stats.to_json stats1 = Stats.to_json stats2);
          (* Corrupt the entry behind the cache's back: the next run
             must detect it, recompute, and heal the entry. *)
          let c = Option.get (Request.disk_cache ()) in
          write_file (Cache.path c ~key:(Request.key r)) "garbage not json";
          Request.clear_memory ();
          let stats3, hit3 = Result.get_ok (Request.run_ext r) in
          check bool_ "corrupt entry forces recompute" false hit3;
          check bool_ "recomputed stats identical" true
            (Stats.to_json stats1 = Stats.to_json stats3);
          Request.clear_memory ();
          let _, hit4 = Result.get_ok (Request.run_ext r) in
          check bool_ "entry healed" true hit4))

let test_counters_and_clear () =
  with_temp_dir (fun dir ->
      with_disk_cache dir (fun () ->
          let h0, m0 = Request.cache_counters () in
          ignore (Request.run tiny_request);
          let h1, m1 = Request.cache_counters () in
          check int_ "cold run is one miss" 1 (m1 - m0);
          check int_ "cold run no hit" 0 (h1 - h0);
          Request.clear_memory ();
          ignore (Request.run tiny_request);
          let h2, m2 = Request.cache_counters () in
          check int_ "warm run is one hit" 1 (h2 - h1);
          check int_ "warm run no miss" 0 (m2 - m1);
          let c = Option.get (Request.disk_cache ()) in
          check bool_ "entries persisted" true (Cache.entries c > 0);
          (* Experiment.clear_cache must wipe the disk cache too. *)
          Dise_harness.Experiment.clear_cache ();
          check int_ "clear_cache wipes disk" 0 (Cache.entries c)))

let test_sink_bypasses_cache () =
  with_temp_dir (fun dir ->
      with_disk_cache dir (fun () ->
          let profile = Dise_telemetry.Profile.create () in
          ignore (Request.run ~profile tiny_request);
          let c = Option.get (Request.disk_cache ()) in
          check int_ "sink run left the disk cache untouched" 0
            (Cache.entries c);
          let h, m = Request.cache_counters () in
          ignore (h, m);
          let _, hit = Result.get_ok (Request.run_ext tiny_request) in
          check bool_ "sink run did not populate the memo either" false hit))

(* --- cold vs. warm figure: byte-identical CSV ---------------------------- *)

let figure_opts =
  { Figures.default_opts with
    Figures.dyn_target = 25_000;
    benchmarks = [ "tiny" ] }

let test_cold_warm_csv_identical () =
  with_temp_dir (fun dir ->
      with_disk_cache dir (fun () ->
          let _, m0 = Request.cache_counters () in
          let cold = Figures.fig6_top figure_opts in
          let csv_cold = Report.to_csv cold in
          let _, m1 = Request.cache_counters () in
          check bool_ "cold run missed" true (m1 - m0 > 0);
          Request.clear_memory ();
          let h1, _ = Request.cache_counters () in
          let warm = Figures.fig6_top figure_opts in
          let csv_warm = Report.to_csv warm in
          let h2, m2 = Request.cache_counters () in
          check bool_ "warm run hit" true (h2 - h1 > 0);
          check int_ "warm run never simulated" 0 (m2 - m1);
          check string_ "cold and warm CSV byte-identical" csv_cold csv_warm))

let test_cold_warm_ratio_panel () =
  with_temp_dir (fun dir ->
      with_disk_cache dir (fun () ->
          let cold = Report.to_csv (Figures.fig7_ratio figure_opts) in
          Request.clear_memory ();
          let _, m1 = Request.cache_counters () in
          let warm = Report.to_csv (Figures.fig7_ratio figure_opts) in
          let _, m2 = Request.cache_counters () in
          check int_ "warm ratio panel never ran the compressor" 0 (m2 - m1);
          check string_ "ratio CSV byte-identical" cold warm))

(* --- the batch server ----------------------------------------------------- *)

let serve lines =
  with_temp_dir (fun dir ->
      let inp = Filename.concat dir "in.jsonl" in
      let outp = Filename.concat dir "out.jsonl" in
      write_file inp (String.concat "\n" lines ^ "\n");
      let ic = open_in inp in
      let oc = open_out outp in
      let summary =
        Fun.protect
          ~finally:(fun () ->
            close_in_noerr ic;
            close_out_noerr oc)
          (fun () ->
            (* queue = 1 keeps chunks sequential, so the duplicate
               request deterministically finds the first one's result
               (in a wider chunk the two could race for the memo claim
               and either could be the one that simulates). *)
            Server.serve_channel
              (Server.session
                 (Dise_service.Serve_config.of_flags ~jobs:2 ~queue:1 ()))
              ic oc)
      in
      let ic = open_in outp in
      let rec read acc =
        match input_line ic with
        | line -> read (Json.parse line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let responses = Fun.protect ~finally:(fun () -> close_in_noerr ic)
          (fun () -> read [])
      in
      (summary, responses))

let member name j = Option.get (Json.member name j)

let test_serve_stream () =
  with_temp_dir (fun cache_dir ->
      with_disk_cache cache_dir (fun () ->
          let req = {|{"id":1,"bench":"tiny","dyn_target":25000}|} in
          let dup = {|{"id":2,"bench":"tiny","dyn_target":25000}|} in
          let bad_bench = {|{"id":3,"bench":"nope","dyn_target":25000}|} in
          let bad_json = "{this is not json" in
          let summary, rs =
            serve [ req; ""; dup; bad_bench; bad_json ]
          in
          check int_ "four responses (blank line skipped)" 4
            (List.length rs);
          check int_ "summary served" 4 summary.Server.served;
          check int_ "summary errors" 2 summary.Server.errors;
          check bool_ "summary hits" true (summary.Server.cache_hits >= 1);
          (match rs with
          | [ r1; r2; r3; r4 ] ->
            check bool_ "ids echoed in input order" true
              (member "id" r1 = Json.Int 1 && member "id" r2 = Json.Int 2);
            check bool_ "first ok" true (member "ok" r1 = Json.Bool true);
            (* The duplicate must be served without re-simulating
               (memo or disk — either counts). *)
            check bool_ "duplicate is a cache hit" true
              (member "cache_hit" r2 = Json.Bool true);
            check bool_ "stats attached" true
              (Json.member "cycles" (member "stats" r1) <> None);
            check bool_ "same key for same request" true
              (member "key" r1 = member "key" r2);
            check bool_ "unknown bench is a parse error" true
              (member "ok" r3 = Json.Bool false
              && Json.member "kind" (member "error" r3)
                 = Some (Json.String "parse"));
            check bool_ "malformed line is a parse error" true
              (member "ok" r4 = Json.Bool false
              && Json.member "kind" (member "error" r4)
                 = Some (Json.String "parse"))
          | _ -> Alcotest.fail "wrong response count");
          (* Responses must validate against the published schema. *)
          let schema =
            Json.parse
              (let ic = open_in "../doc/schema/serve_response.schema.json" in
               Fun.protect ~finally:(fun () -> close_in_noerr ic)
                 (fun () -> really_input_string ic (in_channel_length ic)))
          in
          List.iter
            (fun r ->
              match Dise_telemetry.Json_schema.validate ~schema r with
              | [] -> ()
              | errs ->
                Alcotest.failf "response fails schema: %a"
                  (Format.pp_print_list Dise_telemetry.Json_schema.pp_error)
                  errs)
            rs))

(* Production-set swap between serve chunks: with queue = 1 every
   request is its own chunk, and the stream alternates production
   sets (MFI dise3 / baseline / dise4 / dise3 again). Each request
   builds its engine afresh, so compiled superblocks must never leak
   across the swaps: a JIT-enabled serve must produce exactly the
   simulated statistics of a --no-jit serve, response for response.
   (The cache keys differ by design — the jit knob is part of the
   request key — so the comparison is over the stats objects with the
   jit telemetry counters masked.) *)
let test_serve_prodset_swap_chunks () =
  let stream jit =
    let j = Printf.sprintf {|"jit":{"enabled":%b,"threshold":1}|} jit in
    [
      Printf.sprintf
        {|{"id":1,"bench":"tiny","dyn_target":20000,"acf":{"kind":"mfi_dise","variant":"dise3"},%s}|}
        j;
      Printf.sprintf {|{"id":2,"bench":"tiny","dyn_target":20000,%s}|} j;
      Printf.sprintf
        {|{"id":3,"bench":"tiny","dyn_target":20000,"acf":{"kind":"mfi_dise","variant":"dise4"},%s}|}
        j;
      Printf.sprintf
        {|{"id":4,"bench":"tiny","dyn_target":20000,"acf":{"kind":"mfi_dise","variant":"dise3"},%s}|}
        j;
    ]
  in
  let masked_stats rs =
    List.map
      (fun r ->
        check bool_ "response ok" true (member "ok" r = Json.Bool true);
        match member "stats" r with
        | Json.Obj ms ->
          Json.Obj
            (List.filter
               (fun (k, _) ->
                 k <> "jit_compiles" && k <> "jit_hits"
                 && k <> "jit_invalidations")
               ms)
        | other -> other)
      rs
  in
  let _, with_jit = serve (stream true) in
  let _, without = serve (stream false) in
  check int_ "four jit responses" 4 (List.length with_jit);
  check int_ "four interpreter responses" 4 (List.length without);
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        Alcotest.failf "chunk %d: jit and no-jit stats differ" (i + 1))
    (List.combine (masked_stats with_jit) (masked_stats without))

(* The jit knob is part of the memo key: results cached from a JIT
   run and an interpreter run must never collide. *)
let test_jit_knob_distinct_keys () =
  let base = Request.v ~dyn_target:20_000 "tiny" in
  let on = Request.v ~dyn_target:20_000 ~jit:true ~jit_threshold:8 "tiny" in
  let off = Request.v ~dyn_target:20_000 ~jit:false "tiny" in
  let tuned = Request.v ~dyn_target:20_000 ~jit:true ~jit_threshold:2 "tiny" in
  check bool_ "jit on and off keys differ" true
    (Request.key on <> Request.key off);
  check bool_ "threshold is part of the key" true
    (Request.key on <> Request.key tuned);
  check string_ "default spells out the process default"
    (Request.key base) (Request.key on)

let t = QCheck_alcotest.to_alcotest

let suite =
  [
    t prop_roundtrip;
    t prop_roundtrip_via_text;
    ("cache key golden", `Quick, test_key_golden);
    ("of_json rejections", `Quick, test_of_json_rejects);
    ("cache store/find/corrupt", `Quick, test_store_find_corrupt);
    ("run recovers from corruption", `Quick, test_run_recovers_from_corruption);
    ("counters and clear_cache", `Quick, test_counters_and_clear);
    ("sinks bypass caches", `Quick, test_sink_bypasses_cache);
    ("cold vs warm CSV identical", `Quick, test_cold_warm_csv_identical);
    ("cold vs warm ratio panel", `Quick, test_cold_warm_ratio_panel);
    ("serve JSONL stream", `Quick, test_serve_stream);
    ("serve prodset swap between chunks", `Quick,
     test_serve_prodset_swap_chunks);
    ("jit knob distinct cache keys", `Quick, test_jit_knob_distinct_keys);
  ]
