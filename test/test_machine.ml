(* Tests for the functional emulator: memory, register file, plain
   execution, and DISE replacement-sequence semantics. *)

open Dise_isa
open Dise_machine

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* --- memory --------------------------------------------------------- *)

let test_memory_rw () =
  let m = Memory.create () in
  Memory.write_u32 m 0x1000 0xDEADBEEF;
  check int_ "word read" 0xDEADBEEF (Memory.read_u32 m 0x1000);
  check int_ "signed read" (Opcode.signed32 0xDEADBEEF)
    (Memory.read_s32 m 0x1000);
  check int_ "byte 0 (little endian)" 0xEF (Memory.read_u8 m 0x1000);
  check int_ "byte 3" 0xDE (Memory.read_u8 m 0x1003);
  Memory.write_u8 m 0x1001 0x42;
  check int_ "byte patch visible in word" 0xDEAD42EF (Memory.read_u32 m 0x1000);
  check int_ "untouched reads zero" 0 (Memory.read_u32 m 0x55000)

let test_memory_alignment () =
  let m = Memory.create () in
  (match Memory.read_u32 m 0x1002 with
  | exception Memory.Fault _ -> ()
  | _ -> Alcotest.fail "misaligned read not caught");
  match Memory.write_u32 m 0x1001 0 with
  | exception Memory.Fault _ -> ()
  | _ -> Alcotest.fail "misaligned write not caught"

let test_memory_sparse () =
  let m = Memory.create () in
  Memory.write_u32 m 0x0 1;
  Memory.write_u32 m 0x40000000 2;
  check int_ "two pages" 2 (Memory.touched_pages m);
  check int_ "far value" 2 (Memory.read_u32 m 0x40000000)

let test_memory_checksum () =
  let a = Memory.create () and b = Memory.create () in
  Memory.write_u32 a 0x100 7;
  Memory.write_u32 a 0x2000 9;
  (* Same state written in a different order. *)
  Memory.write_u32 b 0x2000 9;
  Memory.write_u32 b 0x100 7;
  check int_ "equal states, equal checksums" (Memory.checksum a)
    (Memory.checksum b);
  Memory.write_u32 b 0x100 8;
  check bool_ "different states differ" true
    (Memory.checksum a <> Memory.checksum b)

(* --- register file -------------------------------------------------- *)

let test_regfile () =
  let rf = Regfile.create () in
  Regfile.set rf (Reg.r 5) 42;
  check int_ "read back" 42 (Regfile.get rf (Reg.r 5));
  Regfile.set rf Reg.zero 99;
  check int_ "zero ignores writes" 0 (Regfile.get rf Reg.zero);
  Regfile.set rf (Reg.d 2) 17;
  check int_ "dedicated distinct from arch" 17 (Regfile.get rf (Reg.d 2));
  check int_ "arch r2 unaffected" 0 (Regfile.get rf (Reg.r 2));
  Regfile.set rf (Reg.r 6) 0xFFFFFFFF;
  check int_ "values normalized to signed32" (-1) (Regfile.get rf (Reg.r 6));
  let rf2 = Regfile.copy rf in
  check bool_ "copy arch-equal" true (Regfile.arch_equal rf rf2);
  Regfile.set rf2 (Reg.r 7) 1;
  check bool_ "divergence detected" false (Regfile.arch_equal rf rf2);
  Regfile.set rf2 (Reg.r 7) 0;
  Regfile.set rf2 (Reg.d 3) 123;
  check bool_ "dedicated ignored by arch_equal" true (Regfile.arch_equal rf rf2)

(* --- plain execution ------------------------------------------------ *)

let run_asm ?expander ?(entry = "main") src =
  let img = Program.layout (Asm.parse src) in
  let m = Machine.create ?expander ~entry img in
  ignore (Machine.run ~max_steps:1_000_000 m);
  m

let reg m n = Regfile.get (Machine.regs m) (Reg.r n)

let test_arith_program () =
  let m =
    run_asm
      {|
      main:
        add zero, #10, r1
        add zero, #3, r2
        mul r1, r2, r3      ; 30
        sub r3, r1, r4      ; 20
        srl r4, #2, r5      ; 5
        halt
      |}
  in
  check int_ "r3" 30 (reg m 3);
  check int_ "r4" 20 (reg m 4);
  check int_ "r5" 5 (reg m 5);
  check int_ "executed" 6 (Machine.executed m)

let test_loop_program () =
  (* Sum 1..10 with a countdown loop. *)
  let m =
    run_asm
      {|
      main:
        add zero, #10, r1
        add zero, #0, r2
      loop:
        add r2, r1, r2
        add r1, #-1, r1
        bgt r1, loop
        halt
      |}
  in
  check int_ "sum 1..10" 55 (reg m 2)

let test_memory_program () =
  let m =
    run_asm
      {|
      main:
        lui #1024, r1        ; r1 = 0x04000000 (data segment)
        add zero, #7, r2
        stq r2, 16(r1)
        ldq r3, 16(r1)
        stb r3, 3(r1)
        ldbu r4, 3(r1)
        halt
      |}
  in
  check int_ "store/load word" 7 (reg m 3);
  check int_ "store/load byte" 7 (reg m 4);
  check int_ "memory content" 7 (Memory.read_u32 (Machine.memory m) 0x04000010)

let test_call_program () =
  let m =
    run_asm
      {|
      main:
        add zero, #5, r1
        jal double
        add r1, #1, r1      ; 11
        halt
      double:
        add r1, r1, r1
        jr ra
      |}
  in
  check int_ "call/return" 11 (reg m 1)

let test_stack_program () =
  let m =
    run_asm
      {|
      main:
        add zero, #3, r1
        lda sp, -8(sp)
        stq r1, 0(sp)
        add zero, #0, r1
        ldq r1, 0(sp)
        lda sp, 8(sp)
        halt
      |}
  in
  check int_ "stack save/restore" 3 (reg m 1)

let test_jalr_dispatch () =
  (* An indirect call through a function-pointer table in memory. *)
  let m =
    run_asm
      {|
      main:
        lui #1024, r1
        lui #16, r3          ; 0x00100000 code base
        lda r3, 0x24(r3)     ; absolute address of double (10th insn)
        stq r3, 0(r1)        ; plant the function pointer
        ldq r4, 0(r1)
        add zero, #5, r5
        jalr r4, r6          ; indirect call, link in r6
        add r5, #1, r5       ; 11
        halt
      double:
        add r5, r5, r5
        jr r6
      |}
  in
  check int_ "indirect call worked" 11 (reg m 5)

let test_djmp_semantics () =
  (* A Djmp in a replacement sequence transfers DISEPC unconditionally;
     skipped instructions never execute. *)
  let expander : Machine.expander =
   fun ~pc:_ insn ->
    match insn with
    | Insn.Mem (Opcode.Stq, _, _, _) ->
      Some
        { Machine.rsid = 1;
          seq =
            [| Insn.Djmp 2; Insn.Ropi (Opcode.Add, Reg.zero, 9, Reg.r 9);
               insn |] }
    | _ -> None
  in
  let img =
    Program.layout (Asm.parse "main:\n lui #1024, r1\n stq r1, 0(r1)\n halt\n")
  in
  let m = Machine.create ~expander img in
  ignore (Machine.run m);
  check int_ "djmp skipped the poison" 0 (reg m 9);
  check bool_ "store still ran" true
    (Memory.read_u32 (Machine.memory m) 0x04000000 <> 0)

let test_exit_code () =
  let m = run_asm "main:\n add zero, #42, r2\n halt\n" in
  check int_ "exit code from r2" 42 (Machine.exit_code m)

let test_pc_escape () =
  let img = Program.layout (Asm.parse "main:\n nop\n") in
  let m = Machine.create img in
  match Machine.run m with
  | exception Machine.Runtime_error _ -> ()
  | _ -> Alcotest.fail "running off the text should be an error"

let test_max_steps () =
  let img = Program.layout (Asm.parse "main:\n jmp main\n") in
  let m = Machine.create img in
  match Machine.run ~max_steps:1000 m with
  | exception Machine.Runtime_error _ -> ()
  | _ -> Alcotest.fail "infinite loop should exceed max_steps"

let test_max_steps_exact () =
  (* The bound is exact: a still-running machine stops having executed
     max_steps instructions, never max_steps + 1. *)
  let img = Program.layout (Asm.parse "main:\n jmp main\n") in
  let m = Machine.create img in
  (match Machine.run ~max_steps:1000 m with
  | exception Machine.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected Runtime_error");
  check int_ "stopped at exactly max_steps" 1000 (Machine.executed m);
  (* A program whose halting instruction is exactly the max_steps-th
     completes normally. *)
  let img2 =
    Program.layout (Asm.parse "main:\n nop\n nop\n add zero, #7, r2\n halt\n")
  in
  let m2 = Machine.create img2 in
  check int_ "4-insn program under max_steps=4" 4 (Machine.run ~max_steps:4 m2);
  check int_ "completed with its exit code" 7 (Machine.exit_code m2)

(* --- DISE expansion semantics --------------------------------------- *)

(* A hand-rolled expander (no engine yet): expands every store into
   [check-ish; store] like fault isolation would, using a dedicated
   register as scratch. *)
let expanding_stores ~seq_of : Machine.expander =
 fun ~pc:_ insn ->
  match insn with
  | Insn.Mem (Opcode.Stq, _, _, _) -> Some { Machine.rsid = 1; seq = seq_of insn }
  | _ -> None

let test_expansion_basic () =
  let seq_of insn =
    [| Insn.Ropi (Opcode.Add, Reg.d 0, 1, Reg.d 0); insn |]
  in
  let img =
    Program.layout
      (Asm.parse
         {|
         main:
           lui #1024, r1
           add zero, #7, r2
           stq r2, 0(r1)
           stq r2, 4(r1)
           halt
         |})
  in
  let m = Machine.create ~expander:(expanding_stores ~seq_of) img in
  ignore (Machine.run m);
  check int_ "two expansions" 2 (Machine.expansions m);
  check int_ "dedicated counter incremented per store" 2
    (Regfile.get (Machine.regs m) (Reg.d 0));
  check int_ "stores still executed" 7
    (Memory.read_u32 (Machine.memory m) 0x04000004);
  (* 5 app instructions, plus one extra instruction per store. *)
  check int_ "executed counts replacements" 7 (Machine.executed m);
  check int_ "app fetches" 5 (Machine.app_fetched m)

let test_replacement_branch_aborts_sequence () =
  (* Replacement: bne $dr1, error; <poison>; T.INSN — when $dr1 is
     non-zero the rest of the sequence (poison and the store) must be
     squashed, like the paper's fault-isolation check. *)
  let img =
    Program.layout
      (Asm.parse
         {|
         main:
           lui #1024, r1
           add zero, #7, r2
           stq r2, 0(r1)
           add zero, #1, r3   ; should be skipped when check fails
           halt
         error:
           add zero, #99, r4
           halt
         |})
  in
  let error_addr =
    match Program.Image.symbol img "error" with Some a -> a | None -> 0
  in
  let seq_of insn =
    [|
      Insn.Br (Opcode.Bne, Reg.d 1, Insn.Abs error_addr);
      Insn.Ropi (Opcode.Add, Reg.zero, 1, Reg.d 3);
      insn;
    |]
  in
  let m = Machine.create ~expander:(expanding_stores ~seq_of) img in
  Machine.set_dise_reg m 1 1;
  ignore (Machine.run m);
  check int_ "error handler ran" 99 (reg m 4);
  check int_ "store squashed" 0 (Memory.read_u32 (Machine.memory m) 0x04000000);
  check int_ "post-branch replacement squashed" 0
    (Regfile.get (Machine.regs m) (Reg.d 3));
  check int_ "fall-through app insn never ran" 0 (reg m 3)

let test_replacement_branch_falls_through () =
  let img =
    Program.layout
      (Asm.parse
         {|
         main:
           lui #1024, r1
           add zero, #7, r2
           stq r2, 0(r1)
           halt
         error:
           add zero, #99, r4
           halt
         |})
  in
  let error_addr =
    match Program.Image.symbol img "error" with Some a -> a | None -> 0
  in
  let seq_of insn =
    [| Insn.Br (Opcode.Bne, Reg.d 1, Insn.Abs error_addr); insn |]
  in
  let m = Machine.create ~expander:(expanding_stores ~seq_of) img in
  (* $dr1 = 0: check passes, store proceeds. *)
  ignore (Machine.run m);
  check int_ "no error" 0 (reg m 4);
  check int_ "store performed" 7
    (Memory.read_u32 (Machine.memory m) 0x04000000)

let test_dise_internal_branch () =
  (* DISEPC-only control: a Dbr skipping over a poison instruction
     within the sequence. *)
  let seq_of insn =
    [|
      Insn.Dbr (Opcode.Beq, Reg.zero, 2);          (* always taken -> offset 2 *)
      Insn.Ropi (Opcode.Add, Reg.zero, 77, Reg.r 9);  (* skipped *)
      insn;
    |]
  in
  let img =
    Program.layout
      (Asm.parse
         "main:\n lui #1024, r1\n add zero, #7, r2\n stq r2, 0(r1)\n halt\n")
  in
  let m = Machine.create ~expander:(expanding_stores ~seq_of) img in
  ignore (Machine.run m);
  check int_ "skipped instruction did not run" 0 (reg m 9);
  check int_ "store ran" 7 (Memory.read_u32 (Machine.memory m) 0x04000000)

let test_dise_branch_to_end_completes () =
  let seq_of insn =
    ignore insn;
    [| Insn.Dbr (Opcode.Beq, Reg.zero, 2); Insn.Ropi (Opcode.Add, Reg.zero, 1, Reg.r 9) |]
  in
  let img =
    Program.layout
      (Asm.parse "main:\n lui #1024, r1\n stq r1, 0(r1)\n add zero, #5, r8\n halt\n")
  in
  let m = Machine.create ~expander:(expanding_stores ~seq_of) img in
  ignore (Machine.run m);
  check int_ "sequence end falls through to next app insn" 5 (reg m 8);
  check int_ "store replaced by nothing (deleted)" 0
    (Memory.read_u32 (Machine.memory m) 0x04000000)

let test_event_stream () =
  let seq_of insn = [| Insn.Nop; insn |] in
  let img =
    Program.layout
      (Asm.parse "main:\n lui #1024, r1\n stq r1, 0(r1)\n halt\n")
  in
  let m = Machine.create ~expander:(expanding_stores ~seq_of) img in
  let events = ref [] in
  ignore (Machine.run_events m (fun e -> events := e :: !events));
  let events = List.rev !events in
  check int_ "four events" 4 (List.length events);
  (match events with
  | [ e1; e2; e3; e4 ] ->
    check bool_ "e1 app" true (e1.Machine.Event.origin = Machine.Event.App);
    check bool_ "e1 fetches" true e1.Machine.Event.fetched_new_pc;
    (match e2.Machine.Event.origin with
    | Machine.Event.Rep { rsid = 1; offset = 0; len = 2 } -> ()
    | _ -> Alcotest.fail "e2 should be replacement offset 0");
    check bool_ "e2 starts expansion" true e2.Machine.Event.expansion_start;
    check bool_ "e2 fetches (trigger)" true e2.Machine.Event.fetched_new_pc;
    (match e3.Machine.Event.origin with
    | Machine.Event.Rep { offset = 1; _ } -> ()
    | _ -> Alcotest.fail "e3 should be replacement offset 1");
    check bool_ "e3 does not fetch" false e3.Machine.Event.fetched_new_pc;
    check bool_ "e3 has a memory address" true
      (e3.Machine.Event.mem_addr <> None);
    check bool_ "same pc for both replacement events" true
      (e2.Machine.Event.pc = e3.Machine.Event.pc);
    check bool_ "e4 is the halt" true
      (e4.Machine.Event.insn = Insn.Halt)
  | _ -> Alcotest.fail "expected exactly four events");
  ()

let test_precise_interrupt_resume () =
  (* Interrupt in the middle of a replacement sequence, then resume at
     the saved PC:DISEPC: the final state must match an uninterrupted
     run — the paper's precise-state contract. *)
  let src =
    "main:\n lui #1024, r1\n add zero, #7, r2\n stq r2, 0(r1)\n\
    \ add zero, #3, r6\n halt\n"
  in
  let seq_of insn =
    [|
      Insn.Ropi (Opcode.Add, Reg.d 0, 10, Reg.d 0);
      Insn.Ropi (Opcode.Add, Reg.d 0, 100, Reg.d 0);
      insn;
    |]
  in
  let img = Program.layout (Asm.parse src) in
  let run ~interrupt_at =
    let m = Machine.create ~expander:(expanding_stores ~seq_of) img in
    let count = ref 0 in
    let rec go () =
      if Option.is_some (Machine.step m) then begin
        incr count;
        if !count = interrupt_at then begin
          (* take the interrupt; "handler" runs elsewhere; return *)
          let pc, disepc = Machine.interrupt m in
          check bool_ "interrupted inside a sequence" true (disepc > 0);
          Machine.resume m ~pc ~disepc
        end;
        go ()
      end
    in
    go ();
    m
  in
  (* Event 3 is the first replacement instruction; interrupting after
     it leaves DISEPC = 1. *)
  let interrupted = run ~interrupt_at:3 in
  let plain = Machine.create ~expander:(expanding_stores ~seq_of) img in
  ignore (Machine.run plain);
  check bool_ "same architectural state" true
    (Regfile.arch_equal (Machine.regs interrupted) (Machine.regs plain));
  check int_ "same dedicated accumulation" 110
    (Regfile.get (Machine.regs interrupted) (Reg.d 0));
  check int_ "store happened exactly once" 7
    (Memory.read_u32 (Machine.memory interrupted) 0x04000000);
  check int_ "clean completion" 3
    (Regfile.get (Machine.regs interrupted) (Reg.r 6))

let test_codeword_without_production_errors () =
  let img =
    Program.layout
      [ Program.Label "main";
        Program.Ins (Insn.codeword ~op:0 ~p1:0 ~p2:0 ~p3:0 ~tag:5);
        Program.Ins Insn.Halt ]
  in
  let m = Machine.create img in
  match Machine.run m with
  | exception Machine.Runtime_error _ -> ()
  | _ -> Alcotest.fail "unexpanded codeword should be a runtime error"

(* --- superblock JIT -------------------------------------------------- *)

module Engine = Dise_core.Engine

let mfi_set src =
  Dise_core.Prodset.resolve_labels
    (fun _ -> Some 0x9000)
    (Dise_core.Lang.parse src)

(* Store-checking productions in the style of the paper's memory fault
   isolation: an ACF prefix that computes 0 and never branches, so the
   run is transparent and every store expands. *)
let check_stores_set =
  mfi_set
    {|
    P1: T.OPCLASS == store -> R1
    R1: srl T.RS, #26, $dr1
        xor $dr1, $dr1, $dr1
        bne $dr1, __error
        T.INSN
    |}

let count_stores_set =
  mfi_set {|
    P1: T.OPCLASS == store -> R1
    R1: add $dr2, #1, $dr2
        T.INSN
    |}

(* A hot loop with stores and loads: the body compiles into one
   superblock (per expansion generation) that is re-entered every
   iteration. *)
let jit_image () =
  Program.layout
    (Asm.parse
       {|
       main:
         lui #1024, r1
         add zero, #12, r3
       loop:
         add r3, r3, r4
         xor r4, #5, r4
         stq r4, 0(r1)
         ldq r5, 0(r1)
         add r5, r6, r6
         add r1, #4, r1
         add r3, #-1, r3
         bgt r3, loop
         halt
       |})

let engine_machine ?jit_threshold prodset img =
  let eng = Engine.create ~image:img prodset in
  let m = Machine.create ~expander:(Engine.expander eng) img in
  (match jit_threshold with
  | Some threshold -> Engine.attach_jit ~threshold eng m
  | None -> ());
  (m, eng)

let same_arch_state label a b =
  check bool_ (label ^ ": same registers") true
    (Regfile.arch_equal (Machine.regs a) (Machine.regs b));
  check int_ (label ^ ": same memory")
    (Memory.checksum (Machine.memory a))
    (Memory.checksum (Machine.memory b));
  check int_ (label ^ ": same executed") (Machine.executed a)
    (Machine.executed b);
  check int_ (label ^ ": same fetches") (Machine.app_fetched a)
    (Machine.app_fetched b);
  check int_ (label ^ ": same expansions") (Machine.expansions a)
    (Machine.expansions b);
  check int_ (label ^ ": same exit") (Machine.exit_code a)
    (Machine.exit_code b)

let test_jit_run_equivalence () =
  let img = jit_image () in
  let interp, _ = engine_machine check_stores_set img in
  let jit, _ = engine_machine ~jit_threshold:2 check_stores_set img in
  ignore (Machine.run interp);
  ignore (Machine.run jit);
  same_arch_state "run" interp jit;
  check bool_ "traces compiled" true (Machine.jit_compiles jit > 0);
  check bool_ "traces reused" true (Machine.jit_hits jit > 0)

let test_jit_step_equivalence () =
  let img = jit_image () in
  let interp, _ = engine_machine check_stores_set img in
  let jit, _ = engine_machine ~jit_threshold:1 check_stores_set img in
  let rec go n =
    match (Machine.step interp, Machine.step jit) with
    | None, None -> n
    | Some a, Some b ->
      let open Machine.Event in
      check int_ (Printf.sprintf "event %d: pc" n) a.pc b.pc;
      check bool_ (Printf.sprintf "event %d: insn" n) true
        (Insn.equal a.insn b.insn);
      check bool_ (Printf.sprintf "event %d: origin" n) true
        (a.origin = b.origin);
      check bool_ (Printf.sprintf "event %d: flags" n) true
        (a.expansion_start = b.expansion_start
        && a.mem_addr = b.mem_addr && a.branch = b.branch
        && a.fetched_new_pc = b.fetched_new_pc);
      go (n + 1)
    | Some _, None -> Alcotest.failf "jit halted first at event %d" n
    | None, Some _ -> Alcotest.failf "interpreter halted first at event %d" n
  in
  let n = go 0 in
  check bool_ "stream covers the loop" true (n > 50);
  same_arch_state "step" interp jit

(* The compiled block does not check the step ceiling per entry, so
   the dispatcher must refuse whole-block entries that could overrun
   it: for every budget the JIT must trap (or complete) on exactly the
   step the interpreter does. *)
let test_jit_max_steps_parity () =
  let img = jit_image () in
  let outcome m ~max_steps =
    match Machine.run ~max_steps m with
    | n -> Ok n
    | exception Machine.Runtime_error _ -> Error (Machine.executed m)
  in
  List.iter
    (fun budget ->
      let interp, _ = engine_machine check_stores_set img in
      let jit, _ = engine_machine ~jit_threshold:1 check_stores_set img in
      let a = outcome interp ~max_steps:budget in
      let b = outcome jit ~max_steps:budget in
      match (a, b) with
      | Ok n, Ok n' when n = n' -> ()
      | Error n, Error n' when n = n' -> ()
      | _ ->
        Alcotest.failf "budget %d: interpreter %s but jit %s" budget
          (match a with
          | Ok n -> Printf.sprintf "finished at %d" n
          | Error n -> Printf.sprintf "trapped at %d" n)
          (match b with
          | Ok n -> Printf.sprintf "finished at %d" n
          | Error n -> Printf.sprintf "trapped at %d" n))
    [ 1; 7; 30; 31; 32; 33; 61; 100; 1000 ]

(* An RT/PT write (Engine.invalidate) while the machine is mid-trace:
   the bump is observed at the next application-instruction boundary,
   compiled traces are retired, and the re-compiled stream must agree
   with the interpreter. *)
let test_jit_invalidate_mid_trace () =
  let img = jit_image () in
  let interp, _ = engine_machine check_stores_set img in
  let jit, eng = engine_machine ~jit_threshold:1 check_stores_set img in
  for _ = 1 to 15 do
    ignore (Machine.step jit)
  done;
  Engine.invalidate eng;
  let rec drain m = if Option.is_some (Machine.step m) then drain m in
  drain jit;
  ignore (Machine.run interp);
  same_arch_state "invalidate" interp jit;
  check bool_ "superblocks retired" true (Machine.jit_invalidations jit > 0);
  check bool_ "traces recompiled" true (Machine.jit_compiles jit > 1)

(* Swapping the production set between two runs over the same engine:
   the second machine re-adopts the warmed superblock state, must
   retire every stale trace, and must execute the new expansions. *)
let test_jit_prodset_swap_between_runs () =
  let img = jit_image () in
  let m1, eng = engine_machine ~jit_threshold:1 check_stores_set img in
  ignore (Machine.run m1);
  check bool_ "warm state compiled" true (Machine.jit_compiles m1 > 0);
  Engine.set_prodset eng count_stores_set;
  let m2 = Machine.create ~expander:(Engine.expander eng) img in
  Engine.attach_jit ~threshold:1 eng m2;
  ignore (Machine.run m2);
  let ref_m, _ = engine_machine count_stores_set img in
  ignore (Machine.run ref_m);
  same_arch_state "swap" ref_m m2;
  check int_ "new productions executed: one count per store" 12
    (Regfile.get (Machine.regs m2) (Reg.d 2));
  check bool_ "stale traces retired" true (Machine.jit_invalidations m2 > 0)

(* Steady state across machines: a fresh machine adopting a warmed
   state replays compiled traces without compiling anything new, and
   adoption refuses a state built over different text. *)
let test_jit_state_adoption () =
  let img = jit_image () in
  let m1, eng = engine_machine ~jit_threshold:1 check_stores_set img in
  ignore (Machine.run m1);
  let compiled = Machine.jit_compiles m1 in
  let hits = Machine.jit_hits m1 in
  check bool_ "warmed" true (compiled > 0);
  let m2 = Machine.create ~expander:(Engine.expander eng) img in
  Engine.attach_jit eng m2;
  ignore (Machine.run m2);
  same_arch_state "adopted" m1 m2;
  check int_ "no recompilation at steady state" compiled
    (Machine.jit_compiles m2);
  check bool_ "every hot fetch served from the arena" true
    (Machine.jit_hits m2 > hits);
  let other = Program.layout (Asm.parse "main:\n halt\n") in
  let m3 = Machine.create other in
  (match Machine.jit_state m1 with
  | Some js ->
    check bool_ "foreign text refused" false (Machine.adopt_jit m3 js)
  | None -> Alcotest.fail "warmed machine has no jit state")

let suite =
  [
    ("memory read/write", `Quick, test_memory_rw);
    ("memory alignment", `Quick, test_memory_alignment);
    ("memory sparse", `Quick, test_memory_sparse);
    ("memory checksum", `Quick, test_memory_checksum);
    ("regfile", `Quick, test_regfile);
    ("arith program", `Quick, test_arith_program);
    ("loop program", `Quick, test_loop_program);
    ("memory program", `Quick, test_memory_program);
    ("call program", `Quick, test_call_program);
    ("stack program", `Quick, test_stack_program);
    ("jalr dispatch", `Quick, test_jalr_dispatch);
    ("djmp semantics", `Quick, test_djmp_semantics);
    ("exit code", `Quick, test_exit_code);
    ("pc escape detected", `Quick, test_pc_escape);
    ("max steps", `Quick, test_max_steps);
    ("max steps exact bound", `Quick, test_max_steps_exact);
    ("expansion basic", `Quick, test_expansion_basic);
    ("replacement branch aborts sequence", `Quick,
     test_replacement_branch_aborts_sequence);
    ("replacement branch falls through", `Quick,
     test_replacement_branch_falls_through);
    ("dise internal branch", `Quick, test_dise_internal_branch);
    ("dise branch to end completes", `Quick, test_dise_branch_to_end_completes);
    ("event stream", `Quick, test_event_stream);
    ("precise interrupt/resume", `Quick, test_precise_interrupt_resume);
    ("codeword without production", `Quick,
     test_codeword_without_production_errors);
    ("jit run equivalence", `Quick, test_jit_run_equivalence);
    ("jit step equivalence", `Quick, test_jit_step_equivalence);
    ("jit max-steps parity", `Quick, test_jit_max_steps_parity);
    ("jit invalidate mid-trace", `Quick, test_jit_invalidate_mid_trace);
    ("jit prodset swap between runs", `Quick,
     test_jit_prodset_swap_between_runs);
    ("jit state adoption", `Quick, test_jit_state_adoption);
  ]
