(* Shared QCheck generators for the property tests. *)

open Dise_isa

let reg_gen = QCheck.Gen.map Reg.r (QCheck.Gen.int_bound 31)
let imm16_gen = QCheck.Gen.int_range (-32768) 32767

(* Any encodable instruction (branch targets valid around [pc]). *)
let insn_gen ~pc =
  let open QCheck.Gen in
  oneof
    [
      map3
        (fun op a (b, c) -> Insn.Rop (op, a, b, c))
        (oneofl Opcode.all_rops) reg_gen (pair reg_gen reg_gen);
      map3
        (fun op a (v, c) -> Insn.Ropi (op, a, v, c))
        (oneofl Opcode.all_rops) reg_gen (pair imm16_gen reg_gen);
      map3 (fun a v c -> Insn.Lda (a, v, c)) reg_gen imm16_gen reg_gen;
      map2 (fun v c -> Insn.Lui (v, c)) imm16_gen reg_gen;
      map3
        (fun op a (v, c) -> Insn.Mem (op, a, v, c))
        (oneofl Opcode.all_mops) reg_gen (pair imm16_gen reg_gen);
      map3
        (fun op r off -> Insn.Br (op, r, Insn.Abs (pc + 4 + (off * 2))))
        (oneofl Opcode.all_bops) reg_gen imm16_gen;
      map (fun t -> Insn.Jmp (Insn.Abs (t * 4))) (int_bound 0xFFFF);
      map (fun t -> Insn.Jal (Insn.Abs (t * 4))) (int_bound 0xFFFF);
      map (fun r -> Insn.Jr r) reg_gen;
      map2 (fun a b -> Insn.Jalr (a, b)) reg_gen reg_gen;
      map2
        (fun (op, r) off -> Insn.Dbr (op, r, off))
        (pair (oneofl Opcode.all_bops) reg_gen)
        (int_bound 100);
      map
        (fun (op, (p1, (p2, (p3, tag)))) -> Insn.codeword ~op ~p1 ~p2 ~p3 ~tag)
        (pair (int_bound 3)
           (pair (int_bound 31)
              (pair (int_bound 31) (pair (int_bound 31) (int_bound 2047)))));
      return Insn.Nop;
      return Insn.Halt;
    ]

let arbitrary_insn ~pc = QCheck.make ~print:Insn.to_string (insn_gen ~pc)

(* Straight-line ALU instructions over registers r1..r7 (always safe to
   execute: no memory, no control). *)
let alu_insn_gen =
  let open QCheck.Gen in
  let small_reg = map (fun n -> Reg.r (1 + n)) (int_bound 6) in
  let safe_rops =
    [ Opcode.Add; Opcode.Sub; Opcode.Mul; Opcode.And_; Opcode.Or_;
      Opcode.Xor; Opcode.Slt; Opcode.Sltu; Opcode.Cmpeq; Opcode.Cmplt;
      Opcode.Cmple ]
  in
  oneof
    [
      map3
        (fun op a (b, c) -> Insn.Rop (op, a, b, c))
        (oneofl safe_rops) small_reg (pair small_reg small_reg);
      map3
        (fun op a (v, c) -> Insn.Ropi (op, a, v, c))
        (oneofl safe_rops) small_reg (pair imm16_gen small_reg);
      map3
        (fun op a (v, c) -> Insn.Ropi (op, a, v, c))
        (oneofl [ Opcode.Sll; Opcode.Srl; Opcode.Sra ])
        small_reg
        (pair (int_bound 31) small_reg);
      map2 (fun v c -> Insn.Lui (v, c)) imm16_gen small_reg;
    ]

let alu_program_gen = QCheck.Gen.(list_size (int_range 1 40) alu_insn_gen)

let arbitrary_alu_program =
  QCheck.make
    ~print:(fun l -> String.concat "\n" (List.map Insn.to_string l))
    alu_program_gen
