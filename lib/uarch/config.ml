type cache_cfg = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
}

type dise_decode =
  | Free
  | Stall_per_expansion
  | Extra_stage

type t = {
  width : int;
  depth : int;
  rob_size : int;
  icache : cache_cfg option;
  dcache : cache_cfg option;
  l2 : cache_cfg option;
  l1_latency : int;
  l2_latency : int;
  mem_latency : int;
  mul_latency : int;
  dise_decode : dise_decode;
  perfect_branch_pred : bool;
}

let kb n = n * 1024

let default =
  {
    width = 4;
    depth = 12;
    rob_size = 128;
    icache = Some { size_bytes = kb 32; assoc = 2; line_bytes = 64 };
    dcache = Some { size_bytes = kb 32; assoc = 2; line_bytes = 64 };
    l2 = Some { size_bytes = kb 1024; assoc = 8; line_bytes = 64 };
    l1_latency = 2;
    l2_latency = 10;
    mem_latency = 100;
    mul_latency = 3;
    dise_decode = Free;
    perfect_branch_pred = false;
  }

let with_icache_kb size t =
  match size with
  | None -> { t with icache = None }
  | Some n -> { t with icache = Some { size_bytes = kb n; assoc = 2; line_bytes = 64 } }

let with_width w t = { t with width = w }
let with_dise_decode d t = { t with dise_decode = d }

module Json = Dise_telemetry.Json

let cache_to_json = function
  | None -> Json.Null
  | Some c ->
    Json.Obj
      [
        ("size_bytes", Json.Int c.size_bytes);
        ("assoc", Json.Int c.assoc);
        ("line_bytes", Json.Int c.line_bytes);
      ]

let decode_name = function
  | Free -> "free"
  | Stall_per_expansion -> "stall_per_expansion"
  | Extra_stage -> "extra_stage"

let to_json t =
  Json.Obj
    [
      ("width", Json.Int t.width);
      ("depth", Json.Int t.depth);
      ("rob_size", Json.Int t.rob_size);
      ("icache", cache_to_json t.icache);
      ("dcache", cache_to_json t.dcache);
      ("l2", cache_to_json t.l2);
      ("l1_latency", Json.Int t.l1_latency);
      ("l2_latency", Json.Int t.l2_latency);
      ("mem_latency", Json.Int t.mem_latency);
      ("mul_latency", Json.Int t.mul_latency);
      ("dise_decode", Json.String (decode_name t.dise_decode));
      ("perfect_branch_pred", Json.Bool t.perfect_branch_pred);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let int_field name =
    match Json.member name j with
    | Some (Json.Int v) -> Ok v
    | Some _ -> Error (Printf.sprintf "machine.%s: expected integer" name)
    | None -> Error (Printf.sprintf "machine.%s: missing" name)
  in
  let cache_field name =
    match Json.member name j with
    | Some Json.Null -> Ok None
    | Some (Json.Obj _ as c) ->
      let cint k =
        match Json.member k c with
        | Some (Json.Int v) -> Ok v
        | _ -> Error (Printf.sprintf "machine.%s.%s: expected integer" name k)
      in
      let* size_bytes = cint "size_bytes" in
      let* assoc = cint "assoc" in
      let* line_bytes = cint "line_bytes" in
      Ok (Some { size_bytes; assoc; line_bytes })
    | Some _ -> Error (Printf.sprintf "machine.%s: expected object or null" name)
    | None -> Error (Printf.sprintf "machine.%s: missing" name)
  in
  let* width = int_field "width" in
  let* depth = int_field "depth" in
  let* rob_size = int_field "rob_size" in
  let* icache = cache_field "icache" in
  let* dcache = cache_field "dcache" in
  let* l2 = cache_field "l2" in
  let* l1_latency = int_field "l1_latency" in
  let* l2_latency = int_field "l2_latency" in
  let* mem_latency = int_field "mem_latency" in
  let* mul_latency = int_field "mul_latency" in
  let* dise_decode =
    match Json.member "dise_decode" j with
    | Some (Json.String "free") -> Ok Free
    | Some (Json.String "stall_per_expansion") -> Ok Stall_per_expansion
    | Some (Json.String "extra_stage") -> Ok Extra_stage
    | Some (Json.String s) ->
      Error (Printf.sprintf "machine.dise_decode: unknown %S" s)
    | _ -> Error "machine.dise_decode: expected string"
  in
  let* perfect_branch_pred =
    match Json.member "perfect_branch_pred" j with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "machine.perfect_branch_pred: expected boolean"
  in
  Ok
    {
      width;
      depth;
      rob_size;
      icache;
      dcache;
      l2;
      l1_latency;
      l2_latency;
      mem_latency;
      mul_latency;
      dise_decode;
      perfect_branch_pred;
    }

let pp_cache ppf = function
  | None -> Format.pp_print_string ppf "perfect"
  | Some c ->
    Format.fprintf ppf "%dKB/%d-way/%dB" (c.size_bytes / 1024) c.assoc
      c.line_bytes

let pp ppf t =
  Format.fprintf ppf
    "%d-wide depth=%d rob=%d I$=%a D$=%a L2=%a dise=%s bp=%s" t.width t.depth
    t.rob_size pp_cache t.icache pp_cache t.dcache pp_cache t.l2
    (match t.dise_decode with
    | Free -> "free"
    | Stall_per_expansion -> "stall"
    | Extra_stage -> "+pipe")
    (if t.perfect_branch_pred then "perfect" else "gshare")
