type cache_cfg = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
}

type dise_decode =
  | Free
  | Stall_per_expansion
  | Extra_stage

type t = {
  width : int;
  depth : int;
  rob_size : int;
  icache : cache_cfg option;
  dcache : cache_cfg option;
  l2 : cache_cfg option;
  l1_latency : int;
  l2_latency : int;
  mem_latency : int;
  mul_latency : int;
  dise_decode : dise_decode;
  perfect_branch_pred : bool;
}

let kb n = n * 1024

let default =
  {
    width = 4;
    depth = 12;
    rob_size = 128;
    icache = Some { size_bytes = kb 32; assoc = 2; line_bytes = 64 };
    dcache = Some { size_bytes = kb 32; assoc = 2; line_bytes = 64 };
    l2 = Some { size_bytes = kb 1024; assoc = 8; line_bytes = 64 };
    l1_latency = 2;
    l2_latency = 10;
    mem_latency = 100;
    mul_latency = 3;
    dise_decode = Free;
    perfect_branch_pred = false;
  }

let with_icache_kb size t =
  match size with
  | None -> { t with icache = None }
  | Some n -> { t with icache = Some { size_bytes = kb n; assoc = 2; line_bytes = 64 } }

let with_width w t = { t with width = w }
let with_dise_decode d t = { t with dise_decode = d }

let pp_cache ppf = function
  | None -> Format.pp_print_string ppf "perfect"
  | Some c ->
    Format.fprintf ppf "%dKB/%d-way/%dB" (c.size_bytes / 1024) c.assoc
      c.line_bytes

let pp ppf t =
  Format.fprintf ppf
    "%d-wide depth=%d rob=%d I$=%a D$=%a L2=%a dise=%s bp=%s" t.width t.depth
    t.rob_size pp_cache t.icache pp_cache t.dcache pp_cache t.l2
    (match t.dise_decode with
    | Free -> "free"
    | Stall_per_expansion -> "stall"
    | Extra_stage -> "+pipe")
    (if t.perfect_branch_pred then "perfect" else "gshare")
