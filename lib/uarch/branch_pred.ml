type kind =
  | Cond
  | Direct
  | Indirect
  | Return

type t = {
  perfect : bool;
  hist_mask : int;
  pht : Bytes.t;             (* 2-bit counters *)
  btb_tags : int array;
  btb_targets : int array;
  ras : int array;
  mutable ras_top : int;     (* number of valid entries, capped *)
  mutable history : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

let create ?(hist_bits = 12) ?(btb_entries = 2048) ?(ras_entries = 16) () =
  let pht_size = 1 lsl hist_bits in
  {
    perfect = false;
    hist_mask = pht_size - 1;
    pht = Bytes.make pht_size '\002';  (* weakly taken *)
    btb_tags = Array.make btb_entries (-1);
    btb_targets = Array.make btb_entries 0;
    ras = Array.make ras_entries 0;
    ras_top = 0;
    history = 0;
    lookups = 0;
    mispredicts = 0;
  }

let perfect () =
  {
    perfect = true;
    hist_mask = 0;
    pht = Bytes.create 1;
    btb_tags = [| -1 |];
    btb_targets = [| 0 |];
    ras = [| 0 |];
    ras_top = 0;
    history = 0;
    lookups = 0;
    mispredicts = 0;
  }

let pht_index t pc = ((pc lsr 2) lxor t.history) land t.hist_mask

let predict_dir t pc = Char.code (Bytes.get t.pht (pht_index t pc)) >= 2

let train_dir t pc taken =
  let i = pht_index t pc in
  let c = Char.code (Bytes.get t.pht i) in
  let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
  Bytes.set t.pht i (Char.chr c');
  t.history <- ((t.history lsl 1) lor (if taken then 1 else 0)) land t.hist_mask

let btb_index t pc = (pc lsr 2) mod Array.length t.btb_tags

let btb_predict t pc =
  let i = btb_index t pc in
  if t.btb_tags.(i) = pc then Some t.btb_targets.(i) else None

let btb_train t pc target =
  let i = btb_index t pc in
  t.btb_tags.(i) <- pc;
  t.btb_targets.(i) <- target

let ras_push t addr =
  let n = Array.length t.ras in
  (* Shift-free circular push: overwrite oldest when full. *)
  if t.ras_top < n then begin
    t.ras.(t.ras_top) <- addr;
    t.ras_top <- t.ras_top + 1
  end
  else begin
    Array.blit t.ras 1 t.ras 0 (n - 1);
    t.ras.(n - 1) <- addr
  end

let ras_pop t =
  if t.ras_top = 0 then None
  else begin
    t.ras_top <- t.ras_top - 1;
    Some t.ras.(t.ras_top)
  end

let record t outcome =
  t.lookups <- t.lookups + 1;
  (match outcome with
  | `Mispredict -> t.mispredicts <- t.mispredicts + 1
  | `Correct -> ());
  outcome

let on_branch t ~pc ~kind ~taken ~target ~fallthrough =
  ignore fallthrough;
  if t.perfect then record t `Correct
  else
    match kind with
    | Cond ->
      let predicted = predict_dir t pc in
      train_dir t pc taken;
      record t (if predicted = taken then `Correct else `Mispredict)
    | Direct -> record t `Correct
    | Indirect ->
      let predicted = btb_predict t pc in
      btb_train t pc target;
      record t
        (match predicted with
        | Some p when p = target -> `Correct
        | Some _ | None -> `Mispredict)
    | Return -> (
      match ras_pop t with
      | Some p when p = target -> record t `Correct
      | Some _ | None -> record t `Mispredict)

let on_call t ~pc ~target ~fallthrough ~indirect =
  if t.perfect then record t `Correct
  else begin
    ras_push t fallthrough;
    if indirect then begin
      let predicted = btb_predict t pc in
      btb_train t pc target;
      record t
        (match predicted with
        | Some p when p = target -> `Correct
        | Some _ | None -> `Mispredict)
    end
    else record t `Correct
  end

let lookups t = t.lookups
let mispredicts t = t.mispredicts

let mispredict_rate t =
  if t.lookups = 0 then 0.
  else float_of_int t.mispredicts /. float_of_int t.lookups
