(** Generic set-associative cache model (LRU), used for the I-cache,
    D-cache, and the unified L2. Tracks line presence only — the
    timing model charges latencies from hit/miss outcomes. *)

type t

val create : size_bytes:int -> assoc:int -> line_bytes:int -> t
(** Raises [Invalid_argument] unless sizes are positive,
    [size_bytes] is divisible by [assoc * line_bytes], and both the
    line size and the resulting set count are powers of two (so
    indexing is mask-and-shift on the hot path). *)

val access : t -> int -> [ `Hit | `Miss ]
(** Touch the line containing the byte address; allocates on miss. *)

val probe : t -> int -> bool
(** Presence check without LRU update or allocation. *)

val line_bytes : t -> int

val line_of : t -> int -> int
(** Line number of a byte address ([addr lsr line_shift]) — division
    avoided on the per-fetch path. *)

val size_bytes : t -> int
val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset_stats : t -> unit
val invalidate : t -> unit
