(** Counters collected by one timing-simulation run. *)

type t = {
  mutable cycles : int;
  mutable retired : int;       (** all dynamic instructions (app + replacement) *)
  mutable app_instrs : int;    (** application-level fetches *)
  mutable rep_instrs : int;    (** replacement instructions beyond the trigger *)
  mutable expansions : int;
  mutable icache_accesses : int;
  mutable icache_misses : int;
  mutable dcache_accesses : int;
  mutable dcache_misses : int;
  mutable l2_accesses : int;
  mutable l2_misses : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable dise_branch_redirects : int;  (** taken DISE-internal branches *)
  mutable rep_branch_redirects : int;
      (** taken non-trigger replacement branches (predicted not-taken) *)
  mutable dise_stall_cycles : int;  (** PT/RT miss + per-expansion stalls *)
  mutable pt_misses : int;
  mutable rt_misses : int;
  mutable rt_accesses : int;
}

val create : unit -> t
val ipc : t -> float
val pp : Format.formatter -> t -> unit
