(** Counters collected by one timing-simulation run. *)

type t = {
  mutable cycles : int;
  mutable retired : int;       (** all dynamic instructions (app + replacement) *)
  mutable app_instrs : int;    (** application-level fetches *)
  mutable rep_instrs : int;    (** replacement instructions beyond the trigger *)
  mutable expansions : int;
  mutable icache_accesses : int;
  mutable icache_misses : int;
  mutable dcache_accesses : int;
  mutable dcache_misses : int;
  mutable l2_accesses : int;
  mutable l2_misses : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable dise_branch_redirects : int;  (** taken DISE-internal branches *)
  mutable rep_branch_redirects : int;
      (** taken non-trigger replacement branches (predicted not-taken) *)
  mutable dise_stall_cycles : int;  (** PT/RT miss + per-expansion stalls *)
  mutable pt_misses : int;
  mutable rt_misses : int;
  mutable rt_accesses : int;
  mutable jit_compiles : int;     (** superblocks compiled (0 when JIT off) *)
  mutable jit_hits : int;         (** dispatches served from a compiled block *)
  mutable jit_invalidations : int;  (** superblocks retired by generation bumps *)
  cpi : Dise_telemetry.Cpi_stack.t;
      (** per-bucket cycle attribution; the pipeline maintains the
          invariant that the buckets sum to [cycles] exactly *)
}

val create : unit -> t
val ipc : t -> float

val to_json : t -> Dise_telemetry.Json.t
(** All counters plus derived [ipc] and the nested [cpi_stack]
    object (see doc/schema/stats.schema.json). *)

val of_json : Dise_telemetry.Json.t -> (t, string) result
(** Inverse of {!to_json}: every counter and the [cpi_stack] object
    must be present ([ipc] is derived and ignored). The round-trip is
    exact — all persisted fields are integers — which is what lets
    the on-disk result cache ({!Dise_service.Cache}) serve stats
    byte-identical to a fresh simulation. *)

val pp : Format.formatter -> t -> unit
