module I = Dise_isa.Insn
module Op = Dise_isa.Opcode
module Reg = Dise_isa.Reg
module Machine = Dise_machine.Machine
module Event = Dise_machine.Machine.Event
module Controller = Dise_core.Controller
module Cpi_stack = Dise_telemetry.Cpi_stack
module Trace = Dise_telemetry.Trace
module Profile = Dise_telemetry.Profile
module Json = Dise_telemetry.Json

(* Redirect causes, for CPI attribution of the fetch bubble the next
   instruction observes. *)
let redirect_none = 0
let redirect_mispredict = 1
let redirect_replacement = 2  (* taken replacement or DISE-internal branch *)

type t = {
  cfg : Config.t;
  icache : Cache.t option;
  dcache : Cache.t option;
  l2 : Cache.t option;
  bp : Branch_pred.t;
  controller : Controller.t option;
  stats : Stats.t;
  trace : Trace.t option;
  profile : Profile.t option;
  trace_lanes : int;
  reg_ready : int array;
  rob : int array;  (* ring buffer of retire timestamps *)
  issue_ring : int array;  (* last [width] issue timestamps *)
  mutable issue_head : int;
  mutable serial_stalls : int;
  mutable seq : int;
  mutable fetch_cycle : int;
  mutable fetch_count : int;
  mutable last_line : int;
  mutable last_l2_ifetch_line : int;
  mutable last_retire : int;
  mutable pending_redirect : int;
      (* cause of the most recent redirect, consumed by the first
         instruction fetched after it *)
  mutable dmiss : bool;
      (* the instruction currently being consumed took an L1-D load miss *)
  mutable finished : bool;
  raw_scratch : Machine.Raw.t;
      (* backing store for the [consume] (event-typed) entry point:
         events are translated into raw form so there is exactly one
         consumption path *)
}

let make_cache = function
  | None -> None
  | Some { Config.size_bytes; assoc; line_bytes } ->
    Some (Cache.create ~size_bytes ~assoc ~line_bytes)

let create ?controller ?trace ?profile (cfg : Config.t) =
  let trace_lanes = 4 * max 1 cfg.width in
  (match trace with
  | None -> ()
  | Some tr ->
    Trace.metadata_thread tr ~tid:0 ~name:"stalls+redirects";
    for i = 1 to trace_lanes do
      Trace.metadata_thread tr ~tid:i ~name:(Printf.sprintf "pipe slot %d" (i - 1))
    done);
  {
    cfg;
    icache = make_cache cfg.icache;
    dcache = make_cache cfg.dcache;
    l2 = make_cache cfg.l2;
    bp =
      (if cfg.perfect_branch_pred then Branch_pred.perfect ()
       else Branch_pred.create ());
    controller;
    stats = Stats.create ();
    trace;
    profile;
    trace_lanes;
    reg_ready = Array.make (Reg.num_arch + Reg.num_dedicated) 0;
    rob = Array.make (max cfg.rob_size cfg.width) 0;
    issue_ring = Array.make (max 1 cfg.width) 0;
    issue_head = 0;
    serial_stalls = 0;
    seq = 0;
    fetch_cycle = 0;
    fetch_count = 0;
    last_line = -1;
    last_l2_ifetch_line = min_int;
    last_retire = 0;
    pending_redirect = redirect_none;
    dmiss = false;
    finished = false;
    raw_scratch = Machine.Raw.make ();
  }

(* Penalty of an L1 miss: the L2 access, plus memory on an L2 miss.
   [prefetched] marks L2 misses whose latency a next-line prefetcher
   would have hidden (sequential instruction streaming): they cost only
   the L2 access. *)
let l1_miss_penalty ?(prefetched = false) t addr =
  match t.l2 with
  | None -> t.cfg.l2_latency
  | Some l2 -> (
    t.stats.Stats.l2_accesses <- t.stats.Stats.l2_accesses + 1;
    match Cache.access l2 addr with
    | `Hit -> t.cfg.l2_latency
    | `Miss ->
      t.stats.Stats.l2_misses <- t.stats.Stats.l2_misses + 1;
      if prefetched then t.cfg.l2_latency
      else t.cfg.l2_latency + t.cfg.mem_latency)

let redirect_depth t =
  t.cfg.depth + (match t.cfg.dise_decode with Config.Extra_stage -> 1 | _ -> 0)

(* Restart fetch after a pipeline redirect resolving at [cycle].
   [cause] tells CPI attribution which bucket the bubble belongs to
   once the next fetched instruction exposes it. *)
let redirect t ~cause cycle =
  t.fetch_cycle <- max t.fetch_cycle (cycle + redirect_depth t);
  t.fetch_count <- 0;
  t.last_line <- -1;
  t.pending_redirect <- cause;
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.instant tr
      ~name:
        (if cause = redirect_mispredict then "mispredict-redirect"
         else "replacement-redirect")
      ~cat:"redirect" ~ts:cycle ~tid:0 ~args:[]

(* End the current fetch group (taken branch or stall). *)
let break_group t extra =
  t.fetch_cycle <- t.fetch_cycle + 1 + extra;
  t.fetch_count <- 0

(* A serializing stall (I-fetch miss, DISE decode stall, PT/RT miss
   flush): the whole pipeline stops or is flushed, so the cycles
   cannot be hidden behind front-end slack, ROB back-pressure, or
   spare issue slots the way an ordinary fetch bubble can. Every
   timestamp in this model is relative and all microarchitectural
   state (caches, predictor) is timing-independent, so a
   whole-timeline offset accounts for these stalls exactly: accumulate
   them and add the total to the final cycle count. Each stall is
   charged in full to the CPI bucket of the event that raised it. *)
let serialize_stall t bucket cycles =
  if cycles > 0 then begin
    t.serial_stalls <- t.serial_stalls + cycles;
    let cpi = t.stats.Stats.cpi in
    (match bucket with
    | `Icache -> cpi.Cpi_stack.icache <- cpi.Cpi_stack.icache + cycles
    | `Ptrt -> cpi.Cpi_stack.ptrt_miss <- cpi.Cpi_stack.ptrt_miss + cycles
    | `Decode -> cpi.Cpi_stack.dise_decode <- cpi.Cpi_stack.dise_decode + cycles);
    t.fetch_count <- 0;
    match t.trace with
    | None -> ()
    | Some tr ->
      Trace.instant tr
        ~name:
          (match bucket with
          | `Icache -> "icache-miss-stall"
          | `Ptrt -> "pt/rt-miss-stall"
          | `Decode -> "decode-stall")
        ~cat:"stall" ~ts:t.fetch_cycle ~tid:0
        ~args:[ ("cycles", Json.Int cycles) ]
  end

(* [mem_addr] is the raw-form effective address ([Machine.Raw.no_mem]
   when the instruction made no access; loads/stores always set it, so
   the sentinel is defensively treated as address 0, matching the old
   event path's [None -> 0]). *)
let latency_of t insn ~mem_addr =
  match insn with
  | I.Rop (Op.Mul, _, _, _) | I.Ropi (Op.Mul, _, _, _) -> t.cfg.mul_latency
  | I.Mem ((Op.Ldq | Op.Ldbu), _, _, _) -> (
    t.stats.Stats.dcache_accesses <- t.stats.Stats.dcache_accesses + 1;
    match t.dcache with
    | None -> t.cfg.l1_latency
    | Some dc -> (
      let addr = if mem_addr = Machine.Raw.no_mem then 0 else mem_addr in
      match Cache.access dc addr with
      | `Hit -> t.cfg.l1_latency
      | `Miss ->
        t.stats.Stats.dcache_misses <- t.stats.Stats.dcache_misses + 1;
        t.dmiss <- true;
        t.cfg.l1_latency + l1_miss_penalty t addr))
  | I.Mem ((Op.Stq | Op.Stb), _, _, _) ->
    (* Stores retire through a store buffer; charge 1 cycle but track
       the footprint. *)
    t.stats.Stats.dcache_accesses <- t.stats.Stats.dcache_accesses + 1;
    (match t.dcache with
    | None -> ()
    | Some dc -> (
      let addr = if mem_addr = Machine.Raw.no_mem then 0 else mem_addr in
      match Cache.access dc addr with
      | `Hit -> ()
      | `Miss ->
        t.stats.Stats.dcache_misses <- t.stats.Stats.dcache_misses + 1;
        ignore (l1_miss_penalty t addr)));
    1
  | _ -> 1

let branch_kind insn =
  match insn with
  | I.Br _ -> Some Branch_pred.Cond
  | I.Jmp _ -> Some Branch_pred.Direct
  | I.Jr r when Reg.equal r Reg.ra -> Some Branch_pred.Return
  | I.Jr _ -> Some Branch_pred.Indirect
  | I.Jal _ | I.Jalr _ -> None  (* handled as calls *)
  | _ -> None

let is_call = function I.Jal _ | I.Jalr _ -> true | _ -> false

(* The single consumption path, over the machine's raw (allocation
   free) step record. [rsid < 0] means an application instruction;
   [branch < 0] no branch, else bit 0 = taken / bit 1 = dise_internal;
   [mem_addr = Raw.no_mem] no memory access. *)
let consume_raw t (r : Machine.Raw.t) =
  let cfg = t.cfg in
  let stats = t.stats in
  (* The redirect bubble set by a previous instruction is attributed
     (at most once) to the first instruction whose issue is bound by
     the delayed fetch — this one, if any. *)
  let pending = t.pending_redirect in
  t.pending_redirect <- redirect_none;
  t.dmiss <- false;
  (* ---- fetch ---- *)
  if t.fetch_count >= cfg.width then begin
    t.fetch_cycle <- t.fetch_cycle + 1;
    t.fetch_count <- 0
  end;
  if r.Machine.Raw.fetched_new_pc then begin
    stats.Stats.app_instrs <- stats.Stats.app_instrs + 1;
    (match t.profile with
    | None -> ()
    | Some p -> Profile.on_fetch p ~pc:r.Machine.Raw.pc);
    (match t.icache with
    | None -> ()
    | Some ic ->
      let line = Cache.line_of ic r.Machine.Raw.pc in
      if line <> t.last_line then begin
        t.last_line <- line;
        stats.Stats.icache_accesses <- stats.Stats.icache_accesses + 1;
        match Cache.access ic r.Machine.Raw.pc with
        | `Hit -> ()
        | `Miss ->
          stats.Stats.icache_misses <- stats.Stats.icache_misses + 1;
          let prefetched = line = t.last_l2_ifetch_line + 1 in
          t.last_l2_ifetch_line <- line;
          (* Instruction misses starve the whole core: the decoupling
             queue drains in a couple of cycles, so unlike data misses
             the latency is essentially exposed. *)
          serialize_stall t `Icache (l1_miss_penalty ~prefetched t r.Machine.Raw.pc)
      end);
    (* PT inspection happens on every application fetch. *)
    match t.controller with
    | None -> ()
    | Some c ->
      let stall = Controller.on_fetch c ~key:(I.key r.Machine.Raw.insn) in
      if stall > 0 then begin
        stats.Stats.dise_stall_cycles <- stats.Stats.dise_stall_cycles + stall;
        serialize_stall t `Ptrt stall
      end
  end
  else stats.Stats.rep_instrs <- stats.Stats.rep_instrs + 1;
  (* An expansion is charged once, at its first instruction. An
     interrupt resumption re-enters a sequence at offset > 0 with
     [expansion_start] set; that re-expansion is not a new dynamic
     expansion, so the offset guard excludes it — exactly the
     [Rep { offset = 0; _ } when expansion_start] match of the event
     path. *)
  if r.Machine.Raw.expansion_start && r.Machine.Raw.offset = 0 then begin
    let rsid = r.Machine.Raw.rsid and len = r.Machine.Raw.len in
    stats.Stats.expansions <- stats.Stats.expansions + 1;
    (match t.profile with
    | None -> ()
    | Some p -> Profile.on_expansion p ~rsid ~pc:r.Machine.Raw.pc);
    (match t.controller with
    | None -> ()
    | Some c ->
      stats.Stats.rt_accesses <- stats.Stats.rt_accesses + 1;
      let stall = Controller.on_expansion c ~rsid ~len in
      (match t.profile with
      | None -> ()
      | Some p -> Profile.on_rt p ~rsid ~miss:(stall > 0));
      if stall > 0 then begin
        stats.Stats.rt_misses <- stats.Stats.rt_misses + 1;
        stats.Stats.dise_stall_cycles <- stats.Stats.dise_stall_cycles + stall;
        serialize_stall t `Ptrt stall
      end);
    (match cfg.dise_decode with
    | Config.Stall_per_expansion ->
      stats.Stats.dise_stall_cycles <- stats.Stats.dise_stall_cycles + 1;
      serialize_stall t `Decode 1
    | Config.Free | Config.Extra_stage -> ())
  end;
  (match t.profile with
  | Some p when r.Machine.Raw.rsid >= 0 ->
    Profile.on_rep_instr p ~rsid:r.Machine.Raw.rsid
  | _ -> ());
  let fetch = t.fetch_cycle in
  t.fetch_count <- t.fetch_count + 1;
  (* ---- dispatch: ROB back-pressure ---- *)
  let rob_len = Array.length t.rob in
  let rob_bound =
    t.seq >= cfg.rob_size
    && t.rob.((t.seq - cfg.rob_size) mod rob_len) > fetch
  in
  let fetch =
    if rob_bound then t.rob.((t.seq - cfg.rob_size) mod rob_len) else fetch
  in
  t.fetch_cycle <- max t.fetch_cycle fetch;
  (* ---- issue / execute ---- *)
  let src_ready =
    I.fold_uses (fun acc reg -> max acc t.reg_ready.(Reg.index reg)) 0
      r.Machine.Raw.insn
  in
  (* Issue bandwidth: at most [width] instructions may begin execution
     per cycle; the [width]-th previous issue bounds this one. *)
  let bandwidth_ready = t.issue_ring.(t.issue_head) + 1 in
  let fetch_dominant = fetch >= src_ready && fetch >= bandwidth_ready in
  let start = max (max fetch src_ready) bandwidth_ready in
  t.issue_ring.(t.issue_head) <- start;
  t.issue_head <- (t.issue_head + 1) mod Array.length t.issue_ring;
  let lat = latency_of t r.Machine.Raw.insn ~mem_addr:r.Machine.Raw.mem_addr in
  let complete = start + lat in
  I.iter_defs (fun reg -> t.reg_ready.(Reg.index reg) <- complete)
    r.Machine.Raw.insn;
  (* ---- control flow ---- *)
  (if r.Machine.Raw.branch >= 0 then begin
     let taken = r.Machine.Raw.branch land 1 <> 0 in
     let target = r.Machine.Raw.target in
     if r.Machine.Raw.branch land 2 <> 0 then begin
       (* A taken DISE branch is interpreted as a misprediction. *)
       if taken then begin
         stats.Stats.dise_branch_redirects <-
           stats.Stats.dise_branch_redirects + 1;
         redirect t ~cause:redirect_replacement complete
       end
     end
     else begin
       stats.Stats.branches <- stats.Stats.branches + 1;
       let predicted_normally =
         (* Only the trigger (last element of a replacement sequence)
            was seen by the fetch-side predictor; prediction of other
            replacement branches is suppressed. *)
         r.Machine.Raw.rsid < 0
         || r.Machine.Raw.offset = r.Machine.Raw.len - 1
       in
       if predicted_normally then begin
         let fallthrough = r.Machine.Raw.pc + 4 in
         let outcome =
           if is_call r.Machine.Raw.insn then
             Branch_pred.on_call t.bp ~pc:r.Machine.Raw.pc ~target ~fallthrough
               ~indirect:
                 (match r.Machine.Raw.insn with I.Jalr _ -> true | _ -> false)
           else
             match branch_kind r.Machine.Raw.insn with
             | Some kind ->
               Branch_pred.on_branch t.bp ~pc:r.Machine.Raw.pc ~kind ~taken
                 ~target ~fallthrough
             | None -> `Correct
         in
         match outcome with
         | `Mispredict ->
           stats.Stats.mispredicts <- stats.Stats.mispredicts + 1;
           redirect t ~cause:redirect_mispredict complete
         | `Correct -> if taken then break_group t 0
       end
       else if taken then begin
         (* Effectively predicted not-taken: a taken replacement branch
            redirects (this is the fault-isolation trap path). *)
         stats.Stats.rep_branch_redirects <- stats.Stats.rep_branch_redirects + 1;
         redirect t ~cause:redirect_replacement complete
       end
     end
   end);
  (* ---- retire ---- *)
  let in_order = if t.seq > 0 then t.rob.((t.seq - 1) mod rob_len) else 0 in
  let bandwidth =
    if t.seq >= cfg.width then t.rob.((t.seq - cfg.width) mod rob_len) + 1
    else 0
  in
  let retire = max complete (max in_order bandwidth) in
  (* ---- CPI attribution ----
     The retire-to-retire gap of this instruction is charged, in full,
     to the dominant constraint. Retire timestamps are monotonic
     (retire >= in_order = previous retire), so these gaps partition
     [0, last_retire] exactly; together with the serializing-stall
     charges above, every cycle of the final count lands in exactly
     one bucket. *)
  let delta = retire - t.last_retire in
  if delta > 0 then begin
    let cpi = stats.Stats.cpi in
    if complete < retire then
      (* Retire-bandwidth (or in-order) limited: the machine was
         retiring at full width — base. *)
      cpi.Cpi_stack.base <- cpi.Cpi_stack.base + delta
    else if t.dmiss then cpi.Cpi_stack.dcache <- cpi.Cpi_stack.dcache + delta
    else if pending <> redirect_none && fetch_dominant then begin
      if pending = redirect_mispredict then
        cpi.Cpi_stack.branch <- cpi.Cpi_stack.branch + delta
      else cpi.Cpi_stack.rep_redirect <- cpi.Cpi_stack.rep_redirect + delta
    end
    else if rob_bound && fetch_dominant then
      cpi.Cpi_stack.rob <- cpi.Cpi_stack.rob + delta
    else cpi.Cpi_stack.base <- cpi.Cpi_stack.base + delta
  end;
  (match t.trace with
  | None -> ()
  | Some tr ->
    let origin_args =
      if r.Machine.Raw.rsid < 0 then []
      else
        [ ("rsid", Json.Int r.Machine.Raw.rsid);
          ("offset", Json.Int r.Machine.Raw.offset);
          ("len", Json.Int r.Machine.Raw.len) ]
    in
    Trace.complete tr
      ~name:(I.to_string r.Machine.Raw.insn)
      ~cat:(if r.Machine.Raw.rsid < 0 then "app" else "rep")
      ~ts:fetch ~dur:(max 1 (retire - fetch))
      ~tid:(1 + (t.seq mod t.trace_lanes))
      ~args:
        (("pc", Json.String (Printf.sprintf "0x%x" r.Machine.Raw.pc))
        :: ("seq", Json.Int t.seq)
        :: ("issue", Json.Int start)
        :: ("complete", Json.Int complete)
        :: ("retire", Json.Int retire)
        :: origin_args));
  t.rob.(t.seq mod rob_len) <- retire;
  t.last_retire <- retire;
  t.seq <- t.seq + 1;
  stats.Stats.retired <- stats.Stats.retired + 1

(* Event-typed entry point (interactive/debug drivers): translate into
   the scratch raw record and feed the single consumption path. *)
let consume t (ev : Event.t) =
  let r = t.raw_scratch in
  r.Machine.Raw.pc <- ev.Event.pc;
  r.Machine.Raw.insn <- ev.Event.insn;
  (match ev.Event.origin with
  | Event.App ->
    r.Machine.Raw.rsid <- -1;
    r.Machine.Raw.offset <- 0;
    r.Machine.Raw.len <- 0
  | Event.Rep { rsid; offset; len } ->
    r.Machine.Raw.rsid <- rsid;
    r.Machine.Raw.offset <- offset;
    r.Machine.Raw.len <- len);
  r.Machine.Raw.expansion_start <- ev.Event.expansion_start;
  r.Machine.Raw.fetched_new_pc <- ev.Event.fetched_new_pc;
  r.Machine.Raw.mem_addr <-
    (match ev.Event.mem_addr with Some a -> a | None -> Machine.Raw.no_mem);
  (match ev.Event.branch with
  | None -> r.Machine.Raw.branch <- -1
  | Some b ->
    r.Machine.Raw.branch <-
      (if b.Event.taken then 1 else 0) lor (if b.Event.dise_internal then 2 else 0);
    r.Machine.Raw.target <- b.Event.target);
  consume_raw t r

let finish t =
  if not t.finished then begin
    t.finished <- true;
    t.stats.Stats.cycles <- t.last_retire + t.serial_stalls;
    (match t.controller with
    | Some c ->
      let cs = Controller.stats c in
      t.stats.Stats.pt_misses <- cs.Controller.pt_misses
    | None -> ());
    Cpi_stack.check t.stats.Stats.cpi ~cycles:t.stats.Stats.cycles;
    match t.trace with None -> () | Some tr -> Trace.close tr
  end;
  t.stats

let run ?max_steps ?controller ?trace ?profile ?poll cfg machine =
  let p = create ?controller ?trace ?profile cfg in
  (* The raw stream allocates nothing per dynamic instruction (no
     Event record, no options); polling for deadlines moved into the
     machine loop at the same 2048-event cadence. *)
  ignore (Machine.run_raw ?max_steps ?poll machine (fun r -> consume_raw p r));
  let stats = finish p in
  stats.Stats.jit_compiles <- Machine.jit_compiles machine;
  stats.Stats.jit_hits <- Machine.jit_hits machine;
  stats.Stats.jit_invalidations <- Machine.jit_invalidations machine;
  stats
