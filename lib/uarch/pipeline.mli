(** Trace-driven superscalar timing model.

    Consumes the dynamic (post-DISE) instruction stream produced by the
    functional machine and computes per-instruction timestamps through
    a classic one-pass scoreboard approximation of an out-of-order
    core:

    - fetch: [width] instructions per cycle, a taken branch ends the
      group; application fetches access the I-cache (replacement
      instructions are fed by the RT and do not); I-cache misses stall
      fetch for the L2/memory latency;
    - DISE: PT/RT miss stalls from the {!Dise_core.Controller} are
      charged at fetch, as is the optional one-cycle stall per
      expansion; the extra-stage option deepens every redirect;
    - dispatch: bounded by ROB occupancy (an instruction cannot enter
      until the instruction [rob_size] before it has retired);
    - issue: an instruction starts when its source registers are ready,
      its fetch has happened, and an issue slot is free ([width] issues
      per cycle); latencies are 1 cycle for ALU ops and
      correctly-predicted branches, [mul_latency] for multiplies, and
      D-cache-determined latency for loads;
    - control: conditional/indirect application branches are predicted
      (gshare/BTB/RAS); non-trigger replacement branches are treated as
      predicted not-taken and taken DISE-internal branches as
      mispredictions, per Section 2.2; every redirect restarts fetch
      [depth] cycles after the branch resolves;
    - retire: in order, [width] per cycle.

    Absolute cycle counts are approximations; the harness reports
    execution times normalized to a baseline run, as the paper does.

    {2 Telemetry}

    Every simulated cycle is attributed to exactly one
    {!Dise_telemetry.Cpi_stack} bucket (see doc/observability.md for
    the bucket definitions and the attribution rules); {!finish}
    asserts that the buckets sum to the final cycle count. Optional
    sinks — a {!Dise_telemetry.Trace} Chrome-trace writer emitting one
    span per retired instruction and a {!Dise_telemetry.Profile}
    recording per-production and per-PC expansion activity — cost
    nothing (no allocation, one [option] match per event) when
    absent. *)

type t

val create :
  ?controller:Dise_core.Controller.t ->
  ?trace:Dise_telemetry.Trace.t ->
  ?profile:Dise_telemetry.Profile.t ->
  Config.t ->
  t

val consume : t -> Dise_machine.Machine.Event.t -> unit
(** Event-typed entry point; translates into raw form and feeds
    {!consume_raw}. *)

val consume_raw : t -> Dise_machine.Machine.Raw.t -> unit
(** The hot consumption path: reads the machine's mutable scratch
    record directly, allocating nothing per dynamic instruction.
    {!run} drives this via {!Dise_machine.Machine.run_raw}. *)

val finish : t -> Stats.t
(** Close the run and return the populated statistics (cycle count =
    retire time of the last instruction plus serializing stalls).
    Checks the CPI-stack invariant and closes the trace sink, if any.
    Idempotent. *)

val run :
  ?max_steps:int ->
  ?controller:Dise_core.Controller.t ->
  ?trace:Dise_telemetry.Trace.t ->
  ?profile:Dise_telemetry.Profile.t ->
  ?poll:(unit -> unit) ->
  Config.t ->
  Dise_machine.Machine.t ->
  Stats.t
(** Convenience driver: step the machine to completion, feeding every
    event through a fresh pipeline.

    [poll] is a cooperative cancellation hook: when given, it is
    called once every ~2048 events and may abort the run by raising
    (the service layer raises [Resilience.Deadline_exceeded] from it
    to enforce per-job wall-clock budgets — OCaml domains cannot be
    cancelled from outside, so long simulations must poll). Without
    [poll] the event loop is unchanged. *)
