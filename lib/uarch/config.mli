(** Machine configurations for the timing model.

    The default mirrors the paper's simulated machine: a MIPS
    R10000-like 4-way superscalar, 12-stage pipeline, 128-entry
    reorder buffer, 32KB 2-way instruction and data caches, and a
    unified 1MB 8-way L2. The DISE decode option selects between the
    three engine placements of Section 2.2 / Figure 6: a free
    implementation, a one-cycle stall per expansion (PT/RT in
    parallel), or an extra decode stage (PT/RT in series, +1 cycle of
    misprediction penalty for everything). *)

type cache_cfg = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
}

type dise_decode =
  | Free              (** no cost per expansion *)
  | Stall_per_expansion  (** +1 cycle on every expansion start *)
  | Extra_stage       (** +1 pipeline stage: larger mispredict penalty *)

type t = {
  width : int;              (** fetch/issue/retire width *)
  depth : int;              (** front-end depth: mispredict redirect penalty *)
  rob_size : int;
  icache : cache_cfg option;    (** [None] = perfect *)
  dcache : cache_cfg option;
  l2 : cache_cfg option;
  l1_latency : int;         (** load-to-use on a D-cache hit *)
  l2_latency : int;         (** additional cycles on an L1 miss, L2 hit *)
  mem_latency : int;        (** additional cycles on an L2 miss *)
  mul_latency : int;
  dise_decode : dise_decode;
  perfect_branch_pred : bool;
}

val default : t
(** The paper's baseline machine. *)

val with_icache_kb : int option -> t -> t
(** Resize the I-cache ([None] = perfect), keeping 2-way/64B lines —
    the Figure 6/7 cache sweeps. *)

val with_width : int -> t -> t
val with_dise_decode : dise_decode -> t -> t

val to_json : t -> Dise_telemetry.Json.t
(** Canonical JSON encoding: fixed member order, caches as nested
    objects ([null] = perfect), [dise_decode] as
    ["free"]/["stall_per_expansion"]/["extra_stage"]. Part of the
    serializable run-request encoding (see doc/service.md) — member
    order is load-bearing there, because cache keys hash the printed
    form. *)

val of_json : Dise_telemetry.Json.t -> (t, string) result
(** Inverse of {!to_json}; member order is free on input, every field
    required. *)

val pp : Format.formatter -> t -> unit
