module Cpi_stack = Dise_telemetry.Cpi_stack
module Json = Dise_telemetry.Json

type t = {
  mutable cycles : int;
  mutable retired : int;
  mutable app_instrs : int;
  mutable rep_instrs : int;
  mutable expansions : int;
  mutable icache_accesses : int;
  mutable icache_misses : int;
  mutable dcache_accesses : int;
  mutable dcache_misses : int;
  mutable l2_accesses : int;
  mutable l2_misses : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable dise_branch_redirects : int;
  mutable rep_branch_redirects : int;
  mutable dise_stall_cycles : int;
  mutable pt_misses : int;
  mutable rt_misses : int;
  mutable rt_accesses : int;
  mutable jit_compiles : int;
  mutable jit_hits : int;
  mutable jit_invalidations : int;
  cpi : Cpi_stack.t;
}

let create () =
  {
    cycles = 0;
    retired = 0;
    app_instrs = 0;
    rep_instrs = 0;
    expansions = 0;
    icache_accesses = 0;
    icache_misses = 0;
    dcache_accesses = 0;
    dcache_misses = 0;
    l2_accesses = 0;
    l2_misses = 0;
    branches = 0;
    mispredicts = 0;
    dise_branch_redirects = 0;
    rep_branch_redirects = 0;
    dise_stall_cycles = 0;
    pt_misses = 0;
    rt_misses = 0;
    rt_accesses = 0;
    jit_compiles = 0;
    jit_hits = 0;
    jit_invalidations = 0;
    cpi = Cpi_stack.create ();
  }

let ipc t = if t.cycles = 0 then 0. else float_of_int t.retired /. float_of_int t.cycles

let to_json t =
  Json.Obj
    [
      ("cycles", Json.Int t.cycles);
      ("retired", Json.Int t.retired);
      ("app_instrs", Json.Int t.app_instrs);
      ("rep_instrs", Json.Int t.rep_instrs);
      ("expansions", Json.Int t.expansions);
      ("icache_accesses", Json.Int t.icache_accesses);
      ("icache_misses", Json.Int t.icache_misses);
      ("dcache_accesses", Json.Int t.dcache_accesses);
      ("dcache_misses", Json.Int t.dcache_misses);
      ("l2_accesses", Json.Int t.l2_accesses);
      ("l2_misses", Json.Int t.l2_misses);
      ("branches", Json.Int t.branches);
      ("mispredicts", Json.Int t.mispredicts);
      ("dise_branch_redirects", Json.Int t.dise_branch_redirects);
      ("rep_branch_redirects", Json.Int t.rep_branch_redirects);
      ("dise_stall_cycles", Json.Int t.dise_stall_cycles);
      ("pt_misses", Json.Int t.pt_misses);
      ("rt_misses", Json.Int t.rt_misses);
      ("rt_accesses", Json.Int t.rt_accesses);
      ("jit_compiles", Json.Int t.jit_compiles);
      ("jit_hits", Json.Int t.jit_hits);
      ("jit_invalidations", Json.Int t.jit_invalidations);
      ("ipc", Json.Float (ipc t));
      ("cpi_stack", Cpi_stack.to_json t.cpi);
    ]

let of_json j =
  let field name =
    match Json.member name j with
    | Some (Json.Int v) -> Ok v
    | Some _ -> Error (Printf.sprintf "stats.%s: expected integer" name)
    | None -> Error (Printf.sprintf "stats.%s: missing" name)
  in
  (* Absent in payloads cached before the JIT existed: default 0. *)
  let opt_field name =
    match Json.member name j with
    | Some (Json.Int v) -> Ok v
    | Some _ -> Error (Printf.sprintf "stats.%s: expected integer" name)
    | None -> Ok 0
  in
  let ( let* ) = Result.bind in
  let* cycles = field "cycles" in
  let* retired = field "retired" in
  let* app_instrs = field "app_instrs" in
  let* rep_instrs = field "rep_instrs" in
  let* expansions = field "expansions" in
  let* icache_accesses = field "icache_accesses" in
  let* icache_misses = field "icache_misses" in
  let* dcache_accesses = field "dcache_accesses" in
  let* dcache_misses = field "dcache_misses" in
  let* l2_accesses = field "l2_accesses" in
  let* l2_misses = field "l2_misses" in
  let* branches = field "branches" in
  let* mispredicts = field "mispredicts" in
  let* dise_branch_redirects = field "dise_branch_redirects" in
  let* rep_branch_redirects = field "rep_branch_redirects" in
  let* dise_stall_cycles = field "dise_stall_cycles" in
  let* pt_misses = field "pt_misses" in
  let* rt_misses = field "rt_misses" in
  let* rt_accesses = field "rt_accesses" in
  let* jit_compiles = opt_field "jit_compiles" in
  let* jit_hits = opt_field "jit_hits" in
  let* jit_invalidations = opt_field "jit_invalidations" in
  let* cpi =
    match Json.member "cpi_stack" j with
    | Some c -> Cpi_stack.of_json c
    | None -> Error "stats.cpi_stack: missing"
  in
  Ok
    {
      cycles;
      retired;
      app_instrs;
      rep_instrs;
      expansions;
      icache_accesses;
      icache_misses;
      dcache_accesses;
      dcache_misses;
      l2_accesses;
      l2_misses;
      branches;
      mispredicts;
      dise_branch_redirects;
      rep_branch_redirects;
      dise_stall_cycles;
      pt_misses;
      rt_misses;
      rt_accesses;
      jit_compiles;
      jit_hits;
      jit_invalidations;
      cpi;
    }

let pp ppf t =
  Format.fprintf ppf
    "cycles=%d retired=%d (app=%d rep=%d) ipc=%.2f exp=%d i$miss=%d/%d \
     d$miss=%d/%d l2miss=%d/%d br=%d misp=%d dise-redir=%d+%d stalls=%d \
     rt=%d/%d"
    t.cycles t.retired t.app_instrs t.rep_instrs (ipc t) t.expansions
    t.icache_misses t.icache_accesses t.dcache_misses t.dcache_accesses
    t.l2_misses t.l2_accesses t.branches t.mispredicts
    t.dise_branch_redirects t.rep_branch_redirects t.dise_stall_cycles
    t.rt_misses t.rt_accesses
