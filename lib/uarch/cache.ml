type way = {
  mutable tag : int;  (* -1 = invalid *)
  mutable lru : int;
}

type t = {
  size_bytes : int;
  line_bytes : int;
  line_shift : int;
  n_sets : int;
  assoc : int;
  sets : way array array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let create ~size_bytes ~assoc ~line_bytes =
  if size_bytes <= 0 || assoc <= 0 || line_bytes <= 0 then
    invalid_arg "Cache.create: non-positive parameter";
  if line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Cache.create: line size must be a power of two";
  if size_bytes mod (assoc * line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by assoc * line";
  let n_sets = size_bytes / (assoc * line_bytes) in
  if n_sets land (n_sets - 1) <> 0 then
    invalid_arg "Cache.create: set count must be a power of two";
  {
    size_bytes;
    line_bytes;
    line_shift = log2 line_bytes;
    n_sets;
    assoc;
    sets =
      Array.init n_sets (fun _ ->
          Array.init assoc (fun _ -> { tag = -1; lru = 0 }));
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let access t addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let tag = addr lsr t.line_shift in
  let set = t.sets.(tag land (t.n_sets - 1)) in
  let rec find i = if i >= t.assoc then None
    else if set.(i).tag = tag then Some set.(i)
    else find (i + 1)
  in
  match find 0 with
  | Some w ->
    w.lru <- t.clock;
    `Hit
  | None ->
    t.misses <- t.misses + 1;
    let victim = ref set.(0) in
    Array.iter
      (fun w ->
        if w.tag = -1 && !victim.tag <> -1 then victim := w
        else if w.tag <> -1 && !victim.tag <> -1 && w.lru < !victim.lru then
          victim := w)
      set;
    !victim.tag <- tag;
    !victim.lru <- t.clock;
    `Miss

let probe t addr =
  let tag = addr lsr t.line_shift in
  Array.exists (fun w -> w.tag = tag) t.sets.(tag land (t.n_sets - 1))

let line_bytes t = t.line_bytes
let line_of t addr = addr lsr t.line_shift
let size_bytes t = t.size_bytes
let accesses t = t.accesses
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0.
  else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0

let invalidate t =
  Array.iter
    (fun set ->
      Array.iter
        (fun w ->
          w.tag <- -1;
          w.lru <- 0)
        set)
    t.sets
