(** Branch prediction: gshare direction predictor, a tagged BTB for
    indirect targets, and a return address stack.

    The pipeline hands every {e application-level} control transfer to
    {!on_branch} and learns whether fetch would have been redirected
    (a misprediction). Direct jumps and calls always predict correctly
    (their targets are available at decode); conditional branches can
    mispredict direction; indirect jumps mispredict when the BTB/RAS
    target is wrong. Replacement-sequence branches that are not the
    trigger are {e not} predicted (the paper suppresses their
    prediction); the pipeline handles those itself as
    predicted-not-taken. *)

type t

type kind =
  | Cond       (** conditional branch *)
  | Direct     (** jmp/jal: target known at decode *)
  | Indirect   (** jr to a non-return target, jalr *)
  | Return     (** jr ra *)

val create : ?hist_bits:int -> ?btb_entries:int -> ?ras_entries:int -> unit -> t
(** Defaults: 12 history bits (4K-entry PHT), 2K-entry BTB, 16-entry
    RAS. *)

val perfect : unit -> t
(** Oracle predictor: never mispredicts. *)

val on_branch :
  t ->
  pc:int ->
  kind:kind ->
  taken:bool ->
  target:int ->
  fallthrough:int ->
  [ `Correct | `Mispredict ]
(** Predict, compare against the actual outcome, and train. For calls
    ([Direct]/[Indirect] with a link — the caller signals by using
    {!on_call} instead) use {!on_call}. *)

val on_call : t -> pc:int -> target:int -> fallthrough:int -> indirect:bool ->
  [ `Correct | `Mispredict ]
(** A call: pushes the return address on the RAS; indirect calls also
    consult/train the BTB for their target. *)

val lookups : t -> int
val mispredicts : t -> int
val mispredict_rate : t -> float
