(** Branch profiling as a transparent ACF (Section 3.1's "other
    transparent ACFs").

    A production on conditional branches records the trigger's PC —
    using the [T.PC] replacement-immediate directive the paper calls
    out as useful for profiling — into a buffer pointed to by [$dr6]
    ([$dr4] scratch). A post-execution pass aggregates the records into
    per-branch execution counts, the "bit tracing plus offline
    reconstruction" structure of the paper's path profiler, simplified
    to branch granularity. *)

val rsid : int
(** 4130. *)

val productions : unit -> Dise_core.Prodset.t

val install : Dise_machine.Machine.t -> buffer:int -> unit

val counts : Dise_machine.Machine.t -> buffer:int -> (int * int) list
(** [(branch_pc, executions)] sorted by descending count. *)

val hottest : Dise_machine.Machine.t -> buffer:int -> n:int -> (int * int) list
