(** Memory fault isolation as a transparent DISE ACF (Section 3.1).

    Two formulations from the paper's evaluation:

    - [Dise4] mirrors the four-instruction check of the software
      (binary-rewriting) implementation: copy the address register to a
      dedicated register, extract its segment, compare, trap;
    - [Dise3] exploits DISE's control-flow model — jumps cannot land in
      the middle of a replacement sequence, so the defensive copy is
      unnecessary — saving one instruction per check (Figure 1).

    Checks are generated for loads and stores against the data-segment
    register [$dr2], and (optionally) for indirect jumps against the
    code-segment register [$dr3]. [$dr0]/[$dr1] are scratch. Sequence
    ids start at {!rsid_base}, above the 11-bit codeword tag space so
    MFI composes with aware ACFs without id collisions. *)

type variant = Dise3 | Dise4

val rsid_base : int
(** 4096. *)

val productions :
  ?variant:variant ->
  ?check_jumps:bool ->
  error:int ->
  unit ->
  Dise_core.Prodset.t
(** [productions ~error ()] builds the production set; [error] is the
    absolute address of the fault handler. Default variant [Dise3],
    [check_jumps] defaults to false (the evaluation isolates memory, as
    in Figure 6; jump checks are available for completeness). *)

val productions_for :
  ?variant:variant ->
  ?check_jumps:bool ->
  Dise_isa.Program.Image.t ->
  Dise_core.Prodset.t
(** Like {!productions}, resolving the error handler from the image's
    [__error] symbol (raises [Invalid_argument] if absent). *)

val install : Dise_machine.Machine.t -> data_seg:int -> code_seg:int -> unit
(** Initialize the dedicated registers through the controller path:
    [$dr2] := data segment id, [$dr3] := code segment id. *)

val check_length : variant -> int
(** Added instructions per check (3 or 4). *)

val sandbox_productions : unit -> Dise_core.Prodset.t
(** The sandboxing flavour of fault isolation as a DISE ACF: instead of
    checking and trapping, force every access's segment bits to the
    legal segment. The replacement {e rebuilds} the memory operation
    from trigger directives (base register swapped for the sandboxed
    address in [$dr0], data register and opcode taken from the
    trigger), so no handler is needed and stray accesses are contained,
    not reported. Sequence ids start at {!rsid_base}[+8]. *)

val install_sandbox : Dise_machine.Machine.t -> data_seg:int -> unit
(** Initialize the sandbox constants: [$dr4] := offset mask,
    [$dr5] := segment base. *)
