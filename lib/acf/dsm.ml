module R = Dise_core.Replacement
module Machine = Dise_machine.Machine
module Memory = Dise_machine.Memory
module Reg = Dise_isa.Reg
module Op = Dise_isa.Opcode

let rsid = 4134
let block_bytes = 64
let block_shift = 6

(* lda $dr4, T.IMM(T.RS)   effective address
   srl $dr4, #6, $dr4      block number
   add $dr8, $dr4, $dr4    state-table entry address
   ldbu $dr4, 0($dr4)      block state
   beq $dr4, handler       0 = absent: miss
   T.INSN *)
let check_seq ~handler =
  let scratch = R.Rlit (Reg.d 4) in
  let table = R.Rlit (Reg.d 8) in
  [|
    R.Lda (R.Rrs, R.Iimm, scratch);
    R.Ropi (Op.Srl, scratch, R.Ilit block_shift, scratch);
    R.Rop (Op.Add, table, scratch, scratch);
    R.Mem (Op.Ldbu, scratch, R.Ilit 0, scratch);
    R.Br (Op.Beq, scratch, R.Tabs handler);
    R.Trigger;
  |]

let productions ~handler () =
  let set =
    Dise_core.Prodset.define_sequence Dise_core.Prodset.empty rsid
      (check_seq ~handler)
  in
  let set =
    Dise_core.Prodset.add_production set
      (Dise_core.Production.make ~name:"dsm_store" Dise_core.Pattern.stores
         (Dise_core.Production.Direct rsid))
  in
  Dise_core.Prodset.add_production set
    (Dise_core.Production.make ~name:"dsm_load" Dise_core.Pattern.loads
       (Dise_core.Production.Direct rsid))

let productions_for image =
  match Dise_isa.Program.Image.symbol image "__error" with
  | Some handler -> productions ~handler ()
  | None -> invalid_arg "Dsm.productions_for: no __error symbol"

let table_bias ~shadow_base ~data_base = shadow_base - (data_base lsr block_shift)

let install m ~shadow_base ~data_base =
  Machine.set_dise_reg m 8 (table_bias ~shadow_base ~data_base)

let mark m ~shadow_base ~data_base ~addr ~len v =
  let mem = Machine.memory m in
  let first = addr lsr block_shift in
  let last = (addr + max 1 len - 1) lsr block_shift in
  for blk = first to last do
    Memory.write_u8 mem (table_bias ~shadow_base ~data_base + blk) v
  done

let mark_present m ~shadow_base ~data_base ~addr ~len =
  mark m ~shadow_base ~data_base ~addr ~len 1

let mark_absent m ~shadow_base ~data_base ~addr ~len =
  mark m ~shadow_base ~data_base ~addr ~len 0
