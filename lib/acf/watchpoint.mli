(** Code assertions / reference monitoring (Section 3.1): a memory
    watchpoint enforced at full speed by inlining the check into every
    store's replacement sequence — no debugger single-stepping.

    The watched address lives in [$dr7]; a store whose effective
    address equals it transfers control to the handler before the
    store executes (the DISE control model makes the check
    unbypassable). *)

val rsid : int
(** 4132. *)

val productions : handler:int -> unit -> Dise_core.Prodset.t

val productions_for :
  Dise_isa.Program.Image.t -> Dise_core.Prodset.t
(** Handler resolved from the image's [__error] symbol. *)

val install : Dise_machine.Machine.t -> addr:int -> unit
(** Watch the given address. *)

val disarm : Dise_machine.Machine.t -> unit
(** Set the watch to an unmatchable address (odd, so no word store can
    hit it). Inactive assertions cost only their replacement
    instructions; removing the production entirely costs nothing. *)
