module Prodset = Dise_core.Prodset
module Compose = Dise_core.Compose
module R = Dise_core.Replacement

let compose ~mfi ~decompression =
  Compose.nest ~outer:mfi ~inner:decompression

let for_compressed ?variant (result : Compress.result) =
  let mfi =
    Mfi.productions_for ?variant result.Compress.image
  in
  compose ~mfi ~decompression:result.Compress.prodset

let total_entries set =
  List.fold_left
    (fun acc (_, seq) -> acc + R.length seq)
    0 (Prodset.sequences set)

let rt_entry_growth ~plain ~composed =
  let p = total_entries plain in
  if p = 0 then 1.
  else float_of_int (total_entries composed) /. float_of_int p
