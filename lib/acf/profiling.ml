module R = Dise_core.Replacement
module Machine = Dise_machine.Machine
module Reg = Dise_isa.Reg
module Op = Dise_isa.Opcode

let rsid = 4130

(* add zero, #T.PC, $dr4: the trigger's PC materialized as a value —
   replacement immediates are not bound by the 16-bit encodable field
   because the RT holds them in internal form. *)
let sequence =
  [|
    R.Ropi (Op.Add, R.Rlit Reg.zero, R.Ipc, R.Rlit (Reg.d 4));
    R.Mem (Op.Stq, R.Rlit (Reg.d 6), R.Ilit 0, R.Rlit (Reg.d 4));
    R.Lda (R.Rlit (Reg.d 6), R.Ilit 4, R.Rlit (Reg.d 6));
    R.Trigger;
  |]

let productions () =
  Dise_core.Prodset.add Dise_core.Prodset.empty
    (Dise_core.Production.make ~name:"profile_branch"
       Dise_core.Pattern.cond_branches (Dise_core.Production.Direct rsid))
    sequence

let install m ~buffer = Machine.set_dise_reg m 6 buffer

let counts m ~buffer =
  let stop = Dise_machine.Regfile.get (Machine.regs m) (Reg.d 6) in
  let mem = Machine.memory m in
  let tbl = Hashtbl.create 256 in
  let addr = ref buffer in
  while !addr < stop do
    let pc = Dise_machine.Memory.read_u32 mem !addr in
    Hashtbl.replace tbl pc (1 + Option.value ~default:0 (Hashtbl.find_opt tbl pc));
    addr := !addr + 4
  done;
  Hashtbl.fold (fun pc n acc -> (pc, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let hottest m ~buffer ~n =
  List.filteri (fun i _ -> i < n) (counts m ~buffer)
