module R = Dise_core.Replacement
module Pattern = Dise_core.Pattern
module Production = Dise_core.Production
module Prodset = Dise_core.Prodset
module Reg = Dise_isa.Reg
module Op = Dise_isa.Opcode

type variant = Dise3 | Dise4

let rsid_base = 4096

let check_length = function Dise3 -> 3 | Dise4 -> 4

(* The segment check against dedicated register [seg_reg], ending with
   the trigger. *)
let check_seq variant ~error ~seg_reg =
  let scratch0 = R.Rlit (Reg.d 0) in
  let scratch1 = R.Rlit (Reg.d 1) in
  let seg = R.Rlit (Reg.d seg_reg) in
  let tail =
    [
      R.Rop (Op.Xor, scratch1, seg, scratch1);
      R.Br (Op.Bne, scratch1, R.Tabs error);
      R.Trigger;
    ]
  in
  match variant with
  | Dise3 ->
    (* No defensive copy: replacement sequences cannot be jumped into,
       so checking T.RS directly is safe. *)
    Array.of_list (R.Ropi (Op.Srl, R.Rrs, R.Ilit 26, scratch1) :: tail)
  | Dise4 ->
    (* The software formulation's sequence: copy the address register
       first so a malicious jump past the copy would still check the
       copied value. *)
    Array.of_list
      (R.Lda (R.Rrs, R.Ilit 0, scratch0)
      :: R.Ropi (Op.Srl, scratch0, R.Ilit 26, scratch1)
      :: tail)

let productions ?(variant = Dise3) ?(check_jumps = false) ~error () =
  let mem_rsid = rsid_base and jump_rsid = rsid_base + 1 in
  let set =
    Prodset.empty
    |> (fun s ->
         Prodset.define_sequence s mem_rsid
           (check_seq variant ~error ~seg_reg:2))
    |> fun s ->
    Prodset.add_production
      (Prodset.add_production s
         (Production.make ~name:"mfi_store" Pattern.stores
            (Production.Direct mem_rsid)))
      (Production.make ~name:"mfi_load" Pattern.loads
         (Production.Direct mem_rsid))
  in
  if not check_jumps then set
  else
    Prodset.add_production
      (Prodset.define_sequence set jump_rsid
         (check_seq variant ~error ~seg_reg:3))
      (Production.make ~name:"mfi_jump" Pattern.indirect_jumps
         (Production.Direct jump_rsid))

let productions_for ?variant ?check_jumps image =
  match Dise_isa.Program.Image.symbol image "__error" with
  | Some error -> productions ?variant ?check_jumps ~error ()
  | None -> invalid_arg "Mfi.productions_for: image has no __error symbol"

let install m ~data_seg ~code_seg =
  Dise_machine.Machine.set_dise_reg m 2 data_seg;
  Dise_machine.Machine.set_dise_reg m 3 code_seg

(* --- sandboxing --------------------------------------------------------- *)

let seg_shift = 26
let offset_mask = (1 lsl seg_shift) - 1

(* One production per memory opcode: the rebuilt access must carry the
   trigger's own opcode. *)
let sandbox_seq (mop : Op.mop) =
  let addr = R.Rlit (Reg.d 0) in
  let mask = R.Rlit (Reg.d 4) in
  let segbase = R.Rlit (Reg.d 5) in
  [|
    R.Lda (R.Rrs, R.Iimm, addr);          (* full effective address *)
    R.Rop (Op.And_, addr, mask, addr);    (* strip segment bits *)
    R.Rop (Op.Or_, addr, segbase, addr);  (* force the legal segment *)
    R.Mem (mop, addr, R.Ilit 0, R.Rrt);   (* the access, rebuilt *)
  |]

let mop_index (op : Op.mop) =
  match op with Ldq -> 0 | Ldbu -> 1 | Stq -> 2 | Stb -> 3

let sandbox_productions () =
  List.fold_left
    (fun set mop ->
      let rsid = rsid_base + 8 + mop_index mop in
      let example = Dise_isa.Insn.Mem (mop, Reg.zero, 0, Reg.zero) in
      Prodset.add set
        (Production.make
           ~name:("mfi_sandbox_" ^ Op.mop_to_string mop)
           (Pattern.of_opcode example) (Production.Direct rsid))
        (sandbox_seq mop))
    Prodset.empty Op.all_mops

let install_sandbox m ~data_seg =
  Dise_machine.Machine.set_dise_reg m 4 offset_mask;
  Dise_machine.Machine.set_dise_reg m 5 (data_seg lsl seg_shift)
