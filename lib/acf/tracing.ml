module R = Dise_core.Replacement
module Machine = Dise_machine.Machine
module Reg = Dise_isa.Reg
module Op = Dise_isa.Opcode

let rsid = 4128

let sequence =
  [|
    R.Lda (R.Rrs, R.Iimm, R.Rlit (Reg.d 4));
    R.Mem (Op.Stq, R.Rlit (Reg.d 5), R.Ilit 0, R.Rlit (Reg.d 4));
    R.Lda (R.Rlit (Reg.d 5), R.Ilit 4, R.Rlit (Reg.d 5));
    R.Trigger;
  |]

let productions () =
  Dise_core.Prodset.add Dise_core.Prodset.empty
    (Dise_core.Production.make ~name:"trace_store" Dise_core.Pattern.stores
       (Dise_core.Production.Direct rsid))
    sequence

let install m ~buffer = Machine.set_dise_reg m 5 buffer

let trace m ~buffer =
  let stop = Dise_machine.Regfile.get (Machine.regs m) (Reg.d 5) in
  let mem = Machine.memory m in
  let rec go addr acc =
    if addr >= stop then List.rev acc
    else go (addr + 4) (Dise_machine.Memory.read_u32 mem addr :: acc)
  in
  go buffer []
