(** Static code compression for DISE dynamic decompression
    (Section 3.2), plus the dedicated-decompressor model it is compared
    against in Figure 7.

    The compressor follows the paper's greedy algorithm: build the set
    of candidate dictionary entries — instruction sequences that do not
    straddle basic blocks — then iteratively pick the entry with the
    greatest immediate compression, weighing the cost of coding the
    dictionary entry against the static instructions removed from the
    text. Chosen instances are replaced by codewords (reserved opcode 0,
    up to three 5-bit parameter fields, an 11-bit entry tag).

    {e Parameterization} lets sequences differing in up to three
    register or small-immediate fields share one (8-byte-per-
    instruction) dictionary entry. {e PC-relative branch compression}
    makes the branch offset a parameter occupying two 5-bit fields
    (a signed 10-bit instruction offset): two static branches share an
    entry even though compression moves them, because each codeword
    carries its own final offset. Offsets are verified against a layout
    fixpoint — instances whose final offset does not fit are
    un-compressed and the layout repeated.

    The six schemes of Figure 7 (top) are provided: the dedicated
    decompressor (2-byte codewords, single-instruction entries,
    unparameterized 4-byte dictionary entries), its two feature
    removals, and the three DISE feature additions. *)

type scheme = {
  name : string;
  codeword_bytes : int;   (** 2 (dedicated) or 4 (DISE) *)
  min_len : int;          (** 1 allows single-instruction compression *)
  max_len : int;
  max_params : int;       (** 0..3 codeword parameter fields *)
  dict_entry_bytes : int; (** per dictionary instruction: 4, or 8 with directives *)
  compress_branches : bool;
  max_entries : int;      (** tag space, 2048 *)
}

val dedicated : scheme

(** [dedicated] without single-instruction entries. *)
val minus_1insn : scheme

(** ... and with 4-byte codewords. *)
val minus_2byte_cw : scheme

(** DISE dictionary-entry size, still unparameterized. *)
val plus_8byte_de : scheme

(** Plus parameterization (three codeword fields). *)
val plus_3param : scheme

(** Plus PC-relative branch compression. *)
val full_dise : scheme

val fig7_schemes : scheme list
(** The six, in the figure's left-to-right order. *)

type entry = {
  tag : int;
  spec : Dise_core.Replacement.t;  (** directive-annotated dictionary entry *)
  len : int;
  param_fields : int;              (** codeword fields consumed (0..3) *)
  uses : int;                      (** codewords referencing this entry *)
}

type result = {
  scheme : scheme;
  program : Dise_isa.Program.t;    (** compressed program *)
  image : Dise_isa.Program.Image.t;(** laid out at the code base *)
  prodset : Dise_core.Prodset.t;   (** decompression productions, resolved
                                       against [image] *)
  entries : entry list;
  orig_text_bytes : int;
  text_bytes : int;                (** compressed text *)
  dict_bytes : int;
  codewords : int;                 (** codewords planted *)
}

val compress : scheme:scheme -> Dise_isa.Program.t -> result
(** Compress a program. The result's [image]/[prodset] pair is directly
    runnable: create an engine from [prodset] and a machine on [image],
    and execution reproduces the original program's behaviour. *)

val compression_ratio : result -> float
(** [text_bytes / orig_text_bytes] (dictionary excluded). *)

val total_ratio : result -> float
(** [(text_bytes + dict_bytes) / orig_text_bytes]. *)

(** {1 Seeded (search-driven) compression}

    [disesim synthesize] replaces the greedy selection with an
    external search: candidate dictionaries are {e seed lists}, each
    seed naming one static window whose whole candidate group (all
    windows sharing its normalized text) becomes a dictionary entry.
    The enumeration and the entire post-selection pipeline (template
    parameterization, codeword planting, the branch-offset layout
    fixpoint, production-set construction) are shared with
    {!compress}, so a seeded result is runnable and measured exactly
    like a greedy one. *)

type seed = { s_blk : int; s_start : int; s_len : int }
(** Instructions [s_start..s_start+s_len) of basic block [s_blk]
    (blocks numbered in program order, labels excluded). *)

type corpus
(** The enumerated candidate groups of one (scheme, program) pair —
    built once, then shared by every [compress_seeded] call of a
    search run. *)

val corpus : scheme:scheme -> Dise_isa.Program.t -> corpus

type window = {
  w_seed : seed;      (** representative (lowest-position) instance *)
  w_len : int;
  w_count : int;      (** static occurrences of the group *)
  w_sites : (int * int * int) list;
      (** every occurrence as [(blk, start, global instruction
          index)], ascending; the index keys the dynamic-profile heat
          of the site (its PC in the uncompressed image) *)
}

val windows : corpus -> window list
(** Every candidate group as a window, sorted by representative seed —
    a deterministic candidate pool for the miner. *)

val compress_seeded : corpus -> seeds:seed list -> result
(** Compress using exactly the given seeds as the dictionary, in list
    order (earlier seeds claim overlapping windows first). Seeds that
    resolve to no legal group — out of bounds, or stale against this
    program — are skipped, as are seeds whose group has no free
    instances left; [scheme.max_entries] bounds the dictionary. *)
