module R = Dise_core.Replacement
module Machine = Dise_machine.Machine
module Reg = Dise_isa.Reg
module Op = Dise_isa.Opcode

let rsid = 4132

let sequence ~handler =
  [|
    R.Lda (R.Rrs, R.Iimm, R.Rlit (Reg.d 4));
    R.Rop (Op.Xor, R.Rlit (Reg.d 4), R.Rlit (Reg.d 7), R.Rlit (Reg.d 4));
    R.Br (Op.Beq, R.Rlit (Reg.d 4), R.Tabs handler);
    R.Trigger;
  |]

let productions ~handler () =
  Dise_core.Prodset.add Dise_core.Prodset.empty
    (Dise_core.Production.make ~name:"watch_store" Dise_core.Pattern.stores
       (Dise_core.Production.Direct rsid))
    (sequence ~handler)

let productions_for image =
  match Dise_isa.Program.Image.symbol image "__error" with
  | Some handler -> productions ~handler ()
  | None -> invalid_arg "Watchpoint.productions_for: no __error symbol"

let install m ~addr = Machine.set_dise_reg m 7 addr
let disarm m = Machine.set_dise_reg m 7 1
