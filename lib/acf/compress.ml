module I = Dise_isa.Insn
module Op = Dise_isa.Opcode
module Reg = Dise_isa.Reg
module Program = Dise_isa.Program
module R = Dise_core.Replacement
module Pattern = Dise_core.Pattern
module Production = Dise_core.Production
module Prodset = Dise_core.Prodset

type scheme = {
  name : string;
  codeword_bytes : int;
  min_len : int;
  max_len : int;
  max_params : int;
  dict_entry_bytes : int;
  compress_branches : bool;
  max_entries : int;
}

let dedicated =
  {
    name = "dedicated";
    codeword_bytes = 2;
    min_len = 1;
    max_len = 8;
    max_params = 0;
    dict_entry_bytes = 4;
    compress_branches = false;
    max_entries = 2048;
  }

let minus_1insn = { dedicated with name = "-1insn"; min_len = 2 }
let minus_2byte_cw = { minus_1insn with name = "-2byteCW"; codeword_bytes = 4 }
let plus_8byte_de = { minus_2byte_cw with name = "+8byteDE"; dict_entry_bytes = 8 }
let plus_3param = { plus_8byte_de with name = "+3param"; max_params = 3 }
let full_dise = { plus_3param with name = "DISE"; compress_branches = true }

let fig7_schemes =
  [ dedicated; minus_1insn; minus_2byte_cw; plus_8byte_de; plus_3param;
    full_dise ]

(* --- instruction fields ---------------------------------------------- *)

type fval =
  | Vreg of int
  | Vimm of int
  | Vtarget of I.target

(* Canonical field vectors per instruction constructor. Only
   architectural-register, candidate-legal instructions reach these. *)
let reg_num r =
  match r with Reg.R n -> n | Reg.D _ -> invalid_arg "Compress: dedicated reg"

let fields_of (i : I.t) : fval array =
  match i with
  | I.Rop (_, a, b, c) -> [| Vreg (reg_num a); Vreg (reg_num b); Vreg (reg_num c) |]
  | I.Ropi (_, a, v, c) -> [| Vreg (reg_num a); Vimm v; Vreg (reg_num c) |]
  | I.Lda (a, v, c) -> [| Vreg (reg_num a); Vimm v; Vreg (reg_num c) |]
  | I.Lui (v, c) -> [| Vimm v; Vreg (reg_num c) |]
  | I.Mem (_, a, v, c) -> [| Vreg (reg_num a); Vimm v; Vreg (reg_num c) |]
  | I.Br (_, r, t) -> [| Vreg (reg_num r); Vtarget t |]
  | I.Jmp t | I.Jal t -> [| Vtarget t |]
  | I.Jr r -> [| Vreg (reg_num r) |]
  | I.Jalr (a, b) -> [| Vreg (reg_num a); Vreg (reg_num b) |]
  | I.Nop | I.Halt -> [||]
  | I.Dbr _ | I.Djmp _ | I.Codeword _ ->
    invalid_arg "Compress.fields_of: illegal candidate instruction"

let rebuild (i : I.t) (f : fval array) : I.t =
  let reg k = match f.(k) with Vreg n -> Reg.r n | _ -> assert false in
  let imm k = match f.(k) with Vimm v -> v | _ -> assert false in
  let tgt k = match f.(k) with Vtarget t -> t | _ -> assert false in
  match i with
  | I.Rop (op, _, _, _) -> I.Rop (op, reg 0, reg 1, reg 2)
  | I.Ropi (op, _, _, _) -> I.Ropi (op, reg 0, imm 1, reg 2)
  | I.Lda _ -> I.Lda (reg 0, imm 1, reg 2)
  | I.Lui _ -> I.Lui (imm 0, reg 1)
  | I.Mem (op, _, _, _) -> I.Mem (op, reg 0, imm 1, reg 2)
  | I.Br (op, _, _) -> I.Br (op, reg 0, tgt 1)
  | I.Jmp _ -> I.Jmp (tgt 0)
  | I.Jal _ -> I.Jal (tgt 0)
  | I.Jr _ -> I.Jr (reg 0)
  | I.Jalr _ -> I.Jalr (reg 0, reg 1)
  | I.Nop -> I.Nop
  | I.Halt -> I.Halt
  | I.Dbr _ | I.Djmp _ | I.Codeword _ -> assert false

(* A field is "rigid" when it can never be parameterized: direct
   jump/call targets (26 bits do not fit a parameter). *)
let rigid_field insn k =
  match insn with
  | I.Jmp _ | I.Jal _ -> k = 0
  | _ -> false

(* May this instruction appear in a candidate at all? *)
let legal scheme insn =
  match insn with
  | I.Codeword _ | I.Dbr _ | I.Djmp _ -> false
  | I.Br _ -> scheme.compress_branches
  | _ -> true

(* --- basic blocks ----------------------------------------------------- *)

type seg =
  | Lbl of string
  | Blk of I.t array

let split_blocks (prog : Program.t) : seg list =
  let segs = ref [] in
  let cur = ref [] in
  let flush () =
    if !cur <> [] then begin
      segs := Blk (Array.of_list (List.rev !cur)) :: !segs;
      cur := []
    end
  in
  List.iter
    (fun item ->
      match item with
      | Program.Label l ->
        flush ();
        segs := Lbl l :: !segs
      | Program.Ins i ->
        cur := i :: !cur;
        if I.is_control i then flush ())
    prog;
  flush ();
  List.rev !segs

(* --- candidate groups -------------------------------------------------- *)

type inst = {
  blk : int;
  start : int;
  vec : fval array array;
}

type group = {
  key : I.t list;  (* normalized: flexible fields zeroed *)
  len : int;
  repr : I.t array;
  mutable insts : inst list;
}

let normalize scheme insn =
  let f = fields_of insn in
  let f' =
    Array.mapi
      (fun k v ->
        if scheme.max_params = 0 || rigid_field insn k then v
        else
          match v with
          | Vreg _ -> Vreg 0
          | Vimm _ -> Vimm 0
          | Vtarget _ -> Vtarget (I.Abs 0))
      f
  in
  rebuild insn f'

(* --- max-heap for lazy greedy ----------------------------------------- *)

module Heap = struct
  type 'a t = {
    mutable arr : (float * 'a) option array;
    mutable n : int;
  }

  let create () = { arr = Array.make 1024 None; n = 0 }

  let swap h i j =
    let t = h.arr.(i) in
    h.arr.(i) <- h.arr.(j);
    h.arr.(j) <- t

  let pri h i = match h.arr.(i) with Some (p, _) -> p | None -> neg_infinity

  let push h p v =
    if h.n = Array.length h.arr then begin
      let bigger = Array.make (2 * h.n) None in
      Array.blit h.arr 0 bigger 0 h.n;
      h.arr <- bigger
    end;
    h.arr.(h.n) <- Some (p, v);
    let i = ref h.n in
    h.n <- h.n + 1;
    while !i > 0 && pri h ((!i - 1) / 2) < pri h !i do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let peek h = if h.n = 0 then None else h.arr.(0)

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.arr.(0) in
      h.n <- h.n - 1;
      h.arr.(0) <- h.arr.(h.n);
      h.arr.(h.n) <- None;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.n && pri h l > pri h !m then m := l;
        if r < h.n && pri h r > pri h !m then m := r;
        if !m <> !i then begin
          swap h !i !m;
          i := !m
        end
        else continue := false
      done;
      top
    end
end

(* --- template construction --------------------------------------------- *)

type pkind = [ `Reg | `Imm5 | `Imm10 | `Off10 ]

type param = {
  pos : int * int;  (* insn index, field index *)
  kind : pkind;
  field : int;      (* first codeword parameter field, 1-based *)
}

type template = {
  base : fval array array;
  params : param list;  (* fields assigned, sorted *)
  covered : inst list;
  benefit : float;
}

let fits5 v = v >= -16 && v <= 15
let fits10 v = v >= -512 && v <= 511

let param_cost = function `Reg | `Imm5 -> 1 | `Imm10 | `Off10 -> 2

(* Build the best template for a group from its live instances. *)
let build_template scheme (g : group) (live : inst list) : template option =
  if live = [] then None
  else begin
    (* Distinct field vectors with counts. *)
    let tbl : (fval array array, inst list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    List.iter
      (fun inst ->
        match Hashtbl.find_opt tbl inst.vec with
        | Some l -> l := inst :: !l
        | None -> Hashtbl.replace tbl inst.vec (ref [ inst ]))
      live;
    let distinct =
      Hashtbl.fold (fun vec l acc -> (vec, !l) :: acc) tbl []
      |> List.sort (fun (_, a) (_, b) -> compare (List.length b) (List.length a))
    in
    match distinct with
    | [] -> None
    | (base_vec, base_insts) :: rest ->
      (* Greedily grow coverage under the parameter-slot budget. *)
      let params : ((int * int) * pkind) list ref = ref [] in
      let covered = ref base_insts in
      let covered_vecs = ref [ base_vec ] in
      let try_add (vec, insts) =
        (* positions where this vector differs from the base *)
        let diffs = ref [] in
        Array.iteri
          (fun ii fields ->
            Array.iteri
              (fun fi v -> if v <> base_vec.(ii).(fi) then diffs := ((ii, fi), v) :: !diffs)
              fields)
          vec;
        let ok = ref (scheme.max_params > 0) in
        (* Merge the new positions into the param set, computing kinds
           from the union of covered values. *)
        let new_params = ref !params in
        List.iter
          (fun ((ii, fi), _) ->
            if not (List.mem_assoc (ii, fi) !new_params) then begin
              if rigid_field g.repr.(ii) fi then ok := false
              else
                let kind =
                  match base_vec.(ii).(fi) with
                  | Vreg _ -> Some `Reg
                  | Vimm _ -> Some `Imm5 (* width refined below *)
                  | Vtarget _ ->
                    if scheme.compress_branches then Some `Off10 else None
                in
                match kind with
                | Some k -> new_params := ((ii, fi), k) :: !new_params
                | None -> ok := false
            end)
          !diffs;
        if !ok then begin
          (* Refine immediate widths over all covered vectors + new. *)
          let vecs = vec :: !covered_vecs in
          new_params :=
            List.map
              (fun ((ii, fi), k) ->
                match k with
                | `Reg | `Off10 -> ((ii, fi), k)
                | `Imm5 | `Imm10 ->
                  let widest =
                    List.fold_left
                      (fun acc v ->
                        match v.(ii).(fi) with
                        | Vimm x ->
                          if fits5 x then max acc 1
                          else if fits10 x then max acc 2
                          else max acc 3
                        | Vreg _ | Vtarget _ -> acc)
                      1 vecs
                  in
                  ( (ii, fi),
                    if widest = 1 then `Imm5
                    else if widest = 2 then `Imm10
                    else `Off10 (* placeholder; rejected below *) ))
              !new_params;
          let too_wide =
            List.exists
              (fun ((ii, fi), k) ->
                match k, base_vec.(ii).(fi) with
                | `Off10, Vimm _ -> true (* immediate too wide for 10 bits *)
                | _ -> false)
              !new_params
          in
          let cost =
            List.fold_left (fun acc (_, k) -> acc + param_cost k) 0 !new_params
          in
          if (not too_wide) && cost <= scheme.max_params then begin
            params := !new_params;
            covered := insts @ !covered;
            covered_vecs := vecs
          end
        end
      in
      List.iter try_add rest;
      (* Branch targets must be parameterized whenever covered vectors
         disagree; when they agree the branch target stays literal
         (replacement targets are absolute, hence position-independent).
         That is already what the diff logic produced. *)
      let n_covered = List.length !covered in
      let saved_per = (4 * g.len) - scheme.codeword_bytes in
      let benefit =
        float_of_int (n_covered * saved_per)
        -. float_of_int (scheme.dict_entry_bytes * g.len)
      in
      (* Assign codeword parameter fields in position order. *)
      let sorted =
        List.sort (fun (p1, _) (p2, _) -> compare p1 p2) !params
      in
      let next = ref 1 in
      let with_fields =
        List.map
          (fun (pos, kind) ->
            let field = !next in
            next := !next + param_cost kind;
            { pos; kind; field })
          sorted
      in
      Some
        { base = base_vec; params = with_fields; covered = !covered; benefit }
  end

(* --- selection --------------------------------------------------------- *)

type chosen = {
  tag : int;
  repr : I.t array;
  tpl : template;
  mutable active : inst list;
}

let inst_free consumed inst len =
  let c = consumed.(inst.blk) in
  let rec go k = k >= len || ((not c.(inst.start + k)) && go (k + 1)) in
  go 0

let mark_consumed consumed inst len =
  let c = consumed.(inst.blk) in
  for k = 0 to len - 1 do
    c.(inst.start + k) <- true
  done

(* --- template -> replacement spec -------------------------------------- *)

let spec_of_template (repr : I.t array) (tpl : template) : R.t =
  let param_at pos = List.find_opt (fun p -> p.pos = pos) tpl.params in
  Array.of_list
    (List.mapi
       (fun ii insn ->
         let vec = tpl.base.(ii) in
         let reg fi =
           match param_at (ii, fi) with
           | Some { kind = `Reg; field; _ } -> R.Rparam field
           | Some _ -> assert false
           | None -> (
             match vec.(fi) with
             | Vreg n -> R.Rlit (Reg.r n)
             | Vimm _ | Vtarget _ -> assert false)
         in
         let imm fi =
           match param_at (ii, fi) with
           | Some { kind = `Imm5; field; _ } -> R.Iparam field
           | Some { kind = `Imm10; field; _ } -> R.Iparam2 field
           | Some _ -> assert false
           | None -> (
             match vec.(fi) with
             | Vimm v -> R.Ilit v
             | Vreg _ | Vtarget _ -> assert false)
         in
         let tgt fi =
           match param_at (ii, fi) with
           | Some { kind = `Off10; field; _ } -> R.Trel_param2 field
           | Some _ -> assert false
           | None -> (
             match vec.(fi) with
             | Vtarget (I.Abs a) -> R.Tabs a
             | Vtarget (I.Lab l) -> R.Tlab l
             | Vreg _ | Vimm _ -> assert false)
         in
         match insn with
         | I.Rop (op, _, _, _) -> R.Rop (op, reg 0, reg 1, reg 2)
         | I.Ropi (op, _, _, _) -> R.Ropi (op, reg 0, imm 1, reg 2)
         | I.Lda _ -> R.Lda (reg 0, imm 1, reg 2)
         | I.Lui _ -> R.Lui (imm 0, reg 1)
         | I.Mem (op, _, _, _) -> R.Mem (op, reg 0, imm 1, reg 2)
         | I.Br (op, _, _) -> R.Br (op, reg 0, tgt 1)
         | I.Jmp _ -> R.Jmp (tgt 0)
         | I.Jal _ -> R.Jal (tgt 0)
         | I.Jr _ -> R.Jr (reg 0)
         | I.Jalr _ -> R.Jalr (reg 0, reg 1)
         | I.Nop -> R.Nop
         | I.Halt -> R.Halt
         | I.Dbr _ | I.Djmp _ | I.Codeword _ -> assert false)
       (Array.to_list repr))

(* Parameter field values for one instance (target params resolved
   later); returns the three codeword fields. *)
let codeword_fields tpl inst ~offset_of =
  let fields = Array.make 4 0 in  (* 1-based *)
  List.iter
    (fun p ->
      let ii, fi = p.pos in
      match p.kind, inst.vec.(ii).(fi) with
      | `Reg, Vreg n -> fields.(p.field) <- n
      | `Imm5, Vimm v -> fields.(p.field) <- R.to_field5 v
      | `Imm10, Vimm v ->
        let hi, lo = R.to_fields10 v in
        fields.(p.field) <- hi;
        fields.(p.field + 1) <- lo
      | `Off10, Vtarget t ->
        let off = offset_of ~inst ~pos:p.pos t in
        let hi, lo = R.to_fields10 off in
        fields.(p.field) <- hi;
        fields.(p.field + 1) <- lo
      | _ -> assert false)
    tpl.params;
  (fields.(1), fields.(2), fields.(3))

type entry = {
  tag : int;
  spec : R.t;
  len : int;
  param_fields : int;
  uses : int;
}

type result = {
  scheme : scheme;
  program : Program.t;
  image : Program.Image.t;
  prodset : Prodset.t;
  entries : entry list;
  orig_text_bytes : int;
  text_bytes : int;
  dict_bytes : int;
  codewords : int;
}

let code_base = 0x00100000

(* Candidate enumeration, shared by the greedy compressor and the
   seeded (search-driven) one: split into basic blocks and bucket
   every legal window into a group keyed by its normalized text. *)
let enumerate scheme prog =
  let segs = split_blocks prog in
  let blocks =
    List.filter_map (function Blk a -> Some a | Lbl _ -> None) segs
    |> Array.of_list
  in
  let groups : (I.t list * int, group) Hashtbl.t = Hashtbl.create 4096 in
  Array.iteri
    (fun bi arr ->
      let n = Array.length arr in
      let legal_at = Array.map (legal scheme) arr in
      let norms =
        Array.mapi
          (fun k i -> if legal_at.(k) then normalize scheme i else I.Nop)
          arr
      in
      let fvecs =
        Array.mapi
          (fun k i -> if legal_at.(k) then fields_of i else [||])
          arr
      in
      for start = 0 to n - 1 do
        let maxl = min scheme.max_len (n - start) in
        let len = ref 1 in
        let stop = ref false in
        while (not !stop) && !len <= maxl do
          let l = !len in
          (* positions are vetted incrementally as the window grows *)
          if not legal_at.(start + l - 1) then stop := true
          else if l >= scheme.min_len then begin
            let key = (Array.to_list (Array.sub norms start l), l) in
            let inst = { blk = bi; start; vec = Array.sub fvecs start l } in
            match Hashtbl.find_opt groups key with
            | Some g -> g.insts <- inst :: g.insts
            | None ->
              Hashtbl.replace groups key
                {
                  key = fst key;
                  len = l;
                  repr = Array.sub arr start l;
                  insts = [ inst ];
                }
          end;
          incr len
        done
      done)
    blocks;
  (segs, blocks, groups)

let rec compress ~scheme prog =
  let segs, blocks, groups = enumerate scheme prog in
  (* Lazy greedy selection. *)
  let consumed = Array.map (fun arr -> Array.make (Array.length arr) false) blocks in
  let heap = Heap.create () in
  let current_template (g : group) =
    let live = List.filter (fun i -> inst_free consumed i g.len) g.insts in
    build_template scheme g live
  in
  Hashtbl.iter
    (fun _ g ->
      match current_template g with
      | Some t when t.benefit > 0. -> Heap.push heap t.benefit g
      | Some _ | None -> ())
    groups;
  let chosen = ref [] in
  let n_chosen = ref 0 in
  let rec select () =
    if !n_chosen >= scheme.max_entries then ()
    else
      match Heap.pop heap with
      | None -> ()
      | Some (stale, g) -> (
        match current_template g with
        | None -> select ()
        | Some t ->
          if t.benefit <= 0. then select ()
          else
            let next_best =
              match Heap.peek heap with Some (p, _) -> p | None -> neg_infinity
            in
            if t.benefit +. 1e-9 < next_best then begin
              (* Stale priority: reinsert with the fresh value. *)
              ignore stale;
              Heap.push heap t.benefit g;
              select ()
            end
            else begin
              let active =
                List.filter (fun i -> inst_free consumed i g.len) t.covered
              in
              if active <> [] then begin
                List.iter (fun i -> mark_consumed consumed i g.len) active;
                chosen :=
                  { tag = !n_chosen; repr = g.repr; tpl = t; active }
                  :: !chosen;
                incr n_chosen;
                (* The group may still have uncovered distinct
                   instances; requeue it. *)
                (match current_template g with
                | Some t' when t'.benefit > 0. -> Heap.push heap t'.benefit g
                | Some _ | None -> ())
              end;
              select ()
            end)
  in
  select ();
  finalize ~scheme ~prog ~segs (Array.of_list (List.rev !chosen))

and finalize ~scheme ~prog ~segs (chosen : chosen array) =
  (* Map from (blk, start) to the chosen entry covering it. *)
  let starts : (int * int, chosen * inst) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter
    (fun c ->
      List.iter (fun i -> Hashtbl.replace starts (i.blk, i.start) (c, i))
      c.active)
    chosen;
  let entry_len c = Array.length c.repr in
  (* Rebuild the program from blocks + decisions. [offset_of] supplies
     branch-offset parameter values (0 in probe passes). *)
  let rebuild ~offset_of =
    let bi = ref (-1) in
    let items =
      List.concat_map
        (fun seg ->
          match seg with
          | Lbl l -> [ Program.Label l ]
          | Blk arr ->
            incr bi;
            let blk = !bi in
            let out = ref [] in
            let pos = ref 0 in
            let n = Array.length arr in
            while !pos < n do
              (match Hashtbl.find_opt starts (blk, !pos) with
              | Some (c, inst) ->
                let p1, p2, p3 = codeword_fields c.tpl inst ~offset_of in
                out :=
                  Program.Ins (I.codeword ~op:0 ~p1 ~p2 ~p3 ~tag:c.tag)
                  :: !out;
                pos := !pos + entry_len c
              | None ->
                out := Program.Ins arr.(!pos) :: !out;
                incr pos)
            done;
            List.rev !out)
        segs
    in
    items
  in
  let size_of = function
    | I.Codeword _ -> scheme.codeword_bytes
    | _ -> 4
  in
  (* Fixpoint: lay out, check branch-offset parameters, un-compress
     violating instances. *)
  let zero_offsets ~inst:_ ~pos:_ _ = 0 in
  let rec fixpoint iter =
    let prog' = rebuild ~offset_of:zero_offsets in
    let img = Program.layout ~base:code_base ~size_of prog' in
    (* For every active instance with Off10 params, check the final
       offset. The codeword's address: instances map 1:1 to codewords
       in rebuild order; recover it by walking the same decision
       table. We instead compute from the image: the codeword for an
       instance is the instruction at the address where the instance's
       first surviving position landed. Simpler: walk blocks again
       counting emitted instructions. *)
    let violations = ref [] in
    let bi = ref (-1) in
    let idx = ref 0 in
    List.iter
      (fun seg ->
        match seg with
        | Lbl _ -> ()
        | Blk arr ->
          incr bi;
          let blk = !bi in
          let pos = ref 0 in
          let n = Array.length arr in
          while !pos < n do
            match Hashtbl.find_opt starts (blk, !pos) with
            | Some (c, inst) ->
              let addr = Program.Image.addr_of_index img !idx in
              List.iter
                (fun p ->
                  match p.kind with
                  | `Off10 -> (
                    let ii, fi = p.pos in
                    match inst.vec.(ii).(fi) with
                    | Vtarget t -> (
                      let target =
                        match t with
                        | I.Abs a -> Some a
                        | I.Lab l -> Program.Image.symbol img l
                      in
                      match target with
                      | Some ta ->
                        let off = (ta - addr) / 4 in
                        if not (fits10 off && (ta - addr) mod 4 = 0) then
                          violations := (blk, inst.start) :: !violations
                      | None -> violations := (blk, inst.start) :: !violations)
                    | _ -> ())
                  | _ -> ())
                c.tpl.params;
              incr idx;
              pos := !pos + entry_len c
            | None ->
              incr idx;
              incr pos
          done)
      segs;
    if !violations = [] then img
    else begin
      (* Un-compress the violating instances and re-lay-out; each round
         removes at least one instance, so this terminates. *)
      List.iter (fun k -> Hashtbl.remove starts k) !violations;
      fixpoint (iter + 1)
    end
  in
  let probe_img = fixpoint 0 in
  (* Final pass with real offsets. Layout is unchanged (codeword sizes
     are fixed), so offsets computed against [probe_img] are final. *)
  ignore probe_img;
  let final_offsets =
    (* recompute codeword addresses as in fixpoint *)
    let tbl : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
    let prog' = rebuild ~offset_of:zero_offsets in
    let img = Program.layout ~base:code_base ~size_of prog' in
    let bi = ref (-1) in
    let idx = ref 0 in
    List.iter
      (fun seg ->
        match seg with
        | Lbl _ -> ()
        | Blk arr ->
          incr bi;
          let blk = !bi in
          let pos = ref 0 in
          let n = Array.length arr in
          while !pos < n do
            match Hashtbl.find_opt starts (blk, !pos) with
            | Some (c, _) ->
              Hashtbl.replace tbl (blk, !pos)
                (Program.Image.addr_of_index img !idx);
              incr idx;
              pos := !pos + entry_len c
            | None ->
              incr idx;
              incr pos
          done)
      segs;
    (tbl, img)
  in
  let addr_tbl, layout_img = final_offsets in
  let offset_of ~inst ~pos:_ t =
    let addr =
      match Hashtbl.find_opt addr_tbl (inst.blk, inst.start) with
      | Some a -> a
      | None -> assert false
    in
    let target =
      match t with
      | I.Abs a -> a
      | I.Lab l -> (
        match Program.Image.symbol layout_img l with
        | Some a -> a
        | None -> invalid_arg ("Compress: unknown label " ^ l))
    in
    (target - addr) / 4
  in
  let final_prog = rebuild ~offset_of in
  let image = Program.layout ~base:code_base ~size_of final_prog in
  (* Surviving uses per entry. *)
  let uses = Array.make (Array.length chosen) 0 in
  Hashtbl.iter (fun _ ((c : chosen), _) -> uses.(c.tag) <- uses.(c.tag) + 1)
    starts;
  let entries =
    Array.to_list chosen
    |> List.filter_map (fun (c : chosen) ->
           if uses.(c.tag) = 0 then None
           else
             Some
               {
                 tag = c.tag;
                 spec = spec_of_template c.repr c.tpl;
                 len = Array.length c.repr;
                 param_fields =
                   List.fold_left
                     (fun acc p -> acc + param_cost p.kind)
                     0 c.tpl.params;
                 uses = uses.(c.tag);
               })
  in
  let prodset =
    let set =
      List.fold_left
        (fun s e -> Prodset.define_sequence s e.tag e.spec)
        Prodset.empty entries
    in
    let set =
      if entries = [] then set
      else
        Prodset.add_production set
          (Production.make ~name:"decompress" (Pattern.codewords 0)
             Production.From_tag)
    in
    Prodset.resolve_labels (Program.Image.symbol image) set
  in
  let codewords = Hashtbl.length starts in
  {
    scheme;
    program = final_prog;
    image;
    prodset;
    entries;
    orig_text_bytes = 4 * Program.size prog;
    text_bytes = Program.Image.text_bytes image;
    dict_bytes =
      List.fold_left (fun acc e -> acc + (e.len * scheme.dict_entry_bytes)) 0
        entries;
    codewords;
  }

let compression_ratio r =
  float_of_int r.text_bytes /. float_of_int r.orig_text_bytes

let total_ratio r =
  float_of_int (r.text_bytes + r.dict_bytes)
  /. float_of_int r.orig_text_bytes

(* --- seeded (search-driven) compression --------------------------------- *)

(* A seed names one candidate window by position: instruction
   [s_start..s_start+s_len) of basic block [s_blk] (blocks numbered in
   program order, labels excluded). The seed stands for the whole
   {e group} of windows sharing its normalized text — exactly the unit
   the greedy compressor ranks — so a seed list is a complete, compact
   description of a dictionary that an external search (disesim
   synthesize) can mutate, serialize, and replay. *)
type seed = { s_blk : int; s_start : int; s_len : int }

type corpus = {
  c_scheme : scheme;
  c_prog : Program.t;
  c_segs : seg list;
  c_blocks : I.t array array;
  c_groups : (I.t list * int, group) Hashtbl.t;
  c_index : int array;  (* block -> global instruction index of its head *)
}

let corpus ~scheme prog =
  let segs, blocks, groups = enumerate scheme prog in
  let c_index = Array.make (max 1 (Array.length blocks)) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i arr ->
      c_index.(i) <- !acc;
      acc := !acc + Array.length arr)
    blocks;
  {
    c_scheme = scheme;
    c_prog = prog;
    c_segs = segs;
    c_blocks = blocks;
    c_groups = groups;
    c_index;
  }

type window = {
  w_seed : seed;
  w_len : int;
  w_count : int;
  w_sites : (int * int * int) list;
}

let windows c =
  Hashtbl.fold
    (fun (_, len) g acc ->
      let sites =
        List.map
          (fun i -> (i.blk, i.start, c.c_index.(i.blk) + i.start))
          g.insts
        |> List.sort compare
      in
      match sites with
      | [] -> acc
      | (blk, start, _) :: _ ->
        {
          w_seed = { s_blk = blk; s_start = start; s_len = len };
          w_len = len;
          w_count = List.length sites;
          w_sites = sites;
        }
        :: acc)
    c.c_groups []
  |> List.sort (fun a b -> compare a.w_seed b.w_seed)

(* Resolve a seed back to its group: recompute the normalized key from
   the program text at the seed's position. A seed that no longer
   names a legal window (out of bounds, stale journal against a
   different program) resolves to nothing and is skipped. *)
let group_at c (s : seed) =
  if s.s_blk < 0 || s.s_blk >= Array.length c.c_blocks then None
  else
    let arr = c.c_blocks.(s.s_blk) in
    if
      s.s_len < max 1 c.c_scheme.min_len
      || s.s_len > c.c_scheme.max_len
      || s.s_start < 0
      || s.s_start + s.s_len > Array.length arr
      || not
           (Array.for_all (legal c.c_scheme)
              (Array.sub arr s.s_start s.s_len))
    then None
    else
      let key =
        ( Array.to_list
            (Array.init s.s_len (fun k ->
                 normalize c.c_scheme arr.(s.s_start + k))),
          s.s_len )
      in
      Hashtbl.find_opt c.c_groups key

let compress_seeded c ~seeds =
  let scheme = c.c_scheme in
  let consumed =
    Array.map (fun arr -> Array.make (Array.length arr) false) c.c_blocks
  in
  let chosen = ref [] in
  let n = ref 0 in
  (* Seeds are honored in list order: earlier seeds consume windows
     first, exactly like greedy rank order does — so the search's
     accept/reject moves compose deterministically. *)
  List.iter
    (fun s ->
      if !n < scheme.max_entries then
        match group_at c s with
        | None -> ()
        | Some g -> (
          let live = List.filter (fun i -> inst_free consumed i g.len) g.insts in
          match build_template scheme g live with
          | None -> ()
          | Some t ->
            let active =
              List.filter (fun i -> inst_free consumed i g.len) t.covered
            in
            if active <> [] then begin
              List.iter (fun i -> mark_consumed consumed i g.len) active;
              chosen := { tag = !n; repr = g.repr; tpl = t; active } :: !chosen;
              incr n
            end))
    seeds;
  finalize ~scheme ~prog:c.c_prog ~segs:c.c_segs
    (Array.of_list (List.rev !chosen))
