(** Path profiling as a transparent ACF — the "bit tracing"
    implementation the paper sketches (Section 3.1, after Corliss et
    al.'s DISE path profiler).

    Each conditional branch is expanded into a sequence that appends
    the branch's {e outcome bit} to a path history register before the
    branch executes. The outcome is computed inside the replacement
    sequence with a DISE-internal branch on the trigger's own condition
    register — two-level control in earnest:

    {v
    @0: d<op> T.RS, @3        ; the trigger's own condition
    @1: sll $dr9, #1, $dr9    ; fall-through: append 0
    @2: djmp @5
    @3: sll $dr9, #1, $dr9    ; taken: append 1
    @4: lda $dr9, 1($dr9)
    @5: T.INSN
    v}

    At acyclic-path endpoints (function returns), a second production
    records the (endpoint PC, history) pair into a buffer pointed to by
    [$dr6] and clears the history. A post-execution pass
    ({!paths}) aggregates the records into per-path counts — the
    offline reconstruction step of the paper's scheme. Histories are
    truncated at {!history_bits} outcomes (lossy, as the paper permits:
    profile consumers do not need complete information). *)

val rsid_base : int
(** 4140: one sequence per conditional-branch opcode, plus the endpoint
    sequence. *)

val history_bits : int
(** Outcomes retained per path tag (28: history stays a non-negative
    30-bit value). *)

val productions : unit -> Dise_core.Prodset.t
(** Productions for every conditional-branch opcode and for returns
    ([jr ra]). Uses [$dr9] (path history), [$dr4] (scratch), [$dr6]
    (record buffer). *)

val install : Dise_machine.Machine.t -> buffer:int -> unit

type path = {
  endpoint : int;   (** PC of the return that ended the path *)
  history : int;    (** branch-outcome bits, oldest first *)
  length : int;     (** number of outcome bits (capped) *)
  count : int;
}

val paths : Dise_machine.Machine.t -> buffer:int -> path list
(** Reconstructed paths, hottest first. *)

val pp_path : Format.formatter -> path -> unit
