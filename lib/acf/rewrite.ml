module I = Dise_isa.Insn
module Op = Dise_isa.Opcode
module Reg = Dise_isa.Reg
module Program = Dise_isa.Program

type variant =
  | Segment_matching
  | Sandboxing

let inserted_per_check = function Segment_matching -> 4 | Sandboxing -> 3

(* Scavenged registers (reserved by the workload generator). *)
let r_dseg = Reg.r 23   (* data segment id (matching) or base (sandbox) *)
let r_scratch = Reg.r 24  (* scratch (matching) or offset mask (sandbox) *)
let r_copy = Reg.r 25
let r_cseg = Reg.r 26

let seg_shift = 26
let offset_mask = (1 lsl seg_shift) - 1

(* Local constant loader (mirrors the generator's li). *)
let emit_li acc reg v =
  if v <= 32767 then I.Ropi (Op.Add, Reg.zero, v, reg) :: acc
  else begin
    let hi = v lsr 16 and lo = v land 0xFFFF in
    let acc = I.Lui (hi, reg) :: acc in
    if lo = 0 then acc
    else if lo <= 32767 then I.Ropi (Op.Add, reg, lo, reg) :: acc
    else
      let acc = I.Ropi (Op.Add, reg, 0x4000, reg) :: acc in
      let acc = I.Ropi (Op.Add, reg, 0x4000, reg) :: acc in
      if lo - 0x8000 = 0 then acc
      else I.Ropi (Op.Add, reg, lo - 0x8000, reg) :: acc
  end

let init_code variant ~data_seg ~code_seg =
  let acc =
    match variant with
    | Segment_matching ->
      emit_li (emit_li [] r_dseg data_seg) r_cseg code_seg
    | Sandboxing ->
      emit_li
        (emit_li (emit_li [] r_dseg (data_seg lsl seg_shift)) r_cseg
           (code_seg lsl seg_shift))
        r_scratch offset_mask
  in
  List.rev acc

(* Checks for segment matching: the extra copy into r25 protects the
   check against control transfers into its middle — the cost the
   paper charges to software SFI. *)
let matching_check ~error_label ~seg_reg rs =
  [
    I.Lda (rs, 0, r_copy);
    I.Ropi (Op.Srl, r_copy, seg_shift, r_scratch);
    I.Rop (Op.Xor, r_scratch, seg_reg, r_scratch);
    I.Br (Op.Bne, r_scratch, I.Lab error_label);
  ]

(* Sandboxing: force the effective address's segment bits, and rewrite
   the access to go through the sandboxed register. *)
let sandbox_addr ~seg_base_reg rs imm =
  [
    I.Lda (rs, imm, r_copy);
    I.Rop (Op.And_, r_copy, r_scratch, r_copy);
    I.Rop (Op.Or_, r_copy, seg_base_reg, r_copy);
  ]

let rewrite_insn variant ~check_jumps ~error_label insn =
  match variant with
  | Segment_matching -> (
    match insn with
    | I.Mem (_, rs, _, _) ->
      matching_check ~error_label ~seg_reg:r_dseg rs @ [ insn ]
    | I.Jr rs | I.Jalr (rs, _) ->
      if check_jumps then
        matching_check ~error_label ~seg_reg:r_cseg rs @ [ insn ]
      else [ insn ]
    | _ -> [ insn ])
  | Sandboxing -> (
    match insn with
    | I.Mem (mop, rs, imm, rt) ->
      sandbox_addr ~seg_base_reg:r_dseg rs imm @ [ I.Mem (mop, r_copy, 0, rt) ]
    | I.Jr rs when check_jumps ->
      sandbox_addr ~seg_base_reg:r_cseg rs 0 @ [ I.Jr r_copy ]
    | I.Jalr (rs, rd) when check_jumps ->
      sandbox_addr ~seg_base_reg:r_cseg rs 0 @ [ I.Jalr (r_copy, rd) ]
    | _ -> [ insn ])

let rewrite ?(variant = Segment_matching) ?(check_jumps = false)
    ?(error_label = "__error") ~data_seg ~code_seg prog =
  List.concat_map
    (fun item ->
      match item with
      | Program.Label "main" ->
        item
        :: List.map
             (fun i -> Program.Ins i)
             (init_code variant ~data_seg ~code_seg)
      | Program.Label _ -> [ item ]
      | Program.Ins insn ->
        List.map
          (fun i -> Program.Ins i)
          (rewrite_insn variant ~check_jumps ~error_label insn))
    prog

let static_growth original rewritten =
  float_of_int (Program.size rewritten) /. float_of_int (Program.size original)
