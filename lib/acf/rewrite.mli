(** Software fault isolation by static binary rewriting — the baseline
    the paper compares DISE against (Wahbe et al.'s scheme).

    The rewriter transforms a symbolic program, inserting a check
    sequence before every load, store, and (optionally) indirect jump,
    and planting segment-id initialization at the program entry. It
    needs scavenged registers the application must not use — the
    workload generator reserves r23..r26 for exactly this purpose:

    - r23: legal data-segment id, r26: code-segment id;
    - r24: scratch; r25: the defensive copy of the address register.

    Two variants:
    - [Segment_matching]: copy, extract segment, compare, branch to the
      error handler (4 inserted instructions per access — including the
      extra copy that protects against jumps into the middle of the
      check, a cost DISE's control model avoids);
    - [Sandboxing]: force the address's segment bits to the legal
      segment (3 inserted instructions; the access is rewritten to use
      the sandboxed register). No fault is reported: stray accesses are
      redirected into the legal segment. *)

type variant =
  | Segment_matching
  | Sandboxing

val inserted_per_check : variant -> int

val rewrite :
  ?variant:variant ->
  ?check_jumps:bool ->
  ?error_label:string ->
  data_seg:int ->
  code_seg:int ->
  Dise_isa.Program.t ->
  Dise_isa.Program.t
(** Rewrite a program (default variant [Segment_matching], jumps
    unchecked, error handler ["__error"]). The returned program lays
    out and runs like the original, plus the checks. *)

val static_growth : Dise_isa.Program.t -> Dise_isa.Program.t -> float
(** Instruction-count ratio rewritten/original. *)
