(** Fine-grain distributed shared memory checks (Section 3.1).

    Software DSM built on virtual memory is limited to page
    granularity; Shasta-style systems instead instrument every memory
    operation to test a per-block {e state table}. As the paper notes,
    the checks are structurally the fault-isolation checks, so a
    DISE-capable machine looks like hardware-supported fine-grain DSM
    with no custom hardware.

    This module implements the access-check ACF over a shadow state
    table: one byte per [block_bytes]-sized block of the data segment,
    nonzero meaning {e present} (locally valid). Loads and stores to
    absent blocks transfer control to the miss handler before
    executing. A host-side "protocol" ({!mark_present} /
    {!mark_absent}) stands in for the coherence machinery, which is
    outside the paper's scope. *)

val rsid : int
(** 4134. *)

val block_bytes : int
(** Sharing granularity (64 bytes). *)

val productions : handler:int -> unit -> Dise_core.Prodset.t
(** Check productions for loads and stores. The shadow table base is
    expected in [$dr8]; [$dr4] is scratch. *)

val productions_for : Dise_isa.Program.Image.t -> Dise_core.Prodset.t
(** Handler resolved from the image's [__error] symbol. *)

val install :
  Dise_machine.Machine.t -> shadow_base:int -> data_base:int -> unit
(** Point [$dr8] at [shadow_base - data_base/block_bytes] so the check
    sequence can index the table directly from the block number. *)

val mark_present :
  Dise_machine.Machine.t -> shadow_base:int -> data_base:int ->
  addr:int -> len:int -> unit

val mark_absent :
  Dise_machine.Machine.t -> shadow_base:int -> data_base:int ->
  addr:int -> len:int -> unit
