module R = Dise_core.Replacement
module Pattern = Dise_core.Pattern
module Production = Dise_core.Production
module Prodset = Dise_core.Prodset
module Machine = Dise_machine.Machine
module Memory = Dise_machine.Memory
module Regfile = Dise_machine.Regfile
module I = Dise_isa.Insn
module Op = Dise_isa.Opcode
module Reg = Dise_isa.Reg

let rsid_base = 4140
let history_bits = 28

let hist = R.Rlit (Reg.d 9)
let scratch = R.Rlit (Reg.d 4)
let buf = R.Rlit (Reg.d 6)

(* One sequence per conditional-branch opcode: the internal branch must
   test the trigger's own condition. *)
let branch_seq (bop : Op.bop) : R.t =
  [|
    (* lossy truncation: restart the tag when the history fills *)
    R.Ropi (Op.Srl, hist, R.Ilit history_bits, scratch);
    R.Dbr (Op.Beq, scratch, 3);
    R.Ropi (Op.Add, R.Rlit Reg.zero, R.Ilit 1, hist);
    (* append the outcome bit, decided by the trigger's own condition *)
    R.Dbr (bop, R.Rrs, 6);
    R.Ropi (Op.Sll, hist, R.Ilit 1, hist);
    R.Djmp 8;
    R.Ropi (Op.Sll, hist, R.Ilit 1, hist);
    R.Lda (hist, R.Ilit 1, hist);
    R.Trigger;
  |]

(* Path endpoint (function return): record (PC, history), reset. *)
let endpoint_seq : R.t =
  [|
    R.Ropi (Op.Add, R.Rlit Reg.zero, R.Ipc, scratch);
    R.Mem (Op.Stq, buf, R.Ilit 0, scratch);
    R.Mem (Op.Stq, buf, R.Ilit 4, hist);
    R.Lda (buf, R.Ilit 8, buf);
    R.Ropi (Op.Add, R.Rlit Reg.zero, R.Ilit 1, hist);
    R.Trigger;
  |]

let bop_index (op : Op.bop) =
  match op with Beq -> 0 | Bne -> 1 | Blt -> 2 | Bge -> 3 | Ble -> 4
  | Bgt -> 5

let productions () =
  let set =
    List.fold_left
      (fun set bop ->
        let rsid = rsid_base + bop_index bop in
        let pattern =
          Pattern.of_opcode (I.Br (bop, Reg.zero, I.Abs 0))
        in
        Prodset.add set
          (Production.make
             ~name:(Printf.sprintf "path_%s" (Op.bop_to_string bop))
             pattern (Production.Direct rsid))
          (branch_seq bop))
      Prodset.empty Op.all_bops
  in
  Prodset.add set
    (Production.make ~name:"path_endpoint"
       (Pattern.with_rs Reg.ra Pattern.indirect_jumps)
       (Production.Direct (rsid_base + 6)))
    endpoint_seq

let install m ~buffer =
  Machine.set_dise_reg m 6 buffer;
  Machine.set_dise_reg m 9 1  (* sentinel: empty history *)

type path = {
  endpoint : int;
  history : int;
  length : int;
  count : int;
}

let decode_history tag =
  (* The sentinel 1 bit marks the start; bits below it are outcomes. *)
  let rec msb i = if tag lsr i = 1 then i else msb (i + 1) in
  if tag <= 0 then (0, 0)
  else
    let len = msb 0 in
    (tag land ((1 lsl len) - 1), len)

let paths m ~buffer =
  let stop = Regfile.get (Machine.regs m) (Reg.d 6) in
  let mem = Machine.memory m in
  let tbl = Hashtbl.create 256 in
  let addr = ref buffer in
  while !addr + 8 <= stop do
    let pc = Memory.read_u32 mem !addr in
    let tag = Memory.read_u32 mem (!addr + 4) in
    let key = (pc, tag) in
    Hashtbl.replace tbl key
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key));
    addr := !addr + 8
  done;
  Hashtbl.fold
    (fun (endpoint, tag) count acc ->
      let history, length = decode_history tag in
      { endpoint; history; length; count } :: acc)
    tbl []
  |> List.sort (fun a b -> compare b.count a.count)

let pp_path ppf p =
  let bits =
    String.init p.length (fun i ->
        if (p.history lsr (p.length - 1 - i)) land 1 = 1 then 'T' else 'N')
  in
  Format.fprintf ppf "endpoint %08x path [%s] x%d" p.endpoint
    (if bits = "" then "-" else bits)
    p.count
