(** Transparent-with-aware composition (Sections 3.3 and 4.3): fault
    isolation nested within decompression.

    The server ships a compressed, unmodified application; the client
    wants the {e decompressed} program fault-isolated — the checks must
    apply to the instructions the codewords expand to, not to the
    codewords. The composite production set is therefore
    [MFI(decompress(stream))]: MFI's own productions (for uncompressed
    loads/stores) plus the decompression productions with MFI inlined
    into every dictionary entry.

    In the paper this inlining runs inside the RT miss handler (150
    cycles instead of 30); model that by creating the
    {!Dise_core.Controller} with [composing = true]. *)

val compose :
  mfi:Dise_core.Prodset.t ->
  decompression:Dise_core.Prodset.t ->
  Dise_core.Prodset.t
(** [Compose.nest ~outer:mfi ~inner:decompression], with the id-space
    precondition already guaranteed by {!Mfi.rsid_base} sitting above
    the tag space. *)

val for_compressed :
  ?variant:Mfi.variant ->
  Compress.result ->
  Dise_core.Prodset.t
(** Build the full composite for a compression result: MFI productions
    resolved against the compressed image, nested over the result's
    decompression productions. *)

val rt_entry_growth :
  plain:Dise_core.Prodset.t -> composed:Dise_core.Prodset.t -> float
(** Ratio of total replacement-sequence instructions (RT working-set
    entries) after/before composition — the capacity pressure of
    Figure 8's bottom panel. *)
