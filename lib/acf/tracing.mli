(** Store-address tracing (Figure 5's second ACF): a transparent
    production that writes every store's effective address into a
    memory buffer pointed to by the dedicated register [$dr5], using
    [$dr4] as scratch. Each trace entry advances the pointer by four
    bytes, so trace length can be recovered from [$dr5]. *)

val rsid : int
(** 4128 — disjoint from codeword tags and {!Mfi.rsid_base}. *)

val productions : unit -> Dise_core.Prodset.t

val install : Dise_machine.Machine.t -> buffer:int -> unit
(** Point [$dr5] at the trace buffer. *)

val trace : Dise_machine.Machine.t -> buffer:int -> int list
(** Addresses recorded so far, oldest first. *)
