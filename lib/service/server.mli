(** Batch simulation service: JSONL requests in, JSONL responses out.

    Protocol (one JSON document per line; see doc/service.md):

    - each input line is a {!Request} object, optionally carrying an
      extra ["id"] member that is echoed back verbatim (any JSON
      value) so clients can correlate out-of-order submissions —
      though responses are in fact emitted {e in input order};
    - each response line is either
      [{"id", "ok": true, "key", "cache_hit", "wall_s", "stats"}] or
      [{"id", "ok": false, "error": {"kind", "message"}}] where
      [kind] is a {!Dise_isa.Diag.category} (doc/schema/
      serve_response.schema.json validates both shapes);
    - blank lines are skipped; a malformed line yields an error
      response with kind ["parse"] (it does not kill the stream) —
      this covers unparseable JSON, schema violations, and lines
      longer than {!max_line_bytes} (which are drained to the next
      newline so the response stream never desyncs from input order);
      a final line without a trailing newline is parsed normally.

    {b Scheduling.} Jobs are read in chunks of at most [queue] lines
    and each chunk fans out over the {!Pool} domains ([jobs] wide);
    the next chunk is not read until the previous one's responses
    have been written and flushed. The chunk is the backpressure
    unit: a client piping a large job file never has more than
    [queue] jobs buffered in the server.

    {b Shutdown.} {!request_stop} (wired to SIGINT/SIGTERM by
    [disesim serve]) drains gracefully: the in-flight chunk finishes,
    its responses are flushed, and the loop exits instead of reading
    further input. *)

type opts = {
  jobs : int;      (** worker domains, as {!Pool.run}'s [jobs] *)
  queue : int;     (** max jobs in flight (chunk size), >= 1 *)
}

val default_opts : unit -> opts
(** [{ jobs = Pool.default_jobs (); queue = 4 * jobs }]. *)

type summary = {
  served : int;      (** responses written (ok and error alike) *)
  errors : int;      (** of which ["ok": false] *)
  cache_hits : int;  (** of which served without simulating *)
}

val pp_summary : Format.formatter -> summary -> unit
(** ["served N jobs (E errors, H cache hits)"]. *)

val serve_channel : ?opts:opts -> in_channel -> out_channel -> summary
(** Serve one JSONL stream to completion (EOF or {!request_stop}).
    Responses are flushed after every chunk. Used both by
    [disesim serve] on stdin/stdout and per-connection in socket
    mode. *)

val serve_socket : ?opts:opts -> path:string -> unit -> unit
(** Listen on a Unix-domain socket at [path] (unlinking any stale
    one), serving connections sequentially — each connection is one
    {!serve_channel} stream — until {!request_stop}. Per-connection
    summaries are reported on stderr. Raises
    [Cache.Diag_error (Cache _)] if the socket cannot be bound. *)

val max_line_bytes : int
(** Upper bound on one input line (1 MiB). Longer lines are consumed
    up to the next newline and answered with a per-job ["parse"]
    error, never buffered whole. *)

val request_stop : unit -> unit
(** Ask the serving loops to drain and return. Async-signal-safe
    (sets an atomic flag); idempotent. *)

val reset_stop : unit -> unit
(** Clear a previous {!request_stop} so the serving loops can run
    again in the same process (tests, fault-injection harness). *)

val stopping : unit -> bool
