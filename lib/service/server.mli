(** JSONL request server: the serve tier's per-process engine.

    Reads one JSON request document per line, executes them on a
    domain pool in bounded chunks, and writes one JSON response per
    line {e in input order}. This module is the single-process core:
    the [disesim serve] CLI runs it directly over stdio or a Unix
    socket, and {!Coordinator} runs one instance's machinery inside
    each worker process of the sharded tier.

    {b Wire envelope (v1).} Beside the {!Request} document proper, an
    input line may carry three envelope members (see doc/service.md
    and doc/serve-tier.md):

    - ["id"] — any JSON value, echoed back verbatim so clients can
      correlate responses (which are in fact emitted in input order);
    - ["v"] — the protocol version. [1] is this dialect; an {e absent}
      ["v"] is the legacy v0 dialect and is accepted unchanged (v0
      carried no version or tenant members); any other value is
      answered with a ["parse"] error naming the supported version;
    - ["tenant"] — a string naming the tenant for admission quotas
      ([tenant_quota] in {!Serve_config.t}); lines without one share
      the anonymous tenant.

    Every response speaks v1: it leads with ["v"]:1 and is either
    [{"v", "id", "ok": true, "key", "cache_hit", "wall_s", "stats"}]
    or [{"v", "id", "ok": false, "error": {"kind", "message"}}], where
    [kind] is a {!Dise_isa.Diag.category}
    (doc/schema/serve_response.schema.json validates both shapes).
    Blank lines are skipped; a malformed line yields an error response
    with kind ["parse"] without killing the stream — this covers
    unparseable JSON, schema violations, and lines longer than
    {!max_line_bytes} (drained to the next newline so responses never
    desync from input order).

    {b Scheduling.} Jobs are read in chunks of at most [queue] lines
    and each chunk fans out over the {!Pool} domains ([jobs] wide);
    the next chunk is not read until the previous one's responses have
    been written and flushed. The chunk is the backpressure unit.

    {b Fault tolerance} (doc/resilience.md has the full semantics):
    job isolation under {!Pool.run_outcomes} (kind ["internal"]),
    per-job deadlines (["timeout"]), admission control — load shedding
    by cumulative [dyn_target] and per-tenant quotas, both answered
    ["overloaded"] — and the fsync-before-execute crash journal that
    {!replay_journal} recovers.

    {b Sessions.} All serving state — the {!Serve_config.t}, the stop
    flag, the journal and manifest handles — lives in an explicit
    {!session} value; stop signalling is per-session (see {!Stop}), so
    several servers (a coordinator's workers, a test harness) can run
    in one process without sharing global flags. *)

val protocol_version : int
(** The wire-envelope version this server speaks: [1]. *)

(** Cooperative per-session stop flag. [signal] is async-signal-safe
    (a single atomic store), so SIGINT/SIGTERM handlers may call it;
    the serving loops poll it between lines and between chunks and
    drain gracefully — the in-flight chunk finishes, its responses
    are flushed, and the loop returns instead of reading on. *)
module Stop : sig
  type t

  val create : unit -> t
  val signal : t -> unit
  val signalled : t -> bool

  val reset : t -> unit
  (** Re-arm a signalled flag (harnesses that reuse a session). *)
end

type session
(** A serving context: one {!Serve_config.t} plus optional
    journal/manifest handles and a {!Stop.t}. One session may serve
    many streams (e.g. every connection {!serve_socket} accepts). *)

val session :
  ?stop:Stop.t ->
  ?journal:Resilience.Journal.t ->
  ?manifest:Dise_telemetry.Manifest.t ->
  Serve_config.t ->
  session
(** Build a session. The journal and manifest handles remain owned by
    the caller: [disesim serve] replays and clears the journal
    {e before} opening it and hands the open handle in (workers do the
    same for their shard's subdirectory). A fresh {!Stop.t} is created
    when none is given. *)

val config : session -> Serve_config.t
val stop_signal : session -> Stop.t

val stop : session -> unit
(** [stop s] = [Stop.signal (stop_signal s)]. *)

type summary = {
  served : int;  (** responses written (ok and error alike) *)
  errors : int;  (** of which ["ok": false] *)
  cache_hits : int;  (** of which served without simulating *)
  timeouts : int;  (** of the errors, kind ["timeout"] *)
  shed : int;  (** of the errors, kind ["overloaded"] (load or quota) *)
  isolated : int;  (** of the errors, kind ["internal"] *)
}
(** Per-stream result summary; every field is a per-stream delta (the
    underlying counters and metrics are process-wide). *)

val pp_summary : Format.formatter -> summary -> unit
(** ["served N jobs (E errors, H cache hits)"], with a
    [" [T timed out, S shed, I isolated]"] suffix when any of those
    is nonzero. *)

val serve_channel : session -> in_channel -> out_channel -> summary
(** Serve one JSONL stream to completion (EOF or session stop).
    Responses are flushed after every chunk. Used both by
    [disesim serve] on stdin/stdout and per-connection in socket mode.

    {b Observability.} Every request's latency is recorded in the
    process-wide {!Dise_telemetry.Metrics} registry, split into
    [serve_queue_wait_ns] (chunk admission to worker pickup),
    [serve_execute_ns] (the pool's per-task wall-clock), and
    [serve_request_ns] (end-to-end). With a manifest attached, the
    stream emits ["metrics_snapshot"] records at most every
    [metrics_every_s] seconds and one final ["serve_summary"] record
    whose ["counters"] and ["metrics"] members are {e per-session
    deltas} (doc/schema/serve_summary.schema.json validates the
    record); request-latency quantiles live at
    [metrics.histograms.serve_request_ns.p50/p95/p99]. *)

val serve_socket : session -> path:string -> unit -> unit
(** Listen on a Unix-domain socket at [path], serving connections
    sequentially — each connection is one {!serve_channel} stream —
    until the session is stopped. (The concurrent, multiplexed front
    end lives in {!Coordinator}; this single-process mode favours
    simplicity.) Per-connection summaries are reported on stderr, and
    a connection that dies (client reset, I/O error, a contained
    server bug) is counted ([conn_failures]), logged, and survived:
    the listener keeps accepting. SIGPIPE is ignored for the
    listener's lifetime so client hangups surface as per-connection
    errors.

    If [path] already exists, it is {e probed} first: when a live
    server answers, this call refuses to start with
    [Cache.Diag_error (Diag.Overloaded _)] (exit-code class 6) —
    stealing the socket would silently split the service; only a dead
    (stale) socket is unlinked and reclaimed. Raises
    [Cache.Diag_error (Diag.Cache _)] if the socket cannot be
    bound. *)

val replay_journal : ?jobs:int -> dir:string -> unit -> int
(** Re-run every job the journal at [dir] records as begun but not
    done (a crash's leftovers), returning how many were replayed (0
    when there is no journal). Each job re-enters through
    {!Request.run_ext}, so completed work is a cache hit and
    interrupted work lands in the result cache under its original
    key — replay is idempotent. Per-job failures are logged and
    skipped; the caller decides when to {!Resilience.Journal.clear}.
    [disesim serve --journal DIR] calls this on startup before
    opening the journal for the new run. *)

val max_line_bytes : int
(** Upper bound on one input line (1 MiB). Longer lines are consumed
    up to the next newline and answered with a per-job ["parse"]
    error naming the offending line number, never buffered whole. *)

(** {1 Building blocks shared with the coordinator}

    The sharded tier ({!Coordinator}) parses and answers on its front
    end but executes in worker processes; these exports keep both
    sides of the wire byte-identical with the single-process path. *)

type parsed = {
  id : Dise_telemetry.Json.t;  (** the envelope ["id"]; [Null] if absent *)
  version : int;  (** envelope dialect spoken: [0] (legacy) or [1] *)
  tenant : string option;  (** the envelope ["tenant"], when a string *)
  req : (Request.t, Dise_isa.Diag.t) result;
}
(** One parsed input line. Parse failures keep their response slot
    ([req = Error _]) so output order always matches input order. *)

val parse_job : lineno:int -> string -> parsed
(** Total: any defect in the line (bad JSON, unsupported ["v"],
    non-string ["tenant"], a decoder error) becomes
    [req = Error (Parse _)]. *)

type raw_line = Line of string | Truncated | Eof

val read_raw_line : in_channel -> raw_line
(** Bounded [input_line]: a line longer than {!max_line_bytes} is
    drained to the next newline and reported [Truncated]; a final
    line without a trailing newline is a normal [Line]. *)

val oversized_line : lineno:int -> parsed
(** The parse-error slot a [Truncated] line occupies. *)

val read_chunk :
  stop:Stop.t -> in_channel -> lineno:int ref -> int -> parsed array option
(** Read and parse up to [n] non-blank lines ([None] on immediate
    EOF), bumping [lineno] per line read; stops early once [stop] is
    signalled. The chunk reader behind {!serve_channel}, shared with
    the coordinator's channel mode. *)

val admit : Serve_config.t -> parsed array -> parsed array
(** Admission control over one in-flight window: per-tenant quotas
    first, then load shedding by cumulative [dyn_target]; rejected
    jobs have their [req] replaced by an [Overloaded] error, in
    place, preserving order. Shared verbatim by {!serve_channel} and
    the coordinator front end. *)

val isolated_response :
  Dise_telemetry.Json.t ->
  exn ->
  Printexc.raw_backtrace ->
  Dise_telemetry.Json.t * [ `Hit | `Fresh | `Error of string ]
(** The kind-["internal"] response for a job {!Pool.run_outcomes}
    isolated (counts it, logs the backtrace to stderr). *)

val listen_socket : path:string -> Unix.file_descr
(** Claim [path] for a fresh Unix-domain listener with the live-probe
    semantics documented on {!serve_socket} (refuse a live server,
    reclaim a stale file). The caller owns the returned descriptor
    and the socket file. *)

val with_sigpipe_ignored : (unit -> 'a) -> 'a
(** Run [f] with SIGPIPE ignored (restored after), so peer hangups
    surface as write errors instead of killing the process. *)

val error_response : Dise_telemetry.Json.t -> Dise_isa.Diag.t -> Dise_telemetry.Json.t
(** [error_response id diag]: the v1 error response object. *)

val run_parsed :
  chaos:Resilience.Chaos.t ->
  deadline_ms:int option ->
  enqueued_at:float ->
  parsed ->
  Dise_telemetry.Json.t * [ `Hit | `Fresh | `Error of string ]
(** Execute one parsed job and build its response, observing the
    queue-wait and end-to-end latency histograms. The tag classifies
    the outcome ([`Error] carries the {!Dise_isa.Diag.category}).
    Chaos injection may raise: callers run this under
    {!Pool.run_outcomes} and answer isolated exceptions with kind
    ["internal"]. *)
