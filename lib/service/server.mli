(** Batch simulation service: JSONL requests in, JSONL responses out.

    Protocol (one JSON document per line; see doc/service.md):

    - each input line is a {!Request} object, optionally carrying an
      extra ["id"] member that is echoed back verbatim (any JSON
      value) so clients can correlate out-of-order submissions —
      though responses are in fact emitted {e in input order};
    - each response line is either
      [{"id", "ok": true, "key", "cache_hit", "wall_s", "stats"}] or
      [{"id", "ok": false, "error": {"kind", "message"}}] where
      [kind] is a {!Dise_isa.Diag.category} (doc/schema/
      serve_response.schema.json validates both shapes);
    - blank lines are skipped; a malformed line yields an error
      response with kind ["parse"] (it does not kill the stream) —
      this covers unparseable JSON, schema violations, and lines
      longer than {!max_line_bytes} (which are drained to the next
      newline so the response stream never desyncs from input order);
      a final line without a trailing newline is parsed normally.

    {b Scheduling.} Jobs are read in chunks of at most [queue] lines
    and each chunk fans out over the {!Pool} domains ([jobs] wide);
    the next chunk is not read until the previous one's responses
    have been written and flushed. The chunk is the backpressure
    unit: a client piping a large job file never has more than
    [queue] jobs buffered in the server.

    {b Fault tolerance} (doc/resilience.md has the full semantics):

    - {e job isolation} — jobs run under {!Pool.run_outcomes}; an
      exception the request layer does not recognize is confined to
      its slot and answered in order with kind ["internal"]
      (backtrace on stderr), while its batch-mates complete normally;
    - {e deadlines} — with [deadline_ms] set, each job gets that
      wall-clock budget from the moment a worker picks it up;
      overruns are answered ["timeout"] (cooperatively — see
      {!Request.run_ext});
    - {e load shedding} — with [shed_above] set, a chunk admits jobs
      in input order while their cumulative [dyn_target] stays within
      the mark and answers the rest ["overloaded"] without running
      them (the first runnable job is always admitted);
    - {e crash-safe journal} — with [journal] set, every admitted job
      is appended and fsynced before its batch executes and marked
      done after its response is flushed; {!replay_journal} re-runs
      whatever a crash interrupted;
    - the result-cache circuit breaker lives one layer down
      ({!Request.set_cache_breaker}); its state is included in the
      manifest record this module emits.

    {b Shutdown.} {!request_stop} (wired to SIGINT/SIGTERM by
    [disesim serve]) drains gracefully: the in-flight chunk finishes,
    its responses are flushed, and the loop exits instead of reading
    further input. *)

type opts = {
  jobs : int;  (** worker domains, as {!Pool.run}'s [jobs] *)
  queue : int;  (** max jobs in flight (chunk size), >= 1 *)
  deadline_ms : int option;
      (** per-job wall-clock budget; [None] (default): unbounded *)
  shed_above : int option;
      (** admission high-water mark in [dyn_target] units per chunk;
          [None] (default): never shed *)
  journal : Resilience.Journal.t option;
      (** crash journal to append admitted jobs to *)
  manifest : Dise_telemetry.Manifest.t option;
      (** emit one ["serve_summary"] record per stream, plus periodic
          ["metrics_snapshot"] records *)
  metrics_every_s : float;
      (** minimum spacing of ["metrics_snapshot"] manifest records
          (checked between chunks; default 1 s) *)
}

val opts :
  ?jobs:int ->
  ?queue:int ->
  ?deadline_ms:int ->
  ?shed_above:int ->
  ?journal:Resilience.Journal.t ->
  ?manifest:Dise_telemetry.Manifest.t ->
  ?metrics_every_s:float ->
  unit ->
  opts
(** Smart constructor: [jobs] defaults to {!Pool.default_jobs}
    (clamped >= 1), [queue] to [4 * jobs] (clamped >= 1), every
    resilience feature to off. *)

val default_opts : unit -> opts
(** [opts ()]. *)

type summary = {
  served : int;  (** responses written (ok and error alike) *)
  errors : int;  (** of which ["ok": false] *)
  cache_hits : int;  (** of which served without simulating *)
  timeouts : int;  (** of the errors, kind ["timeout"] *)
  shed : int;  (** of the errors, kind ["overloaded"] *)
  isolated : int;  (** of the errors, kind ["internal"] *)
}

val pp_summary : Format.formatter -> summary -> unit
(** ["served N jobs (E errors, H cache hits)"], with a
    [" [T timed out, S shed, I isolated]"] suffix when any of those
    is nonzero. *)

val serve_channel : ?opts:opts -> in_channel -> out_channel -> summary
(** Serve one JSONL stream to completion (EOF or {!request_stop}).
    Responses are flushed after every chunk. Used both by
    [disesim serve] on stdin/stdout and per-connection in socket
    mode.

    {b Observability.} Every request's latency is recorded in the
    process-wide {!Dise_telemetry.Metrics} registry, split into
    [serve_queue_wait_ns] (chunk admission to worker pickup, recorded
    in {!Request}-level jobs only), [serve_execute_ns] (the pool's
    per-task wall-clock), and [serve_request_ns] (end-to-end). With a
    manifest attached, the stream emits ["metrics_snapshot"] records
    at most every [metrics_every_s] seconds and one final
    ["serve_summary"] record whose ["counters"] and ["metrics"]
    members are {e per-session deltas} (validated by
    doc/schema/metrics.schema.json); the request-latency quantiles
    live at [metrics.histograms.serve_request_ns.p50/p95/p99]. *)

val serve_socket : ?opts:opts -> path:string -> unit -> unit
(** Listen on a Unix-domain socket at [path], serving connections
    sequentially — each connection is one {!serve_channel} stream —
    until {!request_stop}. Per-connection summaries are reported on
    stderr, and a connection that dies (client reset, I/O error, a
    contained server bug) is counted, logged, and survived: the
    listener keeps accepting. SIGPIPE is ignored for the listener's
    lifetime so client hangups surface as per-connection errors.

    If [path] already exists, it is {e probed} first: when a live
    server answers, this call refuses to start with
    [Cache.Diag_error (Diag.Overloaded _)] (exit-code class 6) —
    stealing the socket would silently split the service; only a
    dead (stale) socket is unlinked and reclaimed. Raises
    [Cache.Diag_error (Diag.Cache _)] if the socket cannot be
    bound. *)

val replay_journal : ?jobs:int -> dir:string -> unit -> int
(** Re-run every job the journal at [dir] records as begun but not
    done (a crash's leftovers), returning how many were replayed (0
    when there is no journal). Each job re-enters through
    {!Request.run_ext}, so completed work is a cache hit and
    interrupted work lands in the result cache under its original
    key — replay is idempotent. Per-job failures are logged and
    skipped; the caller decides when to {!Resilience.Journal.clear}.
    [disesim serve --journal DIR] calls this on startup before
    opening the journal for the new run. *)

val max_line_bytes : int
(** Upper bound on one input line (1 MiB). Longer lines are consumed
    up to the next newline and answered with a per-job ["parse"]
    error naming the offending line number, never buffered whole. *)

val request_stop : unit -> unit
(** Ask the serving loops to drain and return. Async-signal-safe
    (sets an atomic flag); idempotent. *)

val reset_stop : unit -> unit
(** Clear a previous {!request_stop} so the serving loops can run
    again in the same process (tests, fault-injection harness). *)

val stopping : unit -> bool
