(** Sharded multi-process serve tier.

    [disesim serve --workers N] runs this coordinator: [N] worker
    {e processes} (re-executions of the current binary, dispatched
    through {!worker_child_main} via the {!env_var} spawn
    environment), each owning one shard of the content-addressed
    result keyspace. The coordinator is a pure front end — it parses,
    admits, routes, and reorders, but never simulates:

    - {e sharding} — jobs route by {!Request.key} over a
      consistent-hash ring ({!Shard}), so identical requests always
      reach the same worker and each worker's in-memory state and
      crash-journal shard ([<journal>/worker-<shard>]) are
      authoritative for their slice;
    - {e transport} — length-prefixed JSON frames over each worker's
      stdin/stdout pipes; responses carry the coordinator-global
      sequence number, so the front end can reorder per-stream while
      workers answer in completion order;
    - {e supervision} — a worker that exits is reaped, respawned on
      the same shard, and handed its inflight frames again; the
      replacement replays its journal shard first, so recovery is
      idempotent (previously completed jobs return as cache hits).
      Beyond crash-respawn, the coordinator heartbeats every worker
      ([ping]/[pong] frames, {!Resilience.Health}): a worker that
      misses [suspect_misses] consecutive heartbeats — or holds a
      request longer than [hedge_p95x] times the tier's request p95
      (gray failure) — turns [Suspect] and its in-flight requests are
      {e hedged} to the next worker on the ring; the first non-error
      response wins and duplicates are deduped. A worker that misses
      [dead_misses] heartbeats or exhausts [respawn_cap] is declared
      [Dead] and {e failed over}: it is removed from the ring (only
      its keys move, {!Shard.remove}), its journal shard is replayed
      through the surviving ring, and the tier keeps serving in
      degraded mode — the merged summary's ["topology"] member
      records the new shape;
    - {e admission} — per-tenant quotas and [dyn_target] load
      shedding, the same policies as the in-process server, applied
      tier-wide; rejected jobs are answered ["overloaded"] by the
      coordinator without touching a worker;
    - {e telemetry} — at shutdown each worker ships its counter and
      metrics deltas; the coordinator folds them
      ({!Dise_telemetry.Metrics.merge}) with its own and emits one
      merged ["serve_summary"] manifest record with a per-worker
      ["workers"] breakdown
      (doc/schema/serve_summary.schema.json).

    Responses are byte-compatible with {!Server}: a client cannot
    tell [--workers 4] from the single-process server except by
    throughput. See doc/serve-tier.md. *)

val env_var : string
(** ["DISESIM_SERVE_WORKER"] — presence in the environment makes
    {!worker_child_main} take over the process as a worker. *)

(** One fault from a chaos schedule, applied between client requests
    (the [?chaos] hook below). The deterministic schedule file and its
    seeded execution live in [Dise_fuzz.Chaos_sched]; the coordinator
    only executes actions:

    - [Chaos_kill] — SIGKILL the shard's process; [permanent] first
      exhausts its respawn cap, so the crash triggers failover instead
      of a respawn;
    - [Chaos_stall] — queue a [stall] frame: the worker wedges its
      frame loop for [ms] milliseconds (a gray failure: alive, not
      progressing, not ponging);
    - [Chaos_torn] — queue a [chaos_torn] frame: the worker emits the
      first [cut] bytes of a frame and dies mid-write, leaving a torn
      tail on the pipe;
    - [Chaos_drop_ping] — lose the shard's next heartbeat in transit
      (a guaranteed miss);
    - [Chaos_suspect] — mark the shard [Suspect] directly, hedging
      its in-flight requests on the next supervision pass. *)
type chaos_action =
  | Chaos_kill of { shard : int; permanent : bool }
  | Chaos_stall of { shard : int; ms : int }
  | Chaos_torn of { shard : int; cut : int }
  | Chaos_drop_ping of { shard : int }
  | Chaos_suspect of { shard : int }

val worker_child_main : unit -> unit
(** Worker dispatch hook: call {e first} in any binary that may spawn
    workers (the CLI and the test runner do). Returns immediately in
    a normal process; in a spawned worker it configures the cache,
    breaker, and JIT from the spawn spec, replays and reopens its
    journal shard, serves frames from stdin until EOF or a stop
    frame, emits its summary frame, and [_exit]s. *)

val run_channel :
  ?stop:Server.Stop.t ->
  ?manifest:Dise_telemetry.Manifest.t ->
  ?on_spawn:(shard:int -> pid:int -> unit) ->
  ?chaos:(requests:int -> chaos_action list) ->
  ?cache_dir:string ->
  ?jit:bool * int ->
  Serve_config.t ->
  in_channel ->
  out_channel ->
  Server.summary
(** Serve one JSONL stream through the worker tier
    (batch-synchronous, like {!Server.serve_channel}: chunks of
    [queue] lines, responses emitted in input order after each chunk
    drains). Spawns [max 1 cfg.workers] workers on entry and tears
    the tier down (merged summary included) before returning.
    [cache_dir]/[jit] configure the workers' result cache and JIT
    ([None] cache = caching off); [on_spawn] observes every (re)spawn
    — the fault-injection tests use it to aim SIGKILL. [chaos] is
    consulted once per submitted client request with the running
    request count and returns the faults to apply at that point —
    [Dise_fuzz.Chaos_sched.hook] is the schedule-file-driven
    implementation. *)

val write_all : Unix.file_descr -> string -> int -> unit
(** [write_all fd s off] writes [s] from [off] to the end, surviving
    [EINTR] and — on a descriptor someone marked nonblocking — a full
    pipe ([EAGAIN]/[EWOULDBLOCK]: wait for writability, resume at the
    same offset). The frame transport relies on this never tearing a
    length-prefixed frame; exposed so the tests can drive it against
    a deliberately tiny, nonblocking pipe. *)

val run_socket :
  ?stop:Server.Stop.t ->
  ?manifest:Dise_telemetry.Manifest.t ->
  ?on_spawn:(shard:int -> pid:int -> unit) ->
  ?chaos:(requests:int -> chaos_action list) ->
  ?cache_dir:string ->
  ?jit:bool * int ->
  Serve_config.t ->
  path:string ->
  unit ->
  Server.summary
(** The async front end: a non-blocking [select] event loop
    multiplexing the Unix-domain listener at [path], every accepted
    connection, and all worker pipes in one thread. Each connection
    is an independent JSONL stream with in-order responses and a
    per-connection in-flight cap of [queue] (backpressure: the
    coordinator simply stops reading a maxed-out connection).
    Socket-claiming semantics are {!Server.listen_socket}'s. Returns
    after {!Server.Stop.signal}: accepts stop, in-flight work drains
    and flushes, workers are stopped and merged into the summary. *)
