module Json = Dise_telemetry.Json
module Stats = Dise_uarch.Stats
module Diag = Dise_isa.Diag

type opts = { jobs : int; queue : int }

let default_opts () =
  let jobs = Pool.default_jobs () in
  { jobs; queue = 4 * jobs }

type summary = { served : int; errors : int; cache_hits : int }

let stop_flag = Atomic.make false
let request_stop () = Atomic.set stop_flag true
let reset_stop () = Atomic.set stop_flag false
let stopping () = Atomic.get stop_flag

(* One input line, after the sequential parse step. Parse failures
   keep their slot so responses stay in input order. *)
type job =
  | Run of Json.t * Request.t (* echoed id, decoded request *)
  | Bad of Json.t * Diag.t

(* Any defect in a single line — unparseable JSON, deep nesting
   blowing the parser's stack, a decoder bug surfacing as an
   unexpected exception — must stay confined to that line's response
   slot; only I/O errors on the stream itself may escape. *)
let parse_line ~lineno line =
  let bad msg =
    Bad (Json.Null, Diag.Parse { source = "serve"; line = lineno; msg })
  in
  match Json.parse line with
  | exception Json.Parse_error msg -> bad msg
  | exception Stack_overflow -> bad "JSON nesting too deep"
  | doc -> (
    let id = Option.value (Json.member "id" doc) ~default:Json.Null in
    match Request.of_json doc with
    | Ok req -> Run (id, req)
    | Error d -> Bad (id, d)
    | exception e ->
      Bad
        ( id,
          Diag.Parse
            {
              source = "serve";
              line = lineno;
              msg = "malformed request: " ^ Printexc.to_string e;
            } ))

let error_response id d =
  Json.Obj
    [
      ("id", id);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [
            ("kind", Json.String (Diag.category d));
            ("message", Json.String (Diag.to_string d));
          ] );
    ]

let ok_response id req ~cache_hit ~wall_s stats =
  Json.Obj
    [
      ("id", id);
      ("ok", Json.Bool true);
      ("key", Json.String (Request.key req));
      ("cache_hit", Json.Bool cache_hit);
      ("wall_s", Json.Float wall_s);
      ("stats", Stats.to_json stats);
    ]

let run_job = function
  | Bad (id, d) -> (error_response id d, `Error)
  | Run (id, req) -> (
    let t0 = Unix.gettimeofday () in
    match Request.run_ext req with
    | Ok (stats, cache_hit) ->
      let wall_s = Unix.gettimeofday () -. t0 in
      (ok_response id req ~cache_hit ~wall_s stats,
       if cache_hit then `Hit else `Fresh)
    | Error d -> (error_response id d, `Error))

let max_line_bytes = 1 lsl 20

type raw_line = Line of string | Truncated | Eof

(* Bounded replacement for [input_line]: a line longer than
   [max_line_bytes] is drained (so the stream stays synchronized on
   the next newline) and reported as [Truncated] instead of being
   buffered whole — an adversarial multi-gigabyte line must cost one
   error response, not the server's heap. A final line without a
   trailing newline is a normal [Line] (partial last job lines parse
   or fail on their own merits). *)
let read_raw_line ic =
  let buf = Buffer.create 256 in
  let rec drain () =
    match input_char ic with
    | exception End_of_file -> ()
    | '\n' -> ()
    | _ -> drain ()
  in
  let rec go () =
    match input_char ic with
    | exception End_of_file ->
      if Buffer.length buf = 0 then Eof else Line (Buffer.contents buf)
    | '\n' -> Line (Buffer.contents buf)
    | c ->
      if Buffer.length buf >= max_line_bytes then begin
        drain ();
        Truncated
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
  in
  go ()

(* Read up to [n] non-blank lines; [None] on immediate EOF. An
   oversized line takes a job slot with a parse-class error so the
   response stream stays in input order. *)
let read_chunk ic ~lineno n =
  let jobs = ref [] in
  let count = ref 0 in
  let eof = ref false in
  while !count < n && (not !eof) && not (stopping ()) do
    match read_raw_line ic with
    | Eof -> eof := true
    | Line line ->
      incr lineno;
      if String.trim line <> "" then begin
        jobs := parse_line ~lineno:!lineno line :: !jobs;
        incr count
      end
    | Truncated ->
      incr lineno;
      jobs :=
        Bad
          ( Json.Null,
            Diag.Parse
              {
                source = "serve";
                line = !lineno;
                msg =
                  Printf.sprintf "line exceeds %d bytes" max_line_bytes;
              } )
        :: !jobs;
      incr count
  done;
  match List.rev !jobs with [] -> None | l -> Some (Array.of_list l)

let serve_channel ?opts ic oc =
  let { jobs; queue } = match opts with Some o -> o | None -> default_opts () in
  let queue = max 1 queue in
  let lineno = ref 0 in
  let served = ref 0 and errors = ref 0 and hits = ref 0 in
  let rec loop () =
    if not (stopping ()) then
      match read_chunk ic ~lineno queue with
      | None -> ()
      | Some chunk ->
        let responses = Pool.run ~jobs (Array.map (fun j () -> run_job j) chunk) in
        Array.iter
          (fun (resp, outcome) ->
            (match outcome with
            | `Error -> incr errors
            | `Hit -> incr hits
            | `Fresh -> ());
            incr served;
            output_string oc (Json.to_string resp);
            output_char oc '\n')
          responses;
        flush oc;
        if Array.length chunk = queue then loop ()
  in
  loop ();
  { served = !served; errors = !errors; cache_hits = !hits }

let pp_summary ppf s =
  Format.fprintf ppf "served %d job%s (%d error%s, %d cache hit%s)" s.served
    (if s.served = 1 then "" else "s")
    s.errors
    (if s.errors = 1 then "" else "s")
    s.cache_hits
    (if s.cache_hits = 1 then "" else "s")

let serve_socket ?opts ~path () =
  (try if Sys.file_exists path then Unix.unlink path
   with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind sock (Unix.ADDR_UNIX path);
     Unix.listen sock 8
   with Unix.Unix_error (e, _, _) ->
     Unix.close sock;
     raise
       (Cache.Diag_error
          (Diag.Cache
             (Printf.sprintf "cannot listen on %s: %s" path
                (Unix.error_message e)))));
  let rec accept_loop () =
    if not (stopping ()) then begin
      (match Unix.accept sock with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | conn, _ ->
        let ic = Unix.in_channel_of_descr conn in
        let oc = Unix.out_channel_of_descr conn in
        let finish () =
          (* One descriptor under both channels: flush the writer,
             close once, and mark the reader closed without touching
             the (already closed) fd again. *)
          (try flush oc with Sys_error _ -> ());
          (try Unix.close conn with Unix.Unix_error _ -> ());
          close_in_noerr ic
        in
        (match serve_channel ?opts ic oc with
        | s ->
          finish ();
          Format.eprintf "disesim serve: connection done: %a@." pp_summary s
        | exception e ->
          finish ();
          raise e));
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    accept_loop
