module Json = Dise_telemetry.Json
module Manifest = Dise_telemetry.Manifest
module Metrics = Dise_telemetry.Metrics
module Stats = Dise_uarch.Stats
module Diag = Dise_isa.Diag

(* Per-request latency, split at the worker-pickup instant: queue wait
   is admission -> pickup, execute is pickup -> response ready (the
   pool's per-task probe measures it), and serve_request_ns is the
   end-to-end sum. Process-wide like every registry instrument;
   serve_summary reports per-session deltas. *)
let h_queue_wait = Metrics.Histogram.make "serve_queue_wait_ns"
let h_execute = Metrics.Histogram.make "serve_execute_ns"
let h_request = Metrics.Histogram.make "serve_request_ns"

let protocol_version = 1

(* Per-session stop signalling. Each serving loop polls its own flag,
   so a coordinator, its workers, and any in-process test servers can
   coexist in one process without clobbering each other — the old
   process-global [request_stop] made that impossible. *)
module Stop = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let signal t = Atomic.set t true
  let signalled t = Atomic.get t
  let reset t = Atomic.set t false
end

type summary = {
  served : int;
  errors : int;
  cache_hits : int;
  timeouts : int;
  shed : int;
  isolated : int;
}

type session = {
  cfg : Serve_config.t;
  stop : Stop.t;
  journal : Resilience.Journal.t option;
  manifest : Manifest.t option;
}

let session ?stop ?journal ?manifest cfg =
  let stop = match stop with Some s -> s | None -> Stop.create () in
  { cfg; stop; journal; manifest }

let config s = s.cfg
let stop_signal s = s.stop
let stop s = Stop.signal s.stop

(* One input line, after the sequential parse step. Parse failures
   keep their slot ([req = Error _]) so responses stay in input
   order. [version] is the wire-envelope version the line spoke (0 =
   unversioned legacy, 1 = current); [tenant] feeds admission
   quotas. *)
type parsed = {
  id : Json.t;
  version : int;
  tenant : string option;
  req : (Request.t, Diag.t) result;
}

(* Any defect in a single line — unparseable JSON, deep nesting
   blowing the parser's stack, a decoder bug surfacing as an
   unexpected exception — must stay confined to that line's response
   slot; only I/O errors on the stream itself may escape. *)
let parse_job ~lineno line =
  let bad ?(id = Json.Null) ?(version = 0) ?tenant msg =
    {
      id;
      version;
      tenant;
      req = Error (Diag.Parse { source = "serve"; line = lineno; msg });
    }
  in
  match Json.parse line with
  | exception Json.Parse_error msg -> bad msg
  | exception Stack_overflow -> bad "JSON nesting too deep"
  | doc -> (
    let id = Option.value (Json.member "id" doc) ~default:Json.Null in
    match Json.member "v" doc with
    | Some v when v <> Json.Int protocol_version ->
      bad ~id
        (Printf.sprintf
           "unsupported protocol version %s (this server speaks v%d; \
            unversioned lines are accepted as v0)"
           (Json.to_string v) protocol_version)
    | v_member -> (
      let version = if v_member = None then 0 else protocol_version in
      match Json.member "tenant" doc with
      | Some (Json.String _ | Json.Null) | None -> (
        let tenant =
          match Json.member "tenant" doc with
          | Some (Json.String t) -> Some t
          | _ -> None
        in
        match Request.of_json doc with
        | Ok req -> { id; version; tenant; req = Ok req }
        | Error d -> { id; version; tenant; req = Error d }
        | exception e ->
          bad ~id ~version ?tenant
            ("malformed request: " ^ Printexc.to_string e))
      | Some _ -> bad ~id ~version "tenant must be a string"))

let error_response id d =
  Json.Obj
    [
      ("v", Json.Int protocol_version);
      ("id", id);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [
            ("kind", Json.String (Diag.category d));
            ("message", Json.String (Diag.to_string d));
          ] );
    ]

let ok_response id req ~cache_hit ~wall_s stats =
  Json.Obj
    [
      ("v", Json.Int protocol_version);
      ("id", id);
      ("ok", Json.Bool true);
      ("key", Json.String (Request.key req));
      ("cache_hit", Json.Bool cache_hit);
      ("wall_s", Json.Float wall_s);
      ("stats", Stats.to_json stats);
    ]

(* The per-job budget starts when a worker picks the job up, and the
   chaos stall (if any) burns it — that is exactly how the fault
   matrix forces a deterministic timeout without simulating a huge
   workload. A chaos [raise] escapes to the pool on purpose: it
   exercises the [internal] isolation path. *)
let run_parsed ~chaos ~deadline_ms ~enqueued_at p =
  match p.req with
  | Error d -> (error_response p.id d, `Error (Diag.category d))
  | Ok req -> (
    let t0 = Unix.gettimeofday () in
    Metrics.Histogram.observe_s h_queue_wait (t0 -. enqueued_at);
    let finish resp tag =
      Metrics.Histogram.observe_s h_request (Unix.gettimeofday () -. enqueued_at);
      (resp, tag)
    in
    let deadline =
      Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.)) deadline_ms
    in
    Resilience.Chaos.apply chaos ~id:p.id;
    match Request.run_ext ?deadline req with
    | Ok (stats, cache_hit) ->
      let wall_s = Unix.gettimeofday () -. t0 in
      finish
        (ok_response p.id req ~cache_hit ~wall_s stats)
        (if cache_hit then `Hit else `Fresh)
    | Error d -> finish (error_response p.id d) (`Error (Diag.category d)))

(* A job the pool isolated: an exception [run_ext] does not recognize
   (chaos injection, a plain bug) confined to its slot. The response
   says [internal]; the backtrace goes to stderr, where operators
   look for bugs — it must not leak into the protocol. *)
let isolated_response id e bt =
  Format.eprintf "disesim serve: job isolated after unexpected exception: %s@.%s@."
    (Printexc.to_string e)
    (Printexc.raw_backtrace_to_string bt);
  Resilience.Counters.incr Resilience.Counters.isolated;
  ( error_response id
      (Diag.Internal
         ("job failed with unexpected exception: " ^ Printexc.to_string e)),
    `Error "internal" )

let max_line_bytes = 1 lsl 20

type raw_line = Line of string | Truncated | Eof

(* Bounded replacement for [input_line]: a line longer than
   [max_line_bytes] is drained (so the stream stays synchronized on
   the next newline) and reported as [Truncated] instead of being
   buffered whole — an adversarial multi-gigabyte line must cost one
   error response, not the server's heap. A final line without a
   trailing newline is a normal [Line] (partial last job lines parse
   or fail on their own merits). *)
let read_raw_line ic =
  let buf = Buffer.create 256 in
  let rec drain () =
    match input_char ic with
    | exception End_of_file -> ()
    | '\n' -> ()
    | _ -> drain ()
  in
  let rec go () =
    match input_char ic with
    | exception End_of_file ->
      if Buffer.length buf = 0 then Eof else Line (Buffer.contents buf)
    | '\n' -> Line (Buffer.contents buf)
    | c ->
      if Buffer.length buf >= max_line_bytes then begin
        drain ();
        Truncated
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
  in
  go ()

let oversized_line ~lineno =
  {
    id = Json.Null;
    version = 0;
    tenant = None;
    req =
      Error
        (Diag.Parse
           {
             source = "serve";
             line = lineno;
             msg =
               Printf.sprintf "input line %d exceeds %d bytes" lineno
                 max_line_bytes;
           });
  }

(* Read up to [n] non-blank lines; [None] on immediate EOF. An
   oversized line takes a job slot with a parse-class error so the
   response stream stays in input order. *)
let read_chunk ~stop ic ~lineno n =
  let jobs = ref [] in
  let count = ref 0 in
  let eof = ref false in
  while !count < n && (not !eof) && not (Stop.signalled stop) do
    match read_raw_line ic with
    | Eof -> eof := true
    | Line line ->
      incr lineno;
      if String.trim line <> "" then begin
        jobs := parse_job ~lineno:!lineno line :: !jobs;
        incr count
      end
    | Truncated ->
      incr lineno;
      jobs := oversized_line ~lineno:!lineno :: !jobs;
      incr count
  done;
  match List.rev !jobs with [] -> None | l -> Some (Array.of_list l)

let overload p d = { p with req = Error (Diag.Overloaded d) }

(* Work-budget admission. The unit is the job's [dyn_target] (its
   dynamic-instruction count — the one size signal a request carries
   that is proportional to simulation cost); a chunk admits jobs in
   order while their cumulative work stays within [shed_above], and
   answers the rest [overloaded] without executing them. The first
   runnable job is always admitted, however large: shedding must
   bound latency, not deadlock a heavy-but-legitimate job. *)
let shed_chunk ~shed_above chunk =
  match shed_above with
  | None -> chunk
  | Some hw ->
    let admitted = ref 0 in
    Array.map
      (fun p ->
        match p.req with
        | Error _ -> p
        | Ok req ->
          let w = req.Request.dyn_target in
          if !admitted > 0 && !admitted + w > hw then
            overload p
              (Printf.sprintf
                 "load shed: job of %d dynamic instructions would push \
                  the in-flight work past the high-water mark of %d"
                 w hw)
          else begin
            admitted := !admitted + w;
            p
          end)
      chunk

(* Per-tenant admission quota: within one in-flight window (a chunk
   here; the coordinator applies the same rule over its live event
   loop), each tenant may hold at most [tenant_quota] runnable jobs;
   the rest are answered [overloaded] in input order. The tenant is
   the envelope's ["tenant"] member; lines without one share the
   anonymous tenant. *)
let quota_chunk ~tenant_quota chunk =
  match tenant_quota with
  | None -> chunk
  | Some quota ->
    let quota = max 1 quota in
    let inflight = Hashtbl.create 8 in
    Array.map
      (fun p ->
        match p.req with
        | Error _ -> p
        | Ok _ ->
          let tenant = Option.value p.tenant ~default:"" in
          let n =
            Option.value (Hashtbl.find_opt inflight tenant) ~default:0
          in
          if n >= quota then
            overload p
              (Printf.sprintf
                 "tenant quota: %s already has %d jobs in flight (quota %d)"
                 (if tenant = "" then "the anonymous tenant"
                  else Printf.sprintf "tenant %S" tenant)
                 n quota)
          else begin
            Hashtbl.replace inflight tenant (n + 1);
            p
          end)
      chunk

(* Full admission pipeline over one in-flight window, in policy
   order: per-tenant fairness first, then the global work budget over
   the survivors. Shared with the coordinator front end so a request
   is shed identically whether the tier has 0 workers or 16. *)
let admit cfg chunk =
  shed_chunk ~shed_above:cfg.Serve_config.shed_above
    (quota_chunk ~tenant_quota:cfg.Serve_config.tenant_quota chunk)

(* Replay journal format: the request document with the client id
   merged back in, so [Request.of_json] decodes it directly. *)
let journal_doc id req =
  match Request.to_json req with
  | Json.Obj fields -> Json.Obj (("id", id) :: fields)
  | j -> j

(* Everything in the summary is a per-session delta: the counters and
   the metrics registry are process-wide (they survive across
   connections), so each stream subtracts the snapshot it took before
   reading its first chunk. *)
let summary_fields ~counters0 ~metrics0 s =
  let counter_deltas =
    List.map
      (fun (k, v) ->
        let v0 = Option.value (List.assoc_opt k counters0) ~default:0 in
        (k, Json.Int (v - v0)))
      (Resilience.Counters.snapshot ())
  in
  let metrics_delta = Metrics.delta ~since:metrics0 (Metrics.snapshot ()) in
  [
    ("record", Json.String "serve_summary");
    ("served", Json.Int s.served);
    ("errors", Json.Int s.errors);
    ("cache_hits", Json.Int s.cache_hits);
    ("timeouts", Json.Int s.timeouts);
    ("shed", Json.Int s.shed);
    ("isolated", Json.Int s.isolated);
    ("counters", Json.Obj counter_deltas);
    ("metrics", Metrics.to_json metrics_delta);
  ]
  @
  match Request.cache_breaker () with
  | None -> []
  | Some b -> [ ("breaker", Resilience.Breaker.to_json b) ]

let emit_summary ~counters0 ~metrics0 m s =
  Manifest.emit m (summary_fields ~counters0 ~metrics0 s)

let serve_channel sess ic oc =
  let o = sess.cfg in
  let chaos = Resilience.Chaos.of_env () in
  let lineno = ref 0 in
  let served = ref 0 and errors = ref 0 and hits = ref 0 in
  let timeouts = ref 0 and shed = ref 0 and isolated = ref 0 in
  (* Session baselines for per-stream deltas, taken before the first
     chunk is read. *)
  let counters0 = Resilience.Counters.snapshot () in
  let metrics0 = Metrics.snapshot () in
  let last_metrics_emit = ref (Unix.gettimeofday ()) in
  (* Periodic observability heartbeat: at most one "metrics_snapshot"
     manifest record per [metrics_every_s], carrying the cumulative
     session delta (chunk-granular — the loop only runs between
     batches). *)
  let maybe_emit_metrics () =
    match sess.manifest with
    | None -> ()
    | Some m ->
      let now = Unix.gettimeofday () in
      if now -. !last_metrics_emit >= o.Serve_config.metrics_every_s then begin
        last_metrics_emit := now;
        Manifest.emit m
          [
            ("record", Json.String "metrics_snapshot");
            ( "metrics",
              Metrics.to_json (Metrics.delta ~since:metrics0 (Metrics.snapshot ()))
            );
          ]
      end
  in
  let rec loop () =
    if not (Stop.signalled sess.stop) then
      match read_chunk ~stop:sess.stop ic ~lineno o.Serve_config.queue with
      | None -> ()
      | Some chunk ->
        let enqueued_at = Unix.gettimeofday () in
        let chunk = admit o chunk in
        (* Durability point: every admitted job is journalled — and
           the journal synced — before any of them executes, so a
           crash mid-batch can lose work but never forget it. *)
        let seqs =
          match sess.journal with
          | None -> [||]
          | Some j ->
            let seqs =
              Array.map
                (fun p ->
                  match p.req with
                  | Ok req ->
                    Some (Resilience.Journal.append_begin j (journal_doc p.id req))
                  | Error _ -> None)
                chunk
            in
            Resilience.Journal.sync j;
            seqs
        in
        let outcomes =
          Pool.run_outcomes ~jobs:o.Serve_config.jobs
            ~probe:(fun _i ~domain:_ dur ->
              Metrics.Histogram.observe_s h_execute dur)
            (Array.map
               (fun p () ->
                 run_parsed ~chaos ~deadline_ms:o.Serve_config.deadline_ms
                   ~enqueued_at p)
               chunk)
        in
        Array.iteri
          (fun i outcome ->
            let resp, tag =
              match outcome with
              | Ok r -> r
              | Error (e, bt) -> isolated_response chunk.(i).id e bt
            in
            (match tag with
            | `Error cat -> (
              incr errors;
              match cat with
              | "timeout" ->
                incr timeouts;
                Resilience.Counters.incr Resilience.Counters.timeouts
              | "overloaded" ->
                incr shed;
                Resilience.Counters.incr Resilience.Counters.shed
              | "internal" -> incr isolated
              | _ -> ())
            | `Hit -> incr hits
            | `Fresh -> ());
            incr served;
            output_string oc (Json.to_string resp);
            output_char oc '\n')
          outcomes;
        flush oc;
        (match sess.journal with
        | None -> ()
        | Some j ->
          Array.iter
            (function
              | Some seq -> Resilience.Journal.mark_done j seq | None -> ())
            seqs;
          Resilience.Journal.sync j);
        maybe_emit_metrics ();
        if Array.length chunk = o.Serve_config.queue then loop ()
  in
  loop ();
  let s =
    {
      served = !served;
      errors = !errors;
      cache_hits = !hits;
      timeouts = !timeouts;
      shed = !shed;
      isolated = !isolated;
    }
  in
  (match sess.manifest with
  | None -> ()
  | Some m -> emit_summary ~counters0 ~metrics0 m s);
  s

let pp_summary ppf s =
  Format.fprintf ppf "served %d job%s (%d error%s, %d cache hit%s)" s.served
    (if s.served = 1 then "" else "s")
    s.errors
    (if s.errors = 1 then "" else "s")
    s.cache_hits
    (if s.cache_hits = 1 then "" else "s");
  if s.timeouts > 0 || s.shed > 0 || s.isolated > 0 then
    Format.fprintf ppf " [%d timed out, %d shed, %d isolated]" s.timeouts
      s.shed s.isolated

(* Replay begun-but-unfinished journal entries after a crash. Each
   entry re-enters through [Request.run_ext], so a completed replay
   lands in the content-addressed result cache under the same key the
   original would have used — replaying is idempotent, and a job that
   did finish before the crash is a pure cache hit. Failures
   (including a corrupt entry that no longer decodes) are logged and
   skipped; replay must never prevent the server from starting. *)
let replay_journal ?jobs ~dir () =
  match Resilience.Journal.pending ~dir with
  | [] -> 0
  | pending ->
    let tasks =
      List.map
        (fun (seq, doc) () ->
          match Request.of_json doc with
          | Ok req -> ignore (Request.run_ext req)
          | Error d ->
            Format.eprintf
              "disesim serve: journal entry %d is not replayable: %s@." seq
              (Diag.to_string d))
        pending
    in
    let outcomes = Pool.run_outcomes ?jobs (Array.of_list tasks) in
    Array.iter
      (function
        | Error (e, _) ->
          Format.eprintf "disesim serve: journal replay failed (isolated): %s@."
            (Printexc.to_string e)
        | Ok () -> ())
      outcomes;
    let n = List.length pending in
    Resilience.Counters.add Resilience.Counters.journal_replayed n;
    n

(* Does a live server answer on [path]? Distinguishes "another
   instance is running" (refuse to start — stealing its socket would
   silently split the service) from a stale socket left by a crash
   (safe to remove). *)
let socket_live path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> false
  | probe ->
    Fun.protect
      ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error _ -> false)

(* Claim [path] for a fresh listener: refuse if a live server answers,
   reclaim a stale file, bind and listen. Shared with the coordinator
   front end. *)
let listen_socket ~path =
  if Sys.file_exists path then
    if socket_live path then
      raise
        (Cache.Diag_error
           (Diag.Overloaded
              (Printf.sprintf
                 "socket %s is in use by a live server; refusing to start \
                  (stop the other instance or pick another path)"
                 path)))
    else (
      (* Stale socket from a crashed server: safe to reclaim. *)
      try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind sock (Unix.ADDR_UNIX path);
     Unix.listen sock 64
   with Unix.Unix_error (e, _, _) ->
     Unix.close sock;
     raise
       (Cache.Diag_error
          (Diag.Cache
             (Printf.sprintf "cannot listen on %s: %s" path
                (Unix.error_message e)))));
  sock

(* A client that hangs up mid-response must surface as [Sys_error] on
   this connection's channel — not as a process-killing SIGPIPE. *)
let with_sigpipe_ignored f =
  let prev =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      match prev with
      | Some b -> ( try Sys.set_signal Sys.sigpipe b with _ -> ())
      | None -> ())
    f

let serve_socket sess ~path () =
  with_sigpipe_ignored (fun () ->
      let sock = listen_socket ~path in
      let rec accept_loop () =
        if not (Stop.signalled sess.stop) then begin
          (match Unix.accept sock with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (e, _, _) ->
            (* Transient accept failures (ECONNABORTED, EMFILE under fd
               pressure): log, back off briefly, keep listening. *)
            if not (Stop.signalled sess.stop) then begin
              Format.eprintf "disesim serve: accept failed: %s@."
                (Unix.error_message e);
              Unix.sleepf 0.05
            end
          | conn, _ ->
            let ic = Unix.in_channel_of_descr conn in
            let oc = Unix.out_channel_of_descr conn in
            let finish () =
              (* One descriptor under both channels: flush the writer,
                 close once, and mark the reader closed without touching
                 the (already closed) fd again. *)
              (try flush oc with Sys_error _ -> ());
              (try Unix.close conn with Unix.Unix_error _ -> ());
              close_in_noerr ic
            in
            (match serve_channel sess ic oc with
            | s ->
              finish ();
              Format.eprintf "disesim serve: connection done: %a@." pp_summary s
            | exception e ->
              (* Connection-level containment: a stream that dies (client
                 reset, I/O error, even a server bug) costs one
                 connection, never the listener. *)
              finish ();
              Resilience.Counters.incr Resilience.Counters.conn_failures;
              Format.eprintf "disesim serve: connection failed (isolated): %s@."
                (Printexc.to_string e)));
          accept_loop ()
        end
      in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close sock with Unix.Unix_error _ -> ());
          try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
        accept_loop)
