module Machine = Dise_machine.Machine
module Engine = Dise_core.Engine
module Prodset = Dise_core.Prodset
module Controller = Dise_core.Controller
module Config = Dise_uarch.Config
module Pipeline = Dise_uarch.Pipeline
module Stats = Dise_uarch.Stats
module Suite = Dise_workload.Suite
module Profile = Dise_workload.Profile
module Codegen = Dise_workload.Codegen
module Mfi = Dise_acf.Mfi
module Rewrite = Dise_acf.Rewrite
module Compress = Dise_acf.Compress
module Json = Dise_telemetry.Json
module Diag = Dise_isa.Diag

type mfi_compose = [ `None | `Composed ]

type acf =
  | Baseline
  | Mfi_dise of Mfi.variant
  | Mfi_rewrite of Rewrite.variant
  | Decompress of {
      scheme : Compress.scheme;
      mfi : mfi_compose;
      rewritten : bool;
    }
  | Synth of { scheme : Compress.scheme; seeds : Compress.seed list }

type t = {
  bench : string;
  dyn_target : int;
  machine : Config.t;
  controller : Controller.config option;
  acf : acf;
  jit : bool;
  jit_threshold : int;
}

(* Process-wide default for requests that do not spell out a [jit]
   member (and for [v] calls without the optional arguments): the CLI
   sets it from --no-jit/--jit-threshold, so `disesim serve --no-jit`
   turns the JIT off for every request that leaves the choice open
   while explicit requests still win. *)
let default_jit = ref (true, Machine.default_jit_threshold)
let set_default_jit ~enabled ~threshold = default_jit := (enabled, max 1 threshold)

let v ?dyn_target:(dyn_target = 300_000) ?(machine = Config.default) ?controller
    ?(acf = Baseline) ?jit ?jit_threshold bench =
  let d_enabled, d_threshold = !default_jit in
  let jit = Option.value jit ~default:d_enabled in
  let jit_threshold = Option.value jit_threshold ~default:d_threshold in
  { bench; dyn_target; machine; controller; acf; jit; jit_threshold }

(* --- canonical JSON encoding ------------------------------------------- *)

let mfi_variant_name = function Mfi.Dise3 -> "dise3" | Mfi.Dise4 -> "dise4"

let rw_variant_name = function
  | Rewrite.Segment_matching -> "segment_matching"
  | Rewrite.Sandboxing -> "sandboxing"

let compose_name = function `None -> "none" | `Composed -> "composed"

let scheme_to_json (s : Compress.scheme) =
  Json.Obj
    [
      ("name", Json.String s.Compress.name);
      ("codeword_bytes", Json.Int s.Compress.codeword_bytes);
      ("min_len", Json.Int s.Compress.min_len);
      ("max_len", Json.Int s.Compress.max_len);
      ("max_params", Json.Int s.Compress.max_params);
      ("dict_entry_bytes", Json.Int s.Compress.dict_entry_bytes);
      ("compress_branches", Json.Bool s.Compress.compress_branches);
      ("max_entries", Json.Int s.Compress.max_entries);
    ]

let controller_to_json (c : Controller.config) =
  Json.Obj
    [
      ("pt_entries", Json.Int c.Controller.pt_entries);
      ("pt_perfect", Json.Bool c.Controller.pt_perfect);
      ("rt_entries", Json.Int c.Controller.rt_entries);
      ("rt_assoc", Json.Int c.Controller.rt_assoc);
      ("rt_entries_per_block", Json.Int c.Controller.rt_entries_per_block);
      ("rt_perfect", Json.Bool c.Controller.rt_perfect);
      ("miss_penalty", Json.Int c.Controller.miss_penalty);
      ("compose_penalty", Json.Int c.Controller.compose_penalty);
      ("composing", Json.Bool c.Controller.composing);
    ]

let acf_to_json = function
  | Baseline -> Json.Obj [ ("kind", Json.String "baseline") ]
  | Mfi_dise variant ->
    Json.Obj
      [
        ("kind", Json.String "mfi_dise");
        ("variant", Json.String (mfi_variant_name variant));
      ]
  | Mfi_rewrite variant ->
    Json.Obj
      [
        ("kind", Json.String "mfi_rewrite");
        ("variant", Json.String (rw_variant_name variant));
      ]
  | Decompress { scheme; mfi; rewritten } ->
    Json.Obj
      [
        ("kind", Json.String "decompress");
        ("scheme", scheme_to_json scheme);
        ("mfi", Json.String (compose_name mfi));
        ("rewritten", Json.Bool rewritten);
      ]
  | Synth { scheme; seeds } ->
    (* The seed list is part of the canonical form, so every candidate
       dictionary the synthesis search scores caches under its own
       key — and never collides with a greedy "decompress" run. *)
    Json.Obj
      [
        ("kind", Json.String "synth");
        ("scheme", scheme_to_json scheme);
        ( "seeds",
          Json.List
            (List.map
               (fun (s : Compress.seed) ->
                 Json.List
                   [
                     Json.Int s.Compress.s_blk;
                     Json.Int s.Compress.s_start;
                     Json.Int s.Compress.s_len;
                   ])
               seeds) );
      ]

let to_json t =
  Json.Obj
    [
      ("bench", Json.String t.bench);
      ("dyn_target", Json.Int t.dyn_target);
      ("machine", Config.to_json t.machine);
      ( "controller",
        match t.controller with
        | None -> Json.Null
        | Some c -> controller_to_json c );
      ("acf", acf_to_json t.acf);
      (* Always present in the canonical form: a JIT-off run and a
         JIT-on run get distinct cache/memo keys (the timing model is
         identical by construction — the fuzz oracle proves it — but
         the jit counters inside the cached stats differ). *)
      ( "jit",
        Json.Obj
          [
            ("enabled", Json.Bool t.jit);
            ("threshold", Json.Int t.jit_threshold);
          ] );
    ]

let canonical t = Json.to_string (to_json t)
let key t = Cache.key (canonical t)

(* --- decoding ----------------------------------------------------------- *)

let parse_error msg = Error (Diag.Parse { source = "request"; line = 0; msg })
let ( let* ) = Result.bind

let lift what = function
  | Ok v -> Ok v
  | Error msg -> parse_error (what ^ ": " ^ msg)

let int_field ctx j name =
  match Json.member name j with
  | Some (Json.Int v) -> Ok v
  | Some _ -> parse_error (Printf.sprintf "%s.%s: expected integer" ctx name)
  | None -> parse_error (Printf.sprintf "%s.%s: missing" ctx name)

let bool_field ctx j name =
  match Json.member name j with
  | Some (Json.Bool v) -> Ok v
  | _ -> parse_error (Printf.sprintf "%s.%s: expected boolean" ctx name)

let string_field ctx j name =
  match Json.member name j with
  | Some (Json.String v) -> Ok v
  | _ -> parse_error (Printf.sprintf "%s.%s: expected string" ctx name)

let scheme_of_json j =
  let* name = string_field "scheme" j "name" in
  let* codeword_bytes = int_field "scheme" j "codeword_bytes" in
  let* min_len = int_field "scheme" j "min_len" in
  let* max_len = int_field "scheme" j "max_len" in
  let* max_params = int_field "scheme" j "max_params" in
  let* dict_entry_bytes = int_field "scheme" j "dict_entry_bytes" in
  let* compress_branches = bool_field "scheme" j "compress_branches" in
  let* max_entries = int_field "scheme" j "max_entries" in
  Ok
    {
      Compress.name;
      codeword_bytes;
      min_len;
      max_len;
      max_params;
      dict_entry_bytes;
      compress_branches;
      max_entries;
    }

let controller_of_json j =
  let* pt_entries = int_field "controller" j "pt_entries" in
  let* pt_perfect = bool_field "controller" j "pt_perfect" in
  let* rt_entries = int_field "controller" j "rt_entries" in
  let* rt_assoc = int_field "controller" j "rt_assoc" in
  let* rt_entries_per_block = int_field "controller" j "rt_entries_per_block" in
  let* rt_perfect = bool_field "controller" j "rt_perfect" in
  let* miss_penalty = int_field "controller" j "miss_penalty" in
  let* compose_penalty = int_field "controller" j "compose_penalty" in
  let* composing = bool_field "controller" j "composing" in
  Ok
    {
      Controller.pt_entries;
      pt_perfect;
      rt_entries;
      rt_assoc;
      rt_entries_per_block;
      rt_perfect;
      miss_penalty;
      compose_penalty;
      composing;
    }

let acf_of_json j =
  let* kind = string_field "acf" j "kind" in
  match kind with
  | "baseline" -> Ok Baseline
  | "mfi_dise" -> (
    let* variant = string_field "acf" j "variant" in
    match variant with
    | "dise3" -> Ok (Mfi_dise Mfi.Dise3)
    | "dise4" -> Ok (Mfi_dise Mfi.Dise4)
    | v -> parse_error (Printf.sprintf "acf.variant: unknown %S" v))
  | "mfi_rewrite" -> (
    let* variant = string_field "acf" j "variant" in
    match variant with
    | "segment_matching" -> Ok (Mfi_rewrite Rewrite.Segment_matching)
    | "sandboxing" -> Ok (Mfi_rewrite Rewrite.Sandboxing)
    | v -> parse_error (Printf.sprintf "acf.variant: unknown %S" v))
  | "decompress" ->
    let* scheme =
      match Json.member "scheme" j with
      | Some s -> scheme_of_json s
      | None -> parse_error "acf.scheme: missing"
    in
    let* mfi =
      match Json.member "mfi" j with
      | Some (Json.String "none") | None -> Ok `None
      | Some (Json.String "composed") -> Ok `Composed
      | Some (Json.String v) ->
        parse_error (Printf.sprintf "acf.mfi: unknown %S" v)
      | Some _ -> parse_error "acf.mfi: expected string"
    in
    let* rewritten =
      match Json.member "rewritten" j with
      | Some (Json.Bool b) -> Ok b
      | None -> Ok false
      | Some _ -> parse_error "acf.rewritten: expected boolean"
    in
    Ok (Decompress { scheme; mfi; rewritten })
  | "synth" ->
    let* scheme =
      match Json.member "scheme" j with
      | Some s -> scheme_of_json s
      | None -> parse_error "acf.scheme: missing"
    in
    let* seeds =
      match Json.member "seeds" j with
      | Some (Json.List items) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.List [ Json.Int b; Json.Int s; Json.Int l ] :: rest ->
            go ({ Compress.s_blk = b; s_start = s; s_len = l } :: acc) rest
          | _ :: _ ->
            parse_error "acf.seeds: expected [blk, start, len] triples"
        in
        go [] items
      | Some _ -> parse_error "acf.seeds: expected array"
      | None -> parse_error "acf.seeds: missing"
    in
    Ok (Synth { scheme; seeds })
  | k -> parse_error (Printf.sprintf "acf.kind: unknown %S" k)

let of_json j =
  match j with
  | Json.Obj _ ->
    let* bench = string_field "request" j "bench" in
    let* () =
      match Profile.find bench with
      | Some _ -> Ok ()
      | None -> Error (Diag.Invalid (Printf.sprintf "unknown benchmark %S" bench))
    in
    let* dyn_target = int_field "request" j "dyn_target" in
    let* () =
      if dyn_target > 0 then Ok ()
      else parse_error "request.dyn_target: must be positive"
    in
    let* machine =
      match Json.member "machine" j with
      | Some m -> lift "machine" (Config.of_json m)
      | None -> Ok Config.default
    in
    let* controller =
      match Json.member "controller" j with
      | Some Json.Null | None -> Ok None
      | Some c ->
        let* c = controller_of_json c in
        Ok (Some c)
    in
    let* acf =
      match Json.member "acf" j with
      | Some a -> acf_of_json a
      | None -> Ok Baseline
    in
    let* jit, jit_threshold =
      match Json.member "jit" j with
      | None -> Ok !default_jit
      | Some jj ->
        let* enabled = bool_field "jit" jj "enabled" in
        let* threshold = int_field "jit" jj "threshold" in
        if threshold < 1 then parse_error "jit.threshold: must be >= 1"
        else Ok (enabled, threshold)
    in
    Ok { bench; dyn_target; machine; controller; acf; jit; jit_threshold }
  | _ -> parse_error "request: expected object"

(* --- cross-cell memo tables --------------------------------------------- *)

(* Shared by worker domains when cells run in parallel (see {!Pool});
   a mutex guards every table access. A key is claimed as [Pending]
   before its (expensive — the compressor, or a full baseline
   simulation) computation runs outside the lock; concurrent
   requesters for the same key block on the condition instead of
   duplicating the work, and every caller shares the one
   physically-identical value, exactly as the serial path would
   produce. Nested memoized computations (compression of a rewritten
   binary memoizes the rewrite) are safe: the dependency order is
   acyclic, so a waiter never blocks its own claimant. *)
let cache_mutex = Mutex.create ()
let cache_cond = Condition.create ()

type 'v slot = Pending | Ready of 'v

let with_cache_lock f =
  Mutex.lock cache_mutex;
  match f () with
  | v ->
    Mutex.unlock cache_mutex;
    v
  | exception e ->
    Mutex.unlock cache_mutex;
    raise e

let memoize table key compute =
  Mutex.lock cache_mutex;
  let rec claim () =
    match Hashtbl.find_opt table key with
    | Some (Ready v) ->
      Mutex.unlock cache_mutex;
      `Hit v
    | Some Pending ->
      Condition.wait cache_cond cache_mutex;
      claim ()
    | None ->
      Hashtbl.replace table key Pending;
      Mutex.unlock cache_mutex;
      `Compute
  in
  match claim () with
  | `Hit v -> v
  | `Compute -> (
    match compute () with
    | v ->
      with_cache_lock (fun () ->
          Hashtbl.replace table key (Ready v);
          Condition.broadcast cache_cond);
      v
    | exception e ->
      (* Drop the claim so a later caller can retry. *)
      with_cache_lock (fun () ->
          Hashtbl.remove table key;
          Condition.broadcast cache_cond);
      raise e)

(* Many figure cells normalize against the same ACF-free run (every
   series of a panel divides by the same per-benchmark baseline), so
   baseline statistics are memoized in memory by canonical request;
   baseline runs are deterministic, so sharing the Stats.t record
   cannot change any figure value. *)
let baseline_memo : (string, Stats.t slot) Hashtbl.t = Hashtbl.create 64
let rewritten_memo : (string * int, Dise_isa.Program.t slot) Hashtbl.t =
  Hashtbl.create 16
let compress_memo : (string, Compress.result slot) Hashtbl.t =
  Hashtbl.create 64

let clear_memory () =
  with_cache_lock (fun () ->
      Hashtbl.reset baseline_memo;
      Hashtbl.reset rewritten_memo;
      Hashtbl.reset compress_memo)

(* --- disk cache wiring -------------------------------------------------- *)

let disk : Cache.t option ref = ref None
let set_disk_cache c = disk := c
let disk_cache () = !disk
let clear_disk () = match !disk with None -> 0 | Some c -> Cache.clear c

(* Optional circuit breaker over the disk cache, installed by
   [disesim serve --breaker]. Reads are skipped outright while the
   breaker is not closed; stores go through [Breaker.allow] so the
   half-open probe discipline applies. Without a breaker the store
   path keeps its historical contract (a persistent I/O failure
   raises [Cache.Diag_error]); with one, exhausted stores degrade to
   counted drops so a sick cache cannot fail jobs whose statistics
   already exist. *)
let breaker : Resilience.Breaker.t option ref = ref None
let set_cache_breaker b = breaker := b
let cache_breaker () = !breaker

(* Domain-local hit/miss counters: a worker snapshots them around one
   cell to get a race-free per-cell delta (the harness emits the
   deltas into run manifests). *)
let counters_key : (int ref * int ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref 0, ref 0))

let note_hit () = incr (fst (Domain.DLS.get counters_key))
let note_miss () = incr (snd (Domain.DLS.get counters_key))

let cache_counters () =
  let h, m = Domain.DLS.get counters_key in
  (!h, !m)

(* Lookups route through the envelope checks of {!Cache.find}; a
   payload that decodes wrong despite a valid envelope (a schema
   change without a version bump) is dropped like any other corrupt
   entry and recomputed. *)
let disk_find decode ~key:k =
  match !disk with
  | None -> None
  | Some _
    when match !breaker with
         | Some b -> Resilience.Breaker.blocked b
         | None -> false ->
    (* Degraded mode: the cache is suspect, serve without it. The read
       never happens, so neither counter moves. *)
    None
  | Some c -> (
    match Cache.find c ~key:k with
    | None ->
      note_miss ();
      None
    | Some payload -> (
      match decode payload with
      | Ok v ->
        note_hit ();
        Some v
      | Error _ ->
        note_miss ();
        Cache.invalidate c ~key:k;
        None))

(* Worth one more try before giving up on a store: the failure modes
   are all environmental (ENOSPC races, NFS hiccups, a concurrent
   [clear]), never a function of the payload. *)
let transient_exn = function
  | Cache.Diag_error _ | Unix.Unix_error _ | Sys_error _ -> true
  | _ -> false

let disk_store ~key:k ~request payload =
  match !disk with
  | None -> ()
  | Some c -> (
    let store () =
      Resilience.with_retries ~transient:transient_exn (fun () ->
          Cache.store c ~key:k ~request ~payload)
    in
    match !breaker with
    | None -> store ()
    | Some b ->
      if Resilience.Breaker.allow b then (
        match store () with
        | () -> Resilience.Breaker.success b
        | exception e when transient_exn e ->
          Resilience.Breaker.failure b;
          Resilience.Counters.incr Resilience.Counters.store_drops)
      else Resilience.Counters.incr Resilience.Counters.store_drops)

(* --- simulation --------------------------------------------------------- *)

let max_steps = 100_000_000

let run_machine t ?prodset ?trace ?profile ?poll m =
  let controller =
    match (t.controller, prodset) with
    | Some cfg, Some ps -> Some (Controller.create cfg ps)
    | Some cfg, None -> Some (Controller.create cfg Prodset.empty)
    | None, _ -> None
  in
  let stats =
    Pipeline.run ~max_steps ?controller ?trace ?profile ?poll t.machine m
  in
  (* Aggregate into the process-wide counters the serve summary
     records (per-run values live in the stats themselves). *)
  if stats.Stats.jit_compiles <> 0 then
    Resilience.Counters.add Resilience.Counters.jit_compiles
      stats.Stats.jit_compiles;
  if stats.Stats.jit_hits <> 0 then
    Resilience.Counters.add Resilience.Counters.jit_hits stats.Stats.jit_hits;
  if stats.Stats.jit_invalidations <> 0 then
    Resilience.Counters.add Resilience.Counters.jit_invalidations
      stats.Stats.jit_invalidations;
  stats

let check_clean name m =
  if Machine.exit_code m <> 0 then
    failwith
      (Printf.sprintf "experiment %s: workload trapped (exit %d)" name
         (Machine.exit_code m))

let with_engine t image prodset =
  let engine = Engine.create ~image prodset in
  let m = Machine.create ~expander:(Engine.expander engine) image in
  if t.jit then Engine.attach_jit ~threshold:t.jit_threshold engine m;
  m

(* Expander-free machines (baseline, statically rewritten binaries)
   have no engine whose generation could move, so a detached JIT is
   sound. *)
let plain_machine t image =
  let m = Machine.create image in
  if t.jit then Machine.enable_jit ~threshold:t.jit_threshold m;
  m

let install_mfi m =
  Mfi.install m ~data_seg:Codegen.data_segment_id
    ~code_seg:Codegen.code_segment_id

let derive_entry t =
  match Profile.find t.bench with
  | Some p -> Suite.get ~dyn_target:t.dyn_target p
  | None -> invalid_arg ("unknown benchmark " ^ t.bench)

let rewritten_program (entry : Suite.entry) =
  let key =
    ( entry.Suite.profile.Profile.name,
      Dise_isa.Program.size entry.Suite.gen.Codegen.program )
  in
  memoize rewritten_memo key (fun () ->
      Rewrite.rewrite ~data_seg:Codegen.data_segment_id
        ~code_seg:Codegen.code_segment_id entry.Suite.gen.Codegen.program)

let compress_result ~scheme ?(rewritten = false) (entry : Suite.entry) =
  let key =
    Printf.sprintf "%s/%s/%b/%d" entry.Suite.profile.Profile.name
      scheme.Compress.name rewritten entry.Suite.gen.Codegen.total_insns
  in
  memoize compress_memo key (fun () ->
      let prog =
        if rewritten then rewritten_program entry
        else entry.Suite.gen.Codegen.program
      in
      Compress.compress ~scheme prog)

let simulate ?trace ?profile ?poll t (entry : Suite.entry) =
  match t.acf with
  | Baseline ->
    let m = plain_machine t entry.Suite.image in
    let stats = run_machine t ?trace ?profile ?poll m in
    check_clean "baseline" m;
    stats
  | Mfi_dise variant ->
    let prodset = Mfi.productions_for ~variant entry.Suite.image in
    let m = with_engine t entry.Suite.image prodset in
    install_mfi m;
    let stats = run_machine t ~prodset ?trace ?profile ?poll m in
    check_clean "mfi_dise" m;
    stats
  | Mfi_rewrite variant ->
    let prog =
      match variant with
      | Rewrite.Segment_matching -> rewritten_program entry
      | v ->
        Rewrite.rewrite ~variant:v ~data_seg:Codegen.data_segment_id
          ~code_seg:Codegen.code_segment_id entry.Suite.gen.Codegen.program
    in
    let image = Dise_isa.Program.layout ~base:Codegen.code_base prog in
    let m = plain_machine t image in
    let stats = run_machine t ?trace ?profile ?poll m in
    check_clean "mfi_rewrite" m;
    stats
  | Decompress { scheme; mfi; rewritten } ->
    let result = compress_result ~scheme ~rewritten entry in
    let prodset =
      match mfi with
      | `None -> result.Compress.prodset
      | `Composed -> Dise_acf.Acf_compose.for_compressed result
    in
    let m = with_engine t result.Compress.image prodset in
    (match mfi with `Composed -> install_mfi m | `None -> ());
    let stats = run_machine t ~prodset ?trace ?profile ?poll m in
    check_clean "decompress" m;
    stats
  | Synth { scheme; seeds } ->
    (* Candidate dictionaries are transient (the search scores
       hundreds), so unlike [Decompress] the full result is not
       memoized in memory — the run's statistics still persist in the
       disk cache under the seed-bearing canonical key. *)
    let corpus = Compress.corpus ~scheme entry.Suite.gen.Codegen.program in
    let result = Compress.compress_seeded corpus ~seeds in
    let m = with_engine t result.Compress.image result.Compress.prodset in
    let stats =
      run_machine t ~prodset:result.Compress.prodset ?trace ?profile ?poll m
    in
    check_clean "synth" m;
    stats

(* --- the one run path --------------------------------------------------- *)

(* A deadline is an absolute wall-clock instant; the simulator polls
   it every few thousand events (see [Pipeline.run ?poll]) — OCaml
   domains cannot be cancelled from outside, so budgets have to be
   enforced cooperatively. [max_steps] bounds every simulation, so a
   deadline-free run can never hang; the deadline only bounds how
   long it takes. *)
let poll_of_deadline = function
  | None -> None
  | Some d ->
    Some
      (fun () ->
        if Unix.gettimeofday () > d then raise Resilience.Deadline_exceeded)

let run_cached ?entry ?deadline t =
  let canon = canonical t in
  let k = Cache.key canon in
  let fresh = ref false in
  let poll = poll_of_deadline deadline in
  let compute () =
    match disk_find Stats.of_json ~key:k with
    | Some stats -> stats
    | None ->
      fresh := true;
      let entry = match entry with Some e -> e | None -> derive_entry t in
      let stats = simulate ?poll t entry in
      disk_store ~key:k ~request:(Json.parse canon)
        (Stats.to_json stats);
      stats
  in
  let stats =
    match t.acf with
    | Baseline -> memoize baseline_memo canon compute
    | _ -> compute ()
  in
  (stats, not !fresh)

let run ?entry ?trace ?profile t =
  match (trace, profile) with
  | None, None -> fst (run_cached ?entry t)
  | _ ->
    (* Sinks need the event stream replayed, which cached statistics
       cannot provide: run outside every cache and leave them alone
       (a traced run's stats are identical to an untraced one's). *)
    let entry = match entry with Some e -> e | None -> derive_entry t in
    simulate ?trace ?profile t entry

(* Exactly the exceptions the simulation stack raises on purpose.
   Anything else — a chaos injection, a plain bug, Out_of_memory — is
   NOT converted to a polite [Runtime] diagnostic: it escapes
   [run_ext] so the pool ([Pool.run_outcomes]) can confine it to its
   slot and the server can answer [internal], backtrace on stderr. *)
let known_exn = function
  | Invalid_argument _ | Failure _ | Machine.Runtime_error _
  | Engine.Expansion_error _ | Cache.Diag_error _
  | Resilience.Deadline_exceeded ->
    true
  | _ -> false

let diag_of_exn = function
  | Invalid_argument msg -> Diag.Invalid msg
  | Failure msg -> Diag.Runtime msg
  | Machine.Runtime_error msg -> Diag.Runtime msg
  | Engine.Expansion_error msg -> Diag.Expansion msg
  | Cache.Diag_error d -> d
  | Resilience.Deadline_exceeded ->
    Diag.Timeout "simulation exceeded its wall-clock budget"
  | e -> Diag.Runtime (Printexc.to_string e)

(* Latency of the run path itself (memo/cache lookups included),
   regardless of which entry point reached it — the serve loop, a
   journal replay, or a direct caller. Cache hits and misses land in
   the same histogram; the serve-level split lives one layer up. *)
let h_run = Dise_telemetry.Metrics.Histogram.make "request_run_ns"

let run_ext ?entry ?deadline t =
  let expired () =
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  (* Upfront check: a job whose budget is already gone (it sat in the
     queue, or chaos stalled it) times out without simulating. *)
  if expired () then
    Error (Diag.Timeout "deadline expired before the simulation started")
  else begin
    let t0 = Unix.gettimeofday () in
    let finish r =
      Dise_telemetry.Metrics.Histogram.observe_s h_run
        (Unix.gettimeofday () -. t0);
      r
    in
    match run_cached ?entry ?deadline t with
    | result -> finish (Ok result)
    | exception e when known_exn e -> finish (Error (diag_of_exn e))
  end

let relative stats ~baseline =
  float_of_int stats.Stats.cycles /. float_of_int baseline.Stats.cycles

(* --- compression summaries ---------------------------------------------- *)

type compress_summary = {
  orig_text_bytes : int;
  text_bytes : int;
  dict_bytes : int;
  dict_entries : int;
  codewords : int;
}

let summary_of_result (r : Compress.result) =
  {
    orig_text_bytes = r.Compress.orig_text_bytes;
    text_bytes = r.Compress.text_bytes;
    dict_bytes = r.Compress.dict_bytes;
    dict_entries = List.length r.Compress.entries;
    codewords = r.Compress.codewords;
  }

let summary_to_json s =
  Json.Obj
    [
      ("orig_text_bytes", Json.Int s.orig_text_bytes);
      ("text_bytes", Json.Int s.text_bytes);
      ("dict_bytes", Json.Int s.dict_bytes);
      ("dict_entries", Json.Int s.dict_entries);
      ("codewords", Json.Int s.codewords);
    ]

let summary_of_json j =
  let field name =
    match Json.member name j with
    | Some (Json.Int v) -> Ok v
    | _ -> Error (Printf.sprintf "compress_summary.%s: expected integer" name)
  in
  let* orig_text_bytes = field "orig_text_bytes" in
  let* text_bytes = field "text_bytes" in
  let* dict_bytes = field "dict_bytes" in
  let* dict_entries = field "dict_entries" in
  let* codewords = field "codewords" in
  Ok { orig_text_bytes; text_bytes; dict_bytes; dict_entries; codewords }

(* The canonical form is a distinct top-level shape ({"compress": ...}),
   so compression keys can never collide with run-request keys. The
   workload is pinned by (bench, total_insns) — total_insns is a
   deterministic function of (profile, dyn_target), and unlike
   dyn_target it is directly available from the entry. *)
let summary_canonical ~scheme ~rewritten (entry : Suite.entry) =
  Json.to_string
    (Json.Obj
       [
         ( "compress",
           Json.Obj
             [
               ( "bench",
                 Json.String entry.Suite.profile.Profile.name );
               ( "total_insns",
                 Json.Int entry.Suite.gen.Codegen.total_insns );
               ("scheme", scheme_to_json scheme);
               ("rewritten", Json.Bool rewritten);
             ] );
       ])

let compress_summary ~scheme ?(rewritten = false) entry =
  let canon = summary_canonical ~scheme ~rewritten entry in
  let k = Cache.key canon in
  match disk_find summary_of_json ~key:k with
  | Some s -> s
  | None ->
    let s = summary_of_result (compress_result ~scheme ~rewritten entry) in
    disk_store ~key:k ~request:(Json.parse canon) (summary_to_json s);
    s

let summary_compression_ratio s =
  float_of_int s.text_bytes /. float_of_int s.orig_text_bytes

let summary_total_ratio s =
  float_of_int (s.text_bytes + s.dict_bytes) /. float_of_int s.orig_text_bytes
