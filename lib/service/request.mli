(** First-class, serializable simulation runs.

    A {!t} {e names} one cell of the paper's evaluation grid —
    workload × ACF × machine (× controller) — as plain data, with a
    canonical JSON encoding. That one value is what the whole stack
    agrees on:

    - {!run} is the single driver behind every experiment (the
      [Dise_harness.Experiment] functions are one-line constructors
      over it);
    - {!canonical}/{!key} derive the content address under which the
      run's statistics persist in the on-disk {!Cache};
    - the JSONL protocol of [disesim serve] ships {!to_json} values
      over a pipe or socket (see doc/service.md for the schema).

    {b Caching.} [run] consults, in order: an in-memory memo
    (baseline runs only — many figure cells normalize against the
    same baseline), the configured disk cache ({!set_disk_cache}),
    and finally the simulator; fresh results are persisted. All three
    layers return statistics identical to a fresh simulation — every
    persisted field is an integer, so the round-trip is exact.

    {b Telemetry sinks bypass every cache.} This is the single place
    the rule lives (the deprecated [Experiment] drivers inherit it):
    sinks ([?trace]/[?profile]) consume the expansion {e event
    stream}, which cached statistics cannot replay, and closures make
    unusable hash keys — so a sink-carrying [run] simulates
    unconditionally and leaves every memo and the disk cache
    untouched. Statistics are unaffected: a traced run's counters are
    identical to an untraced one's. *)

type mfi_compose = [ `None | `Composed ]

type acf =
  | Baseline  (** ACF-free run. *)
  | Mfi_dise of Dise_acf.Mfi.variant
      (** DISE memory fault isolation (legal segments installed). *)
  | Mfi_rewrite of Dise_acf.Rewrite.variant
      (** Binary-rewriting (software) fault isolation. *)
  | Decompress of {
      scheme : Dise_acf.Compress.scheme;
      mfi : mfi_compose;
          (** [`Composed] nests DISE fault isolation over the
              decompression productions (Figure 8's DISE+DISE). *)
      rewritten : bool;
          (** compress the software-fault-isolated binary (the
              rewriting+X combos). *)
    }
  | Synth of {
      scheme : Dise_acf.Compress.scheme;
      seeds : Dise_acf.Compress.seed list;
          (** candidate dictionary as seed windows, applied in order
              ({!Dise_acf.Compress.compress_seeded}); the list is part
              of the canonical form, so every candidate the synthesis
              search scores gets its own cache key (encoded as
              [[blk, start, len]] triples — see doc/synthesize.md). *)
    }

type t = {
  bench : string;
      (** Workload reference: a {!Dise_workload.Profile} name.
          Together with [dyn_target] it deterministically defines the
          generated program. *)
  dyn_target : int;
  machine : Dise_uarch.Config.t;
  controller : Dise_core.Controller.config option;
      (** [None]: DISE is free (no PT/RT modelling). *)
  acf : acf;
  jit : bool;
      (** Run the functional machine through the superblock JIT (see
          doc/jit.md). Purely a performance knob — statistics are
          identical either way — but part of the canonical form, so
          JIT-on and JIT-off results cache under distinct keys. *)
  jit_threshold : int;
      (** Dispatches of a PC before its trace is compiled (>= 1). *)
}

val v :
  ?dyn_target:int ->
  ?machine:Dise_uarch.Config.t ->
  ?controller:Dise_core.Controller.config ->
  ?acf:acf ->
  ?jit:bool ->
  ?jit_threshold:int ->
  string ->
  t
(** [v bench] with the paper's defaults: 300K dynamic instructions,
    default machine, free DISE, [Baseline], and the process-wide JIT
    default ({!set_default_jit}) for [jit]/[jit_threshold]. *)

val set_default_jit : enabled:bool -> threshold:int -> unit
(** Process-wide default applied by {!v} and by {!of_json} when the
    incoming request has no ["jit"] member — how [--no-jit] and
    [--jit-threshold] act on whole CLI invocations (including serve
    sessions) without overriding requests that spell the knob out.
    Initially enabled with {!Dise_machine.Machine.default_jit_threshold}.
    [threshold] is clamped to >= 1. *)

(** {1 Canonical encoding} *)

val to_json : t -> Dise_telemetry.Json.t
(** Canonical encoding: fixed member order, schemes spelled out in
    full (so custom schemes serialize too), variants as strings. See
    doc/service.md for the schema. *)

val of_json : Dise_telemetry.Json.t -> (t, Dise_isa.Diag.t) result
(** Member order free; unknown members ignored (the serve protocol
    adds ["id"]); [bench] must name a known profile; a missing
    ["jit"] member takes the {!set_default_jit} default. Errors are
    [Diag.Parse]/[Diag.Invalid] (exit-code class "parse"). *)

val canonical : t -> string
(** The compact printing of {!to_json} — the string whose salted hash
    is the disk-cache key. Stable across processes; changing it is a
    cache-format change and must bump {!Cache.version}. *)

val key : t -> string
(** [Cache.key (canonical t)]. *)

(** {1 Running} *)

val run :
  ?entry:Dise_workload.Suite.entry ->
  ?trace:Dise_telemetry.Trace.t ->
  ?profile:Dise_telemetry.Profile.t ->
  t ->
  Dise_uarch.Stats.t
(** Execute the request (through the caches, unless a sink is
    attached — see above). [?entry] supplies an already-generated
    workload that MUST equal [Suite.get ~dyn_target (find bench)]
    (the harness passes the entry it already holds; omitting it
    derives — and on a cache hit skips even generating — the
    workload). Raises like the simulator does ([Failure] on a trapped
    workload, [Invalid_argument] on an unknown benchmark, ...);
    {!run_ext} is the exception-free variant. *)

val run_ext :
  ?entry:Dise_workload.Suite.entry ->
  ?deadline:float ->
  t ->
  (Dise_uarch.Stats.t * bool, Dise_isa.Diag.t) result
(** Like {!run} (sink-free), returning [stats, cache_hit]. The flag
    is true when the result was served without running the simulator
    (in-memory memo or disk). Failures map onto {!Dise_isa.Diag}:
    unknown benchmark → [Invalid], trapped workload / machine fault →
    [Runtime], engine fault → [Expansion], disk-cache write failure →
    [Cache] (breaker-free configurations only; see below), deadline
    overrun → [Timeout].

    [deadline] is an {e absolute} [Unix.gettimeofday] instant. An
    already-expired deadline fails fast; otherwise the simulator
    polls it every few thousand events and aborts with [Timeout]
    (cooperative — see {!Dise_uarch.Pipeline.run}). Cache hits beat
    the deadline by construction.

    Only {e expected} failures become [Error]: an exception outside
    the simulation stack's documented set (a bug, an injected chaos
    fault, [Out_of_memory]) escapes, to be confined per-slot by
    {!Pool.run_outcomes} and reported as kind [internal] by the
    server. *)

val relative :
  Dise_uarch.Stats.t -> baseline:Dise_uarch.Stats.t -> float
(** Execution-time ratio (cycles / baseline cycles). *)

(** {1 Compression measurements} *)

val compress_result :
  scheme:Dise_acf.Compress.scheme ->
  ?rewritten:bool ->
  Dise_workload.Suite.entry ->
  Dise_acf.Compress.result
(** Compress the workload's program (optionally after the rewriting
    MFI transformation, Figure 8's software combos). Memoized in
    memory per (workload, scheme, rewritten): the greedy compressor
    is by far the most expensive step and several panels reuse the
    same compressed binaries. Full results (images, production sets)
    are not persisted to disk — see {!compress_summary} for what is. *)

type compress_summary = {
  orig_text_bytes : int;
  text_bytes : int;
  dict_bytes : int;
  dict_entries : int;
  codewords : int;
}
(** The size measurements behind the Figure 7 ratio panel — the
    disk-cacheable projection of a {!Dise_acf.Compress.result}. *)

val compress_summary :
  scheme:Dise_acf.Compress.scheme ->
  ?rewritten:bool ->
  Dise_workload.Suite.entry ->
  compress_summary
(** Like {!compress_result} but returning (and disk-caching, under a
    [{"compress": ...}] canonical form) only the sizes, so a warm
    rerun of the static-compression panel never runs the compressor. *)

val summary_compression_ratio : compress_summary -> float
(** [text_bytes / orig_text_bytes], exactly as
    {!Dise_acf.Compress.compression_ratio}. *)

val summary_total_ratio : compress_summary -> float

(** {1 Cache wiring} *)

val set_disk_cache : Cache.t option -> unit
(** Install (or remove, [None] — the initial state) the process-wide
    disk cache consulted by {!run}/{!compress_summary}. Set it before
    spawning worker domains. *)

val disk_cache : unit -> Cache.t option

val set_cache_breaker : Resilience.Breaker.t option -> unit
(** Install (or remove, [None] — the initial state) a circuit breaker
    over the disk cache ([disesim serve --breaker]). While installed:
    cache {e reads} are skipped whenever the breaker is not closed
    (degraded mode — jobs simulate instead of failing); cache
    {e stores} flow through {!Resilience.Breaker.allow}, and a store
    that still fails after bounded retries trips the breaker and is
    {e dropped} (counted in {!Resilience.Counters.store_drops})
    rather than raised — a sick cache must not fail a job whose
    statistics already exist. Without a breaker, stores keep the
    historical contract: transient failures are retried, persistent
    ones raise [Cache.Diag_error]. *)

val cache_breaker : unit -> Resilience.Breaker.t option

val cache_counters : unit -> int * int
(** This domain's cumulative disk-cache [(hits, misses)]. Counters
    are domain-local, so a figure cell's delta (snapshot before/after
    on the worker that ran it) is race-free; the harness records the
    deltas in run manifests. Zero when no disk cache is installed. *)

val clear_memory : unit -> unit
(** Drop the in-memory memo tables (baseline stats, compression
    results, rewritten programs). Mutex-protected and safe to call
    concurrently with worker domains; clearing mid-figure only costs
    recomputation, never correctness. *)

val clear_disk : unit -> int
(** Wipe the installed disk cache (0 when none is installed).
    [Experiment.clear_cache] calls both, so a stale cache cannot
    survive a code change that forgot to bump {!Cache.version}. *)
