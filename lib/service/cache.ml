module Json = Dise_telemetry.Json

exception Diag_error of Dise_isa.Diag.t

let cache_error fmt =
  Printf.ksprintf (fun msg -> raise (Diag_error (Dise_isa.Diag.Cache msg))) fmt

(* Bump on ANY change that invalidates persisted results: simulator
   timing behaviour, the canonical request encoding, or the payload
   schema. The salt is hashed into every key AND embedded in every
   envelope, so stale entries miss twice over. *)
let version = "1"
let salt = "dise-result-cache-v" ^ version

type t = { root : string }

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  try go dir
  with Unix.Unix_error (e, _, _) ->
    cache_error "cannot create %s: %s" dir (Unix.error_message e)

let create ~dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then cache_error "%s is not a directory" dir;
  { root = dir }

let dir t = t.root
let key canonical = Digest.to_hex (Digest.string (salt ^ "\n" ^ canonical))

let subdir t key = Filename.concat t.root (String.sub key 0 2)
let path t ~key = Filename.concat (subdir t key) (key ^ ".json")

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A lookup must never raise: any defect — unreadable file, JSON that
   does not parse (e.g. a truncated entry), wrong salt (stale version),
   wrong key (file renamed by hand), missing payload — deletes the
   entry and reports a miss, and the caller recomputes. *)
let find t ~key:k =
  let p = path t ~key:k in
  match read_file p with
  | exception Sys_error _ -> None (* absent (or unreadable: treat alike) *)
  | contents -> (
    let drop () =
      (try Sys.remove p with Sys_error _ -> ());
      None
    in
    match Json.parse contents with
    | exception _ -> drop () (* truncated or garbled entry *)
    | doc -> (
      let ok =
        Json.member "salt" doc = Some (Json.String salt)
        && Json.member "key" doc = Some (Json.String k)
      in
      match (ok, Json.member "payload" doc) with
      | true, Some payload -> Some payload
      | _ -> drop ()))

let tmp_counter = Atomic.make 0

let store t ~key:k ~request ~payload =
  let d = subdir t k in
  mkdir_p d;
  let tmp =
    Filename.concat d
      (Printf.sprintf ".tmp.%d.%d.%s" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1)
         k)
  in
  let doc =
    Json.Obj
      [
        ("salt", Json.String salt);
        ("key", Json.String k);
        ("request", request);
        ("payload", payload);
      ]
  in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Json.to_string doc);
        output_char oc '\n');
    Sys.rename tmp (path t ~key:k)
  with Sys_error msg | Unix.Unix_error (_, msg, _) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    cache_error "cannot store entry %s: %s" k msg

let iter_entry_files t f =
  let in_subdir sub =
    let d = Filename.concat t.root sub in
    if Sys.is_directory d then
      Array.iter
        (fun name -> f (Filename.concat d name) name)
        (Sys.readdir d)
  in
  if Sys.file_exists t.root && Sys.is_directory t.root then
    Array.iter
      (fun sub ->
        if String.length sub = 2 then
          try in_subdir sub with Sys_error _ -> ())
      (Sys.readdir t.root)

let entries t =
  let n = ref 0 in
  iter_entry_files t (fun _ name ->
      if Filename.check_suffix name ".json" then incr n);
  !n

let clear t =
  let removed = ref 0 in
  let failed = ref None in
  iter_entry_files t (fun p name ->
      match Sys.remove p with
      | () -> if Filename.check_suffix name ".json" then incr removed
      | exception Sys_error msg ->
        if !failed = None then failed := Some msg);
  match !failed with
  | Some msg -> cache_error "clear incomplete: %s" msg
  | None -> !removed
