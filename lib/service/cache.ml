module Json = Dise_telemetry.Json

exception Diag_error of Dise_isa.Diag.t

let cache_error fmt =
  Printf.ksprintf (fun msg -> raise (Diag_error (Dise_isa.Diag.Cache msg))) fmt

(* Bump on ANY change that invalidates persisted results: simulator
   timing behaviour, the canonical request encoding, or the payload
   schema. The salt is hashed into every key AND embedded in every
   envelope, so stale entries miss twice over. *)
let version = "2"
let salt = "dise-result-cache-v" ^ version

type t = { root : string }

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  try go dir
  with Unix.Unix_error (e, _, _) ->
    cache_error "cannot create %s: %s" dir (Unix.error_message e)

let create ~dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then cache_error "%s is not a directory" dir;
  { root = dir }

let dir t = t.root
let key canonical = Digest.to_hex (Digest.string (salt ^ "\n" ^ canonical))

let subdir t key = Filename.concat t.root (String.sub key 0 2)
let path t ~key = Filename.concat (subdir t key) (key ^ ".json")

(* [read_file] must not raise even when the file is concurrently
   replaced: [really_input_string] raises [End_of_file] if the file
   shrinks between the length query and the read (a racing recovery
   renamed it away, or a racing writer truncated it). *)
let read_file p =
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic -> (
    match
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | contents -> Some contents
    | exception (Sys_error _ | End_of_file) -> None)

let tmp_counter = Atomic.make 0

(* Envelope validation shared by [find] and corrupt-entry recovery:
   the payload, iff the entry parses and carries the right salt and
   key. *)
let payload_of contents ~key:k =
  match Json.parse contents with
  | exception _ -> None (* truncated or garbled entry *)
  | doc -> (
    let ok =
      Json.member "salt" doc = Some (Json.String salt)
      && Json.member "key" doc = Some (Json.String k)
    in
    match (ok, Json.member "payload" doc) with
    | true, Some payload -> Some payload
    | _ -> None)

(* Corrupt-entry recovery. A plain [Sys.remove p] here would race
   with a concurrent [store]: between our read of the corrupt bytes
   and the unlink, another domain may have recomputed the result and
   renamed a {e good} entry into place — and the unlink would destroy
   it. Instead each recovering domain {e claims} the entry by renaming
   it to a private name (rename is atomic, so exactly one claimant
   wins; the losers see [ENOENT] and simply report a miss). The winner
   then re-reads what it actually claimed: if a racing store slipped a
   valid entry in before our rename, we claimed that good entry — so
   its payload is returned (the caller sees a hit; the entry is gone
   from disk and the next lookup re-stores it) instead of being lost.
   The claimed file is always removed, making recovery idempotent. *)
let reclaim t ~key:k p =
  let trash =
    Filename.concat (subdir t k)
      (Printf.sprintf ".trash.%d.%d.%s" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1)
         k)
  in
  match Sys.rename p trash with
  | exception Sys_error _ -> None (* another domain claimed it first *)
  | () ->
    let rescued =
      match read_file trash with
      | None -> None
      | Some contents -> payload_of contents ~key:k
    in
    (try Sys.remove trash with Sys_error _ -> ());
    rescued

(* A lookup must never raise: any defect — unreadable file, JSON that
   does not parse (e.g. a truncated entry), wrong salt (stale version),
   wrong key (file renamed by hand), missing payload — retires the
   entry and reports a miss, and the caller recomputes. *)
let find t ~key:k =
  let p = path t ~key:k in
  match read_file p with
  | None -> None (* absent (or unreadable: treat alike) *)
  | Some contents -> (
    match payload_of contents ~key:k with
    | Some payload -> Some payload
    | None -> reclaim t ~key:k p)

let invalidate t ~key:k = ignore (reclaim t ~key:k (path t ~key:k))

let store t ~key:k ~request ~payload =
  let d = subdir t k in
  mkdir_p d;
  let tmp =
    Filename.concat d
      (Printf.sprintf ".tmp.%d.%d.%s" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1)
         k)
  in
  let doc =
    Json.Obj
      [
        ("salt", Json.String salt);
        ("key", Json.String k);
        ("request", request);
        ("payload", payload);
      ]
  in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Json.to_string doc);
        output_char oc '\n');
    Sys.rename tmp (path t ~key:k)
  with Sys_error msg | Unix.Unix_error (_, msg, _) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    cache_error "cannot store entry %s: %s" k msg

let iter_entry_files t f =
  let in_subdir sub =
    let d = Filename.concat t.root sub in
    if Sys.is_directory d then
      Array.iter
        (fun name -> f (Filename.concat d name) name)
        (Sys.readdir d)
  in
  if Sys.file_exists t.root && Sys.is_directory t.root then
    Array.iter
      (fun sub ->
        if String.length sub = 2 then
          try in_subdir sub with Sys_error _ -> ())
      (Sys.readdir t.root)

let entries t =
  let n = ref 0 in
  iter_entry_files t (fun _ name ->
      if Filename.check_suffix name ".json" then incr n);
  !n

let clear t =
  let removed = ref 0 in
  let failed = ref None in
  iter_entry_files t (fun p name ->
      match Sys.remove p with
      | () -> if Filename.check_suffix name ".json" then incr removed
      | exception Sys_error msg ->
        if !failed = None then failed := Some msg);
  match !failed with
  | Some msg -> cache_error "clear incomplete: %s" msg
  | None -> !removed
