module Json = Dise_telemetry.Json
module Diag = Dise_isa.Diag

type t = {
  workers : int;
  jobs : int;
  queue : int;
  deadline_ms : int option;
  shed_above : int option;
  tenant_quota : int option;
  journal : string option;
  manifest : string option;
  metrics_every_s : float;
  breaker : int;
  breaker_cooldown_ms : int;
  heartbeat_ms : int;
  suspect_misses : int;
  dead_misses : int;
  hedge_p95x : float;
  respawn_cap : int;
}

let default () =
  let jobs = Pool.default_jobs () in
  {
    workers = 0;
    jobs;
    queue = 4 * jobs;
    deadline_ms = None;
    shed_above = None;
    tenant_quota = None;
    journal = None;
    manifest = None;
    metrics_every_s = 1.0;
    breaker = 8;
    breaker_cooldown_ms = 5000;
    heartbeat_ms = 500;
    suspect_misses = 3;
    dead_misses = 20;
    hedge_p95x = 8.0;
    respawn_cap = 100;
  }

(* Clamps mirror the historical Server.opts smart constructor: the
   record is total over any integers a config file may carry. *)
let normalize c =
  {
    c with
    workers = max 0 c.workers;
    jobs = max 1 c.jobs;
    queue = max 1 c.queue;
    breaker = max 0 c.breaker;
    breaker_cooldown_ms = max 0 c.breaker_cooldown_ms;
    metrics_every_s = (if c.metrics_every_s < 0. then 0. else c.metrics_every_s);
    heartbeat_ms = max 0 c.heartbeat_ms;
    suspect_misses = max 1 c.suspect_misses;
    dead_misses = max 2 c.dead_misses;
    hedge_p95x = (if c.hedge_p95x < 0. then 0. else c.hedge_p95x);
    respawn_cap = max 0 c.respawn_cap;
  }

let of_flags ?workers ?jobs ?queue ?deadline_ms ?shed_above ?tenant_quota
    ?journal ?manifest ?metrics_every_s ?breaker ?breaker_cooldown_ms
    ?heartbeat_ms ?suspect_misses ?dead_misses ?hedge_p95x ?respawn_cap () =
  let d = default () in
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let queue = match queue with Some q -> max 1 q | None -> 4 * jobs in
  normalize
    {
      workers = Option.value workers ~default:0;
      jobs;
      queue;
      deadline_ms;
      shed_above;
      tenant_quota;
      journal;
      manifest;
      metrics_every_s = Option.value metrics_every_s ~default:1.0;
      breaker = Option.value breaker ~default:8;
      breaker_cooldown_ms = Option.value breaker_cooldown_ms ~default:5000;
      heartbeat_ms = Option.value heartbeat_ms ~default:d.heartbeat_ms;
      suspect_misses = Option.value suspect_misses ~default:d.suspect_misses;
      dead_misses = Option.value dead_misses ~default:d.dead_misses;
      hedge_p95x = Option.value hedge_p95x ~default:d.hedge_p95x;
      respawn_cap = Option.value respawn_cap ~default:d.respawn_cap;
    }

let override cfg ?workers ?jobs ?queue ?deadline_ms ?shed_above ?tenant_quota
    ?journal ?manifest ?metrics_every_s ?breaker ?breaker_cooldown_ms
    ?heartbeat_ms ?suspect_misses ?dead_misses ?hedge_p95x ?respawn_cap () =
  let v keep = function Some x -> Some x | None -> keep in
  normalize
    {
      workers = Option.value workers ~default:cfg.workers;
      jobs = Option.value jobs ~default:cfg.jobs;
      queue =
        (match queue with
        | Some q -> q
        (* [--jobs] without [--queue] re-derives the 4x default, as
           the flag-only path always has. *)
        | None -> ( match jobs with Some j -> 4 * max 1 j | None -> cfg.queue));
      deadline_ms = v cfg.deadline_ms deadline_ms;
      shed_above = v cfg.shed_above shed_above;
      tenant_quota = v cfg.tenant_quota tenant_quota;
      journal = v cfg.journal journal;
      manifest = v cfg.manifest manifest;
      metrics_every_s = Option.value metrics_every_s ~default:cfg.metrics_every_s;
      breaker = Option.value breaker ~default:cfg.breaker;
      breaker_cooldown_ms =
        Option.value breaker_cooldown_ms ~default:cfg.breaker_cooldown_ms;
      heartbeat_ms = Option.value heartbeat_ms ~default:cfg.heartbeat_ms;
      suspect_misses = Option.value suspect_misses ~default:cfg.suspect_misses;
      dead_misses = Option.value dead_misses ~default:cfg.dead_misses;
      hedge_p95x = Option.value hedge_p95x ~default:cfg.hedge_p95x;
      respawn_cap = Option.value respawn_cap ~default:cfg.respawn_cap;
    }

(* Canonical form: fixed member order, [None] members omitted —
   doc/schema/serve_config.schema.json marks every member optional,
   so the canonical text of any config validates. *)
let to_json c =
  let opt_int name = function
    | None -> []
    | Some v -> [ (name, Json.Int v) ]
  in
  let opt_str name = function
    | None -> []
    | Some v -> [ (name, Json.String v) ]
  in
  Json.Obj
    ([
       ("workers", Json.Int c.workers);
       ("jobs", Json.Int c.jobs);
       ("queue", Json.Int c.queue);
     ]
    @ opt_int "deadline_ms" c.deadline_ms
    @ opt_int "shed_above" c.shed_above
    @ opt_int "tenant_quota" c.tenant_quota
    @ opt_str "journal" c.journal
    @ opt_str "manifest" c.manifest
    @ [
        ("metrics_every_s", Json.Float c.metrics_every_s);
        ("breaker", Json.Int c.breaker);
        ("breaker_cooldown_ms", Json.Int c.breaker_cooldown_ms);
        ("heartbeat_ms", Json.Int c.heartbeat_ms);
        ("suspect_misses", Json.Int c.suspect_misses);
        ("dead_misses", Json.Int c.dead_misses);
        ("hedge_p95x", Json.Float c.hedge_p95x);
        ("respawn_cap", Json.Int c.respawn_cap);
      ])

let parse_error msg = Error (Diag.Parse { source = "serve_config"; line = 0; msg })

let known_members =
  [
    "workers"; "jobs"; "queue"; "deadline_ms"; "shed_above"; "tenant_quota";
    "journal"; "manifest"; "metrics_every_s"; "breaker"; "breaker_cooldown_ms";
    "heartbeat_ms"; "suspect_misses"; "dead_misses"; "hedge_p95x";
    "respawn_cap";
  ]

let of_json j =
  match j with
  | Json.Obj members -> (
    match
      List.find_opt (fun (k, _) -> not (List.mem k known_members)) members
    with
    | Some (k, _) -> parse_error (Printf.sprintf "unknown member %S" k)
    | None -> (
      let d = default () in
      let int_m name dflt =
        match List.assoc_opt name members with
        | None | Some Json.Null -> Ok dflt
        | Some (Json.Int i) -> Ok i
        | Some _ -> parse_error (name ^ " must be an integer")
      in
      let opt_int_m name dflt =
        match List.assoc_opt name members with
        | None -> Ok dflt
        | Some Json.Null -> Ok None
        | Some (Json.Int i) -> Ok (Some i)
        | Some _ -> parse_error (name ^ " must be an integer or null")
      in
      let opt_str_m name dflt =
        match List.assoc_opt name members with
        | None -> Ok dflt
        | Some Json.Null -> Ok None
        | Some (Json.String s) -> Ok (Some s)
        | Some _ -> parse_error (name ^ " must be a string or null")
      in
      let float_m name dflt =
        match List.assoc_opt name members with
        | None | Some Json.Null -> Ok dflt
        | Some (Json.Float f) -> Ok f
        | Some (Json.Int i) -> Ok (float_of_int i)
        | Some _ -> parse_error (name ^ " must be a number")
      in
      let ( let* ) = Result.bind in
      let* workers = int_m "workers" d.workers in
      let* jobs = int_m "jobs" d.jobs in
      let* queue =
        (* like the flag path, an explicit [jobs] re-derives the
           queue default when the file leaves [queue] out *)
        int_m "queue"
          (match List.assoc_opt "jobs" members with
          | Some (Json.Int j) -> 4 * max 1 j
          | _ -> d.queue)
      in
      let* deadline_ms = opt_int_m "deadline_ms" d.deadline_ms in
      let* shed_above = opt_int_m "shed_above" d.shed_above in
      let* tenant_quota = opt_int_m "tenant_quota" d.tenant_quota in
      let* journal = opt_str_m "journal" d.journal in
      let* manifest = opt_str_m "manifest" d.manifest in
      let* metrics_every_s = float_m "metrics_every_s" d.metrics_every_s in
      let* breaker = int_m "breaker" d.breaker in
      let* breaker_cooldown_ms =
        int_m "breaker_cooldown_ms" d.breaker_cooldown_ms
      in
      let* heartbeat_ms = int_m "heartbeat_ms" d.heartbeat_ms in
      let* suspect_misses = int_m "suspect_misses" d.suspect_misses in
      let* dead_misses = int_m "dead_misses" d.dead_misses in
      let* hedge_p95x = float_m "hedge_p95x" d.hedge_p95x in
      let* respawn_cap = int_m "respawn_cap" d.respawn_cap in
      Ok
        (normalize
           {
             workers;
             jobs;
             queue;
             deadline_ms;
             shed_above;
             tenant_quota;
             journal;
             manifest;
             metrics_every_s;
             breaker;
             breaker_cooldown_ms;
             heartbeat_ms;
             suspect_misses;
             dead_misses;
             hedge_p95x;
             respawn_cap;
           })))
  | _ -> parse_error "serve config must be a JSON object"

let of_file path =
  match open_in_bin path with
  | exception Sys_error msg -> parse_error msg
  | ic -> (
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse text with
    | exception Json.Parse_error msg ->
      Error (Diag.Parse { source = path; line = 0; msg })
    | doc -> of_json doc)
