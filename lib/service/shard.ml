(* Consistent-hash ring over the result-cache keyspace.

   Each worker owns [vnodes] points on a circle of md5 hashes; a key
   routes to the owner of the first point at or clockwise-after the
   key's own hash. Virtual nodes smooth the per-worker share (the
   standard deviation of shard sizes shrinks like 1/sqrt vnodes), and
   consistent hashing keeps re-sharding cheap: growing from N to N+1
   workers moves only ~1/(N+1) of the keyspace, so a restarted tier
   with one more worker still hits most of its disk cache. *)

type t = { points : (string * int) array }

(* Ring positions are md5 hex digests compared as strings: md5's hex
   form is fixed-width lowercase, so lexicographic order is the order
   of the underlying 128-bit values. *)
let position s = Digest.to_hex (Digest.string s)

let default_vnodes = 64

let ring ~workers ?(vnodes = default_vnodes) () =
  if workers < 1 then invalid_arg "Shard.ring: workers must be >= 1";
  if vnodes < 1 then invalid_arg "Shard.ring: vnodes must be >= 1";
  let points =
    Array.init (workers * vnodes) (fun i ->
        let w = i / vnodes and v = i mod vnodes in
        (position (Printf.sprintf "dise-shard-v1:%d:%d" w v), w))
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) points;
  { points }

let workers t =
  Array.fold_left (fun acc (_, w) -> max acc (w + 1)) 0 t.points

(* First point at or after the key's position, wrapping to the start
   of the ring: binary search for the leftmost point >= h. *)
let route t key =
  let h = position key in
  let n = Array.length t.points in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) < h then search (mid + 1) hi else search lo mid
  in
  let i = search 0 n in
  snd t.points.(if i = n then 0 else i)
