(* Consistent-hash ring over the result-cache keyspace.

   Each worker owns [vnodes] points on a circle of md5 hashes; a key
   routes to the owner of the first point at or clockwise-after the
   key's own hash. Virtual nodes smooth the per-worker share (the
   standard deviation of shard sizes shrinks like 1/sqrt vnodes), and
   consistent hashing keeps re-sharding cheap: growing from N to N+1
   workers moves only ~1/(N+1) of the keyspace, so a restarted tier
   with one more worker still hits most of its disk cache. *)

type t = { points : (string * int) array }

(* Ring positions are md5 hex digests compared as strings: md5's hex
   form is fixed-width lowercase, so lexicographic order is the order
   of the underlying 128-bit values. *)
let position s = Digest.to_hex (Digest.string s)

let default_vnodes = 64

let ring ~workers ?(vnodes = default_vnodes) () =
  if workers < 1 then invalid_arg "Shard.ring: workers must be >= 1";
  if vnodes < 1 then invalid_arg "Shard.ring: vnodes must be >= 1";
  let points =
    Array.init (workers * vnodes) (fun i ->
        let w = i / vnodes and v = i mod vnodes in
        (position (Printf.sprintf "dise-shard-v1:%d:%d" w v), w))
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) points;
  { points }

let workers t =
  Array.fold_left (fun acc (_, w) -> max acc (w + 1)) 0 t.points

let alive t =
  Array.fold_left (fun acc (_, w) -> if List.mem w acc then acc else w :: acc)
    [] t.points
  |> List.sort compare

(* Shrink: drop every vnode the dead worker owned. Survivors' points
   are untouched, so a key either kept its owner or its owner was the
   removed worker — removal moves exactly the dead worker's keys,
   each to whichever survivor owns the next point clockwise. *)
let remove t dead =
  let points = Array.of_list
      (List.filter (fun (_, w) -> w <> dead) (Array.to_list t.points))
  in
  if Array.length points = 0 then
    invalid_arg "Shard.remove: cannot remove the last worker";
  { points }

(* First point at or after the key's position, wrapping to the start
   of the ring: binary search for the leftmost point >= h. *)
let start_index t key =
  let h = position key in
  let n = Array.length t.points in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) < h then search (mid + 1) hi else search lo mid
  in
  let i = search 0 n in
  if i = n then 0 else i

let route t key = snd t.points.(start_index t key)

(* The hedge target: the first worker clockwise after the key's
   position that is not [avoid] — the worker that would inherit the
   key if [avoid] left the ring, so a hedged request and a failed-over
   one land on the same shard. [None] on a ring of one worker. *)
let next t key ~avoid =
  let n = Array.length t.points in
  let start = start_index t key in
  let rec scan steps i =
    if steps = n then None
    else
      let w = snd t.points.(i) in
      if w <> avoid then Some w else scan (steps + 1) ((i + 1) mod n)
  in
  scan 0 start
