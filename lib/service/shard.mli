(** Consistent-hash routing of result-cache keys to worker shards.

    The coordinator routes every job by its {!Request.key} — the
    content-addressed result-cache key — so identical requests always
    land on the same worker, making each worker's in-memory state and
    journal shard authoritative for its slice of the keyspace.
    Consistent hashing (a ring of md5 points, {!default_vnodes}
    virtual nodes per worker) keeps shard sizes balanced and keyspace
    movement minimal when the worker count changes: growing from [N]
    to [N+1] workers re-routes only about [1/(N+1)] of all keys. *)

type t

val default_vnodes : int
(** Virtual nodes per worker (64). *)

val ring : workers:int -> ?vnodes:int -> unit -> t
(** Build the ring for [workers] shards (numbered [0 .. workers-1]).
    Raises [Invalid_argument] if either count is < 1. Deterministic:
    the same arguments always build the same ring. *)

val workers : t -> int

val alive : t -> int list
(** The worker ids that still own points on the ring, ascending. A
    fresh ring lists [0 .. workers-1]; {!remove} shrinks the list. *)

val remove : t -> int -> t
(** [remove t w] shrinks the ring: every vnode [w] owned disappears
    and its keys pass to whichever survivor owns the next point
    clockwise. Survivors' points are untouched, so removal moves
    {e only} the dead worker's keys (the dual of the grow-only
    movement property). Raises [Invalid_argument] when [w] is the
    last worker on the ring. Removing a worker not on the ring is the
    identity. *)

val route : t -> string -> int
(** [route t key] is the shard that owns [key]. Total and pure —
    every string routes somewhere, and equal keys route equally. *)

val next : t -> string -> avoid:int -> int option
(** [next t key ~avoid] is the hedge target for [key]: the first
    worker clockwise after [key]'s position that is not [avoid] —
    exactly the worker that inherits [key] if [avoid] is
    {!remove}d. [None] when [avoid] is the only worker. *)
