(** Content-addressed on-disk result cache.

    Entries are keyed by the hash of a {e canonical payload string}
    (the compact canonical JSON of a {!Request} — see
    {!Request.canonical}) salted with a code-version string, so a warm
    rerun of any experiment grid serves repeated cells from disk
    instead of re-simulating them.

    Layout: [dir/<k₀k₁>/<key>.json] where [key] is the 32-hex-char
    MD5 of ["<salt>\n<canonical payload>"] and [k₀k₁] its first two
    characters (a fan-out subdirectory, keeping directories small on
    big sweeps). Each file is a self-describing envelope:

    {v
    { "salt": "...", "key": "...", "request": <canonical JSON>,
      "payload": <result JSON> }
    v}

    {b Versioning.} [salt] embeds {!version}. Any change to simulator
    behaviour, to the canonical request encoding, or to the payload
    schema MUST bump {!version}: old entries then fail the salt check
    and are treated as misses (and deleted lazily). As a backstop for
    a forgotten bump, [Experiment.clear_cache]/[disesim cache clear]
    wipe the directory outright.

    {b Durability.} Writes go to a temp file in the same directory
    and are published with [rename], so readers (including concurrent
    domains and processes) never observe a half-written entry. A
    corrupt or truncated entry — unparseable JSON, wrong salt, wrong
    key, missing payload — is detected on read, retired, and reported
    as a miss; the caller recomputes and rewrites. Lookups never
    raise; only {!store} and {!clear} surface I/O errors, as
    {!Dise_isa.Diag.Cache}.

    {b Concurrent recovery.} Retiring a corrupt entry never unlinks
    the published path directly: a racing {!store} may have just
    renamed a fresh, valid entry into place, and a blind delete would
    destroy it. Recovery instead {e claims} the file by renaming it to
    a private name (atomically — exactly one domain wins; losers see a
    plain miss), re-validates what was actually claimed, and returns
    the payload if a racing store had already repaired the entry.
    Recovery is idempotent: any number of domains may hit the same
    corrupt entry concurrently and each either reports a miss or a
    valid payload, never an error, and the corrupt bytes are removed
    exactly once. *)

type t

val version : string
(** The code-version component of the salt. Bump on any change that
    invalidates persisted results. *)

val salt : string
(** The full salt string hashed into every key and embedded in every
    envelope. *)

val create : dir:string -> t
(** Open (creating directories as needed) a cache rooted at [dir].
    Raises [Diag_error (Cache _)] via {!Dise_isa.Diag} if the root
    cannot be created. *)

exception Diag_error of Dise_isa.Diag.t
(** Raised by {!create}, {!store} and {!clear} on I/O failure
    (category ["cache"], exit code 4). *)

val dir : t -> string

val key : string -> string
(** [key canonical] is the 32-hex-char entry key for a canonical
    payload string (MD5 of salt + payload). Deterministic across
    processes and versions-with-equal-salt; the golden test pins it. *)

val path : t -> key:string -> string
(** Absolute path of the entry file for [key] (whether or not it
    exists). *)

val find : t -> key:string -> Dise_telemetry.Json.t option
(** The entry's [payload] member, or [None] on miss. Corrupt entries
    are retired (see {e Concurrent recovery} above) and reported as
    misses; never raises. *)

val invalidate : t -> key:string -> unit
(** Retire the entry for [key] (if any) using the same claim-by-rename
    protocol as corrupt-entry recovery, so it cannot delete an entry a
    racing {!store} just published over the one being invalidated.
    For callers that detect a defect in a payload {!find} returned
    (e.g. a schema mismatch one level up). Never raises. *)

val store :
  t -> key:string -> request:Dise_telemetry.Json.t ->
  payload:Dise_telemetry.Json.t -> unit
(** Atomically persist an entry (idempotent; last writer wins with an
    identical value by construction). *)

val entries : t -> int
(** Number of entries currently on disk. *)

val clear : t -> int
(** Delete every entry (and stray temp file); returns the number of
    entry files removed. The directory structure is kept. *)
