let default_jobs () = Domain.recommended_domain_count ()

(* Outcome of one task. Stored per-index so reassembly is positional;
   an [option] wrapper distinguishes "never ran" (only possible if a
   domain died, which join surfaces) from a recorded result. *)
type 'a outcome = ('a, exn * Printexc.raw_backtrace) result

(* Run one task, reporting wall-clock to the probe when one is
   attached. The [None] path is exactly [task ()]: no timestamp reads,
   no allocation. *)
let timed probe i ~domain task =
  match probe with
  | None -> task ()
  | Some p ->
    let t0 = Unix.gettimeofday () in
    let r = task () in
    p i ~domain (Unix.gettimeofday () -. t0);
    r

let outcome_of probe i ~domain task =
  try Ok (timed probe i ~domain task)
  with e -> Error (e, Printexc.get_raw_backtrace ())

let run_outcomes_serial probe tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let results = Array.make n (outcome_of probe 0 ~domain:0 tasks.(0)) in
    for i = 1 to n - 1 do
      results.(i) <- outcome_of probe i ~domain:0 tasks.(i)
    done;
    results
  end

let run_outcomes_parallel ~jobs probe (tasks : (unit -> 'a) array) =
  let n = Array.length tasks in
  let results : 'a outcome option array = Array.make n None in
  let next = Atomic.make 0 in
  let worker domain () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (outcome_of probe i ~domain tasks.(i));
        loop ()
      end
    in
    loop ()
  in
  let spawned =
    Array.init (min jobs n - 1) (fun k -> Domain.spawn (worker (k + 1)))
  in
  worker 0 ();
  Array.iter Domain.join spawned;
  Array.init n (fun i ->
      match results.(i) with
      | Some r -> r
      | None -> assert false (* every index < n was claimed and joined *))

let run_outcomes ?jobs ?probe tasks =
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  if jobs = 1 || Array.length tasks <= 1 then run_outcomes_serial probe tasks
  else run_outcomes_parallel ~jobs probe tasks

let run ?jobs ?probe tasks =
  let outcomes = run_outcomes ?jobs ?probe tasks in
  (* Re-raise the lowest-indexed failure, deterministically. *)
  Array.iter
    (function
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt | Ok _ -> ())
    outcomes;
  Array.map (function Ok v -> v | Error _ -> assert false) outcomes

let map_list ?jobs f xs =
  Array.to_list (run ?jobs (Array.of_list (List.map (fun x () -> f x) xs)))
