module Json = Dise_telemetry.Json
module Manifest = Dise_telemetry.Manifest
module Metrics = Dise_telemetry.Metrics
module Diag = Dise_isa.Diag

let env_var = "DISESIM_SERVE_WORKER"

(* The coordinator executes nothing itself, so its latency instruments
   come from the workers; [serve_execute_ns] here is the same
   registry instrument the in-process server uses (make is
   idempotent), recorded inside each worker process. *)
let h_execute = Metrics.Histogram.make "serve_execute_ns"

(* --- frame protocol ----------------------------------------------------- *)

(* Coordinator <-> worker pipes carry 4-byte big-endian length-prefixed
   JSON frames — self-delimiting (JSONL would re-parse request bodies
   to find boundaries) and safe against partial reads on nonblocking
   descriptors.

     C -> W   {"op":"job","seq":N,"enq":T,"id":ID,"req":REQUEST}
              {"op":"stop"}
     W -> C   {"op":"resp","seq":N,"tag":"hit"|"fresh"|"error",
               "kind":CATEGORY?,"resp":RESPONSE}
              {"op":"summary","shard":S,"counters":{..},"metrics":{..}}

   [seq] is coordinator-global and monotonic, so a respawned worker can
   be handed the same frame again without ambiguity. *)

let max_frame = 8 * 1024 * 1024

let frame_string doc =
  let body = Json.to_string doc in
  let n = String.length body in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string body 0 b 4 n;
  Bytes.unsafe_to_string b

let be32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

(* Blocking exact read; [false] on EOF (including EOF mid-item, which
   only a dying peer produces). *)
let rec read_exactly fd buf off len =
  if len = 0 then true
  else
    match Unix.read fd buf off len with
    | 0 -> false
    | n -> read_exactly fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      read_exactly fd buf off len

(* Blocking whole-frame read. [None] covers EOF and protocol
   corruption alike: in either case the peer is unusable. *)
let read_frame fd =
  let hdr = Bytes.create 4 in
  if not (read_exactly fd hdr 0 4) then None
  else
    let n = be32 (Bytes.unsafe_to_string hdr) 0 in
    if n < 0 || n > max_frame then None
    else
      let body = Bytes.create n in
      if not (read_exactly fd body 0 n) then None
      else
        match Json.parse (Bytes.unsafe_to_string body) with
        | doc -> Some doc
        | exception Json.Parse_error _ -> None

(* Whole-string write for framing that must not tear. The descriptor
   may have been marked nonblocking by someone else (the coordinator
   sets O_NONBLOCK on its pipe ends, and status flags travel with the
   open file description), so a full pipe can surface as
   [EAGAIN]/[EWOULDBLOCK] mid-frame — wait for writability and resume
   at the same offset instead of dropping the tail. *)
let rec write_all fd s off =
  if off < String.length s then
    match Unix.write_substring fd s off (String.length s - off) with
    | n -> write_all fd s (off + n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (match Unix.select [] [ fd ] [] 1.0 with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      write_all fd s off

let input_ready fd =
  match Unix.select [ fd ] [] [] 0. with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* Incremental frame reader for select-driven reads: bytes accumulate
   in [ibuf] and complete frames are peeled off as they arrive. *)
type instream = { ibuf : Buffer.t }

let extract_frames st =
  let data = Buffer.contents st.ibuf in
  let len = String.length data in
  let pos = ref 0 in
  let out = ref [] in
  let continue = ref true in
  while !continue do
    if len - !pos >= 4 then begin
      let n = be32 data !pos in
      if n < 0 || n > max_frame then begin
        (* Poisoned stream: drop everything; the caller sees EOF-like
           silence and the peer's exit handles the rest. *)
        pos := len;
        continue := false
      end
      else if len - !pos - 4 >= n then begin
        (match Json.parse (String.sub data (!pos + 4) n) with
        | doc -> out := doc :: !out
        | exception Json.Parse_error _ -> ());
        pos := !pos + 4 + n
      end
      else continue := false
    end
    else continue := false
  done;
  Buffer.clear st.ibuf;
  Buffer.add_substring st.ibuf data !pos (len - !pos);
  List.rev !out

(* Outgoing byte queue for one descriptor: strings are pushed whole
   and written as far as the fd will take them. *)
type outstream = { oq : string Queue.t; mutable off : int }

let outstream () = { oq = Queue.create (); off = 0 }
let out_pending os = not (Queue.is_empty os.oq)
let out_push os s = Queue.add s os.oq

(* Write until the queue drains or the fd blocks. Raises on hard
   write errors (EPIPE: the peer is gone). *)
let out_write fd os =
  try
    while not (Queue.is_empty os.oq) do
      let s = Queue.peek os.oq in
      let n = Unix.write_substring fd s os.off (String.length s - os.off) in
      if os.off + n = String.length s then begin
        ignore (Queue.pop os.oq);
        os.off <- 0
      end
      else os.off <- os.off + n
    done
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()

(* --- worker process ----------------------------------------------------- *)

(* The spawn spec a worker finds in [DISESIM_SERVE_WORKER]:
   {"shard":S,"workers":N,"cache":DIR|null,
    "jit":{"enabled":B,"threshold":K}?,"config":SERVE_CONFIG} *)

type wspec = {
  w_shard : int;
  w_cache : string option;
  w_jit : (bool * int) option;
  w_cfg : Serve_config.t;
}

let wspec_of_json doc =
  let ( let* ) = Result.bind in
  let err msg = Error (Diag.Parse { source = env_var; line = 0; msg }) in
  let* w_shard =
    match Json.member "shard" doc with
    | Some (Json.Int i) when i >= 0 -> Ok i
    | _ -> err "missing shard"
  in
  let* w_cache =
    match Json.member "cache" doc with
    | Some (Json.String d) -> Ok (Some d)
    | Some Json.Null | None -> Ok None
    | Some _ -> err "cache must be a string or null"
  in
  let* w_jit =
    match Json.member "jit" doc with
    | None -> Ok None
    | Some j -> (
      match (Json.member "enabled" j, Json.member "threshold" j) with
      | Some (Json.Bool e), Some (Json.Int k) -> Ok (Some (e, k))
      | _ -> err "malformed jit member")
  in
  let* w_cfg =
    match Json.member "config" doc with
    | Some c -> Serve_config.of_json c
    | None -> err "missing config"
  in
  Ok { w_shard; w_cache; w_jit; w_cfg }

let shard_journal_dir ~root shard =
  Filename.concat root (Printf.sprintf "worker-%d" shard)

let tag_name = function `Hit -> "hit" | `Fresh -> "fresh" | `Error _ -> "error"

(* One decoded job frame, ready for the execution pipeline the
   in-process server uses ([Server.run_parsed]). *)
type wjob = { j_seq : int; j_enq : float; j_doc : Json.t; j_parsed : Server.parsed }

let decode_job doc =
  let id = Option.value (Json.member "id" doc) ~default:Json.Null in
  let j_seq =
    match Json.member "seq" doc with Some (Json.Int s) -> s | _ -> -1
  in
  let j_enq =
    match Json.member "enq" doc with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> Unix.gettimeofday ()
  in
  let j_doc = Option.value (Json.member "req" doc) ~default:Json.Null in
  let req =
    match Json.member "req" doc with
    | Some r -> Request.of_json r
    | None ->
      Error (Diag.Parse { source = "serve-worker"; line = 0; msg = "job frame without req" })
  in
  {
    j_seq;
    j_enq;
    j_doc;
    j_parsed = { Server.id; version = Server.protocol_version; tenant = None; req };
  }

(* Journal entries are the request document with the id merged back
   in — the same shape the single-process server journals, so
   [Server.replay_journal] replays either. *)
let worker_journal_doc wj =
  match wj.j_doc with
  | Json.Obj fields -> Json.Obj (("id", wj.j_parsed.Server.id) :: fields)
  | j -> j

(* [counters0]/[metrics0] are snapshotted by the caller {e before}
   journal replay, so replayed-job counts ship in the summary delta
   and surface in the coordinator's merged counters. *)
let worker_serve spec journal ~counters0 ~metrics0 =
  let cfg = spec.w_cfg in
  let chaos = Resilience.Chaos.of_env () in
  let emit_frame doc = write_all Unix.stdout (frame_string doc) 0 in
  let run_batch batch =
    let batch = Array.of_list batch in
    let seqs =
      match journal with
      | None -> [||]
      | Some j ->
        let seqs =
          Array.map
            (fun wj ->
              match wj.j_parsed.Server.req with
              | Ok _ -> Some (Resilience.Journal.append_begin j (worker_journal_doc wj))
              | Error _ -> None)
            batch
        in
        Resilience.Journal.sync j;
        seqs
    in
    let outcomes =
      Pool.run_outcomes ~jobs:cfg.Serve_config.jobs
        ~probe:(fun _i ~domain:_ dur -> Metrics.Histogram.observe_s h_execute dur)
        (Array.map
           (fun wj () ->
             Server.run_parsed ~chaos ~deadline_ms:cfg.Serve_config.deadline_ms
               ~enqueued_at:wj.j_enq wj.j_parsed)
           batch)
    in
    Array.iteri
      (fun i outcome ->
        let resp, tag =
          match outcome with
          | Ok r -> r
          | Error (e, bt) -> Server.isolated_response batch.(i).j_parsed.Server.id e bt
        in
        let kind = match tag with `Error k -> [ ("kind", Json.String k) ] | _ -> [] in
        emit_frame
          (Json.Obj
             ([
                ("op", Json.String "resp");
                ("seq", Json.Int batch.(i).j_seq);
                ("tag", Json.String (tag_name tag));
              ]
             @ kind
             @ [ ("resp", resp) ])))
      outcomes;
    match journal with
    | None -> ()
    | Some j ->
      Array.iter
        (function Some s -> Resilience.Journal.mark_done j s | None -> ())
        seqs;
      Resilience.Journal.sync j
  in
  (* Frames arrive one at a time; batch up whatever is already queued
     (up to [queue]) so the domain pool fans out instead of running
     jobs one by one. *)
  let rec loop () =
    match read_frame Unix.stdin with
    | None -> ()
    | Some doc -> (
      match Json.member "op" doc with
      | Some (Json.String "stop") -> ()
      | Some (Json.String "job") ->
        let batch = ref [ decode_job doc ] in
        let count = ref 1 in
        let after = ref `Continue in
        while
          !after = `Continue && !count < cfg.Serve_config.queue
          && input_ready Unix.stdin
        do
          match read_frame Unix.stdin with
          | None -> after := `Eof
          | Some doc -> (
            match Json.member "op" doc with
            | Some (Json.String "stop") -> after := `Stop
            | Some (Json.String "job") ->
              batch := decode_job doc :: !batch;
              incr count
            | _ -> ())
        done;
        run_batch (List.rev !batch);
        if !after = `Continue then loop ()
      | _ -> loop ())
  in
  loop ();
  let counter_deltas =
    List.map
      (fun (k, v) ->
        let v0 = Option.value (List.assoc_opt k counters0) ~default:0 in
        (k, Json.Int (v - v0)))
      (Resilience.Counters.snapshot ())
  in
  emit_frame
    (Json.Obj
       [
         ("op", Json.String "summary");
         ("shard", Json.Int spec.w_shard);
         ("counters", Json.Obj counter_deltas);
         ("metrics", Metrics.to_json (Metrics.delta ~since:metrics0 (Metrics.snapshot ())));
       ])

let worker_main spec_text =
  let fail d =
    Format.eprintf "disesim serve worker: %a@." Diag.pp d;
    Diag.exit_code d
  in
  match Json.parse spec_text with
  | exception Json.Parse_error msg ->
    fail (Diag.Parse { source = env_var; line = 0; msg })
  | doc -> (
    match wspec_of_json doc with
    | Error d -> fail d
    | Ok spec -> (
      (* The coordinator orchestrates shutdown with stop frames; a
         terminal's Ctrl-C reaches the whole process group, and
         workers must let the coordinator drain them instead of dying
         mid-batch. *)
      (try
         ignore (Sys.signal Sys.sigint Sys.Signal_ignore);
         ignore (Sys.signal Sys.sigterm Sys.Signal_ignore)
       with Invalid_argument _ | Sys_error _ -> ());
      (match spec.w_jit with
      | None -> ()
      | Some (enabled, threshold) -> Request.set_default_jit ~enabled ~threshold);
      match
        match spec.w_cache with
        | None -> Request.set_disk_cache None
        | Some dir -> Request.set_disk_cache (Some (Cache.create ~dir))
      with
      | exception Cache.Diag_error d -> fail d
      | () ->
        let cfg = spec.w_cfg in
        let counters0 = Resilience.Counters.snapshot () in
        let metrics0 = Metrics.snapshot () in
        if cfg.Serve_config.breaker > 0 then
          Request.set_cache_breaker
            (Some
               (Resilience.Breaker.create ~threshold:cfg.Serve_config.breaker
                  ~cooldown_s:(float_of_int cfg.Serve_config.breaker_cooldown_ms /. 1000.)
                  ()));
        let journal =
          match cfg.Serve_config.journal with
          | None -> None
          | Some root ->
            let dir = shard_journal_dir ~root spec.w_shard in
            (* Same startup sequence as the single-process CLI: replay
               what a crash interrupted, then start a fresh journal.
               The replay line on (inherited) stderr is the operator's
               crash-recovery audit trail. *)
            let n = Server.replay_journal ~jobs:cfg.Serve_config.jobs ~dir () in
            if n > 0 then
              Printf.eprintf "disesim serve: replayed %d interrupted job%s from %s\n%!"
                n (if n = 1 then "" else "s") dir;
            Resilience.Journal.clear ~dir;
            Some (Resilience.Journal.open_ ~dir)
        in
        let finish () =
          match journal with None -> () | Some j -> Resilience.Journal.close j
        in
        (match worker_serve spec journal ~counters0 ~metrics0 with
        | () -> finish ()
        | exception e ->
          finish ();
          Format.eprintf "disesim serve worker: fatal: %s@." (Printexc.to_string e);
          exit 7);
        0))

let worker_child_main () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some spec ->
    let code = try worker_main spec with _ -> 7 in
    (* Frames go straight through [Unix.write]; nothing buffered needs
       flushing, and skipping at_exit keeps the host binary's handlers
       out of the worker's teardown. *)
    Unix._exit code

(* --- coordinator -------------------------------------------------------- *)

type worker = {
  shard : int;
  mutable pid : int;
  mutable to_w : Unix.file_descr;
  mutable from_w : Unix.file_descr;
  mutable wout : outstream;
  win : instream;
  (* seq -> (frame bytes, client id, quiet?, completion); the frame is
     kept verbatim so a respawned worker can be handed it again. Quiet
     jobs are internal resubmissions (startup journal replay) whose
     responses must not count as client traffic. *)
  inflight :
    (int, string * Json.t * bool * (tag:string -> Json.t -> unit)) Hashtbl.t;
  mutable served : int;
  mutable hits : int;
  mutable misses : int;
  mutable errs : int;
  mutable restarts : int;
  mutable alive : bool;
  mutable got_summary : bool;
}

type t = {
  cfg : Serve_config.t;
  cache_dir : string option;
  jit : (bool * int) option;
  nonblocking : bool;
  ring : Shard.t;
  mutable workers : worker array;
  mutable next_seq : int;
  stop : Server.Stop.t;
  manifest : Manifest.t option;
  on_spawn : (shard:int -> pid:int -> unit) option;
  counters0 : (string * int) list;
  metrics0 : Metrics.snapshot;
  mutable summaries : (int * Json.t) list;
  mutable shutting_down : bool;
  (* stream-level tallies (both modes) *)
  mutable s_served : int;
  mutable s_errors : int;
  mutable s_hits : int;
  mutable s_timeouts : int;
  mutable s_shed : int;
  mutable s_isolated : int;
  (* live admission state (socket mode) *)
  mutable inflight_work : int;
  tenant_inflight : (string, int) Hashtbl.t;
  scratch : Bytes.t;
}

let worker_spec t shard =
  let cfg =
    (* Workers must not recurse into coordinators or double-write the
       manifest; everything else (jobs, queue, deadline, journal root,
       breaker) is theirs. *)
    { t.cfg with Serve_config.workers = 0; manifest = None }
  in
  Json.to_string
    (Json.Obj
       ([
          ("shard", Json.Int shard);
          ("workers", Json.Int (Array.length t.workers));
          ( "cache",
            match t.cache_dir with
            | None -> Json.Null
            | Some d -> Json.String d );
        ]
       @ (match t.jit with
         | None -> []
         | Some (enabled, threshold) ->
           [
             ( "jit",
               Json.Obj
                 [
                   ("enabled", Json.Bool enabled);
                   ("threshold", Json.Int threshold);
                 ] );
           ])
       @ [ ("config", Serve_config.to_json cfg) ]))

let spawn_env spec =
  let prefix = env_var ^ "=" in
  let kept =
    List.filter
      (fun s ->
        not
          (String.length s >= String.length prefix
          && String.sub s 0 (String.length prefix) = prefix))
      (Array.to_list (Unix.environment ()))
  in
  Array.of_list (kept @ [ prefix ^ spec ])

(* Spawn the worker process for [w.shard] and (re)wire its pipes. The
   child inherits stderr, so worker diagnostics (journal replay lines,
   isolation backtraces) land on the server's stderr like the
   single-process path. Pipe fds are created close-on-exec: the ends
   meant for the child are passed through [create_process_env]'s dup2
   (which clears the flag on the child's copies), and nothing leaks
   into sibling workers — vital, or a dead worker's pipe would never
   read EOF while a sibling still held its write end. *)
let spawn_into t w =
  let stdin_r, stdin_w = Unix.pipe ~cloexec:true () in
  let stdout_r, stdout_w = Unix.pipe ~cloexec:true () in
  let exe = Sys.executable_name in
  let pid =
    Unix.create_process_env exe [| exe |]
      (spawn_env (worker_spec t w.shard))
      stdin_r stdout_w Unix.stderr
  in
  Unix.close stdin_r;
  Unix.close stdout_w;
  if t.nonblocking then begin
    Unix.set_nonblock stdin_w;
    Unix.set_nonblock stdout_r
  end;
  w.pid <- pid;
  w.to_w <- stdin_w;
  w.from_w <- stdout_r;
  w.wout <- outstream ();
  Buffer.clear w.win.ibuf;
  w.alive <- true;
  w.got_summary <- false;
  (match t.on_spawn with None -> () | Some f -> f ~shard:w.shard ~pid)

let rec reap pid =
  match Unix.waitpid [] pid with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | _ -> ()

let stop_frame = lazy (frame_string (Json.Obj [ ("op", Json.String "stop") ]))

let max_respawns = 100

(* A worker died with work outstanding. Reap it, spawn a replacement
   on the same shard, and resubmit every inflight frame verbatim: the
   replacement first replays its journal shard (re-deriving results
   into the shared content-addressed cache), so resubmitted jobs that
   had already run come back as cache hits — crash recovery is
   idempotent end to end. During shutdown there is no respawn; any
   stragglers are answered with an internal error instead. *)
let handle_crash t w reason =
  (try Unix.close w.to_w with Unix.Unix_error _ -> ());
  (try Unix.close w.from_w with Unix.Unix_error _ -> ());
  w.alive <- false;
  reap w.pid;
  if t.shutting_down then begin
    let pending =
      Hashtbl.fold (fun seq v acc -> (seq, v) :: acc) w.inflight []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    Hashtbl.reset w.inflight;
    List.iter
      (fun (_, (_, id, _, complete)) ->
        complete ~tag:"error"
          (Server.error_response id
             (Diag.Internal "worker exited during shutdown")))
      pending
  end
  else begin
    Format.eprintf
      "disesim serve: worker %d (pid %d) exited unexpectedly (%s); respawning@."
      w.shard w.pid reason;
    w.restarts <- w.restarts + 1;
    if w.restarts > max_respawns then
      raise
        (Cache.Diag_error
           (Diag.Internal
              (Printf.sprintf "worker %d keeps crashing (%d respawns); giving up"
                 w.shard w.restarts)));
    spawn_into t w;
    let pending =
      Hashtbl.fold (fun seq (fr, _, _, _) acc -> (seq, fr) :: acc) w.inflight []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter (fun (_, fr) -> out_push w.wout fr) pending
  end

(* Route by result-cache key: identical requests always reach the
   same worker, whose memory and journal shard own that slice of the
   keyspace. *)
let submit ?(quiet = false) t (p : Server.parsed) req ~enq ~complete =
  match p.Server.req with
  | Error _ -> invalid_arg "Coordinator.submit: unrunnable job"
  | Ok _ ->
    let w = t.workers.(Shard.route t.ring (Request.key req)) in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let fr =
      frame_string
        (Json.Obj
           [
             ("op", Json.String "job");
             ("seq", Json.Int seq);
             ("enq", Json.Float enq);
             ("id", p.Server.id);
             ("req", Request.to_json req);
           ])
    in
    Hashtbl.replace w.inflight seq (fr, p.Server.id, quiet, complete);
    out_push w.wout fr

(* Startup crash recovery across resharding. Per-shard journals are
   named [<root>/worker-<shard>] after the ring that {e wrote} them;
   restarting with a different [--workers] count would otherwise
   replay each file on whichever worker happens to own that name now
   (dropping shards past the new count outright) while the live ring
   routes by request key. So the coordinator drains every shard
   journal itself before the workers start — whatever the previous
   tier's worker count was — and resubmits the entries through the
   {e current} ring via {!submit}, where they are journaled afresh by
   their new owners. Workers keep their own startup replay for the
   mid-session respawn path, where shard ownership cannot have
   changed; they find empty directories here. *)
let shard_of_journal_dirname name =
  let prefix = "worker-" in
  let plen = String.length prefix in
  if String.length name > plen && String.sub name 0 plen = prefix then
    int_of_string_opt (String.sub name plen (String.length name - plen))
  else None

let drain_orphan_journals root =
  let names = match Sys.readdir root with
    | names -> names
    | exception Sys_error _ -> [||]
  in
  Array.sort compare names;
  Array.to_list names
  |> List.filter_map (fun name ->
         match shard_of_journal_dirname name with
         | None -> None
         | Some _ -> (
           let dir = Filename.concat root name in
           match Resilience.Journal.pending ~dir with
           | [] -> None
           | pending ->
             Resilience.Journal.clear ~dir;
             Some (dir, List.map snd pending)))

let resubmit_journal_docs t drained =
  List.iter
    (fun (dir, docs) ->
      let n = List.length docs in
      Printf.eprintf "disesim serve: replayed %d interrupted job%s from %s\n%!"
        n (if n = 1 then "" else "s") dir;
      Resilience.Counters.add Resilience.Counters.journal_replayed n;
      List.iter
        (fun doc ->
          match Request.of_json doc with
          | Error d ->
            Format.eprintf
              "disesim serve: journal entry is not replayable: %s@."
              (Diag.to_string d)
          | Ok req ->
            let id = Option.value (Json.member "id" doc) ~default:Json.Null in
            let p =
              { Server.id; version = Server.protocol_version; tenant = None;
                req = Ok req }
            in
            submit ~quiet:true t p req ~enq:(Unix.gettimeofday ())
              ~complete:(fun ~tag:_ _ -> ()))
        docs)
    drained

let create ?stop ?manifest ?on_spawn ?cache_dir ?jit ~nonblocking cfg =
  let workers_n = max 1 cfg.Serve_config.workers in
  let cfg = { cfg with Serve_config.workers = workers_n } in
  let t =
    {
      cfg;
      cache_dir;
      jit;
      nonblocking;
      ring = Shard.ring ~workers:workers_n ();
      workers = [||];
      next_seq = 0;
      stop = (match stop with Some s -> s | None -> Server.Stop.create ());
      manifest;
      on_spawn;
      counters0 = Resilience.Counters.snapshot ();
      metrics0 = Metrics.snapshot ();
      summaries = [];
      shutting_down = false;
      s_served = 0;
      s_errors = 0;
      s_hits = 0;
      s_timeouts = 0;
      s_shed = 0;
      s_isolated = 0;
      inflight_work = 0;
      tenant_inflight = Hashtbl.create 8;
      scratch = Bytes.create 65536;
    }
  in
  t.workers <-
    Array.init workers_n (fun shard ->
        {
          shard;
          pid = -1;
          to_w = Unix.stdin;
          from_w = Unix.stdin;
          wout = outstream ();
          win = { ibuf = Buffer.create 4096 };
          inflight = Hashtbl.create 32;
          served = 0;
          hits = 0;
          misses = 0;
          errs = 0;
          restarts = 0;
          alive = false;
          got_summary = false;
        });
  (* Drain pre-crash journal shards before any worker starts (so their
     own startup replay cannot race over the same files), spawn the
     tier, then resubmit the drained entries through the current
     ring. *)
  let drained =
    match cfg.Serve_config.journal with
    | None -> []
    | Some root -> drain_orphan_journals root
  in
  Array.iter (fun w -> spawn_into t w) t.workers;
  resubmit_journal_docs t drained;
  t

(* Stream-level outcome bookkeeping — the same classification
   [Server.serve_channel] applies, including the resilience-counter
   bumps (workers don't bump timeout/shed counters themselves, so the
   merged counter deltas count each event exactly once). *)
let tally t ~tag ~kind =
  t.s_served <- t.s_served + 1;
  match tag with
  | "hit" -> t.s_hits <- t.s_hits + 1
  | "fresh" -> ()
  | _ -> (
    t.s_errors <- t.s_errors + 1;
    match kind with
    | Some "timeout" ->
      t.s_timeouts <- t.s_timeouts + 1;
      Resilience.Counters.incr Resilience.Counters.timeouts
    | Some "overloaded" ->
      t.s_shed <- t.s_shed + 1;
      Resilience.Counters.incr Resilience.Counters.shed
    | Some "internal" -> t.s_isolated <- t.s_isolated + 1
    | _ -> ())

let dispatch t w doc =
  match Json.member "op" doc with
  | Some (Json.String "resp") -> (
    let seq = match Json.member "seq" doc with Some (Json.Int s) -> s | _ -> -1 in
    match Hashtbl.find_opt w.inflight seq with
    | None -> () (* duplicate after a respawn race; first answer won *)
    | Some (_, id, quiet, complete) ->
      Hashtbl.remove w.inflight seq;
      let tag =
        match Json.member "tag" doc with Some (Json.String s) -> s | _ -> "error"
      in
      let kind =
        match Json.member "kind" doc with Some (Json.String s) -> Some s | _ -> None
      in
      if not quiet then begin
        w.served <- w.served + 1;
        match tag with
        | "hit" -> w.hits <- w.hits + 1
        | "fresh" -> w.misses <- w.misses + 1
        | _ -> w.errs <- w.errs + 1
      end;
      let resp =
        match Json.member "resp" doc with
        | Some r -> r
        | None ->
          Server.error_response id (Diag.Internal "worker response without body")
      in
      if not quiet then begin
        tally t ~tag ~kind;
        complete ~tag resp
      end)
  | Some (Json.String "summary") ->
    w.got_summary <- true;
    t.summaries <- (w.shard, doc) :: t.summaries
  | _ -> ()

(* Pump one readable worker pipe: pull whatever bytes are there,
   dispatch the complete frames, respawn on EOF. *)
let pump_worker t w =
  match Unix.read w.from_w t.scratch 0 (Bytes.length t.scratch) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error (e, _, _) ->
    handle_crash t w (Unix.error_message e)
  | 0 -> handle_crash t w "pipe closed"
  | n ->
    Buffer.add_subbytes w.win.ibuf t.scratch 0 n;
    List.iter (dispatch t w) (extract_frames w.win)

let flush_worker t w =
  if w.alive && out_pending w.wout then
    match out_write w.to_w w.wout with
    | () -> ()
    | exception Unix.Unix_error (_, _, _) -> handle_crash t w "write failed"

(* --- merged summary ----------------------------------------------------- *)

let sum_counters base extra =
  List.map
    (fun (k, v) ->
      match List.assoc_opt k extra with
      | Some (Json.Int e) -> (k, v + e)
      | _ -> (k, v))
    base

let merged_summary t =
  let local_counters =
    List.map
      (fun (k, v) ->
        let v0 = Option.value (List.assoc_opt k t.counters0) ~default:0 in
        (k, v - v0))
      (Resilience.Counters.snapshot ())
  in
  let counters =
    List.fold_left
      (fun acc (_, doc) ->
        match Json.member "counters" doc with
        | Some (Json.Obj kvs) -> sum_counters acc kvs
        | _ -> acc)
      local_counters t.summaries
  in
  let metrics =
    List.fold_left
      (fun acc (_, doc) ->
        match Json.member "metrics" doc with
        | Some m -> Metrics.merge acc (Metrics.of_json m)
        | None -> acc)
      (Metrics.delta ~since:t.metrics0 (Metrics.snapshot ()))
      t.summaries
  in
  let workers_json =
    Array.to_list
      (Array.map
         (fun w ->
           Json.Obj
             [
               ("shard", Json.Int w.shard);
               ("pid", Json.Int w.pid);
               ("served", Json.Int w.served);
               ("cache_hits", Json.Int w.hits);
               ("cache_misses", Json.Int w.misses);
               ("errors", Json.Int w.errs);
               ("restarts", Json.Int w.restarts);
             ])
         t.workers)
  in
  let summary =
    {
      Server.served = t.s_served;
      errors = t.s_errors;
      cache_hits = t.s_hits;
      timeouts = t.s_timeouts;
      shed = t.s_shed;
      isolated = t.s_isolated;
    }
  in
  let fields =
    [
      ("record", Json.String "serve_summary");
      ("served", Json.Int t.s_served);
      ("errors", Json.Int t.s_errors);
      ("cache_hits", Json.Int t.s_hits);
      ("timeouts", Json.Int t.s_timeouts);
      ("shed", Json.Int t.s_shed);
      ("isolated", Json.Int t.s_isolated);
      ("workers", Json.List workers_json);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters));
      ("metrics", Metrics.to_json metrics);
    ]
  in
  (match t.manifest with None -> () | Some m -> Manifest.emit m fields);
  summary

(* Graceful tier teardown: queue a stop frame for every live worker,
   drain their summary frames (collecting late responses on the way),
   then reap. A worker that neither summarizes nor exits within the
   deadline is killed — shutdown must terminate even if a job is
   wedged. *)
let shutdown t =
  t.shutting_down <- true;
  Array.iter
    (fun w -> if w.alive then out_push w.wout (Lazy.force stop_frame))
    t.workers;
  let deadline = Unix.gettimeofday () +. 10. in
  let outstanding () =
    Array.exists
      (fun w -> w.alive && (not w.got_summary || out_pending w.wout))
      t.workers
  in
  let rec drain () =
    if outstanding () && Unix.gettimeofday () < deadline then begin
      Array.iter (fun w -> flush_worker t w) t.workers;
      let rs =
        Array.to_list t.workers
        |> List.filter_map (fun w ->
               if w.alive && not w.got_summary then Some w.from_w else None)
      in
      let ws =
        Array.to_list t.workers
        |> List.filter_map (fun w ->
               if w.alive && out_pending w.wout then Some w.to_w else None)
      in
      if rs <> [] || ws <> [] then begin
        (match Unix.select rs ws [] 0.25 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | rready, _, _ ->
          Array.iter
            (fun w ->
              if w.alive && List.mem w.from_w rready then pump_worker t w)
            t.workers);
        drain ()
      end
    end
  in
  drain ();
  Array.iter
    (fun w ->
      if w.alive then begin
        if not w.got_summary then (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try Unix.close w.to_w with Unix.Unix_error _ -> ());
        (try Unix.close w.from_w with Unix.Unix_error _ -> ());
        reap w.pid;
        w.alive <- false
      end)
    t.workers;
  merged_summary t

(* --- channel mode ------------------------------------------------------- *)

(* Batch-synchronous front end over one JSONL stream: read a chunk,
   shed/route/submit, drain until every slot has its response, emit in
   input order — the multi-process analogue of
   [Server.serve_channel], byte-compatible on the wire. *)
let channel_loop t ic oc =
  let cfg = t.cfg in
  let lineno = ref 0 in
  let rec drain_until done_ =
    if not (done_ ()) then begin
      Array.iter (fun w -> flush_worker t w) t.workers;
      let rs =
        Array.to_list t.workers
        |> List.filter_map (fun w -> if w.alive then Some w.from_w else None)
      in
      (match Unix.select rs [] [] 1.0 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | rready, _, _ ->
        Array.iter
          (fun w -> if w.alive && List.mem w.from_w rready then pump_worker t w)
          t.workers);
      drain_until done_
    end
  in
  let rec loop () =
    if not (Server.Stop.signalled t.stop) then
      match Server.read_chunk ~stop:t.stop ic ~lineno cfg.Serve_config.queue with
      | None -> ()
      | Some chunk ->
        let chunk = Server.admit cfg chunk in
        let n = Array.length chunk in
        let responses = Array.make n None in
        let outstanding = ref 0 in
        let enq = Unix.gettimeofday () in
        Array.iteri
          (fun i p ->
            match p.Server.req with
            | Error d ->
              tally t ~tag:"error" ~kind:(Some (Diag.category d));
              responses.(i) <- Some (Server.error_response p.Server.id d)
            | Ok req ->
              incr outstanding;
              submit t p req ~enq ~complete:(fun ~tag:_ resp ->
                  responses.(i) <- Some resp;
                  decr outstanding))
          chunk;
        drain_until (fun () -> !outstanding = 0);
        Array.iter
          (fun r ->
            output_string oc (Json.to_string (Option.get r));
            output_char oc '\n')
          responses;
        flush oc;
        if n = cfg.Serve_config.queue then loop ()
  in
  loop ()

let run_channel ?stop ?manifest ?on_spawn ?cache_dir ?jit cfg ic oc =
  let t = create ?stop ?manifest ?on_spawn ?cache_dir ?jit ~nonblocking:false cfg in
  match channel_loop t ic oc with
  | () -> shutdown t
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    ignore (shutdown t);
    Printexc.raise_with_backtrace e bt

(* --- socket mode: the async front end ----------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  cbuf : Buffer.t;  (* partial input line *)
  mutable oversized : bool;  (* discarding an over-long line's tail *)
  cout : outstream;
  mutable lineno : int;
  mutable next_slot : int;
  mutable next_emit : int;
  ready : (int, Json.t) Hashtbl.t;
  (* slot -> admission release for jobs currently in flight; drained
     eagerly when the connection dies so a failed client cannot pin
     its tenant's quota (or the shed budget) until its jobs finish. *)
  releases : (int, unit -> unit) Hashtbl.t;
  mutable pending : int;
  mutable eof : bool;
  mutable closed : bool;
  mutable cserved : int;
  mutable cerrors : int;
  mutable chits : int;
}

let conn_tally c ~tag =
  c.cserved <- c.cserved + 1;
  match tag with
  | "hit" -> c.chits <- c.chits + 1
  | "fresh" -> ()
  | _ -> c.cerrors <- c.cerrors + 1

(* Complete one slot and flush the in-order prefix to the
   connection's output queue. A closed connection still completes
   (admission state must be released) but the response is dropped. *)
let finish_slot c slot resp =
  c.pending <- c.pending - 1;
  if not c.closed then begin
    Hashtbl.replace c.ready slot resp;
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt c.ready c.next_emit with
      | None -> continue := false
      | Some r ->
        Hashtbl.remove c.ready c.next_emit;
        out_push c.cout (Json.to_string r ^ "\n");
        c.next_emit <- c.next_emit + 1
    done
  end

(* Live-window admission, the event-loop counterpart of
   [Server.admit]: the same policies (per-tenant quota, then the
   cumulative [dyn_target] budget) applied against what is currently
   in flight across all connections rather than within one chunk. *)
let admit_live t (p : Server.parsed) req =
  let cfg = t.cfg in
  let tenant = Option.value p.Server.tenant ~default:"" in
  let quota_ok =
    match cfg.Serve_config.tenant_quota with
    | None -> Ok ()
    | Some q ->
      let q = max 1 q in
      let n = Option.value (Hashtbl.find_opt t.tenant_inflight tenant) ~default:0 in
      if n >= q then
        Error
          (Diag.Overloaded
             (Printf.sprintf
                "tenant quota: %s already has %d jobs in flight (quota %d)"
                (if tenant = "" then "the anonymous tenant"
                 else Printf.sprintf "tenant %S" tenant)
                n q))
      else Ok ()
  in
  match quota_ok with
  | Error d -> Error d
  | Ok () -> (
    let w = req.Request.dyn_target in
    match cfg.Serve_config.shed_above with
    | Some hw when t.inflight_work > 0 && t.inflight_work + w > hw ->
      Error
        (Diag.Overloaded
           (Printf.sprintf
              "load shed: job of %d dynamic instructions would push the \
               in-flight work past the high-water mark of %d"
              w hw))
    | _ ->
      Hashtbl.replace t.tenant_inflight tenant
        (Option.value (Hashtbl.find_opt t.tenant_inflight tenant) ~default:0 + 1);
      t.inflight_work <- t.inflight_work + w;
      (* Idempotent: a dead connection's releases run eagerly from
         [fail_conn] and again when the worker's response arrives. *)
      let released = ref false in
      Ok
        (fun () ->
          if not !released then begin
            released := true;
            t.inflight_work <- t.inflight_work - w;
            match Hashtbl.find_opt t.tenant_inflight tenant with
            | Some 1 | None -> Hashtbl.remove t.tenant_inflight tenant
            | Some n -> Hashtbl.replace t.tenant_inflight tenant (n - 1)
          end))

let handle_parsed t c slot (p : Server.parsed) =
  let direct d =
    tally t ~tag:"error" ~kind:(Some (Diag.category d));
    conn_tally c ~tag:"error";
    finish_slot c slot (Server.error_response p.Server.id d)
  in
  match p.Server.req with
  | Error d -> direct d
  | Ok req -> (
    match admit_live t p req with
    | Error d -> direct d
    | Ok release ->
      Hashtbl.replace c.releases slot release;
      submit t p req ~enq:(Unix.gettimeofday ()) ~complete:(fun ~tag resp ->
          Hashtbl.remove c.releases slot;
          release ();
          conn_tally c ~tag;
          finish_slot c slot resp))

let process_line t c line =
  c.lineno <- c.lineno + 1;
  if String.trim line <> "" then begin
    let slot = c.next_slot in
    c.next_slot <- slot + 1;
    c.pending <- c.pending + 1;
    handle_parsed t c slot (Server.parse_job ~lineno:c.lineno line)
  end

let oversized_slot t c =
  c.lineno <- c.lineno + 1;
  let slot = c.next_slot in
  c.next_slot <- slot + 1;
  c.pending <- c.pending + 1;
  handle_parsed t c slot (Server.oversized_line ~lineno:c.lineno)

(* Split freshly read bytes into lines, honoring the 1 MiB line bound
   the way [Server.read_raw_line] does: an over-long line is
   discarded up to its newline and costs one parse-error slot. *)
let feed_conn t c data =
  let len = String.length data in
  let start = ref 0 in
  for i = 0 to len - 1 do
    if data.[i] = '\n' then begin
      let seg = i - !start in
      if c.oversized then begin
        c.oversized <- false;
        oversized_slot t c
      end
      else if Buffer.length c.cbuf + seg > Server.max_line_bytes then begin
        Buffer.clear c.cbuf;
        oversized_slot t c
      end
      else begin
        let line = Buffer.contents c.cbuf ^ String.sub data !start seg in
        Buffer.clear c.cbuf;
        process_line t c line
      end;
      start := i + 1
    end
  done;
  if !start < len then
    if c.oversized then ()
    else if Buffer.length c.cbuf + (len - !start) > Server.max_line_bytes then begin
      Buffer.clear c.cbuf;
      c.oversized <- true
    end
    else Buffer.add_substring c.cbuf data !start (len - !start)

let run_socket ?stop ?manifest ?on_spawn ?cache_dir ?jit cfg ~path () =
  Server.with_sigpipe_ignored @@ fun () ->
  let sock = Server.listen_socket ~path in
  Unix.set_nonblock sock;
  (* Workers are spawned (and respawned) while connections are open;
     any fd not marked cloexec leaks into them. A worker holding a
     duplicate of a client's socket keeps that client from ever seeing
     EOF after the coordinator closes its copy. *)
  Unix.set_close_on_exec sock;
  let t = create ?stop ?manifest ?on_spawn ?cache_dir ?jit ~nonblocking:true cfg in
  let conns = ref [] in
  let next_cid = ref 0 in
  let close_conn c =
    if not c.closed then begin
      c.closed <- true;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      Format.eprintf
        "disesim serve: connection %d done: served %d job%s (%d error%s, %d \
         cache hit%s)@."
        c.cid c.cserved
        (if c.cserved = 1 then "" else "s")
        c.cerrors
        (if c.cerrors = 1 then "" else "s")
        c.chits
        (if c.chits = 1 then "" else "s")
    end
  in
  let fail_conn c reason =
    if not c.closed then begin
      Resilience.Counters.incr Resilience.Counters.conn_failures;
      Format.eprintf "disesim serve: connection %d failed (isolated): %s@."
        c.cid reason;
      c.closed <- true;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      (* The peer is gone for good (a half-closed client keeps its
         admission until each job completes; this path is hard
         failure), so holding quota for work whose answers can never
         be delivered would starve the tenant's later connections.
         Releases are idempotent, so the worker responses that still
         arrive for these slots release nothing twice. *)
      Hashtbl.iter (fun _ release -> release ()) c.releases;
      Hashtbl.reset c.releases
    end
  in
  let accept_all () =
    let continue = ref true in
    while !continue do
      match Unix.accept sock with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> continue := false
      | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "disesim serve: accept failed: %s@."
          (Unix.error_message e);
        continue := false
      | fd, _ ->
        Unix.set_nonblock fd;
        Unix.set_close_on_exec fd;
        let cid = !next_cid in
        incr next_cid;
        conns :=
          {
            fd;
            cid;
            cbuf = Buffer.create 256;
            oversized = false;
            cout = outstream ();
            lineno = 0;
            next_slot = 0;
            next_emit = 0;
            ready = Hashtbl.create 16;
            releases = Hashtbl.create 16;
            pending = 0;
            eof = false;
            closed = false;
            cserved = 0;
            cerrors = 0;
            chits = 0;
          }
          :: !conns
    done
  in
  let read_conn c =
    match Unix.read c.fd t.scratch 0 (Bytes.length t.scratch) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error (e, _, _) -> fail_conn c (Unix.error_message e)
    | 0 ->
      c.eof <- true;
      (* A trailing line without its newline still gets an answer,
         like the channel server's final partial line. *)
      if Buffer.length c.cbuf > 0 || c.oversized then begin
        if c.oversized then begin
          c.oversized <- false;
          oversized_slot t c
        end
        else begin
          let line = Buffer.contents c.cbuf in
          Buffer.clear c.cbuf;
          process_line t c line
        end
      end
    | n -> feed_conn t c (Bytes.sub_string t.scratch 0 n)
  in
  let write_conn c =
    match out_write c.fd c.cout with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) -> fail_conn c (Unix.error_message e)
  in
  let finally () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      let rec loop () =
        if Server.Stop.signalled t.stop then
          (* Graceful drain: no new reads; in-flight work completes
             and flushes, then the loop exits. *)
          List.iter (fun c -> c.eof <- true) !conns;
        List.iter
          (fun c ->
            if (not c.closed) && c.eof && c.pending = 0 && not (out_pending c.cout)
            then close_conn c)
          !conns;
        conns := List.filter (fun c -> not c.closed) !conns;
        if not (Server.Stop.signalled t.stop && !conns = []) then begin
          Array.iter (fun w -> flush_worker t w) t.workers;
          let stopping = Server.Stop.signalled t.stop in
          let rs =
            (if stopping then [] else [ sock ])
            @ List.filter_map
                (fun c ->
                  (* Per-connection backpressure: stop reading a
                     connection that already has [queue] jobs in
                     flight; bytes wait in the kernel buffer. *)
                  if (not c.eof) && c.pending < t.cfg.Serve_config.queue then
                    Some c.fd
                  else None)
                !conns
            @ (Array.to_list t.workers
              |> List.filter_map (fun w -> if w.alive then Some w.from_w else None))
          in
          let ws =
            List.filter_map
              (fun c -> if out_pending c.cout then Some c.fd else None)
              !conns
            @ (Array.to_list t.workers
              |> List.filter_map (fun w ->
                     if w.alive && out_pending w.wout then Some w.to_w else None))
          in
          (match Unix.select rs ws [] 0.25 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | rready, wready, _ ->
            if List.mem sock rready then accept_all ();
            Array.iter
              (fun w -> if w.alive && List.mem w.from_w rready then pump_worker t w)
              t.workers;
            List.iter
              (fun c -> if (not c.closed) && List.mem c.fd rready then read_conn c)
              !conns;
            Array.iter
              (fun w -> if w.alive && List.mem w.to_w wready then flush_worker t w)
              t.workers;
            List.iter
              (fun c -> if (not c.closed) && List.mem c.fd wready then write_conn c)
              !conns);
          loop ()
        end
      in
      loop ();
      shutdown t)
