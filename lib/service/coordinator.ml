module Json = Dise_telemetry.Json
module Manifest = Dise_telemetry.Manifest
module Metrics = Dise_telemetry.Metrics
module Diag = Dise_isa.Diag

let env_var = "DISESIM_SERVE_WORKER"

(* The coordinator executes nothing itself, so its latency instruments
   come from the workers; [serve_execute_ns] here is the same
   registry instrument the in-process server uses (make is
   idempotent), recorded inside each worker process. *)
let h_execute = Metrics.Histogram.make "serve_execute_ns"

(* Client-observed latency of every logical request the coordinator
   completes (enqueue to response, hedges and retries included). The
   supervision layer hedges against this instrument's p95. *)
let h_tier = Metrics.Histogram.make "tier_request_ns"

(* --- frame protocol ----------------------------------------------------- *)

(* Coordinator <-> worker pipes carry 4-byte big-endian length-prefixed
   JSON frames — self-delimiting (JSONL would re-parse request bodies
   to find boundaries) and safe against partial reads on nonblocking
   descriptors.

     C -> W   {"op":"job","seq":N,"enq":T,"id":ID,"req":REQUEST}
              {"op":"ping","t":N}
              {"op":"stop"}
              {"op":"stall","ms":M}        (chaos: sleep M ms)
              {"op":"chaos_torn","cut":K}  (chaos: tear a frame, die)
     W -> C   {"op":"hello","shard":S}     (first frame, always)
              {"op":"resp","seq":N,"tag":"hit"|"fresh"|"error",
               "kind":CATEGORY?,"resp":RESPONSE}
              {"op":"pong","t":N}
              {"op":"summary","shard":S,"counters":{..},"metrics":{..}}

   [seq] is coordinator-global and monotonic, so a respawned worker can
   be handed the same frame again without ambiguity. [ping] frames are
   the supervision heartbeat: a worker answers [pong] from its frame
   loop, so a worker wedged inside a batch stops answering — exactly
   the signal the health machine wants.

   [hello] synchronizes the stream: a worker is a re-exec of the host
   executable, and anything linked into that host may write banners to
   stdout during module initialization, before the worker hook runs
   (the test runner's property-test library prints its random seed).
   The coordinator discards bytes until it sees the exact framed hello
   for the expected shard; only after that does a malformed frame mean
   the stream is poisoned. *)

let max_frame = 8 * 1024 * 1024

let frame_string doc =
  let body = Json.to_string doc in
  let n = String.length body in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string body 0 b 4 n;
  Bytes.unsafe_to_string b

(* The framed hello for [shard], byte-exact on both sides: the worker
   writes it first, the coordinator scans for it to synchronize. *)
let hello_frame shard =
  frame_string
    (Json.Obj [ ("op", Json.String "hello"); ("shard", Json.Int shard) ])

(* Startup pollution beyond this and the worker is not speaking the
   protocol at all. *)
let hello_preamble_limit = 65536

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  if nn = 0 then Some 0 else go 0

let be32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

(* Blocking exact read; [false] on EOF (including EOF mid-item, which
   only a dying peer produces). *)
let rec read_exactly fd buf off len =
  if len = 0 then true
  else
    match Unix.read fd buf off len with
    | 0 -> false
    | n -> read_exactly fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      read_exactly fd buf off len

(* Blocking whole-frame read. [None] covers EOF and protocol
   corruption alike: in either case the peer is unusable. *)
let read_frame fd =
  let hdr = Bytes.create 4 in
  if not (read_exactly fd hdr 0 4) then None
  else
    let n = be32 (Bytes.unsafe_to_string hdr) 0 in
    if n < 0 || n > max_frame then None
    else
      let body = Bytes.create n in
      if not (read_exactly fd body 0 n) then None
      else
        match Json.parse (Bytes.unsafe_to_string body) with
        | doc -> Some doc
        | exception Json.Parse_error _ -> None

(* Whole-string write for framing that must not tear. The descriptor
   may have been marked nonblocking by someone else (the coordinator
   sets O_NONBLOCK on its pipe ends, and status flags travel with the
   open file description), so a full pipe can surface as
   [EAGAIN]/[EWOULDBLOCK] mid-frame — wait for writability and resume
   at the same offset instead of dropping the tail. *)
let rec write_all fd s off =
  if off < String.length s then
    match Unix.write_substring fd s off (String.length s - off) with
    | n -> write_all fd s (off + n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (match Unix.select [] [ fd ] [] 1.0 with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      write_all fd s off

let input_ready fd =
  match Unix.select [ fd ] [] [] 0. with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* Incremental frame reader for select-driven reads: bytes accumulate
   in [ibuf] and complete frames are peeled off as they arrive. *)
type instream = { ibuf : Buffer.t }

(* Peel complete frames off the buffer. The second component reports a
   poisoned stream — an impossible length prefix or a frame body that
   is not JSON. Framing never recovers from either (every subsequent
   byte boundary is a guess), so the caller must stop trusting the
   peer entirely: kill it, resubmit its inflight work, never parse the
   tail as data. *)
let extract_frames st =
  let data = Buffer.contents st.ibuf in
  let len = String.length data in
  let pos = ref 0 in
  let out = ref [] in
  let poisoned = ref false in
  let continue = ref true in
  while !continue do
    if len - !pos >= 4 then begin
      let n = be32 data !pos in
      if n < 0 || n > max_frame then begin
        pos := len;
        poisoned := true;
        continue := false
      end
      else if len - !pos - 4 >= n then begin
        (match Json.parse (String.sub data (!pos + 4) n) with
        | doc -> out := doc :: !out
        | exception Json.Parse_error _ -> poisoned := true);
        pos := !pos + 4 + n
      end
      else continue := false
    end
    else continue := false
  done;
  Buffer.clear st.ibuf;
  Buffer.add_substring st.ibuf data !pos (len - !pos);
  (List.rev !out, !poisoned)

(* Outgoing byte queue for one descriptor: strings are pushed whole
   and written as far as the fd will take them. *)
type outstream = { oq : string Queue.t; mutable off : int }

let outstream () = { oq = Queue.create (); off = 0 }
let out_pending os = not (Queue.is_empty os.oq)
let out_push os s = Queue.add s os.oq

(* Write until the queue drains or the fd blocks. Raises on hard
   write errors (EPIPE: the peer is gone). *)
let out_write fd os =
  try
    while not (Queue.is_empty os.oq) do
      let s = Queue.peek os.oq in
      let n = Unix.write_substring fd s os.off (String.length s - os.off) in
      if os.off + n = String.length s then begin
        ignore (Queue.pop os.oq);
        os.off <- 0
      end
      else os.off <- os.off + n
    done
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()

(* --- worker process ----------------------------------------------------- *)

(* The spawn spec a worker finds in [DISESIM_SERVE_WORKER]:
   {"shard":S,"workers":N,"cache":DIR|null,
    "jit":{"enabled":B,"threshold":K}?,"config":SERVE_CONFIG} *)

type wspec = {
  w_shard : int;
  w_cache : string option;
  w_jit : (bool * int) option;
  w_cfg : Serve_config.t;
}

let wspec_of_json doc =
  let ( let* ) = Result.bind in
  let err msg = Error (Diag.Parse { source = env_var; line = 0; msg }) in
  let* w_shard =
    match Json.member "shard" doc with
    | Some (Json.Int i) when i >= 0 -> Ok i
    | _ -> err "missing shard"
  in
  let* w_cache =
    match Json.member "cache" doc with
    | Some (Json.String d) -> Ok (Some d)
    | Some Json.Null | None -> Ok None
    | Some _ -> err "cache must be a string or null"
  in
  let* w_jit =
    match Json.member "jit" doc with
    | None -> Ok None
    | Some j -> (
      match (Json.member "enabled" j, Json.member "threshold" j) with
      | Some (Json.Bool e), Some (Json.Int k) -> Ok (Some (e, k))
      | _ -> err "malformed jit member")
  in
  let* w_cfg =
    match Json.member "config" doc with
    | Some c -> Serve_config.of_json c
    | None -> err "missing config"
  in
  Ok { w_shard; w_cache; w_jit; w_cfg }

let shard_journal_dir ~root shard =
  Filename.concat root (Printf.sprintf "worker-%d" shard)

let tag_name = function `Hit -> "hit" | `Fresh -> "fresh" | `Error _ -> "error"

(* One decoded job frame, ready for the execution pipeline the
   in-process server uses ([Server.run_parsed]). *)
type wjob = { j_seq : int; j_enq : float; j_doc : Json.t; j_parsed : Server.parsed }

let decode_job doc =
  let id = Option.value (Json.member "id" doc) ~default:Json.Null in
  let j_seq =
    match Json.member "seq" doc with Some (Json.Int s) -> s | _ -> -1
  in
  let j_enq =
    match Json.member "enq" doc with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> Unix.gettimeofday ()
  in
  let j_doc = Option.value (Json.member "req" doc) ~default:Json.Null in
  let req =
    match Json.member "req" doc with
    | Some r -> Request.of_json r
    | None ->
      Error (Diag.Parse { source = "serve-worker"; line = 0; msg = "job frame without req" })
  in
  {
    j_seq;
    j_enq;
    j_doc;
    j_parsed = { Server.id; version = Server.protocol_version; tenant = None; req };
  }

(* Journal entries are the request document with the id merged back
   in — the same shape the single-process server journals, so
   [Server.replay_journal] replays either. *)
let worker_journal_doc wj =
  match wj.j_doc with
  | Json.Obj fields -> Json.Obj (("id", wj.j_parsed.Server.id) :: fields)
  | j -> j

(* [counters0]/[metrics0] are snapshotted by the caller {e before}
   journal replay, so replayed-job counts ship in the summary delta
   and surface in the coordinator's merged counters. *)
let worker_serve spec journal ~counters0 ~metrics0 =
  let cfg = spec.w_cfg in
  let chaos = Resilience.Chaos.of_env () in
  let emit_frame doc = write_all Unix.stdout (frame_string doc) 0 in
  let run_batch batch =
    let batch = Array.of_list batch in
    let seqs =
      match journal with
      | None -> [||]
      | Some j ->
        let seqs =
          Array.map
            (fun wj ->
              match wj.j_parsed.Server.req with
              | Ok _ -> Some (Resilience.Journal.append_begin j (worker_journal_doc wj))
              | Error _ -> None)
            batch
        in
        Resilience.Journal.sync j;
        seqs
    in
    let outcomes =
      Pool.run_outcomes ~jobs:cfg.Serve_config.jobs
        ~probe:(fun _i ~domain:_ dur -> Metrics.Histogram.observe_s h_execute dur)
        (Array.map
           (fun wj () ->
             Server.run_parsed ~chaos ~deadline_ms:cfg.Serve_config.deadline_ms
               ~enqueued_at:wj.j_enq wj.j_parsed)
           batch)
    in
    Array.iteri
      (fun i outcome ->
        let resp, tag =
          match outcome with
          | Ok r -> r
          | Error (e, bt) -> Server.isolated_response batch.(i).j_parsed.Server.id e bt
        in
        let kind = match tag with `Error k -> [ ("kind", Json.String k) ] | _ -> [] in
        emit_frame
          (Json.Obj
             ([
                ("op", Json.String "resp");
                ("seq", Json.Int batch.(i).j_seq);
                ("tag", Json.String (tag_name tag));
              ]
             @ kind
             @ [ ("resp", resp) ])))
      outcomes;
    match journal with
    | None -> ()
    | Some j ->
      Array.iter
        (function Some s -> Resilience.Journal.mark_done j s | None -> ())
        seqs;
      Resilience.Journal.sync j
  in
  (* Supervision and chaos control frames, answered inline from the
     frame loop (a worker wedged inside a batch therefore stops
     ponging — the signal the coordinator's health machine reads). *)
  let handle_ctl doc op =
    match op with
    | "ping" ->
      emit_frame
        (Json.Obj
           [
             ("op", Json.String "pong");
             ("t", Option.value (Json.member "t" doc) ~default:Json.Null);
           ])
    | "stall" -> (
      (* chaos: wedge the frame loop for a while, like a gray-failing
         process that is alive but not making progress *)
      match Json.member "ms" doc with
      | Some (Json.Int ms) when ms > 0 -> Unix.sleepf (float_of_int ms /. 1000.)
      | _ -> ())
    | "chaos_torn" ->
      (* chaos: die mid-write. Emit the first [cut] bytes of a frame
         whose header promises 256 body bytes, then exit — exactly the
         torn tail a worker killed inside [write_all] leaves behind.
         [cut < 4] tears the header itself. *)
      let cut =
        match Json.member "cut" doc with Some (Json.Int c) -> c | _ -> 8
      in
      let promised = 256 in
      let full = Bytes.make (4 + promised) 'x' in
      Bytes.set full 0 '\000';
      Bytes.set full 1 '\000';
      Bytes.set full 2 '\001';
      Bytes.set full 3 '\000';
      let cut = max 1 (min cut (4 + promised - 1)) in
      write_all Unix.stdout (Bytes.sub_string full 0 cut) 0;
      Unix._exit 9
    | _ -> ()
  in
  (* Frames arrive one at a time; batch up whatever is already queued
     (up to [queue]) so the domain pool fans out instead of running
     jobs one by one. *)
  let rec loop () =
    match read_frame Unix.stdin with
    | None -> ()
    | Some doc -> (
      match Json.member "op" doc with
      | Some (Json.String "stop") -> ()
      | Some (Json.String (("ping" | "stall" | "chaos_torn") as op)) ->
        handle_ctl doc op;
        loop ()
      | Some (Json.String "job") ->
        let batch = ref [ decode_job doc ] in
        let count = ref 1 in
        let after = ref `Continue in
        while
          !after = `Continue && !count < cfg.Serve_config.queue
          && input_ready Unix.stdin
        do
          match read_frame Unix.stdin with
          | None -> after := `Eof
          | Some doc -> (
            match Json.member "op" doc with
            | Some (Json.String "stop") -> after := `Stop
            | Some (Json.String (("ping" | "stall" | "chaos_torn") as op)) ->
              handle_ctl doc op
            | Some (Json.String "job") ->
              batch := decode_job doc :: !batch;
              incr count
            | _ -> ())
        done;
        run_batch (List.rev !batch);
        if !after = `Continue then loop ()
      | _ -> loop ())
  in
  (* First bytes this incarnation contributes: the sync point the
     coordinator scans for past any module-init stdout pollution. *)
  write_all Unix.stdout (hello_frame spec.w_shard) 0;
  loop ();
  let counter_deltas =
    List.map
      (fun (k, v) ->
        let v0 = Option.value (List.assoc_opt k counters0) ~default:0 in
        (k, Json.Int (v - v0)))
      (Resilience.Counters.snapshot ())
  in
  emit_frame
    (Json.Obj
       [
         ("op", Json.String "summary");
         ("shard", Json.Int spec.w_shard);
         ("counters", Json.Obj counter_deltas);
         ("metrics", Metrics.to_json (Metrics.delta ~since:metrics0 (Metrics.snapshot ())));
       ])

let worker_main spec_text =
  let fail d =
    Format.eprintf "disesim serve worker: %a@." Diag.pp d;
    Diag.exit_code d
  in
  match Json.parse spec_text with
  | exception Json.Parse_error msg ->
    fail (Diag.Parse { source = env_var; line = 0; msg })
  | doc -> (
    match wspec_of_json doc with
    | Error d -> fail d
    | Ok spec -> (
      (* The coordinator orchestrates shutdown with stop frames; a
         terminal's Ctrl-C reaches the whole process group, and
         workers must let the coordinator drain them instead of dying
         mid-batch. *)
      (try
         ignore (Sys.signal Sys.sigint Sys.Signal_ignore);
         ignore (Sys.signal Sys.sigterm Sys.Signal_ignore)
       with Invalid_argument _ | Sys_error _ -> ());
      (match spec.w_jit with
      | None -> ()
      | Some (enabled, threshold) -> Request.set_default_jit ~enabled ~threshold);
      match
        match spec.w_cache with
        | None -> Request.set_disk_cache None
        | Some dir -> Request.set_disk_cache (Some (Cache.create ~dir))
      with
      | exception Cache.Diag_error d -> fail d
      | () ->
        let cfg = spec.w_cfg in
        let counters0 = Resilience.Counters.snapshot () in
        let metrics0 = Metrics.snapshot () in
        if cfg.Serve_config.breaker > 0 then
          Request.set_cache_breaker
            (Some
               (Resilience.Breaker.create ~threshold:cfg.Serve_config.breaker
                  ~cooldown_s:(float_of_int cfg.Serve_config.breaker_cooldown_ms /. 1000.)
                  ()));
        let journal =
          match cfg.Serve_config.journal with
          | None -> None
          | Some root ->
            let dir = shard_journal_dir ~root spec.w_shard in
            (* Same startup sequence as the single-process CLI: replay
               what a crash interrupted, then start a fresh journal.
               The replay line on (inherited) stderr is the operator's
               crash-recovery audit trail. *)
            let n = Server.replay_journal ~jobs:cfg.Serve_config.jobs ~dir () in
            if n > 0 then
              Printf.eprintf "disesim serve: replayed %d interrupted job%s from %s\n%!"
                n (if n = 1 then "" else "s") dir;
            Resilience.Journal.clear ~dir;
            Some (Resilience.Journal.open_ ~dir)
        in
        let finish () =
          match journal with None -> () | Some j -> Resilience.Journal.close j
        in
        (match worker_serve spec journal ~counters0 ~metrics0 with
        | () -> finish ()
        | exception e ->
          finish ();
          Format.eprintf "disesim serve worker: fatal: %s@." (Printexc.to_string e);
          exit 7);
        0))

let worker_child_main () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some spec ->
    let code = try worker_main spec with _ -> 7 in
    (* Frames go straight through [Unix.write]; nothing buffered needs
       flushing, and skipping at_exit keeps the host binary's handlers
       out of the worker's teardown. *)
    Unix._exit code

(* --- coordinator -------------------------------------------------------- *)

(* One fault from a chaos schedule, applied between client requests.
   The deterministic schedule machinery (JSON file, seeding) lives in
   [Dise_fuzz.Chaos_sched]; the coordinator only executes actions. *)
type chaos_action =
  | Chaos_kill of { shard : int; permanent : bool }
  | Chaos_stall of { shard : int; ms : int }
  | Chaos_torn of { shard : int; cut : int }
  | Chaos_drop_ping of { shard : int }
  | Chaos_suspect of { shard : int }

(* One logical client request. Routing normally gives it a single leg
   (one [seq] on one worker), but supervision may hedge it (a second
   leg on the next ring worker) or re-route it (failover). Exactly one
   client response is ever delivered, whichever leg answers first with
   a non-error; [lr_done] dedupes the stragglers. *)
type lreq = {
  lr_id : Json.t;
  lr_key : string;  (* result-cache key: the routing key *)
  lr_req : Json.t;  (* request document, re-framed per leg *)
  lr_enq : float;
  lr_quiet : bool;
      (* internal resubmission (journal replay): the response must not
         count as client traffic *)
  lr_complete : tag:string -> Json.t -> unit;
  mutable lr_primary : int;  (* shard of the routed (non-hedge) leg *)
  mutable lr_legs : (int * int) list;  (* (shard, seq) still outstanding *)
  mutable lr_done : bool;
}

type worker = {
  shard : int;
  mutable pid : int;
  mutable to_w : Unix.file_descr;
  mutable from_w : Unix.file_descr;
  mutable wout : outstream;
  win : instream;
  (* seq -> logical request with a leg on this worker; a respawned
     worker is handed every entry again (re-framed from the lreq,
     byte-identical to the original frame). *)
  inflight : (int, lreq) Hashtbl.t;
  mutable served : int;
  mutable hits : int;
  mutable misses : int;
  mutable errs : int;
  mutable restarts : int;
  mutable alive : bool;
  mutable got_summary : bool;
  mutable health : Resilience.Health.t;
  mutable dead : bool;  (* failed over: off the ring for good *)
  mutable drop_pings : int;  (* chaos: heartbeats to lose in transit *)
  mutable saw_hello : bool;  (* this incarnation's stream is synced *)
}

type t = {
  cfg : Serve_config.t;
  cache_dir : string option;
  jit : (bool * int) option;
  nonblocking : bool;
  mutable ring : Shard.t;  (* shrinks as workers are failed over *)
  mutable workers : worker array;
  mutable next_seq : int;
  stop : Server.Stop.t;
  manifest : Manifest.t option;
  on_spawn : (shard:int -> pid:int -> unit) option;
  chaos : (requests:int -> chaos_action list) option;
  mutable chaos_requests : int;
  mutable ping_n : int;
  counters0 : (string * int) list;
  metrics0 : Metrics.snapshot;
  mutable summaries : (int * Json.t) list;
  mutable shutting_down : bool;
  (* stream-level tallies (both modes) *)
  mutable s_served : int;
  mutable s_errors : int;
  mutable s_hits : int;
  mutable s_timeouts : int;
  mutable s_shed : int;
  mutable s_isolated : int;
  (* live admission state (socket mode) *)
  mutable inflight_work : int;
  tenant_inflight : (string, int) Hashtbl.t;
  scratch : Bytes.t;
}

let worker_spec t shard =
  let cfg =
    (* Workers must not recurse into coordinators or double-write the
       manifest; everything else (jobs, queue, deadline, journal root,
       breaker) is theirs. *)
    { t.cfg with Serve_config.workers = 0; manifest = None }
  in
  Json.to_string
    (Json.Obj
       ([
          ("shard", Json.Int shard);
          ("workers", Json.Int (Array.length t.workers));
          ( "cache",
            match t.cache_dir with
            | None -> Json.Null
            | Some d -> Json.String d );
        ]
       @ (match t.jit with
         | None -> []
         | Some (enabled, threshold) ->
           [
             ( "jit",
               Json.Obj
                 [
                   ("enabled", Json.Bool enabled);
                   ("threshold", Json.Int threshold);
                 ] );
           ])
       @ [ ("config", Serve_config.to_json cfg) ]))

let spawn_env spec =
  let prefix = env_var ^ "=" in
  let kept =
    List.filter
      (fun s ->
        not
          (String.length s >= String.length prefix
          && String.sub s 0 (String.length prefix) = prefix))
      (Array.to_list (Unix.environment ()))
  in
  Array.of_list (kept @ [ prefix ^ spec ])

(* Spawn the worker process for [w.shard] and (re)wire its pipes. The
   child inherits stderr, so worker diagnostics (journal replay lines,
   isolation backtraces) land on the server's stderr like the
   single-process path. Pipe fds are created close-on-exec: the ends
   meant for the child are passed through [create_process_env]'s dup2
   (which clears the flag on the child's copies), and nothing leaks
   into sibling workers — vital, or a dead worker's pipe would never
   read EOF while a sibling still held its write end. *)
let fresh_health cfg =
  Resilience.Health.create
    ~interval_s:(float_of_int cfg.Serve_config.heartbeat_ms /. 1000.)
    ~suspect_misses:cfg.Serve_config.suspect_misses
    ~dead_misses:cfg.Serve_config.dead_misses ()

let spawn_into t w =
  let stdin_r, stdin_w = Unix.pipe ~cloexec:true () in
  let stdout_r, stdout_w = Unix.pipe ~cloexec:true () in
  let exe = Sys.executable_name in
  let pid =
    Unix.create_process_env exe [| exe |]
      (spawn_env (worker_spec t w.shard))
      stdin_r stdout_w Unix.stderr
  in
  Unix.close stdin_r;
  Unix.close stdout_w;
  if t.nonblocking then begin
    Unix.set_nonblock stdin_w;
    Unix.set_nonblock stdout_r
  end;
  w.pid <- pid;
  w.to_w <- stdin_w;
  w.from_w <- stdout_r;
  w.wout <- outstream ();
  Buffer.clear w.win.ibuf;
  w.alive <- true;
  w.got_summary <- false;
  w.saw_hello <- false;
  (* A fresh process starts with a clean bill of health: accumulated
     misses belonged to its predecessor. *)
  w.health <- fresh_health t.cfg;
  (match t.on_spawn with None -> () | Some f -> f ~shard:w.shard ~pid)

let rec reap pid =
  match Unix.waitpid [] pid with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | _ -> ()

let stop_frame = lazy (frame_string (Json.Obj [ ("op", Json.String "stop") ]))

(* Every leg of a logical request is framed from the lreq, so a
   respawned (or hedge, or failover) worker receives bytes identical
   to the original frame apart from [seq]. *)
let job_frame lr ~seq =
  frame_string
    (Json.Obj
       [
         ("op", Json.String "job");
         ("seq", Json.Int seq);
         ("enq", Json.Float lr.lr_enq);
         ("id", lr.lr_id);
         ("req", lr.lr_req);
       ])

(* Route by result-cache key: identical requests always reach the
   same worker, whose memory and journal shard own that slice of the
   keyspace. *)
let submit ?(quiet = false) t (p : Server.parsed) req ~enq ~complete =
  match p.Server.req with
  | Error _ -> invalid_arg "Coordinator.submit: unrunnable job"
  | Ok _ ->
    let key = Request.key req in
    let shard = Shard.route t.ring key in
    let w = t.workers.(shard) in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let lr =
      {
        lr_id = p.Server.id;
        lr_key = key;
        lr_req = Request.to_json req;
        lr_enq = enq;
        lr_quiet = quiet;
        lr_complete = complete;
        lr_primary = shard;
        lr_legs = [ (shard, seq) ];
        lr_done = false;
      }
    in
    Hashtbl.replace w.inflight seq lr;
    out_push w.wout (job_frame lr ~seq)

(* Startup crash recovery across resharding. Per-shard journals are
   named [<root>/worker-<shard>] after the ring that {e wrote} them;
   restarting with a different [--workers] count would otherwise
   replay each file on whichever worker happens to own that name now
   (dropping shards past the new count outright) while the live ring
   routes by request key. So the coordinator drains every shard
   journal itself before the workers start — whatever the previous
   tier's worker count was — and resubmits the entries through the
   {e current} ring via {!submit}, where they are journaled afresh by
   their new owners. Workers keep their own startup replay for the
   mid-session respawn path, where shard ownership cannot have
   changed; they find empty directories here. *)
let shard_of_journal_dirname name =
  let prefix = "worker-" in
  let plen = String.length prefix in
  if String.length name > plen && String.sub name 0 plen = prefix then
    int_of_string_opt (String.sub name plen (String.length name - plen))
  else None

let drain_orphan_journals root =
  let names = match Sys.readdir root with
    | names -> names
    | exception Sys_error _ -> [||]
  in
  Array.sort compare names;
  Array.to_list names
  |> List.filter_map (fun name ->
         match shard_of_journal_dirname name with
         | None -> None
         | Some _ -> (
           let dir = Filename.concat root name in
           match Resilience.Journal.pending ~dir with
           | [] -> None
           | pending ->
             Resilience.Journal.clear ~dir;
             Some (dir, List.map snd pending)))

let resubmit_journal_docs t drained =
  List.iter
    (fun (dir, docs) ->
      let n = List.length docs in
      Printf.eprintf "disesim serve: replayed %d interrupted job%s from %s\n%!"
        n (if n = 1 then "" else "s") dir;
      Resilience.Counters.add Resilience.Counters.journal_replayed n;
      List.iter
        (fun doc ->
          match Request.of_json doc with
          | Error d ->
            Format.eprintf
              "disesim serve: journal entry is not replayable: %s@."
              (Diag.to_string d)
          | Ok req ->
            let id = Option.value (Json.member "id" doc) ~default:Json.Null in
            let p =
              { Server.id; version = Server.protocol_version; tenant = None;
                req = Ok req }
            in
            submit ~quiet:true t p req ~enq:(Unix.gettimeofday ())
              ~complete:(fun ~tag:_ _ -> ()))
        docs)
    drained

let create ?stop ?manifest ?on_spawn ?chaos ?cache_dir ?jit ~nonblocking cfg =
  let workers_n = max 1 cfg.Serve_config.workers in
  let cfg = { cfg with Serve_config.workers = workers_n } in
  let t =
    {
      cfg;
      cache_dir;
      jit;
      nonblocking;
      ring = Shard.ring ~workers:workers_n ();
      workers = [||];
      next_seq = 0;
      stop = (match stop with Some s -> s | None -> Server.Stop.create ());
      manifest;
      on_spawn;
      chaos;
      chaos_requests = 0;
      ping_n = 0;
      counters0 = Resilience.Counters.snapshot ();
      metrics0 = Metrics.snapshot ();
      summaries = [];
      shutting_down = false;
      s_served = 0;
      s_errors = 0;
      s_hits = 0;
      s_timeouts = 0;
      s_shed = 0;
      s_isolated = 0;
      inflight_work = 0;
      tenant_inflight = Hashtbl.create 8;
      scratch = Bytes.create 65536;
    }
  in
  t.workers <-
    Array.init workers_n (fun shard ->
        {
          shard;
          pid = -1;
          to_w = Unix.stdin;
          from_w = Unix.stdin;
          wout = outstream ();
          win = { ibuf = Buffer.create 4096 };
          inflight = Hashtbl.create 32;
          served = 0;
          hits = 0;
          misses = 0;
          errs = 0;
          restarts = 0;
          alive = false;
          got_summary = false;
          health = fresh_health cfg;
          dead = false;
          drop_pings = 0;
          saw_hello = false;
        });
  (* Drain pre-crash journal shards before any worker starts (so their
     own startup replay cannot race over the same files), spawn the
     tier, then resubmit the drained entries through the current
     ring. *)
  let drained =
    match cfg.Serve_config.journal with
    | None -> []
    | Some root -> drain_orphan_journals root
  in
  Array.iter (fun w -> spawn_into t w) t.workers;
  resubmit_journal_docs t drained;
  t

(* Stream-level outcome bookkeeping — the same classification
   [Server.serve_channel] applies, including the resilience-counter
   bumps (workers don't bump timeout/shed counters themselves, so the
   merged counter deltas count each event exactly once). *)
let tally t ~tag ~kind =
  t.s_served <- t.s_served + 1;
  match tag with
  | "hit" -> t.s_hits <- t.s_hits + 1
  | "fresh" -> ()
  | _ -> (
    t.s_errors <- t.s_errors + 1;
    match kind with
    | Some "timeout" ->
      t.s_timeouts <- t.s_timeouts + 1;
      Resilience.Counters.incr Resilience.Counters.timeouts
    | Some "overloaded" ->
      t.s_shed <- t.s_shed + 1;
      Resilience.Counters.incr Resilience.Counters.shed
    | Some "internal" -> t.s_isolated <- t.s_isolated + 1
    | _ -> ())

(* Deliver the single client response of a logical request (via the
   worker [w] that answered) and retire every outstanding leg, so
   stragglers — a hedge sibling, a duplicate after a respawn race —
   find no table entry and are dropped. *)
let complete_lreq t w lr ~tag ~kind resp =
  lr.lr_done <- true;
  List.iter
    (fun (shard, seq) -> Hashtbl.remove t.workers.(shard).inflight seq)
    lr.lr_legs;
  lr.lr_legs <- [];
  if not lr.lr_quiet then begin
    w.served <- w.served + 1;
    (match tag with
    | "hit" -> w.hits <- w.hits + 1
    | "fresh" -> w.misses <- w.misses + 1
    | _ -> w.errs <- w.errs + 1);
    Metrics.Histogram.observe_s h_tier (Unix.gettimeofday () -. lr.lr_enq);
    tally t ~tag ~kind;
    lr.lr_complete ~tag resp
  end

(* Shutdown straggler path: there is no respawn to hand work to, so
   every pending request on [w] is answered with an internal error
   (once — a hedged request aborted on one worker must not be aborted
   again on the other). *)
let abort_pending t w =
  let pending =
    Hashtbl.fold (fun seq lr acc -> (seq, lr) :: acc) w.inflight []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Hashtbl.reset w.inflight;
  List.iter
    (fun (_, lr) ->
      if not lr.lr_done then begin
        lr.lr_done <- true;
        List.iter
          (fun (shard, seq) -> Hashtbl.remove t.workers.(shard).inflight seq)
          lr.lr_legs;
        lr.lr_legs <- [];
        lr.lr_complete ~tag:"error"
          (Server.error_response lr.lr_id
             (Diag.Internal "worker exited during shutdown"))
      end)
    pending

(* Re-route a legless logical request through the (post-failover)
   ring. The new leg becomes primary: a response from it is normal
   failover recovery, not a hedge win. *)
let resubmit_lreq t lr =
  let shard = Shard.route t.ring lr.lr_key in
  let w = t.workers.(shard) in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  lr.lr_primary <- shard;
  lr.lr_legs <- [ (shard, seq) ];
  Hashtbl.replace w.inflight seq lr;
  out_push w.wout (job_frame lr ~seq)

(* Terminal failover: [w] is gone for good (heartbeat death or respawn
   cap). Shrink the ring so only the dead worker's keys move, re-route
   its outstanding legs through the survivors, replay its journal
   shard through the new ring, and keep serving degraded. [w]'s pipes
   must already be closed and the process reaped. With no survivors
   there is nothing to fail over to and the tier gives up. *)
let fail_over t w ~reason =
  w.dead <- true;
  Resilience.Health.force_dead w.health ~reason;
  let survivors = List.filter (fun s -> s <> w.shard) (Shard.alive t.ring) in
  if survivors = [] then begin
    abort_pending t w;
    raise
      (Cache.Diag_error
         (Diag.Internal
            (Printf.sprintf "worker %d is gone (%s) and no workers remain"
               w.shard reason)))
  end;
  Resilience.Counters.incr Resilience.Counters.failovers;
  Format.eprintf
    "disesim serve: worker %d failed over (%s); serving degraded on %d \
     shard%s@."
    w.shard reason (List.length survivors)
    (if List.length survivors = 1 then "" else "s");
  t.ring <- Shard.remove t.ring w.shard;
  let pending =
    Hashtbl.fold (fun seq lr acc -> (seq, lr) :: acc) w.inflight []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Hashtbl.reset w.inflight;
  List.iter
    (fun (seq, lr) ->
      if not lr.lr_done then begin
        lr.lr_legs <-
          List.filter (fun (s, q) -> not (s = w.shard && q = seq)) lr.lr_legs;
        (* A hedge leg may still be racing on a survivor; only a
           request with no live leg left needs re-routing. *)
        if lr.lr_legs = [] then resubmit_lreq t lr
      end)
    pending;
  match t.cfg.Serve_config.journal with
  | None -> ()
  | Some root -> (
    let dir = shard_journal_dir ~root w.shard in
    match Resilience.Journal.pending ~dir with
    | [] -> ()
    | docs ->
      Resilience.Journal.clear ~dir;
      resubmit_journal_docs t [ (dir, List.map snd docs) ])

(* Supervision-initiated death of a live process: heartbeat loss means
   the worker may be wedged rather than exited, so it is killed before
   the blocking reap. *)
let declare_dead t w ~reason =
  Format.eprintf "disesim serve: worker %d (pid %d) declared dead: %s@."
    w.shard w.pid reason;
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try Unix.close w.to_w with Unix.Unix_error _ -> ());
  (try Unix.close w.from_w with Unix.Unix_error _ -> ());
  w.alive <- false;
  reap w.pid;
  fail_over t w ~reason

(* A worker died (EOF / write failure) or poisoned its frame stream
   with work outstanding. Reap it, spawn a replacement on the same
   shard, and resubmit every inflight leg: the replacement first
   replays its journal shard (re-deriving results into the shared
   content-addressed cache), so resubmitted jobs that had already run
   come back as cache hits — crash recovery is idempotent end to end.
   Past the respawn cap the shard is failed over instead; during
   shutdown there is no respawn and stragglers are answered with an
   internal error. *)
let handle_crash t w reason =
  (* The poisoned-stream path arrives here with the process still
     running; the kill is a no-op for a worker that already exited. *)
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try Unix.close w.to_w with Unix.Unix_error _ -> ());
  (try Unix.close w.from_w with Unix.Unix_error _ -> ());
  w.alive <- false;
  reap w.pid;
  if t.shutting_down then abort_pending t w
  else begin
    w.restarts <- w.restarts + 1;
    if w.restarts > t.cfg.Serve_config.respawn_cap then
      fail_over t w
        ~reason:
          (Printf.sprintf "%s; respawn cap exhausted (%d respawns)" reason
             w.restarts)
    else begin
      Format.eprintf
        "disesim serve: worker %d (pid %d) exited unexpectedly (%s); \
         respawning@."
        w.shard w.pid reason;
      spawn_into t w;
      let pending =
        Hashtbl.fold (fun seq lr acc -> (seq, lr) :: acc) w.inflight []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      List.iter
        (fun (seq, lr) ->
          if not lr.lr_done then out_push w.wout (job_frame lr ~seq))
        pending
    end
  end

let dispatch t w doc =
  match Json.member "op" doc with
  | Some (Json.String "resp") -> (
    let seq = match Json.member "seq" doc with Some (Json.Int s) -> s | _ -> -1 in
    match Hashtbl.find_opt w.inflight seq with
    | None -> () (* canceled leg or duplicate after a respawn race *)
    | Some lr ->
      Hashtbl.remove w.inflight seq;
      lr.lr_legs <-
        List.filter (fun (s, q) -> not (s = w.shard && q = seq)) lr.lr_legs;
      let tag =
        match Json.member "tag" doc with Some (Json.String s) -> s | _ -> "error"
      in
      let kind =
        match Json.member "kind" doc with Some (Json.String s) -> Some s | _ -> None
      in
      let resp =
        match Json.member "resp" doc with
        | Some r -> r
        | None ->
          Server.error_response lr.lr_id
            (Diag.Internal "worker response without body")
      in
      if lr.lr_done then ()
      else if tag = "error" && lr.lr_legs <> [] then
        (* A hedge sibling is still racing; an error here must not beat
           a success there. If every leg errors, the last one answers
           the client. *)
        ()
      else begin
        if w.shard <> lr.lr_primary then
          Resilience.Counters.incr Resilience.Counters.hedge_wins;
        complete_lreq t w lr ~tag ~kind resp
      end)
  | Some (Json.String "pong") -> Resilience.Health.pong w.health
  | Some (Json.String "summary") ->
    w.got_summary <- true;
    t.summaries <- (w.shard, doc) :: t.summaries
  | _ -> ()

(* Pump one readable worker pipe: pull whatever bytes are there,
   dispatch the complete frames, respawn on EOF. A torn frame at pipe
   EOF (a worker died mid-write) is discarded, never parsed — the
   respawn resubmits the affected requests. A poisoned stream (bad
   length prefix, non-JSON body) means the byte boundary is lost for
   good: the worker is killed and crash-handled the same way. *)
let pump_worker t w =
  match Unix.read w.from_w t.scratch 0 (Bytes.length t.scratch) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error (e, _, _) ->
    handle_crash t w (Unix.error_message e)
  | 0 ->
    if Buffer.length w.win.ibuf > 0 then begin
      Resilience.Counters.incr Resilience.Counters.torn_frames;
      Buffer.clear w.win.ibuf
    end;
    handle_crash t w "pipe closed"
  | n -> (
    Buffer.add_subbytes w.win.ibuf t.scratch 0 n;
    (* Sync on the hello frame before trusting the stream: a fresh
       incarnation's first bytes may be module-init stdout pollution
       from whatever is linked into the host executable. *)
    let synced =
      w.saw_hello
      ||
      let data = Buffer.contents w.win.ibuf in
      let magic = hello_frame w.shard in
      match find_sub data magic with
      | Some i ->
        Buffer.clear w.win.ibuf;
        let start = i + String.length magic in
        Buffer.add_substring w.win.ibuf data start (String.length data - start);
        w.saw_hello <- true;
        true
      | None ->
        if String.length data > hello_preamble_limit then begin
          Resilience.Counters.incr Resilience.Counters.torn_frames;
          handle_crash t w "no hello from worker"
        end;
        false
    in
    if synced then begin
      let frames, poisoned = extract_frames w.win in
      List.iter (dispatch t w) frames;
      if poisoned then begin
        Resilience.Counters.incr Resilience.Counters.torn_frames;
        handle_crash t w "corrupt frame stream"
      end
    end)

let flush_worker t w =
  if w.alive && out_pending w.wout then
    match out_write w.to_w w.wout with
    | () -> ()
    | exception Unix.Unix_error (_, _, _) -> handle_crash t w "write failed"

(* --- supervision -------------------------------------------------------- *)

(* Hedge a Suspect worker's outstanding requests: each single-leg
   request gains a leg on the next worker clockwise on the ring — the
   worker that would inherit its key if the suspect were removed.
   First non-error answer wins; {!complete_lreq} dedupes the loser.
   Idempotent per request (a request is never hedged past two legs),
   so the supervision tick can call this every pass while the worker
   stays Suspect. *)
let hedge_worker t w =
  Hashtbl.iter
    (fun _seq lr ->
      if (not lr.lr_done) && (not lr.lr_quiet) && List.length lr.lr_legs = 1
      then
        match Shard.next t.ring lr.lr_key ~avoid:w.shard with
        | None -> ()
        | Some shard2 ->
          let w2 = t.workers.(shard2) in
          if w2.alive && not w2.dead then begin
            let seq2 = t.next_seq in
            t.next_seq <- seq2 + 1;
            lr.lr_legs <- (shard2, seq2) :: lr.lr_legs;
            Hashtbl.replace w2.inflight seq2 lr;
            out_push w2.wout (job_frame lr ~seq:seq2);
            Resilience.Counters.incr Resilience.Counters.hedges
          end)
    w.inflight

(* One supervision pass, run from both event loops between selects:
   send due heartbeats, flag gray failures (a request outliving
   [hedge_p95x] times the tier p95 marks its worker Suspect), hedge
   Suspect workers, and fail Dead ones over. *)
let supervise t =
  let cfg = t.cfg in
  if (not t.shutting_down) && cfg.Serve_config.heartbeat_ms > 0 then begin
    (* One tier-latency bound per pass, shared by every worker's
       gray-failure check; meaningless below a minimal sample. *)
    let latency_limit =
      if cfg.Serve_config.hedge_p95x <= 0. then infinity
      else
        let snap = Metrics.Histogram.snapshot h_tier in
        if snap.Metrics.Histogram.count >= 32 then
          cfg.Serve_config.hedge_p95x
          *. float_of_int (Metrics.Histogram.quantile snap 0.95)
          /. 1e9
        else infinity
    in
    let now = Unix.gettimeofday () in
    Array.iter
      (fun w ->
        if w.alive && not w.dead then begin
          let h = w.health in
          if Resilience.Health.due h then begin
            if w.drop_pings > 0 then
              (* chaos: the ping is lost in transit — never queued, so
                 it can only ever count as a miss *)
              w.drop_pings <- w.drop_pings - 1
            else begin
              t.ping_n <- t.ping_n + 1;
              out_push w.wout
                (frame_string
                   (Json.Obj
                      [ ("op", Json.String "ping"); ("t", Json.Int t.ping_n) ]))
            end;
            Resilience.Health.ping_sent h
          end;
          if latency_limit < infinity then
            Hashtbl.iter
              (fun _ lr ->
                if (not lr.lr_quiet) && now -. lr.lr_enq > latency_limit then
                  Resilience.Health.suspect h
                    ~reason:"request outlived the hedge latency bound")
              w.inflight;
          match Resilience.Health.state h with
          | Resilience.Health.Healthy -> ()
          | Resilience.Health.Suspect -> hedge_worker t w
          | Resilience.Health.Dead ->
            declare_dead t w
              ~reason:
                (Option.value (Resilience.Health.reason h)
                   ~default:"heartbeat loss")
        end)
      t.workers
  end

(* --- chaos -------------------------------------------------------------- *)

let apply_chaos t act =
  let live shard =
    if shard >= 0 && shard < Array.length t.workers then
      let w = t.workers.(shard) in
      if w.alive && not w.dead then Some w else None
    else None
  in
  match act with
  | Chaos_kill { shard; permanent } -> (
    match live shard with
    | None -> ()
    | Some w ->
      (* The EOF on its pipe reaches [handle_crash], which respawns
         the shard — or, with the cap pre-exhausted for a permanent
         kill, fails it over. *)
      if permanent then
        w.restarts <- max w.restarts t.cfg.Serve_config.respawn_cap;
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ()))
  | Chaos_stall { shard; ms } -> (
    match live shard with
    | None -> ()
    | Some w ->
      out_push w.wout
        (frame_string
           (Json.Obj [ ("op", Json.String "stall"); ("ms", Json.Int ms) ])))
  | Chaos_torn { shard; cut } -> (
    match live shard with
    | None -> ()
    | Some w ->
      out_push w.wout
        (frame_string
           (Json.Obj
              [ ("op", Json.String "chaos_torn"); ("cut", Json.Int cut) ])))
  | Chaos_drop_ping { shard } -> (
    match live shard with
    | None -> ()
    | Some w -> w.drop_pings <- w.drop_pings + 1)
  | Chaos_suspect { shard } -> (
    match live shard with
    | None -> ()
    | Some w -> Resilience.Health.suspect w.health ~reason:"chaos schedule")

(* Count one client request against the chaos schedule and apply
   whatever faults it releases. Called at the front door (channel
   chunks and socket lines alike), never for internal resubmissions —
   "kill worker 2 after 40 requests" means client requests. *)
let chaos_tick t =
  match t.chaos with
  | None -> ()
  | Some f ->
    t.chaos_requests <- t.chaos_requests + 1;
    List.iter (apply_chaos t) (f ~requests:t.chaos_requests)

(* --- merged summary ----------------------------------------------------- *)

let sum_counters base extra =
  List.map
    (fun (k, v) ->
      match List.assoc_opt k extra with
      | Some (Json.Int e) -> (k, v + e)
      | _ -> (k, v))
    base

let merged_summary t =
  let local_counters =
    List.map
      (fun (k, v) ->
        let v0 = Option.value (List.assoc_opt k t.counters0) ~default:0 in
        (k, v - v0))
      (Resilience.Counters.snapshot ())
  in
  let counters =
    List.fold_left
      (fun acc (_, doc) ->
        match Json.member "counters" doc with
        | Some (Json.Obj kvs) -> sum_counters acc kvs
        | _ -> acc)
      local_counters t.summaries
  in
  let metrics =
    List.fold_left
      (fun acc (_, doc) ->
        match Json.member "metrics" doc with
        | Some m -> Metrics.merge acc (Metrics.of_json m)
        | None -> acc)
      (Metrics.delta ~since:t.metrics0 (Metrics.snapshot ()))
      t.summaries
  in
  let workers_json =
    Array.to_list
      (Array.map
         (fun w ->
           Json.Obj
             [
               ("shard", Json.Int w.shard);
               ("pid", Json.Int w.pid);
               ("served", Json.Int w.served);
               ("cache_hits", Json.Int w.hits);
               ("cache_misses", Json.Int w.misses);
               ("errors", Json.Int w.errs);
               ("restarts", Json.Int w.restarts);
               ( "health",
                 Json.String
                   (Resilience.Health.state_name (Resilience.Health.state w.health))
               );
             ])
         t.workers)
  in
  (* The post-failover topology: which shards still hold ring points.
     [degraded] flags that at least one shard was failed over and its
     keys now live with the survivors. *)
  let alive_shards = Shard.alive t.ring in
  let dead_shards =
    List.filter
      (fun s -> not (List.mem s alive_shards))
      (List.init (Array.length t.workers) Fun.id)
  in
  let topology =
    Json.Obj
      [
        ("workers", Json.Int (Array.length t.workers));
        ("alive", Json.List (List.map (fun s -> Json.Int s) alive_shards));
        ("dead", Json.List (List.map (fun s -> Json.Int s) dead_shards));
        ("degraded", Json.Bool (dead_shards <> []));
      ]
  in
  let summary =
    {
      Server.served = t.s_served;
      errors = t.s_errors;
      cache_hits = t.s_hits;
      timeouts = t.s_timeouts;
      shed = t.s_shed;
      isolated = t.s_isolated;
    }
  in
  let fields =
    [
      ("record", Json.String "serve_summary");
      ("served", Json.Int t.s_served);
      ("errors", Json.Int t.s_errors);
      ("cache_hits", Json.Int t.s_hits);
      ("timeouts", Json.Int t.s_timeouts);
      ("shed", Json.Int t.s_shed);
      ("isolated", Json.Int t.s_isolated);
      ("workers", Json.List workers_json);
      ("topology", topology);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters));
      ("metrics", Metrics.to_json metrics);
    ]
  in
  (match t.manifest with None -> () | Some m -> Manifest.emit m fields);
  summary

(* Graceful tier teardown: queue a stop frame for every live worker,
   drain their summary frames (collecting late responses on the way),
   then reap. A worker that neither summarizes nor exits within the
   deadline is killed — shutdown must terminate even if a job is
   wedged. *)
let shutdown t =
  t.shutting_down <- true;
  Array.iter
    (fun w -> if w.alive then out_push w.wout (Lazy.force stop_frame))
    t.workers;
  let deadline = Unix.gettimeofday () +. 10. in
  let outstanding () =
    Array.exists
      (fun w -> w.alive && (not w.got_summary || out_pending w.wout))
      t.workers
  in
  let rec drain () =
    if outstanding () && Unix.gettimeofday () < deadline then begin
      Array.iter (fun w -> flush_worker t w) t.workers;
      let rs =
        Array.to_list t.workers
        |> List.filter_map (fun w ->
               if w.alive && not w.got_summary then Some w.from_w else None)
      in
      let ws =
        Array.to_list t.workers
        |> List.filter_map (fun w ->
               if w.alive && out_pending w.wout then Some w.to_w else None)
      in
      if rs <> [] || ws <> [] then begin
        (match Unix.select rs ws [] 0.25 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | rready, _, _ ->
          Array.iter
            (fun w ->
              if w.alive && List.mem w.from_w rready then pump_worker t w)
            t.workers);
        drain ()
      end
    end
  in
  drain ();
  Array.iter
    (fun w ->
      if w.alive then begin
        if not w.got_summary then (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try Unix.close w.to_w with Unix.Unix_error _ -> ());
        (try Unix.close w.from_w with Unix.Unix_error _ -> ());
        reap w.pid;
        w.alive <- false
      end)
    t.workers;
  merged_summary t

(* --- channel mode ------------------------------------------------------- *)

(* Batch-synchronous front end over one JSONL stream: read a chunk,
   shed/route/submit, drain until every slot has its response, emit in
   input order — the multi-process analogue of
   [Server.serve_channel], byte-compatible on the wire. *)
let channel_loop t ic oc =
  let cfg = t.cfg in
  let lineno = ref 0 in
  let rec drain_until done_ =
    if not (done_ ()) then begin
      supervise t;
      Array.iter (fun w -> flush_worker t w) t.workers;
      let rs =
        Array.to_list t.workers
        |> List.filter_map (fun w -> if w.alive then Some w.from_w else None)
      in
      (* The select deadline bounds the supervision tick, so it must
         stay well under the heartbeat interval. *)
      (match Unix.select rs [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | rready, _, _ ->
        Array.iter
          (fun w -> if w.alive && List.mem w.from_w rready then pump_worker t w)
          t.workers);
      drain_until done_
    end
  in
  let rec loop () =
    if not (Server.Stop.signalled t.stop) then
      match Server.read_chunk ~stop:t.stop ic ~lineno cfg.Serve_config.queue with
      | None -> ()
      | Some chunk ->
        let chunk = Server.admit cfg chunk in
        let n = Array.length chunk in
        let responses = Array.make n None in
        let outstanding = ref 0 in
        let enq = Unix.gettimeofday () in
        Array.iteri
          (fun i p ->
            match p.Server.req with
            | Error d ->
              tally t ~tag:"error" ~kind:(Some (Diag.category d));
              responses.(i) <- Some (Server.error_response p.Server.id d)
            | Ok req ->
              incr outstanding;
              submit t p req ~enq ~complete:(fun ~tag:_ resp ->
                  responses.(i) <- Some resp;
                  decr outstanding);
              chaos_tick t)
          chunk;
        drain_until (fun () -> !outstanding = 0);
        Array.iter
          (fun r ->
            output_string oc (Json.to_string (Option.get r));
            output_char oc '\n')
          responses;
        flush oc;
        if n = cfg.Serve_config.queue then loop ()
  in
  loop ()

let run_channel ?stop ?manifest ?on_spawn ?chaos ?cache_dir ?jit cfg ic oc =
  let t =
    create ?stop ?manifest ?on_spawn ?chaos ?cache_dir ?jit ~nonblocking:false
      cfg
  in
  match channel_loop t ic oc with
  | () -> shutdown t
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    ignore (shutdown t);
    Printexc.raise_with_backtrace e bt

(* --- socket mode: the async front end ----------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  cbuf : Buffer.t;  (* partial input line *)
  mutable oversized : bool;  (* discarding an over-long line's tail *)
  cout : outstream;
  mutable lineno : int;
  mutable next_slot : int;
  mutable next_emit : int;
  ready : (int, Json.t) Hashtbl.t;
  (* slot -> admission release for jobs currently in flight; drained
     eagerly when the connection dies so a failed client cannot pin
     its tenant's quota (or the shed budget) until its jobs finish. *)
  releases : (int, unit -> unit) Hashtbl.t;
  mutable pending : int;
  mutable eof : bool;
  mutable closed : bool;
  mutable cserved : int;
  mutable cerrors : int;
  mutable chits : int;
}

let conn_tally c ~tag =
  c.cserved <- c.cserved + 1;
  match tag with
  | "hit" -> c.chits <- c.chits + 1
  | "fresh" -> ()
  | _ -> c.cerrors <- c.cerrors + 1

(* Complete one slot and flush the in-order prefix to the
   connection's output queue. A closed connection still completes
   (admission state must be released) but the response is dropped. *)
let finish_slot c slot resp =
  c.pending <- c.pending - 1;
  if not c.closed then begin
    Hashtbl.replace c.ready slot resp;
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt c.ready c.next_emit with
      | None -> continue := false
      | Some r ->
        Hashtbl.remove c.ready c.next_emit;
        out_push c.cout (Json.to_string r ^ "\n");
        c.next_emit <- c.next_emit + 1
    done
  end

(* Live-window admission, the event-loop counterpart of
   [Server.admit]: the same policies (per-tenant quota, then the
   cumulative [dyn_target] budget) applied against what is currently
   in flight across all connections rather than within one chunk. *)
let admit_live t (p : Server.parsed) req =
  let cfg = t.cfg in
  let tenant = Option.value p.Server.tenant ~default:"" in
  let quota_ok =
    match cfg.Serve_config.tenant_quota with
    | None -> Ok ()
    | Some q ->
      let q = max 1 q in
      let n = Option.value (Hashtbl.find_opt t.tenant_inflight tenant) ~default:0 in
      if n >= q then
        Error
          (Diag.Overloaded
             (Printf.sprintf
                "tenant quota: %s already has %d jobs in flight (quota %d)"
                (if tenant = "" then "the anonymous tenant"
                 else Printf.sprintf "tenant %S" tenant)
                n q))
      else Ok ()
  in
  match quota_ok with
  | Error d -> Error d
  | Ok () -> (
    let w = req.Request.dyn_target in
    match cfg.Serve_config.shed_above with
    | Some hw when t.inflight_work > 0 && t.inflight_work + w > hw ->
      Error
        (Diag.Overloaded
           (Printf.sprintf
              "load shed: job of %d dynamic instructions would push the \
               in-flight work past the high-water mark of %d"
              w hw))
    | _ ->
      Hashtbl.replace t.tenant_inflight tenant
        (Option.value (Hashtbl.find_opt t.tenant_inflight tenant) ~default:0 + 1);
      t.inflight_work <- t.inflight_work + w;
      (* Idempotent: a dead connection's releases run eagerly from
         [fail_conn] and again when the worker's response arrives. *)
      let released = ref false in
      Ok
        (fun () ->
          if not !released then begin
            released := true;
            t.inflight_work <- t.inflight_work - w;
            match Hashtbl.find_opt t.tenant_inflight tenant with
            | Some 1 | None -> Hashtbl.remove t.tenant_inflight tenant
            | Some n -> Hashtbl.replace t.tenant_inflight tenant (n - 1)
          end))

let handle_parsed t c slot (p : Server.parsed) =
  let direct d =
    tally t ~tag:"error" ~kind:(Some (Diag.category d));
    conn_tally c ~tag:"error";
    finish_slot c slot (Server.error_response p.Server.id d)
  in
  match p.Server.req with
  | Error d -> direct d
  | Ok req -> (
    match admit_live t p req with
    | Error d -> direct d
    | Ok release ->
      Hashtbl.replace c.releases slot release;
      submit t p req ~enq:(Unix.gettimeofday ()) ~complete:(fun ~tag resp ->
          Hashtbl.remove c.releases slot;
          release ();
          conn_tally c ~tag;
          finish_slot c slot resp);
      chaos_tick t)

let process_line t c line =
  c.lineno <- c.lineno + 1;
  if String.trim line <> "" then begin
    let slot = c.next_slot in
    c.next_slot <- slot + 1;
    c.pending <- c.pending + 1;
    handle_parsed t c slot (Server.parse_job ~lineno:c.lineno line)
  end

let oversized_slot t c =
  c.lineno <- c.lineno + 1;
  let slot = c.next_slot in
  c.next_slot <- slot + 1;
  c.pending <- c.pending + 1;
  handle_parsed t c slot (Server.oversized_line ~lineno:c.lineno)

(* Split freshly read bytes into lines, honoring the 1 MiB line bound
   the way [Server.read_raw_line] does: an over-long line is
   discarded up to its newline and costs one parse-error slot. *)
let feed_conn t c data =
  let len = String.length data in
  let start = ref 0 in
  for i = 0 to len - 1 do
    if data.[i] = '\n' then begin
      let seg = i - !start in
      if c.oversized then begin
        c.oversized <- false;
        oversized_slot t c
      end
      else if Buffer.length c.cbuf + seg > Server.max_line_bytes then begin
        Buffer.clear c.cbuf;
        oversized_slot t c
      end
      else begin
        let line = Buffer.contents c.cbuf ^ String.sub data !start seg in
        Buffer.clear c.cbuf;
        process_line t c line
      end;
      start := i + 1
    end
  done;
  if !start < len then
    if c.oversized then ()
    else if Buffer.length c.cbuf + (len - !start) > Server.max_line_bytes then begin
      Buffer.clear c.cbuf;
      c.oversized <- true
    end
    else Buffer.add_substring c.cbuf data !start (len - !start)

let run_socket ?stop ?manifest ?on_spawn ?chaos ?cache_dir ?jit cfg ~path () =
  Server.with_sigpipe_ignored @@ fun () ->
  let sock = Server.listen_socket ~path in
  Unix.set_nonblock sock;
  (* Workers are spawned (and respawned) while connections are open;
     any fd not marked cloexec leaks into them. A worker holding a
     duplicate of a client's socket keeps that client from ever seeing
     EOF after the coordinator closes its copy. *)
  Unix.set_close_on_exec sock;
  let t =
    create ?stop ?manifest ?on_spawn ?chaos ?cache_dir ?jit ~nonblocking:true
      cfg
  in
  let conns = ref [] in
  let next_cid = ref 0 in
  let close_conn c =
    if not c.closed then begin
      c.closed <- true;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      Format.eprintf
        "disesim serve: connection %d done: served %d job%s (%d error%s, %d \
         cache hit%s)@."
        c.cid c.cserved
        (if c.cserved = 1 then "" else "s")
        c.cerrors
        (if c.cerrors = 1 then "" else "s")
        c.chits
        (if c.chits = 1 then "" else "s")
    end
  in
  let fail_conn c reason =
    if not c.closed then begin
      Resilience.Counters.incr Resilience.Counters.conn_failures;
      Format.eprintf "disesim serve: connection %d failed (isolated): %s@."
        c.cid reason;
      c.closed <- true;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      (* The peer is gone for good (a half-closed client keeps its
         admission until each job completes; this path is hard
         failure), so holding quota for work whose answers can never
         be delivered would starve the tenant's later connections.
         Releases are idempotent, so the worker responses that still
         arrive for these slots release nothing twice. *)
      Hashtbl.iter (fun _ release -> release ()) c.releases;
      Hashtbl.reset c.releases
    end
  in
  let accept_all () =
    let continue = ref true in
    while !continue do
      match Unix.accept sock with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> continue := false
      | exception Unix.Unix_error (e, _, _) ->
        Format.eprintf "disesim serve: accept failed: %s@."
          (Unix.error_message e);
        continue := false
      | fd, _ ->
        Unix.set_nonblock fd;
        Unix.set_close_on_exec fd;
        let cid = !next_cid in
        incr next_cid;
        conns :=
          {
            fd;
            cid;
            cbuf = Buffer.create 256;
            oversized = false;
            cout = outstream ();
            lineno = 0;
            next_slot = 0;
            next_emit = 0;
            ready = Hashtbl.create 16;
            releases = Hashtbl.create 16;
            pending = 0;
            eof = false;
            closed = false;
            cserved = 0;
            cerrors = 0;
            chits = 0;
          }
          :: !conns
    done
  in
  let read_conn c =
    match Unix.read c.fd t.scratch 0 (Bytes.length t.scratch) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error (e, _, _) -> fail_conn c (Unix.error_message e)
    | 0 ->
      c.eof <- true;
      (* A trailing line without its newline still gets an answer,
         like the channel server's final partial line. *)
      if Buffer.length c.cbuf > 0 || c.oversized then begin
        if c.oversized then begin
          c.oversized <- false;
          oversized_slot t c
        end
        else begin
          let line = Buffer.contents c.cbuf in
          Buffer.clear c.cbuf;
          process_line t c line
        end
      end
    | n -> feed_conn t c (Bytes.sub_string t.scratch 0 n)
  in
  let write_conn c =
    match out_write c.fd c.cout with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) -> fail_conn c (Unix.error_message e)
  in
  let finally () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      let rec loop () =
        if Server.Stop.signalled t.stop then
          (* Graceful drain: no new reads; in-flight work completes
             and flushes, then the loop exits. *)
          List.iter (fun c -> c.eof <- true) !conns;
        List.iter
          (fun c ->
            if (not c.closed) && c.eof && c.pending = 0 && not (out_pending c.cout)
            then close_conn c)
          !conns;
        conns := List.filter (fun c -> not c.closed) !conns;
        if not (Server.Stop.signalled t.stop && !conns = []) then begin
          supervise t;
          Array.iter (fun w -> flush_worker t w) t.workers;
          let stopping = Server.Stop.signalled t.stop in
          let rs =
            (if stopping then [] else [ sock ])
            @ List.filter_map
                (fun c ->
                  (* Per-connection backpressure: stop reading a
                     connection that already has [queue] jobs in
                     flight; bytes wait in the kernel buffer. *)
                  if (not c.eof) && c.pending < t.cfg.Serve_config.queue then
                    Some c.fd
                  else None)
                !conns
            @ (Array.to_list t.workers
              |> List.filter_map (fun w -> if w.alive then Some w.from_w else None))
          in
          let ws =
            List.filter_map
              (fun c -> if out_pending c.cout then Some c.fd else None)
              !conns
            @ (Array.to_list t.workers
              |> List.filter_map (fun w ->
                     if w.alive && out_pending w.wout then Some w.to_w else None))
          in
          (match Unix.select rs ws [] 0.25 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | rready, wready, _ ->
            if List.mem sock rready then accept_all ();
            Array.iter
              (fun w -> if w.alive && List.mem w.from_w rready then pump_worker t w)
              t.workers;
            List.iter
              (fun c -> if (not c.closed) && List.mem c.fd rready then read_conn c)
              !conns;
            Array.iter
              (fun w -> if w.alive && List.mem w.to_w wready then flush_worker t w)
              t.workers;
            List.iter
              (fun c -> if (not c.closed) && List.mem c.fd wready then write_conn c)
              !conns);
          loop ()
        end
      in
      loop ();
      shutdown t)
