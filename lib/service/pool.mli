(** Fixed-size domain worker pool with deterministic job→result mapping.

    The unit of work is one independent closure — a harness
    (series × benchmark) figure cell, or one `disesim serve` job —
    that builds its own machine, engine, and controller and returns a
    value. [run] evaluates an array of such closures on up to [jobs]
    OCaml 5 domains and returns the results {e in submission order},
    so callers that assemble figures (or response streams) from the
    result array produce output bit-identical to a serial run.

    (Lives in [Dise_service] so both the experiment harness and the
    batch server schedule on the same pool; [Dise_harness.Pool]
    re-exports it unchanged.)

    Scheduling guarantees:

    - tasks are {e started} in submission (index) order — a shared
      atomic cursor hands task [i] out before task [i+1];
    - [results.(i)] always holds the value of [tasks.(i)];
    - with [jobs = 1] (or a single task) everything runs in the
      calling domain, in order, with no domain spawned — exactly the
      pre-pool serial behaviour;
    - if any task raises, the exception of the lowest-indexed failing
      task is re-raised (with its backtrace) after all domains have
      been joined, so no work is left running.

    Tasks must not share unsynchronized mutable state; the cross-cell
    caches ({!Request}, {!Dise_workload.Suite}) are internally
    mutex-protected. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the CLI default for
    [--jobs]. *)

type 'a outcome = ('a, exn * Printexc.raw_backtrace) result
(** Per-task result: the task's value, or the exception (with
    backtrace) it raised. *)

val run_outcomes :
  ?jobs:int ->
  ?probe:(int -> domain:int -> float -> unit) ->
  (unit -> 'a) array ->
  'a outcome array
(** Like {!run}, but a raising task records an [Error] in its own slot
    instead of aborting the batch: every task runs to an outcome, and
    [result.(i)] still corresponds to [tasks.(i)]. The serve loop's
    job-isolation primitive — a poisoned job becomes one in-order
    error response while its batch-mates complete normally (see
    doc/resilience.md). [Out_of_memory] and [Stack_overflow] are
    captured like any other exception; callers that must not survive
    them should re-raise from the outcome. *)

val run :
  ?jobs:int ->
  ?probe:(int -> domain:int -> float -> unit) ->
  (unit -> 'a) array ->
  'a array
(** [run ~jobs tasks] evaluates every task and returns the results in
    submission order. [jobs] defaults to {!default_jobs}; values below
    1 are clamped to 1. At most [jobs - 1] domains are spawned (the
    calling domain is the remaining worker).

    [probe i ~domain seconds] is called after each successful task
    with its submission index, the worker that ran it (0 = calling
    domain), and its wall-clock duration. The probe runs on the worker
    domain and so must be thread-safe (e.g.
    {!Dise_telemetry.Manifest.emit}). Without a probe no timestamps
    are read — the hot path is unchanged. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~jobs f xs] is [List.map f xs] evaluated on the pool,
    preserving order. *)
