module Json = Dise_telemetry.Json
module Diag = Dise_isa.Diag

exception Deadline_exceeded

(* --- counters ----------------------------------------------------------- *)

(* Backed by the process-wide Metrics registry so these counters show
   up in every metrics snapshot alongside the latency histograms; this
   module keeps its own (ordered) list of the resilience counters so
   [snapshot]/[reset] touch exactly the counters it declared. *)
module Counters = struct
  module M = Dise_telemetry.Metrics

  type t = M.Counter.t

  let registry : t list ref = ref []

  let make name =
    let c = M.Counter.make name in
    registry := c :: !registry;
    c

  let isolated = make "isolated"
  let timeouts = make "timeouts"
  let shed = make "shed"
  let retries = make "retries"
  let store_drops = make "store_drops"
  let breaker_trips = make "breaker_trips"
  let breaker_probes = make "breaker_probes"
  let breaker_closes = make "breaker_closes"
  let conn_failures = make "conn_failures"
  let journal_replayed = make "journal_replayed"
  let hedges = make "hedges"
  let hedge_wins = make "hedge_wins"
  let heartbeat_misses = make "heartbeat_misses"
  let failovers = make "failovers"
  let torn_frames = make "torn_frames"
  let jit_compiles = make "jit_compiles"
  let jit_hits = make "jit_hits"
  let jit_invalidations = make "jit_invalidations"

  let incr = M.Counter.incr
  let add = M.Counter.add
  let get = M.Counter.get

  let snapshot () =
    List.rev_map (fun c -> (M.Counter.name c, M.Counter.get c)) !registry

  let reset () = List.iter (fun c -> M.Counter.set_for_test c 0) !registry
end

(* --- circuit breaker ---------------------------------------------------- *)

module Breaker = struct
  type state = Closed | Open | Half_open

  let state_name = function
    | Closed -> "closed"
    | Open -> "open"
    | Half_open -> "half_open"

  type t = {
    threshold : int;
    cooldown : float;
    now : unit -> float;
    mutex : Mutex.t;
    mutable st : state;
    mutable consecutive : int;
    mutable opened_at : float;
    mutable probing : bool;  (* a half-open probe is in flight *)
    mutable trips : int;
    mutable probes : int;
    mutable closes : int;
  }

  let create ?(threshold = 8) ?(cooldown_s = 5.0) ?(now = Unix.gettimeofday)
      () =
    {
      threshold = max 1 threshold;
      cooldown = cooldown_s;
      now;
      mutex = Mutex.create ();
      st = Closed;
      consecutive = 0;
      opened_at = 0.;
      probing = false;
      trips = 0;
      probes = 0;
      closes = 0;
    }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let state t = locked t (fun () -> t.st)
  let trips t = locked t (fun () -> t.trips)

  (* May an operation that can OBSERVE failure (a store) proceed?
     Open -> Half_open happens here, once the cooldown has elapsed;
     in Half_open exactly one in-flight probe is allowed, so a burst
     of workers cannot stampede a recovering backend. *)
  let allow t =
    locked t (fun () ->
        match t.st with
        | Closed -> true
        | Open when t.now () -. t.opened_at >= t.cooldown ->
          t.st <- Half_open;
          t.probing <- true;
          t.probes <- t.probes + 1;
          Counters.incr Counters.breaker_probes;
          true
        | Open -> false
        | Half_open ->
          if t.probing then false
          else begin
            t.probing <- true;
            t.probes <- t.probes + 1;
            Counters.incr Counters.breaker_probes;
            true
          end)

  (* Purely observational gate for operations that cannot fail
     loudly (cache reads): skipped whenever the breaker is not
     closed, without consuming the half-open probe slot. *)
  let blocked t = locked t (fun () -> t.st <> Closed)

  let success t =
    locked t (fun () ->
        t.consecutive <- 0;
        match t.st with
        | Half_open ->
          t.st <- Closed;
          t.probing <- false;
          t.closes <- t.closes + 1;
          Counters.incr Counters.breaker_closes
        | Closed | Open -> ())

  let failure t =
    locked t (fun () ->
        match t.st with
        | Half_open ->
          (* The probe failed: back to Open for a fresh cooldown. *)
          t.st <- Open;
          t.probing <- false;
          t.opened_at <- t.now ()
        | Open -> ()
        | Closed ->
          t.consecutive <- t.consecutive + 1;
          if t.consecutive >= t.threshold then begin
            t.st <- Open;
            t.opened_at <- t.now ();
            t.trips <- t.trips + 1;
            Counters.incr Counters.breaker_trips
          end)

  let to_json t =
    locked t (fun () ->
        Json.Obj
          [
            ("state", Json.String (state_name t.st));
            ("trips", Json.Int t.trips);
            ("probes", Json.Int t.probes);
            ("closes", Json.Int t.closes);
          ])
end

(* --- per-worker health state machine ------------------------------------ *)

(* Heartbeat bookkeeping for one supervised worker. The coordinator
   owns the transport (ping/pong frames over the worker pipes); this
   module only decides what the evidence means. The clock is
   injectable so every transition is unit-testable without sleeping.

   Evidence feeding the machine:
   - [ping_sent] / [pong]: each unanswered ping is a miss; [pong]
     clears the run. [suspect_misses] consecutive misses make the
     worker Suspect, [dead_misses] make it Dead.
   - [suspect ~reason]: external gray-failure evidence (a request
     outliving a multiple of the tier p95) forces Suspect until the
     next pong.
   - [force_dead ~reason]: terminal — the respawn cap, or the
     supervisor's own decision. Dead is absorbing; no pong revives a
     worker the tier has already failed over. *)
module Health = struct
  type state = Healthy | Suspect | Dead

  let state_name = function
    | Healthy -> "healthy"
    | Suspect -> "suspect"
    | Dead -> "dead"

  type t = {
    now : unit -> float;
    interval : float;
    suspect_misses : int;
    dead_misses : int;
    mutable last_ping : float;  (* when the newest ping left *)
    mutable misses : int;       (* consecutive pings without a pong *)
    mutable awaiting : bool;    (* a ping is outstanding *)
    mutable suspected : string option;  (* forced-Suspect reason *)
    mutable dead : string option;       (* forced-Dead reason *)
  }

  let create ?(now = Unix.gettimeofday) ~interval_s ~suspect_misses
      ~dead_misses () =
    {
      now;
      interval = Float.max 0.001 interval_s;
      suspect_misses = max 1 suspect_misses;
      dead_misses = max 2 dead_misses;
      last_ping = neg_infinity;
      misses = 0;
      awaiting = false;
      suspected = None;
      dead = None;
    }

  (* Time to send the next ping? Also the point where the previous
     ping, still unanswered after a full interval, becomes a miss. *)
  (* Dead is terminal however it was reached — by decree or by miss
     count. A late pong from a worker already declared dead must not
     resurrect it: the coordinator has by then failed it over. *)
  let is_dead t = t.dead <> None || t.misses >= t.dead_misses

  let due t =
    (not (is_dead t)) && t.now () -. t.last_ping >= t.interval

  let ping_sent t =
    if t.awaiting then begin
      t.misses <- t.misses + 1;
      Counters.incr Counters.heartbeat_misses
    end;
    t.awaiting <- true;
    t.last_ping <- t.now ()

  let pong t =
    if not (is_dead t) then begin
      t.awaiting <- false;
      t.misses <- 0;
      t.suspected <- None
    end

  let suspect t ~reason = if t.dead = None then t.suspected <- Some reason

  let force_dead t ~reason =
    if t.dead = None then t.dead <- Some reason

  let misses t = t.misses

  let state t =
    match t.dead with
    | Some _ -> Dead
    | None ->
      if t.misses >= t.dead_misses then Dead
      else if t.misses >= t.suspect_misses || t.suspected <> None then Suspect
      else Healthy

  (* Why the worker is not Healthy; [None] when it is. *)
  let reason t =
    match t.dead with
    | Some r -> Some r
    | None ->
      if t.misses >= t.dead_misses then
        Some (Printf.sprintf "%d consecutive heartbeat misses" t.misses)
      else if t.misses >= t.suspect_misses then
        Some (Printf.sprintf "%d heartbeat misses" t.misses)
      else t.suspected
end

(* --- bounded retry with exponential backoff + jitter -------------------- *)

(* Jitter needs no determinism; a per-domain PRNG avoids both locking
   and correlated sleep schedules across workers. *)
let jitter_key : Random.State.t Domain.DLS.key =
  Domain.DLS.new_key Random.State.make_self_init

let with_retries ?(attempts = 3) ?(base_delay_s = 0.002)
    ?(max_delay_s = 0.100) ~transient f =
  let attempts = max 1 attempts in
  let rec go n =
    match f () with
    | v -> v
    | exception e when n < attempts && transient e ->
      Counters.incr Counters.retries;
      let cap = Float.min max_delay_s (base_delay_s *. (2. ** float_of_int (n - 1))) in
      let delay = Random.State.float (Domain.DLS.get jitter_key) cap in
      Unix.sleepf delay;
      go (n + 1)
  in
  go 1

(* --- chaos: fault-injection directives ---------------------------------- *)

module Chaos = struct
  exception Injected of string

  type directive = Raise | Sleep of float
  type t = (int * directive) list

  let none = []

  (* "raise=ID,sleep=ID:MS" — malformed fragments are ignored (chaos
     instrumentation must never take the server down by itself). *)
  let parse spec =
    String.split_on_char ',' spec
    |> List.filter_map (fun frag ->
           match String.index_opt frag '=' with
           | None -> None
           | Some i -> (
             let key = String.sub frag 0 i in
             let v = String.sub frag (i + 1) (String.length frag - i - 1) in
             match key with
             | "raise" ->
               Option.map (fun id -> (id, Raise)) (int_of_string_opt v)
             | "sleep" -> (
               match String.index_opt v ':' with
               | None -> None
               | Some j -> (
                 let id = String.sub v 0 j in
                 let ms = String.sub v (j + 1) (String.length v - j - 1) in
                 match (int_of_string_opt id, int_of_string_opt ms) with
                 | Some id, Some ms when ms >= 0 ->
                   Some (id, Sleep (float_of_int ms /. 1000.))
                 | _ -> None))
             | _ -> None))

  let env_var = "DISESIM_SERVE_CHAOS"

  let of_env () =
    match Sys.getenv_opt env_var with
    | None | Some "" -> none
    | Some spec -> parse spec

  let apply t ~id =
    match id with
    | Json.Int id -> (
      match List.assoc_opt id t with
      | None -> ()
      | Some Raise ->
        raise (Injected (Printf.sprintf "chaos: injected fault for job %d" id))
      | Some (Sleep s) -> Unix.sleepf s)
    | _ -> ()
end

(* --- crash-safe job journal --------------------------------------------- *)

module Journal = struct
  type t = {
    fd : Unix.file_descr;
    mutex : Mutex.t;
    mutable seq : int;
    mutable dirty : bool;
  }

  let file ~dir = Filename.concat dir "journal.jsonl"

  let mkdir_p dir =
    let rec go d =
      if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
        go (Filename.dirname d);
        try Unix.mkdir d 0o755
        with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      end
    in
    go dir

  let open_ ~dir =
    mkdir_p dir;
    let fd =
      Unix.openfile (file ~dir) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
        0o644
    in
    { fd; mutex = Mutex.create (); seq = 0; dirty = false }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  (* One line per record, written with a single [write] so a crash
     cannot interleave two records; the trailing partial line a crash
     can leave is skipped by [pending]. *)
  let append t doc =
    let line = Json.to_string doc ^ "\n" in
    let b = Bytes.of_string line in
    let rec write off =
      if off < Bytes.length b then
        write (off + Unix.write t.fd b off (Bytes.length b - off))
    in
    write 0;
    t.dirty <- true

  let append_begin t job =
    locked t (fun () ->
        t.seq <- t.seq + 1;
        let seq = t.seq in
        append t
          (Json.Obj
             [
               ("op", Json.String "begin");
               ("seq", Json.Int seq);
               ("job", job);
             ]);
        seq)

  let mark_done t seq =
    locked t (fun () ->
        append t (Json.Obj [ ("op", Json.String "done"); ("seq", Json.Int seq) ]))

  (* The durability point: begins are synced before any job of the
     batch executes, dones after the batch's responses exist. *)
  let sync t =
    locked t (fun () ->
        if t.dirty then begin
          Unix.fsync t.fd;
          t.dirty <- false
        end)

  let close t =
    sync t;
    locked t (fun () -> try Unix.close t.fd with Unix.Unix_error _ -> ())

  (* Jobs journalled as begun but never marked done — the replay set
     after a crash. Corrupt or half-written lines are skipped, not
     fatal: the journal must be readable after any kill point. *)
  let pending ~dir =
    let path = file ~dir in
    if not (Sys.file_exists path) then []
    else begin
      let ic = open_in_bin path in
      let begun : (int, Json.t) Hashtbl.t = Hashtbl.create 16 in
      let order = ref [] in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            while true do
              let line = input_line ic in
              match Json.parse line with
              | exception Json.Parse_error _ -> ()
              | doc -> (
                match (Json.member "op" doc, Json.member "seq" doc) with
                | Some (Json.String "begin"), Some (Json.Int seq) -> (
                  match Json.member "job" doc with
                  | Some job ->
                    Hashtbl.replace begun seq job;
                    order := seq :: !order
                  | None -> ())
                | Some (Json.String "done"), Some (Json.Int seq) ->
                  Hashtbl.remove begun seq
                | _ -> ())
            done
          with End_of_file -> ());
      List.rev !order
      |> List.filter_map (fun seq ->
             match Hashtbl.find_opt begun seq with
             | Some job ->
               Hashtbl.remove begun seq;
               (* keep first occurrence only *)
               Some (seq, job)
             | None -> None)
    end

  let clear ~dir =
    try Sys.remove (file ~dir) with Sys_error _ -> ()
end
