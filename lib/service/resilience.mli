(** Fault-tolerance primitives for the service layer.

    The paper's flagship ACF confines a module's memory faults so the
    rest of the application keeps running (PAPER.md §4); this module
    gives the {e service} the same discipline. It is deliberately
    low-level — no dependency on {!Request} or {!Server} — so every
    layer of the serve path can use it: per-job isolation and
    deadlines ({!Deadline_exceeded}), bounded retry with jitter
    ({!with_retries}), a circuit breaker for the result cache
    ({!Breaker}), fault-injection directives for chaos testing
    ({!Chaos}), and a crash-safe job journal ({!Journal}). See
    doc/resilience.md for the full semantics.

    All state here is safe to touch from concurrent worker domains. *)

exception Deadline_exceeded
(** Raised by the cooperative deadline poll the simulator runs every
    few thousand events (see {!Dise_uarch.Pipeline.run}'s [?poll])
    when a job's wall-clock budget is exhausted. Mapped to
    {!Dise_isa.Diag.Timeout} by [Request.run_ext]. *)

(** Global, atomic resilience counters. They feed `disesim serve`'s
    summary line and telemetry manifest records; they are
    process-wide (across connections and worker domains). *)
module Counters : sig
  type t

  val isolated : t
  (** Jobs answered [internal] after an escape. *)

  val timeouts : t
  (** Jobs answered [timeout]. *)

  val shed : t
  (** Jobs answered [overloaded] by admission control. *)

  val retries : t
  (** Transient-failure retries performed. *)

  val store_drops : t
  (** Cache stores dropped after retry exhaustion. *)

  val breaker_trips : t
  (** Closed -> Open transitions. *)

  val breaker_probes : t
  (** Half-open probe attempts. *)

  val breaker_closes : t
  (** Half-open -> Closed recoveries. *)

  val conn_failures : t
  (** Socket connections that died and were contained. *)

  val journal_replayed : t
  (** Jobs re-executed from a crash journal. *)

  val hedges : t
  (** Requests duplicated to a second worker because their owner went
      Suspect (gray failure). *)

  val hedge_wins : t
  (** Hedged requests whose {e hedge} leg answered first. *)

  val heartbeat_misses : t
  (** Heartbeat intervals that elapsed without the worker's pong. *)

  val failovers : t
  (** Workers declared Dead and removed from the ring live. *)

  val torn_frames : t
  (** Partial or corrupt length-prefixed frames discarded from a
      worker pipe (the peer is respawned, its work resubmitted). *)

  val jit_compiles : t
  (** Superblocks compiled across all jobs (see doc/jit.md). *)

  val jit_hits : t
  (** JIT dispatches served from an already-compiled superblock. *)

  val jit_invalidations : t
  (** Superblocks retired by production-set/PT/RT generation bumps. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int

  val snapshot : unit -> (string * int) list
  (** All counters, in declaration order, as [(name, value)]. *)

  val reset : unit -> unit
  (** Zero every counter (tests). *)
end

(** Consecutive-failure circuit breaker (Closed / Open / Half-open).

    Built for the result cache: [threshold] consecutive failures trip
    it Open; after [cooldown_s] the next {!allow} admits exactly one
    half-open probe; the probe's {!success} closes the breaker, its
    {!failure} re-opens it for a fresh cooldown. While not Closed,
    {!blocked} is [true] and callers should skip the protected
    backend entirely (degraded mode) rather than queue on it. *)
module Breaker : sig
  type t
  type state = Closed | Open | Half_open

  val create :
    ?threshold:int ->
    ?cooldown_s:float ->
    ?now:(unit -> float) ->
    unit ->
    t
  (** [threshold] defaults to 8 consecutive failures (clamped to
      >= 1); [cooldown_s] to 5 s; [now] (injectable for tests) to
      [Unix.gettimeofday]. *)

  val state : t -> state

  val state_name : state -> string
  (** ["closed"], ["open"], or ["half_open"]. *)

  val allow : t -> bool
  (** May a failure-observing operation proceed? Performs the
      Open -> Half-open transition once the cooldown has elapsed and
      admits exactly one concurrent probe in Half-open. Callers MUST
      follow an allowed operation with {!success} or {!failure}. *)

  val blocked : t -> bool
  (** [state t <> Closed], without consuming the probe slot — the
      gate for operations that cannot fail loudly (cache reads). *)

  val success : t -> unit
  val failure : t -> unit
  val trips : t -> int

  val to_json : t -> Dise_telemetry.Json.t
  (** [{"state", "trips", "probes", "closes"}] for manifests. *)
end

(** Per-worker health state machine ([Healthy] / [Suspect] / [Dead])
    for tier supervision (doc/serve-tier.md, "Supervision and
    failover").

    The coordinator sends a heartbeat ping to every worker each
    [interval_s] and feeds the evidence in: {!ping_sent} when a ping
    leaves (an unanswered predecessor becomes a miss and bumps
    {!Counters.heartbeat_misses}), {!pong} when the worker answers
    (clears the miss run and any forced suspicion). [suspect_misses]
    consecutive misses make the worker [Suspect] — its in-flight
    requests are hedged to the next worker on the ring —
    [dead_misses] make it [Dead]. {!suspect} forces [Suspect] on
    external gray-failure evidence (a request outliving the
    configured multiple of the tier p95); {!force_dead} is terminal
    (respawn cap exhausted, or the supervisor's verdict): [Dead] is
    absorbing and triggers live failover. The clock is injectable so
    transitions are testable without sleeping. *)
module Health : sig
  type t
  type state = Healthy | Suspect | Dead

  val state_name : state -> string
  (** ["healthy"], ["suspect"], or ["dead"]. *)

  val create :
    ?now:(unit -> float) ->
    interval_s:float ->
    suspect_misses:int ->
    dead_misses:int ->
    unit ->
    t
  (** [suspect_misses] clamps to >= 1, [dead_misses] to >= 2,
      [interval_s] to >= 1 ms. *)

  val due : t -> bool
  (** Is it time to send the next ping? Always [false] once Dead. *)

  val ping_sent : t -> unit

  val pong : t -> unit
  (** An answered ping clears misses and any latency suspicion. A
      pong arriving once Dead is ignored: death is terminal however
      it was reached, so a late answer cannot resurrect a failed-over
      worker. *)

  val suspect : t -> reason:string -> unit
  val force_dead : t -> reason:string -> unit

  val misses : t -> int
  (** Consecutive unanswered pings. *)

  val state : t -> state

  val reason : t -> string option
  (** Why the worker is not Healthy ([None] when it is). *)
end

val with_retries :
  ?attempts:int ->
  ?base_delay_s:float ->
  ?max_delay_s:float ->
  transient:(exn -> bool) ->
  (unit -> 'a) ->
  'a
(** [with_retries ~transient f] runs [f], retrying up to [attempts]
    (default 3) total tries while [transient] says the exception is
    worth retrying, sleeping a full-jitter exponential backoff
    (uniform in [0, min(max_delay_s, base_delay_s * 2^(n-1))])
    between tries. Non-transient exceptions and the last failure
    propagate unchanged. Each retry bumps {!Counters.retries}. *)

(** Fault-injection directives, read from the [DISESIM_SERVE_CHAOS]
    environment variable by the serve loop. Syntax:
    ["raise=ID"] (the job whose integer [id] is ID raises
    {!Chaos.Injected} before executing — it must surface as one
    in-order [internal] response) and ["sleep=ID:MS"] (the job stalls
    MS milliseconds first — the way chaos tests overrun a deadline
    without simulating a huge workload), comma-separated. Malformed
    fragments are ignored. Test/CI instrumentation only; with the
    variable unset the cost is one [getenv] per stream. *)
module Chaos : sig
  exception Injected of string

  type t

  val none : t
  val env_var : string
  val of_env : unit -> t
  val parse : string -> t
  val apply : t -> id:Dise_telemetry.Json.t -> unit
end

(** Crash-safe JSONL job journal.

    [disesim serve --journal DIR] appends a ["begin"] record for
    every admitted job {e before} it executes and a ["done"] record
    once its response exists, fsyncing at batch granularity
    ({!sync}). After a crash, {!pending} returns the jobs that begun
    but never finished — the restart replays them (idempotently: a
    replayed job re-enters through [Request.run], so its result lands
    in the content-addressed cache under the same key). Records are
    written with a single [write(2)] each and a half-written trailing
    line is skipped on recovery, so the journal stays readable after
    any kill point. Format (one object per line):
    [{"op":"begin","seq":N,"job":<request document>}] and
    [{"op":"done","seq":N}]. *)
module Journal : sig
  type t

  val file : dir:string -> string
  (** [DIR/journal.jsonl]. *)

  val open_ : dir:string -> t
  (** Create [dir] if needed and open the journal for appending. *)

  val append_begin : t -> Dise_telemetry.Json.t -> int
  (** Journal one admitted job document; returns its sequence number
      for the matching {!mark_done}. Not yet durable — call {!sync}
      before executing the batch. *)

  val mark_done : t -> int -> unit

  val sync : t -> unit
  (** fsync if anything was appended. *)

  val close : t -> unit

  val pending : dir:string -> (int * Dise_telemetry.Json.t) list
  (** Begun-but-not-done jobs in journal order ([] if no journal
      exists). Never raises on corrupt lines. *)

  val clear : dir:string -> unit
  (** Remove the journal file (after a successful replay). *)
end
