(** One serializable record for every serve-tier knob.

    This is the serve API's single configuration surface: the
    coordinator ([disesim serve --workers N]), the worker processes it
    spawns, and the classic in-process server all consume the same
    {!t}. It replaces the optional-argument sprawl that used to live
    on [Server.opts]: a config is plain data with a canonical JSON
    encoding, so it can be loaded from a file ([--config FILE]),
    shipped to worker processes through their spawn environment, and
    schema-validated (doc/schema/serve_config.schema.json).

    Precedence, lowest to highest: {!default}, a config file
    ({!of_file}), explicit flags ({!override}). The CLI composes all
    three; library callers usually want {!of_flags}. *)

type t = {
  workers : int;
      (** Worker {e processes} behind the coordinator; [0] (default)
          serves in-process with no coordinator (see {!Coordinator}). *)
  jobs : int;  (** worker domains per process, as {!Pool.run}'s [jobs] *)
  queue : int;
      (** max jobs in flight per stream (chunk size / per-connection
          backpressure bound), >= 1; defaults to [4 * jobs] *)
  deadline_ms : int option;
      (** per-job wall-clock budget; [None] (default): unbounded *)
  shed_above : int option;
      (** admission high-water mark in [dyn_target] units; [None]
          (default): never shed *)
  tenant_quota : int option;
      (** max in-flight jobs per tenant (the envelope's ["tenant"]
          member; absent = the anonymous tenant); excess jobs are
          answered ["overloaded"]. [None] (default): no quota *)
  journal : string option;
      (** crash-journal directory; the coordinator gives each worker
          the [worker-<shard>] subdirectory *)
  manifest : string option;  (** JSONL telemetry manifest path *)
  metrics_every_s : float;
      (** min spacing of ["metrics_snapshot"] records (default 1 s) *)
  breaker : int;
      (** result-cache breaker threshold; [0] disables (default 8) *)
  breaker_cooldown_ms : int;  (** breaker open-state cooldown (default 5000) *)
  heartbeat_ms : int;
      (** coordinator-to-worker heartbeat interval; [0] disables
          supervision pings entirely (default 500) *)
  suspect_misses : int;
      (** consecutive missed heartbeats before a worker is [Suspect]
          and its in-flight requests are hedged (default 3, >= 1) *)
  dead_misses : int;
      (** consecutive missed heartbeats before a worker is declared
          [Dead] and failed over out of the ring (default 20, >= 2) *)
  hedge_p95x : float;
      (** gray-failure latency hedge: a request outliving
          [hedge_p95x] times the tier's request p95 marks its worker
          [Suspect]; [0] disables latency hedging (default 8.0) *)
  respawn_cap : int;
      (** respawns granted to one shard before its worker is declared
          [Dead] and failed over (default 100; [0] = first crash is
          terminal) *)
}

val default : unit -> t
(** [jobs] from {!Pool.default_jobs}, [queue = 4 * jobs], everything
    else off / at its documented default. *)

val of_flags :
  ?workers:int ->
  ?jobs:int ->
  ?queue:int ->
  ?deadline_ms:int ->
  ?shed_above:int ->
  ?tenant_quota:int ->
  ?journal:string ->
  ?manifest:string ->
  ?metrics_every_s:float ->
  ?breaker:int ->
  ?breaker_cooldown_ms:int ->
  ?heartbeat_ms:int ->
  ?suspect_misses:int ->
  ?dead_misses:int ->
  ?hedge_p95x:float ->
  ?respawn_cap:int ->
  unit ->
  t
(** Build a config from optional flag values — the mechanical
    migration shim for former [Server.opts] callers. Unset flags take
    the {!default}; out-of-range values are clamped ([jobs]/[queue]
    >= 1, [workers]/[breaker] >= 0). *)

val override :
  t ->
  ?workers:int ->
  ?jobs:int ->
  ?queue:int ->
  ?deadline_ms:int ->
  ?shed_above:int ->
  ?tenant_quota:int ->
  ?journal:string ->
  ?manifest:string ->
  ?metrics_every_s:float ->
  ?breaker:int ->
  ?breaker_cooldown_ms:int ->
  ?heartbeat_ms:int ->
  ?suspect_misses:int ->
  ?dead_misses:int ->
  ?hedge_p95x:float ->
  ?respawn_cap:int ->
  unit ->
  t
(** [override cfg ...flags] replaces exactly the members a flag was
    given for — how [--config FILE] composes with explicit flags.
    Giving [?jobs] without [?queue] re-derives [queue = 4 * jobs]. *)

val to_json : t -> Dise_telemetry.Json.t
(** Canonical encoding: fixed member order, [None] members omitted.
    Validates against doc/schema/serve_config.schema.json. *)

val of_json : Dise_telemetry.Json.t -> (t, Dise_isa.Diag.t) result
(** Total over arbitrary JSON: missing members take their defaults,
    explicit [null] clears an optional member, unknown members are
    {e rejected} (a config file typo must not silently disable a
    knob). [of_json (to_json c) = Ok c] for any normalized [c]. *)

val of_file : string -> (t, Dise_isa.Diag.t) result
(** Read and decode one JSON config file. *)
