type t = { mutable state : int }

let gamma = 0x1E3779B97F4A7C15
let mix1 = 0x2F58476D1CE4E5B9
let mix2 = 0x14D049BB133111EB

let create seed = { state = seed lxor gamma }

(* splitmix64-style mixing, with constants truncated to OCaml's native
   int so the state stays non-negative; we expose 62 bits. *)
let next t =
  t.state <- (t.state + gamma) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * mix1 land max_int in
  let z = (z lxor (z lsr 27)) * mix2 land max_int in
  (z lxor (z lsr 31)) land 0x3FFFFFFFFFFFFFFF

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = next t land 1 = 1

let float t = float_of_int (next t) *. 0x1p-62

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. choices in
  if total <= 0. then invalid_arg "Rng.weighted: no positive weight";
  let x = float t *. total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: empty"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if x < acc +. w then v else go (acc +. w) rest
  in
  go 0. choices

let split t = create (next t)
