(** The benchmark suite: generated workloads, cached per (profile,
    dynamic-target) so the many experiment configurations of one bench
    run reuse identical programs. *)

type entry = {
  profile : Profile.t;
  gen : Codegen.t;
  image : Dise_isa.Program.Image.t;
}

val get : ?dyn_target:int -> Profile.t -> entry
(** Generate (or fetch from cache) the workload for a profile. *)

val all : ?dyn_target:int -> unit -> entry list
(** All twelve SPEC2000-named workloads. *)

val clear_cache : unit -> unit
