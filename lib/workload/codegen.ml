module I = Dise_isa.Insn
module Op = Dise_isa.Opcode
module Reg = Dise_isa.Reg
module Program = Dise_isa.Program
module B = Program.Builder

let data_base = 0x04000000
let code_base = 0x00100000
let data_segment_id = data_base lsr 26
let code_segment_id = code_base lsr 26
let error_label = "__error"
let error_exit_code = 77

(* Generator register conventions. *)
let r_base = Reg.r 16  (* data segment base *)
let r_mask = Reg.r 17  (* index mask, word aligned *)
let r_lcg = Reg.r 18   (* register-resident LCG state *)
let r_mulc = Reg.r 19  (* LCG multiplier *)
let r_outer = Reg.r 21 (* main outer-loop counter *)

let lcg_mult = 0x41C64E6D
let lcg_add = 12345

type t = {
  program : Program.t;
  hot_insns : int;
  total_insns : int;
  est_dynamic : int;
}

(* Load a non-negative 31-bit constant into a register (1-4 insns). *)
let li b reg v =
  assert (v >= 0 && v <= 0x7FFFFFFF);
  if v <= 32767 then B.ins b (I.Ropi (Op.Add, Reg.zero, v, reg))
  else begin
    let hi = v lsr 16 and lo = v land 0xFFFF in
    assert (hi <= 32767);
    B.ins b (I.Lui (hi, reg));
    if lo <> 0 then
      if lo <= 32767 then B.ins b (I.Ropi (Op.Add, reg, lo, reg))
      else begin
        B.ins b (I.Ropi (Op.Add, reg, 0x4000, reg));
        B.ins b (I.Ropi (Op.Add, reg, 0x4000, reg));
        if lo - 0x8000 <> 0 then
          B.ins b (I.Ropi (Op.Add, reg, lo - 0x8000, reg))
      end
  end

(* --- block idioms --------------------------------------------------- *)

type block =
  | Straight of I.t list
  | Skip of I.t list * Op.bop * Reg.t * I.t list
      (** head; conditional skipping body *)
  | Call_leaf of int

(* General scratch registers are r1..r12. Memory blocks hold their
   effective address in r13/r14, which no other idiom ever writes, so a
   computed address can never be clobbered between its computation and
   the access that uses it. r15 is the inner-loop counter. *)
let scratch rng = Reg.r (1 + Rng.int rng 12)
let addr_reg rng = Reg.r (13 + Rng.int rng 2)
let r_inner = Reg.r 15

let lcg_step =
  [ I.Rop (Op.Mul, r_lcg, r_mulc, r_lcg);
    I.Ropi (Op.Add, r_lcg, lcg_add, r_lcg) ]

(* Compute a legal data address into [a]. *)
let addr_calc rng a =
  let i = scratch rng in
  lcg_step
  @ [ I.Rop (Op.And_, r_lcg, r_mask, i); I.Rop (Op.Add, r_base, i, a) ]

let alu_ops = [| Op.Add; Op.Sub; Op.Xor; Op.And_; Op.Or_; Op.Cmplt; Op.Cmpeq |]
let shift_ops = [| Op.Sll; Op.Srl; Op.Sra |]

let alu_insn rng =
  let d = scratch rng in
  if Rng.float rng < 0.25 then
    I.Ropi (Rng.pick rng shift_ops, scratch rng, Rng.range rng 1 7, d)
  else if Rng.bool rng then
    I.Rop (Rng.pick rng alu_ops, scratch rng, scratch rng, d)
  else I.Ropi (Rng.pick rng alu_ops, scratch rng, Rng.range rng (-64) 64, d)

let alu_block rng =
  let n = Rng.range rng 3 6 in
  Straight (List.init n (fun _ -> alu_insn rng))

(* Several field accesses off one computed base, like a record or
   array-element touch: this keeps the dynamic load density realistic
   despite the address computation overhead. *)
let load_block rng =
  let a = addr_reg rng in
  let v = scratch rng in
  let n_loads = Rng.range rng 2 4 in
  let loads =
    List.init n_loads (fun k ->
        if k > 0 && Rng.float rng < 0.15 then
          I.Mem (Op.Ldbu, a, (4 * k) + 1, scratch rng)
        else I.Mem (Op.Ldq, a, 4 * k, if k = 0 then v else scratch rng))
  in
  Straight
    (addr_calc rng a @ loads @ [ I.Rop (Op.Xor, v, r_lcg, scratch rng) ])

let store_block rng =
  let a = addr_reg rng in
  let v = scratch rng in
  let n_stores = Rng.range rng 2 3 in
  let stores =
    List.init n_stores (fun k ->
        if k > 0 && Rng.float rng < 0.2 then
          I.Mem (Op.Stb, a, (4 * k) + 1, v)
        else I.Mem (Op.Stq, a, 4 * k, v))
  in
  Straight (addr_calc rng a @ [ alu_insn rng ] @ stores)

let rmw_block rng =
  let a = addr_reg rng in
  let v = scratch rng in
  Straight
    (addr_calc rng a
    @ [
        I.Mem (Op.Ldq, a, 0, v);
        I.Ropi (Op.Add, v, Rng.range rng 1 16, v);
        I.Mem (Op.Stq, a, 0, v);
      ])

let skip_block rng =
  let tst = scratch rng in
  (* Test a middle bit of the LCG state: the low bit of an LCG
     alternates deterministically, which a gshare predictor learns
     perfectly; bits 11..18 behave like coin flips. *)
  let bit = Rng.range rng 11 18 in
  let head =
    lcg_step
    @ [ I.Ropi (Op.Srl, r_lcg, bit, tst); I.Ropi (Op.And_, tst, 1, tst) ]
  in
  let body = List.init (Rng.range rng 1 3) (fun _ -> alu_insn rng) in
  Skip (head, (if Rng.bool rng then Op.Beq else Op.Bne), tst, body)

let gen_block rng (p : Profile.t) ~n_leaves =
  let choice =
    Rng.weighted rng
      [
        (p.Profile.load_w *. 1.4, `Load);
        (p.Profile.store_w *. 2.0, `Store);
        (p.Profile.store_w *. 0.8, `Rmw);
        (p.Profile.call_w, `Call);
        (0.15, `Alu);
      ]
  in
  match choice with
  | `Load -> load_block rng
  | `Store -> store_block rng
  | `Rmw -> rmw_block rng
  | `Call -> Call_leaf (Rng.int rng n_leaves)
  | `Alu -> alu_block rng

(* --- idiom variants ---------------------------------------------------

   Real programs repeat idioms with different register assignments and
   field offsets, not verbatim. Each pool idiom therefore carries a few
   variants: consistent renamings of its scratch registers (address and
   global registers are preserved) plus a per-block jitter of memory
   offsets. Unparameterized compression cannot merge variants; DISE's
   parameterized dictionary entries can, when few enough fields
   differ — exactly the effect Figure 7 isolates. *)

let rename_insns rng insns =
  let is_scratch = function Reg.R n -> n >= 1 && n <= 12 | _ -> false in
  let used = ref [] in
  List.iter
    (fun i ->
      List.iter
        (fun r -> if is_scratch r && not (List.mem r !used) then used := r :: !used)
        (I.defs i @ I.uses i))
    insns;
  let map =
    List.filter_map
      (fun r ->
        if Rng.float rng < 0.85 then Some (r, Reg.r (1 + Rng.int rng 12))
        else None)
      !used
  in
  let f r = match List.assoc_opt r map with Some r' -> r' | None -> r in
  List.map (I.map_regs f) insns

let jitter_insns rng insns =
  let delta = Rng.pick rng [| 0; 4 |] in
  if delta = 0 then insns
  else
    List.map
      (fun i ->
        match i with
        | I.Mem (op, base, off, data) when off + delta <= 12 ->
          I.Mem (op, base, off + delta, data)
        | _ -> i)
      insns

let variant_of rng blk =
  match blk with
  | Straight l -> Straight (jitter_insns rng (rename_insns rng l))
  | Skip (head, bop, tst, body) ->
    (* Rename head and body consistently, tracking where the test
       register went. *)
    let marker = I.Jr tst in
    let all = rename_insns rng ((marker :: head) @ body) in
    (match all with
    | I.Jr tst' :: rest ->
      let n = List.length head in
      let head' = List.filteri (fun i _ -> i < n) rest in
      let body' = List.filteri (fun i _ -> i >= n) rest in
      Skip (head', bop, tst', body')
    | _ -> blk)
  | Call_leaf k -> Call_leaf k

let n_variants = 12

(* Fraction of emitted blocks that are one-off (never repeated):
   real binaries are not built entirely from repeated idioms. *)
let unique_frac = 0.35

let make_pool rng (p : Profile.t) ~n_leaves =
  let n = max 4 p.Profile.idiom_pool in
  (* Guarantee some data-dependent branches so the profile's
     [random_branch] knob always has teeth. *)
  let n_skip =
    max 1 (int_of_float (float_of_int n *. p.Profile.random_branch *. 0.5))
  in
  let mk i =
    let base = if i < n_skip then skip_block rng else gen_block rng p ~n_leaves in
    Array.init n_variants (fun v ->
        if v = 0 then base else variant_of rng base)
  in
  Array.init n mk

let pick_block rng (p : Profile.t) ~n_leaves pool =
  if Rng.float rng < unique_frac then gen_block rng p ~n_leaves
  else Rng.pick rng (Rng.pick rng pool)

(* Static instruction count of one emitted block. *)
let block_static = function
  | Straight l -> List.length l
  | Skip (h, _, _, b) -> List.length h + 1 + List.length b
  | Call_leaf _ -> 1

(* Expected dynamic instructions per execution of the block. *)
let block_dynamic ~leaf_len = function
  | Straight l -> float_of_int (List.length l)
  | Skip (h, _, _, b) ->
    float_of_int (List.length h + 1) +. (0.5 *. float_of_int (List.length b))
  | Call_leaf k -> float_of_int (1 + leaf_len.(k))

let emit_block b rng blk =
  match blk with
  | Straight l -> List.iter (B.ins b) l
  | Skip (head, bop, tst, body) ->
    let skip = B.fresh_label b "skip" in
    List.iter (B.ins b) head;
    B.ins b (I.Br (bop, tst, I.Lab skip));
    List.iter (B.ins b) body;
    B.label b skip;
    ignore rng
  | Call_leaf k -> B.ins b (I.Jal (I.Lab (Printf.sprintf "leaf_%d" k)))

(* --- leaf functions -------------------------------------------------- *)

let emit_leaf b rng k =
  B.label b (Printf.sprintf "leaf_%d" k);
  let n = Rng.range rng 5 12 in
  let body =
    List.init n (fun i ->
        if i = 2 && Rng.float rng < 0.5 then
          (* one legal load in about half the leaves *)
          I.Mem (Op.Ldq, r_base, 4 * Rng.int rng 16, scratch rng)
        else alu_insn rng)
  in
  List.iter (B.ins b) body;
  B.ins b (I.Jr Reg.ra);
  n + 1

(* --- functions -------------------------------------------------------- *)

(* Emit one function. The body is mostly straight-line code with
   occasional small inner loops; each invocation executes each static
   instruction only a couple of times. Re-execution — and therefore
   instruction-cache reuse — comes from main's outer loop calling the
   whole hot set again and again, so a profile's hot working set really
   is what cycles through the I-cache, the property Figures 6 and 7
   depend on. Returns (static size, expected dynamic instructions per
   invocation). *)
let emit_function b rng ~name ~profile ~n_leaves ~pool ~leaf_len ~target_static =
  B.label b name;
  B.ins b (I.Lda (Reg.sp, -8, Reg.sp));
  B.ins b (I.Mem (Op.Stq, Reg.sp, 0, Reg.ra));
  let static = ref 2 in
  let body_dyn = ref 0. in
  while !static < target_static - 5 do
    if Rng.float rng < 0.4 then begin
      (* Small inner loop over a couple of blocks. *)
      let inner_trip = Rng.range rng 2 4 in
      let n_blocks = Rng.range rng 1 2 in
      let blocks =
        List.init n_blocks (fun _ -> pick_block rng profile ~n_leaves pool)
      in
      B.ins b (I.Ropi (Op.Add, Reg.zero, inner_trip, r_inner));
      let l = B.fresh_label b "inner" in
      B.label b l;
      List.iter (emit_block b rng) blocks;
      B.ins b (I.Ropi (Op.Add, r_inner, -1, r_inner));
      B.ins b (I.Br (Op.Bgt, r_inner, I.Lab l));
      let blk_static =
        List.fold_left (fun acc blk -> acc + block_static blk) 0 blocks
      in
      let blk_dyn =
        List.fold_left
          (fun acc blk -> acc +. block_dynamic ~leaf_len blk)
          0. blocks
      in
      static := !static + blk_static + 3;
      body_dyn :=
        !body_dyn +. 1. +. (float_of_int inner_trip *. (blk_dyn +. 2.))
    end
    else begin
      let blk = pick_block rng profile ~n_leaves pool in
      emit_block b rng blk;
      static := !static + block_static blk;
      body_dyn := !body_dyn +. block_dynamic ~leaf_len blk
    end
  done;
  B.ins b (I.Mem (Op.Ldq, Reg.sp, 0, Reg.ra));
  B.ins b (I.Lda (Reg.sp, 8, Reg.sp));
  B.ins b (I.Jr Reg.ra);
  let static = !static + 3 in
  let dyn = 5. +. !body_dyn in
  (static, dyn)

let emit_main b ~hot_names ~mask ~outer_iters ~init_words =
  B.label b "main";
  li b r_base data_base;
  li b r_mask mask;
  li b r_mulc lcg_mult;
  li b r_lcg 987654321;
  (* Seed the first [init_words] words of the data segment. *)
  B.ins b (I.Ropi (Op.Add, Reg.zero, init_words, Reg.r 1));
  B.ins b (I.Lda (r_base, 0, Reg.r 3));
  B.label b "init_loop";
  List.iter (B.ins b) lcg_step;
  B.ins b (I.Mem (Op.Stq, Reg.r 3, 0, r_lcg));
  B.ins b (I.Lda (Reg.r 3, 4, Reg.r 3));
  B.ins b (I.Ropi (Op.Add, Reg.r 1, -1, Reg.r 1));
  B.ins b (I.Br (Op.Bgt, Reg.r 1, I.Lab "init_loop"));
  li b r_outer outer_iters;
  B.label b "outer_loop";
  List.iter (fun f -> B.ins b (I.Jal (I.Lab f))) hot_names;
  B.ins b (I.Ropi (Op.Add, r_outer, -1, r_outer));
  B.ins b (I.Br (Op.Bgt, r_outer, I.Lab "outer_loop"));
  B.ins b (I.Ropi (Op.Add, Reg.zero, 0, Reg.r 2));
  B.ins b I.Halt;
  B.label b error_label;
  B.ins b (I.Ropi (Op.Add, Reg.zero, error_exit_code, Reg.r 2));
  B.ins b I.Halt

let round_pow2 v =
  let rec go p = if p >= v then p else go (p * 2) in
  go 1024

let generate ?(dyn_target = 300_000) (p : Profile.t) =
  let rng = Rng.create p.Profile.seed in
  let n_leaves = Rng.range rng 4 8 in
  let pool = make_pool rng p ~n_leaves in
  let hot_static_target = p.Profile.hot_kb * 256 in
  let n_hot = max 1 (min 64 (p.Profile.hot_kb / 2)) in
  let per_func = max 24 (hot_static_target / n_hot) in
  let b = B.create ~prefix:"m" () in
  (* Leaves first (their sizes feed the dynamic estimates). *)
  let leaf_len = Array.make n_leaves 0 in
  (* Emit leaves into a separate builder so main comes first in the
     final image; sizes are needed before emitting hot functions. *)
  let leaf_b = B.create ~prefix:"l" () in
  for k = 0 to n_leaves - 1 do
    leaf_len.(k) <- emit_leaf leaf_b rng k
  done;
  (* Hot functions. *)
  let hot_b = B.create ~prefix:"h" () in
  let hot_names = List.init n_hot (fun i -> Printf.sprintf "hot_%d" i) in
  let hot_static = ref 0 in
  let per_outer = ref 0. in
  List.iter
    (fun name ->
      let st, dyn =
        emit_function hot_b rng ~name ~profile:p ~n_leaves ~pool ~leaf_len
          ~target_static:per_func
      in
      hot_static := !hot_static + st;
      per_outer := !per_outer +. dyn +. 1.)
    hot_names;
  (* Cold functions (never called). *)
  let cold_b = B.create ~prefix:"c" () in
  let cold_target = p.Profile.cold_kb * 256 in
  let cold_static = ref 0 in
  let cold_idx = ref 0 in
  while !cold_static < cold_target do
    let st, _ =
      emit_function cold_b rng
        ~name:(Printf.sprintf "cold_%d" !cold_idx)
        ~profile:p ~n_leaves ~pool ~leaf_len
        ~target_static:(min 512 (cold_target - !cold_static + 24))
    in
    cold_static := !cold_static + st;
    incr cold_idx
  done;
  (* Main. *)
  let data_bytes = round_pow2 (p.Profile.data_kb * 1024) in
  let mask = (data_bytes - 1) land lnot 3 in
  let init_words = min 1024 (data_bytes / 4) in
  let init_cost = 14 + (init_words * 6) in
  let per_outer_cost = !per_outer +. 3. in
  let outer_iters =
    max 1
      (int_of_float
         (float_of_int (max 0 (dyn_target - init_cost)) /. per_outer_cost))
  in
  emit_main b ~hot_names ~mask ~outer_iters ~init_words;
  let program =
    Program.concat
      [
        B.to_program b;
        B.to_program hot_b;
        B.to_program leaf_b;
        B.to_program cold_b;
      ]
  in
  let total = Program.size program in
  {
    program;
    hot_insns = !hot_static;
    total_insns = total;
    est_dynamic =
      init_cost + int_of_float (float_of_int outer_iters *. per_outer_cost);
  }

let layout t = Program.layout ~base:code_base t.program
