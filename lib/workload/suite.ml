type entry = {
  profile : Profile.t;
  gen : Codegen.t;
  image : Dise_isa.Program.Image.t;
}

let cache : (string * int, entry) Hashtbl.t = Hashtbl.create 16

let get ?(dyn_target = 300_000) profile =
  let key = (profile.Profile.name, dyn_target) in
  match Hashtbl.find_opt cache key with
  | Some e -> e
  | None ->
    let gen = Codegen.generate ~dyn_target profile in
    let e = { profile; gen; image = Codegen.layout gen } in
    Hashtbl.replace cache key e;
    e

let all ?dyn_target () = List.map (get ?dyn_target) Profile.spec2000

let clear_cache () = Hashtbl.reset cache
