type entry = {
  profile : Profile.t;
  gen : Codegen.t;
  image : Dise_isa.Program.Image.t;
}

(* Generated workloads are cached per (name, dyn_target). The harness
   may call [get] from several domains (parallel cell evaluation), so
   the table is mutex-protected. A key is claimed as [Pending] before
   the (deterministic but expensive) generation runs outside the lock,
   and concurrent callers block on the condition until the claimant
   stores the result — exactly one generation per key, and every
   caller shares the same physical entry. *)
type slot = Pending | Ready of entry

let cache : (string * int, slot) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()
let cache_cond = Condition.create ()

let get ?(dyn_target = 300_000) profile =
  let key = (profile.Profile.name, dyn_target) in
  Mutex.lock cache_mutex;
  let rec claim () =
    match Hashtbl.find_opt cache key with
    | Some (Ready e) ->
      Mutex.unlock cache_mutex;
      `Hit e
    | Some Pending ->
      Condition.wait cache_cond cache_mutex;
      claim ()
    | None ->
      Hashtbl.replace cache key Pending;
      Mutex.unlock cache_mutex;
      `Compute
  in
  match claim () with
  | `Hit e -> e
  | `Compute -> (
    match
      let gen = Codegen.generate ~dyn_target profile in
      { profile; gen; image = Codegen.layout gen }
    with
    | e ->
      Mutex.lock cache_mutex;
      Hashtbl.replace cache key (Ready e);
      Condition.broadcast cache_cond;
      Mutex.unlock cache_mutex;
      e
    | exception exn ->
      (* Release the claim so a later caller can retry. *)
      Mutex.lock cache_mutex;
      Hashtbl.remove cache key;
      Condition.broadcast cache_cond;
      Mutex.unlock cache_mutex;
      raise exn)

let all ?dyn_target () = List.map (get ?dyn_target) Profile.spec2000

let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex
