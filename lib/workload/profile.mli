(** Workload profiles.

    SPEC2000 integer binaries are not available in this environment, so
    the evaluation runs on synthetic programs generated from per-
    benchmark profiles. Each profile fixes the characteristics that the
    paper's experiments actually discriminate on:

    - [hot_kb]: static size of the hot loop code — the instruction
      working set, which determines I-cache behaviour (the paper notes
      crafty, gzip and vpr exceed 32KB; about half the suite exceeds
      8KB);
    - [cold_kb]: additional cold code, which inflates the static
      compression corpus the way real binaries' unexecuted code does;
    - [data_kb]: data working set driving D-cache behaviour;
    - [load_w]/[store_w]/[branch_w]: instruction-mix weights (fault
      isolation expands loads and stores — about 30% of dynamic
      instructions overall);
    - [random_branch]: fraction of conditional branches that are
      data-dependent coin flips rather than predictable loop bounds;
    - [idiom_pool]: number of distinct basic-block skeletons the
      generator draws from — smaller pools mean more repeated code and
      better compressibility;
    - [call_w]: weight of call-block emission (function call density).

    The numbers are calibrated so the suite spans the paper's relevant
    regimes, not to clone any particular binary. *)

type t = {
  name : string;
  seed : int;
  hot_kb : int;
  cold_kb : int;
  data_kb : int;
  load_w : float;
  store_w : float;
  branch_w : float;
  call_w : float;
  random_branch : float;
  idiom_pool : int;
}

val spec2000 : t list
(** The twelve SPEC2000-integer-named profiles, in the paper's
    alphabetical order. *)

val find : string -> t option
(** Resolve a profile by name: the SPEC2000 suite plus {!tiny} (so
    serialized run requests can name the test workload). *)

val names : string list

val tiny : t
(** A miniature profile for tests: sub-second generation and runs.
    Resolvable through {!find} but not listed in {!names}. *)

val pp : Format.formatter -> t -> unit
