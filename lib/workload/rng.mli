(** Deterministic pseudo-random numbers (splitmix64).

    The workload generator must produce byte-identical programs for a
    given profile across runs and platforms, so it uses its own tiny
    generator rather than [Random]. *)

type t

val create : int -> t
(** Seeded generator. *)

val next : t -> int
(** Next 62-bit non-negative value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo, hi] inclusive. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [0, 1). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted : t -> (float * 'a) list -> 'a
(** Pick by relative weight; weights must be non-negative and not all
    zero. *)

val split : t -> t
(** An independent generator derived from this one's stream. *)
