(** Synthetic program generator.

    Produces a complete, runnable program from a {!Profile.t}:

    - [main] initializes the generator registers (data base pointer,
      index mask, a register-resident LCG) and a small seeded region of
      the data segment, then drives an outer loop calling every hot
      function;
    - hot functions are loops over basic blocks drawn from a
      per-program pool of block idioms (ALU, load, store, data-
      dependent skip-branches, leaf calls); pool size controls static
      redundancy and hence compressibility;
    - leaf functions are small straight-line callees;
    - cold functions are generated from the same pool but never called,
      padding the static image like real binaries' unexecuted code;
    - an [__error] handler (exit code 77) is included for fault-
      isolation ACFs to target.

    Load/store addresses are always [data_base + (lcg & mask)], so the
    program is memory-safe and every address lies in the data segment —
    fault isolation checks pass unless an ACF or experiment deliberately
    corrupts a pointer. Registers r23..r25 are never touched, modelling
    the registers a binary-rewriting tool scavenges.

    Generation is deterministic in the profile (including its seed). *)

val data_base : int
(** 0x04000000 — start of the data segment. *)

val code_base : int
(** 0x00100000 — start of the text segment. *)

val data_segment_id : int
(** [data_base lsr 26]: the legal data segment identifier for MFI. *)

val code_segment_id : int

val error_label : string
(** ["__error"], the fault handler planted in every generated
    program. *)

val error_exit_code : int
(** 77: the exit code the handler leaves in r2. *)

type t = {
  program : Dise_isa.Program.t;
  hot_insns : int;      (** static instructions in hot functions *)
  total_insns : int;
  est_dynamic : int;    (** rough dynamic-length estimate *)
}

val generate : ?dyn_target:int -> Profile.t -> t
(** [dyn_target] (default 300_000) scales the outer loop so a full run
    executes roughly that many application instructions. *)

val layout : t -> Dise_isa.Program.Image.t
(** Standard layout at {!code_base} with 4-byte instructions. *)
