type t = {
  name : string;
  seed : int;
  hot_kb : int;
  cold_kb : int;
  data_kb : int;
  load_w : float;
  store_w : float;
  branch_w : float;
  call_w : float;
  random_branch : float;
  idiom_pool : int;
}

let mk name seed ~hot ~cold ~data ~ld ~st ~br ~call ~rnd ~pool =
  {
    name;
    seed;
    hot_kb = hot;
    cold_kb = cold;
    data_kb = data;
    load_w = ld;
    store_w = st;
    branch_w = br;
    call_w = call;
    random_branch = rnd;
    idiom_pool = pool;
  }

(* Working-set calibration: crafty, gzip and vpr exceed a 32KB I-cache;
   eon, gcc, perlbmk and vortex sit between 8 and 32KB; the rest fit in
   8KB or nearly so. mcf is the data-bound pointer-chaser. *)
let spec2000 =
  [
    mk "bzip2"   101 ~hot:6  ~cold:24  ~data:256  ~ld:0.26 ~st:0.10 ~br:0.13 ~call:0.02 ~rnd:0.18 ~pool:24;
    mk "crafty"  102 ~hot:48 ~cold:120 ~data:128  ~ld:0.28 ~st:0.08 ~br:0.14 ~call:0.04 ~rnd:0.30 ~pool:60;
    mk "eon"     103 ~hot:20 ~cold:160 ~data:96   ~ld:0.27 ~st:0.14 ~br:0.10 ~call:0.08 ~rnd:0.12 ~pool:40;
    mk "gap"     104 ~hot:14 ~cold:180 ~data:384  ~ld:0.26 ~st:0.11 ~br:0.12 ~call:0.05 ~rnd:0.20 ~pool:48;
    mk "gcc"     105 ~hot:28 ~cold:240 ~data:256  ~ld:0.25 ~st:0.12 ~br:0.16 ~call:0.06 ~rnd:0.35 ~pool:80;
    mk "gzip"    106 ~hot:40 ~cold:36  ~data:192  ~ld:0.24 ~st:0.10 ~br:0.13 ~call:0.02 ~rnd:0.15 ~pool:20;
    mk "mcf"     107 ~hot:4  ~cold:16  ~data:4096 ~ld:0.34 ~st:0.09 ~br:0.14 ~call:0.02 ~rnd:0.25 ~pool:16;
    mk "parser"  108 ~hot:10 ~cold:60  ~data:192  ~ld:0.27 ~st:0.10 ~br:0.15 ~call:0.05 ~rnd:0.28 ~pool:36;
    mk "perlbmk" 109 ~hot:24 ~cold:200 ~data:160  ~ld:0.28 ~st:0.13 ~br:0.14 ~call:0.07 ~rnd:0.25 ~pool:64;
    mk "twolf"   110 ~hot:9  ~cold:80  ~data:128  ~ld:0.27 ~st:0.09 ~br:0.14 ~call:0.03 ~rnd:0.26 ~pool:32;
    mk "vortex"  111 ~hot:28 ~cold:220 ~data:512  ~ld:0.29 ~st:0.15 ~br:0.11 ~call:0.07 ~rnd:0.14 ~pool:56;
    mk "vpr"     112 ~hot:44 ~cold:60  ~data:160  ~ld:0.26 ~st:0.10 ~br:0.13 ~call:0.03 ~rnd:0.22 ~pool:44;
  ]

let names = List.map (fun p -> p.name) spec2000

let tiny =
  mk "tiny" 999 ~hot:2 ~cold:4 ~data:16 ~ld:0.25 ~st:0.10 ~br:0.14 ~call:0.04
    ~rnd:0.2 ~pool:10

(* [tiny] resolves by name too, so serialized run requests (which
   reference workloads by name — see Dise_service.Request) can target
   the test workload without it joining the SPEC suite in [names]. *)
let find name =
  if name = tiny.name then Some tiny
  else List.find_opt (fun p -> p.name = name) spec2000

let pp ppf t =
  Format.fprintf ppf
    "%s: hot=%dKB cold=%dKB data=%dKB ld=%.2f st=%.2f br=%.2f rnd=%.2f pool=%d"
    t.name t.hot_kb t.cold_kb t.data_kb t.load_w t.store_w t.branch_w
    t.random_branch t.idiom_pool
