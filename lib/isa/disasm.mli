(** Disassembly / image pretty-printing. *)

val pp_image : Format.formatter -> Program.Image.t -> unit
(** Print every instruction with its address, interleaving label
    definitions from the symbol table and rendering resolved branch
    targets symbolically where a label matches. *)

val pp_range :
  Format.formatter -> Program.Image.t -> lo:int -> hi:int -> unit
(** Like {!pp_image}, restricted to instruction indices [lo, hi). *)

val insn_at : Program.Image.t -> int -> string
(** One-line rendering of the instruction at a byte address, or
    ["<no insn>"]. *)
