type target =
  | Abs of int
  | Lab of string

type t =
  | Rop of Opcode.rop * Reg.t * Reg.t * Reg.t
  | Ropi of Opcode.rop * Reg.t * int * Reg.t
  | Lda of Reg.t * int * Reg.t
  | Lui of int * Reg.t
  | Mem of Opcode.mop * Reg.t * int * Reg.t
  | Br of Opcode.bop * Reg.t * target
  | Jmp of target
  | Jal of target
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t
  | Dbr of Opcode.bop * Reg.t * int
  | Djmp of int
  | Codeword of { op : int; p1 : int; p2 : int; p3 : int; tag : int }
  | Nop
  | Halt

let cls = function
  | Rop _ | Ropi _ | Lda _ | Lui _ -> Opcode.C_alu
  | Mem ((Ldq | Ldbu), _, _, _) -> Opcode.C_load
  | Mem ((Stq | Stb), _, _, _) -> Opcode.C_store
  | Br _ -> Opcode.C_branch
  | Jmp _ | Jal _ -> Opcode.C_jump
  | Jr _ | Jalr _ -> Opcode.C_ijump
  | Dbr _ | Djmp _ -> Opcode.C_dise
  | Codeword _ -> Opcode.C_codeword
  | Nop -> Opcode.C_nop
  | Halt -> Opcode.C_sys

let rs = function
  | Rop (_, rs, _, _) | Ropi (_, rs, _, _) | Lda (rs, _, _)
  | Mem (_, rs, _, _) | Br (_, rs, _) | Jr rs | Jalr (rs, _)
  | Dbr (_, rs, _) ->
    Some rs
  | Lui _ | Jmp _ | Jal _ | Djmp _ | Codeword _ | Nop | Halt -> None

let rt = function
  | Rop (_, _, rt, _) | Mem (_, _, _, rt) -> Some rt
  | Ropi _ | Lda _ | Lui _ | Br _ | Jmp _ | Jal _ | Jr _ | Jalr _ | Dbr _
  | Djmp _ | Codeword _ | Nop | Halt ->
    None

let rd = function
  | Rop (_, _, _, rd) | Ropi (_, _, _, rd) | Lda (_, _, rd) | Lui (_, rd)
  | Jalr (_, rd) ->
    Some rd
  | Mem ((Ldq | Ldbu), _, _, rt) -> Some rt
  | Mem ((Stq | Stb), _, _, _) -> None
  | Br _ | Jmp _ | Jr _ | Dbr _ | Djmp _ | Codeword _ | Nop | Halt -> None
  | Jal _ -> Some Reg.ra

let imm = function
  | Ropi (_, _, i, _) | Lda (_, i, _) | Lui (i, _) | Mem (_, _, i, _) ->
    Some i
  | Br (_, _, Abs a) -> Some a
  | Rop _ | Br (_, _, Lab _) | Jmp _ | Jal _ | Jr _ | Jalr _ | Dbr _
  | Djmp _ | Codeword _ | Nop | Halt ->
    None

let branch_target = function
  | Br (_, _, t) | Jmp t | Jal t -> Some t
  | Rop _ | Ropi _ | Lda _ | Lui _ | Mem _ | Jr _ | Jalr _ | Dbr _ | Djmp _
  | Codeword _ | Nop | Halt ->
    None

let non_zero r = not (Reg.equal r Reg.zero)

let defs i =
  let d =
    match i with
    | Rop (_, _, _, rd) | Ropi (_, _, _, rd) | Lda (_, _, rd) | Lui (_, rd)
    | Jalr (_, rd) | Mem ((Ldq | Ldbu), _, _, rd) ->
      [ rd ]
    | Jal _ -> [ Reg.ra ]
    | Mem ((Stq | Stb), _, _, _) | Br _ | Jmp _ | Jr _ | Dbr _ | Djmp _
    | Codeword _ | Nop | Halt ->
      []
  in
  List.filter non_zero d

let uses i =
  let u =
    match i with
    | Rop (_, rs, rt, _) -> [ rs; rt ]
    | Ropi (_, rs, _, _) | Lda (rs, _, _) | Mem ((Ldq | Ldbu), rs, _, _)
    | Br (_, rs, _) | Jr rs | Jalr (rs, _) | Dbr (_, rs, _) ->
      [ rs ]
    | Mem ((Stq | Stb), rs, _, rt) -> [ rs; rt ]
    | Lui _ | Jmp _ | Jal _ | Djmp _ | Codeword _ | Nop | Halt -> []
  in
  List.filter non_zero u

(* Allocation-free variants of [uses]/[defs] for the timing model's
   per-event scoreboard walk ([uses]/[defs] build a fresh list per
   call, which dominates the event loop's allocation). *)

let fold_uses f acc i =
  match i with
  | Rop (_, rs, rt, _) ->
    let acc = if non_zero rs then f acc rs else acc in
    if non_zero rt then f acc rt else acc
  | Ropi (_, rs, _, _) | Lda (rs, _, _) | Mem ((Ldq | Ldbu), rs, _, _)
  | Br (_, rs, _) | Jr rs | Jalr (rs, _) | Dbr (_, rs, _) ->
    if non_zero rs then f acc rs else acc
  | Mem ((Stq | Stb), rs, _, rt) ->
    let acc = if non_zero rs then f acc rs else acc in
    if non_zero rt then f acc rt else acc
  | Lui _ | Jmp _ | Jal _ | Djmp _ | Codeword _ | Nop | Halt -> acc

let iter_defs f i =
  match i with
  | Rop (_, _, _, rd) | Ropi (_, _, _, rd) | Lda (_, _, rd) | Lui (_, rd)
  | Jalr (_, rd) | Mem ((Ldq | Ldbu), _, _, rd) ->
    if non_zero rd then f rd
  | Jal _ -> f Reg.ra
  | Mem ((Stq | Stb), _, _, _) | Br _ | Jmp _ | Jr _ | Dbr _ | Djmp _
  | Codeword _ | Nop | Halt ->
    ()

let is_control = function
  | Br _ | Jmp _ | Jal _ | Jr _ | Jalr _ | Halt -> true
  | Rop _ | Ropi _ | Lda _ | Lui _ | Mem _ | Dbr _ | Djmp _ | Codeword _
  | Nop ->
    false

let writes_memory = function
  | Mem ((Stq | Stb), _, _, _) -> true
  | _ -> false

let reads_memory = function
  | Mem ((Ldq | Ldbu), _, _, _) -> true
  | _ -> false

let codeword ~op ~p1 ~p2 ~p3 ~tag =
  if op < 0 || op >= Opcode.num_reserved then
    invalid_arg "Insn.codeword: reserved opcode out of range";
  let check5 name v =
    if v < 0 || v > 31 then
      invalid_arg (Printf.sprintf "Insn.codeword: %s out of 5-bit range" name)
  in
  check5 "p1" p1;
  check5 "p2" p2;
  check5 "p3" p3;
  if tag < 0 || tag > 2047 then
    invalid_arg "Insn.codeword: tag out of 11-bit range";
  Codeword { op; p1; p2; p3; tag }

(* Dense dispatch keys. Layout:
   Rop: 0..13, Ropi: 14..27, Lda: 28, Lui: 29, Mem: 30..33, Br: 34..39,
   Jmp: 40, Jal: 41, Jr: 42, Jalr: 43, Dbr: 44..49, Djmp: 50,
   Codeword: 51..54, Nop: 55, Halt: 56. *)

let rop_index op =
  let rec find i = function
    | [] -> assert false
    | x :: rest -> if x = op then i else find (i + 1) rest
  in
  find 0 Opcode.all_rops

let mop_index (op : Opcode.mop) =
  match op with Ldq -> 0 | Ldbu -> 1 | Stq -> 2 | Stb -> 3

let bop_index (op : Opcode.bop) =
  match op with Beq -> 0 | Bne -> 1 | Blt -> 2 | Bge -> 3 | Ble -> 4
  | Bgt -> 5

let key = function
  | Rop (op, _, _, _) -> rop_index op
  | Ropi (op, _, _, _) -> 14 + rop_index op
  | Lda _ -> 28
  | Lui _ -> 29
  | Mem (op, _, _, _) -> 30 + mop_index op
  | Br (op, _, _) -> 34 + bop_index op
  | Jmp _ -> 40
  | Jal _ -> 41
  | Jr _ -> 42
  | Jalr _ -> 43
  | Dbr (op, _, _) -> 44 + bop_index op
  | Djmp _ -> 50
  | Codeword { op; _ } -> 51 + op
  | Nop -> 55
  | Halt -> 56

let num_keys = 57

let range a b =
  let rec go i acc = if i < a then acc else go (i - 1) (i :: acc) in
  go b []

let keys_of_class = function
  | Opcode.C_alu -> range 0 29
  | Opcode.C_load -> [ 30; 31 ]
  | Opcode.C_store -> [ 32; 33 ]
  | Opcode.C_branch -> range 34 39
  | Opcode.C_jump -> [ 40; 41 ]
  | Opcode.C_ijump -> [ 42; 43 ]
  | Opcode.C_dise -> range 44 50
  | Opcode.C_codeword -> range 51 54
  | Opcode.C_nop -> [ 55 ]
  | Opcode.C_sys -> [ 56 ]

let cls_of_key k =
  if k < 0 || k >= num_keys then invalid_arg "Insn.cls_of_key";
  match List.find_opt (fun c -> List.mem k (keys_of_class c)) Opcode.all_classes with
  | Some c -> c
  | None -> assert false

let example_of_key k =
  if k < 0 || k >= num_keys then invalid_arg "Insn.example_of_key";
  let r0 = Reg.zero in
  if k < 14 then Rop (List.nth Opcode.all_rops k, r0, r0, r0)
  else if k < 28 then Ropi (List.nth Opcode.all_rops (k - 14), r0, 0, r0)
  else
    match k with
    | 28 -> Lda (r0, 0, r0)
    | 29 -> Lui (0, r0)
    | 30 | 31 | 32 | 33 -> Mem (List.nth Opcode.all_mops (k - 30), r0, 0, r0)
    | 34 | 35 | 36 | 37 | 38 | 39 ->
      Br (List.nth Opcode.all_bops (k - 34), r0, Abs 0)
    | 40 -> Jmp (Abs 0)
    | 41 -> Jal (Abs 0)
    | 42 -> Jr r0
    | 43 -> Jalr (r0, r0)
    | 44 | 45 | 46 | 47 | 48 | 49 ->
      Dbr (List.nth Opcode.all_bops (k - 44), r0, 0)
    | 50 -> Djmp 0
    | 51 | 52 | 53 | 54 ->
      Codeword { op = k - 51; p1 = 0; p2 = 0; p3 = 0; tag = 0 }
    | 55 -> Nop
    | 56 -> Halt
    | _ -> assert false

let mnemonic_of_key k =
  match example_of_key k with
  | Rop (op, _, _, _) -> Opcode.rop_to_string op
  | Ropi (op, _, _, _) -> Opcode.rop_to_string op ^ "i"
  | Lda _ -> "lda"
  | Lui _ -> "lui"
  | Mem (op, _, _, _) -> Opcode.mop_to_string op
  | Br (op, _, _) -> Opcode.bop_to_string op
  | Jmp _ -> "jmp"
  | Jal _ -> "jal"
  | Jr _ -> "jr"
  | Jalr _ -> "jalr"
  | Dbr (op, _, _) -> "d" ^ Opcode.bop_to_string op
  | Djmp _ -> "djmp"
  | Codeword { op; _ } -> Printf.sprintf "cw%d" op
  | Nop -> "nop"
  | Halt -> "halt"

let map_target f = function
  | Br (op, r, t) -> Br (op, r, f t)
  | Jmp t -> Jmp (f t)
  | Jal t -> Jal (f t)
  | i -> i

let map_regs f = function
  | Rop (op, a, b, c) -> Rop (op, f a, f b, f c)
  | Ropi (op, a, v, c) -> Ropi (op, f a, v, f c)
  | Lda (a, v, c) -> Lda (f a, v, f c)
  | Lui (v, c) -> Lui (v, f c)
  | Mem (op, a, v, c) -> Mem (op, f a, v, f c)
  | Br (op, r, t) -> Br (op, f r, t)
  | Jr r -> Jr (f r)
  | Jalr (a, b) -> Jalr (f a, f b)
  | Dbr (op, r, off) -> Dbr (op, f r, off)
  | (Jmp _ | Jal _ | Djmp _ | Codeword _ | Nop | Halt) as i -> i

let equal (a : t) (b : t) = a = b

let pp_target ppf = function
  | Abs a -> Format.fprintf ppf "0x%x" a
  | Lab l -> Format.pp_print_string ppf l

let pp ppf i =
  let pr fmt = Format.fprintf ppf fmt in
  let reg = Reg.pp in
  match i with
  | Rop (op, a, b, c) ->
    pr "%s %a, %a, %a" (Opcode.rop_to_string op) reg a reg b reg c
  | Ropi (op, a, v, c) ->
    pr "%s %a, #%d, %a" (Opcode.rop_to_string op) reg a v reg c
  | Lda (base, off, dst) -> pr "lda %a, %d(%a)" reg dst off reg base
  | Lui (v, dst) -> pr "lui #%d, %a" v reg dst
  | Mem (op, base, off, data) ->
    pr "%s %a, %d(%a)" (Opcode.mop_to_string op) reg data off reg base
  | Br (op, r, t) ->
    pr "%s %a, %a" (Opcode.bop_to_string op) reg r pp_target t
  | Jmp t -> pr "jmp %a" pp_target t
  | Jal t -> pr "jal %a" pp_target t
  | Jr r -> pr "jr %a" reg r
  | Jalr (r, d) -> pr "jalr %a, %a" reg r reg d
  | Dbr (op, r, off) -> pr "d%s %a, @%d" (Opcode.bop_to_string op) reg r off
  | Djmp off -> pr "djmp @%d" off
  | Codeword { op; p1; p2; p3; tag } ->
    pr "cw%d %d, %d, %d, tag=%d" op p1 p2 p3 tag
  | Nop -> pr "nop"
  | Halt -> pr "halt"

let to_string i = Format.asprintf "%a" pp i
