module Image = Program.Image

let label_map img =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, addr) -> Hashtbl.replace tbl addr name)
    (Image.symbols img);
  tbl

let render labels insn =
  let symbolic = function
    | Insn.Abs a as t -> (
      match Hashtbl.find_opt labels a with
      | Some name -> Insn.Lab name
      | None -> t)
    | Insn.Lab _ as t -> t
  in
  Insn.to_string (Insn.map_target symbolic insn)

let pp_range ppf img ~lo ~hi =
  let labels = label_map img in
  for i = lo to hi - 1 do
    let addr = Image.addr_of_index img i in
    (match Hashtbl.find_opt labels addr with
    | Some name -> Format.fprintf ppf "%s:@." name
    | None -> ());
    Format.fprintf ppf "  %08x:  %s@." addr (render labels (Image.get img i))
  done

let pp_image ppf img = pp_range ppf img ~lo:0 ~hi:(Image.length img)

let insn_at img addr =
  match Image.fetch img addr with
  | None -> "<no insn>"
  | Some i -> render (label_map img) i
