(** Typed instructions.

    Operand order follows Alpha convention: sources first, destination
    last ([add r1, r2, r3] computes [r3 := r1 + r2]; [srl r1, #26, r2]
    computes [r2 := r1 >> 26]).

    Control-transfer targets are either absolute byte addresses ([Abs])
    or symbolic labels ([Lab]); labels only appear before layout
    ({!Program.layout} resolves every target to [Abs]).

    [Dbr]/[Djmp] are the DISE-internal control transfers: they modify
    the DISEPC only and are legal only inside replacement sequences.
    [Codeword] is a reserved-opcode instruction planted by DISE-aware
    tools: three 5-bit parameter fields plus an 11-bit replacement
    sequence tag. *)

type target =
  | Abs of int     (** absolute byte address *)
  | Lab of string  (** symbolic; resolved at layout *)

type t =
  | Rop of Opcode.rop * Reg.t * Reg.t * Reg.t  (** op rs, rt, rd *)
  | Ropi of Opcode.rop * Reg.t * int * Reg.t   (** op rs, #imm16, rd *)
  | Lda of Reg.t * int * Reg.t                 (** lda rd, imm16(rs): rd := rs+imm *)
  | Lui of int * Reg.t                         (** lui #imm16, rd: rd := imm<<16 *)
  | Mem of Opcode.mop * Reg.t * int * Reg.t    (** ldq/stq rt, imm16(rs) *)
  | Br of Opcode.bop * Reg.t * target          (** bne rs, target *)
  | Jmp of target
  | Jal of target                              (** link in ra *)
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t                      (** jalr rs, rd: rd := link *)
  | Dbr of Opcode.bop * Reg.t * int            (** DISEPC-relative, in instructions *)
  | Djmp of int                                (** absolute DISEPC *)
  | Codeword of { op : int; p1 : int; p2 : int; p3 : int; tag : int }
  | Nop
  | Halt

val cls : t -> Opcode.cls
(** Opcode class, the coarse category DISE patterns may match on. *)

val rs : t -> Reg.t option
(** First source register field (base register for memory ops). *)

val rt : t -> Reg.t option
(** Second register field: second ALU source, or the data register of a
    load/store (the destination for loads). *)

val rd : t -> Reg.t option
(** Destination register field, when the instruction writes one. *)

val imm : t -> int option
(** Immediate field, if present. For [Br] with a resolved target this
    is [None]; use {!branch_target}. *)

val branch_target : t -> target option
(** Target of a direct control transfer ([Br]/[Jmp]/[Jal]). *)

val defs : t -> Reg.t list
(** Registers written (excluding the zero register). *)

val uses : t -> Reg.t list
(** Registers read. *)

val fold_uses : ('a -> Reg.t -> 'a) -> 'a -> t -> 'a
(** [fold_uses f acc i] folds [f] over the registers [i] reads, in the
    same order as {!uses} but without building a list — for per-event
    hot paths. *)

val iter_defs : (Reg.t -> unit) -> t -> unit
(** [iter_defs f i] applies [f] to each register [i] writes (excluding
    the zero register), allocation-free counterpart of {!defs}. *)

val is_control : t -> bool
(** True for every instruction that may redirect the application PC. *)

val writes_memory : t -> bool
val reads_memory : t -> bool

val codeword : op:int -> p1:int -> p2:int -> p3:int -> tag:int -> t
(** Smart constructor; range-checks each field ([op] < 4 reserved
    opcodes, params 5 bits, tag 11 bits). *)

val key : t -> int
(** A small dense dispatch key identifying the opcode (not the
    operands); used to index pattern-dispatch tables. All keys are in
    [0, num_keys). *)

val num_keys : int

val keys_of_class : Opcode.cls -> int list
(** All dispatch keys whose instructions belong to the given class. *)

val cls_of_key : int -> Opcode.cls
(** Inverse of the key/class relation. Raises [Invalid_argument] for
    an out-of-range key. *)

val example_of_key : int -> t
(** A representative instruction with the given dispatch key (operands
    are placeholders); used by static analyses that need per-opcode
    field-shape information. *)

val mnemonic_of_key : int -> string
(** Assembly mnemonic for a dispatch key: register-form ALU ops print
    bare (["add"]), immediate forms with an [i] suffix (["addi"]),
    codewords as ["cw0"].."cw3", DISE branches with a [d] prefix. *)

val map_target : (target -> target) -> t -> t
(** Rewrite the control-transfer target, if any. *)

val map_regs : (Reg.t -> Reg.t) -> t -> t
(** Rewrite every register field. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
