(** Unified error reporting for the public APIs.

    The libraries historically signalled failure with a mix of
    [Invalid_argument], [Failure], [Engine.Expansion_error], and
    per-module [Parse_error] exceptions. [Diag.t] is the shared typed
    error every [*_result] API variant returns, with one
    pretty-printer and one exit-code policy, so callers (notably
    [disesim] and the batch service) report and classify failures
    uniformly.

    Exit-code policy (used by [disesim]):
    - malformed input (assembly, production DSL, JSON, CLI values):
      {b 2};
    - simulation-time failures (runtime errors, expansion errors,
      trapped workloads): {b 3};
    - result-cache I/O failures: {b 4};
    - per-job wall-clock deadline exceeded: {b 5};
    - load shed / resource busy (admission queue high-water, socket
      path held by a live server): {b 6};
    - internal faults (an unexpected exception confined to one job or
      connection by the resilience layer): {b 7}.

    The categories double as the ["kind"] field of `disesim serve`
    error responses (see doc/service.md). *)

type t =
  | Parse of { source : string; line : int; msg : string }
      (** Malformed input. [source] names the input (a file name or a
          description like ["request"]); [line] is 1-based, 0 when
          unknown. *)
  | Invalid of string
      (** A structurally well-formed input that names something that
          does not exist or violates a documented constraint (unknown
          benchmark, bad register index, ...). *)
  | Runtime of string  (** The simulated machine failed mid-run. *)
  | Expansion of string
      (** The DISE engine could not expand a matched trigger. *)
  | Cache of string  (** Result-cache I/O failure. *)
  | Timeout of string
      (** The job exceeded its wall-clock budget (serve
          [--deadline-ms]); see doc/resilience.md. *)
  | Overloaded of string
      (** Load shed: the job was refused to protect the server
          (admission high-water mark), or a resource is held by
          another live process. *)
  | Internal of string
      (** An unexpected exception that the resilience layer confined
          to one job slot or one connection instead of letting it
          kill the server. *)

val category : t -> string
(** ["parse"], ["simulation"], ["cache"], ["timeout"],
    ["overloaded"], or ["internal"] — the coarse class used for exit
    codes and serve-protocol error kinds. [Parse] and [Invalid] are
    both ["parse"] (bad input); [Runtime] and [Expansion] are
    ["simulation"]. *)

val exit_code : t -> int
(** 2 / 3 / 4 / 5 / 6 / 7 for parse / simulation / cache / timeout /
    overloaded / internal, per the policy above. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
