type item =
  | Label of string
  | Ins of Insn.t

type t = item list

exception Layout_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Layout_error s)) fmt

module Image = struct
  type t = {
    base : int;
    insns : Insn.t array;
    addrs : int array;
    sizes : int array;
    symtab : (string, int) Hashtbl.t;
    by_addr : (int, int) Hashtbl.t;
    text_bytes : int;
    dense : bool;
        (* every instruction is 4 bytes, so index = (addr - base) / 4 *)
  }

  let base t = t.base
  let length t = Array.length t.insns
  let text_bytes t = t.text_bytes
  let is_dense t = t.dense
  let get t i = t.insns.(i)
  let addr_of_index t i = t.addrs.(i)
  let size_of_index t i = t.sizes.(i)
  let index_of_addr t addr = Hashtbl.find_opt t.by_addr addr

  (* Allocation-free index lookup for the emulator's fetch path: -1
     when [addr] is not an instruction boundary. Dense images resolve
     with arithmetic; sparse (variable-size codeword) images binary-
     search [addrs], which layout builds in increasing order. *)
  let find_index t addr =
    if t.dense then begin
      let off = addr - t.base in
      if off >= 0 && off < t.text_bytes && off land 3 = 0 then off lsr 2
      else -1
    end
    else begin
      let lo = ref 0 and hi = ref (Array.length t.addrs - 1) and found = ref (-1) in
      while !lo <= !hi do
        let mid = (!lo + !hi) lsr 1 in
        let a = Array.unsafe_get t.addrs mid in
        if a = addr then begin
          found := mid;
          lo := !hi + 1
        end
        else if a < addr then lo := mid + 1
        else hi := mid - 1
      done;
      !found
    end

  let raw_insns t = t.insns

  let fetch t addr =
    match index_of_addr t addr with
    | Some i -> Some t.insns.(i)
    | None -> None

  let symbol t name = Hashtbl.find_opt t.symtab name

  let symbols t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.symtab []
    |> List.sort (fun (_, a) (_, b) -> compare a b)

  let end_addr t = t.base + t.text_bytes

  let iter f t =
    Array.iteri (fun i insn -> f ~addr:t.addrs.(i) insn) t.insns
end

let default_size _ = 4

let layout ?(base = 0x100000) ?(size_of = default_size) (prog : t) =
  let symtab = Hashtbl.create 64 in
  (* Pass 1: assign addresses. *)
  let addr = ref base in
  let insns = ref [] in
  let n = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Label l ->
        if Hashtbl.mem symtab l then fail "duplicate label %s" l;
        Hashtbl.add symtab l !addr
      | Ins i ->
        let sz = size_of i in
        insns := (i, !addr, sz) :: !insns;
        addr := !addr + sz;
        incr n)
    prog;
  let text_bytes = !addr - base in
  let triples = Array.of_list (List.rev !insns) in
  let resolve = function
    | Insn.Abs a -> Insn.Abs a
    | Insn.Lab l -> (
      match Hashtbl.find_opt symtab l with
      | Some a -> Insn.Abs a
      | None -> fail "undefined label %s" l)
  in
  let insns = Array.map (fun (i, _, _) -> Insn.map_target resolve i) triples in
  let addrs = Array.map (fun (_, a, _) -> a) triples in
  let sizes = Array.map (fun (_, _, s) -> s) triples in
  let by_addr = Hashtbl.create (Array.length insns * 2) in
  Array.iteri (fun i a -> Hashtbl.replace by_addr a i) addrs;
  let dense =
    text_bytes = 4 * Array.length insns
    && Array.for_all (fun s -> s = 4) sizes
  in
  { Image.base; insns; addrs; sizes; symtab; by_addr; text_bytes; dense }

let insns prog =
  List.filter_map (function Ins i -> Some i | Label _ -> None) prog

let size prog = List.length (insns prog)
let concat = List.concat

let pp ppf prog =
  List.iter
    (fun item ->
      match item with
      | Label l -> Format.fprintf ppf "%s:@." l
      | Ins i -> Format.fprintf ppf "  %a@." Insn.pp i)
    prog

module Builder = struct
  type program = t

  type t = {
    mutable rev_items : item list;
    mutable counter : int;
    prefix : string;
  }

  let create ?(prefix = "") () = { rev_items = []; counter = 0; prefix }
  let add b item = b.rev_items <- item :: b.rev_items
  let label b l = add b (Label l)
  let ins b i = add b (Ins i)
  let append b prog = List.iter (add b) prog

  let fresh_label b stem =
    b.counter <- b.counter + 1;
    if b.prefix = "" then Printf.sprintf "%s_%d" stem b.counter
    else Printf.sprintf "%s_%s%d" stem b.prefix b.counter

  let to_program b = List.rev b.rev_items
end
