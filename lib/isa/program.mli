(** Symbolic programs and their layout into images.

    A {!t} is an ordered list of labels and instructions with symbolic
    control-transfer targets. Binary-rewriting ACFs (e.g. software
    fault isolation) and the compressor operate at this level, where
    inserting or deleting instructions cannot break branches; {!layout}
    then assigns byte addresses and resolves every target.

    Layout takes a [size_of] function because compressed images are not
    uniform: the dedicated decompressor modelled in the evaluation uses
    2-byte codewords, while everything else occupies 4 bytes. *)

type item =
  | Label of string
  | Ins of Insn.t

type t = item list

exception Layout_error of string

module Image : sig
  (** A laid-out program: instructions with assigned byte addresses and
      all targets resolved to absolute form. *)

  type t

  val base : t -> int
  val length : t -> int
  (** Number of instructions. *)

  val text_bytes : t -> int
  (** Total static text size in bytes. *)

  val get : t -> int -> Insn.t
  (** Instruction by index. *)

  val addr_of_index : t -> int -> int
  val size_of_index : t -> int -> int

  val index_of_addr : t -> int -> int option
  (** Index of the instruction starting at the given byte address. *)

  val is_dense : t -> bool
  (** True when every instruction occupies 4 bytes, i.e. the index of
      the instruction at [addr] is [(addr - base) / 4]. Uncompressed
      images are dense; images with 2-byte codewords are not. *)

  val find_index : t -> int -> int
  (** Allocation-free {!index_of_addr}: the index of the instruction
      starting at the given byte address, or [-1]. O(1) for dense
      images, O(log n) (binary search) otherwise. This is the
      emulator's per-fetch lookup. *)

  val raw_insns : t -> Insn.t array
  (** The underlying instruction array, indexed like {!get}. Shared,
      not a copy — callers must not mutate it. Exposed so the emulator
      can predecode without an extra copy. *)

  val fetch : t -> int -> Insn.t option
  (** Instruction at a byte address, if one starts there. *)

  val symbol : t -> string -> int option
  (** Address of a label. *)

  val symbols : t -> (string * int) list

  val end_addr : t -> int
  (** First byte address past the text. *)

  val iter : (addr:int -> Insn.t -> unit) -> t -> unit
end

val layout : ?base:int -> ?size_of:(Insn.t -> int) -> t -> Image.t
(** Assign addresses starting at [base] (default [0x100000]) using
    [size_of] (default: 4 bytes for everything) and resolve all label
    targets. Raises {!Layout_error} on undefined or duplicate labels. *)

val insns : t -> Insn.t list
(** The instructions, without labels. *)

val size : t -> int
(** Number of instructions. *)

val concat : t list -> t

val pp : Format.formatter -> t -> unit

module Builder : sig
  (** Imperative accumulation of program items, used by the workload
      generator and the rewriting tools. *)

  type program = t
  type t

  (** [create ?prefix ()] makes an empty builder. [prefix] namespaces
      {!fresh_label} results, letting several builders contribute to
      one program without label collisions. *)
  val create : ?prefix:string -> unit -> t
  val label : t -> string -> unit
  val ins : t -> Insn.t -> unit
  val add : t -> item -> unit
  val append : t -> program -> unit
  val fresh_label : t -> string -> string
  (** [fresh_label b stem] returns a label name unique within this
      builder, derived from [stem], without emitting it. *)

  val to_program : t -> program
end
