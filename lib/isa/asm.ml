exception Parse_error of int * string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error (0, s))) fmt

let strip_comment line =
  let cut_at idx = String.sub line 0 idx in
  let semi = String.index_opt line ';' in
  let slash =
    let rec find i =
      if i + 1 >= String.length line then None
      else if line.[i] = '/' && line.[i + 1] = '/' then Some i
      else find (i + 1)
    in
    find 0
  in
  match semi, slash with
  | Some a, Some b -> cut_at (min a b)
  | Some a, None | None, Some a -> cut_at a
  | None, None -> line

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '$' || c = '.'

(* Split an operand string on commas at depth zero (no nesting in this
   syntax, so a plain split suffices), trimming whitespace. *)
let split_operands s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_number s =
  match int_of_string_opt s with Some v -> v | None -> fail "bad number %S" s

let parse_reg s =
  match Reg.of_string s with
  | Some r -> r
  | None -> fail "bad register %S" s

let parse_imm s =
  if String.length s > 0 && s.[0] = '#' then
    parse_number (String.sub s 1 (String.length s - 1))
  else fail "expected #immediate, got %S" s

let parse_target s =
  if String.length s > 1 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    Insn.Abs (parse_number s)
  else if String.length s > 0 && is_ident_char s.[0] then Insn.Lab s
  else fail "bad target %S" s

(* "imm(reg)" *)
let parse_mem_operand s =
  match String.index_opt s '(' with
  | None -> fail "expected imm(reg), got %S" s
  | Some i ->
    if String.length s = 0 || s.[String.length s - 1] <> ')' then
      fail "expected imm(reg), got %S" s
    else
      let imm_str = String.trim (String.sub s 0 i) in
      let reg_str = String.sub s (i + 1) (String.length s - i - 2) in
      let imm = if imm_str = "" then 0 else parse_number imm_str in
      (imm, parse_reg (String.trim reg_str))

let parse_disepc s =
  if String.length s > 1 && s.[0] = '@' then
    parse_number (String.sub s 1 (String.length s - 1))
  else fail "expected @disepc, got %S" s

let parse_insn_fields mnemonic operands =
  let ops = split_operands operands in
  let arity n =
    if List.length ops <> n then
      fail "%s expects %d operands, got %d" mnemonic n (List.length ops)
  in
  match Opcode.rop_of_string mnemonic with
  | Some op -> (
    arity 3;
    match ops with
    | [ a; b; c ] ->
      let rs = parse_reg a and rd = parse_reg c in
      if String.length b > 0 && b.[0] = '#' then
        Insn.Ropi (op, rs, parse_imm b, rd)
      else Insn.Rop (op, rs, parse_reg b, rd)
    | _ -> assert false)
  | None -> (
    match Opcode.mop_of_string mnemonic with
    | Some op -> (
      arity 2;
      match ops with
      | [ data; memop ] ->
        let off, base = parse_mem_operand memop in
        Insn.Mem (op, base, off, parse_reg data)
      | _ -> assert false)
    | None -> (
      match Opcode.bop_of_string mnemonic with
      | Some op -> (
        arity 2;
        match ops with
        | [ r; t ] -> Insn.Br (op, parse_reg r, parse_target t)
        | _ -> assert false)
      | None -> (
        match mnemonic, ops with
        | "lda", [ rd; memop ] ->
          let off, base = parse_mem_operand memop in
          Insn.Lda (base, off, parse_reg rd)
        | "lui", [ imm; rd ] -> Insn.Lui (parse_imm imm, parse_reg rd)
        | "jmp", [ t ] -> Insn.Jmp (parse_target t)
        | "jal", [ t ] -> Insn.Jal (parse_target t)
        | "jr", [ r ] -> Insn.Jr (parse_reg r)
        | "jalr", [ rs; rd ] -> Insn.Jalr (parse_reg rs, parse_reg rd)
        | "djmp", [ t ] -> Insn.Djmp (parse_disepc t)
        | "nop", [] -> Insn.Nop
        | "halt", [] -> Insn.Halt
        | _ when String.length mnemonic > 1 && mnemonic.[0] = 'd' -> (
          let inner = String.sub mnemonic 1 (String.length mnemonic - 1) in
          match Opcode.bop_of_string inner, ops with
          | Some op, [ r; t ] -> Insn.Dbr (op, parse_reg r, parse_disepc t)
          | Some _, _ -> fail "%s expects 2 operands" mnemonic
          | None, _ -> fail "unknown mnemonic %S" mnemonic)
        | _ when String.length mnemonic = 3 && String.sub mnemonic 0 2 = "cw"
          -> (
          let opnum = Char.code mnemonic.[2] - Char.code '0' in
          match ops with
          | [ p1; p2; p3; tagfield ] ->
            let tag =
              match String.index_opt tagfield '=' with
              | Some i ->
                parse_number
                  (String.sub tagfield (i + 1)
                     (String.length tagfield - i - 1))
              | None -> parse_number tagfield
            in
            Insn.codeword ~op:opnum ~p1:(parse_number p1)
              ~p2:(parse_number p2) ~p3:(parse_number p3) ~tag
          | _ -> fail "%s expects p1, p2, p3, tag" mnemonic)
        | _ -> fail "unknown mnemonic %S" mnemonic)))

let parse_line line =
  let line = String.trim (strip_comment line) in
  if line = "" then None
  else if line.[String.length line - 1] = ':' then
    let l = String.trim (String.sub line 0 (String.length line - 1)) in
    if l = "" || not (String.for_all is_ident_char l) then
      fail "bad label %S" l
    else Some (Program.Label l)
  else
    let mnemonic, rest =
      match String.index_opt line ' ' with
      | None -> (line, "")
      | Some i ->
        ( String.sub line 0 i,
          String.sub line (i + 1) (String.length line - i - 1) )
    in
    Some (Program.Ins (parse_insn_fields (String.lowercase_ascii mnemonic) rest))

let parse source =
  let lines = String.split_on_char '\n' source in
  List.concat
    (List.mapi
       (fun idx line ->
         match parse_line line with
         | Some item -> [ item ]
         | None -> []
         | exception Parse_error (0, msg) ->
           raise (Parse_error (idx + 1, msg)))
       lines)

let parse_result ?(source = "<asm>") text =
  match parse text with
  | program -> Ok program
  | exception Parse_error (line, msg) ->
    Error (Diag.Parse { source; line; msg })

let parse_insn s =
  match parse_line s with
  | Some (Program.Ins i) -> [ i ] |> List.hd
  | Some (Program.Label _) -> fail "expected instruction, got label"
  | None -> fail "expected instruction, got blank line"
