(** Opcodes and opcode classes.

    The ISA is a regular 32-bit Alpha/MIPS-flavoured RISC. Register
    operations come in a register form ([rop]) and an immediate form
    (the same [rop] with a 16-bit immediate as the second source).
    Conditional branches compare one register against zero, as on
    Alpha. Four opcodes are {e reserved}: they never occur in compiled
    code and are available to DISE-aware ACFs as codewords. *)

type rop =
  | Add | Sub | Mul
  | And_ | Or_ | Xor
  | Sll | Srl | Sra
  | Slt | Sltu
  | Cmpeq | Cmplt | Cmple

type mop =
  | Ldq   (** load 32-bit word *)
  | Ldbu  (** load byte, zero-extended *)
  | Stq   (** store 32-bit word *)
  | Stb   (** store byte *)

type bop = Beq | Bne | Blt | Bge | Ble | Bgt

type cls =
  | C_load
  | C_store
  | C_branch    (** conditional, PC-relative *)
  | C_jump      (** direct jump or call *)
  | C_ijump     (** indirect jump or call (jr / jalr) *)
  | C_alu       (** register and immediate ALU forms, incl. lda / lui *)
  | C_dise      (** DISE-internal control (replacement sequences only) *)
  | C_codeword  (** reserved-opcode DISE codeword *)
  | C_nop
  | C_sys       (** halt *)

val num_reserved : int
(** Number of reserved codeword opcodes (4). *)

val all_classes : cls list

val rop_is_commutative : rop -> bool

val mask32 : int -> int
(** Truncate to the low 32 bits (an unsigned 32-bit value). *)

val signed32 : int -> int
(** Truncate to 32 bits and sign-extend; the canonical form in which
    register values are stored throughout the simulator. *)

val eval_rop : rop -> int -> int -> int
(** [eval_rop op a b] evaluates the ALU operation on 32-bit values
    (represented as OCaml ints, truncated to 32 bits). Shift amounts
    are taken modulo 32. Comparison results are 0 or 1. *)

val eval_bop : bop -> int -> bool
(** [eval_bop op v] is the branch decision for a register value [v]
    interpreted as a signed 32-bit integer compared against zero. *)

val rop_to_string : rop -> string
val mop_to_string : mop -> string
val bop_to_string : bop -> string
val cls_to_string : cls -> string
val rop_of_string : string -> rop option
val mop_of_string : string -> mop option
val bop_of_string : string -> bop option
val cls_of_string : string -> cls option
val pp_cls : Format.formatter -> cls -> unit

val all_rops : rop list
val all_mops : mop list
val all_bops : bop list
