type rop =
  | Add | Sub | Mul
  | And_ | Or_ | Xor
  | Sll | Srl | Sra
  | Slt | Sltu
  | Cmpeq | Cmplt | Cmple

type mop = Ldq | Ldbu | Stq | Stb

type bop = Beq | Bne | Blt | Bge | Ble | Bgt

type cls =
  | C_load
  | C_store
  | C_branch
  | C_jump
  | C_ijump
  | C_alu
  | C_dise
  | C_codeword
  | C_nop
  | C_sys

let num_reserved = 4

let all_classes =
  [ C_load; C_store; C_branch; C_jump; C_ijump; C_alu; C_dise; C_codeword;
    C_nop; C_sys ]

let rop_is_commutative = function
  | Add | Mul | And_ | Or_ | Xor | Cmpeq -> true
  | Sub | Sll | Srl | Sra | Slt | Sltu | Cmplt | Cmple -> false

(* Values are kept as signed 32-bit integers in OCaml ints. *)
let mask32 v = v land 0xFFFFFFFF

let signed32 v =
  let v = mask32 v in
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let unsigned32 v = mask32 v

let eval_rop op a b =
  let bool_ c = if c then 1 else 0 in
  match op with
  | Add -> signed32 (a + b)
  | Sub -> signed32 (a - b)
  | Mul -> signed32 (a * b)
  | And_ -> signed32 (mask32 a land mask32 b)
  | Or_ -> signed32 (mask32 a lor mask32 b)
  | Xor -> signed32 (mask32 a lxor mask32 b)
  | Sll -> signed32 (mask32 a lsl (b land 31))
  | Srl -> signed32 (unsigned32 a lsr (b land 31))
  | Sra -> signed32 (signed32 a asr (b land 31))
  | Slt | Cmplt -> bool_ (signed32 a < signed32 b)
  | Sltu -> bool_ (unsigned32 a < unsigned32 b)
  | Cmpeq -> bool_ (signed32 a = signed32 b)
  | Cmple -> bool_ (signed32 a <= signed32 b)

let eval_bop op v =
  let v = signed32 v in
  match op with
  | Beq -> v = 0
  | Bne -> v <> 0
  | Blt -> v < 0
  | Bge -> v >= 0
  | Ble -> v <= 0
  | Bgt -> v > 0

let rop_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul"
  | And_ -> "and" | Or_ -> "or" | Xor -> "xor"
  | Sll -> "sll" | Srl -> "srl" | Sra -> "sra"
  | Slt -> "slt" | Sltu -> "sltu"
  | Cmpeq -> "cmpeq" | Cmplt -> "cmplt" | Cmple -> "cmple"

let mop_to_string = function
  | Ldq -> "ldq" | Ldbu -> "ldbu" | Stq -> "stq" | Stb -> "stb"

let bop_to_string = function
  | Beq -> "beq" | Bne -> "bne" | Blt -> "blt"
  | Bge -> "bge" | Ble -> "ble" | Bgt -> "bgt"

let cls_to_string = function
  | C_load -> "load" | C_store -> "store" | C_branch -> "branch"
  | C_jump -> "jump" | C_ijump -> "ijump" | C_alu -> "alu"
  | C_dise -> "dise" | C_codeword -> "codeword" | C_nop -> "nop"
  | C_sys -> "sys"

let all_rops =
  [ Add; Sub; Mul; And_; Or_; Xor; Sll; Srl; Sra; Slt; Sltu; Cmpeq; Cmplt;
    Cmple ]

let all_mops = [ Ldq; Ldbu; Stq; Stb ]
let all_bops = [ Beq; Bne; Blt; Bge; Ble; Bgt ]

let table_inverse to_string all s =
  List.find_opt (fun x -> String.equal (to_string x) s) all

let rop_of_string s = table_inverse rop_to_string all_rops s
let mop_of_string s = table_inverse mop_to_string all_mops s
let bop_of_string s = table_inverse bop_to_string all_bops s
let cls_of_string s = table_inverse cls_to_string all_classes s
let pp_cls ppf c = Format.pp_print_string ppf (cls_to_string c)
