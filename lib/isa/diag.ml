type t =
  | Parse of { source : string; line : int; msg : string }
  | Invalid of string
  | Runtime of string
  | Expansion of string
  | Cache of string
  | Timeout of string
  | Overloaded of string
  | Internal of string

let category = function
  | Parse _ | Invalid _ -> "parse"
  | Runtime _ | Expansion _ -> "simulation"
  | Cache _ -> "cache"
  | Timeout _ -> "timeout"
  | Overloaded _ -> "overloaded"
  | Internal _ -> "internal"

let exit_code t =
  match category t with
  | "parse" -> 2
  | "simulation" -> 3
  | "timeout" -> 5
  | "overloaded" -> 6
  | "internal" -> 7
  | _ -> 4

let pp ppf = function
  | Parse { source; line = 0; msg } ->
    Format.fprintf ppf "%s: parse error: %s" source msg
  | Parse { source; line; msg } ->
    Format.fprintf ppf "%s:%d: parse error: %s" source line msg
  | Invalid msg -> Format.fprintf ppf "invalid input: %s" msg
  | Runtime msg -> Format.fprintf ppf "runtime error: %s" msg
  | Expansion msg -> Format.fprintf ppf "expansion error: %s" msg
  | Cache msg -> Format.fprintf ppf "cache error: %s" msg
  | Timeout msg -> Format.fprintf ppf "deadline exceeded: %s" msg
  | Overloaded msg -> Format.fprintf ppf "overloaded: %s" msg
  | Internal msg -> Format.fprintf ppf "internal error: %s" msg

let to_string t = Format.asprintf "%a" pp t
