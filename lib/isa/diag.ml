type t =
  | Parse of { source : string; line : int; msg : string }
  | Invalid of string
  | Runtime of string
  | Expansion of string
  | Cache of string

let category = function
  | Parse _ | Invalid _ -> "parse"
  | Runtime _ | Expansion _ -> "simulation"
  | Cache _ -> "cache"

let exit_code t =
  match category t with
  | "parse" -> 2
  | "simulation" -> 3
  | _ -> 4

let pp ppf = function
  | Parse { source; line = 0; msg } ->
    Format.fprintf ppf "%s: parse error: %s" source msg
  | Parse { source; line; msg } ->
    Format.fprintf ppf "%s:%d: parse error: %s" source line msg
  | Invalid msg -> Format.fprintf ppf "invalid input: %s" msg
  | Runtime msg -> Format.fprintf ppf "runtime error: %s" msg
  | Expansion msg -> Format.fprintf ppf "expansion error: %s" msg
  | Cache msg -> Format.fprintf ppf "cache error: %s" msg

let to_string t = Format.asprintf "%a" pp t
