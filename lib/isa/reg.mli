(** Register names.

    The ISA exposes 32 architectural general-purpose registers. DISE
    replacement sequences may additionally name {e dedicated} registers
    that are invisible to (and unencodable by) application code; they
    live in a separate namespace managed by the DISE controller. *)

type t =
  | R of int  (** architectural register, 0..31; [R 0] is hardwired zero *)
  | D of int  (** DISE dedicated register, 0..15 *)

val num_arch : int
(** Number of architectural registers (32). *)

val num_dedicated : int
(** Number of DISE dedicated registers (16). *)

val r : int -> t
(** [r n] is architectural register [n]. Raises [Invalid_argument] if
    [n] is outside [0, num_arch). *)

val d : int -> t
(** [d n] is dedicated register [n]. Raises [Invalid_argument] if [n]
    is outside [0, num_dedicated). *)

val zero : t
(** The hardwired-zero register [R 0]. *)

val sp : t
(** Stack pointer by convention ([R 29]). *)

val ra : t
(** Return-address / link register by convention ([R 31]). *)

val is_arch : t -> bool
(** [is_arch r] is true iff [r] is an architectural register. *)

val is_dedicated : t -> bool
(** [is_dedicated r] is true iff [r] is a DISE dedicated register. *)

val index : t -> int
(** Flat index into a combined register file: architectural registers
    map to [0..31], dedicated registers to [32..47]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t option
(** Parses ["r4"], ["$r4"], ["sp"], ["ra"], ["zero"], ["$dr2"],
    ["dr2"]. Returns [None] on anything else. *)
