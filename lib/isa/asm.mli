(** Text assembler.

    Parses the surface syntax used throughout the paper's figures:

    {v
    main:
      lda r1, 8(r2)        ; rd, imm(base)
      srl r1, #26, r4      ; rs, #imm, rd
      ldq r5, 0(r1)
      xor r4, r6, r4
      bne r4, error
      jal helper
      jr ra
      halt
    v}

    Comments start with [;] or [//]. Numbers may be decimal or [0x]
    hexadecimal. Branch/jump targets are labels or absolute [0x]
    addresses. DISE-internal branches write a DISEPC target as [@n]
    ([dbne r1, @3]); codewords as [cw0 1, 2, 3, tag=17]. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse_line : string -> Program.item option
(** Parse one line; [None] for blank/comment-only lines. Raises
    [Parse_error] with line 0. *)

val parse : string -> Program.t
(** Parse a whole source text. Raises {!Parse_error}. *)

val parse_result : ?source:string -> string -> (Program.t, Diag.t) result
(** Exception-free {!parse}: a failure becomes [Error (Diag.Parse _)]
    carrying [source] (default ["<asm>"]) and the 1-based line.
    Shares the error pretty-printer and exit-code policy of
    {!Diag}. *)

val parse_insn : string -> Insn.t
(** Parse a single instruction (no label). Raises {!Parse_error}. *)
