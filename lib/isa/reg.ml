type t =
  | R of int
  | D of int

let num_arch = 32
let num_dedicated = 16

let r n =
  if n < 0 || n >= num_arch then invalid_arg "Reg.r: out of range";
  R n

let d n =
  if n < 0 || n >= num_dedicated then invalid_arg "Reg.d: out of range";
  D n

let zero = R 0
let sp = R 29
let ra = R 31

let is_arch = function R _ -> true | D _ -> false
let is_dedicated = function D _ -> true | R _ -> false

let index = function
  | R n -> n
  | D n -> num_arch + n

let equal a b =
  match a, b with
  | R x, R y | D x, D y -> x = y
  | R _, D _ | D _, R _ -> false

let compare a b = Stdlib.compare (index a) (index b)

let to_string = function
  | R 0 -> "zero"
  | R 29 -> "sp"
  | R 31 -> "ra"
  | R n -> Printf.sprintf "r%d" n
  | D n -> Printf.sprintf "$dr%d" n

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  let parse_int prefix =
    let p = String.length prefix in
    if String.length s > p && String.sub s 0 p = prefix then
      int_of_string_opt (String.sub s p (String.length s - p))
    else None
  in
  match s with
  | "zero" -> Some zero
  | "sp" -> Some sp
  | "ra" -> Some ra
  | _ -> (
    let arch =
      match parse_int "$r" with Some n -> Some n | None -> parse_int "r"
    in
    match arch with
    | Some n when n >= 0 && n < num_arch -> Some (R n)
    | Some _ -> None
    | None -> (
      let ded =
        match parse_int "$dr" with Some n -> Some n | None -> parse_int "dr"
      in
      match ded with
      | Some n when n >= 0 && n < num_dedicated -> Some (D n)
      | Some _ | None -> None))
