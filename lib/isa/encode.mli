(** Binary instruction encoding.

    Instructions encode to 32-bit words with a flat 6-bit primary
    opcode space (the dispatch key of {!Insn.key} doubles as the
    primary opcode). DISE matches on instruction bits, so a concrete
    encoding keeps the pattern/parameterization story honest and lets
    property tests round-trip real bit patterns.

    PC-relative branches encode a signed 16-bit halfword offset from
    the fall-through address, so branch encoding and decoding need the
    instruction's own address. Direct jumps encode an absolute 26-bit
    word index.

    Only architectural registers are encodable: DISE dedicated
    registers exist solely in the replacement table's internal format
    and never appear in application binaries. *)

exception Error of string

val encode : pc:int -> Insn.t -> int
(** [encode ~pc i] is the 32-bit encoding of [i] at byte address [pc].
    Raises {!Error} if [i] names a dedicated register, has an
    unresolved label target, or a field out of range — including
    branch targets that are misaligned or beyond the signed 16-bit
    halfword offset reach, and codeword parameter/tag fields that
    would wrap into neighbouring fields. Nothing is ever silently
    truncated: every representable encoding round-trips through
    {!decode}, and everything else is an error. *)

val decode : pc:int -> int -> Insn.t
(** Inverse of {!encode}. Raises {!Error} on an unknown primary
    opcode. *)

val encode_result : pc:int -> Insn.t -> (int, Diag.t) result
(** Exception-free {!encode}: failures become
    [Error (Diag.Parse _)] (exit-code class "parse"), reported through
    the shared {!Diag} printer. *)

val decode_result : pc:int -> int -> (Insn.t, Diag.t) result
(** Exception-free {!decode}. *)

val encodable : Insn.t -> bool
(** True iff {!encode} would succeed (at some pc; offset-range issues
    excepted). *)

val encode_image : Program.Image.t -> int array
(** Encode a whole laid-out program to its binary words, in image
    order. Requires a uniform 4-byte layout (compressed images with
    2-byte codewords have no single-word encoding). Raises {!Error}
    otherwise. *)

val encode_image_result : Program.Image.t -> (int array, Diag.t) result
(** Exception-free {!encode_image}. *)

val decode_image : base:int -> int array -> Insn.t array
(** Decode a word array laid out contiguously from [base]; inverse of
    {!encode_image}. *)
