exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let reg_bits r =
  match r with
  | Reg.R n -> n
  | Reg.D _ -> fail "dedicated register %s is not encodable" (Reg.to_string r)

let imm16 v =
  if v < -32768 || v > 32767 then fail "immediate %d out of 16-bit range" v
  else v land 0xFFFF

let sign16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

(* Branch offsets are signed 16-bit halfword deltas from the
   fall-through address: reachable targets are
   [pc + 4 - 0x10000, pc + 4 + 0xFFFE] in steps of 2. Anything else
   must be rejected loudly — [delta asr 1] followed by [land 0xFFFF]
   would otherwise silently wrap an out-of-range or odd delta onto a
   different (valid-looking) target. *)
let branch_off ~pc target =
  match target with
  | Insn.Lab l -> fail "unresolved label %s" l
  | Insn.Abs a ->
    let delta = a - (pc + 4) in
    if delta land 1 <> 0 then
      fail "branch target 0x%x misaligned (odd delta %d from pc 0x%x)" a delta
        pc;
    let off = delta asr 1 in
    if off < -32768 || off > 32767 then
      fail "branch target 0x%x out of range from pc 0x%x (offset %d halfwords)"
        a pc off
    else off land 0xFFFF

let jump_field target =
  match target with
  | Insn.Lab l -> fail "unresolved label %s" l
  | Insn.Abs a ->
    if a land 3 <> 0 then fail "jump target misaligned: 0x%x" a;
    let w = a lsr 2 in
    if w > 0x3FFFFFF then fail "jump target 0x%x out of 26-bit range" a
    else w

(* Field packers. All formats place the primary opcode in bits 31:26. *)
let pack ~op ~a ~b rest = (op lsl 26) lor (a lsl 21) lor (b lsl 16) lor rest

let encode ~pc (i : Insn.t) =
  let op = Insn.key i in
  match i with
  | Rop (_, rs, rt, rd) ->
    pack ~op ~a:(reg_bits rs) ~b:(reg_bits rt) (reg_bits rd lsl 11)
  | Ropi (_, rs, v, rd) -> pack ~op ~a:(reg_bits rs) ~b:(reg_bits rd) (imm16 v)
  | Lda (rs, v, rd) -> pack ~op ~a:(reg_bits rs) ~b:(reg_bits rd) (imm16 v)
  | Lui (v, rd) -> pack ~op ~a:0 ~b:(reg_bits rd) (imm16 v)
  | Mem (_, rs, v, rt) -> pack ~op ~a:(reg_bits rs) ~b:(reg_bits rt) (imm16 v)
  | Br (_, rs, t) -> pack ~op ~a:(reg_bits rs) ~b:0 (branch_off ~pc t)
  | Jmp t | Jal t -> (op lsl 26) lor jump_field t
  | Jr rs -> pack ~op ~a:(reg_bits rs) ~b:0 0
  | Jalr (rs, rd) -> pack ~op ~a:(reg_bits rs) ~b:(reg_bits rd) 0
  | Dbr (_, rs, off) -> pack ~op ~a:(reg_bits rs) ~b:0 (imm16 off)
  | Djmp off ->
    if off < 0 || off > 0x3FFFFFF then fail "djmp offset out of range"
    else (op lsl 26) lor off
  | Codeword { op = cw_op; p1; p2; p3; tag } ->
    (* The fields share one word with no hardware range enforcement:
       an oversized parameter would wrap into the opcode bits and an
       oversized tag into p3, decoding as a different instruction. *)
    if cw_op < 0 || cw_op > 3 then fail "codeword opcode %d out of range" cw_op;
    let param name v =
      if v < 0 || v > 0x1F then
        fail "codeword parameter %s=%d out of 5-bit range" name v
      else v
    in
    if tag < 0 || tag > 0x7FF then
      fail "codeword tag %d out of 11-bit range" tag;
    pack ~op ~a:(param "p1" p1) ~b:(param "p2" p2)
      ((param "p3" p3 lsl 11) lor tag)
  | Nop | Halt -> op lsl 26

let nth_rop n = List.nth Opcode.all_rops n
let nth_mop n = List.nth Opcode.all_mops n
let nth_bop n = List.nth Opcode.all_bops n

let decode ~pc word =
  let word = word land 0xFFFFFFFF in
  let op = (word lsr 26) land 0x3F in
  let a = (word lsr 21) land 0x1F in
  let b = (word lsr 16) land 0x1F in
  let c = (word lsr 11) land 0x1F in
  let low16 = word land 0xFFFF in
  let low26 = word land 0x3FFFFFF in
  let reg = Reg.r in
  let branch_target () = Insn.Abs (pc + 4 + (sign16 low16 * 2)) in
  if op < 14 then Insn.Rop (nth_rop op, reg a, reg b, reg c)
  else if op < 28 then Insn.Ropi (nth_rop (op - 14), reg a, sign16 low16, reg b)
  else
    match op with
    | 28 -> Lda (reg a, sign16 low16, reg b)
    | 29 -> Lui (sign16 low16, reg b)
    | 30 | 31 | 32 | 33 -> Mem (nth_mop (op - 30), reg a, sign16 low16, reg b)
    | 34 | 35 | 36 | 37 | 38 | 39 -> Br (nth_bop (op - 34), reg a, branch_target ())
    | 40 -> Jmp (Abs (low26 lsl 2))
    | 41 -> Jal (Abs (low26 lsl 2))
    | 42 -> Jr (reg a)
    | 43 -> Jalr (reg a, reg b)
    | 44 | 45 | 46 | 47 | 48 | 49 -> Dbr (nth_bop (op - 44), reg a, sign16 low16)
    | 50 -> Djmp low26
    | 51 | 52 | 53 | 54 ->
      Codeword { op = op - 51; p1 = a; p2 = b; p3 = c; tag = word land 0x7FF }
    | 55 -> Nop
    | 56 -> Halt
    | _ -> fail "unknown primary opcode %d" op

let encode_image img =
  let n = Program.Image.length img in
  Array.init n (fun i ->
      let size = Program.Image.size_of_index img i in
      if size <> 4 then fail "instruction %d has size %d (need 4)" i size;
      encode ~pc:(Program.Image.addr_of_index img i) (Program.Image.get img i))

let decode_image ~base words =
  Array.mapi (fun i w -> decode ~pc:(base + (4 * i)) w) words

(* Exception-free entry points: encoding failures are user-input
   defects (a program that cannot exist as binary), so they surface as
   parse-class diagnostics (exit code 2), not crashes. *)
let diag msg = Diag.Parse { source = "encode"; line = 0; msg }

let encode_result ~pc i =
  match encode ~pc i with
  | word -> Ok word
  | exception Error msg -> Error (diag msg)

let encode_image_result img =
  match encode_image img with
  | words -> Ok words
  | exception Error msg -> Error (diag msg)

let decode_result ~pc word =
  match decode ~pc word with
  | i -> Ok i
  | exception Error msg -> Error (diag msg)

let encodable i =
  let arch r = Reg.is_arch r in
  let regs_ok =
    List.for_all arch (Insn.defs i) && List.for_all arch (Insn.uses i)
  in
  let target_ok =
    match Insn.branch_target i with
    | Some (Lab _) -> false
    | Some (Abs _) | None -> true
  in
  regs_ok && target_ok
