(** Re-export of {!Dise_service.Pool}, which see.

    The pool moved into [Dise_service] so the batch server
    ([disesim serve]) and the figure harness schedule on the same
    domain workers; this alias keeps [Dise_harness.Pool] working for
    existing callers. *)

val default_jobs : unit -> int

type 'a outcome = ('a, exn * Printexc.raw_backtrace) result

val run_outcomes :
  ?jobs:int ->
  ?probe:(int -> domain:int -> float -> unit) ->
  (unit -> 'a) array ->
  'a outcome array

val run :
  ?jobs:int ->
  ?probe:(int -> domain:int -> float -> unit) ->
  (unit -> 'a) array ->
  'a array

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
