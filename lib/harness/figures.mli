(** Reproduction drivers for every evaluation panel (Figures 6, 7, 8).

    Each driver runs the required configurations over the workload
    suite and returns a {!figure}: one labelled series per bar/line of
    the paper's panel, one value per benchmark. Values are normalized
    execution times or size ratios exactly as in the paper (noted per
    driver). *)

type series = {
  label : string;
  values : (string * float) list;  (** benchmark name -> value *)
}

type figure = {
  id : string;
  title : string;
  ylabel : string;
  series : series list;
  stacks : (string * string * Dise_uarch.Stats.t) list;
      (** (series label, benchmark, stats of the measured run) for
          every timing cell, in series order; empty for ratio-only
          panels. Feeds the CPI-stack columns of {!Report}. *)
}

type opts = {
  dyn_target : int;        (** dynamic length per run (default 300K) *)
  benchmarks : string list; (** subset of {!Dise_workload.Profile.names} *)
  progress : string -> unit;
      (** progress callback; with [jobs > 1] it may be invoked from a
          worker domain (calls are serialized by a mutex) *)
  jobs : int;
      (** worker domains used to evaluate the (series × benchmark)
          cells of a figure; 1 = serial. Whatever the value, figures
          are reassembled in submission order and are bit-identical to
          a serial run. *)
  manifest : Dise_telemetry.Manifest.t option;
      (** when set, one JSONL record is emitted per evaluated cell
          (figure, series, benchmark, worker domain, wall-clock);
          emission is mutex-serialized and safe with [jobs > 1] *)
}

val default_opts : opts
val quick_opts : opts
(** Four representative benchmarks at 120K dynamic instructions. *)

type dseries
(** A deferred series: one independent closure per benchmark cell,
    evaluated through {!Pool} when the enclosing figure is built.
    Shared with {!Ablate} so every panel parallelizes the same way. *)

val series :
  opts -> string -> (Dise_workload.Suite.entry -> float) -> dseries
(** [series opts label f] defers [f] over [opts.benchmarks]. *)

val series_stats :
  opts ->
  string ->
  (Dise_workload.Suite.entry -> float * Dise_uarch.Stats.t) ->
  dseries
(** Like {!series}, but the cell also yields the statistics of the run
    behind the figure value, surfaced through {!figure}'s [stacks]. *)

val figure :
  opts ->
  id:string ->
  title:string ->
  ylabel:string ->
  dseries list ->
  figure
(** Evaluate every cell of the deferred series on the pool
    ([opts.jobs] workers) and assemble the figure in submission
    order. *)

val fig6_top : opts -> figure
(** MFI execution time normalized to the MFI-free run: rewriting,
    DISE4/#stall/+pipe/DISE3. *)

val fig6_cache : opts -> figure
(** DISE3 vs rewriting across I-cache sizes (8K/32K/128K/perfect),
    each normalized to the MFI-free run at the same cache size. *)

val fig6_width : opts -> figure
(** DISE3 vs rewriting across widths (2/4/8), 32KB I-cache, normalized
    per width. *)

val fig7_ratio : opts -> figure
(** Static compression: text and text+dictionary ratios for the six
    schemes (dedicated / −1insn / −2byteCW / +8byteDE / +3param /
    DISE), normalized to uncompressed text size. *)

val fig7_perf : opts -> figure
(** DISE decompression execution time across I-cache sizes with a
    perfect RT, normalized to the uncompressed 32KB run. *)

val fig7_rt : opts -> figure
(** Decompression under realistic RTs (512/2K × direct-mapped/2-way,
    30-cycle miss) vs perfect, normalized to the uncompressed 32KB
    run. *)

val fig8_combo : opts -> figure
(** Composed fault isolation + decompression across I-cache sizes:
    rewriting+dedicated, rewriting+DISE, DISE+DISE (perfect RT),
    normalized to the unmodified 32KB run. *)

val fig8_rt : opts -> figure
(** DISE+DISE composition under realistic RTs with 30- vs 150-cycle
    (composing) miss handlers, 32KB I-cache, normalized to the
    unmodified 32KB run. *)

val synth_dict : opts -> figure
(** Auto-synthesized vs hand-built dictionaries (doc/synthesize.md):
    per benchmark, one deterministic profile-guided search
    ([Dise_synthesize.Search], budget 96, seed 1) against the greedy
    compressor, both under the paper's default PT/RT controller.
    Series: total size ratio and relative execution time for each
    dictionary, plus the savings quotient — the fraction of the
    hand-built dictionary's size savings the search recovers (the
    harness benchmark's acceptance line is >= 0.8). Not part of
    {!all}: a search per cell dwarfs any paper panel, so the panel is
    opt-in by id. *)

val all : (string * (opts -> figure)) list
(** Panel id -> driver, in paper order. {!synth_dict} is deliberately
    excluded (see above). *)

val by_id : string -> (opts -> figure) option
(** Resolves everything in {!all} plus the opt-in panels
    ([synth-dict]). *)
