(** Experiment drivers: one function per (workload × ACF × machine)
    configuration, each returning the timing model's statistics.

    Compression results are cached per (workload, scheme, rewritten)
    because the greedy compressor is by far the most expensive step and
    several panels reuse the same compressed binaries.

    Every driver takes optional [?trace] and [?profile] telemetry
    sinks (see {!Dise_telemetry}). Sinks are kept out of {!spec} —
    spec is a structural memo key — and a sink-carrying call bypasses
    any memo, since cached statistics cannot replay the event stream
    into a sink. *)

type spec = {
  dyn_target : int;
  machine : Dise_uarch.Config.t;
  controller : Dise_core.Controller.config option;
      (** [None]: DISE is free (no PT/RT modelling) *)
}

val default_spec : spec
(** 300K dynamic instructions, the paper's default machine, free
    DISE. *)

val baseline :
  ?trace:Dise_telemetry.Trace.t ->
  ?profile:Dise_telemetry.Profile.t ->
  spec ->
  Dise_workload.Suite.entry ->
  Dise_uarch.Stats.t
(** ACF-free run. Memoized per (spec, workload): many figure cells
    normalize against the same baseline, so it is simulated once and
    the (deterministic, read-only) stats record is shared. A call with
    a sink attached runs unmemoized and leaves the memo untouched. *)

val mfi_dise :
  ?variant:Dise_acf.Mfi.variant ->
  ?trace:Dise_telemetry.Trace.t ->
  ?profile:Dise_telemetry.Profile.t ->
  spec ->
  Dise_workload.Suite.entry ->
  Dise_uarch.Stats.t
(** DISE memory fault isolation (legal segments installed, so the run
    completes without trapping). *)

val mfi_rewrite :
  ?variant:Dise_acf.Rewrite.variant ->
  ?trace:Dise_telemetry.Trace.t ->
  ?profile:Dise_telemetry.Profile.t ->
  spec ->
  Dise_workload.Suite.entry ->
  Dise_uarch.Stats.t
(** Binary-rewriting fault isolation. *)

val compress_result :
  scheme:Dise_acf.Compress.scheme ->
  ?rewritten:bool ->
  Dise_workload.Suite.entry ->
  Dise_acf.Compress.result
(** Compress the workload's program (optionally after applying the
    rewriting MFI transformation first, Figure 8's software combos).
    Cached. *)

val decompress_run :
  scheme:Dise_acf.Compress.scheme ->
  ?mfi:[ `None | `Composed ] ->
  ?rewritten:bool ->
  ?trace:Dise_telemetry.Trace.t ->
  ?profile:Dise_telemetry.Profile.t ->
  spec ->
  Dise_workload.Suite.entry ->
  Dise_uarch.Stats.t
(** Run a compressed binary under DISE decompression. [`Composed]
    nests DISE fault isolation over the decompression productions (the
    DISE+DISE point of Figure 8); [rewritten] compresses the
    software-fault-isolated binary instead (the rewriting+X combos). *)

val relative : Dise_uarch.Stats.t -> baseline:Dise_uarch.Stats.t -> float
(** Execution-time ratio (cycles / baseline cycles). *)

val clear_cache : unit -> unit
(** Drop the cross-cell memo tables (compression results, rewritten
    programs, baseline runs). The tables are mutex-protected and safe
    to share across worker domains; clearing mid-figure only costs
    recomputation, never correctness. *)
