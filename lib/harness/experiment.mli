(** Experiment drivers: one function per (workload × ACF × machine)
    configuration, each returning the timing model's statistics.

    @deprecated These are compatibility constructors. Each driver is a
    one-line wrapper that names its run as a {!Dise_service.Request.t}
    and calls {!Dise_service.Request.run} — the single entry point
    that owns the in-memory memo tables, the on-disk result cache,
    and the telemetry-sink bypass rule (a [?trace]/[?profile] call
    simulates unconditionally and leaves every cache untouched; the
    rule is documented once, in {!Dise_service.Request}). New code
    should build [Request.t] values directly. *)

type spec = {
  dyn_target : int;
  machine : Dise_uarch.Config.t;
  controller : Dise_core.Controller.config option;
      (** [None]: DISE is free (no PT/RT modelling) *)
}

val default_spec : spec
(** 300K dynamic instructions, the paper's default machine, free
    DISE. *)

val baseline :
  ?trace:Dise_telemetry.Trace.t ->
  ?profile:Dise_telemetry.Profile.t ->
  spec ->
  Dise_workload.Suite.entry ->
  Dise_uarch.Stats.t
(** ACF-free run ([Request.Baseline]); memoized per (spec, workload)
    as many figure cells normalize against the same baseline. *)

val mfi_dise :
  ?variant:Dise_acf.Mfi.variant ->
  ?trace:Dise_telemetry.Trace.t ->
  ?profile:Dise_telemetry.Profile.t ->
  spec ->
  Dise_workload.Suite.entry ->
  Dise_uarch.Stats.t
(** DISE memory fault isolation (default variant [Dise3]). *)

val mfi_rewrite :
  ?variant:Dise_acf.Rewrite.variant ->
  ?trace:Dise_telemetry.Trace.t ->
  ?profile:Dise_telemetry.Profile.t ->
  spec ->
  Dise_workload.Suite.entry ->
  Dise_uarch.Stats.t
(** Binary-rewriting fault isolation (default
    [Segment_matching]). *)

val compress_result :
  scheme:Dise_acf.Compress.scheme ->
  ?rewritten:bool ->
  Dise_workload.Suite.entry ->
  Dise_acf.Compress.result
(** Alias of {!Dise_service.Request.compress_result} (memoized; see
    also {!Dise_service.Request.compress_summary} for the
    disk-cacheable size projection). *)

val decompress_run :
  scheme:Dise_acf.Compress.scheme ->
  ?mfi:[ `None | `Composed ] ->
  ?rewritten:bool ->
  ?trace:Dise_telemetry.Trace.t ->
  ?profile:Dise_telemetry.Profile.t ->
  spec ->
  Dise_workload.Suite.entry ->
  Dise_uarch.Stats.t
(** Run a compressed binary under DISE decompression. [`Composed]
    nests DISE fault isolation over the decompression productions (the
    DISE+DISE point of Figure 8); [rewritten] compresses the
    software-fault-isolated binary instead (the rewriting+X combos). *)

val relative : Dise_uarch.Stats.t -> baseline:Dise_uarch.Stats.t -> float
(** Execution-time ratio (cycles / baseline cycles). *)

val clear_cache : unit -> unit
(** Drop the in-memory memo tables {e and} wipe the installed disk
    cache (if any): {!Dise_service.Request.clear_memory} +
    {!Dise_service.Request.clear_disk}. May raise
    [Dise_service.Cache.Diag_error] if disk entries cannot be
    removed. *)
