(** Rendering of figure data: aligned text tables (benchmarks as rows,
    series as columns) and CSV. *)

val render : ?cpi_stacks:bool -> Format.formatter -> Figures.figure -> unit
(** Aligned table of figure values with a geomean summary row. With
    [~cpi_stacks:true], the per-cell CPI-stack breakdown table (see
    {!render_cpi_stacks}) follows the values. *)

val render_cpi_stacks : Format.formatter -> Figures.figure -> unit
(** One row per timing cell of the figure: series, benchmark, cycles,
    and each {!Dise_telemetry.Cpi_stack} bucket as a percentage of
    cycles. Prints nothing for figures without timing cells (e.g. the
    static compression-ratio panel). *)

val to_csv : Figures.figure -> string
(** Figure values as CSV, ending with the same [geomean] summary row
    the text renderer prints. *)

val cpi_to_csv : Figures.figure -> string
(** Per-cell CPI stacks as CSV (raw cycle counts per bucket); header
    row only for figures without timing cells. *)

val geomean : Figures.series -> float
(** Geometric mean over the series' values (the natural summary for
    normalized execution times). *)
