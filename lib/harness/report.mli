(** Rendering of figure data: aligned text tables (benchmarks as rows,
    series as columns) and CSV. *)

val render : Format.formatter -> Figures.figure -> unit
val to_csv : Figures.figure -> string

val geomean : Figures.series -> float
(** Geometric mean over the series' values (the natural summary for
    normalized execution times). *)
