module Cpi_stack = Dise_telemetry.Cpi_stack
module Stats = Dise_uarch.Stats

let benchmarks_of (fig : Figures.figure) =
  match fig.Figures.series with
  | [] -> []
  | s :: _ -> List.map fst s.Figures.values

let value_of (s : Figures.series) bench =
  match List.assoc_opt bench s.Figures.values with
  | Some v -> v
  | None -> nan

let geomean (s : Figures.series) =
  let vals = List.map snd s.Figures.values in
  match vals with
  | [] -> nan
  | _ ->
    exp (List.fold_left (fun acc v -> acc +. log v) 0. vals
         /. float_of_int (List.length vals))

let render_cpi_stacks ppf (fig : Figures.figure) =
  match fig.Figures.stacks with
  | [] -> ()
  | stacks ->
    let label_width =
      List.fold_left
        (fun acc (label, _, _) -> max acc (String.length label))
        6 stacks
      + 2
    in
    let bench_width =
      List.fold_left
        (fun acc (_, bench, _) -> max acc (String.length bench))
        7 stacks
      + 2
    in
    Format.fprintf ppf "  CPI stack (%% of cycles)@.";
    Format.fprintf ppf "%-*s%-*s%12s" label_width "series" bench_width
      "benchmark" "cycles";
    List.iter
      (fun name -> Format.fprintf ppf "%13s" name)
      Cpi_stack.bucket_names;
    Format.pp_print_newline ppf ();
    List.iter
      (fun (label, bench, st) ->
        let cycles = st.Stats.cycles in
        Format.fprintf ppf "%-*s%-*s%12d" label_width label bench_width bench
          cycles;
        List.iter
          (fun (_, v) ->
            let pct =
              if cycles = 0 then 0.
              else 100. *. float_of_int v /. float_of_int cycles
            in
            Format.fprintf ppf "%12.1f%%" pct)
          (Cpi_stack.to_list st.Stats.cpi);
        Format.pp_print_newline ppf ())
      stacks

let render ?(cpi_stacks = false) ppf (fig : Figures.figure) =
  let benches = benchmarks_of fig in
  let col_width =
    List.fold_left
      (fun acc (s : Figures.series) -> max acc (String.length s.Figures.label))
      6 fig.Figures.series
    + 2
  in
  let bench_width =
    List.fold_left (fun acc b -> max acc (String.length b)) 7 benches + 2
  in
  Format.fprintf ppf "%s@." fig.Figures.title;
  Format.fprintf ppf "  (%s)@." fig.Figures.ylabel;
  (* header *)
  Format.fprintf ppf "%-*s" bench_width "";
  List.iter
    (fun (s : Figures.series) ->
      Format.fprintf ppf "%*s" col_width s.Figures.label)
    fig.Figures.series;
  Format.pp_print_newline ppf ();
  List.iter
    (fun bench ->
      Format.fprintf ppf "%-*s" bench_width bench;
      List.iter
        (fun s -> Format.fprintf ppf "%*.3f" col_width (value_of s bench))
        fig.Figures.series;
      Format.pp_print_newline ppf ())
    benches;
  Format.fprintf ppf "%-*s" bench_width "geomean";
  List.iter
    (fun s -> Format.fprintf ppf "%*.3f" col_width (geomean s))
    fig.Figures.series;
  Format.pp_print_newline ppf ();
  if cpi_stacks then render_cpi_stacks ppf fig

let to_csv (fig : Figures.figure) =
  let benches = benchmarks_of fig in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "benchmark";
  List.iter
    (fun (s : Figures.series) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf s.Figures.label)
    fig.Figures.series;
  Buffer.add_char buf '\n';
  List.iter
    (fun bench ->
      Buffer.add_string buf bench;
      List.iter
        (fun s ->
          Buffer.add_string buf (Printf.sprintf ",%.4f" (value_of s bench)))
        fig.Figures.series;
      Buffer.add_char buf '\n')
    benches;
  Buffer.add_string buf "geomean";
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf ",%.4f" (geomean s)))
    fig.Figures.series;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let cpi_to_csv (fig : Figures.figure) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "series,benchmark,cycles";
  List.iter
    (fun name ->
      Buffer.add_char buf ',';
      Buffer.add_string buf name)
    Cpi_stack.bucket_names;
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, bench, st) ->
      Buffer.add_string buf label;
      Buffer.add_char buf ',';
      Buffer.add_string buf bench;
      Buffer.add_string buf (Printf.sprintf ",%d" st.Stats.cycles);
      List.iter
        (fun (_, v) -> Buffer.add_string buf (Printf.sprintf ",%d" v))
        (Cpi_stack.to_list st.Stats.cpi);
      Buffer.add_char buf '\n')
    fig.Figures.stacks;
  Buffer.contents buf
