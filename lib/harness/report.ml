let benchmarks_of (fig : Figures.figure) =
  match fig.Figures.series with
  | [] -> []
  | s :: _ -> List.map fst s.Figures.values

let value_of (s : Figures.series) bench =
  match List.assoc_opt bench s.Figures.values with
  | Some v -> v
  | None -> nan

let geomean (s : Figures.series) =
  let vals = List.map snd s.Figures.values in
  match vals with
  | [] -> nan
  | _ ->
    exp (List.fold_left (fun acc v -> acc +. log v) 0. vals
         /. float_of_int (List.length vals))

let render ppf (fig : Figures.figure) =
  let benches = benchmarks_of fig in
  let col_width =
    List.fold_left
      (fun acc (s : Figures.series) -> max acc (String.length s.Figures.label))
      6 fig.Figures.series
    + 2
  in
  let bench_width =
    List.fold_left (fun acc b -> max acc (String.length b)) 7 benches + 2
  in
  Format.fprintf ppf "%s@." fig.Figures.title;
  Format.fprintf ppf "  (%s)@." fig.Figures.ylabel;
  (* header *)
  Format.fprintf ppf "%-*s" bench_width "";
  List.iter
    (fun (s : Figures.series) ->
      Format.fprintf ppf "%*s" col_width s.Figures.label)
    fig.Figures.series;
  Format.pp_print_newline ppf ();
  List.iter
    (fun bench ->
      Format.fprintf ppf "%-*s" bench_width bench;
      List.iter
        (fun s -> Format.fprintf ppf "%*.3f" col_width (value_of s bench))
        fig.Figures.series;
      Format.pp_print_newline ppf ())
    benches;
  Format.fprintf ppf "%-*s" bench_width "geomean";
  List.iter
    (fun s -> Format.fprintf ppf "%*.3f" col_width (geomean s))
    fig.Figures.series;
  Format.pp_print_newline ppf ()

let to_csv (fig : Figures.figure) =
  let benches = benchmarks_of fig in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "benchmark";
  List.iter
    (fun (s : Figures.series) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf s.Figures.label)
    fig.Figures.series;
  Buffer.add_char buf '\n';
  List.iter
    (fun bench ->
      Buffer.add_string buf bench;
      List.iter
        (fun s ->
          Buffer.add_string buf (Printf.sprintf ",%.4f" (value_of s bench)))
        fig.Figures.series;
      Buffer.add_char buf '\n')
    benches;
  Buffer.contents buf
