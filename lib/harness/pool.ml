let default_jobs () = Domain.recommended_domain_count ()

(* Outcome of one task. Stored per-index so reassembly is positional;
   an [option] wrapper distinguishes "never ran" (only possible if a
   domain died, which join surfaces) from a recorded result. *)
type 'a outcome = ('a, exn * Printexc.raw_backtrace) result

let run_serial tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let results = Array.make n (tasks.(0) ()) in
    for i = 1 to n - 1 do
      results.(i) <- tasks.(i) ()
    done;
    results
  end

let run_parallel ~jobs (tasks : (unit -> 'a) array) =
  let n = Array.length tasks in
  let results : 'a outcome option array = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let r =
          try Ok (tasks.(i) ())
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r;
        loop ()
      end
    in
    loop ()
  in
  let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join spawned;
  (* Re-raise the lowest-indexed failure, deterministically. *)
  for i = 0 to n - 1 do
    match results.(i) with
    | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
    | Some (Ok _) -> ()
    | None -> assert false (* every index < n was claimed and joined *)
  done;
  Array.init n (fun i ->
      match results.(i) with Some (Ok v) -> v | _ -> assert false)

let run ?jobs tasks =
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  if jobs = 1 || Array.length tasks <= 1 then run_serial tasks
  else run_parallel ~jobs tasks

let map_list ?jobs f xs =
  Array.to_list (run ?jobs (Array.of_list (List.map (fun x () -> f x) xs)))
