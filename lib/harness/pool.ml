include Dise_service.Pool
