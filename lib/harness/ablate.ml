module Config = Dise_uarch.Config
module Controller = Dise_core.Controller
module Pipeline = Dise_uarch.Pipeline
module Stats = Dise_uarch.Stats
module Machine = Dise_machine.Machine
module Engine = Dise_core.Engine
module Prodset = Dise_core.Prodset
module Suite = Dise_workload.Suite
module Profile = Dise_workload.Profile
module Codegen = Dise_workload.Codegen
module A = Dise_acf
module Compress = Dise_acf.Compress
module Request = Dise_service.Request
module F = Figures
module E = Experiment

(* Every ablation cell is an independent closure, so the panels share
   {!Figures.series}/{!Figures.figure} and evaluate on the same worker
   pool as the paper's own figures. *)
let series = F.series

(* --- dictionary parameterization budget -------------------------------- *)

let params opts =
  let scheme_for k =
    { Compress.plus_8byte_de with
      Compress.name = Printf.sprintf "p%d" k;
      max_params = k;
      compress_branches = (k >= 2);
    }
  in
  let mk k =
    let scheme = scheme_for k in
    series opts
      (Printf.sprintf "%d param%s" k (if k = 1 then "" else "s"))
      (fun e ->
        (* Through the disk-cacheable summary: the ablation schemes
           are custom, but the canonical form spells schemes out in
           full, so they cache like the named ones. *)
        Request.summary_total_ratio (Request.compress_summary ~scheme e))
  in
  F.figure opts ~id:"ablate-params"
    ~title:"Ablation: codeword parameter fields (8-byte dictionary entries)"
    ~ylabel:"text+dictionary relative to uncompressed"
    (List.map mk [ 0; 1; 2; 3 ])

(* --- dictionary entry length cap ---------------------------------------- *)

let max_len opts =
  let mk len =
    let scheme =
      { Compress.full_dise with
        Compress.name = Printf.sprintf "len%d" len;
        max_len = len;
      }
    in
    series opts
      (Printf.sprintf "maxlen %d" len)
      (fun e ->
        Request.summary_total_ratio (Request.compress_summary ~scheme e))
  in
  F.figure opts ~id:"ablate-maxlen"
    ~title:"Ablation: dictionary entry length cap (full DISE scheme)"
    ~ylabel:"text+dictionary relative to uncompressed"
    (List.map mk [ 2; 4; 8; 16 ])

(* --- decode option vs expansion frequency -------------------------------- *)

let decode opts =
  let acfs =
    [
      ("trace", fun img ->
        ignore img;
        A.Tracing.productions ());
      ("mfi", fun img -> A.Mfi.productions_for img);
      ("mfi+prof", fun img ->
        Prodset.union (A.Mfi.productions_for img) (A.Profiling.productions ()));
    ]
  in
  let decodes =
    [ ("free", Config.Free); ("stall", Config.Stall_per_expansion);
      ("+pipe", Config.Extra_stage) ]
  in
  let run (e : Suite.entry) build_set dise_decode =
    let set = build_set e.Suite.image in
    let engine = Engine.create ~image:e.Suite.image set in
    let m = Machine.create ~expander:(Engine.expander engine) e.Suite.image in
    A.Mfi.install m ~data_seg:Codegen.data_segment_id
      ~code_seg:Codegen.code_segment_id;
    A.Tracing.install m ~buffer:0x06000000;
    A.Profiling.install m ~buffer:0x06800000;
    Pipeline.run (Config.with_dise_decode dise_decode Config.default) m
  in
  let mk (acf_name, build_set) (dec_name, dec) =
    series opts
      (Printf.sprintf "%s/%s" acf_name dec_name)
      (fun e ->
        let base =
          E.baseline
            { E.dyn_target = opts.F.dyn_target; machine = Config.default;
              controller = None }
            e
        in
        let stats = run e build_set dec in
        float_of_int stats.Stats.cycles /. float_of_int base.Stats.cycles)
  in
  F.figure opts ~id:"ablate-decode"
    ~title:"Ablation: decode option vs expansion frequency"
    ~ylabel:"execution time relative to no-ACF (free decode)"
    (List.concat_map (fun acf -> List.map (mk acf) decodes) acfs)

(* --- RT block coalescing -------------------------------------------------- *)

let rt_block opts =
  let mk epb =
    let controller =
      { Controller.default_config with
        rt_entries = 512;
        rt_assoc = 2;
        rt_entries_per_block = epb;
      }
    in
    series opts
      (Printf.sprintf "512ent/%d-blk" epb)
      (fun e ->
        let spec =
          { E.dyn_target = opts.F.dyn_target; machine = Config.default;
            controller = Some controller }
        in
        let base =
          E.baseline { spec with E.controller = None } e
        in
        E.relative
          (E.decompress_run ~scheme:Compress.full_dise spec e)
          ~baseline:base)
  in
  F.figure opts ~id:"ablate-rt-block"
    ~title:"Ablation: RT block coalescing, 512-entry 2-way RT"
    ~ylabel:"decompression time relative to uncompressed"
    (List.map mk [ 1; 2; 4 ])

(* --- context-switch frequency ---------------------------------------------- *)

let context_switch opts =
  let run_with_switches (e : Suite.entry) interval =
    let result = E.compress_result ~scheme:Compress.full_dise e in
    let prodset = result.Compress.prodset in
    let engine = Engine.create ~image:result.Compress.image prodset in
    let m =
      Machine.create ~expander:(Engine.expander engine) result.Compress.image
    in
    let controller = Controller.create Controller.default_config prodset in
    let pipeline = Pipeline.create ~controller Config.default in
    let count = ref 0 in
    ignore
      (Machine.run_events ~max_steps:50_000_000 m (fun ev ->
           Pipeline.consume pipeline ev;
           incr count;
           match interval with
           | Some n when !count mod n = 0 -> Controller.context_switch controller
           | _ -> ()));
    Pipeline.finish pipeline
  in
  let mk label interval =
    series opts label (fun e ->
        let base =
          E.baseline
            { E.dyn_target = opts.F.dyn_target; machine = Config.default;
              controller = None }
            e
        in
        let stats = run_with_switches e interval in
        float_of_int stats.Stats.cycles /. float_of_int base.Stats.cycles)
  in
  F.figure opts ~id:"ablate-ctx"
    ~title:"Ablation: context-switch frequency (decompression, 2K RT)"
    ~ylabel:"execution time relative to uncompressed"
    [
      mk "no switches" None;
      mk "every 50K" (Some 50_000);
      mk "every 10K" (Some 10_000);
    ]

let all =
  [
    ("ablate-params", params);
    ("ablate-maxlen", max_len);
    ("ablate-decode", decode);
    ("ablate-rt-block", rt_block);
    ("ablate-ctx", context_switch);
  ]

let by_id id = List.assoc_opt id all
