(** Ablations of the design choices DESIGN.md calls out — extra bench
    targets beyond the paper's own panels.

    Each returns a {!Figures.figure} so the report machinery is
    shared. *)

val params : Figures.opts -> Figures.figure
(** Dictionary parameterization budget: total compressed size with
    0..3 codeword parameter fields (the paper fixes 3; this shows the
    marginal value of each field). *)

val max_len : Figures.opts -> Figures.figure
(** Dictionary entry length cap (2/4/8/16 instructions) under the full
    DISE scheme. *)

val decode : Figures.opts -> Figures.figure
(** DISE decode option (free / stall-per-expansion / extra stage) as a
    function of expansion frequency: store-only tracing (~8% of
    instructions), MFI loads+stores (~25%), and MFI plus branch
    profiling (~35%). The paper argues the choice hinges on expansion
    frequency versus branch misprediction rate; this sweeps it. *)

val rt_block : Figures.opts -> Figures.figure
(** RT block coalescing (1/2/4 entries per block) for a 512-entry RT
    running decompression: fewer read ports versus internal
    fragmentation. *)

val context_switch : Figures.opts -> Figures.figure
(** Context-switch frequency (none / every 50K / every 10K dynamic
    instructions) for decompression on a 2K RT: the cost of demand-
    reloading the RT after each switch, the OS-virtualization overhead
    of Section 2.3. *)

val all : (string * (Figures.opts -> Figures.figure)) list
val by_id : string -> (Figures.opts -> Figures.figure) option
