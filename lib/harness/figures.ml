module Config = Dise_uarch.Config
module Controller = Dise_core.Controller
module Stats = Dise_uarch.Stats
module Suite = Dise_workload.Suite
module Profile = Dise_workload.Profile
module Compress = Dise_acf.Compress
module Mfi = Dise_acf.Mfi
module Manifest = Dise_telemetry.Manifest
module Json = Dise_telemetry.Json
module Request = Dise_service.Request
module E = Experiment

type series = {
  label : string;
  values : (string * float) list;
}

type figure = {
  id : string;
  title : string;
  ylabel : string;
  series : series list;
  stacks : (string * string * Stats.t) list;
}

type opts = {
  dyn_target : int;
  benchmarks : string list;
  progress : string -> unit;
  jobs : int;
  manifest : Manifest.t option;
}

let default_opts =
  { dyn_target = 300_000; benchmarks = Profile.names; progress = ignore;
    jobs = 1; manifest = None }

let quick_opts =
  {
    dyn_target = 120_000;
    benchmarks = [ "bzip2"; "gzip"; "mcf"; "parser" ];
    progress = ignore;
    jobs = 1;
    manifest = None;
  }

let entries opts =
  List.map
    (fun name ->
      match Profile.find name with
      | Some p -> Suite.get ~dyn_target:opts.dyn_target p
      | None -> invalid_arg ("unknown benchmark " ^ name))
    opts.benchmarks

let spec ?controller ?(machine = Config.default) opts =
  { E.dyn_target = opts.dyn_target; machine; controller }

(* A deferred series: one closure per (series × benchmark) cell. Cells
   are independent — each builds its own machine/engine/controller —
   so a figure can evaluate them on the worker pool. Each cell yields
   its figure value plus, for timing cells, the full statistics of the
   measured run (used for CPI-stack report columns). *)
type dseries = {
  d_label : string;
  d_cells : (string * (unit -> float * Stats.t option)) list;
}

let series opts label f =
  {
    d_label = label;
    d_cells =
      List.map
        (fun (e : Suite.entry) ->
          (e.Suite.profile.Profile.name, fun () -> (f e, None)))
        (entries opts);
  }

let series_stats opts label f =
  {
    d_label = label;
    d_cells =
      List.map
        (fun (e : Suite.entry) ->
          ( e.Suite.profile.Profile.name,
            fun () ->
              let v, st = f e in
              (v, Some st) ))
        (entries opts);
  }

(* Progress callbacks may fire from worker domains; serialize them so
   concurrent reporting does not interleave mid-line. *)
let progress_mutex = Mutex.create ()

let report_progress opts label bench =
  if opts.progress != ignore then begin
    Mutex.lock progress_mutex;
    (try opts.progress (Printf.sprintf "%s / %s" label bench)
     with e ->
       Mutex.unlock progress_mutex;
       raise e);
    Mutex.unlock progress_mutex
  end

(* Flatten the deferred series of one figure into a task array, run it
   on the pool, and reassemble values in submission order — the figure
   is bit-identical whatever [opts.jobs] is. With a manifest attached,
   a pool probe records one JSONL line per cell (wall-clock and the
   worker domain that ran it). *)
let figure opts ~id ~title ~ylabel dss =
  let cells =
    List.concat_map
      (fun d -> List.map (fun (bench, th) -> (d.d_label, bench, th)) d.d_cells)
      dss
  in
  let cell_arr = Array.of_list cells in
  (* Per-cell disk-cache (hits, misses) deltas. The Request counters
     are domain-local and the pool probe runs on the same worker that
     ran the task, after it — so snapshotting around the task and
     reading the delta from the probe is race-free. *)
  let cache_deltas = Array.make (Array.length cell_arr) (0, 0) in
  let tasks =
    Array.mapi
      (fun i (label, bench, th) () ->
        report_progress opts label bench;
        match opts.manifest with
        | None -> th ()
        | Some _ ->
          let h0, m0 = Request.cache_counters () in
          let r = th () in
          let h1, m1 = Request.cache_counters () in
          cache_deltas.(i) <- (h1 - h0, m1 - m0);
          r)
      cell_arr
  in
  let busy = ref 0. in
  let busy_mutex = Mutex.create () in
  let t0 =
    match opts.manifest with None -> 0. | Some _ -> Unix.gettimeofday ()
  in
  let probe =
    match opts.manifest with
    | None -> None
    | Some m ->
      Some
        (fun i ~domain seconds ->
          Mutex.lock busy_mutex;
          busy := !busy +. seconds;
          Mutex.unlock busy_mutex;
          let label, bench, _ = cell_arr.(i) in
          let hits, misses = cache_deltas.(i) in
          Manifest.emit m
            [
              ("kind", Json.String "cell");
              ("figure", Json.String id);
              ("series", Json.String label);
              ("bench", Json.String bench);
              ("index", Json.Int i);
              ("domain", Json.Int domain);
              ("wall_s", Json.Float seconds);
              ("cache_hits", Json.Int hits);
              ("cache_misses", Json.Int misses);
            ])
  in
  let values = Pool.run ~jobs:opts.jobs ?probe tasks in
  (match opts.manifest with
  | None -> ()
  | Some m ->
    let wall = Unix.gettimeofday () -. t0 in
    let jobs = max 1 opts.jobs in
    let hits = Array.fold_left (fun a (h, _) -> a + h) 0 cache_deltas in
    let misses = Array.fold_left (fun a (_, m) -> a + m) 0 cache_deltas in
    Manifest.emit m
      [
        ("kind", Json.String "figure");
        ("figure", Json.String id);
        ("cells", Json.Int (Array.length cell_arr));
        ("jobs", Json.Int jobs);
        ("cache_hits", Json.Int hits);
        ("cache_misses", Json.Int misses);
        ("wall_s", Json.Float wall);
        ("busy_s", Json.Float !busy);
        ( "utilization",
          Json.Float
            (if wall > 0. then !busy /. (float_of_int jobs *. wall) else 1.)
        );
      ]);
  let i = ref 0 in
  let take () =
    let v = values.(!i) in
    incr i;
    v
  in
  let series =
    List.map
      (fun d ->
        { label = d.d_label;
          values =
            List.map (fun (bench, _) -> (bench, fst (take ()))) d.d_cells })
      dss
  in
  let stacks =
    List.concat
      (List.mapi
         (fun i (label, bench, _) ->
           match snd values.(i) with
           | Some st -> [ (label, bench, st) ]
           | None -> [])
         (Array.to_list cell_arr))
  in
  { id; title; ylabel; series; stacks }

(* --- Figure 6: memory fault isolation -------------------------------- *)

let fig6_top opts =
  let base = spec opts in
  let rel f e =
    let st = f e in
    (E.relative st ~baseline:(E.baseline base e), st)
  in
  let with_decode d = spec ~machine:(Config.with_dise_decode d Config.default) opts in
  figure opts ~id:"fig6-top"
    ~title:"Figure 6 (top): memory fault isolation, 4-wide, 32KB I$"
    ~ylabel:"execution time relative to no-MFI"
    [
      series_stats opts "rewrite" (rel (E.mfi_rewrite base));
      series_stats opts "DISE4" (rel (E.mfi_dise ~variant:Mfi.Dise4 base));
      series_stats opts "#stall"
        (rel (E.mfi_dise ~variant:Mfi.Dise3 (with_decode Config.Stall_per_expansion)));
      series_stats opts "+pipe"
        (rel (E.mfi_dise ~variant:Mfi.Dise3 (with_decode Config.Extra_stage)));
      series_stats opts "DISE3" (rel (E.mfi_dise ~variant:Mfi.Dise3 base));
    ]

let cache_points = [ (Some 8, "8K"); (Some 32, "32K"); (Some 128, "128K"); (None, "inf") ]

let fig6_cache opts =
  let mk (size, tag) =
    let machine = Config.with_icache_kb size Config.default in
    let sp = spec ~machine opts in
    let rel f e =
      let st = f e in
      (E.relative st ~baseline:(E.baseline sp e), st)
    in
    [
      series_stats opts (Printf.sprintf "DISE3@%s" tag)
        (rel (E.mfi_dise ~variant:Mfi.Dise3 sp));
      series_stats opts (Printf.sprintf "rewrite@%s" tag) (rel (E.mfi_rewrite sp));
    ]
  in
  figure opts ~id:"fig6-cache"
    ~title:"Figure 6 (middle): MFI vs I-cache size, 4-wide"
    ~ylabel:"execution time relative to no-MFI at same I$"
    (List.concat_map mk cache_points)

let fig6_width opts =
  let mk w =
    let machine = Config.with_width w Config.default in
    let sp = spec ~machine opts in
    let rel f e =
      let st = f e in
      (E.relative st ~baseline:(E.baseline sp e), st)
    in
    [
      series_stats opts (Printf.sprintf "DISE3@%dw" w)
        (rel (E.mfi_dise ~variant:Mfi.Dise3 sp));
      series_stats opts (Printf.sprintf "rewrite@%dw" w) (rel (E.mfi_rewrite sp));
    ]
  in
  figure opts ~id:"fig6-width"
    ~title:"Figure 6 (bottom): MFI vs processor width, 32KB I$"
    ~ylabel:"execution time relative to no-MFI at same width"
    (List.concat_map mk [ 2; 4; 8 ])

(* --- Figure 7: dynamic code decompression ----------------------------- *)

let fig7_ratio opts =
  (* Size panels only need the compress_summary projection, which is
     disk-cacheable — a warm rerun of this figure never runs the
     compressor. The ratio helpers reproduce Compress.compression_ratio
     and Compress.total_ratio exactly. *)
  let mk scheme =
    [
      series opts (scheme.Compress.name ^ " text")
        (fun e ->
          Request.summary_compression_ratio (Request.compress_summary ~scheme e));
      series opts (scheme.Compress.name ^ " +dict")
        (fun e -> Request.summary_total_ratio (Request.compress_summary ~scheme e));
    ]
  in
  figure opts ~id:"fig7-ratio"
    ~title:"Figure 7 (top): static compression by scheme"
    ~ylabel:"size relative to uncompressed text"
    (List.concat_map mk Compress.fig7_schemes)

let fig7_perf opts =
  (* All values normalized to the uncompressed run on the default 32KB
     machine. Perfect RT (free DISE). *)
  let base32 = spec opts in
  let mk (size, tag) =
    let machine = Config.with_icache_kb size Config.default in
    let sp = spec ~machine opts in
    [
      series_stats opts (Printf.sprintf "uncomp@%s" tag)
        (fun e ->
          let st = E.baseline sp e in
          (E.relative st ~baseline:(E.baseline base32 e), st));
      series_stats opts (Printf.sprintf "DISE@%s" tag)
        (fun e ->
          let st = E.decompress_run ~scheme:Compress.full_dise sp e in
          (E.relative st ~baseline:(E.baseline base32 e), st));
    ]
  in
  figure opts ~id:"fig7-perf"
    ~title:"Figure 7 (middle): decompression performance vs I$ size"
    ~ylabel:"execution time relative to uncompressed, 32KB I$"
    (List.concat_map mk cache_points)

let rt_configs =
  [
    (512, 1, "512-DM");
    (512, 2, "512-2way");
    (2048, 1, "2K-DM");
    (2048, 2, "2K-2way");
  ]

let fig7_rt opts =
  let base32 = spec opts in
  let mk (entries_, assoc, tag) =
    let controller =
      { Controller.default_config with rt_entries = entries_; rt_assoc = assoc }
    in
    series_stats opts (Printf.sprintf "RT %s" tag) (fun e ->
        let st =
          E.decompress_run ~scheme:Compress.full_dise (spec ~controller opts) e
        in
        (E.relative st ~baseline:(E.baseline base32 e), st))
  in
  figure opts ~id:"fig7-rt"
    ~title:"Figure 7 (bottom): decompression vs RT configuration, 32KB I$"
    ~ylabel:"execution time relative to uncompressed, 32KB I$"
    (List.map mk rt_configs
     @ [
         series_stats opts "RT perfect" (fun e ->
             let st =
               E.decompress_run ~scheme:Compress.full_dise (spec opts) e
             in
             (E.relative st ~baseline:(E.baseline (spec opts) e), st));
       ])

(* --- Figure 8: composing decompression and fault isolation ------------ *)

let fig8_combo opts =
  let base32 = spec opts in
  let mk (size, tag) =
    let machine = Config.with_icache_kb size Config.default in
    let sp = spec ~machine opts in
    let norm st e = (E.relative st ~baseline:(E.baseline base32 e), st) in
    [
      series_stats opts (Printf.sprintf "rw+dedic@%s" tag)
        (fun e ->
          norm
            (E.decompress_run ~scheme:Compress.dedicated ~rewritten:true sp e)
            e);
      series_stats opts (Printf.sprintf "rw+DISE@%s" tag)
        (fun e ->
          norm
            (E.decompress_run ~scheme:Compress.full_dise ~rewritten:true sp e)
            e);
      series_stats opts (Printf.sprintf "DISE+DISE@%s" tag)
        (fun e ->
          norm
            (E.decompress_run ~scheme:Compress.full_dise ~mfi:`Composed sp e)
            e);
    ]
  in
  figure opts ~id:"fig8-combo"
    ~title:"Figure 8 (top): composed MFI+decompression vs I$ size"
    ~ylabel:"execution time relative to unmodified, 32KB I$"
    (List.concat_map mk cache_points)

let fig8_rt opts =
  let base32 = spec opts in
  let mk ~latency (entries_, assoc, tag) =
    let controller =
      {
        Controller.default_config with
        rt_entries = entries_;
        rt_assoc = assoc;
        composing = latency > Controller.default_config.Controller.miss_penalty;
        compose_penalty = latency;
      }
    in
    series_stats opts (Printf.sprintf "%s miss=%d" tag latency) (fun e ->
        let st =
          E.decompress_run ~scheme:Compress.full_dise ~mfi:`Composed
            (spec ~controller opts) e
        in
        (E.relative st ~baseline:(E.baseline base32 e), st))
  in
  figure opts ~id:"fig8-rt"
    ~title:
      "Figure 8 (bottom): composition vs RT configuration and miss latency"
    ~ylabel:"execution time relative to unmodified, 32KB I$"
    (List.map (mk ~latency:30) rt_configs
     @ List.map (mk ~latency:150) rt_configs)

(* --- synthesized vs hand-built dictionaries ----------------------------- *)

(* One profile-guided search per benchmark (deterministic: fixed seed,
   fixed budget), against the greedy compressor's hand-built dictionary
   under the same modeled controller. The per-benchmark cell is the
   unit of pool parallelism, so each search scores serially within its
   cell (no nested pools). *)
let synth_dict opts =
  let module Sy = Dise_synthesize in
  let cells =
    Array.of_list
      (List.map
         (fun (e : Suite.entry) ->
           fun () ->
            let bench = e.Suite.profile.Profile.name in
            opts.progress (Printf.sprintf "synth-dict %s: searching" bench);
            let cfg =
              Sy.Search.v ~dyn_target:opts.dyn_target ~budget:96
                ~backend:(Sy.Score.Local { jobs = 1 })
                bench
            in
            let r = Sy.Search.run cfg in
            let greedy =
              Request.compress_summary ~scheme:Compress.full_dise e
            in
            let greedy_rel =
              let req =
                Request.v ~dyn_target:opts.dyn_target
                  ~controller:Controller.default_config
                  ~acf:
                    (Request.Decompress
                       {
                         scheme = Compress.full_dise;
                         mfi = `None;
                         rewritten = false;
                       })
                  bench
              in
              match Request.run_ext ~entry:e req with
              | Ok (st, _) ->
                float_of_int st.Stats.cycles
                /. float_of_int r.Sy.Search.baseline_cycles
              | Error d -> failwith (Dise_isa.Diag.to_string d)
            in
            (bench, r, greedy, greedy_rel))
         (entries opts))
  in
  let results = Array.to_list (Pool.run ~jobs:opts.jobs cells) in
  let row label f =
    { label; values = List.map (fun cell -> (let b, _, _, _ = cell in b), f cell) results }
  in
  {
    id = "synth-dict";
    title =
      "Synthesized vs hand-built dictionaries (full DISE scheme, default \
       PT/RT)";
    ylabel = "size ratio vs original / time ratio vs baseline";
    series =
      [
        row "hand-built total ratio" (fun (_, _, g, _) ->
            Request.summary_total_ratio g);
        row "synthesized total ratio" (fun (_, r, _, _) ->
            r.Sy.Search.outcome.Sy.Score.ratio);
        row "hand-built rel. time" (fun (_, _, _, gr) -> gr);
        row "synthesized rel. time" (fun (_, r, _, _) ->
            r.Sy.Search.outcome.Sy.Score.rel);
        (* The acceptance quotient: fraction of the hand-built
           dictionary's savings the search recovered. *)
        row "savings quotient (synth/hand)" (fun (_, r, g, _) ->
            let hand = 1.0 -. Request.summary_total_ratio g in
            if hand <= 0.0 then 1.0
            else (1.0 -. r.Sy.Search.outcome.Sy.Score.ratio) /. hand);
      ];
    stacks = [];
  }

let all =
  [
    ("fig6-top", fig6_top);
    ("fig6-cache", fig6_cache);
    ("fig6-width", fig6_width);
    ("fig7-ratio", fig7_ratio);
    ("fig7-perf", fig7_perf);
    ("fig7-rt", fig7_rt);
    ("fig8-combo", fig8_combo);
    ("fig8-rt", fig8_rt);
  ]

(* Opt-in panels: a synthesis search per cell is far costlier than any
   paper panel, so these resolve by id (disesim figures synth-dict)
   but are excluded from the default "run everything" sweep. *)
let extras = [ ("synth-dict", synth_dict) ]

let by_id id =
  match List.assoc_opt id all with
  | Some f -> Some f
  | None -> List.assoc_opt id extras
