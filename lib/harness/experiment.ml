module Machine = Dise_machine.Machine
module Engine = Dise_core.Engine
module Prodset = Dise_core.Prodset
module Controller = Dise_core.Controller
module Config = Dise_uarch.Config
module Pipeline = Dise_uarch.Pipeline
module Stats = Dise_uarch.Stats
module Suite = Dise_workload.Suite
module Codegen = Dise_workload.Codegen
module Mfi = Dise_acf.Mfi
module Rewrite = Dise_acf.Rewrite
module Compress = Dise_acf.Compress
module Trace = Dise_telemetry.Trace
module Profile = Dise_telemetry.Profile

type spec = {
  dyn_target : int;
  machine : Config.t;
  controller : Controller.config option;
}

let default_spec =
  { dyn_target = 300_000; machine = Config.default; controller = None }

let max_steps = 100_000_000

(* Telemetry sinks are deliberately NOT part of [spec]: spec is a
   structural hash key for the baseline memo table, and closures or
   channels inside it would break structural hashing. Sinks arrive as
   separate optional arguments instead, and memoized drivers bypass
   their memo when a sink is attached (a cached Stats.t could not
   replay the events into the sink anyway). *)
let run_machine spec ?prodset ?trace ?profile m =
  let controller =
    match spec.controller, prodset with
    | Some cfg, Some ps -> Some (Controller.create cfg ps)
    | Some cfg, None -> Some (Controller.create cfg Prodset.empty)
    | None, _ -> None
  in
  Pipeline.run ~max_steps ?controller ?trace ?profile spec.machine m

let check_clean name m =
  if Machine.exit_code m <> 0 then
    failwith
      (Printf.sprintf "experiment %s: workload trapped (exit %d)" name
         (Machine.exit_code m))

let run_baseline spec ?trace ?profile (entry : Suite.entry) =
  let m = Machine.create entry.Suite.image in
  let stats = run_machine spec ?trace ?profile m in
  check_clean "baseline" m;
  stats

let with_engine image prodset =
  let engine = Engine.create ~image prodset in
  Machine.create ~expander:(Engine.expander engine) image

let install_mfi m =
  Mfi.install m ~data_seg:Codegen.data_segment_id
    ~code_seg:Codegen.code_segment_id

let mfi_dise ?variant ?trace ?profile spec (entry : Suite.entry) =
  let prodset = Mfi.productions_for ?variant entry.Suite.image in
  let m = with_engine entry.Suite.image prodset in
  install_mfi m;
  let stats = run_machine spec ~prodset ?trace ?profile m in
  check_clean "mfi_dise" m;
  stats

(* The cross-cell caches below are shared by worker domains when the
   harness runs cells in parallel (see {!Pool}); a mutex guards every
   table access. A key is claimed as [Pending] before its (expensive —
   the compressor, or a full baseline simulation) computation runs
   outside the lock; concurrent requesters for the same key block on
   the condition instead of duplicating the work, and every caller
   shares the one physically-identical value, exactly as the serial
   path would produce. Nested memoized computations (compression of a
   rewritten binary memoizes the rewrite) are safe: the dependency
   order is acyclic, so a waiter never blocks its own claimant. *)
let cache_mutex = Mutex.create ()
let cache_cond = Condition.create ()

type 'v slot = Pending | Ready of 'v

let with_cache_lock f =
  Mutex.lock cache_mutex;
  match f () with
  | v ->
    Mutex.unlock cache_mutex;
    v
  | exception e ->
    Mutex.unlock cache_mutex;
    raise e

let memoize table key compute =
  Mutex.lock cache_mutex;
  let rec claim () =
    match Hashtbl.find_opt table key with
    | Some (Ready v) ->
      Mutex.unlock cache_mutex;
      `Hit v
    | Some Pending ->
      Condition.wait cache_cond cache_mutex;
      claim ()
    | None ->
      Hashtbl.replace table key Pending;
      Mutex.unlock cache_mutex;
      `Compute
  in
  match claim () with
  | `Hit v -> v
  | `Compute -> (
    match compute () with
    | v ->
      with_cache_lock (fun () ->
          Hashtbl.replace table key (Ready v);
          Condition.broadcast cache_cond);
      v
    | exception e ->
      (* Drop the claim so a later caller can retry. *)
      with_cache_lock (fun () ->
          Hashtbl.remove table key;
          Condition.broadcast cache_cond);
      raise e)

(* Many figure cells normalize against the same ACF-free run (e.g.
   every series of a panel divides by the same per-benchmark baseline),
   so baselines are memoized by the full spec plus workload identity.
   [spec] is plain data (no closures), so structural hashing is sound;
   baseline runs are deterministic, so sharing the Stats.t record
   cannot change any figure value. *)
let baseline_cache : (spec * string * int, Stats.t slot) Hashtbl.t =
  Hashtbl.create 64

let baseline ?trace ?profile spec (entry : Suite.entry) =
  match trace, profile with
  | None, None ->
    let key =
      (spec, entry.Suite.profile.Dise_workload.Profile.name,
       entry.Suite.gen.Codegen.total_insns)
    in
    memoize baseline_cache key (fun () -> run_baseline spec entry)
  | _ ->
    (* A sink needs the event stream replayed, which a cached Stats.t
       cannot provide; run outside the memo (and leave the memo alone —
       a traced run's stats are identical to an untraced one's). *)
    run_baseline spec ?trace ?profile entry

let rewritten_cache : (string * int, Dise_isa.Program.t slot) Hashtbl.t =
  Hashtbl.create 16

let rewritten_program (entry : Suite.entry) =
  let key = (entry.Suite.profile.Dise_workload.Profile.name,
             Dise_isa.Program.size entry.Suite.gen.Codegen.program)
  in
  memoize rewritten_cache key (fun () ->
      Rewrite.rewrite ~data_seg:Codegen.data_segment_id
        ~code_seg:Codegen.code_segment_id entry.Suite.gen.Codegen.program)

let mfi_rewrite ?variant ?trace ?profile spec (entry : Suite.entry) =
  let prog =
    match variant with
    | None | Some Rewrite.Segment_matching -> rewritten_program entry
    | Some v ->
      Rewrite.rewrite ~variant:v ~data_seg:Codegen.data_segment_id
        ~code_seg:Codegen.code_segment_id entry.Suite.gen.Codegen.program
  in
  let image = Dise_isa.Program.layout ~base:Codegen.code_base prog in
  let m = Machine.create image in
  let stats = run_machine spec ?trace ?profile m in
  check_clean "mfi_rewrite" m;
  stats

let compress_cache : (string, Compress.result slot) Hashtbl.t =
  Hashtbl.create 64

let compress_result ~scheme ?(rewritten = false) (entry : Suite.entry) =
  let key =
    Printf.sprintf "%s/%s/%b/%d"
      entry.Suite.profile.Dise_workload.Profile.name
      scheme.Compress.name rewritten entry.Suite.gen.Codegen.total_insns
  in
  memoize compress_cache key (fun () ->
      let prog =
        if rewritten then rewritten_program entry
        else entry.Suite.gen.Codegen.program
      in
      Compress.compress ~scheme prog)

let decompress_run ~scheme ?(mfi = `None) ?(rewritten = false) ?trace ?profile
    spec (entry : Suite.entry) =
  let result = compress_result ~scheme ~rewritten entry in
  let prodset =
    match mfi with
    | `None -> result.Compress.prodset
    | `Composed -> Dise_acf.Acf_compose.for_compressed result
  in
  let m = with_engine result.Compress.image prodset in
  (match mfi with `Composed -> install_mfi m | `None -> ());
  let stats = run_machine spec ~prodset ?trace ?profile m in
  check_clean "decompress" m;
  stats

let relative stats ~baseline =
  float_of_int stats.Stats.cycles /. float_of_int baseline.Stats.cycles

let clear_cache () =
  with_cache_lock (fun () ->
      Hashtbl.reset compress_cache;
      Hashtbl.reset rewritten_cache;
      Hashtbl.reset baseline_cache)
