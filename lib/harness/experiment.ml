module Machine = Dise_machine.Machine
module Engine = Dise_core.Engine
module Prodset = Dise_core.Prodset
module Controller = Dise_core.Controller
module Config = Dise_uarch.Config
module Pipeline = Dise_uarch.Pipeline
module Stats = Dise_uarch.Stats
module Suite = Dise_workload.Suite
module Codegen = Dise_workload.Codegen
module Mfi = Dise_acf.Mfi
module Rewrite = Dise_acf.Rewrite
module Compress = Dise_acf.Compress

type spec = {
  dyn_target : int;
  machine : Config.t;
  controller : Controller.config option;
}

let default_spec =
  { dyn_target = 300_000; machine = Config.default; controller = None }

let max_steps = 100_000_000

let run_machine spec ?prodset m =
  let controller =
    match spec.controller, prodset with
    | Some cfg, Some ps -> Some (Controller.create cfg ps)
    | Some cfg, None -> Some (Controller.create cfg Prodset.empty)
    | None, _ -> None
  in
  Pipeline.run ~max_steps ?controller spec.machine m

let check_clean name m =
  if Machine.exit_code m <> 0 then
    failwith
      (Printf.sprintf "experiment %s: workload trapped (exit %d)" name
         (Machine.exit_code m))

let baseline spec (entry : Suite.entry) =
  let m = Machine.create entry.Suite.image in
  let stats = run_machine spec m in
  check_clean "baseline" m;
  stats

let with_engine image prodset =
  let engine = Engine.create prodset in
  Machine.create ~expander:(Engine.expander engine) image

let install_mfi m =
  Mfi.install m ~data_seg:Codegen.data_segment_id
    ~code_seg:Codegen.code_segment_id

let mfi_dise ?variant spec (entry : Suite.entry) =
  let prodset = Mfi.productions_for ?variant entry.Suite.image in
  let m = with_engine entry.Suite.image prodset in
  install_mfi m;
  let stats = run_machine spec ~prodset m in
  check_clean "mfi_dise" m;
  stats

let rewritten_cache : (string * int, Dise_isa.Program.t) Hashtbl.t =
  Hashtbl.create 16

let rewritten_program (entry : Suite.entry) =
  let key = (entry.Suite.profile.Dise_workload.Profile.name,
             Dise_isa.Program.size entry.Suite.gen.Codegen.program)
  in
  match Hashtbl.find_opt rewritten_cache key with
  | Some p -> p
  | None ->
    let p =
      Rewrite.rewrite ~data_seg:Codegen.data_segment_id
        ~code_seg:Codegen.code_segment_id entry.Suite.gen.Codegen.program
    in
    Hashtbl.replace rewritten_cache key p;
    p

let mfi_rewrite ?variant spec (entry : Suite.entry) =
  let prog =
    match variant with
    | None | Some Rewrite.Segment_matching -> rewritten_program entry
    | Some v ->
      Rewrite.rewrite ~variant:v ~data_seg:Codegen.data_segment_id
        ~code_seg:Codegen.code_segment_id entry.Suite.gen.Codegen.program
  in
  let image = Dise_isa.Program.layout ~base:Codegen.code_base prog in
  let m = Machine.create image in
  let stats = run_machine spec m in
  check_clean "mfi_rewrite" m;
  stats

let compress_cache : (string, Compress.result) Hashtbl.t = Hashtbl.create 64

let compress_result ~scheme ?(rewritten = false) (entry : Suite.entry) =
  let key =
    Printf.sprintf "%s/%s/%b/%d"
      entry.Suite.profile.Dise_workload.Profile.name
      scheme.Compress.name rewritten entry.Suite.gen.Codegen.total_insns
  in
  match Hashtbl.find_opt compress_cache key with
  | Some r -> r
  | None ->
    let prog =
      if rewritten then rewritten_program entry
      else entry.Suite.gen.Codegen.program
    in
    let r = Compress.compress ~scheme prog in
    Hashtbl.replace compress_cache key r;
    r

let decompress_run ~scheme ?(mfi = `None) ?(rewritten = false) spec
    (entry : Suite.entry) =
  let result = compress_result ~scheme ~rewritten entry in
  let prodset =
    match mfi with
    | `None -> result.Compress.prodset
    | `Composed -> Dise_acf.Acf_compose.for_compressed result
  in
  let m = with_engine result.Compress.image prodset in
  (match mfi with `Composed -> install_mfi m | `None -> ());
  let stats = run_machine spec ~prodset m in
  check_clean "decompress" m;
  stats

let relative stats ~baseline =
  float_of_int stats.Stats.cycles /. float_of_int baseline.Stats.cycles

let clear_cache () =
  Hashtbl.reset compress_cache;
  Hashtbl.reset rewritten_cache
