module Config = Dise_uarch.Config
module Controller = Dise_core.Controller
module Suite = Dise_workload.Suite
module Profile = Dise_workload.Profile
module Mfi = Dise_acf.Mfi
module Rewrite = Dise_acf.Rewrite
module Request = Dise_service.Request

type spec = {
  dyn_target : int;
  machine : Config.t;
  controller : Controller.config option;
}

let default_spec =
  { dyn_target = 300_000; machine = Config.default; controller = None }

(* Every driver below is the same one-liner: name the run as a
   Request.t and hand it to the single Request.run path, which owns
   the memo tables, the disk cache, and the sink-bypass rule. The
   [entry] the caller already holds is passed along so a cache miss
   does not regenerate the workload. *)
let request spec ?acf (entry : Suite.entry) =
  Request.v ~dyn_target:spec.dyn_target ~machine:spec.machine
    ?controller:spec.controller ?acf entry.Suite.profile.Profile.name

let baseline ?trace ?profile spec entry =
  Request.run ~entry ?trace ?profile (request spec entry)

let mfi_dise ?(variant = Mfi.Dise3) ?trace ?profile spec entry =
  Request.run ~entry ?trace ?profile
    (request spec ~acf:(Request.Mfi_dise variant) entry)

let mfi_rewrite ?(variant = Rewrite.Segment_matching) ?trace ?profile spec entry
    =
  Request.run ~entry ?trace ?profile
    (request spec ~acf:(Request.Mfi_rewrite variant) entry)

let compress_result = Request.compress_result

let decompress_run ~scheme ?(mfi = `None) ?(rewritten = false) ?trace ?profile
    spec entry =
  Request.run ~entry ?trace ?profile
    (request spec ~acf:(Request.Decompress { scheme; mfi; rewritten }) entry)

let relative = Request.relative

let clear_cache () =
  Request.clear_memory ();
  ignore (Request.clear_disk ())
