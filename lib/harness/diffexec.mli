(** Differential execution: lockstep comparison of two machines.

    The validation primitive for ACF and binary-transformation
    development — run the original and the transformed program side by
    side and report the first semantic divergence, instead of a bare
    end-state mismatch.

    The comparison is over each machine's {e kept} instruction stream
    (a filter drops ACF-inserted instructions, e.g. everything but the
    trigger of a fault-isolation expansion), with control-transfer
    targets normalized away (layouts differ between images), plus final
    exit codes and a data-segment digest that excludes the stack
    (return addresses are code pointers and legitimately differ across
    layouts). *)

type side = {
  image : Dise_isa.Program.Image.t;
  expander : Dise_machine.Machine.expander option;
  init : Dise_machine.Machine.t -> unit;  (** dedicated registers etc. *)
}

val side :
  ?expander:Dise_machine.Machine.expander ->
  ?init:(Dise_machine.Machine.t -> unit) ->
  Dise_isa.Program.Image.t ->
  side

type divergence = {
  position : int;       (** index in the kept stream *)
  reason : string;
  left : string option;  (** rendering of the offending instruction *)
  right : string option;
}

type outcome =
  | Equivalent of { left_steps : int; right_steps : int }
  | Diverged of divergence

val app_semantics : Dise_machine.Machine.Event.t -> bool
(** The default filter: keep application instructions and expansion
    triggers (the last element of a replacement sequence), dropping
    inserted ACF instructions. Under this filter a correct transparent
    ACF or a correct decompressor is stream-equivalent to the original
    program. *)

val run :
  ?max_steps:int ->
  ?keep:(Dise_machine.Machine.Event.t -> bool) ->
  ?data_lo:int ->
  ?data_hi:int ->
  left:side ->
  right:side ->
  unit ->
  outcome
(** Compare. Defaults: [keep] = {!app_semantics}, data digest over
    [0x04000000, 0x07F00000). *)

val pp_outcome : Format.formatter -> outcome -> unit
