module Machine = Dise_machine.Machine
module Event = Dise_machine.Machine.Event
module Memory = Dise_machine.Memory
module I = Dise_isa.Insn

type side = {
  image : Dise_isa.Program.Image.t;
  expander : Machine.expander option;
  init : Machine.t -> unit;
}

let side ?expander ?(init = fun _ -> ()) image = { image; expander; init }

type divergence = {
  position : int;
  reason : string;
  left : string option;
  right : string option;
}

type outcome =
  | Equivalent of { left_steps : int; right_steps : int }
  | Diverged of divergence

let app_semantics (ev : Event.t) =
  match ev.Event.origin with
  | Event.App -> true
  | Event.Rep { offset; len; _ } -> offset = len - 1

(* Branch targets are layout-dependent; compare instructions with
   targets erased. *)
let normalize insn = I.map_target (fun _ -> I.Abs 0) insn

type pump = {
  machine : Machine.t;
  mutable steps : int;
}

let make_pump (s : side) =
  let machine =
    match s.expander with
    | Some expander -> Machine.create ~expander s.image
    | None -> Machine.create s.image
  in
  s.init machine;
  { machine; steps = 0 }

(* Advance to the next kept event, or None at halt. *)
let rec next ~max_steps ~keep p =
  if p.steps > max_steps then
    failwith "Diffexec: max_steps exceeded (non-terminating program?)"
  else
    match Machine.step p.machine with
    | None -> None
    | Some ev ->
      p.steps <- p.steps + 1;
      if keep ev then Some ev else next ~max_steps ~keep p

let run ?(max_steps = 50_000_000) ?(keep = app_semantics)
    ?(data_lo = 0x04000000) ?(data_hi = 0x07F00000) ~left ~right () =
  let l = make_pump left and r = make_pump right in
  let rec go position =
    match
      (next ~max_steps ~keep l, next ~max_steps ~keep r)
    with
    | None, None ->
      let exit_l = Machine.exit_code l.machine
      and exit_r = Machine.exit_code r.machine in
      if exit_l <> exit_r then
        Diverged
          {
            position;
            reason =
              Printf.sprintf "exit codes differ: %d vs %d" exit_l exit_r;
            left = None;
            right = None;
          }
      else
        let dig m = Memory.checksum_range (Machine.memory m) ~lo:data_lo ~hi:data_hi in
        if dig l.machine <> dig r.machine then
          Diverged
            {
              position;
              reason = "data-segment contents differ at halt";
              left = None;
              right = None;
            }
        else Equivalent { left_steps = l.steps; right_steps = r.steps }
    | Some ev, None ->
      Diverged
        {
          position;
          reason = "right halted early";
          left = Some (I.to_string ev.Event.insn);
          right = None;
        }
    | None, Some ev ->
      Diverged
        {
          position;
          reason = "left halted early";
          left = None;
          right = Some (I.to_string ev.Event.insn);
        }
    | Some a, Some b ->
      if I.equal (normalize a.Event.insn) (normalize b.Event.insn) then
        go (position + 1)
      else
        Diverged
          {
            position;
            reason = "instruction streams differ";
            left = Some (I.to_string a.Event.insn);
            right = Some (I.to_string b.Event.insn);
          }
  in
  go 0

let pp_outcome ppf = function
  | Equivalent { left_steps; right_steps } ->
    Format.fprintf ppf "equivalent (%d vs %d dynamic instructions)"
      left_steps right_steps
  | Diverged d ->
    Format.fprintf ppf "diverged at kept-instruction %d: %s" d.position
      d.reason;
    (match d.left with
    | Some s -> Format.fprintf ppf "@.  left:  %s" s
    | None -> ());
    (match d.right with
    | Some s -> Format.fprintf ppf "@.  right: %s" s
    | None -> ())
