(** Functional emulator with DISE expansion semantics.

    The machine fetches application instructions by PC, offers each to
    an {e expander} (the DISE engine, injected as a closure so this
    library stays independent of the engine's implementation), and
    executes either the instruction itself or its replacement sequence.

    Replacement-sequence semantics follow the paper's two-level control
    model. Every dynamic instruction carries a [PC:DISEPC] pair; an
    application instruction has DISEPC 0. Within a sequence:

    - DISE-internal branches ([Dbr]/[Djmp]) modify the DISEPC only;
    - a taken application-level control transfer squashes the rest of
      the sequence (a non-trigger replacement branch is effectively
      predicted not-taken, exactly the behaviour the paper's fault
      isolation production relies on);
    - a sequence that runs to completion falls through to the next
      application PC;
    - codewords may not appear inside replacement sequences (no
      recursive expansion).

    Each {!step} returns an {!Event.t} describing the executed dynamic
    instruction; the trace-driven timing model consumes these. *)

type expansion = {
  rsid : int;             (** replacement sequence identifier *)
  seq : Dise_isa.Insn.t array;  (** fully instantiated sequence *)
}

type expander = pc:int -> Dise_isa.Insn.t -> expansion option

exception Runtime_error of string

module Event : sig
  type origin =
    | App  (** an ordinary application instruction *)
    | Rep of { rsid : int; offset : int; len : int }
        (** replacement instruction [offset] of a [len]-long sequence *)

  type branch = {
    taken : bool;
    target : int;        (** PC target, or DISEPC for internal branches *)
    dise_internal : bool;
  }

  type t = {
    pc : int;
    insn : Dise_isa.Insn.t;
    origin : origin;
    expansion_start : bool;
        (** true on the first instruction of an expansion: the cycle in
            which the engine recognized a trigger *)
    mem_addr : int option;
    branch : branch option;
    fetched_new_pc : bool;
        (** true when this event consumed a fresh application fetch
            (the I-cache is touched); replacement instructions after
            the first come from the RT and do not access the I-cache *)
  }
end

(** The allocation-free twin of {!Event.t}: a single mutable record
    per machine, overwritten by each executed instruction. {!run_raw}
    passes it to the sink instead of allocating an event; read the
    fields before the next step. *)
module Raw : sig
  type t = {
    mutable pc : int;
    mutable insn : Dise_isa.Insn.t;
    mutable rsid : int;  (** [-1] for an application instruction *)
    mutable offset : int;
    mutable len : int;
    mutable expansion_start : bool;
    mutable fetched_new_pc : bool;
    mutable mem_addr : int;  (** effective address, or {!no_mem} *)
    mutable branch : int;
        (** [-1] = no branch; else bit 0 = taken, bit 1 = dise_internal *)
    mutable target : int;
  }

  val no_mem : int
  (** Sentinel stored in [mem_addr] when the instruction made no memory
      access. *)

  val make : unit -> t
  (** A fresh scratch record (for callers translating {!Event.t}
      values back into raw form). *)
end

type t

val create :
  ?expander:expander -> ?entry:string -> Dise_isa.Program.Image.t -> t
(** [create image] builds a machine with PC at label [entry] (default
    ["main"], falling back to the image base), an empty memory, and a
    zeroed register file with [sp] pointing at [0x07FFFF00]. *)

val image : t -> Dise_isa.Program.Image.t
val memory : t -> Memory.t
val regs : t -> Regfile.t
val pc : t -> int
val disepc : t -> int
val halted : t -> bool

val executed : t -> int
(** Dynamic instructions executed (application + replacement). *)

val app_fetched : t -> int
(** Application-level instructions fetched (each trigger counts once,
    however long its replacement sequence). *)

val expansions : t -> int
(** Number of expansions performed. *)

val set_dise_reg : t -> int -> int -> unit
(** Controller-mediated write to a dedicated register. *)

val set_reg : t -> Dise_isa.Reg.t -> int -> unit

val interrupt : t -> int * int
(** Take a precise interrupt at the current PC:DISEPC boundary
    (Section 2.2): abandon the in-flight replacement sequence and
    return the [(pc, disepc)] pair the OS would save. Execution state
    (registers, memory) is already precise — every {!step} retires one
    whole instruction. *)

val resume : t -> pc:int -> disepc:int -> unit
(** Return from a handler to a saved [(pc, disepc)] pair. Fetch
    restarts at [pc]; the engine recognizes the DISEPC annotation and
    re-expands the replacement sequence, skipping its first [disepc]
    instructions. *)

val step : t -> Event.t option
(** Execute one dynamic instruction. [None] once halted. Raises
    {!Runtime_error} when the PC leaves the text or an illegal
    situation arises (codeword with no production, codeword inside a
    replacement sequence, memory fault). *)

val run : ?max_steps:int -> t -> int
(** Step until halt (or [max_steps], default 100 million). Returns
    executed-instruction count. Raises {!Runtime_error} once exactly
    [max_steps] instructions have executed without reaching a halt —
    never an instruction more; a program whose halting instruction is
    the [max_steps]-th completes normally. *)

val run_events : ?max_steps:int -> t -> (Event.t -> unit) -> int
(** Like {!run} but streams every event to the callback. *)

val raw : t -> Raw.t
(** The machine's scratch record, valid after any successful step. *)

val run_raw : ?max_steps:int -> ?poll:(unit -> unit) -> t -> (Raw.t -> unit) -> int
(** Like {!run_events} but streams the machine's single mutable
    {!Raw.t} scratch record to the sink — zero allocation per dynamic
    instruction. The sink must copy out anything it wants to keep.
    [poll] (if given) is called once every 2048 events, a cooperative
    cancellation point for deadline enforcement. *)

val exit_code : t -> int
(** Value of r2 at halt, the program's exit-convention register. *)

(** {2 Trace/superblock JIT}

    Once an application PC has been dispatched [threshold] times at an
    expansion boundary, the straight-line code reachable from it — with
    every production expansion already applied — is flattened into a
    contiguous arena the run loop executes with zero per-fetch
    matching, hashing, or allocation. Soundness is generation-stamped:
    the engine bumps the shared [generation] counter on any production
    set swap or PT/RT write, which retires every superblock at the
    next application-instruction boundary. See [doc/jit.md]. *)

val default_jit_threshold : int
(** Dispatches of one PC before its trace is compiled (8). *)

val enable_jit : ?threshold:int -> ?generation:int ref -> t -> unit
(** Attach the superblock JIT. [generation] is the invalidation
    counter shared with the engine (see [Engine.attach_jit], which
    passes its own); when omitted the JIT can never be invalidated,
    which is only sound for a fixed production set. The expander must
    be pure and idempotent: compilation replays it ahead of
    execution. *)

val jit_enabled : t -> bool

type jit_state
(** A machine's superblock state — threshold, hot-PC counters, the
    compiled-trace arena, and the compile/hit/invalidation totals —
    detached from any particular machine. The arena is a pure function
    of the image text and the expander (production-set drift is
    covered by the generation stamp), so a state warmed by one machine
    can be re-adopted by a later machine over the same image and start
    at steady state. *)

val jit_state : t -> jit_state option
(** The machine's superblock state, for re-adoption elsewhere. *)

val adopt_jit : t -> jit_state -> bool
(** [adopt_jit m js] attaches an existing superblock state to [m],
    reusing every already-compiled trace. Returns [false] — leaving
    [m] untouched — unless [m]'s image text is physically the text
    [js] was compiled over. The caller is responsible for expander
    compatibility: adopting a state across engines with different
    production sets but a shared generation counter is unsound (going
    through {!Dise_core.Engine.attach_jit} gets this right). Two live
    machines may share a state, but only run-to-completion style:
    interleaved stepping risks one machine retiring superblocks (a
    generation bump) while the other is mid-trace. *)

val jit_compiles : t -> int
(** Superblocks compiled (0 when the JIT is disabled). *)

val jit_hits : t -> int
(** Dispatches served by an already-compiled superblock. *)

val jit_invalidations : t -> int
(** Superblocks retired by generation bumps. *)
