exception Fault of string

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

type t = {
  pages : (int, bytes) Hashtbl.t;
  (* One-entry translation cache: accesses cluster heavily (stack,
     current data structure), so most lookups skip the hashtable. *)
  mutable last_key : int;
  mutable last_page : bytes;
}

let no_page = Bytes.create 0

let create () =
  { pages = Hashtbl.create 64; last_key = -1; last_page = no_page }

let page t addr =
  let key = addr lsr page_bits in
  if key = t.last_key then t.last_page
  else
    let p =
      match Hashtbl.find_opt t.pages key with
      | Some p -> p
      | None ->
        let p = Bytes.make page_size '\000' in
        Hashtbl.replace t.pages key p;
        p
    in
    t.last_key <- key;
    t.last_page <- p;
    p

let read_u8 t addr =
  let addr = addr land 0xFFFFFFFF in
  Char.code (Bytes.get (page t addr) (addr land page_mask))

let write_u8 t addr v =
  let addr = addr land 0xFFFFFFFF in
  Bytes.set (page t addr) (addr land page_mask) (Char.chr (v land 0xFF))

let check_aligned addr =
  if addr land 3 <> 0 then
    raise (Fault (Printf.sprintf "misaligned word access at 0x%x" addr))

let read_u32 t addr =
  let addr = addr land 0xFFFFFFFF in
  check_aligned addr;
  let p = page t addr and o = addr land page_mask in
  (* A page is a multiple of 4 bytes, so an aligned word never
     straddles pages. *)
  Char.code (Bytes.get p o)
  lor (Char.code (Bytes.get p (o + 1)) lsl 8)
  lor (Char.code (Bytes.get p (o + 2)) lsl 16)
  lor (Char.code (Bytes.get p (o + 3)) lsl 24)

let read_s32 t addr = Dise_isa.Opcode.signed32 (read_u32 t addr)

let write_u32 t addr v =
  let addr = addr land 0xFFFFFFFF in
  check_aligned addr;
  let p = page t addr and o = addr land page_mask in
  Bytes.set p o (Char.chr (v land 0xFF));
  Bytes.set p (o + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set p (o + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set p (o + 3) (Char.chr ((v lsr 24) land 0xFF))

let touched_pages t = Hashtbl.length t.pages

let checksum_range t ~lo ~hi =
  Hashtbl.fold
    (fun key p acc ->
      let base = key lsl page_bits in
      if base + page_size <= lo || base >= hi then acc
      else begin
        let h = ref 0 in
        for i = 0 to Bytes.length p - 1 do
          let addr = base lor i in
          if addr >= lo && addr < hi then begin
            let b = Char.code (Bytes.get p i) in
            if b <> 0 then h := !h + (addr * 1000003 lxor (b * 8191))
          end
        done;
        acc lxor !h
      end)
    t.pages 0

let checksum t = checksum_range t ~lo:0 ~hi:max_int

let iter_pages f t =
  Hashtbl.iter (fun key p -> f (key lsl page_bits) p) t.pages
