(** Combined register file: 32 architectural registers plus the DISE
    dedicated registers.

    The dedicated registers model the paper's [$dr] space: persistent
    storage visible only to replacement sequences, initialized through
    the DISE controller rather than by application code. Reads of the
    hardwired zero register always return 0 and writes to it are
    dropped. *)

type t

val create : unit -> t
val get : t -> Dise_isa.Reg.t -> int
val set : t -> Dise_isa.Reg.t -> int -> unit
val copy : t -> t

val unsafe_get_idx : t -> int -> int
(** Unchecked read by {!Dise_isa.Reg.index}. Index 0 (the hardwired
    zero register) reads 0 because nothing ever writes it. For the
    machine's compiled-trace executor, which resolves register
    operands to indices at compile time (doc/jit.md); everything else
    should use {!get}. The index must come from [Reg.index]. *)

val unsafe_set_idx : t -> int -> int -> unit
(** Unchecked write by register index; the caller must skip index 0
    (zero-register writes are dropped) and store values already in
    signed-32-bit canonical form, as {!set} would produce. *)

val arch_equal : t -> t -> bool
(** Equality over the architectural registers only (dedicated DISE
    state is microarchitectural from the application's viewpoint). *)

val checksum_arch : t -> int
val pp : Format.formatter -> t -> unit
