(** Combined register file: 32 architectural registers plus the DISE
    dedicated registers.

    The dedicated registers model the paper's [$dr] space: persistent
    storage visible only to replacement sequences, initialized through
    the DISE controller rather than by application code. Reads of the
    hardwired zero register always return 0 and writes to it are
    dropped. *)

type t

val create : unit -> t
val get : t -> Dise_isa.Reg.t -> int
val set : t -> Dise_isa.Reg.t -> int -> unit
val copy : t -> t

val arch_equal : t -> t -> bool
(** Equality over the architectural registers only (dedicated DISE
    state is microarchitectural from the application's viewpoint). *)

val checksum_arch : t -> int
val pp : Format.formatter -> t -> unit
