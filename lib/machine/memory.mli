(** Sparse byte-addressed memory.

    Backed by 4 KiB pages allocated on first touch, so a 32-bit address
    space costs only what the program touches. Word accesses are
    little-endian and must be 4-byte aligned. *)

type t

exception Fault of string
(** Raised on misaligned word access. *)

val create : unit -> t

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u32 : t -> int -> int
(** Result is the raw unsigned 32-bit value. *)

val read_s32 : t -> int -> int
(** Sign-extended 32-bit read, the canonical register-value form. *)

val write_u32 : t -> int -> int -> unit

val touched_pages : t -> int
(** Number of pages allocated so far. *)

val checksum : t -> int
(** Order-independent digest over all touched bytes and their
    addresses; equal checksums on equal memory states. Used by the
    losslessness property tests. *)

val checksum_range : t -> lo:int -> hi:int -> int
(** Like {!checksum}, restricted to addresses in [lo, hi). Lets
    equivalence checks skip regions that legitimately hold code
    addresses (e.g. return addresses spilled on the stack), which
    differ between layouts of the same program. *)

val iter_pages : (int -> bytes -> unit) -> t -> unit
(** [iter_pages f m] applies [f base_addr page] to each touched page. *)
