module Reg = Dise_isa.Reg
module Opcode = Dise_isa.Opcode

type t = int array

let size = Reg.num_arch + Reg.num_dedicated
let create () = Array.make size 0

let get t r =
  match r with
  | Reg.R 0 -> 0
  | _ -> t.(Reg.index r)

let set t r v =
  match r with
  | Reg.R 0 -> ()
  | _ -> t.(Reg.index r) <- Opcode.signed32 v

let copy = Array.copy
(* Eta-expanded on purpose: a bare [= Array.unsafe_get] alias is a
   closure, so every call from the machine's hot loop would go through
   the generic-application path instead of inlining to a single load. *)
let unsafe_get_idx (t : t) i = Array.unsafe_get t i
let unsafe_set_idx (t : t) i v = Array.unsafe_set t i v

let arch_equal a b =
  let rec go i = i >= Reg.num_arch || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let checksum_arch t =
  let h = ref 0 in
  for i = 0 to Reg.num_arch - 1 do
    h := (!h * 31) + (t.(i) land 0xFFFFFFFF)
  done;
  !h

let pp ppf t =
  for i = 0 to size - 1 do
    let r = if i < Reg.num_arch then Reg.r i else Reg.d (i - Reg.num_arch) in
    if t.(i) <> 0 then
      Format.fprintf ppf "%s=%d (0x%x)@." (Reg.to_string r) t.(i)
        (t.(i) land 0xFFFFFFFF)
  done
